// Package dataset generates the two workloads of the paper's evaluation
// (§V-C) at configurable scale, plus the Zipf cost distributions applied
// to them (§V-C "For cost distribution").
//
// The real Shalla's Blacklists and the authors' YCSB dump are not
// redistributable at the original sizes, so this package synthesizes
// equivalents that preserve the two properties the experiments depend on:
//
//   - Shalla: string URL keys with "evident characteristics" — the
//     positive (blacklisted) URLs draw their domain tokens from a
//     different distribution than the negatives, so a learned model can
//     partially separate them;
//   - YCSB: a 4-byte prefix plus a 64-bit integer with no learnable
//     structure (§V-C2 verbatim).
//
// Both generators are deterministic in their seed, and positives and
// negatives are guaranteed disjoint.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Pair is a generated workload: disjoint positive and negative key sets.
type Pair struct {
	Positives [][]byte
	Negatives [][]byte
}

// shallaBadTokens skews toward the categories Shalla's blacklists cover
// (the classifier signal).
var shallaBadTokens = []string{
	"casino", "poker", "bet", "adult", "xxx", "warez", "crack", "torrent",
	"pharma", "pills", "spyware", "tracker", "click", "ads", "banner",
	"phish", "malware", "botnet", "exploit", "darknet", "spam", "scam",
}

// shallaGoodTokens lean benign.
var shallaGoodTokens = []string{
	"news", "weather", "sports", "recipes", "school", "library", "museum",
	"garden", "travel", "music", "science", "health", "shop", "blog",
	"forum", "wiki", "mail", "maps", "docs", "photo", "video", "code",
}

var shallaTLDs = []string{".com", ".net", ".org", ".info", ".biz", ".io", ".ru", ".cn", ".de"}

var shallaPathTokens = []string{
	"index", "home", "view", "item", "page", "list", "cat", "show", "get",
	"post", "user", "img", "static", "download", "archive", "2020", "2021",
}

// Shalla generates a URL workload with nPos blacklisted (positive) and
// nNeg benign (negative) keys. Positives are dominated by bad tokens
// (95/5 mix), negatives by good tokens, giving a strong but imperfect
// classifier signal, like the real blacklist data.
func Shalla(nPos, nNeg int, seed int64) Pair {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, nPos+nNeg)

	gen := func(bad bool, serial int) string {
		var pool, alt []string
		if bad {
			pool, alt = shallaBadTokens, shallaGoodTokens
		} else {
			pool, alt = shallaGoodTokens, shallaBadTokens
		}
		tok := func() string {
			if rng.Intn(20) < 19 {
				return pool[rng.Intn(len(pool))]
			}
			return alt[rng.Intn(len(alt))]
		}
		domain := fmt.Sprintf("%s-%s%d", tok(), tok(), rng.Intn(1000))
		tld := shallaTLDs[rng.Intn(len(shallaTLDs))]
		path := shallaPathTokens[rng.Intn(len(shallaPathTokens))]
		return fmt.Sprintf("http://%s%s/%s/%d", domain, tld, path, serial)
	}

	build := func(n int, bad bool) [][]byte {
		out := make([][]byte, 0, n)
		for serial := 0; len(out) < n; serial++ {
			u := gen(bad, serial)
			if seen[u] {
				continue
			}
			seen[u] = true
			out = append(out, []byte(u))
		}
		return out
	}
	return Pair{Positives: build(nPos, true), Negatives: build(nNeg, false)}
}

// YCSB generates a key-value-store workload: each key is a 4-byte prefix
// ("usr:") followed by the 16-hex-digit rendering of a 64-bit integer from
// a splitmix-style generator — no structure a classifier could learn.
func YCSB(nPos, nNeg int, seed int64) Pair {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, nPos+nNeg)
	build := func(n int) [][]byte {
		out := make([][]byte, 0, n)
		for len(out) < n {
			v := rng.Uint64()
			if seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, []byte(fmt.Sprintf("usr:%016x", v)))
		}
		return out
	}
	return Pair{Positives: build(nPos), Negatives: build(nNeg)}
}

// ZipfCosts assigns a cost to each of n keys following a Zipf law with the
// given skewness s over ranks 1..n: cost(rank r) ∝ 1/r^s. Skewness 0
// yields the uniform distribution (all costs 1), matching §V-C. The rank
// assignment is a random permutation of the keys (the paper shuffles the
// generated distribution before applying it).
func ZipfCosts(n int, skew float64, seed int64) []float64 {
	costs := make([]float64, n)
	if n == 0 {
		return costs
	}
	if skew == 0 {
		for i := range costs {
			costs[i] = 1
		}
		return costs
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	for rank := 1; rank <= n; rank++ {
		costs[perm[rank-1]] = zipfWeight(rank, skew)
	}
	return costs
}

// zipfWeight is the unnormalized Zipf mass of rank r at skewness s,
// scaled so the tail stays well above floating-point underflow.
func zipfWeight(rank int, s float64) float64 {
	r := float64(rank)
	var w float64
	switch s {
	case 1:
		w = 1 / r
	case 2:
		w = 1 / (r * r)
	case 3:
		w = 1 / (r * r * r)
	default:
		w = math.Pow(r, -s)
	}
	return w * 1e6
}
