// Command habfserved serves a sharded HABF over HTTP.
//
// The daemon answers membership queries (/v1/contains, coalesced into
// micro-batches under concurrency), batch queries (/v1/contains_batch),
// inserts (/v1/add), operational stats (/v1/stats), crash-safe
// checkpoints (/v1/snapshot) and Prometheus metrics (/metrics).
//
// With -listen-binary it additionally serves the internal/wire binary
// protocol on a raw TCP listener: length-prefixed frames over one
// pipelined connection, dispatching into the same filter, coalescer and
// metrics as HTTP but without per-request HTTP framing cost. Both
// listeners drain gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	habfserved -restore filter.snap [-addr :8080] [-snapshot filter.snap -snapshot-on-exit]
//	habfserved -keys 100000 [-shards 8] [-seed 1]       # synthetic filter, for demos/load tests
//	habfserved -keys 100000 -backend xor                # serve another filter family (bloom|xor|wbf|phbf|lbf|slbf|adabf)
//	habfserved -follow http://primary:8080              # replication follower: pull, serve, resync
//
// The filter comes from one of three sources: -restore loads a snapshot
// produced by habf.SaveFile (zero-copy, query-ready in milliseconds), a
// synthetic -keys filter is built at startup from the deterministic
// YCSB-style key generator (the same keys `habfbench -net` probes with),
// or -follow bootstraps from a running primary's GET /v1/snapshot.
//
// A -follow daemon is a read-only replica: it restores the primary's
// snapshot, serves reads over both HTTP and the binary protocol, polls
// the primary's mutation epoch (GET /v1/epoch, cadence -follow-poll) and
// re-syncs — with exponential backoff and jitter — whenever it advances.
// Writes are rejected with a 307 redirect to the primary. If the primary
// dies the follower keeps answering from its last restored snapshot and
// keeps retrying until the primary returns. Replication state is
// exported at /metrics (habfserved_replication_*) and in /v1/stats.
//
// -backend selects the filter family (habf, bloom, xor, wbf, phbf, or
// the learned families lbf, slbf, adabf) a synthetic filter is built
// with; restores auto-detect the family from the snapshot header, and
// an explicit -backend that contradicts the file is a startup error
// rather than a misdecode. The active backend is reported in /v1/stats
// and /metrics. Learned backends train their model at build time, so a
// synthetic -keys startup takes seconds rather than milliseconds;
// restores skip training entirely.
//
// -tune sets the backend's tuning knobs ("k=v,k=v", validated against
// the family's schema — see the README's Tuning section). A synthetic
// filter is built with them; on -restore the snapshot's durable knobs
// win, and a -tune that contradicts them (or names an unknown knob) is
// a startup error. The effective tuning is reported in /v1/stats.
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener stops accepting,
// in-flight requests and coalesced batches drain, and with
// -snapshot-on-exit a final checkpoint is written to the -snapshot path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	habf "repro"
	"repro/internal/dataset"
	"repro/internal/replica"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		addrBin  = flag.String("listen-binary", "", "also serve the internal/wire binary protocol on this TCP address (e.g. :8081)")
		restore  = flag.String("restore", "", "restore the filter from this snapshot at startup")
		keys     = flag.Int("keys", 0, "build a synthetic filter with this many keys per side (when not restoring)")
		backend  = flag.String("backend", "", "filter backend: "+strings.Join(habf.Backends(), "|")+" (default habf; restores auto-detect and must match when set)")
		tune     = flag.String("tune", "", "backend tuning knobs, k=v,k=v (restores carry their own and must match when set)")
		shards   = flag.Int("shards", 8, "shard count for a synthetic filter (rounded up to a power of two)")
		seed     = flag.Int64("seed", 1, "seed for the synthetic filter's keys and construction")
		bits     = flag.Float64("bits", 10, "bits per key for a synthetic filter")
		snapPath = flag.String("snapshot", "", "default target for /v1/snapshot and -snapshot-on-exit")
		snapExit = flag.Bool("snapshot-on-exit", false, "write a final snapshot to -snapshot during graceful shutdown")

		follow     = flag.String("follow", "", "run as a read-only follower of this primary (base URL or host:port); exclusive with -restore/-keys")
		followPoll = flag.Duration("follow-poll", time.Second, "how often a follower polls the primary's epoch")

		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); keeps the debug surface off the serving port")
		profileRate = flag.Int("profile-rate", 0, "mutex profile fraction and block profile rate (runtime.SetMutexProfileFraction / SetBlockProfileRate); 0 leaves both off")

		coalesceOff  = flag.Bool("no-coalesce", false, "disable request coalescing (direct per-key queries)")
		maxBatch     = flag.Int("coalesce-batch", 256, "largest coalesced micro-batch")
		maxWait      = flag.Duration("coalesce-wait", 0, "how long a dispatcher lingers for stragglers (0: drain-only)")
		minGather    = flag.Int("coalesce-min", 8, "batch size at which a dispatcher stops lingering")
		dispatchers  = flag.Int("dispatchers", 2, "coalescing dispatcher goroutines")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()
	if err := run(config{
		addr: *addr, addrBin: *addrBin, restore: *restore, keys: *keys, backend: *backend, tune: *tune, shards: *shards,
		seed: *seed, bits: *bits, snapPath: *snapPath, snapExit: *snapExit,
		follow: *follow, followPoll: *followPoll,
		pprofAddr: *pprofAddr, profileRate: *profileRate,
		drainTimeout: *drainTimeout,
		coalesce: server.CoalesceConfig{
			MaxBatch:    *maxBatch,
			MaxWait:     *maxWait,
			MinGather:   *minGather,
			Dispatchers: *dispatchers,
			Disabled:    *coalesceOff,
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "habfserved:", err)
		os.Exit(1)
	}
}

type config struct {
	addr         string
	addrBin      string
	restore      string
	keys         int
	backend      string
	tune         string
	shards       int
	seed         int64
	bits         float64
	snapPath     string
	snapExit     bool
	follow       string
	followPoll   time.Duration
	pprofAddr    string
	profileRate  int
	drainTimeout time.Duration
	coalesce     server.CoalesceConfig
}

// buildFilter realizes the daemon's filter from the configured source.
func buildFilter(cfg config) (*habf.Sharded, error) {
	if cfg.restore != "" {
		start := time.Now()
		f, err := habf.LoadFile(cfg.restore)
		if err != nil {
			return nil, fmt.Errorf("restore %s: %w", cfg.restore, err)
		}
		// Load dispatches by the backend recorded in the snapshot header;
		// an explicit -backend that contradicts the file is an operator
		// error worth failing on, not silently serving the wrong family.
		if cfg.backend != "" && f.Backend() != cfg.backend {
			return nil, fmt.Errorf("restore %s: snapshot holds a %q filter, but -backend %q was requested",
				cfg.restore, f.Backend(), cfg.backend)
		}
		// The snapshot's tuning knobs are durable; like -backend, a -tune
		// that contradicts them (or fails the schema) is an operator error
		// worth failing on, not a config the restore can honor.
		if cfg.tune != "" {
			want, err := habf.ParseTuning(f.Backend(), cfg.tune)
			if err != nil {
				return nil, fmt.Errorf("restore %s: -tune: %w", cfg.restore, err)
			}
			if got := f.Tuning(); got != want {
				return nil, fmt.Errorf("restore %s: snapshot tuning %q does not match -tune (%q)",
					cfg.restore, got, want)
			}
		}
		st := f.Stats()
		fmt.Fprintf(os.Stderr, "habfserved: restored %s in %v (%d shards, backend %s, %.1f KiB)\n",
			cfg.restore, time.Since(start).Round(time.Millisecond), st.Shards, f.Backend(), float64(st.SizeBits)/8/1024)
		return f, nil
	}
	if cfg.keys <= 0 {
		return nil, errors.New("no filter source: pass -restore or -keys")
	}
	start := time.Now()
	data := dataset.YCSB(cfg.keys, cfg.keys, cfg.seed)
	costs := dataset.ZipfCosts(cfg.keys, 1.1, cfg.seed)
	negatives := make([]habf.WeightedKey, cfg.keys)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: costs[i]}
	}
	f, err := habf.NewSharded(data.Positives, negatives, uint64(cfg.bits*float64(cfg.keys)),
		habf.WithShards(cfg.shards), habf.WithBackend(cfg.backend), habf.WithTuning(cfg.tune),
		habf.WithShardFilterOptions(habf.WithSeed(cfg.seed)))
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	fmt.Fprintf(os.Stderr, "habfserved: built synthetic %s filter over %d keys in %v (%d shards)\n",
		f.Backend(), cfg.keys, time.Since(start).Round(time.Millisecond), f.NumShards())
	return f, nil
}

// bootstrapFollower builds a replication follower against cfg.follow,
// blocks (with backoff) until the first snapshot pull succeeds, and
// returns the follower plus the restored filter. Swaps after the
// server exists go through srvp.
func bootstrapFollower(ctx context.Context, cfg config, srvp *atomic.Pointer[server.Server]) (*replica.Follower, *habf.Sharded, error) {
	// Until the server exists, OnSwap parks the restored filter here;
	// afterwards every resync is an atomic SwapFilter on the server.
	var boot atomic.Pointer[habf.Sharded]
	fol, err := replica.New(replica.Config{
		Primary:      cfg.follow,
		PollInterval: cfg.followPoll,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "habfserved: "+format+"\n", args...)
		},
		OnSwap: func(f *habf.Sharded, epoch uint64) error {
			if s := srvp.Load(); s != nil {
				_, err := s.SwapFilter(f)
				return err
			}
			boot.Store(f)
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	backoff := 500 * time.Millisecond
	for {
		if err := fol.Sync(ctx); err == nil {
			break
		} else {
			fmt.Fprintf(os.Stderr, "habfserved: bootstrap: %v (retrying in %v)\n", err, backoff)
		}
		select {
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("follower bootstrap interrupted: %w", ctx.Err())
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 10*time.Second {
			backoff = 10 * time.Second
		}
	}
	f := boot.Load()
	st := f.Stats()
	fmt.Fprintf(os.Stderr, "habfserved: following %s (epoch %d, backend %s, %d shards, %.1f KiB)\n",
		fol.Primary(), fol.Stats().SyncedEpoch, f.Backend(), st.Shards, float64(st.SizeBits)/8/1024)
	return fol, f, nil
}

func run(cfg config) error {
	var (
		filter *habf.Sharded
		fol    *replica.Follower
		srvp   atomic.Pointer[server.Server]
		err    error
	)
	// folCtx outlives bootstrap: the same signal that starts the drain
	// also stops the follower's poll loop.
	folCtx, folCancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer folCancel()
	if cfg.follow != "" {
		if cfg.restore != "" || cfg.keys > 0 {
			return errors.New("-follow is exclusive with -restore and -keys: the primary is the filter source")
		}
		fol, filter, err = bootstrapFollower(folCtx, cfg, &srvp)
	} else {
		filter, err = buildFilter(cfg)
	}
	if err != nil {
		return err
	}
	scfg := server.Config{
		Filter:       filter,
		Coalesce:     cfg.coalesce,
		SnapshotPath: cfg.snapPath,
	}
	if fol != nil {
		scfg.ReadOnly = true
		scfg.Primary = fol.Primary()
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	if fol != nil {
		srvp.Store(srv)
		reg := srv.Metrics()
		reg.Gauge("habfserved_replication_lag_epochs",
			"Epochs this follower trails the primary, as of the last successful poll.",
			func() float64 { return float64(fol.Stats().Lag()) })
		reg.Gauge("habfserved_replication_synced_epoch",
			"Primary-reported epoch of the last restored snapshot.",
			func() float64 { return float64(fol.Stats().SyncedEpoch) })
		reg.CounterFunc("habfserved_replication_resyncs_total",
			"Successful snapshot restores, including the bootstrap pull.",
			func() uint64 { return fol.Stats().Resyncs })
		reg.CounterFunc("habfserved_replication_failures_total",
			"Failed epoch polls and snapshot pulls.",
			func() uint64 { return fol.Stats().Failures })
		go fol.Run(folCtx)
	}

	// The profiler rides its own listener so the debug surface never
	// shares a port with production traffic. The contention profiles are
	// opt-in by rate: sampling mutex waits and blocking events costs a
	// little on every contended lock, so both stay off unless asked.
	if cfg.profileRate > 0 {
		runtime.SetMutexProfileFraction(cfg.profileRate)
		runtime.SetBlockProfileRate(cfg.profileRate)
	}
	if cfg.pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "habfserved: pprof on %s\n", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, pmux); err != nil {
				fmt.Fprintf(os.Stderr, "habfserved: pprof: %v\n", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// errc carries the first serving failure; sized for both listeners so
	// neither send blocks after a signal wins the select.
	errc := make(chan error, 2)
	go func() {
		fmt.Fprintf(os.Stderr, "habfserved: listening on %s\n", cfg.addr)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	var bs *server.BinaryServer
	if cfg.addrBin != "" {
		ln, err := net.Listen("tcp", cfg.addrBin)
		if err != nil {
			return fmt.Errorf("listen-binary: %w", err)
		}
		bs = server.NewBinaryServer(srv)
		go func() {
			fmt.Fprintf(os.Stderr, "habfserved: binary protocol on %s\n", ln.Addr())
			errc <- bs.Serve(ln)
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "habfserved: %v — draining\n", sig)
	}

	// Graceful shutdown: stop accepting on both listeners, drain in-flight
	// requests, then drain the coalescer and (optionally) checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "habfserved: shutdown: %v\n", err)
	}
	if bs != nil {
		if err := bs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "habfserved: binary shutdown: %v\n", err)
		}
	}
	srv.Close()
	filter.WaitRebuilds()
	if cfg.snapExit {
		path, took, err := srv.Snapshot("")
		if err != nil {
			return fmt.Errorf("snapshot-on-exit: %w", err)
		}
		fmt.Fprintf(os.Stderr, "habfserved: final snapshot %s in %v\n", path, took.Round(time.Millisecond))
	}
	// Both serving goroutines report on errc after their shutdown; the
	// first failure (if any) is the exit status.
	listeners := 1
	if bs != nil {
		listeners = 2
	}
	var ret error
	for i := 0; i < listeners; i++ {
		if err := <-errc; err != nil && ret == nil {
			ret = err
		}
	}
	return ret
}
