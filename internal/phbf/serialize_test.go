package phbf

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func serializeFixture(t *testing.T) (*Filter, [][]byte) {
	t.Helper()
	keys := make([][]byte, 2000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("phbf-key-%06d", i))
	}
	f, err := New(keys, Config{TotalBits: 2000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	return f, keys
}

func TestSerializeRoundtrip(t *testing.T) {
	f, keys := serializeFixture(t)
	wire, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for mode, unmarshal := range map[string]func([]byte) (*Filter, error){
		"owned":  UnmarshalFilter,
		"borrow": UnmarshalFilterBorrow,
	} {
		g, err := unmarshal(wire)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if g.K() != f.K() || g.Groups() != f.Groups() || g.SizeBits() != f.SizeBits() {
			t.Fatalf("%s: decoded shape k=%d groups=%d size=%d, want k=%d groups=%d size=%d",
				mode, g.K(), g.Groups(), g.SizeBits(), f.K(), f.Groups(), f.SizeBits())
		}
		for _, key := range keys {
			if !g.Contains(key) {
				t.Fatalf("%s: false negative for %q", mode, key)
			}
		}
		// The per-group seeds are the filter's whole point: any seed
		// corruption changes which positions a group's keys probe, so the
		// decoded filter must agree on arbitrary probes, not just members.
		for i := 0; i < 2000; i++ {
			probe := []byte(fmt.Sprintf("phbf-probe-%06d", i))
			if g.Contains(probe) != f.Contains(probe) {
				t.Fatalf("%s: decoded filter disagrees on %q", mode, probe)
			}
		}
		again, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", mode, err)
		}
		if string(again) != string(wire) {
			t.Fatalf("%s: re-marshal is not byte-identical", mode)
		}
	}
}

func TestSerializeRejectsHostileInput(t *testing.T) {
	f, _ := serializeFixture(t)
	good, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:8],
		"truncated":   good[:len(good)-4],
		"trailing":    append(append([]byte(nil), good...), 0),
		"bad magic":   mut(func(b []byte) { b[0] ^= 0xFF }),
		"bad version": mut(func(b []byte) { b[4] = 99 }),
		"zero k":      mut(func(b []byte) { b[5] = 0 }),
		"huge k":      mut(func(b []byte) { b[5] = 255 }),
		// A zero group count would divide-by-zero the partition hash of
		// every query; a huge one would allocate an absurd seed table.
		"zero groups": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], 0)
		}),
		"huge groups": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], 1<<30)
		}),
		"seed table past end": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], uint32((len(good)-12)/8))
		}),
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
		if _, err := UnmarshalFilterBorrow(data); err == nil {
			t.Errorf("%s: hostile input accepted in borrow mode", name)
		}
	}
}
