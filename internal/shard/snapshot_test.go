package shard

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/snapshot"
)

func snapshotRoundtrip(t *testing.T, s *Set) *Set {
	t.Helper()
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSnapshotRestoreAnswersIdentically(t *testing.T) {
	s, pos, negKeys := newSet(t, 5000, Config{Shards: 8})
	g := snapshotRoundtrip(t, s)
	for _, key := range pos {
		if !g.Contains(key) {
			t.Fatalf("restored set lost member %q", key)
		}
	}
	for _, key := range negKeys {
		if s.Contains(key) != g.Contains(key) {
			t.Fatalf("restored set disagrees on %q", key)
		}
	}
	for i := 0; i < 3000; i++ {
		probe := []byte(fmt.Sprintf("probe-%06d", i))
		if s.Contains(probe) != g.Contains(probe) {
			t.Fatalf("restored set disagrees on probe %q", probe)
		}
	}
	if s.NumShards() != g.NumShards() {
		t.Fatalf("shard count %d != %d", g.NumShards(), s.NumShards())
	}
	if s.SizeBits() != g.SizeBits() {
		t.Fatalf("size %d != %d", g.SizeBits(), s.SizeBits())
	}
	if s.Name() != g.Name() {
		t.Fatalf("name %q != %q", g.Name(), s.Name())
	}
}

func TestRestoreIsZeroCopy(t *testing.T) {
	s, _, _ := newSet(t, 4000, Config{Shards: 4})
	g := snapshotRoundtrip(t, s)
	borrowed := 0
	for _, sh := range g.shards {
		if sh.f != nil && sh.f.Borrowed() {
			borrowed++
		}
	}
	// The container aligns every frame, so on a little-endian host every
	// non-empty shard must be serving straight from the snapshot buffer.
	if borrowed == 0 {
		t.Fatal("no shard filter borrowed from the snapshot buffer; zero-copy load regressed")
	}
}

func TestRestoredSetAbsorbsAddsWithCopyOnWrite(t *testing.T) {
	s, pos, _ := newSet(t, 3000, Config{Shards: 4})
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), data...)
	decoded, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		g.Add([]byte(fmt.Sprintf("late-%06d", i)))
	}
	for i := 0; i < 500; i++ {
		if !g.Contains([]byte(fmt.Sprintf("late-%06d", i))) {
			t.Fatalf("restored set lost added key %d", i)
		}
	}
	for _, key := range pos {
		if !g.Contains(key) {
			t.Fatalf("Add after restore lost original member %q", key)
		}
	}
	// Copy-on-write: mutations must never leak into the snapshot buffer.
	if string(before) != string(data) {
		t.Fatal("Add after restore mutated the snapshot buffer")
	}
	st := g.Stats()
	if st.Restored == 0 {
		t.Fatal("Stats does not report restored shards")
	}
	// Restored shards must not schedule drift rebuilds (they have no key
	// list to rebuild from).
	g.WaitRebuilds()
	if got := g.Stats().Rebuilds; got != 0 {
		t.Fatalf("restored set ran %d drift rebuilds; want 0", got)
	}
}

func TestSnapshotEpochsAdvance(t *testing.T) {
	s, _, _ := newSet(t, 2000, Config{Shards: 4, RebuildThreshold: -1})
	snap1, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Add([]byte(fmt.Sprintf("epoch-%06d", i)))
	}
	snap2, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var e1, e2 uint64
	for i := range snap1.Frames {
		e1 += snap1.Frames[i].Epoch
		e2 += snap2.Frames[i].Epoch
	}
	if e2 != e1+100 {
		t.Fatalf("epoch sum advanced by %d after 100 Adds; want 100", e2-e1)
	}
}

func TestRestoreRejectsBadShardCount(t *testing.T) {
	s, _, _ := newSet(t, 1000, Config{Shards: 4})
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Frames = snap.Frames[:3] // not a power of two
	if _, err := Restore(snap); err == nil {
		t.Fatal("restore accepted a 3-shard snapshot")
	}
	snap.Frames = nil
	if _, err := Restore(snap); err == nil {
		t.Fatal("restore accepted an empty snapshot")
	}
}

// Regression: a CRC-valid but hostile snapshot with absurd float meta
// used to be accepted, and the first Add routed to an empty restored
// shard fed BitsPerKey straight into a filter-size computation —
// panicking in make(). Restore must bound the meta instead.
func TestRestoreRejectsHostileMeta(t *testing.T) {
	s, _, _ := newSet(t, 1000, Config{Shards: 4})
	good, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(m *snapshot.Meta){
		"huge bits-per-key": func(m *snapshot.Meta) { m.BitsPerKey = 1e300 },
		"inf bits-per-key":  func(m *snapshot.Meta) { m.BitsPerKey = math.Inf(1) },
		"nan bits-per-key":  func(m *snapshot.Meta) { m.BitsPerKey = math.NaN() },
		"neg bits-per-key":  func(m *snapshot.Meta) { m.BitsPerKey = -1 },
		"nan space ratio":   func(m *snapshot.Meta) { m.SpaceRatio = math.NaN() },
		"big space ratio":   func(m *snapshot.Meta) { m.SpaceRatio = 1.5 },
		"nan threshold":     func(m *snapshot.Meta) { m.Threshold = math.NaN() },
		"bad cellbits":      func(m *snapshot.Meta) { m.CellBits = 200 },
		"bad k":             func(m *snapshot.Meta) { m.K = 200 },
		"k of one":          func(m *snapshot.Meta) { m.K = 1 },
	}
	for name, mutate := range cases {
		snap := *good
		mutate(&snap.Meta)
		if _, err := Restore(&snap); err == nil {
			t.Errorf("%s: hostile meta accepted", name)
		}
	}
}

func TestRestoredEmptyShardBuildsLazily(t *testing.T) {
	// A set whose keys all route to few shards leaves others empty; after
	// restore those shards must lazily build on their first Add, exactly
	// like a fresh set.
	pos := [][]byte{[]byte("only-one-key")}
	s, err := New(pos, nil, Config{Shards: 8, TotalBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	g := snapshotRoundtrip(t, s)
	for i := 0; i < 2000; i++ {
		g.Add([]byte(fmt.Sprintf("fill-%06d", i)))
	}
	for i := 0; i < 2000; i++ {
		if !g.Contains([]byte(fmt.Sprintf("fill-%06d", i))) {
			t.Fatalf("lazily built shard lost key %d", i)
		}
	}
	if !g.Contains([]byte("only-one-key")) {
		t.Fatal("restored member lost")
	}
}
