package habf

import "repro/internal/bitset"

// hashExpressor is the lightweight probabilistic hash table of §III-C that
// stores customized hash-function selections. It has ω cells of CellBits
// bits each; bit 0 of a cell is the endbit, the remaining bits hold
// hashindex+1 (0 means empty, matching the paper's "a cell is empty if
// both fields are zero").
//
// Cells are never overwritten once non-empty: an insertion either claims
// empty cells (Case 1) or traverses cells that already hold the hash it
// needs (Case 2). This is what makes stored selections immortal and the
// structure false-negative-free for inserted keys.
type hashExpressor struct {
	cells *bitset.Lanes
	omega uint64
	k     int
	t     uint64 // number of inserted selections (the paper's t)
}

func newHashExpressor(heBits uint64, cellBits uint, k int) *hashExpressor {
	omega := heBits / uint64(cellBits)
	if omega == 0 {
		omega = 1
	}
	return &hashExpressor{
		cells: bitset.NewLanes(omega, cellBits),
		omega: omega,
		k:     k,
	}
}

// load decodes cell i into (endbit, hashindex+1). v == 0 means empty.
func (he *hashExpressor) load(i uint64) (endbit bool, v uint8) {
	raw := he.cells.Get(i)
	return raw&1 == 1, uint8(raw >> 1)
}

// store encodes (endbit, hashindex+1) into cell i.
func (he *hashExpressor) store(i uint64, endbit bool, v uint8) {
	raw := uint64(v) << 1
	if endbit {
		raw |= 1
	}
	he.cells.Set(i, raw)
}

// insertPlan is the outcome of a successful simulation: the cells an
// insertion would touch, in visit order, with the hash index each cell
// carries and whether the cell is newly claimed.
type insertPlan struct {
	cells   [32]uint64
	hidxs   [32]uint8
	isNew   [32]bool
	n       int
	overlap int // Case-2 reuses; the paper's "overlap with stored functions"
}

// simulateNodeBudget bounds the assignment search. The paper picks the
// hash placed into an empty cell at random; we instead search the small
// assignment tree deterministically (k ≤ 5 so the tree is tiny) and return
// the maximum-overlap plan, which strictly improves insert success while
// preserving the structure's semantics.
const simulateNodeBudget = 64

// simulate reports whether the selection phi (function indices) for the
// key described by ks could be inserted, without mutating the table.
func (he *hashExpressor) simulate(fam *family, ks keyState, phi []uint8) (insertPlan, bool) {
	var best insertPlan
	found := false
	budget := simulateNodeBudget

	var cur insertPlan
	var used uint32 // bitmask over phi slots already marked valid

	var dfs func(cell uint64, depth int)
	dfs = func(cell uint64, depth int) {
		if budget <= 0 {
			return
		}
		budget--
		if depth == len(phi) {
			if !found || cur.overlap > best.overlap {
				best = cur
				best.n = depth
				found = true
			}
			return
		}
		// Effective cell content: later steps may revisit a cell claimed
		// earlier in this plan.
		_, v := he.load(cell)
		isNew := false
		if v == 0 {
			for i := 0; i < depth; i++ {
				if cur.cells[i] == cell {
					v = cur.hidxs[i] + 1
					break
				}
			}
			isNew = v == 0
		}
		if !isNew {
			// Case 2: the stored function must be a still-unmarked member
			// of phi; otherwise Case 3 (fail this branch).
			for s, p := range phi {
				if p+1 == v && used&(1<<s) == 0 {
					cur.cells[depth] = cell
					cur.hidxs[depth] = p
					cur.isNew[depth] = false
					cur.overlap++
					used |= 1 << s
					dfs(fam.pos(ks, p, he.omega), depth+1)
					used &^= 1 << s
					cur.overlap--
					return // at most one slot can match a stored value
				}
			}
			return
		}
		// Case 1: empty cell; try each unmarked member of phi.
		for s, p := range phi {
			if used&(1<<s) != 0 {
				continue
			}
			cur.cells[depth] = cell
			cur.hidxs[depth] = p
			cur.isNew[depth] = true
			used |= 1 << s
			dfs(fam.pos(ks, p, he.omega), depth+1)
			used &^= 1 << s
			if found && budget <= 0 {
				return
			}
		}
	}
	dfs(fam.entry(ks, he.omega), 0)
	return best, found
}

// commit applies a plan returned by simulate. The table must not have
// changed between simulate and commit.
func (he *hashExpressor) commit(plan insertPlan) {
	for i := 0; i < plan.n; i++ {
		endbit, v := he.load(plan.cells[i])
		if plan.isNew[i] {
			v = plan.hidxs[i] + 1
		}
		if i == plan.n-1 {
			endbit = true
		}
		he.store(plan.cells[i], endbit, v)
	}
	he.t++
}

// query retrieves the stored selection for the key described by ks,
// appending function indices to dst. It returns nil when the key has no
// stored selection (the caller falls back to H0), exactly mirroring the
// paper's query procedure: follow cells from f(e), collect k indices, and
// require the k-th cell's endbit to be 1.
func (he *hashExpressor) query(fam *family, ks keyState, dst []uint8) []uint8 {
	cell := fam.entry(ks, he.omega)
	for i := 0; i < he.k; i++ {
		endbit, v := he.load(cell)
		if v == 0 {
			return nil
		}
		idx := v - 1
		if int(idx) >= fam.size {
			// A cell written with a wider family than ours cannot occur in
			// practice; treat as miss for robustness.
			return nil
		}
		dst = append(dst, idx)
		if i == he.k-1 {
			if !endbit {
				return nil
			}
			return dst
		}
		cell = fam.pos(ks, idx, he.omega)
	}
	return nil
}

// Inserted returns the number of stored selections (the paper's t).
func (he *hashExpressor) Inserted() uint64 { return he.t }

// SizeBits returns the memory consumed by the cell array in bits.
func (he *hashExpressor) SizeBits() uint64 { return he.cells.SizeBytes() * 8 }
