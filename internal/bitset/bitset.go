// Package bitset provides the low-level bit storage shared by every filter
// in this repository: a plain bit vector (Bits) and a packed array of
// fixed-width unsigned lanes (Lanes).
//
// Both types are deliberately simple: no concurrency control (filters are
// built single-threaded and queried read-only), explicit sizes, and binary
// serialization so filters can report and persist their exact footprint.
package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Bits is a fixed-length bit vector. The zero value is an empty vector;
// use New to allocate one with a given length.
type Bits struct {
	words []uint64
	n     uint64
	// borrowed is true while words aliases caller-provided memory (see
	// UnmarshalBinaryBorrow). The first mutation copies the payload into
	// owned memory and clears the flag.
	borrowed bool
}

// New returns a bit vector with n bits, all zero.
func New(n uint64) *Bits {
	return &Bits{
		words: make([]uint64, (n+63)/64),
		n:     n,
	}
}

// Len returns the number of bits in the vector.
func (b *Bits) Len() uint64 { return b.n }

// SizeBytes returns the heap footprint of the payload in bytes.
func (b *Bits) SizeBytes() uint64 { return uint64(len(b.words)) * 8 }

// Set sets bit i to 1. It panics if i is out of range.
func (b *Bits) Set(i uint64) {
	if i >= b.n {
		panic(fmt.Sprintf("bitset: Set(%d) out of range [0,%d)", i, b.n))
	}
	if b.borrowed {
		b.materialize()
	}
	b.words[i>>6] |= 1 << (i & 63)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (b *Bits) Clear(i uint64) {
	if i >= b.n {
		panic(fmt.Sprintf("bitset: Clear(%d) out of range [0,%d)", i, b.n))
	}
	if b.borrowed {
		b.materialize()
	}
	b.words[i>>6] &^= 1 << (i & 63)
}

// Test reports whether bit i is 1. It panics if i is out of range.
func (b *Bits) Test(i uint64) bool {
	if i >= b.n {
		panic(fmt.Sprintf("bitset: Test(%d) out of range [0,%d)", i, b.n))
	}
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// OnesCount returns the number of set bits.
func (b *Bits) OnesCount() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// FillRatio returns the fraction of set bits, in [0,1].
// It returns 0 for an empty vector.
func (b *Bits) FillRatio() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.OnesCount()) / float64(b.n)
}

// Reset clears every bit.
func (b *Bits) Reset() {
	if b.borrowed {
		// The result is all-zero regardless of the borrowed payload, so
		// allocate fresh instead of copying first.
		b.words = make([]uint64, len(b.words))
		b.borrowed = false
		return
	}
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a deep copy of the vector.
func (b *Bits) Clone() *Bits {
	c := &Bits{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Equal reports whether two vectors have identical length and contents.
func (b *Bits) Equal(o *Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Union ORs o into b. Both vectors must have the same length.
func (b *Bits) Union(o *Bits) error {
	if b.n != o.n {
		return fmt.Errorf("bitset: union length mismatch %d != %d", b.n, o.n)
	}
	if b.borrowed {
		b.materialize()
	}
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return nil
}

// Intersect ANDs o into b. Both vectors must have the same length.
func (b *Bits) Intersect(o *Bits) error {
	if b.n != o.n {
		return fmt.Errorf("bitset: intersect length mismatch %d != %d", b.n, o.n)
	}
	if b.borrowed {
		b.materialize()
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return nil
}

const bitsMagic = uint32(0xb1750001)

// MarshalBinary encodes the vector as a self-describing byte stream.
func (b *Bits) MarshalBinary() ([]byte, error) {
	out := make([]byte, 12+len(b.words)*8)
	binary.LittleEndian.PutUint32(out[0:4], bitsMagic)
	binary.LittleEndian.PutUint64(out[4:12], b.n)
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[12+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a stream produced by MarshalBinary into owned
// memory; data is not retained.
func (b *Bits) UnmarshalBinary(data []byte) error {
	return b.unmarshal(data, false)
}

// UnmarshalBinaryBorrow decodes a stream produced by MarshalBinary
// without copying the payload when possible: if the word payload inside
// data is 8-byte aligned in memory (and the host is little-endian), the
// decoded vector aliases data directly. The caller must keep data alive
// and unmodified for as long as the vector is read; the first mutating
// call (Set, Clear, Union, ...) copies the payload into owned memory and
// releases the alias. When aliasing is not possible the payload is
// copied, exactly like UnmarshalBinary.
func (b *Bits) UnmarshalBinaryBorrow(data []byte) error {
	return b.unmarshal(data, true)
}

func (b *Bits) unmarshal(data []byte, borrow bool) error {
	if len(data) < 12 {
		return errors.New("bitset: truncated header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != bitsMagic {
		return errors.New("bitset: bad magic")
	}
	n := binary.LittleEndian.Uint64(data[4:12])
	// Bound n before any length arithmetic: (n+63)/64 wraps for n near
	// 2^64, which would make a 12-byte payload decode as a vector claiming
	// 2^64-1 bits and panic the first Test. The payload length field is
	// authoritative and already in hand, so derive the bound from it.
	maxBits := uint64(len(data)-12) * 8
	if n > maxBits {
		return fmt.Errorf("bitset: declared %d bits exceeds %d payload bits", n, maxBits)
	}
	nw := int((n + 63) / 64)
	if len(data) != 12+nw*8 {
		return fmt.Errorf("bitset: want %d payload bytes, have %d", nw*8, len(data)-12)
	}
	b.n = n
	if words, ok := borrowWords(data[12:], nw, borrow); ok {
		b.words = words
		b.borrowed = true
		return nil
	}
	b.borrowed = false
	b.words = make([]uint64, nw)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[12+i*8:])
	}
	return nil
}

// Borrowed reports whether the vector currently aliases caller-provided
// memory (zero-copy load, no mutation yet).
func (b *Bits) Borrowed() bool { return b.borrowed }

// materialize copies a borrowed payload into owned memory so it can be
// mutated without touching (or racing on) the snapshot buffer.
func (b *Bits) materialize() {
	owned := make([]uint64, len(b.words))
	copy(owned, b.words)
	b.words = owned
	b.borrowed = false
}
