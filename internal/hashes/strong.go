package hashes

import (
	"encoding/binary"
	"hash/crc32"
)

// xxHash64 prime constants from the public-domain specification.
const (
	xxPrime1 uint64 = 11400714785074694791
	xxPrime2 uint64 = 14029467366897019727
	xxPrime3 uint64 = 1609587929392839161
	xxPrime4 uint64 = 9650029242287828579
	xxPrime5 uint64 = 2870177450012600261
)

func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// XXH64 hashes data with the xxHash64 algorithm and seed 0.
func XXH64(data []byte) uint64 { return XXH64Seed(data, 0) }

// XXH64Seed hashes data with the xxHash64 algorithm and the given seed.
func XXH64Seed(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	p := data
	if n >= 32 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for len(p) >= 32 {
			v1 = rotl64(v1+binary.LittleEndian.Uint64(p)*xxPrime2, 31) * xxPrime1
			v2 = rotl64(v2+binary.LittleEndian.Uint64(p[8:])*xxPrime2, 31) * xxPrime1
			v3 = rotl64(v3+binary.LittleEndian.Uint64(p[16:])*xxPrime2, 31) * xxPrime1
			v4 = rotl64(v4+binary.LittleEndian.Uint64(p[24:])*xxPrime2, 31) * xxPrime1
			p = p[32:]
		}
		h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18)
		for _, v := range [4]uint64{v1, v2, v3, v4} {
			h ^= rotl64(v*xxPrime2, 31) * xxPrime1
			h = h*xxPrime1 + xxPrime4
		}
	} else {
		h = seed + xxPrime5
	}
	h += uint64(n)
	for len(p) >= 8 {
		h ^= rotl64(binary.LittleEndian.Uint64(p)*xxPrime2, 31) * xxPrime1
		h = rotl64(h, 27)*xxPrime1 + xxPrime4
		p = p[8:]
	}
	if len(p) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(p)) * xxPrime1
		h = rotl64(h, 23)*xxPrime2 + xxPrime3
		p = p[4:]
	}
	for _, b := range p {
		h ^= uint64(b) * xxPrime5
		h = rotl64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

// City-style constants (from the published CityHash64).
const (
	cityK0 uint64 = 0xc3a5c85c97cb3127
	cityK1 uint64 = 0xb492b66fbe98f273
	cityK2 uint64 = 0x9ae16a3b2f90404f
)

func cityShiftMix(v uint64) uint64 { return v ^ v>>47 }

func cityLen16(u, v uint64) uint64 {
	const mul = 0x9ddfea08eb382d69
	a := (u ^ v) * mul
	a ^= a >> 47
	b := (v ^ a) * mul
	b ^= b >> 47
	return b * mul
}

// City64 hashes data with a City-style construction: Murmur-style handling
// for short inputs and a two-accumulator 16-byte-chunk loop with the
// CityHash mixing primitives for longer inputs. It preserves the avalanche
// behaviour of CityHash64 without reproducing its full branch structure.
func City64(data []byte) uint64 {
	n := len(data)
	switch {
	case n == 0:
		return cityK2
	case n <= 16:
		var a, b uint64
		if n >= 8 {
			a = binary.LittleEndian.Uint64(data)
			b = binary.LittleEndian.Uint64(data[n-8:])
		} else if n >= 4 {
			a = uint64(binary.LittleEndian.Uint32(data))
			b = uint64(binary.LittleEndian.Uint32(data[n-4:]))
		} else {
			a = uint64(data[0])
			b = uint64(data[n>>1])<<8 | uint64(data[n-1])<<16
		}
		mul := cityK2 + uint64(n)*2
		return cityLen16(a+cityK2, rotl64(b+uint64(n), 30)*mul) * mul
	default:
		x := cityK2 + uint64(n)
		y := cityK1
		p := data
		for len(p) >= 16 {
			a := binary.LittleEndian.Uint64(p)
			b := binary.LittleEndian.Uint64(p[8:])
			x = rotl64(x+a, 37) * cityK0
			y = rotl64(y^b, 42)*cityK1 + a
			x ^= cityShiftMix(y) * cityK0
			p = p[16:]
		}
		if len(p) > 0 {
			tail := make([]byte, 16)
			copy(tail, p)
			a := binary.LittleEndian.Uint64(tail)
			b := binary.LittleEndian.Uint64(tail[8:]) + uint64(len(p))
			x = rotl64(x+a, 33) * cityK1
			y ^= cityShiftMix(b+cityK0) * cityK1
		}
		return cityLen16(cityShiftMix(x)*cityK0, cityShiftMix(y))
	}
}

// Murmur64 hashes data with MurmurHash64A (Appleby), seed 0.
func Murmur64(data []byte) uint64 {
	const (
		m uint64 = 0xc6a4a7935bd1e995
		r        = 47
	)
	h := uint64(len(data)) * m
	p := data
	for len(p) >= 8 {
		k := binary.LittleEndian.Uint64(p)
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
		p = p[8:]
	}
	for i := len(p) - 1; i >= 0; i-- {
		h ^= uint64(p[i]) << (uint(i) * 8)
	}
	if len(p) > 0 {
		h *= m
	}
	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// BOB is Bob Jenkins' 1996 "hash96" (mix of three 32-bit accumulators over
// 12-byte blocks), with the pair (b,c) folded into 64 bits.
func BOB(data []byte) uint64 {
	var a, b, c uint32 = 0x9e3779b9, 0x9e3779b9, 0
	mix := func() {
		a -= b
		a -= c
		a ^= c >> 13
		b -= c
		b -= a
		b ^= a << 8
		c -= a
		c -= b
		c ^= b >> 13
		a -= b
		a -= c
		a ^= c >> 12
		b -= c
		b -= a
		b ^= a << 16
		c -= a
		c -= b
		c ^= b >> 5
		a -= b
		a -= c
		a ^= c >> 3
		b -= c
		b -= a
		b ^= a << 10
		c -= a
		c -= b
		c ^= b >> 15
	}
	p := data
	for len(p) >= 12 {
		a += binary.LittleEndian.Uint32(p)
		b += binary.LittleEndian.Uint32(p[4:])
		c += binary.LittleEndian.Uint32(p[8:])
		mix()
		p = p[12:]
	}
	c += uint32(len(data))
	switch len(p) {
	case 11:
		c += uint32(p[10]) << 24
		fallthrough
	case 10:
		c += uint32(p[9]) << 16
		fallthrough
	case 9:
		c += uint32(p[8]) << 8
		fallthrough
	case 8:
		b += uint32(p[7]) << 24
		fallthrough
	case 7:
		b += uint32(p[6]) << 16
		fallthrough
	case 6:
		b += uint32(p[5]) << 8
		fallthrough
	case 5:
		b += uint32(p[4])
		fallthrough
	case 4:
		a += uint32(p[3]) << 24
		fallthrough
	case 3:
		a += uint32(p[2]) << 16
		fallthrough
	case 2:
		a += uint32(p[1]) << 8
		fallthrough
	case 1:
		a += uint32(p[0])
	}
	mix()
	return uint64(b)<<32 | uint64(c)
}

// OAAT is Bob Jenkins' one-at-a-time hash, widened to a 64-bit accumulator.
func OAAT(data []byte) uint64 {
	var h uint64
	for _, b := range data {
		h += uint64(b)
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}

// SuperFast is Paul Hsieh's SuperFastHash over 16-bit chunks, widened to a
// 64-bit result via a splitmix finalization of the 32-bit state.
func SuperFast(data []byte) uint64 {
	n := len(data)
	h := uint32(n)
	p := data
	for len(p) >= 4 {
		h += uint32(binary.LittleEndian.Uint16(p))
		tmp := uint32(binary.LittleEndian.Uint16(p[2:]))<<11 ^ h
		h = h<<16 ^ tmp
		h += h >> 11
		p = p[4:]
	}
	switch len(p) {
	case 3:
		h += uint32(binary.LittleEndian.Uint16(p))
		h ^= h << 16
		h ^= uint32(p[2]) << 18
		h += h >> 11
	case 2:
		h += uint32(binary.LittleEndian.Uint16(p))
		h ^= h << 11
		h += h >> 17
	case 1:
		h += uint32(p[0])
		h ^= h << 10
		h += h >> 1
	}
	h ^= h << 3
	h += h >> 5
	h ^= h << 4
	h += h >> 17
	h ^= h << 25
	h += h >> 6
	return Mix64(uint64(h) | uint64(n)<<32)
}

// Hsieh is a byte-granularity variant of Hsieh's mixing schedule; Table II
// lists it separately from SuperFast, so the two use different chunking and
// a different final avalanche to stay mutually independent.
func Hsieh(data []byte) uint64 {
	h := uint32(0x811c9dc5)
	for _, b := range data {
		h += uint32(b)
		h ^= h << 11
		h += h >> 17
	}
	h ^= h << 3
	h += h >> 5
	h ^= h << 2
	h += h >> 15
	h ^= h << 10
	return Mix64(uint64(h)<<32 | uint64(len(data)))
}

// CRC hashes data with the IEEE CRC-32 polynomial (via hash/crc32) in both
// forward and reflected passes to fill 64 bits.
func CRC(data []byte) uint64 {
	fwd := crc32.ChecksumIEEE(data)
	rev := crc32.Update(0xdeadbeef, crc32.MakeTable(crc32.Castagnoli), data)
	return uint64(fwd)<<32 | uint64(rev)
}

// FNV1a is the 64-bit FNV-1a hash.
func FNV1a(data []byte) uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// TWMX accumulates bytes FNV-style and finishes with Thomas Wang's 64-bit
// integer mix.
func TWMX(data []byte) uint64 {
	h := FNV1a(data)
	h = ^h + h<<21
	h ^= h >> 24
	h = h + h<<3 + h<<8
	h ^= h >> 14
	h = h + h<<2 + h<<4
	h ^= h >> 28
	h += h << 31
	return h
}
