package replica

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	habf "repro"
	"repro/internal/server"
)

// buildFilter constructs a small sharded filter over n keys.
func buildFilter(t *testing.T, n int) (*habf.Sharded, [][]byte) {
	t.Helper()
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	f, err := habf.NewSharded(keys, nil, 1<<16, habf.WithShards(4))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return f, keys
}

// newPrimary serves f through a real server.Server over httptest.
func newPrimary(t *testing.T, f *habf.Sharded) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(server.Config{Filter: f})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// holder is the swap target tests hand to OnSwap.
type holder struct {
	f atomic.Pointer[habf.Sharded]
}

func (h *holder) swap(f *habf.Sharded, epoch uint64) error {
	h.f.Store(f)
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{OnSwap: (&holder{}).swap}); err == nil {
		t.Fatal("New accepted empty primary")
	}
	if _, err := New(Config{Primary: "localhost:1"}); err == nil {
		t.Fatal("New accepted nil OnSwap")
	}
	f, err := New(Config{Primary: "localhost:1", OnSwap: (&holder{}).swap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if f.base != "http://localhost:1" {
		t.Fatalf("base = %q, want scheme prepended", f.base)
	}
	f2, _ := New(Config{Primary: "https://p:8080/", OnSwap: (&holder{}).swap})
	if f2.base != "https://p:8080" {
		t.Fatalf("base = %q, want trailing slash trimmed", f2.base)
	}
}

// TestFollowerBootstrapAndResync is the end-to-end tentpole check:
// bootstrap from a live primary, then observe an Add on the primary
// bump the epoch and the follower resync to answer the new key with
// zero false negatives.
func TestFollowerBootstrapAndResync(t *testing.T) {
	pf, keys := buildFilter(t, 64)
	_, ts := newPrimary(t, pf)

	var h holder
	fo, err := New(Config{
		Primary:      ts.URL,
		OnSwap:       h.swap,
		PollInterval: 5 * time.Millisecond,
		MinBackoff:   5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	if err := fo.Sync(context.Background()); err != nil {
		t.Fatalf("initial Sync: %v", err)
	}
	restored := h.f.Load()
	if restored == nil {
		t.Fatal("OnSwap never ran")
	}
	for _, k := range keys {
		if !restored.Contains(k) {
			t.Fatalf("restored filter lost key %q (false negative)", k)
		}
	}
	st := fo.Stats()
	if st.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1", st.Resyncs)
	}
	if st.SyncedEpoch != pf.Epoch() {
		t.Fatalf("SyncedEpoch = %d, primary epoch %d", st.SyncedEpoch, pf.Epoch())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); fo.Run(ctx) }()

	newKey := []byte("added-after-bootstrap")
	pf.Add(newKey)
	waitFor(t, 5*time.Second, func() bool {
		f := h.f.Load()
		return f.Contains(newKey) && fo.Stats().SyncedEpoch == fo.Stats().PrimaryEpoch
	}, "follower to resync the added key")
	if got := fo.Stats(); got.Resyncs < 2 {
		t.Fatalf("Resyncs = %d after epoch bump, want >= 2", got.Resyncs)
	}
	if lag := fo.Stats().Lag(); lag != 0 {
		t.Fatalf("Lag = %d after resync, want 0", lag)
	}
	cancel()
	<-done
}

// TestFollowerSurvivesPrimaryDeathMidPull cuts the snapshot stream
// halfway: the truncated container must fail restore (not install a
// half filter), the follower must keep its previous filter, and the
// next intact pull must succeed.
func TestFollowerSurvivesPrimaryDeathMidPull(t *testing.T) {
	pf, keys := buildFilter(t, 64)
	var snap bytes.Buffer
	if err := pf.Save(&snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	epoch := pf.Epoch()

	var failPulls atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/epoch":
			fmt.Fprintf(w, "%d", epoch)
		case "/v1/snapshot":
			w.Header().Set("X-Habf-Epoch", strconv.FormatUint(epoch, 10))
			if failPulls.Load() {
				w.Write(snap.Bytes()[:snap.Len()/2])
				conn, _, err := w.(http.Hijacker).Hijack()
				if err == nil {
					conn.Close() // die mid-body, like a crashing primary
				}
				return
			}
			w.Write(snap.Bytes())
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	var h holder
	fo, err := New(Config{Primary: ts.URL, OnSwap: h.swap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	failPulls.Store(true)
	if err := fo.Sync(context.Background()); err == nil {
		t.Fatal("Sync of a truncated snapshot succeeded")
	}
	if h.f.Load() != nil {
		t.Fatal("truncated snapshot was swapped in")
	}
	if st := fo.Stats(); st.Failures != 1 || st.Resyncs != 0 {
		t.Fatalf("after failed pull: %+v, want Failures=1 Resyncs=0", st)
	}

	failPulls.Store(false)
	if err := fo.Sync(context.Background()); err != nil {
		t.Fatalf("retry Sync: %v", err)
	}
	restored := h.f.Load()
	if restored == nil {
		t.Fatal("retry did not swap a filter in")
	}
	for _, k := range keys {
		if !restored.Contains(k) {
			t.Fatalf("restored filter lost key %q", k)
		}
	}
	if st := fo.Stats(); st.SyncedEpoch != epoch {
		t.Fatalf("SyncedEpoch = %d, want %d", st.SyncedEpoch, epoch)
	}
}

// TestFollowerKeepsServingWhenPrimaryDies kills the primary after the
// bootstrap sync: the follower's filter must stay installed at the last
// synced epoch while the poll loop fails in the background.
func TestFollowerKeepsServingWhenPrimaryDies(t *testing.T) {
	pf, keys := buildFilter(t, 64)
	srv, err := server.New(server.Config{Filter: pf})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())

	var h holder
	fo, err := New(Config{
		Primary:      ts.URL,
		OnSwap:       h.swap,
		PollInterval: 5 * time.Millisecond,
		MinBackoff:   5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := fo.Sync(context.Background()); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	syncedAt := fo.Stats().SyncedEpoch
	restored := h.f.Load()

	ts.Close() // primary dies

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); fo.Run(ctx) }()

	waitFor(t, 5*time.Second, func() bool { return fo.Stats().Failures >= 2 },
		"poll failures to accumulate")
	cancel()
	<-done

	st := fo.Stats()
	if st.Resyncs != 1 || st.SyncedEpoch != syncedAt {
		t.Fatalf("follower moved off its last sync: %+v", st)
	}
	if h.f.Load() != restored {
		t.Fatal("filter was swapped while the primary was down")
	}
	for _, k := range keys {
		if !restored.Contains(k) {
			t.Fatalf("follower lost key %q while primary was down", k)
		}
	}
}

// TestEpochAdvancesDuringResync serves a snapshot that is already stale
// by the time it finishes downloading (its X-Habf-Epoch header is one
// behind the epoch endpoint). The follower must record the header's
// conservative stamp and immediately pull again rather than declaring
// itself up to date.
func TestEpochAdvancesDuringResync(t *testing.T) {
	pf, _ := buildFilter(t, 64)
	var snapOld bytes.Buffer
	if err := pf.Save(&snapOld); err != nil {
		t.Fatalf("Save: %v", err)
	}
	oldEpoch := pf.Epoch()
	newKey := []byte("landed-mid-pull")
	pf.Add(newKey)
	var snapNew bytes.Buffer
	if err := pf.Save(&snapNew); err != nil {
		t.Fatalf("Save: %v", err)
	}
	newEpoch := pf.Epoch()
	if newEpoch <= oldEpoch {
		t.Fatalf("Add did not advance the epoch: %d -> %d", oldEpoch, newEpoch)
	}

	var pulls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/epoch":
			fmt.Fprintf(w, "%d", newEpoch) // the primary has already moved on
		case "/v1/snapshot":
			if pulls.Add(1) == 1 {
				// First pull: the write landed mid-stream, so the header
				// carries the pre-write epoch and the body the old state.
				w.Header().Set("X-Habf-Epoch", strconv.FormatUint(oldEpoch, 10))
				w.Write(snapOld.Bytes())
				return
			}
			w.Header().Set("X-Habf-Epoch", strconv.FormatUint(newEpoch, 10))
			w.Write(snapNew.Bytes())
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	var h holder
	fo, err := New(Config{
		Primary:      ts.URL,
		OnSwap:       h.swap,
		PollInterval: 5 * time.Millisecond,
		MinBackoff:   5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); fo.Run(ctx) }()

	waitFor(t, 5*time.Second, func() bool {
		return fo.Stats().SyncedEpoch == newEpoch
	}, "follower to chase the mid-pull epoch advance")
	cancel()
	<-done

	if got := pulls.Load(); got < 2 {
		t.Fatalf("pulls = %d, want >= 2 (stale snapshot must trigger a second pull)", got)
	}
	if f := h.f.Load(); !f.Contains(newKey) {
		t.Fatal("follower never caught the key added mid-pull (false negative)")
	}
	if st := fo.Stats(); st.Resyncs != 2 {
		t.Fatalf("Resyncs = %d, want 2", st.Resyncs)
	}
}

// TestFollowerRejectsSwapError keeps the synced epoch untouched when
// the owner's swap callback refuses the filter.
func TestFollowerRejectsSwapError(t *testing.T) {
	pf, _ := buildFilter(t, 16)
	_, ts := newPrimary(t, pf)
	fo, err := New(Config{
		Primary: ts.URL,
		OnSwap:  func(*habf.Sharded, uint64) error { return fmt.Errorf("backend mismatch") },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := fo.Sync(context.Background()); err == nil {
		t.Fatal("Sync succeeded despite the swap being rejected")
	}
	if st := fo.Stats(); st.Resyncs != 0 || st.SyncedEpoch != 0 || st.Failures != 1 {
		t.Fatalf("stats after rejected swap: %+v", st)
	}
}

func TestBackoffHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := jitter(rng, 100*time.Millisecond)
		if d < 50*time.Millisecond || d >= 100*time.Millisecond {
			t.Fatalf("jitter(100ms) = %v, want [50ms, 100ms)", d)
		}
	}
	if got := nextBackoff(100*time.Millisecond, time.Second); got != 200*time.Millisecond {
		t.Fatalf("nextBackoff doubled to %v", got)
	}
	if got := nextBackoff(800*time.Millisecond, time.Second); got != time.Second {
		t.Fatalf("nextBackoff cap: got %v, want 1s", got)
	}
	if got := (Stats{SyncedEpoch: 7, PrimaryEpoch: 5}).Lag(); got != 0 {
		t.Fatalf("Lag saturation: got %d, want 0", got)
	}
	if got := (Stats{SyncedEpoch: 5, PrimaryEpoch: 9}).Lag(); got != 4 {
		t.Fatalf("Lag: got %d, want 4", got)
	}
}
