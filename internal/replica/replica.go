// Package replica implements snapshot-shipping replication for the
// serving layer: a Follower pulls a primary habfserved's snapshot over
// HTTP (GET /v1/snapshot), restores it zero-copy, hands the restored
// filter to its owner through a swap callback, and then polls the
// primary's mutation epoch (GET /v1/epoch), re-syncing whenever it
// advances.
//
// The freshness signal is the epoch the *primary* reports — first in
// the snapshot response's X-Habf-Epoch header, then from the epoch
// endpoint. The follower never compares its own locally computed epoch
// against the primary's: restoring a snapshot re-buffers pending keys,
// which advances the restored filter's local epoch past the value the
// snapshot was taken at, so local epochs from different processes are
// not comparable. Epochs are monotone, so "primary != synced" is
// exactly "there is something newer to pull".
//
// Failure handling is pull-side only and keeps the follower serving:
// if the primary dies mid-pull, or the epoch poll fails, the follower
// keeps answering from the last filter it restored and retries with
// exponential backoff plus jitter. A snapshot whose body is cut short
// fails the container checksum in habf.Load and is discarded — a
// partial pull can never be swapped in.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	habf "repro"
)

// Config configures a Follower. Primary is required; everything else
// has a serviceable default.
type Config struct {
	// Primary is the primary's HTTP base, "host:port" or a full
	// "http://host:port" URL. Paths are appended to it.
	Primary string

	// OnSwap receives each successfully restored filter together with
	// the primary-reported epoch of the snapshot it came from. It runs
	// on the Follower's goroutine; returning an error discards the sync
	// (the epoch is not recorded, so it is retried). Required.
	OnSwap func(f *habf.Sharded, epoch uint64) error

	// PollInterval is how often the primary's epoch is checked while in
	// sync. Default 1s.
	PollInterval time.Duration

	// MinBackoff and MaxBackoff bound the exponential retry delay after
	// a failed poll or pull. Defaults 200ms and 5s.
	MinBackoff time.Duration
	MaxBackoff time.Duration

	// PullTimeout bounds one snapshot download. Default 60s.
	PullTimeout time.Duration

	// PollTimeout bounds one epoch request. Default 2s.
	PollTimeout time.Duration

	// Client is the HTTP client used for both. Default http.DefaultClient.
	Client *http.Client

	// Logf, when set, receives one line per state change (sync, retry).
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of a Follower's replication state.
type Stats struct {
	SyncedEpoch  uint64 // primary-reported epoch of the last restored snapshot
	PrimaryEpoch uint64 // epoch from the most recent successful poll
	Resyncs      uint64 // successful snapshot restores, including the first
	Failures     uint64 // failed polls and pulls since start
	LastSync     time.Time
}

// Lag returns how many epochs the follower is behind the primary, as
// of the last successful poll. Saturates at zero: a primary restarted
// from an older snapshot can briefly report a smaller epoch.
func (s Stats) Lag() uint64 {
	if s.PrimaryEpoch <= s.SyncedEpoch {
		return 0
	}
	return s.PrimaryEpoch - s.SyncedEpoch
}

// Follower replicates one primary. Create with New, bootstrap with
// Sync, then let Run poll; Stats may be read from any goroutine.
type Follower struct {
	cfg  Config
	base string

	synced       atomic.Bool
	syncedEpoch  atomic.Uint64
	primaryEpoch atomic.Uint64
	resyncs      atomic.Uint64
	failures     atomic.Uint64
	lastSync     atomic.Int64 // unix nanos
}

// New validates cfg and returns a Follower. No network traffic happens
// until Sync or Run.
func New(cfg Config) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("replica: primary address required")
	}
	if cfg.OnSwap == nil {
		return nil, errors.New("replica: OnSwap callback required")
	}
	base := strings.TrimSuffix(cfg.Primary, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 200 * time.Millisecond
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = 5 * time.Second
		if cfg.MaxBackoff < cfg.MinBackoff {
			cfg.MaxBackoff = cfg.MinBackoff
		}
	}
	if cfg.PullTimeout <= 0 {
		cfg.PullTimeout = 60 * time.Second
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	return &Follower{cfg: cfg, base: base}, nil
}

// Primary returns the normalized primary base URL ("http://host:port"),
// the redirect target a read-only follower hands to writers.
func (f *Follower) Primary() string { return f.base }

// Stats returns the current replication counters.
func (f *Follower) Stats() Stats {
	return Stats{
		SyncedEpoch:  f.syncedEpoch.Load(),
		PrimaryEpoch: f.primaryEpoch.Load(),
		Resyncs:      f.resyncs.Load(),
		Failures:     f.failures.Load(),
		LastSync:     time.Unix(0, f.lastSync.Load()),
	}
}

// logf writes one log line if a logger is configured.
func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Sync performs one snapshot pull: download, restore, swap. On success
// the snapshot's primary-reported epoch becomes the synced epoch. On
// any failure the previously installed filter stays in place and the
// failure counter advances.
func (f *Follower) Sync(ctx context.Context) error {
	err := f.sync(ctx)
	if err != nil {
		f.failures.Add(1)
	}
	return err
}

func (f *Follower) sync(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.PullTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/v1/snapshot", nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: pull snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("replica: pull snapshot: primary answered %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Habf-Epoch"), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: primary sent no usable X-Habf-Epoch header: %w", err)
	}
	// The restored filter serves directly out of this buffer (zero-copy
	// load), so it is allocated fresh per sync and owned by the filter.
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: pull snapshot: %w", err)
	}
	filter, err := habf.Load(data)
	if err != nil {
		// Covers truncated bodies too: a cut stream fails the container
		// checksum here rather than installing a half-written filter.
		return fmt.Errorf("replica: restore snapshot: %w", err)
	}
	if err := f.cfg.OnSwap(filter, epoch); err != nil {
		return fmt.Errorf("replica: swap rejected: %w", err)
	}
	f.syncedEpoch.Store(epoch)
	f.synced.Store(true)
	f.resyncs.Add(1)
	f.lastSync.Store(time.Now().UnixNano())
	f.logf("replica: synced snapshot at epoch %d (%d bytes)", epoch, len(data))
	return nil
}

// fetchEpoch asks the primary for its current epoch.
func (f *Follower) fetchEpoch(ctx context.Context) (uint64, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.PollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/v1/epoch", nil)
	if err != nil {
		return 0, fmt.Errorf("replica: %w", err)
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("replica: poll epoch: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, fmt.Errorf("replica: poll epoch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replica: poll epoch: primary answered %s", resp.Status)
	}
	epoch, err := strconv.ParseUint(strings.TrimSpace(string(body)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: poll epoch: %w", err)
	}
	return epoch, nil
}

// Run polls the primary until ctx is done, re-syncing whenever the
// primary's epoch differs from the synced one (including the initial
// sync, if Sync was never called). Failures back off exponentially
// with jitter between MinBackoff and MaxBackoff; the follower keeps
// serving its last restored filter throughout.
func (f *Follower) Run(ctx context.Context) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := f.cfg.MinBackoff
	for ctx.Err() == nil {
		delay := f.cfg.PollInterval
		epoch, err := f.fetchEpoch(ctx)
		switch {
		case err != nil:
			f.failures.Add(1)
			f.logf("%v (retrying in %v)", err, backoff)
			delay, backoff = jitter(rng, backoff), nextBackoff(backoff, f.cfg.MaxBackoff)
		case !f.synced.Load() || epoch != f.syncedEpoch.Load():
			f.primaryEpoch.Store(epoch)
			if err := f.Sync(ctx); err != nil {
				f.logf("%v (retrying in %v)", err, backoff)
				delay, backoff = jitter(rng, backoff), nextBackoff(backoff, f.cfg.MaxBackoff)
			} else {
				backoff = f.cfg.MinBackoff
			}
		default:
			f.primaryEpoch.Store(epoch)
			backoff = f.cfg.MinBackoff
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

// jitter spreads a backoff delay over [d/2, d), so a fleet of
// followers losing the same primary does not retry in lockstep.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)))
}

// nextBackoff doubles d up to max.
func nextBackoff(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		return max
	}
	return d
}
