package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// startBinary serves srv's binary protocol on a loopback listener and
// tears it down (with a bounded drain) at test end.
func startBinary(t testing.TB, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBinaryServer(srv)
	done := make(chan error, 1)
	go func() { done <- bs.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := bs.Shutdown(ctx); err != nil {
			t.Errorf("binary shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("binary serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestBinaryEndpointsAgree pins the binary protocol's core contract:
// contains (through the coalescer), contains_batch and add all answer
// exactly like the in-process filter, on one pipelined connection.
func TestBinaryEndpointsAgree(t *testing.T) {
	filter, data := newTestFilter(t, 2000)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startBinary(t, srv)

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	probes := make([][]byte, 0, 400)
	probes = append(probes, data.Positives[:200]...)
	probes = append(probes, data.Negatives[:200]...)
	want := filter.ContainsBatch(probes)

	for i, key := range probes {
		got, err := c.Contains(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("probe %d: binary contains %v, direct %v", i, got, want[i])
		}
	}
	batch, err := c.ContainsBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probes {
		if batch[i] != want[i] {
			t.Fatalf("probe %d: binary batch %v, direct %v", i, batch[i], want[i])
		}
	}

	fresh := []byte("binary-added-key")
	if err := c.Add(fresh); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Contains(fresh); err != nil || !got {
		t.Fatalf("added key denied (present=%v err=%v)", got, err)
	}
	if !filter.Contains(fresh) {
		t.Fatal("binary add not visible to the in-process filter")
	}
}

// TestBinaryAddCopiesKey pins that the server copies Add keys out of
// the decoder scratch: two adds reusing one client buffer must land as
// two distinct keys, not the second overwriting the first.
func TestBinaryAddCopiesKey(t *testing.T) {
	filter, _ := newTestFilter(t, 300)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startBinary(t, srv)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := []byte("scratch-key-A")
	if err := c.Add(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("scratch-key-B"))
	if err := c.Add(buf); err != nil {
		t.Fatal(err)
	}
	filter.WaitRebuilds()
	for _, key := range []string{"scratch-key-A", "scratch-key-B"} {
		if !filter.Contains([]byte(key)) {
			t.Fatalf("add %q lost after buffer reuse", key)
		}
	}
}

// TestBinaryRejectsHostileInput drives raw conns at the listener: a bad
// handshake is dropped silently; hostile frames after a good handshake
// get an error frame and a closed connection — never a truncated-key
// answer.
func TestBinaryRejectsHostileInput(t *testing.T) {
	filter, _ := newTestFilter(t, 300)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startBinary(t, srv)

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		return conn
	}

	t.Run("bad-handshake", func(t *testing.T) {
		conn := dial()
		defer conn.Close()
		conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
		if n, _ := conn.Read(make([]byte, 64)); n != 0 {
			t.Fatalf("got %d response bytes to a non-wire client", n)
		}
	})

	// Each hostile frame must produce a StatusError response and then EOF.
	hostile := map[string][]byte{
		"bad-op":    {0x7f, 0x01},
		"empty-key": append([]byte{byte(wire.OpContains), 1}, 0),
		"huge-key-len": append([]byte{byte(wire.OpContains), 1},
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for name, frame := range hostile {
		t.Run(name, func(t *testing.T) {
			conn := dial()
			defer conn.Close()
			conn.Write(wire.Handshake[:])
			conn.Write(frame)
			resp, err := io.ReadAll(conn)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp) < 3 {
				t.Fatalf("short error response: % x", resp)
			}
			// op(1) id(uvarint=1 byte here) status(1)
			if resp[2] != wire.StatusError {
				t.Fatalf("status %d, want StatusError; full response % x", resp[2], resp)
			}
		})
	}
}

// TestBinaryOversizedKeyRejected is the wire-protocol face of the HTTP
// 413 regression test: a key over MaxKeyLen must be rejected as a
// protocol error, never truncated and answered as a different key.
func TestBinaryOversizedKeyRejected(t *testing.T) {
	filter, _ := newTestFilter(t, 300)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startBinary(t, srv)

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(30 * time.Second))
	// The server rejects on the length prefix alone; depending on timing
	// the client sees the error frame or a write failure mid-key, but
	// never an answer.
	huge := make([]byte, wire.MaxKeyLen+1)
	if _, err := c.Contains(huge); err == nil {
		t.Fatal("oversized key was answered")
	}
	// The server must have cut the connection, not resynced mid-key.
	if err := c.Ping(); err == nil {
		t.Fatal("connection survived an oversized key")
	}
}

// TestBinaryPipelining writes several frames before reading anything:
// responses must come back complete, in order, with matching ids.
func TestBinaryPipelining(t *testing.T) {
	filter, data := newTestFilter(t, 1000)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startBinary(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	const n = 64
	out := append([]byte{}, wire.Handshake[:]...)
	for i := 0; i < n; i++ {
		out = wire.AppendContains(out, uint64(i+1), data.Positives[i])
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	// Each response is op(1) id(uvarint, 1 byte for ids < 128) status(1)
	// present(1) — 4 bytes.
	resp := make([]byte, 0, 4*n)
	buf := make([]byte, 1024)
	for len(resp) < 4*n {
		nr, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("after %d response bytes: %v", len(resp), err)
		}
		resp = append(resp, buf[:nr]...)
	}
	r := bytes.NewReader(resp)
	for i := 0; i < n; i++ {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			t.Fatal(err)
		}
		if hdr[0] != byte(wire.OpContains) || hdr[1] != byte(i+1) || hdr[2] != wire.StatusOK || hdr[3] != '1' {
			t.Fatalf("response %d: % x", i, hdr)
		}
	}
}

// TestBinaryConcurrentClients hammers the binary listener from many
// connections while writers add keys — the -race check that the binary
// path shares the HTTP path's no-external-locking guarantees.
func TestBinaryConcurrentClients(t *testing.T) {
	filter, data := newTestFilter(t, 2000)
	srv, err := New(Config{Filter: filter, Coalesce: CoalesceConfig{MaxBatch: 32}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startBinary(t, srv)

	const (
		readers = 6
		writers = 3
		perG    = 200
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				key := data.Positives[(r*perG+i)%len(data.Positives)]
				present, err := c.Contains(key)
				if err != nil {
					errc <- err
					return
				}
				if !present {
					errc <- fmt.Errorf("reader %d: member denied", r)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				if err := c.Add([]byte(fmt.Sprintf("bin-hammer-%d-%06d", w, i))); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	filter.WaitRebuilds()
	for w := 0; w < writers; w++ {
		for i := 0; i < perG; i += 41 {
			key := fmt.Sprintf("bin-hammer-%d-%06d", w, i)
			if !filter.Contains([]byte(key)) {
				t.Fatalf("acked binary add %q lost", key)
			}
		}
	}
}

// TestBinaryShutdownDrains pins graceful drain: requests in flight at
// Shutdown are answered, the listener stops accepting, and Shutdown
// returns once connections wind down.
func TestBinaryShutdownDrains(t *testing.T) {
	filter, data := newTestFilter(t, 500)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBinaryServer(srv)
	done := make(chan error, 1)
	go func() { done <- bs.Serve(ln) }()

	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if present, err := c.Contains(data.Positives[0]); err != nil || !present {
		t.Fatalf("pre-drain contains: present=%v err=%v", present, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := bs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v after shutdown", err)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	if err := c.Ping(); err == nil {
		t.Fatal("idle connection survived drain")
	}
}

// TestBinaryMetrics checks the binary path shows up in /metrics with
// its own per-op counters, latency histogram and connection gauge.
func TestBinaryMetrics(t *testing.T) {
	filter, data := newTestFilter(t, 500)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	addr := startBinary(t, srv)

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Contains(data.Positives[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.ContainsBatch(data.Positives[:32]); err != nil {
		t.Fatal(err)
	}
	if err := c.Add([]byte("metrics-key")); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`habfserved_requests_total{endpoint="binary_contains"} 10`,
		`habfserved_requests_total{endpoint="binary_contains_batch"} 1`,
		`habfserved_requests_total{endpoint="binary_add"} 1`,
		`habfserved_requests_total{endpoint="binary_ping"} 1`,
		"habfserved_binary_contains_duration_seconds_count 10",
		"habfserved_binary_batch_duration_seconds_count 1",
		"habfserved_binary_connections 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}
