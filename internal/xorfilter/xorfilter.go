// Package xorfilter implements the Xor filter of Graf & Lemire ("Xor
// Filters: Faster and Smaller Than Bloom and Cuckoo Filters", JEA 2020),
// the strongest non-learned baseline in the paper's evaluation.
//
// A key is mapped to three slots, one in each third of a table of
// w-bit fingerprints; membership holds when the xor of the three slots
// equals the key's fingerprint. Construction peels a random 3-uniform
// hypergraph; it succeeds with high probability at 1.23·n + 32 slots and
// retries with a new seed otherwise. Following §V-A of the paper, the
// fingerprint width is derived from the bits-per-key budget as
// ⌊b / (1.23 + 32/n)⌋ so that Xor and Bloom use the same space.
package xorfilter

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/hashes"
)

// Filter is an immutable xor filter over a static key set.
type Filter struct {
	fingerprints *bitset.Lanes
	seed         uint64
	blockLen     uint64
	width        uint
	n            uint64
}

const maxAttempts = 64

// FingerprintBits returns the fingerprint width for a bits-per-key budget
// b and n keys, per the paper's setting, clamped to [1, 32].
func FingerprintBits(bitsPerKey float64, n int) uint {
	if n == 0 {
		return 1
	}
	w := int(bitsPerKey / (1.23 + 32.0/float64(n)))
	if w < 1 {
		w = 1
	}
	if w > 32 {
		w = 32
	}
	return uint(w)
}

// New builds a filter over keys with the given fingerprint width.
// Keys must be unique; duplicate keys make peeling impossible and
// construction reports failure after retrying.
func New(keys [][]byte, width uint) (*Filter, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("xorfilter: empty key set")
	}
	if width == 0 || width > 32 {
		return nil, fmt.Errorf("xorfilter: fingerprint width %d out of range [1,32]", width)
	}
	size := uint64(32 + 123*uint64(len(keys))/100)
	blockLen := (size + 2) / 3
	capacity := 3 * blockLen

	type slotSet struct {
		xormask uint64
		count   uint32
	}
	sets := make([]slotSet, capacity)
	type stackEntry struct {
		hash uint64
		slot uint64
	}
	stack := make([]stackEntry, 0, len(keys))
	queue := make([]uint64, 0, capacity)

	f := &Filter{blockLen: blockLen, width: width, n: uint64(len(keys))}

	for attempt := 0; attempt < maxAttempts; attempt++ {
		f.seed = hashes.Mix64(uint64(attempt)*0x9e3779b97f4a7c15 + 0x1234567)
		for i := range sets {
			sets[i] = slotSet{}
		}
		stack = stack[:0]
		queue = queue[:0]

		for _, key := range keys {
			h := f.keyHash(hashes.Base(key))
			for _, s := range f.slots(h) {
				sets[s].xormask ^= h
				sets[s].count++
			}
		}
		for i := range sets {
			if sets[i].count == 1 {
				queue = append(queue, uint64(i))
			}
		}
		for len(queue) > 0 {
			slot := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if sets[slot].count != 1 {
				continue
			}
			h := sets[slot].xormask
			stack = append(stack, stackEntry{hash: h, slot: slot})
			for _, s := range f.slots(h) {
				sets[s].xormask ^= h
				sets[s].count--
				if sets[s].count == 1 {
					queue = append(queue, s)
				}
			}
		}
		if uint64(len(stack)) == f.n {
			f.fingerprints = bitset.NewLanes(capacity, width)
			for i := len(stack) - 1; i >= 0; i-- {
				e := stack[i]
				fp := f.fingerprint(e.hash)
				for _, s := range f.slots(e.hash) {
					if s != e.slot {
						fp ^= f.fingerprints.Get(s)
					}
				}
				f.fingerprints.Set(e.slot, fp)
			}
			return f, nil
		}
	}
	return nil, fmt.Errorf("xorfilter: construction failed after %d attempts (duplicate keys?)", maxAttempts)
}

// NewWithBudget builds a filter whose fingerprint width is derived from a
// bits-per-key budget, matching the paper's space-equal comparisons.
func NewWithBudget(keys [][]byte, bitsPerKey float64) (*Filter, error) {
	return New(keys, FingerprintBits(bitsPerKey, len(keys)))
}

// rotl64 rotates x left by r bits.
func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// keyHash derives the per-attempt key hash from the shared base hash
// (hashes.Base) and the attempt seed. Re-mixing one strong 64-bit value
// per attempt instead of re-hashing the key bytes is the idiom of the
// reference xor-filter implementations, and it lets prepared batch
// callers that already computed the base for shard routing skip the key
// bytes entirely (ContainsHash).
func (f *Filter) keyHash(base uint64) uint64 {
	return hashes.Mix64(base ^ f.seed)
}

// slots returns the three table positions of a key hash, one per block.
// Rotations (not shifts) keep all 32 bits of each window significant,
// which the multiply-shift reduction depends on.
func (f *Filter) slots(h uint64) [3]uint64 {
	r0 := uint32(h)
	r1 := uint32(rotl64(h, 21))
	r2 := uint32(rotl64(h, 42))
	return [3]uint64{
		reduce(r0, f.blockLen),
		f.blockLen + reduce(r1, f.blockLen),
		2*f.blockLen + reduce(r2, f.blockLen),
	}
}

// reduce maps a 32-bit value into [0, n) without division (Lemire's trick).
func reduce(x uint32, n uint64) uint64 {
	return (uint64(x) * n) >> 32
}

// fingerprint derives the w-bit fingerprint from a key hash.
func (f *Filter) fingerprint(h uint64) uint64 {
	v := h ^ h>>32
	if f.width < 64 {
		v &= (1 << f.width) - 1
	}
	return v
}

// Contains reports whether key may be in the set. False positives occur
// with probability about 2^-width; false negatives never.
func (f *Filter) Contains(key []byte) bool {
	return f.ContainsHash(hashes.Base(key))
}

// ContainsHash is Contains for a precomputed base = hashes.Base(key).
func (f *Filter) ContainsHash(base uint64) bool {
	h := f.keyHash(base)
	s := f.slots(h)
	v := f.fingerprints.Get(s[0]) ^ f.fingerprints.Get(s[1]) ^ f.fingerprints.Get(s[2])
	return v == f.fingerprint(h)
}

// Name identifies the filter in experiment output.
func (f *Filter) Name() string { return "Xor" }

// Width returns the fingerprint width in bits.
func (f *Filter) Width() uint { return f.width }

// SizeBits returns the memory consumed by the query-time structure in bits.
func (f *Filter) SizeBits() uint64 { return f.fingerprints.SizeBytes() * 8 }

// Count returns the number of keys the filter was built over.
func (f *Filter) Count() uint64 { return f.n }

// TheoreticalFPR returns the expected false-positive probability 2^-width.
func (f *Filter) TheoreticalFPR() float64 {
	return 1.0 / float64(uint64(1)<<f.width)
}
