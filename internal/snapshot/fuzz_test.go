package snapshot_test

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"

	"repro/internal/habf"
	"repro/internal/shard"
	"repro/internal/snapshot"
)

// FuzzUnmarshalSnapshot hardens the container decoder and the full
// restore path behind it: arbitrary bytes must never panic and must
// never trigger an allocation not bounded by the input length (hostile
// shard counts, frame lengths and bitset lengths are all rejected
// against len(data) before any make). Accepted containers must restore
// into a set whose queries do not panic.
func FuzzUnmarshalSnapshot(f *testing.F) {
	pos := make([][]byte, 300)
	neg := make([]habf.WeightedKey, 300)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("fz-pos-%04d", i))
		neg[i] = habf.WeightedKey{Key: []byte(fmt.Sprintf("fz-neg-%04d", i)), Cost: float64(i%7 + 1)}
	}
	set, err := shard.New(pos, neg, shard.Config{Shards: 4, TotalBits: 300 * 12})
	if err != nil {
		f.Fatal(err)
	}
	snap, err := set.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	good, err := snap.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("HSNP"))
	// Truncated mid-frame: header intact, tail gone.
	f.Add(good[:len(good)/3])
	// Truncated to just under the footer.
	f.Add(good[:len(good)-17])
	// Corrupted payload byte: frame CRC must catch it.
	crcBad := append([]byte(nil), good...)
	crcBad[len(crcBad)/2] ^= 0x40
	f.Add(crcBad)
	// Corrupted frame CRC field itself (first frame header, bytes 16:20).
	fieldBad := append([]byte(nil), good...)
	fieldBad[64+16] ^= 0x01
	f.Add(fieldBad)
	// Header declaring a huge shard count, with the header CRC recomputed
	// so the seed reaches the implausible-count allocation guard instead
	// of dying on the CRC check.
	huge := append([]byte(nil), good...)
	huge[52], huge[53], huge[54], huge[55] = 0xFF, 0xFF, 0xFF, 0x7F
	binary.LittleEndian.PutUint32(huge[60:64], crc32.Checksum(huge[:60], crc32.MakeTable(crc32.Castagnoli)))
	f.Add(huge)
	// Wrong container kind (CRC fixed up the same way): the type
	// discriminator, not shard.Restore, must reject it.
	wrongKind := append([]byte(nil), good...)
	wrongKind[48] = 2 // KindFilterBlocks in a sharded-set restore path
	binary.LittleEndian.PutUint32(wrongKind[60:64], crc32.Checksum(wrongKind[:60], crc32.MakeTable(crc32.Castagnoli)))
	f.Add(wrongKind)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snapshot.Unmarshal(data)
		if err != nil {
			return // rejected, fine
		}
		restored, err := shard.Restore(s)
		if err != nil {
			return // container fine, payloads not a valid filter set
		}
		// Whatever survived both validators must serve without panicking.
		restored.Contains([]byte("probe"))
		restored.Contains(nil)
		restored.Add([]byte("post-restore-add"))
		if !restored.Contains([]byte("post-restore-add")) {
			t.Fatal("restored set lost an added key")
		}
		restored.WaitRebuilds()
	})
}
