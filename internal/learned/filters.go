package learned

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bloom"
)

// LBF is Kraska et al.'s Learned Bloom filter: a classifier with threshold
// τ in front of a backup Bloom filter holding the classifier's false
// negatives. Keys scoring ≥ τ are declared members immediately.
type LBF struct {
	model  Model
	tau    float64
	backup *bloom.Filter // nil when the model captures every positive
	name   string
}

// trivialBloomBits sizes the bloom filter backing a trivially-correct
// learned filter: a 0- or 1-key input has no score distribution to train
// on or sweep τ over, so the constructors skip the model entirely.
const trivialBloomBits = 64

// trivialLBF is the degenerate 0/1-key filter: no model, membership is a
// tiny Bloom filter over the single key (or constant false when empty).
func trivialLBF(name string, positives [][]byte) (*LBF, error) {
	l := &LBF{tau: 2, name: name}
	if len(positives) > 0 {
		backup, err := bloom.NewWithKeys(positives, trivialBloomBits, bloom.StrategySplit128)
		if err != nil {
			return nil, err
		}
		l.backup = backup
	}
	return l, nil
}

// NewLBF trains a logistic model on the labelled keys and builds an LBF
// within totalBits (model parameters + backup filter). The threshold is
// chosen by sweeping score quantiles of the negative sample and minimizing
// the estimated overall FPR, as in the original paper.
func NewLBF(positives, negatives [][]byte, totalBits uint64, cfg TrainConfig) (*LBF, error) {
	if len(positives) <= 1 {
		return trivialLBF("LBF", positives)
	}
	model := TrainLogistic(positives, negatives, cfg)
	return assembleLBF(model, "LBF", positives, negatives, totalBits)
}

// NewLBFWithGRU builds an LBF around the paper's 16-dim character GRU
// instead of the hashed-trigram logistic model. Training subsamples very
// large key sets (BPTT over millions of keys is impractical in pure Go);
// the threshold sweep and backup assembly are identical to NewLBF.
func NewLBFWithGRU(positives, negatives [][]byte, totalBits uint64) (*LBF, error) {
	if len(positives) <= 1 {
		return trivialLBF("LBF(GRU)", positives)
	}
	const trainCap = 8000 // per side
	pt := subsample(positives, trainCap, 1)
	nt := subsample(negatives, trainCap, 2)
	model := TrainGRU(pt, nt, GRUConfig{})
	return assembleLBF(model, "LBF(GRU)", positives, negatives, totalBits)
}

// subsample draws up to max keys evenly across the whole slice: one key
// per stride-sized window, position seeded. Slicing a prefix instead
// trains the model on whatever region sorts first — on a sorted or
// clustered key set the holdout is then effectively out-of-distribution.
func subsample(keys [][]byte, max int, seed int64) [][]byte {
	if len(keys) <= max {
		return keys
	}
	rng := rand.New(rand.NewSource(seed))
	stride := float64(len(keys)) / float64(max)
	out := make([][]byte, 0, max)
	for i := 0; i < max; i++ {
		lo := int(float64(i) * stride)
		hi := int(float64(i+1) * stride)
		if hi > len(keys) {
			hi = len(keys)
		}
		if hi <= lo {
			hi = lo + 1
		}
		out = append(out, keys[lo+rng.Intn(hi-lo)])
	}
	return out
}

func assembleLBF(model Model, name string, positives, negatives [][]byte, totalBits uint64) (*LBF, error) {
	if model.SizeBits() >= totalBits {
		return nil, fmt.Errorf("learned: model (%d bits) exceeds budget (%d bits)", model.SizeBits(), totalBits)
	}
	backupBits := totalBits - model.SizeBits()

	tau, fns, posScores := chooseTau(model, positives, negatives, backupBits)
	l := &LBF{model: model, tau: tau, name: name}
	if len(fns) > 0 {
		bpk := float64(backupBits) / float64(len(fns))
		if bpk < 1 {
			bpk = 1
		}
		backup, err := bloom.NewWithKeys(fns, bpk, bloom.StrategySplit128)
		if err != nil {
			return nil, err
		}
		l.backup = backup
	}
	// The τ sweep and the backup construction above must jointly cover
	// every positive — a key scoring below τ with no backup hit would be
	// a false negative, which the filter contract forbids. Verify through
	// the real query path rather than trusting the sweep's bookkeeping:
	// this also catches a model whose scores are not stable across calls.
	for i, k := range positives {
		if !l.Contains(k) {
			return nil, fmt.Errorf("learned: %s assembly produced a false negative (key %q, build-time score %.4f, τ %.4f)", name, k, posScores[i], tau)
		}
	}
	return l, nil
}

// chooseTau sweeps candidate thresholds and returns the minimizer of the
// estimated end-to-end FPR together with the model's false negatives (the
// positives the backup filter must hold) and every positive's score.
func chooseTau(model Model, positives, negatives [][]byte, backupBits uint64) (float64, [][]byte, []float64) {
	posScores := make([]float64, len(positives))
	for i, k := range positives {
		posScores[i] = model.Score(k)
	}
	negScores := make([]float64, len(negatives))
	for i, k := range negatives {
		negScores[i] = model.Score(k)
	}
	sortedNeg := append([]float64(nil), negScores...)
	sort.Float64s(sortedNeg)

	// Candidate τ values: high quantiles of the negative score
	// distribution (targeting model FPRs of 10%, 5%, 2%, 1%, 0.5%, 0.1%)
	// plus 1.0 (model disabled).
	var candidates []float64
	if len(sortedNeg) > 0 {
		for _, q := range []float64{0.90, 0.95, 0.98, 0.99, 0.995, 0.999} {
			candidates = append(candidates, sortedNeg[int(q*float64(len(sortedNeg)-1))])
		}
	}
	candidates = append(candidates, 1.01) // sentinel: classify nothing positive

	bestTau, bestEst := 1.01, math.Inf(1)
	for _, tau := range candidates {
		modelFP := 0
		for _, s := range negScores {
			if s >= tau {
				modelFP++
			}
		}
		fpModel := 0.0
		if len(negScores) > 0 {
			fpModel = float64(modelFP) / float64(len(negScores))
		}
		fn := 0
		for _, s := range posScores {
			if s < tau {
				fn++
			}
		}
		var fpBackup float64
		if fn > 0 {
			bpk := float64(backupBits) / float64(fn)
			fpBackup = bloom.TheoreticalFPR(bpk, bloom.OptimalK(bpk))
		}
		est := fpModel + (1-fpModel)*fpBackup
		if est < bestEst {
			bestEst, bestTau = est, tau
		}
	}

	var fns [][]byte
	for i, k := range positives {
		if posScores[i] < bestTau {
			fns = append(fns, k)
		}
	}
	return bestTau, fns, posScores
}

// Contains reports whether key may be a member. Positives below τ are in
// the backup filter, so no false negatives.
func (l *LBF) Contains(key []byte) bool {
	if l.model != nil && l.model.Score(key) >= l.tau {
		return true
	}
	if l.backup == nil {
		return false
	}
	return l.backup.Contains(key)
}

// Name identifies the filter in experiment output.
func (l *LBF) Name() string { return l.name }

// SizeBits returns model plus backup footprint.
func (l *LBF) SizeBits() uint64 {
	var s uint64
	if l.model != nil {
		s += l.model.SizeBits()
	}
	if l.backup != nil {
		s += l.backup.SizeBits()
	}
	return s
}

// SLBF is Mitzenmacher's Sandwiched LBF: an initial Bloom filter screens
// all queries, then the LBF stage handles survivors. The initial filter
// takes half of the non-model budget (the optimal split derived in the
// SLBF paper is workload-dependent; one half is its recommended default
// when the model FPR/FNR trade is balanced).
type SLBF struct {
	initial *bloom.Filter
	lbf     *LBF
}

// NewSLBF trains a model and assembles the sandwich within totalBits.
func NewSLBF(positives, negatives [][]byte, totalBits uint64, cfg TrainConfig) (*SLBF, error) {
	if len(positives) <= 1 {
		lbf, err := trivialLBF("SLBF", positives)
		if err != nil {
			return nil, err
		}
		return &SLBF{lbf: lbf}, nil
	}
	model := TrainLogistic(positives, negatives, cfg)
	return assembleSLBF(model, positives, negatives, totalBits, 0.5)
}

// assembleSLBF builds the sandwich: split is the fraction of the
// non-model budget spent on the initial filter.
func assembleSLBF(model Model, positives, negatives [][]byte, totalBits uint64, split float64) (*SLBF, error) {
	if model.SizeBits() >= totalBits {
		return nil, fmt.Errorf("learned: model (%d bits) exceeds budget (%d bits)", model.SizeBits(), totalBits)
	}
	rest := totalBits - model.SizeBits()
	initialBits := uint64(float64(rest) * split)
	bpk := float64(initialBits) / float64(len(positives))
	if bpk < 1 {
		bpk = 1
	}
	initial, err := bloom.NewWithKeys(positives, bpk, bloom.StrategySplit128)
	if err != nil {
		return nil, err
	}
	lbfBudget := totalBits - initial.SizeBits()
	if lbfBudget <= model.SizeBits() {
		lbfBudget = model.SizeBits() + 128
	}
	lbf, err := assembleLBF(model, "SLBF", positives, negatives, lbfBudget)
	if err != nil {
		return nil, err
	}
	return &SLBF{initial: initial, lbf: lbf}, nil
}

// Contains reports whether key may be a member.
func (s *SLBF) Contains(key []byte) bool {
	if s.initial != nil && !s.initial.Contains(key) {
		return false
	}
	return s.lbf.Contains(key)
}

// Name identifies the filter in experiment output.
func (s *SLBF) Name() string { return "SLBF" }

// SizeBits returns the full sandwich footprint.
func (s *SLBF) SizeBits() uint64 {
	var sz uint64
	if s.initial != nil {
		sz += s.initial.SizeBits()
	}
	return sz + s.lbf.SizeBits()
}

// AdaBF is Dai & Shrivastava's Adaptive Learned Bloom filter: one shared
// bit array, with the per-key hash count decreasing as the model score
// increases (high-score keys are probably members, so fewer bits suffice).
type AdaBF struct {
	model      Model
	bits       *bloom.Filter // shared array, queried with per-group k
	boundaries []float64     // score quantile boundaries, ascending
	ks         []int         // hash count per group, len = len(boundaries)+1
}

// adaGroups is the default number of score groups g (the Ada-BF paper
// uses a handful; 4 keeps tuning stable at our scales).
const adaGroups = 4

// trivialAdaBF is the degenerate 0/1-key filter: no model, one group.
func trivialAdaBF(positives [][]byte) (*AdaBF, error) {
	a := &AdaBF{ks: []int{1}}
	if len(positives) > 0 {
		bits, err := bloom.NewWithKeys(positives, trivialBloomBits, bloom.StrategySplit128)
		if err != nil {
			return nil, err
		}
		// ContainsK caps at the filter's own k, so a ks of 30 (the
		// OptimalK ceiling) always re-checks with the k AddK used.
		a.bits, a.ks = bits, []int{30}
	}
	return a, nil
}

// NewAdaBF trains a model and builds the group-adaptive filter.
func NewAdaBF(positives, negatives [][]byte, totalBits uint64, cfg TrainConfig) (*AdaBF, error) {
	if len(positives) <= 1 {
		return trivialAdaBF(positives)
	}
	model := TrainLogistic(positives, negatives, cfg)
	return assembleAdaBF(model, positives, totalBits, adaGroups)
}

func assembleAdaBF(model Model, positives [][]byte, totalBits uint64, groups int) (*AdaBF, error) {
	if model.SizeBits() >= totalBits {
		return nil, fmt.Errorf("learned: model (%d bits) exceeds budget (%d bits)", model.SizeBits(), totalBits)
	}
	arrayBits := totalBits - model.SizeBits()
	if groups < 1 {
		groups = adaGroups
	}
	if groups > len(positives) {
		groups = len(positives)
	}

	scores := make([]float64, len(positives))
	for i, k := range positives {
		scores[i] = model.Score(k)
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	boundaries := make([]float64, groups-1)
	for g := 1; g < groups; g++ {
		boundaries[g-1] = sorted[g*len(sorted)/groups]
	}

	bpk := float64(arrayBits) / float64(len(positives))
	baseK := bloom.OptimalK(bpk)
	ks := make([]int, groups)
	for g := 0; g < groups; g++ {
		// Lowest-score group gets baseK+1, highest gets max(1, baseK-2).
		k := baseK + 1 - g
		if k < 1 {
			k = 1
		}
		ks[g] = k
	}

	arr, err := bloom.New(arrayBits, 30, bloom.StrategySplit128)
	if err != nil {
		return nil, err
	}
	a := &AdaBF{model: model, bits: arr, boundaries: boundaries, ks: ks}
	for i, k := range positives {
		a.insert(k, a.group(scores[i]))
	}
	return a, nil
}

func (a *AdaBF) group(score float64) int {
	for g, b := range a.boundaries {
		if score < b {
			return g
		}
	}
	return len(a.ks) - 1
}

func (a *AdaBF) insert(key []byte, g int) {
	a.bits.AddK(key, a.ks[g])
}

// Contains reports whether key may be a member, checking the hash count of
// the key's score group. Group assignment is deterministic in the key, so
// inserted keys are always re-checked with the same k — zero false
// negatives.
func (a *AdaBF) Contains(key []byte) bool {
	if a.bits == nil {
		return false
	}
	g := 0
	if a.model != nil {
		g = a.group(a.model.Score(key))
	}
	return a.bits.ContainsK(key, a.ks[g])
}

// Name identifies the filter in experiment output.
func (a *AdaBF) Name() string { return "Ada-BF" }

// SizeBits returns model plus bit-array footprint.
func (a *AdaBF) SizeBits() uint64 {
	var s uint64
	if a.model != nil {
		s += a.model.SizeBits()
	}
	if a.bits != nil {
		s += a.bits.SizeBits()
	}
	return s
}

// ServeOptions configures the serve-path constructors behind the
// filtercore adapters. Every field is a snapshot-durable tuning knob:
// rebuilding a restored set with the same knobs and keys reproduces the
// same filter bit-for-bit (training is seed-deterministic).
type ServeOptions struct {
	Model  string  // "logistic" (default) or "gru"
	Epochs int     // 0 = family default
	Seed   int64   // 0 = 1
	Split  float64 // SLBF: initial-filter fraction of the non-model budget; 0 = 0.5
	Groups int     // AdaBF: number of score groups; 0 = 4
}

// gruServeTrainCap bounds GRU training cost per shard build on the serve
// path (BPTT is the dominant cost; the model quality saturates well
// below this at our scales).
const gruServeTrainCap = 4000

func (o ServeOptions) train(positives, negatives [][]byte) Model {
	if o.Model == "gru" {
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		pt := subsample(positives, gruServeTrainCap, seed)
		nt := subsample(negatives, gruServeTrainCap, seed+1)
		return TrainGRU(pt, nt, GRUConfig{Epochs: o.Epochs, Seed: seed})
	}
	return TrainLogistic(positives, negatives, TrainConfig{Epochs: o.Epochs, Seed: o.Seed})
}

// serveBudget widens totalBits so the trained model always fits: sharded
// builds hand per-shard budgets of bits-per-key × keys, which for small
// shards is less than the model parameters alone. Learned backends treat
// the budget as a target rather than a hard cap and report their real
// footprint via SizeBits — erroring out here would make every small
// shard unbuildable.
func serveBudget(totalBits, modelBits uint64, n int) uint64 {
	var rest uint64
	if totalBits > modelBits {
		rest = totalBits - modelBits
	}
	floor := uint64(8 * n)
	if floor < 128 {
		floor = 128
	}
	if rest < floor {
		rest = floor
	}
	return modelBits + rest
}

// BuildLBF is the serve-path LBF constructor: never fails on small
// budgets or degenerate key counts.
func BuildLBF(positives, negatives [][]byte, totalBits uint64, o ServeOptions) (*LBF, error) {
	if len(positives) <= 1 {
		return trivialLBF("LBF", positives)
	}
	name := "LBF"
	if o.Model == "gru" {
		name = "LBF(GRU)"
	}
	model := o.train(positives, negatives)
	return assembleLBF(model, name, positives, negatives, serveBudget(totalBits, model.SizeBits(), len(positives)))
}

// BuildSLBF is the serve-path SLBF constructor.
func BuildSLBF(positives, negatives [][]byte, totalBits uint64, o ServeOptions) (*SLBF, error) {
	if len(positives) <= 1 {
		lbf, err := trivialLBF("SLBF", positives)
		if err != nil {
			return nil, err
		}
		return &SLBF{lbf: lbf}, nil
	}
	split := o.Split
	if split <= 0 || split >= 1 {
		split = 0.5
	}
	model := o.train(positives, negatives)
	return assembleSLBF(model, positives, negatives, serveBudget(totalBits, model.SizeBits(), len(positives)), split)
}

// BuildAdaBF is the serve-path Ada-BF constructor.
func BuildAdaBF(positives, negatives [][]byte, totalBits uint64, o ServeOptions) (*AdaBF, error) {
	if len(positives) <= 1 {
		return trivialAdaBF(positives)
	}
	groups := o.Groups
	if groups < 1 {
		groups = adaGroups
	}
	model := o.train(positives, negatives)
	return assembleAdaBF(model, positives, serveBudget(totalBits, model.SizeBits(), len(positives)), groups)
}
