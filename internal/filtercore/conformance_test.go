package filtercore_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/filtercore"
	"repro/internal/habf"
)

// conformanceKeys builds a deterministic key fixture: n members, n
// weighted non-members.
func conformanceKeys(n int) (pos [][]byte, neg []habf.WeightedKey, negKeys [][]byte) {
	pos = make([][]byte, n)
	neg = make([]habf.WeightedKey, n)
	negKeys = make([][]byte, n)
	for i := 0; i < n; i++ {
		pos[i] = []byte(fmt.Sprintf("conf-member-%06d", i))
		negKeys[i] = []byte(fmt.Sprintf("conf-absent-%06d", i))
		neg[i] = habf.WeightedKey{Key: negKeys[i], Cost: float64(i%9 + 1)}
	}
	return pos, neg, negKeys
}

// backendsUnderTest returns the factories to exercise: all registered
// ones, or the single backend named by FILTERCORE_BACKEND (the CI
// matrix sets it so each backend gets an isolated, labelled run).
func backendsUnderTest(t *testing.T) []*filtercore.Factory {
	if only := os.Getenv("FILTERCORE_BACKEND"); only != "" {
		f, err := filtercore.ByName(only)
		if err != nil {
			t.Fatalf("FILTERCORE_BACKEND: %v", err)
		}
		return []*filtercore.Factory{f}
	}
	var out []*filtercore.Factory
	for _, name := range filtercore.Names() {
		f, err := filtercore.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

func buildBackend(t *testing.T, f *filtercore.Factory, pos [][]byte, neg []habf.WeightedKey) filtercore.Backend {
	t.Helper()
	b, err := f.Build(pos, neg, filtercore.BuildConfig{
		TotalBits: uint64(12 * len(pos)),
		Params:    habf.Params{Seed: 7},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return b
}

// TestBackendConformance is the table-driven contract every registered
// backend must honor: zero false negatives on members, batch/per-key
// parity, marshal round-trips (owned and borrow mode), a coherent
// static/mutable Add contract, and truthful self-description.
func TestBackendConformance(t *testing.T) {
	pos, neg, negKeys := conformanceKeys(3000)
	for _, f := range backendsUnderTest(t) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			b := buildBackend(t, f, pos, neg)

			if b.Kind() != f.Kind {
				t.Errorf("instance kind %d != factory kind %d", b.Kind(), f.Kind)
			}
			if b.Name() == "" || b.SizeBits() == 0 {
				t.Errorf("backend does not describe itself: name %q, size %d", b.Name(), b.SizeBits())
			}
			if got := f.InnerName(habf.Params{}); got == "" {
				t.Error("empty InnerName")
			}

			// Zero false negatives, ever.
			for _, key := range pos {
				if !b.Contains(key) {
					t.Fatalf("false negative for %q", key)
				}
			}

			// ContainsBatch must agree with per-key Contains on a mixed
			// probe stream (members, known negatives, never-seen keys).
			probes := append(append([][]byte{}, pos[:500]...), negKeys[:500]...)
			for i := 0; i < 200; i++ {
				probes = append(probes, []byte(fmt.Sprintf("conf-novel-%06d", i)))
			}
			batch := b.ContainsBatch(probes)
			if len(batch) != len(probes) {
				t.Fatalf("batch returned %d results for %d keys", len(batch), len(probes))
			}
			for i, key := range probes {
				if want := b.Contains(key); batch[i] != want {
					t.Fatalf("probe %d (%q): batch=%v per-key=%v", i, key, batch[i], want)
				}
			}

			// Marshal → unmarshal round trip, both modes, identical answers.
			wire, err := b.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			for mode, unmarshal := range map[string]func([]byte) (filtercore.Backend, error){
				"owned":  f.Unmarshal,
				"borrow": f.UnmarshalBorrow,
			} {
				got, err := unmarshal(wire)
				if err != nil {
					t.Fatalf("%s unmarshal: %v", mode, err)
				}
				if got.Kind() != f.Kind {
					t.Errorf("%s: decoded kind %d != %d", mode, got.Kind(), f.Kind)
				}
				if got.SizeBits() != b.SizeBits() {
					t.Errorf("%s: decoded size %d != %d", mode, got.SizeBits(), b.SizeBits())
				}
				for i, key := range probes {
					if got.Contains(key) != batch[i] {
						t.Fatalf("%s: decoded filter disagrees on probe %d (%q)", mode, i, key)
					}
				}
			}

			// The wire payload's align offset must be inside the payload.
			if off := b.WireAlignOffset(); off < 0 || off >= len(wire) {
				t.Errorf("WireAlignOffset %d outside payload of %d bytes", off, len(wire))
			}

			// Add contract: static backends refuse with ErrStaticBackend
			// and stay unchanged; mutable backends absorb, count, and
			// answer immediately.
			fresh := []byte("conf-added-key")
			err = b.Add(fresh)
			if f.Static {
				if err != filtercore.ErrStaticBackend {
					t.Fatalf("static backend Add returned %v, want ErrStaticBackend", err)
				}
				if b.AddedKeys() != 0 {
					t.Errorf("static backend counts %d added keys", b.AddedKeys())
				}
			} else {
				if err != nil {
					t.Fatalf("mutable backend Add: %v", err)
				}
				if !b.Contains(fresh) {
					t.Fatal("added key not queryable")
				}
				if b.AddedKeys() != 1 {
					t.Errorf("AddedKeys = %d after one Add, want 1", b.AddedKeys())
				}
				// The decoded-then-mutated filter must also absorb Adds
				// without corrupting the borrow source (copy-on-write).
				dec, err := f.UnmarshalBorrow(wire)
				if err != nil {
					t.Fatal(err)
				}
				wireCopy := append([]byte(nil), wire...)
				if err := dec.Add(fresh); err != nil {
					t.Fatalf("Add on borrowed filter: %v", err)
				}
				if !dec.Contains(fresh) {
					t.Fatal("borrowed filter lost added key")
				}
				if string(wire) != string(wireCopy) {
					t.Fatal("Add on borrowed filter mutated the wire buffer")
				}
			}
		})
	}
}

// TestBackendConcurrentReaders hammers concurrent Contains/ContainsBatch
// on one backend instance — the read-side contract the shard layer
// depends on. Run with -race (CI does).
func TestBackendConcurrentReaders(t *testing.T) {
	pos, neg, negKeys := conformanceKeys(2000)
	for _, f := range backendsUnderTest(t) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			b := buildBackend(t, f, pos, neg)
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 3000; i++ {
						key := pos[(i*13+r)%len(pos)]
						if !b.Contains(key) {
							t.Errorf("false negative for %q under concurrent reads", key)
							return
						}
						b.Contains(negKeys[(i*7+r)%len(negKeys)])
					}
					b.ContainsBatch(pos[:256])
				}(r)
			}
			wg.Wait()
		})
	}
}

// TestRegistryRejectsUnknown pins the loud-failure contract of both
// lookup paths.
func TestRegistryRejectsUnknown(t *testing.T) {
	if _, err := filtercore.ByName("no-such-backend"); err == nil {
		t.Error("ByName accepted an unknown backend")
	}
	if _, err := filtercore.ByKind(filtercore.Kind(0xEE)); err == nil {
		t.Error("ByKind accepted an unknown kind")
	}
	if _, err := filtercore.ByName(""); err != nil {
		t.Errorf("empty name should resolve the default backend: %v", err)
	}
}
