// Package theory implements the closed-form expressions of §IV: the
// probability bound of Theorem 4.1, the HashExpressor insertion bound of
// Eq. 11, the optimized-key expectation of Theorem 4.2 (Eq. 12), and the
// F*bf upper bound of Eq. 19 plotted in Fig. 8.
//
// The paper defers the derivation of P'c (the probability that a positive
// key admits a valid adjustment) to an appendix that is not part of the
// published text, so PcEstimate derives a compatible estimate from first
// principles; its construction is documented on the function.
package theory

import "math"

// BloomFPR is the standard Bloom false-positive estimate (1 - e^{-k/b})^k
// for bits-per-key b and k hash functions (§II).
func BloomFPR(b float64, k int) float64 {
	if b <= 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)/b), float64(k))
}

// PXiLower is Theorem 4.1: a lower bound on the expected probability that
// a unit mapped by a collision key belongs to ξck (is single-mapped),
// E(Pξ) > (k/b) / (e^{k/b} - 1).
func PXiLower(k int, b float64) float64 {
	if b <= 0 || k <= 0 {
		return 0
	}
	x := float64(k) / b
	return x / (math.Exp(x) - 1)
}

// PsLower is Eq. 11: a lower bound on the probability that the (t+1)-th
// selection can be inserted into a HashExpressor with ω cells,
// Ps(t) > (1 - (kt + k)/ω)^k.
func PsLower(t int, k int, omega uint64) float64 {
	if omega == 0 {
		return 0
	}
	frac := float64(k*t+k) / float64(omega)
	if frac >= 1 {
		return 0
	}
	return math.Pow(1-frac, float64(k))
}

// ExpectedOptimized is Theorem 4.2 (Eq. 12): a lower bound on the expected
// number of collision keys optimized given queue size T, adjustment
// probability pc, hash count k and HashExpressor size ω:
//
//	E(t) > T·pc·(ω - k²) / (ω + T·pc·k²).
func ExpectedOptimized(T int, pc float64, k int, omega uint64) float64 {
	if T <= 0 || pc <= 0 || omega == 0 {
		return 0
	}
	k2 := float64(k * k)
	w := float64(omega)
	v := float64(T) * pc * (w - k2) / (w + float64(T)*pc*k2)
	if v < 0 {
		return 0
	}
	return v
}

// FStarUpper is Eq. 19: the upper bound on the expected optimized FPR,
//
//	E(F*bf) < Fbf - T·P'c·(ω - k²) / (|O|·(ω + T·P'c·k²)).
func FStarUpper(fbf float64, T int, pc float64, k int, omega uint64, numNegatives int) float64 {
	if numNegatives == 0 {
		return fbf
	}
	gain := ExpectedOptimized(T, pc, k, omega) / float64(numNegatives)
	v := fbf - gain
	if v < 0 {
		return 0
	}
	return v
}

// PcEstimate derives P'c, the probability that the positive key found
// through a single-mapped unit admits at least one valid replacement hash.
//
// Derivation (documented because the paper's appendix is unavailable):
// a replacement candidate hc succeeds when either (a) es's bit under hc is
// already set — probability ρ, the Bloom fill ratio ≈ 1 - e^{-k/b} — or
// (b) the bit is clear and no optimized key conflicts there. With at most
// |O| keys in Γ spread over m bits, a bucket holds λ = k·|O|/m keys in
// expectation, each of which re-breaks with probability ρ^(k-1) (its
// remaining k-1 bits all set), so a clear bit is conflict-free with
// probability ≈ e^{-λ·ρ^(k-1)}. With |Hc| independent candidates:
//
//	P'c ≈ 1 - (1 - ρ - (1-ρ)·e^{-λ·ρ^(k-1)})^{|Hc|}.
func PcEstimate(k int, b float64, numNegatives int, mBits uint64, numCandidates int) float64 {
	if numCandidates <= 0 || mBits == 0 {
		return 0
	}
	rho := 1 - math.Exp(-float64(k)/b)
	lambda := float64(k*numNegatives) / float64(mBits)
	clearOK := math.Exp(-lambda * math.Pow(rho, float64(k-1)))
	perCandidateFail := 1 - rho - (1-rho)*clearOK
	if perCandidateFail < 0 {
		perCandidateFail = 0
	}
	return 1 - math.Pow(perCandidateFail, float64(numCandidates))
}
