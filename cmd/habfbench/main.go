// Command habfbench regenerates the paper's evaluation figures (§V,
// Figs. 8–15) plus the ablation study as text tables.
//
// Usage:
//
//	habfbench -list
//	habfbench -fig fig10 [-scale 1.0] [-seed 1]
//	habfbench -all [-scale 0.25]
//
// Scale 1.0 runs 40 k Shalla keys and 100 k YCSB keys per side with the
// paper's bits-per-key grid; larger scales approach the published sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 1, "workload and construction seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
	case *all:
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		for _, id := range experiments.All() {
			start := time.Now()
			if err := experiments.Run(id, cfg, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "habfbench:", err)
				os.Exit(1)
			}
			fmt.Printf("-- %s done in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	case *fig != "":
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		if err := experiments.Run(*fig, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "habfbench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
