// Concurrency contracts, meant to run under -race (CI does):
//
//   - *HABF: Add must be externally synchronized against readers; under
//     the documented discipline (readers RLock, writer Lock) concurrent
//     use is safe.
//   - *Sharded: no external locking at all — Contains, ContainsBatch and
//     Add from any number of goroutines, with background rebuilds firing
//     mid-flight.
package habf_test

import (
	"fmt"
	"sync"
	"testing"

	habf "repro"
)

func concFixture(t testing.TB, n int) ([][]byte, []habf.WeightedKey) {
	t.Helper()
	pos := make([][]byte, n)
	neg := make([]habf.WeightedKey, n)
	for i := 0; i < n; i++ {
		pos[i] = []byte(fmt.Sprintf("user%08d", i))
		neg[i] = habf.WeightedKey{Key: []byte(fmt.Sprintf("miss%08d", i)), Cost: float64(n - i)}
	}
	return pos, neg
}

// TestFilterConcurrentReadsWithExternallyLockedAdd hammers Contains from
// many goroutines while Add runs under the external lock the *HABF docs
// require. Run with -race to validate the documented discipline.
func TestFilterConcurrentReadsWithExternallyLockedAdd(t *testing.T) {
	pos, neg := concFixture(t, 3000)
	f, err := habf.New(pos, neg, uint64(12*len(pos)))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.RWMutex
	var wg sync.WaitGroup
	const added = 200
	wg.Add(1)
	go func() { // writer: the documented external write lock
		defer wg.Done()
		for i := 0; i < added; i++ {
			mu.Lock()
			f.Add([]byte(fmt.Sprintf("late%08d", i)))
			mu.Unlock()
		}
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				key := pos[(i*13+r)%len(pos)]
				mu.RLock()
				ok := f.Contains(key)
				mu.RUnlock()
				if !ok {
					t.Errorf("false negative for %q under concurrent reads", key)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for i := 0; i < added; i++ {
		if key := []byte(fmt.Sprintf("late%08d", i)); !f.Contains(key) {
			t.Fatalf("added key %q lost", key)
		}
	}
}

// TestShardedConcurrentUseWithoutLocking is the tentpole contract: a
// *Sharded needs no external synchronization even while Adds trigger
// background rebuilds.
func TestShardedConcurrentUseWithoutLocking(t *testing.T) {
	pos, neg := concFixture(t, 4000)
	s, err := habf.NewSharded(pos, neg, uint64(12*len(pos)),
		habf.WithShards(8), habf.WithRebuildThreshold(0.01))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const writers, perWriter = 2, 400
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add([]byte(fmt.Sprintf("late%d-%08d", w, i)))
			}
		}(w)
	}
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			batch := make([][]byte, 128)
			for round := 0; round < 20; round++ {
				for i := range batch {
					if i%2 == 0 {
						batch[i] = pos[(round*len(batch)+i+r)%len(pos)]
					} else {
						batch[i] = neg[(round*len(batch)+i+r)%len(neg)].Key
					}
				}
				res := s.ContainsBatch(batch)
				for i := 0; i < len(batch); i += 2 {
					if !res[i] {
						t.Errorf("batch false negative for %q", batch[i])
						return
					}
				}
				if !s.Contains(pos[(round+r)%len(pos)]) {
					t.Error("per-key false negative under concurrency")
					return
				}
			}
		}(r)
	}
	wg.Wait()
	s.WaitRebuilds()

	st := s.Stats()
	if st.Rebuilds == 0 {
		t.Fatalf("expected background rebuilds at threshold 1%%, got %+v", st)
	}
	if st.RebuildErrors != 0 {
		t.Fatalf("rebuild errors: %+v", st)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if key := []byte(fmt.Sprintf("late%d-%08d", w, i)); !s.Contains(key) {
				t.Fatalf("added key %q lost after rebuilds", key)
			}
		}
	}
}

func TestShardedBasics(t *testing.T) {
	pos, neg := concFixture(t, 3000)
	s, err := habf.NewSharded(pos, neg, uint64(12*len(pos)),
		habf.WithShards(4), habf.WithFastShards(),
		habf.WithShardFilterOptions(habf.WithSeed(9)))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.Name() != "Sharded[4×f-HABF]" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.SizeBits() == 0 {
		t.Fatal("SizeBits = 0")
	}
	for _, key := range pos {
		if !s.Contains(key) {
			t.Fatalf("false negative for %q", key)
		}
	}
	// A Sharded is a Filter: the measurement helpers apply.
	negKeys := make([][]byte, len(neg))
	costs := make([]float64, len(neg))
	for i, wk := range neg {
		negKeys[i], costs[i] = wk.Key, wk.Cost
	}
	fnr, err := habf.FNR(s, pos)
	if err != nil {
		t.Fatal(err)
	}
	if fnr != 0 {
		t.Fatalf("FNR = %v, want 0", fnr)
	}
	wfpr, err := habf.WeightedFPR(s, negKeys, costs)
	if err != nil {
		t.Fatal(err)
	}
	if wfpr > 0.05 {
		t.Fatalf("weighted FPR %.4f unexpectedly high for known negatives", wfpr)
	}
}
