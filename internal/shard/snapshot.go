package shard

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"repro/internal/filtercore"
	"repro/internal/habf"
	"repro/internal/snapshot"
)

// Snapshot captures the set's serving state as a container (see
// internal/snapshot): one checksummed frame per shard wrapping the
// shard filter's wire format, stamped with the shard's mutation epoch.
// The container header records the backend kind, so Restore dispatches
// to the right decoder — a file written by one backend fed to another
// fails loudly instead of misdecoding frames.
//
// Snapshot coexists with live traffic: each shard is marshaled under its
// read lock, so concurrent readers are never blocked anywhere, writers
// stall only on the one shard currently being framed (for the length of
// one memcpy-speed marshal), and an in-flight background rebuild simply
// lands before or after that shard's frame. Every frame is therefore an
// atomic image of its shard at the recorded epoch, and the snapshot
// contains every key whose Add returned before Snapshot began; keys
// added concurrently with Snapshot land in the frames written after
// their shard's marshal and may or may not be captured.
//
// A static-backend shard holding pending keys (Adds its filter could
// not absorb) is rebuilt synchronously before framing, so the acked-Add
// durability contract holds for static backends too; that one shard's
// writers stall for the rebuild. A *restored* static shard with pending
// keys cannot be rebuilt (its pre-snapshot key list is not in memory);
// its pending keys ride the container's pending-keys frame instead, and
// a restore re-buffers them — acked Adds stay durable across any number
// of save/restore cycles without ever rebuilding.
func (s *Set) Snapshot() (*snapshot.Snapshot, error) {
	snap := &snapshot.Snapshot{
		Meta:    s.snapshotMeta(),
		Frames:  make([]snapshot.Frame, len(s.shards)),
		Pending: s.collectRestoredPending(),
	}
	for i := range s.shards {
		fr, err := s.marshalShard(i)
		if err != nil {
			return nil, err
		}
		snap.Frames[i] = fr
	}
	return snap, nil
}

// WriteSnapshot streams a snapshot to w one shard at a time, so peak
// memory overhead is bounded by the largest single shard's wire size
// rather than the whole set's — the form Save uses for multi-GB filters.
// Concurrency semantics are identical to Snapshot.
func (s *Set) WriteSnapshot(w io.Writer) error {
	// Collect pending keys of restored shards before framing: every key
	// whose Add was acked before WriteSnapshot began is then captured
	// either here or (absorbed) in its shard's frame. The header flags
	// the section, so the decision has to precede the first byte out.
	pending := s.collectRestoredPending()
	meta := s.snapshotMeta()
	meta.HasPending = len(pending) > 0
	sw, err := snapshot.NewWriter(w, meta, len(s.shards))
	if err != nil {
		return err
	}
	for i := range s.shards {
		fr, err := s.marshalShard(i)
		if err != nil {
			return err
		}
		if err := sw.WriteFrame(fr); err != nil {
			return err
		}
	}
	if meta.Tuning != "" {
		if err := sw.WriteTuning(meta.Tuning); err != nil {
			return err
		}
	}
	if meta.HasPending {
		if err := sw.WritePending(pending); err != nil {
			return err
		}
	}
	return sw.Close()
}

// collectRestoredPending gathers the keys a restored shard's frozen
// filter does not represent — the ones absorbPending cannot fold into a
// frame (no key list to rebuild from) — in sorted deduped order, so
// identical sets serialize to identical containers. A restored shard
// that absorbed its pending map into a sidecar contributes its full
// post-restore positives instead (the sidecar itself is probabilistic
// state and never serializes); shards still carrying a pending map
// contribute their positives too, a superset of the map that stays
// stable across absorb timing. Non-restored shards are skipped: their
// pending keys are absorbed into their frames by marshalShard.
func (s *Set) collectRestoredPending() [][]byte {
	var out [][]byte
	seen := make(map[string]struct{})
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sh.restored && (len(sh.pending) > 0 || sh.sidecar != nil) {
			for _, key := range sh.positives {
				if _, dup := seen[string(key)]; !dup {
					seen[string(key)] = struct{}{}
					out = append(out, key)
				}
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return string(out[a]) < string(out[b]) })
	return out
}

// nonDefaultTuning returns the set's canonical tuning string, or "" when
// every knob is at its default — the form the container persists, so a
// default-tuned set writes no tuning frame and stays byte-identical to
// pre-tuning files.
func (s *Set) nonDefaultTuning() string {
	if s.tuningStr == s.backend.DefaultTuning().String() {
		return ""
	}
	return s.tuningStr
}

func (s *Set) snapshotMeta() snapshot.Meta {
	return snapshot.Meta{
		Tuning:                s.nonDefaultTuning(),
		Kind:                  snapshot.KindShardedSet,
		Backend:               uint8(s.backend.Kind),
		BaseSeed:              s.baseParams.Seed,
		RouteSeed:             s.routeSeed,
		K:                     s.baseParams.K,
		CellBits:              s.baseParams.CellBits,
		Fast:                  s.baseParams.Fast,
		DisableGamma:          s.baseParams.DisableGamma,
		DisableOverlapRanking: s.baseParams.DisableOverlapRanking,
		DisableCostOrdering:   s.baseParams.DisableCostOrdering,
		SpaceRatio:            s.baseParams.SpaceRatio,
		BitsPerKey:            s.bitsPerKey,
		Threshold:             s.threshold,
	}
}

// marshalShard frames shard i under its read lock, after absorbing any
// pending keys so the frame captures every acked Add.
func (s *Set) marshalShard(i int) (snapshot.Frame, error) {
	sh := s.shards[i]
	if err := sh.absorbPending(); err != nil {
		return snapshot.Frame{}, fmt.Errorf("shard %d: %w", i, err)
	}
	sh.mu.RLock()
	fr := snapshot.Frame{Epoch: sh.epoch.Load()}
	var err error
	if sh.f != nil {
		fr.Payload, err = sh.f.MarshalBinary()
		fr.Align = sh.f.WireAlignOffset()
	}
	sh.mu.RUnlock()
	if err != nil {
		return snapshot.Frame{}, fmt.Errorf("shard %d: %w", i, err)
	}
	return fr, nil
}

// absorbPending folds a static backend's pending keys into a freshly
// built filter so a snapshot frame represents them. Holding addMu
// freezes the key set — writers queue, readers keep serving under mu's
// read side — so one build outside mu absorbs everything, and only the
// final swap takes the write lock (readers stall for a pointer swap,
// never a build).
func (sh *shard) absorbPending() error {
	sh.mu.RLock()
	n := len(sh.pending)
	restored := sh.restored
	sh.mu.RUnlock()
	if n == 0 {
		return nil
	}
	if restored {
		// No key list to rebuild from; the shard's pending keys were
		// captured in the container's pending-keys frame instead (see
		// collectRestoredPending), so the frame images the filter as-is.
		return nil
	}

	sh.addMu.Lock()
	defer sh.addMu.Unlock()
	sh.mu.RLock()
	if len(sh.pending) == 0 { // a racing Add's rebuild beat us to it
		sh.mu.RUnlock()
		return nil
	}
	n0 := len(sh.positives)
	keys := sh.positives[:n0:n0]
	sh.mu.RUnlock()
	// positives cannot grow here: every Add holds addMu. A background
	// rebuild may still swap concurrently, but ours is built from the
	// full frozen key list and lands last (a rebuild completing after us
	// sees builds advanced and discards itself).
	f, err := sh.build(keys)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	sh.swap(f, n0) // replay loop is empty: the key set was frozen
	sh.mu.Unlock()
	return nil
}

// Restore rebuilds a Set from a decoded snapshot without copying filter
// payloads: every shard filter is decoded in borrow mode — dispatched
// through the filtercore registry by the backend kind recorded in the
// container header — and serves queries directly from the snapshot's
// backing buffer, so the caller must keep that buffer alive and
// unmodified for the life of the Set. A post-restore Add copies the
// touched shard's arrays before mutating them (copy-on-first-write);
// the buffer itself is never written.
//
// Restored shards accept Adds but do not auto-rebuild on drift — the key
// list behind a restored filter is not in memory, so a drift rebuild
// would forget it. Shards that were empty at save time behave exactly
// like freshly built ones.
func Restore(snap *snapshot.Snapshot) (*Set, error) {
	if snap.Meta.Kind != snapshot.KindShardedSet {
		return nil, fmt.Errorf("shard: container kind %d is not a sharded-set snapshot", snap.Meta.Kind)
	}
	backend, err := filtercore.ByKind(filtercore.Kind(snap.Meta.Backend))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	n := len(snap.Frames)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("shard: snapshot shard count %d is not a power of two", n)
	}
	// The container CRC catches bit-rot, not a hostile writer: the float
	// meta fields feed size computations on the lazy-build path (an Add
	// routed to an empty restored shard), where an absurd BitsPerKey
	// would turn into a make() of 2^60+ words. Bound them here so a
	// crafted snapshot fails loudly at Restore, never panics later.
	const maxBitsPerKey = 1 << 20 // 128 KiB per key is already absurd
	if m := snap.Meta; math.IsNaN(m.BitsPerKey) || m.BitsPerKey < 0 || m.BitsPerKey > maxBitsPerKey {
		return nil, fmt.Errorf("shard: snapshot bits-per-key %v out of range [0,%d]", m.BitsPerKey, int(maxBitsPerKey))
	} else if m.SpaceRatio != 0 && !(m.SpaceRatio > 0 && m.SpaceRatio < 1) {
		// NaN fails both comparisons and lands here too.
		return nil, fmt.Errorf("shard: snapshot space ratio %v out of range (0,1)", m.SpaceRatio)
	} else if math.IsNaN(m.Threshold) || math.IsInf(m.Threshold, 0) {
		return nil, fmt.Errorf("shard: snapshot rebuild threshold %v is not finite", m.Threshold)
	}
	base := habf.Params{
		K:                     snap.Meta.K,
		CellBits:              snap.Meta.CellBits,
		Seed:                  snap.Meta.BaseSeed,
		SpaceRatio:            snap.Meta.SpaceRatio,
		Fast:                  snap.Meta.Fast,
		DisableGamma:          snap.Meta.DisableGamma,
		DisableOverlapRanking: snap.Meta.DisableOverlapRanking,
		DisableCostOrdering:   snap.Meta.DisableCostOrdering,
	}
	if base.Seed == 0 {
		base.Seed = 1
	}
	// The tuning frame is hostile input like the floats above: parse it
	// against the backend's schema so unknown knobs and out-of-bounds
	// values fail loudly here, and insist on the canonical rendering —
	// a Writer only ever emits canonical strings, and accepting variants
	// would break the save-after-load byte-identity guarantee.
	tun, err := backend.ParseTuning(snap.Meta.Tuning)
	if err != nil {
		return nil, fmt.Errorf("shard: snapshot tuning: %w", err)
	}
	if snap.Meta.Tuning != "" && tun.String() != snap.Meta.Tuning {
		return nil, fmt.Errorf("shard: snapshot tuning %q is not canonical (want %q)", snap.Meta.Tuning, tun.String())
	}
	tun, base, err = reconcileTuning(backend, tun, base)
	if err != nil {
		return nil, fmt.Errorf("shard: snapshot tuning: %w", err)
	}
	// Same trust boundary as the float bounds above: K and CellBits feed
	// the lazy-build path, where a build failure has no error channel
	// back to the caller (the Add would land in the pending buffer
	// forever). Reject the template — with any tuned overrides folded in
	// — here instead.
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("shard: snapshot params: %w", err)
	}
	s := &Set{
		shards:      make([]*shard, n),
		shift:       uint(64 - bits.TrailingZeros(uint(n))),
		routeSeed:   snap.Meta.RouteSeed,
		threshold:   snap.Meta.Threshold,
		baseParams:  base,
		backend:     backend,
		tuning:      tun,
		tuningStr:   tun.String(),
		absorbEvery: tun.Int("absorb"),
		bitsPerKey:  snap.Meta.BitsPerKey,
	}
	for i, fr := range snap.Frames {
		p := base
		p.Seed = perturbSeed(base.Seed, i)
		sh := &shard{
			set:        s,
			bitsPerKey: snap.Meta.BitsPerKey,
			params:     p,
		}
		if len(fr.Payload) > 0 {
			f, err := backend.UnmarshalBorrow(fr.Payload)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			sh.f = f
			sh.restored = true
		}
		sh.epoch.Store(fr.Epoch)
		s.shards[i] = sh
	}
	// Re-buffer the container's pending keys: Adds a restored static set
	// acked but whose frozen filters never absorbed. Each key goes back
	// to the shard it routes to — into positives (so a later inline or
	// full rebuild represents it) and, when the shard's filter does not
	// already answer true, into the pending map (so queries do; a filter
	// that answers true now answers true forever, static filters being
	// immutable). A mutable backend absorbs the key directly instead.
	for _, key := range snap.Pending {
		key := append([]byte(nil), key...) // Pending aliases the container buffer
		sh := s.shards[s.route(key)]
		sh.positives = append(sh.positives, key)
		if sh.f == nil {
			sh.addPending(key)
			continue
		}
		if err := sh.f.Add(key); err != nil && !sh.f.Contains(key) {
			sh.addPending(key)
		}
	}
	// Re-buffered pending maps already past the absorb threshold fold
	// into a sidecar right away, instead of waiting for the next Add to
	// notice — a set that crossed the knob before saving comes back
	// bounded.
	if s.absorbEvery > 0 {
		for _, sh := range s.shards {
			if !sh.restored || len(sh.pending) < s.absorbEvery {
				continue
			}
			side, err := s.buildSidecar(sh.positives)
			if err != nil {
				return nil, fmt.Errorf("shard: absorb pending: %w", err)
			}
			sh.sidecar = side
			sh.pending = nil
			s.absorbs.Add(1)
		}
	}
	return s, nil
}
