package shard

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestContainsBatchIntoZeroAllocs pins the zero-alloc contract of the
// batch read path: once the scratch pool is warm, a ContainsBatchInto
// with a caller-owned destination allocates nothing — across every
// backend, prepared (base-hash) or not.
func TestContainsBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race for alloc counts")
	}
	// Force multicore dispatch so the worker-spawning path is the one
	// measured: spawned workers must reuse dead goroutines, not allocate.
	// batchCPUs is forced too so the workers spawn even on a 1-CPU host.
	prev := runtime.GOMAXPROCS(4)
	prevCPUs := batchCPUs
	batchCPUs = 4
	defer func() {
		runtime.GOMAXPROCS(prev)
		batchCPUs = prevCPUs
	}()
	for _, backend := range []string{"habf", "bloom", "xor", "wbf", "phbf"} {
		t.Run(backend, func(t *testing.T) {
			s, pos, negKeys := newSet(t, 2048, Config{Shards: 8, Backend: backend})
			batch := make([][]byte, 0, 256)
			for i := 0; i < 128; i++ {
				batch = append(batch, pos[i*7%len(pos)], negKeys[i*11%len(negKeys)])
			}
			dst := make([]bool, len(batch))
			// Warm the scratch pool and the runtime's dead-g list (the
			// first few batches may grow both).
			for i := 0; i < 8; i++ {
				s.ContainsBatchInto(dst, batch)
			}
			avg := testing.AllocsPerRun(50, func() {
				s.ContainsBatchInto(dst, batch)
			})
			if avg != 0 {
				t.Errorf("%s: ContainsBatchInto allocates %.1f objects per batch, want 0", backend, avg)
			}
		})
	}
}

// TestContainsBatchIntoZeroAllocsSeeded64 covers the prepared bloom
// strategy specifically: seeded64 is the one bloom flavour that derives
// every probe from the shared base hash, so the fast path (hashes
// forwarded to the backend) must also stay allocation-free.
func TestContainsBatchIntoZeroAllocsSeeded64(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race for alloc counts")
	}
	s, pos, negKeys := newSet(t, 2048, Config{Shards: 8, Backend: "bloom", Tuning: "strategy=seeded64"})
	batch := append(append([][]byte{}, pos[:128]...), negKeys[:128]...)
	dst := make([]bool, len(batch))
	s.ContainsBatchInto(dst, batch)
	if avg := testing.AllocsPerRun(50, func() {
		s.ContainsBatchInto(dst, batch)
	}); avg != 0 {
		t.Errorf("seeded64: ContainsBatchInto allocates %.1f objects per batch, want 0", avg)
	}
}

// TestBatchDispatchTorture drives the worker-pool dispatch under -race
// with everything it must coexist with: concurrent Adds (write locks on
// single shards), background rebuild swaps (write locks plus filter
// replacement), and parallel batches sharing the scratch pool. GOMAXPROCS
// and batchCPUs are forced above one so extra batch workers actually
// spawn even on a single-core CI host.
func TestBatchDispatchTorture(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	prevCPUs := batchCPUs
	batchCPUs = 4
	defer func() {
		runtime.GOMAXPROCS(prev)
		batchCPUs = prevCPUs
	}()

	s, pos, negKeys := newSet(t, 4096, Config{Shards: 8})
	batch := make([][]byte, 0, 512)
	for i := 0; i < 256; i++ {
		batch = append(batch, pos[i*5%len(pos)], negKeys[i*3%len(negKeys)])
	}
	want := make([]bool, len(batch))
	for i, key := range batch {
		want[i] = s.Contains(key)
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: concurrent Adds of fresh keys (never probed, so the
	// readers' expected answers stay stable).
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Add([]byte(fmt.Sprintf("torture-add-%d-%06d", w, i)))
			}
		}(w)
	}
	// Readers: parallel batches racing the writers and each other. Adds
	// of unrelated keys and rebuild swaps must never flip an existing
	// key's answer from member to non-member.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			dst := make([]bool, len(batch))
			for n := 0; n < 200; n++ {
				s.ContainsBatchInto(dst, batch)
				for i := range want {
					if want[i] && !dst[i] {
						t.Errorf("iteration %d: member %q answered false during torture", n, batch[i])
						return
					}
				}
			}
		}()
	}
	// One round of per-key queries mixed in, exercising the non-batch
	// read lock path against the same writers.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for n := 0; n < 2000; n++ {
			i := n % len(batch)
			if got := s.Contains(batch[i]); want[i] && !got {
				t.Errorf("per-key: member %q answered false during torture", batch[i])
				return
			}
		}
	}()

	// Let readers finish, then stop the writers and wait for any rebuild
	// the Adds kicked off.
	readers.Wait()
	close(stop)
	writers.Wait()
	s.WaitRebuilds()
}
