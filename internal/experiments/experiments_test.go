package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny is a fast configuration for smoke tests: 2k Shalla / 5k YCSB keys.
var tiny = Config{Scale: 0.05, Seed: 1}

func TestAllRegistered(t *testing.T) {
	ids := All()
	want := []string{"abl", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "incr", "lsm", "rel"}
	if len(ids) != len(want) {
		t.Fatalf("All() = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("All() = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := Run("fig99", tiny, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableFprint(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"x", "demo", "a", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

// parse reads a formatted cell back into a float.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestFig08BoundHolds(t *testing.T) {
	tables := Fig08(tiny)
	if len(tables) != 2 {
		t.Fatalf("Fig08 returned %d tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s has no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			if row[4] != "true" {
				t.Errorf("%s: bound violated at %s: real %s > bound %s",
					tab.ID, row[0], row[2], row[3])
			}
			// Optimization must never make things worse.
			if parse(t, row[2]) > parse(t, row[1])+1e-9 {
				t.Errorf("%s: F*bf %s exceeds Fbf %s", tab.ID, row[2], row[1])
			}
		}
	}
}

func TestFig09Shapes(t *testing.T) {
	tables := Fig09(tiny)
	if len(tables) != 3 {
		t.Fatalf("Fig09 returned %d tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s empty", tab.ID)
		}
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if cell == "err" {
					t.Errorf("%s row %v has error cell", tab.ID, row)
				}
			}
		}
	}
}

func TestFig10HABFBeatsBFOnYCSB(t *testing.T) {
	tables := Fig10(tiny)
	var panel *Table
	for i := range tables {
		if tables[i].ID == "fig10c" {
			panel = &tables[i]
		}
	}
	if panel == nil {
		t.Fatal("fig10c missing")
	}
	// Column order: space, bits/key, HABF, f-HABF, BF, Xor.
	wins := 0
	for _, row := range panel.Rows {
		habfV, bfV := parse(t, row[2]), parse(t, row[4])
		if habfV <= bfV {
			wins++
		}
	}
	if wins < len(panel.Rows)-1 {
		t.Errorf("HABF beat BF on only %d/%d YCSB points", wins, len(panel.Rows))
	}
}

func TestFig11HABFWinsUnderSkew(t *testing.T) {
	tables := Fig11(tiny)
	for _, tab := range tables {
		if tab.ID != "fig11a" && tab.ID != "fig11c" {
			continue
		}
		wins := 0
		for _, row := range tab.Rows {
			habfV := parse(t, row[2])
			bfV := parse(t, row[4])
			if habfV <= bfV {
				wins++
			}
		}
		if wins < len(tab.Rows)-1 {
			t.Errorf("%s: HABF beat BF on only %d/%d points", tab.ID, wins, len(tab.Rows))
		}
	}
}

func TestFig12Ordering(t *testing.T) {
	tables := Fig12(tiny)
	for _, tab := range tables {
		vals := map[string]float64{}
		for _, row := range tab.Rows {
			if row[1] == "err" {
				t.Errorf("%s: %s errored", tab.ID, row[0])
				continue
			}
			vals[row[0]] = parse(t, row[1])
		}
		// The paper's construction-time ordering: BF fastest, f-HABF within
		// a small factor of BF, HABF slower, learned slowest.
		if vals["HABF"] <= vals["BF"] {
			t.Logf("%s: HABF construction unexpectedly cheap (%v <= BF %v) — tiny scale noise", tab.ID, vals["HABF"], vals["BF"])
		}
		if vals["LBF"] <= vals["HABF"] {
			t.Errorf("%s: learned construction (%v) should exceed HABF (%v)", tab.ID, vals["LBF"], vals["HABF"])
		}
	}
}

func TestFig13SkewColumns(t *testing.T) {
	tab := Fig13(tiny)[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("fig13 has %d rows, want 6 skew points", len(tab.Rows))
	}
	// At high skew HABF must dominate BF decisively.
	last := tab.Rows[len(tab.Rows)-1]
	if parse(t, last[1]) > parse(t, last[3]) {
		t.Errorf("fig13 at skew 3.0: HABF %s worse than BF %s", last[1], last[3])
	}
}

func TestFig14Runs(t *testing.T) {
	tables := Fig14(tiny)
	if len(tables) != 2 {
		t.Fatalf("Fig14 returned %d tables", len(tables))
	}
	for _, tab := range tables {
		for _, row := range tab.Rows {
			for _, cell := range row {
				if cell == "err" {
					t.Errorf("%s: error cell in %v", tab.ID, row)
				}
			}
		}
	}
}

func TestFig15Runs(t *testing.T) {
	tables := Fig15(tiny)
	for _, tab := range tables {
		var bf, habfMB float64
		for _, row := range tab.Rows {
			if row[1] == "err" {
				t.Errorf("%s: %s errored", tab.ID, row[0])
				continue
			}
			switch row[0] {
			case "BF":
				bf = parse(t, row[1])
			case "HABF":
				habfMB = parse(t, row[1])
			}
		}
		if habfMB <= bf {
			t.Errorf("%s: HABF construction footprint (%v MB) should exceed BF (%v MB)", tab.ID, habfMB, bf)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	tab := Ablations(tiny)[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("ablations rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] == "err" {
			t.Errorf("ablation %q errored", row[0])
		}
	}
}

func TestRunPrintsAll(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig13", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig13") {
		t.Fatal("Run produced no output")
	}
}

func TestRelatedWork(t *testing.T) {
	tables := Related(tiny)
	if len(tables) != 2 {
		t.Fatalf("Related returned %d tables", len(tables))
	}
	for _, tab := range tables {
		for _, row := range tab.Rows {
			// Columns: space, bpk, HABF, PHBF, BF.
			habfV, phbfV, bfV := parse(t, row[2]), parse(t, row[3]), parse(t, row[4])
			if habfV > bfV && habfV > 1e-4 {
				t.Errorf("%s: HABF %v worse than BF %v", tab.ID, habfV, bfV)
			}
			_ = phbfV // PHBF may beat or lose to BF; it must simply run
		}
	}
}

func TestLSMExperiment(t *testing.T) {
	tab := LSM(tiny)[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("lsm rows = %d", len(tab.Rows))
	}
	wasted := map[string]float64{}
	for _, row := range tab.Rows {
		wasted[row[0]] = parse(t, row[3])
	}
	if wasted["BF guards"] >= wasted["no filter"] {
		t.Error("BF guards did not reduce wasted cost")
	}
	if wasted["f-HABF guards"] > wasted["BF guards"] {
		t.Errorf("HABF guards (%v) should not waste more than BF guards (%v)",
			wasted["f-HABF guards"], wasted["BF guards"])
	}
}

func TestIncrementalExperiment(t *testing.T) {
	tab := Incremental(tiny)[0]
	// 2 modes × (initial report + 4 batches) = 10 rows.
	if len(tab.Rows) != 10 {
		t.Fatalf("incr rows = %d, want 10", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] == "err" {
			t.Fatalf("incremental experiment errored: %v", row)
		}
		if fpr := parse(t, row[3]); fpr > 0.3 {
			t.Errorf("%s batch %s: holdout FPR %v degenerated", row[0], row[1], fpr)
		}
	}
	// IA-LBF's final size must be >= its initial size (memory sacrifice).
	var iaFirst, iaLast float64
	seen := false
	for _, row := range tab.Rows {
		if row[0] == "IA-LBF" {
			v := parse(t, row[4])
			if !seen {
				iaFirst, seen = v, true
			}
			iaLast = v
		}
	}
	if iaLast < iaFirst {
		t.Errorf("IA-LBF shrank: %v -> %v KB", iaFirst, iaLast)
	}
}

func TestBuildFilterUnknown(t *testing.T) {
	w := tiny.shallaWorkload(0)
	if _, err := buildFilter("NotAFilter", w, 1<<14, 1); err == nil {
		t.Fatal("unknown filter name accepted")
	}
}

func TestPaperMBLabels(t *testing.T) {
	// The first Shalla grid point must label as ≈1.3 MB (the paper's
	// 1.25 MB rounded through the bits-per-key conversion) and the first
	// YCSB point as ≈13 MB.
	if mb := paperMB(shallaBitsPerKey[0], true); mb < 1.2 || mb > 1.4 {
		t.Errorf("Shalla first point labels %.2f MB", mb)
	}
	if mb := paperMB(ycsbBitsPerKey[0], false); mb < 12 || mb > 14 {
		t.Errorf("YCSB first point labels %.2f MB", mb)
	}
}
