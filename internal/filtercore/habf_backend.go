package filtercore

import (
	"repro/internal/habf"
)

// habfBackend adapts *habf.Filter — the paper's Hash Adaptive Bloom
// Filter — to the Backend interface. It is the default backend and the
// only cost-aware one: construction runs the TPJO optimization over the
// shard's weighted negatives.
type habfBackend struct {
	f *habf.Filter
}

var _ Backend = (*habfBackend)(nil)
var _ PreparedQuerier = (*habfBackend)(nil)

func (b *habfBackend) Contains(key []byte) bool           { return b.f.Contains(key) }
func (b *habfBackend) ContainsBatch(keys [][]byte) []bool { return b.f.ContainsBatch(keys) }
func (b *habfBackend) AddedKeys() uint64                  { return b.f.AddedKeys() }
func (b *habfBackend) Name() string                       { return b.f.Name() }
func (b *habfBackend) SizeBits() uint64                   { return b.f.SizeBits() }
func (b *habfBackend) Kind() Kind                         { return KindHABF }
func (b *habfBackend) MarshalBinary() ([]byte, error)     { return b.f.MarshalBinary() }
func (b *habfBackend) WireAlignOffset() int               { return habf.WireAlignOffset(b.f.K()) }
func (b *habfBackend) Borrowed() bool                     { return b.f.Borrowed() }

func (b *habfBackend) Add(key []byte) error {
	b.f.Add(key)
	return nil
}

// ContainsScratch exposes the allocation-free query form the sharded
// batch path fast-cases on (see shard.containsChunk).
func (b *habfBackend) ContainsScratch(key []byte, scratch []uint8) bool {
	return b.f.ContainsScratch(key, scratch)
}

// ContainsBatchInto implements PreparedQuerier. HABF keeps its own hash
// family (Table II corpus / simulated double hashing), so the shared base
// hashes are ignored; the batch-into form still skips the per-call result
// allocation and per-key dispatch.
func (b *habfBackend) ContainsBatchInto(dst []bool, keys [][]byte, _ []uint64) {
	b.f.ContainsBatchInto(dst, keys)
}

func init() {
	Register(Factory{
		Name:   "habf",
		Kind:   KindHABF,
		Static: false,
		InnerName: func(p habf.Params) string {
			if p.Fast {
				return "f-HABF"
			}
			return "HABF"
		},
		TuningSchema: NewSchema(
			Knob{Name: "k", Type: KnobInt, Min: 0, Max: 31,
				Default: "0", Doc: "candidate hash functions per key (bounded by what cellbits can index); 0 means 3"},
			Knob{Name: "cellbits", Type: KnobEnum, Enum: []string{"0", "3", "4", "5", "6"},
				Default: "0", Doc: "HashExpressor cell width in bits; 0 means 4"},
		),
		Build: func(positives [][]byte, negatives []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			// Tuning knobs and the legacy WithK/WithCellBits options land in
			// the same Params fields; a set knob wins over the option.
			p := cfg.Params
			p.TotalBits = cfg.TotalBits
			if k := cfg.Tuning.Int("k"); k != 0 {
				p.K = k
			}
			if cb := cfg.Tuning.Int("cellbits"); cb != 0 {
				p.CellBits = uint(cb)
			}
			f, err := habf.New(positives, negatives, p)
			if err != nil {
				return nil, err
			}
			return &habfBackend{f: f}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := habf.UnmarshalFilter(data)
			if err != nil {
				return nil, err
			}
			return &habfBackend{f: f}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := habf.UnmarshalFilterBorrow(data)
			if err != nil {
				return nil, err
			}
			return &habfBackend{f: f}, nil
		},
	})
}
