package theory

import (
	"math"
	"testing"
)

func TestBloomFPR(t *testing.T) {
	// Optimal point b=10, k=7 ≈ 0.6185^10 ≈ 0.82%.
	got := BloomFPR(10, 7)
	if math.Abs(got-0.0082) > 0.001 {
		t.Errorf("BloomFPR(10,7) = %v, want ≈0.0082", got)
	}
	if BloomFPR(0, 3) != 1 {
		t.Error("b=0 should give 1")
	}
	// Monotone in b.
	if BloomFPR(4, 3) < BloomFPR(8, 3) {
		t.Error("FPR should fall as b grows")
	}
}

func TestPXiLower(t *testing.T) {
	// x/(e^x - 1) at x = k/b = 0.3: 0.3/(1.3499-1) ≈ 0.8575.
	got := PXiLower(3, 10)
	if math.Abs(got-0.8575) > 0.001 {
		t.Errorf("PXiLower(3,10) = %v, want ≈0.8575", got)
	}
	// Bound is in (0,1) and decreasing in k/b.
	if PXiLower(10, 10) >= PXiLower(2, 10) {
		t.Error("PXi must decrease as k/b grows")
	}
	if PXiLower(0, 10) != 0 || PXiLower(3, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	// Theorem's own consequence used in §IV-B: k·E(Pξ) > 1.164 for k >= 2.
	if v := 2 * PXiLower(2, 10); v <= 1.164 {
		t.Errorf("k·Pξ = %v, paper claims > 1.164 for k=2, b=10", v)
	}
}

func TestPsLower(t *testing.T) {
	if PsLower(0, 3, 1000) <= PsLower(100, 3, 1000) {
		t.Error("Ps must fall as the table fills")
	}
	if PsLower(1000, 3, 100) != 0 {
		t.Error("overfull table must give 0")
	}
	if PsLower(0, 3, 0) != 0 {
		t.Error("ω=0 must give 0")
	}
	// Exact value: t=10, k=3, ω=1000 → (1 - 33/1000)^3.
	want := math.Pow(1-0.033, 3)
	if got := PsLower(10, 3, 1000); math.Abs(got-want) > 1e-12 {
		t.Errorf("PsLower = %v, want %v", got, want)
	}
}

func TestExpectedOptimized(t *testing.T) {
	// With pc=1 and a huge table, nearly all of T is optimized.
	got := ExpectedOptimized(100, 1, 3, 1<<20)
	if got < 90 || got > 100 {
		t.Errorf("E(t) = %v, want ≈100 with huge table", got)
	}
	// Shrinks with the table.
	if ExpectedOptimized(100, 1, 3, 64) >= got {
		t.Error("E(t) must shrink with ω")
	}
	// Degenerate inputs.
	if ExpectedOptimized(0, 1, 3, 100) != 0 || ExpectedOptimized(10, 0, 3, 100) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	// Never exceeds T.
	for _, T := range []int{1, 10, 1000} {
		if v := ExpectedOptimized(T, 1, 3, 4096); v > float64(T) {
			t.Errorf("E(t) = %v exceeds T = %d", v, T)
		}
	}
}

func TestFStarUpper(t *testing.T) {
	fbf := 0.02
	up := FStarUpper(fbf, 500, 0.9, 3, 8192, 10000)
	if up >= fbf {
		t.Errorf("bound %v must improve on Fbf %v with nonzero optimization", up, fbf)
	}
	if up < 0 {
		t.Error("bound clamped below zero")
	}
	if FStarUpper(fbf, 0, 0.9, 3, 8192, 10000) != fbf {
		t.Error("T=0 must leave Fbf unchanged")
	}
	if FStarUpper(fbf, 500, 0.9, 3, 8192, 0) != fbf {
		t.Error("|O|=0 must leave Fbf unchanged")
	}
}

func TestPcEstimate(t *testing.T) {
	// More candidates → higher probability.
	lo := PcEstimate(3, 10, 10000, 1<<20, 2)
	hi := PcEstimate(3, 10, 10000, 1<<20, 12)
	if hi <= lo {
		t.Errorf("PcEstimate must grow with candidates: %v vs %v", lo, hi)
	}
	if hi <= 0 || hi > 1 {
		t.Errorf("PcEstimate out of (0,1]: %v", hi)
	}
	if PcEstimate(3, 10, 100, 1<<20, 0) != 0 {
		t.Error("no candidates must give 0")
	}
}

func TestBoundChainConsistency(t *testing.T) {
	// The full Fig. 8 pipeline: for reasonable parameters the predicted
	// F*bf bound sits between 0 and the unoptimized FPR.
	for _, k := range []int{2, 4, 6, 8, 10} {
		b := 10.0
		fbf := BloomFPR(b, k)
		n := 100000
		m := uint64(float64(n) * b)
		omega := m / 4 / 4 // Δ=0.25 budget at 4-bit cells
		T := int(fbf * float64(n))
		pc := PcEstimate(k, b, n, m, 19)
		up := FStarUpper(fbf, T, pc, k, omega, n)
		if up < 0 || up > fbf {
			t.Errorf("k=%d: bound %v outside [0, %v]", k, up, fbf)
		}
	}
}
