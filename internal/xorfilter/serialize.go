package xorfilter

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Serialization lets a Xor filter built once be shipped to query nodes
// or framed into a serving snapshot (internal/snapshot). The format is
// self-describing and versioned:
//
//	magic u32 "XORF" | version u8 | reserved u8×3 | seed u64 |
//	blockLen u64 | count u64 | lanesLen u64 |
//	fingerprints (bitset.Lanes wire format)
//
// The fingerprint width travels inside the Lanes encoding.

// Version 2: probe positions derive from the shared base hash
// (hashes.Base) instead of per-family key hashing. Version-1 containers
// hold bits under the old derivation and must not be served by this
// code, so decoding rejects them.
const filterVersion = 2

// wireMagic is the on-wire magic: "XORF" as a little-endian u32.
const wireMagic = uint32(0x46524f58)

// headerSize is the fixed prefix before the length-prefixed lanes block.
const headerSize = 32

// WireAlignOffset is the offset within a MarshalBinary payload of the
// first word of the fingerprint table: header, block length, Lanes
// header. Containers that want zero-copy loads pad their frames so this
// offset lands 8-byte aligned in the mapped buffer.
const WireAlignOffset = headerSize + 8 + 16

// MarshalBinary encodes the filter's query-time state.
func (f *Filter) MarshalBinary() ([]byte, error) {
	lanes, err := f.fingerprints.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, headerSize+8, headerSize+8+len(lanes))
	binary.LittleEndian.PutUint32(out[0:4], wireMagic)
	out[4] = filterVersion
	binary.LittleEndian.PutUint64(out[8:16], f.seed)
	binary.LittleEndian.PutUint64(out[16:24], f.blockLen)
	binary.LittleEndian.PutUint64(out[24:32], f.n)
	binary.LittleEndian.PutUint64(out[32:40], uint64(len(lanes)))
	return append(out, lanes...), nil
}

// UnmarshalFilter decodes a filter produced by MarshalBinary into owned
// memory; data is not retained.
func UnmarshalFilter(data []byte) (*Filter, error) {
	return unmarshalFilter(data, false)
}

// UnmarshalFilterBorrow decodes a filter produced by MarshalBinary
// without copying the fingerprint table when it is 8-byte aligned inside
// data: the filter then serves queries directly from data, which the
// caller must keep alive and unmodified. A Xor filter is immutable, so
// the borrow is never released by a mutation.
func UnmarshalFilterBorrow(data []byte) (*Filter, error) {
	return unmarshalFilter(data, true)
}

func unmarshalFilter(data []byte, borrow bool) (*Filter, error) {
	if len(data) < headerSize+8 {
		return nil, errors.New("xorfilter: truncated filter header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != wireMagic {
		return nil, errors.New("xorfilter: bad filter magic")
	}
	if data[4] != filterVersion {
		return nil, fmt.Errorf("xorfilter: unsupported filter version %d", data[4])
	}
	seed := binary.LittleEndian.Uint64(data[8:16])
	blockLen := binary.LittleEndian.Uint64(data[16:24])
	n := binary.LittleEndian.Uint64(data[24:32])
	lanesLen64 := binary.LittleEndian.Uint64(data[32:40])
	if lanesLen64 != uint64(len(data)-headerSize-8) {
		return nil, errors.New("xorfilter: lanes block length mismatch")
	}

	unmarshalLanes := (*bitset.Lanes).UnmarshalBinary
	if borrow {
		unmarshalLanes = (*bitset.Lanes).UnmarshalBinaryBorrow
	}
	var lanes bitset.Lanes
	if err := unmarshalLanes(&lanes, data[headerSize+8:]); err != nil {
		return nil, fmt.Errorf("xorfilter: %w", err)
	}
	if lanes.Width() == 0 || lanes.Width() > 32 {
		return nil, fmt.Errorf("xorfilter: fingerprint width %d out of range [1,32]", lanes.Width())
	}
	// The three-block slot derivation indexes [0, 3·blockLen); the table
	// must cover exactly that, or a hostile blockLen would panic Get.
	// Derive the bound from the validated table length (3·blockLen would
	// wrap for blockLen near 2^64).
	if blockLen == 0 || lanes.Len()%3 != 0 || blockLen != lanes.Len()/3 {
		return nil, fmt.Errorf("xorfilter: table of %d lanes does not match block length %d", lanes.Len(), blockLen)
	}
	return &Filter{
		fingerprints: &lanes,
		seed:         seed,
		blockLen:     blockLen,
		width:        lanes.Width(),
		n:            n,
	}, nil
}

// Borrowed reports whether the filter still serves from the buffer it
// was decoded from (UnmarshalFilterBorrow on an aligned payload).
func (f *Filter) Borrowed() bool { return f.fingerprints.Borrowed() }
