package lsm

import (
	"fmt"
	"testing"

	"repro/internal/bloom"
)

func put(s *Store, n int, tag string) {
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("%s/%06d", tag, i)), []byte(fmt.Sprintf("v%d", i)))
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	s := New(Config{MemtableSize: 64})
	put(s, 1000, "k")
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("k/%06d", i))
		v, ok := s.Get(key)
		if !ok {
			t.Fatalf("lost key %q (%v)", key, s)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %q value %q", key, v)
		}
	}
}

func TestOverwrite(t *testing.T) {
	s := New(Config{MemtableSize: 16})
	key := []byte("dup")
	for i := 0; i < 100; i++ {
		s.Put(key, []byte(fmt.Sprintf("v%d", i)))
		put(s, 10, fmt.Sprintf("filler%d", i)) // force flushes around it
	}
	s.Put(key, []byte("final"))
	v, ok := s.Get(key)
	if !ok || string(v) != "final" {
		t.Fatalf("overwrite lost: %q %v", v, ok)
	}
}

func TestMissingKey(t *testing.T) {
	s := New(Config{MemtableSize: 32})
	put(s, 500, "k")
	if _, ok := s.Get([]byte("never-inserted")); ok {
		t.Fatal("phantom key")
	}
}

func TestCompactionKeepsNewest(t *testing.T) {
	s := New(Config{MemtableSize: 8, MaxL0Runs: 2})
	key := []byte("x")
	s.Put(key, []byte("old"))
	put(s, 40, "a") // flushes + compactions
	s.Put(key, []byte("new"))
	put(s, 40, "b")
	v, ok := s.Get(key)
	if !ok || string(v) != "new" {
		t.Fatalf("compaction resurrected old value: %q %v", v, ok)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(Config{MemtableSize: 16})
	put(s, 200, "k")
	s.Flush()
	s.ResetStats()
	for i := 0; i < 100; i++ {
		s.Get([]byte(fmt.Sprintf("miss/%d", i)))
	}
	st := s.Stats()
	var reads, wasted uint64
	for i := range st.Reads {
		reads += st.Reads[i]
		wasted += st.WastedReads[i]
	}
	if reads == 0 {
		t.Fatal("no reads recorded for 100 misses without filters")
	}
	if wasted != reads {
		t.Fatalf("all unguarded miss reads are wasted: reads=%d wasted=%d", reads, wasted)
	}
	if st.CostIncurred <= 0 || st.WastedCost != st.CostIncurred {
		t.Fatalf("cost accounting wrong: %+v", st)
	}
}

func TestFiltersCutWastedReads(t *testing.T) {
	build := func(withFilter bool) Stats {
		cfg := Config{MemtableSize: 128}
		if withFilter {
			cfg.NewFilter = func(keys [][]byte, level int) Filter {
				f, err := bloom.NewWithKeys(keys, 10, bloom.StrategySplit128)
				if err != nil {
					t.Fatal(err)
				}
				return f
			}
		}
		s := New(cfg)
		put(s, 3000, "k")
		s.Flush()
		s.ResetStats()
		for i := 0; i < 3000; i++ {
			s.Get([]byte(fmt.Sprintf("neg/%06d", i)))
		}
		return s.Stats()
	}
	plain := build(false)
	guarded := build(true)
	if guarded.WastedCost >= plain.WastedCost/10 {
		t.Errorf("filters saved too little: wasted %v vs %v unguarded",
			guarded.WastedCost, plain.WastedCost)
	}
	var rejects uint64
	for _, r := range guarded.FilterRejects {
		rejects += r
	}
	if rejects == 0 {
		t.Error("no filter rejects recorded")
	}
}

func TestFiltersNeverLoseKeys(t *testing.T) {
	cfg := Config{
		MemtableSize: 64,
		NewFilter: func(keys [][]byte, level int) Filter {
			f, err := bloom.NewWithKeys(keys, 8, bloom.StrategySplit128)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	}
	s := New(cfg)
	put(s, 2000, "k")
	for i := 0; i < 2000; i++ {
		if _, ok := s.Get([]byte(fmt.Sprintf("k/%06d", i))); !ok {
			t.Fatalf("guard caused false negative on key %d", i)
		}
	}
}

func TestLevelKeys(t *testing.T) {
	s := New(Config{MemtableSize: 32, MaxL0Runs: 2})
	put(s, 500, "k")
	s.Flush()
	total := 0
	for level := 0; level < s.cfg.MaxLevels; level++ {
		total += len(s.LevelKeys(level))
	}
	if total != 500 {
		t.Fatalf("LevelKeys accounted %d keys, want 500", total)
	}
}

func TestReadCostDefaultsDouble(t *testing.T) {
	cfg := Config{}.withDefaults()
	for i := 1; i < len(cfg.ReadCost); i++ {
		if cfg.ReadCost[i] != cfg.ReadCost[i-1]*2 {
			t.Fatalf("default read costs not doubling: %v", cfg.ReadCost)
		}
	}
}

func TestEmptyFlushNoop(t *testing.T) {
	s := New(Config{})
	s.Flush()
	if got := s.Runs()[0]; got != 0 {
		t.Fatalf("empty flush created %d runs", got)
	}
}

func BenchmarkGetMiss(b *testing.B) {
	cfg := Config{
		MemtableSize: 1024,
		NewFilter: func(keys [][]byte, level int) Filter {
			f, _ := bloom.NewWithKeys(keys, 10, bloom.StrategySplit128)
			return f
		},
	}
	s := New(cfg)
	put(s, 50000, "k")
	s.Flush()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("miss/%d", i)))
	}
}
