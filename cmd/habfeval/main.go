// Command habfeval compares every filter in the module on a user-supplied
// workload (the files written by habfgen, or any files in the same
// format), reporting weighted FPR, FNR, build time and size — the quick
// way to evaluate HABF on your own keys.
//
// Usage:
//
//	habfgen -dataset shalla -n 50000 -skew 1.0 -out /tmp/d
//	habfeval -pos /tmp/d/shalla.positive -neg /tmp/d/shalla.negative \
//	         -costs /tmp/d/shalla.costs -bits-per-key 12
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	habf "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		posPath = flag.String("pos", "", "file of positive keys (required)")
		negPath = flag.String("neg", "", "file of negative keys (required)")
		cstPath = flag.String("costs", "", "file of per-negative costs (optional; default uniform)")
		bpk     = flag.Float64("bits-per-key", 12, "space budget per positive key")
		only    = flag.String("only", "", "run a single filter by name (e.g. HABF)")
	)
	flag.Parse()
	if *posPath == "" || *negPath == "" {
		fmt.Fprintln(os.Stderr, "habfeval: -pos and -neg are required")
		os.Exit(2)
	}

	pos, err := dataset.LoadKeys(*posPath)
	fatal(err)
	negKeys, err := dataset.LoadKeys(*negPath)
	fatal(err)
	costs := make([]float64, len(negKeys))
	for i := range costs {
		costs[i] = 1
	}
	if *cstPath != "" {
		costs, err = dataset.LoadCosts(*cstPath)
		fatal(err)
		if len(costs) != len(negKeys) {
			fatal(fmt.Errorf("habfeval: %d costs for %d negative keys", len(costs), len(negKeys)))
		}
	}
	neg := make([]habf.WeightedKey, len(negKeys))
	for i := range negKeys {
		neg[i] = habf.WeightedKey{Key: negKeys[i], Cost: costs[i]}
	}
	budget := uint64(*bpk * float64(len(pos)))

	type build struct {
		name string
		fn   func() (habf.Filter, error)
	}
	builds := []build{
		{"BF", func() (habf.Filter, error) { return habf.NewBloom(pos, *bpk, habf.BloomCorpus) }},
		{"BF(XXH128)", func() (habf.Filter, error) { return habf.NewBloom(pos, *bpk, habf.BloomSplit128) }},
		{"Xor", func() (habf.Filter, error) { return habf.NewXor(pos, *bpk) }},
		{"PHBF", func() (habf.Filter, error) { return habf.NewPHBF(pos, budget) }},
		{"WBF", func() (habf.Filter, error) { return habf.NewWBF(pos, neg, budget) }},
		{"LBF", func() (habf.Filter, error) { return habf.NewLBF(pos, negKeys, budget) }},
		{"SLBF", func() (habf.Filter, error) { return habf.NewSLBF(pos, negKeys, budget) }},
		{"Ada-BF", func() (habf.Filter, error) { return habf.NewAdaBF(pos, negKeys, budget) }},
		{"f-HABF", func() (habf.Filter, error) { return habf.NewFast(pos, neg, budget) }},
		{"HABF", func() (habf.Filter, error) { return habf.New(pos, neg, budget) }},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "filter\tbuild\tsize(KB)\tweighted FPR\tFNR")
	for _, b := range builds {
		if *only != "" && b.name != *only {
			continue
		}
		start := time.Now()
		f, err := b.fn()
		if err != nil {
			fmt.Fprintf(tw, "%s\terror: %v\t\t\t\n", b.name, err)
			continue
		}
		elapsed := time.Since(start)
		w, err := habf.WeightedFPR(f, negKeys, costs)
		if err != nil {
			fatal(err)
		}
		fnr, err := habf.FNR(f, pos)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f\t%.3e\t%g\n",
			b.name, elapsed.Round(time.Millisecond), float64(f.SizeBits())/8/1024, w, fnr)
	}
	tw.Flush()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "habfeval:", err)
		os.Exit(1)
	}
}
