package habf

import (
	"os"
	"testing"

	"repro/internal/fuzzcorpus"
)

// filterCorpusDir is where the committed FuzzUnmarshalFilter seeds live;
// `go test -fuzz` picks them up automatically.
const filterCorpusDir = "testdata/fuzz/FuzzUnmarshalFilter"

// TestFilterSeedCorpus keeps the committed seed corpus honest: every
// file must decode, every generated hostile input must be represented,
// and every committed seed must satisfy the fuzz target's property
// (no panic; accepted payloads re-marshal). Regenerate the files with
//
//	UPDATE_FUZZ_CORPUS=1 go test -run TestFilterSeedCorpus ./internal/habf
func TestFilterSeedCorpus(t *testing.T) {
	seeds := fuzzFilterSeeds(t)
	if os.Getenv("UPDATE_FUZZ_CORPUS") != "" {
		if err := fuzzcorpus.WriteDir(filterCorpusDir, seeds); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d seeds to %s", len(seeds), filterCorpusDir)
	}
	committed, err := fuzzcorpus.ReadDir(filterCorpusDir)
	if err != nil {
		t.Fatalf("reading corpus (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
	}
	for _, name := range fuzzcorpus.Names(seeds) {
		if _, ok := committed[name]; !ok {
			t.Errorf("seed %q not committed (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
	for _, name := range fuzzcorpus.Names(committed) {
		data := committed[name]
		// The fuzz target's core property, applied to each seed.
		for _, decode := range []func([]byte) (*Filter, error){UnmarshalFilter, UnmarshalFilterBorrow} {
			g, err := decode(data)
			if err != nil {
				continue
			}
			g.Contains([]byte("probe"))
			g.Contains(nil)
			if _, err := g.MarshalBinary(); err != nil {
				t.Errorf("seed %q: accepted filter failed to re-marshal: %v", name, err)
			}
		}
	}
	// The valid seed must actually be accepted, or the corpus has gone
	// stale against the wire format.
	if data, ok := committed["valid-filter"]; ok {
		if _, err := UnmarshalFilter(data); err != nil {
			t.Errorf("committed valid-filter seed rejected: %v (regenerate with UPDATE_FUZZ_CORPUS=1)", err)
		}
	}
}
