package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"testing"

	habf "repro"
)

// Goroutine-safe HTTP helpers for the torture test: the shared
// containsRaw/containsJSON helpers call t.Fatal, which must not run off
// the test goroutine, so these return errors instead.

func httpContains(base string, key []byte) (bool, error) {
	resp, err := http.Post(base+"/v1/contains", "application/octet-stream", bytes.NewReader(key))
	if err != nil {
		return false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("contains: HTTP %d: %s", resp.StatusCode, body)
	}
	return string(body) == "1", nil
}

func httpAdd(base string, key []byte) error {
	resp, err := http.Post(base+"/v1/add", "application/octet-stream", bytes.NewReader(key))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("add: HTTP %d", resp.StatusCode)
	}
	return nil
}

func httpContainsBatch(base string, keys [][]byte) ([]bool, error) {
	body, err := json.Marshal(map[string]any{"keys": keys})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/contains_batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("contains_batch: HTTP %d: %s", resp.StatusCode, out)
	}
	var decoded struct {
		Present []bool `json:"present"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		return nil, fmt.Errorf("contains_batch: %v in %q", err, out)
	}
	return decoded.Present, nil
}

func httpSnapshot(base, path string) error {
	body, err := json.Marshal(map[string]any{"path": path})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: HTTP %d: %s", resp.StatusCode, out)
	}
	return nil
}

// TestServerTorture is the end-to-end stress cycle per backend, meant
// for the race detector: concurrent contains (raw and batch forms),
// Adds and mid-traffic snapshots against one live HTTP server, then a
// restore → serve → add → snapshot chain on the restored set. For
// static backends that chain exercises the pending-keys frame — the
// restored set has no key list to rebuild from, so its post-restore
// Adds must persist through the container's pending section — and the
// final restore must hold every key acked at any point in the cycle.
func TestServerTorture(t *testing.T) {
	for _, backend := range backendsUnderTest(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			filter, data := newBackendFilter(t, backend, 1200)
			_, hs := newTestServer(t, filter, Config{})
			dir := t.TempDir()

			const (
				writers   = 2
				perWriter = 100
				readers   = 3
			)
			tortureKey := func(w, i int) []byte {
				return []byte(fmt.Sprintf("tort-%s-%d-%06d", backend, w, i))
			}

			// Sized for the worst case: one error per writer and reader
			// plus up to three from the snapshot goroutine (which keeps
			// looping after a restore failure) — an undersized buffer
			// would block a sender before its wg.Done and hang the test
			// instead of reporting the failures.
			errc := make(chan error, writers+readers+3)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						key := tortureKey(w, i)
						if err := httpAdd(hs.URL, key); err != nil {
							errc <- err
							return
						}
						// Acked means queryable, immediately, even mid-churn.
						ok, err := httpContains(hs.URL, key)
						if err != nil {
							errc <- err
							return
						}
						if !ok {
							errc <- fmt.Errorf("acked add %q not queryable", key)
							return
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					batch := make([][]byte, 0, 32)
					for i := 0; i < 400; i++ {
						member := data.Positives[(i*13+r)%len(data.Positives)]
						ok, err := httpContains(hs.URL, member)
						if err != nil {
							errc <- err
							return
						}
						if !ok {
							errc <- fmt.Errorf("false negative for member %q under torture", member)
							return
						}
						batch = append(batch, member, data.Negatives[(i*7+r)%len(data.Negatives)])
						if len(batch) == cap(batch) {
							got, err := httpContainsBatch(hs.URL, batch)
							if err != nil {
								errc <- err
								return
							}
							for j := 0; j < len(got); j += 2 {
								if !got[j] {
									errc <- fmt.Errorf("batch false negative under torture")
									return
								}
							}
							batch = batch[:0]
						}
					}
				}(r)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Snapshots racing the writers: each must be internally
				// consistent (Load validates CRCs and restores cleanly).
				for i := 0; i < 3; i++ {
					path := filepath.Join(dir, fmt.Sprintf("mid-%d.snap", i))
					if err := httpSnapshot(hs.URL, path); err != nil {
						errc <- err
						return
					}
					if _, err := habf.LoadFile(path); err != nil {
						errc <- fmt.Errorf("mid-traffic snapshot %d does not restore: %w", i, err)
					}
				}
			}()
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// Every write acked: the post-traffic snapshot must hold all of
			// them.
			gen1Path := filepath.Join(dir, "gen1.snap")
			if err := httpSnapshot(hs.URL, gen1Path); err != nil {
				t.Fatal(err)
			}
			restored, err := habf.LoadFile(gen1Path)
			if err != nil {
				t.Fatal(err)
			}

			// Serve the restored set and add through it: on a static
			// backend these keys can only survive via the pending-keys
			// frame (no key list to rebuild from).
			_, hs2 := newTestServer(t, restored, Config{})
			var postRestore [][]byte
			for i := 0; i < 60; i++ {
				key := []byte(fmt.Sprintf("tort-post-%s-%06d", backend, i))
				postRestore = append(postRestore, key)
				if err := httpAdd(hs2.URL, key); err != nil {
					t.Fatal(err)
				}
			}
			gen2Path := filepath.Join(dir, "gen2.snap")
			if err := httpSnapshot(hs2.URL, gen2Path); err != nil {
				t.Fatalf("snapshot of restored set with post-restore adds: %v", err)
			}

			final, err := habf.LoadFile(gen2Path)
			if err != nil {
				t.Fatal(err)
			}
			if final.Backend() != backend {
				t.Fatalf("final restore backend %q, want %q", final.Backend(), backend)
			}
			for _, key := range data.Positives {
				if !final.Contains(key) {
					t.Fatalf("final restore lost member %q", key)
				}
			}
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					if key := tortureKey(w, i); !final.Contains(key) {
						t.Fatalf("final restore lost torture key %q", key)
					}
				}
			}
			for _, key := range postRestore {
				if !final.Contains(key) {
					t.Fatalf("final restore lost post-restore key %q (pending-keys frame)", key)
				}
			}
		})
	}
}
