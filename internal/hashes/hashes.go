// Package hashes implements the global hash-function family H of the paper
// (Table II): 22 deterministic 64-bit hash functions over byte strings,
// written from scratch on the standard library only.
//
// HABF draws each key's customized selection φ(e) from this corpus, so what
// matters is that the functions are deterministic, cheap, and mutually
// different — not that they are byte-identical to the reference C
// implementations. The strong functions (xx64-, city-, murmur-style,
// Jenkins) follow the published mixing structure of their namesakes; the
// classic string hashes (DJB, BKDR, SDBM, ...) are the canonical one-line
// recurrences widened to 64-bit accumulators. Several of the classics are
// deliberately weak hashes: the paper keeps them in H to show that hash
// customization also protects against skewed hash functions.
package hashes

// Func is a deterministic 64-bit hash over a byte string.
type Func func(data []byte) uint64

// Named couples a corpus function with its Table II name.
type Named struct {
	Name string
	Fn   Func
}

// corpus is the fixed global family H. Order matters: HashExpressor cells
// can only index the first 2^(cellBits-1)-1 entries, so the strongest
// general-purpose functions come first (cell size 4 exposes the first 7,
// cell size 5 the first 15, exactly as in §V-D3 of the paper).
var corpus = []Named{
	{"XX64", XXH64},
	{"City64", City64},
	{"Murmur64", Murmur64},
	{"BOB", BOB},
	{"OAAT", OAAT},
	{"SuperFast", SuperFast},
	{"Hsieh", Hsieh},
	{"CRC32", CRC},
	{"FNV", FNV1a},
	{"DEK", DEK},
	{"PYHash", PYHash},
	{"BRP", BRP},
	{"TWMX", TWMX},
	{"APHash", AP},
	{"NDJB", NDJB},
	{"DJB", DJB},
	{"BKDR", BKDR},
	{"PJW", PJW},
	{"JSHash", JS},
	{"RSHash", RS},
	{"SDBM", SDBM},
	{"ELF", ELF},
}

// Corpus returns the global hash family H in its canonical order.
// The returned slice is a copy; callers may reorder it freely.
func Corpus() []Named {
	out := make([]Named, len(corpus))
	copy(out, corpus)
	return out
}

// CorpusFuncs returns just the functions of H, in canonical order.
func CorpusFuncs() []Func {
	out := make([]Func, len(corpus))
	for i, n := range corpus {
		out[i] = n.Fn
	}
	return out
}

// CorpusSize returns |H|.
func CorpusSize() int { return len(corpus) }

// ByName returns the corpus function with the given Table II name.
func ByName(name string) (Func, bool) {
	for _, n := range corpus {
		if n.Name == name {
			return n.Fn, true
		}
	}
	return nil, false
}

// Mix64 is the splitmix64 finalizer: a cheap full-avalanche 64-bit mixer
// used to derive seeded variants and to post-condition weak values.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seeded returns h(data) perturbed by seed with full avalanche. It is the
// building block for the paper's BF(City64)/BF(XXH128) style filters that
// derive k values from one strong hash plus k seeds.
func Seeded(fn Func, data []byte, seed uint64) uint64 {
	return Mix64(fn(data) ^ Mix64(seed))
}

// Split128 produces two independent 64-bit lanes from one key, in the
// spirit of a 128-bit hash: the lanes come from structurally different
// mixers (xx64 and city-style) so they do not cancel under double hashing.
func Split128(data []byte, seed uint64) (hi, lo uint64) {
	hi = XXH64Seed(data, seed)
	lo = Mix64(City64(data) ^ Mix64(seed^0x9e3779b97f4a7c15))
	return hi, lo
}

// Double implements the Kirsch–Mitzenmacher simulated hash g_i(x) =
// h1(x) + i·h2(x) used by the split-128 Bloom variant (§III-G of the
// paper). h2 is forced odd so that g_i cycles through all residues of a
// power-of-two table.
func Double(h1, h2 uint64, i int) uint64 {
	return h1 + uint64(i)*(h2|1)
}

// EnhancedDouble is the Dillinger–Manolios triangular variant
// g_i(x) = h1 + i·h2 + (i³-i)/6, which breaks the arithmetic-progression
// correlation of plain double hashing. f-HABF derives its simulated
// family from it: the paper cites Dillinger [31] for plain double
// hashing's degradation, and per-key position diversity is exactly what
// TPJO's candidate search needs.
func EnhancedDouble(h1, h2 uint64, i int) uint64 {
	u := uint64(i)
	return h1 + u*(h2|1) + (u*u*u-u)/6
}
