package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusRendering pins the exposition format: family grouping,
// TYPE lines, labeled counters, gauges, cumulative histogram buckets.
func TestPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter(`req_total{endpoint="contains"}`, "Requests by endpoint.")
	b := reg.Counter(`req_total{endpoint="add"}`, "Requests by endpoint.")
	reg.Gauge("keys", "Keys served.", func() float64 { return 42 })
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})

	a.Add(3)
	b.Inc()
	h.Observe(0.005) // ≤0.01
	h.Observe(0.05)  // ≤0.1
	h.Observe(0.5)   // ≤1
	h.Observe(5)     // +Inf

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP req_total Requests by endpoint.\n# TYPE req_total counter\n",
		`req_total{endpoint="contains"} 3`,
		`req_total{endpoint="add"} 1`,
		"# TYPE keys gauge",
		"keys 42",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The shared family header must appear exactly once.
	if n := strings.Count(out, "# TYPE req_total counter"); n != 1 {
		t.Fatalf("req_total TYPE header appears %d times", n)
	}
	// Histogram sum: 0.005+0.05+0.5+5 = 5.555.
	if !strings.Contains(out, "latency_seconds_sum 5.555") {
		t.Fatalf("bad histogram sum in:\n%s", out)
	}
}

// TestHistogramObserveDuration checks the seconds conversion.
func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	h.ObserveDuration(30 * time.Microsecond)
	h.ObserveDuration(2 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	// 30µs lands in the ≤50µs bucket (index 2: bounds 10µs, 25µs, 50µs).
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("30µs bucket count %d, want 1", got)
	}
}

// TestMetricsConcurrency exercises updates racing a scrape (run under
// -race in CI).
func TestMetricsConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "Ops.")
	h := reg.Histogram("lat_seconds", "Latency.", DurationBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count %d, want 4000", h.Count())
	}
}
