package xorfilter

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func serializeFixture(t *testing.T) (*Filter, [][]byte) {
	t.Helper()
	keys := make([][]byte, 2000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("xser-key-%06d", i))
	}
	f, err := NewWithBudget(keys, 10)
	if err != nil {
		t.Fatal(err)
	}
	return f, keys
}

func TestSerializeRoundtrip(t *testing.T) {
	f, keys := serializeFixture(t)
	wire, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for mode, unmarshal := range map[string]func([]byte) (*Filter, error){
		"owned":  UnmarshalFilter,
		"borrow": UnmarshalFilterBorrow,
	} {
		g, err := unmarshal(wire)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if g.Width() != f.Width() || g.Count() != f.Count() || g.SizeBits() != f.SizeBits() {
			t.Fatalf("%s: decoded shape w=%d n=%d bits=%d, want w=%d n=%d bits=%d",
				mode, g.Width(), g.Count(), g.SizeBits(), f.Width(), f.Count(), f.SizeBits())
		}
		for _, key := range keys {
			if !g.Contains(key) {
				t.Fatalf("%s: false negative for %q", mode, key)
			}
		}
		for i := 0; i < 2000; i++ {
			probe := []byte(fmt.Sprintf("xser-probe-%06d", i))
			if g.Contains(probe) != f.Contains(probe) {
				t.Fatalf("%s: decoded filter disagrees on %q", mode, probe)
			}
		}
	}
	// Borrow mode must actually engage on an aligned heap buffer (the
	// marshal output starts at a word-aligned allocation and the lanes
	// payload offset is a multiple of 8).
	g, err := UnmarshalFilterBorrow(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Borrowed() {
		t.Log("borrow mode degraded to a copy (alignment); allowed but unexpected on amd64")
	}
}

func TestSerializeRejectsHostileInput(t *testing.T) {
	f, _ := serializeFixture(t)
	good, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:16],
		"truncated":   good[:len(good)-4],
		"trailing":    append(append([]byte(nil), good...), 0),
		"bad magic":   mut(func(b []byte) { b[0] ^= 0xFF }),
		"bad version": mut(func(b []byte) { b[4] = 99 }),
		"zero block": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], 0)
		}),
		// blockLen inconsistent with the table: slot derivation would
		// index out of bounds.
		"short block": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], 1)
		}),
		// blockLen chosen so 3·blockLen wraps around 2^64; must be
		// rejected by the division-based check, not accepted via
		// overflow.
		"wrapping block": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], (1<<64-1)/3+1)
		}),
		"huge lanes len": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[32:40], 1<<40)
		}),
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
	}
}
