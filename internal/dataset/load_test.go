package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestKeysRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.txt")
	keys := Shalla(500, 1, 1).Positives
	if err := SaveKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("loaded %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if !bytes.Equal(got[i], keys[i]) {
			t.Fatalf("key %d mismatch: %q vs %q", i, got[i], keys[i])
		}
	}
}

func TestCostsRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "costs.txt")
	costs := ZipfCosts(300, 1.5, 2)
	if err := SaveCosts(path, costs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(costs) {
		t.Fatalf("loaded %d costs, want %d", len(got), len(costs))
	}
	for i := range costs {
		if got[i] != costs[i] {
			t.Fatalf("cost %d: %v vs %v", i, got[i], costs[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadKeys("/nonexistent/file"); err == nil {
		t.Error("missing key file accepted")
	}
	if _, err := LoadCosts("/nonexistent/file"); err == nil {
		t.Error("missing cost file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeys(empty); err == nil {
		t.Error("empty key file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("1.5\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCosts(bad); err == nil {
		t.Error("malformed cost accepted")
	}
	negv := filepath.Join(dir, "neg")
	if err := os.WriteFile(negv, []byte("-3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCosts(negv); err == nil {
		t.Error("negative cost accepted")
	}
}
