package snapshot_test

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"testing"

	"repro/internal/fuzzcorpus"
	"repro/internal/habf"
	"repro/internal/shard"
	"repro/internal/snapshot"
)

// fuzzSnapshotSeeds builds the hostile container inputs
// FuzzUnmarshalSnapshot starts from; the same set is committed under
// testdata/fuzz/FuzzUnmarshalSnapshot so the CI fuzz smoke starts from
// real decoder edge cases.
func fuzzSnapshotSeeds(tb testing.TB) map[string][]byte {
	pos := make([][]byte, 300)
	neg := make([]habf.WeightedKey, 300)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("fz-pos-%04d", i))
		neg[i] = habf.WeightedKey{Key: []byte(fmt.Sprintf("fz-neg-%04d", i)), Cost: float64(i%7 + 1)}
	}
	set, err := shard.New(pos, neg, shard.Config{Shards: 4, TotalBits: 300 * 12})
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := set.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	good, err := snap.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}

	seeds := map[string][]byte{
		"valid-container": good,
		"empty":           {},
		"magic-only":      []byte("HSNP"),
		// Truncated mid-frame: header intact, tail gone.
		"trunc-midframe": good[:len(good)/3],
		// Truncated to just under the footer.
		"trunc-footer": good[:len(good)-17],
	}
	// Corrupted payload byte: frame CRC must catch it.
	crcBad := append([]byte(nil), good...)
	crcBad[len(crcBad)/2] ^= 0x40
	seeds["payload-bitrot"] = crcBad
	// Corrupted frame CRC field itself (first frame header, bytes 16:20).
	fieldBad := append([]byte(nil), good...)
	fieldBad[64+16] ^= 0x01
	seeds["crc-field-bitrot"] = fieldBad
	// Header declaring a huge shard count, with the header CRC recomputed
	// so the seed reaches the implausible-count allocation guard instead
	// of dying on the CRC check.
	huge := append([]byte(nil), good...)
	huge[52], huge[53], huge[54], huge[55] = 0xFF, 0xFF, 0xFF, 0x7F
	binary.LittleEndian.PutUint32(huge[60:64], crc32.Checksum(huge[:60], crc32.MakeTable(crc32.Castagnoli)))
	seeds["huge-shard-count"] = huge
	// Wrong container kind (CRC fixed up the same way): the type
	// discriminator, not shard.Restore, must reject it.
	wrongKind := append([]byte(nil), good...)
	wrongKind[48] = 2 // KindFilterBlocks in a sharded-set restore path
	binary.LittleEndian.PutUint32(wrongKind[60:64], crc32.Checksum(wrongKind[:60], crc32.MakeTable(crc32.Castagnoli)))
	seeds["wrong-kind"] = wrongKind
	// Unknown backend kind in header byte 49 (CRC fixed): the filtercore
	// registry lookup must reject it before any frame is decoded.
	wrongBackend := append([]byte(nil), good...)
	wrongBackend[49] = 0xEE
	binary.LittleEndian.PutUint32(wrongBackend[60:64], crc32.Checksum(wrongBackend[:60], crc32.MakeTable(crc32.Castagnoli)))
	seeds["wrong-backend-kind"] = wrongBackend
	// Cross-backend frames: a header claiming the xor backend (kind 2)
	// over HABF frame payloads. The xor wire decoder must refuse the
	// frames (wrong magic), never misparse them.
	crossBackend := append([]byte(nil), good...)
	crossBackend[49] = 2
	binary.LittleEndian.PutUint32(crossBackend[60:64], crc32.Checksum(crossBackend[:60], crc32.MakeTable(crc32.Castagnoli)))
	seeds["cross-backend-frame"] = crossBackend
	// Valid containers of the non-default backends, so the fuzzer mutates
	// every registered frame decoder (bloom, xor, wbf cache entries, phbf
	// seed tables, and the learned families' model + nested bloom blocks).
	for _, backend := range []string{"bloom", "xor", "wbf", "phbf", "lbf", "slbf", "adabf"} {
		set, err := shard.New(pos, neg, shard.Config{Shards: 4, TotalBits: 300 * 12, Backend: backend})
		if err != nil {
			tb.Fatal(err)
		}
		snap, err := set.Snapshot()
		if err != nil {
			tb.Fatal(err)
		}
		data, err := snap.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		seeds["valid-"+backend+"-container"] = data
	}
	// Learned-container attacks: container-valid (CRCs recomputed by
	// MarshalBinary) but with a hostile shard payload, so the fuzzer
	// starts inside the learned wire decoders rather than dying at the
	// container checksum.
	mutateFrame := func(container []byte, mutate func(payload []byte) []byte) []byte {
		s, err := snapshot.Unmarshal(container)
		if err != nil {
			tb.Fatal(err)
		}
		s.Frames[0].Payload = mutate(append([]byte(nil), s.Frames[0].Payload...))
		data, err := s.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		return data
	}
	// Model block cut mid-weights.
	seeds["learned-truncated-model"] = mutateFrame(seeds["valid-lbf-container"], func(p []byte) []byte {
		return p[:len(p)-2]
	})
	// Logistic weight count forced to 0xFFFFFFFF — must fail the bounds
	// check, not drive a 16 GiB allocation. The model block follows the
	// 28-byte LBF header and the backup block (length at payload 20:28).
	seeds["learned-hostile-weight-count"] = mutateFrame(seeds["valid-lbf-container"], func(p []byte) []byte {
		modelOff := 28 + binary.LittleEndian.Uint64(p[20:28])
		if p[modelOff] != 1 {
			tb.Fatalf("LBF frame model kind = %d, want logistic", p[modelOff])
		}
		binary.LittleEndian.PutUint32(p[modelOff+1:], 0xFFFFFFFF)
		return p
	})
	// Inner bloom block with a smashed magic (Ada-BF's shared bit array
	// starts right after its 20-byte header): the nested BLMF decoder
	// must reject it, never misparse.
	seeds["learned-wrong-inner-bloom"] = mutateFrame(seeds["valid-adabf-container"], func(p []byte) []byte {
		p[20] ^= 0xFF
		return p
	})
	// Pending-keys section: restore a static-backend container, add keys
	// (they pend — no key list to rebuild from), snapshot again. The
	// result carries the flagged extra frame, giving the fuzzer the
	// pending decoder to mutate; plus truncated and bit-rotted variants
	// targeting that frame specifically.
	restoredSnap, err := snapshot.Unmarshal(seeds["valid-xor-container"])
	if err != nil {
		tb.Fatal(err)
	}
	restoredSet, err := shard.Restore(restoredSnap)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		restoredSet.Add([]byte(fmt.Sprintf("fz-pend-%04d", i)))
	}
	pendSnap, err := restoredSet.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	if len(pendSnap.Pending) == 0 {
		tb.Fatal("pending seed carries no pending keys")
	}
	pend, err := pendSnap.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	seeds["valid-pending-section"] = pend
	seeds["pending-truncated"] = pend[:len(pend)-40]
	pendRot := append([]byte(nil), pend...)
	pendRot[len(pendRot)-30] ^= 0x10 // inside the pending frame / footer region
	seeds["pending-bitrot"] = pendRot
	// Tuning frame: a non-default knob set makes the snapshot carry the
	// flagged tuning frame, giving the fuzzer the tuning decoder and the
	// restore path's schema validation to mutate.
	tunedSet, err := shard.New(pos, neg, shard.Config{Shards: 4, TotalBits: 300 * 12, Backend: "xor", Tuning: "width=9"})
	if err != nil {
		tb.Fatal(err)
	}
	tunedSnap, err := tunedSet.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	if tunedSnap.Meta.Tuning == "" {
		tb.Fatal("tuned seed carries no tuning frame")
	}
	tuned, err := tunedSnap.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	seeds["valid-tuning-frame"] = tuned
	seeds["tuning-truncated"] = tuned[:len(tuned)-40]
	tuneRot := append([]byte(nil), tuned...)
	tuneRot[len(tuneRot)-30] ^= 0x10
	seeds["tuning-bitrot"] = tuneRot
	// Container-valid tuning frames the schema must reject at restore:
	// an unknown knob and an out-of-bounds value.
	for name, tuning := range map[string]string{
		"tuning-unknown-knob":  "bogus=1",
		"tuning-out-of-bounds": "absorb=4096,width=999",
	} {
		bad := &snapshot.Snapshot{Meta: tunedSnap.Meta, Frames: tunedSnap.Frames}
		bad.Meta.Tuning = tuning
		data, err := bad.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		seeds[name] = data
	}
	return seeds
}

// snapshotCorpusDir is where the committed FuzzUnmarshalSnapshot seeds
// live; `go test -fuzz` picks them up automatically.
const snapshotCorpusDir = "testdata/fuzz/FuzzUnmarshalSnapshot"

// TestSnapshotSeedCorpus keeps the committed seed corpus honest (see
// TestFilterSeedCorpus in internal/habf for the scheme). Regenerate with
//
//	UPDATE_FUZZ_CORPUS=1 go test -run TestSnapshotSeedCorpus ./internal/snapshot
func TestSnapshotSeedCorpus(t *testing.T) {
	seeds := fuzzSnapshotSeeds(t)
	if os.Getenv("UPDATE_FUZZ_CORPUS") != "" {
		if err := fuzzcorpus.WriteDir(snapshotCorpusDir, seeds); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d seeds to %s", len(seeds), snapshotCorpusDir)
	}
	committed, err := fuzzcorpus.ReadDir(snapshotCorpusDir)
	if err != nil {
		t.Fatalf("reading corpus (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
	}
	for _, name := range fuzzcorpus.Names(seeds) {
		if _, ok := committed[name]; !ok {
			t.Errorf("seed %q not committed (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
	for _, name := range fuzzcorpus.Names(committed) {
		data := committed[name]
		s, err := snapshot.Unmarshal(data)
		if err != nil {
			continue
		}
		restored, err := shard.Restore(s)
		if err != nil {
			continue
		}
		restored.Contains([]byte("probe"))
		restored.Contains(nil)
	}
	if data, ok := committed["valid-container"]; ok {
		if _, err := snapshot.Unmarshal(data); err != nil {
			t.Errorf("committed valid-container seed rejected: %v (regenerate with UPDATE_FUZZ_CORPUS=1)", err)
		}
	}
}
