// Package shard partitions one logical filter across N independent
// shards so a filter service can use every core: shards build in
// parallel at construction, Add takes a per-shard lock instead of a
// global one, and a shard whose accuracy has drifted (too many
// post-construction Adds) is rebuilt in the background and atomically
// swapped in while the other shards keep serving.
//
// The per-shard filter is a pluggable filtercore.Backend — HABF by
// default, but any registered backend (standard Bloom, Xor, WBF, PHBF,
// ...) serves through the same routing, locking, rebuild and snapshot
// machinery. Mutable backends absorb Adds directly; static backends
// (Xor, PHBF) cannot, so the shard buffers added keys as pending —
// still answered with zero false negatives — until the existing
// rebuild-with-atomic-swap path absorbs them into a fresh filter (or,
// on a restored set with no key list to rebuild from, until a snapshot
// persists them through the container's pending-keys frame).
//
// Keys are routed by fingerprint prefix: the top bits of an independent
// 64-bit key hash select the shard, so the per-shard positive and
// negative sets are disjoint and every query touches exactly one shard.
// The routing hash is seeded independently of the per-shard hash
// families, keeping shard membership uncorrelated with in-shard bit
// positions.
//
// Unlike a bare filter — whose Add must be externally synchronized
// against readers — a Set is safe for fully concurrent use: any number of
// goroutines may call Contains/ContainsBatch/Add with no external
// locking.
package shard

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/filtercore"
	"repro/internal/habf"
	"repro/internal/hashes"
)

// Config sizes a sharded filter.
type Config struct {
	// Shards is the shard count; it is rounded up to a power of two.
	// Default 8.
	Shards int
	// TotalBits is the overall space budget, divided among shards in
	// proportion to their share of the positive keys. Required.
	TotalBits uint64
	// Params is the per-shard construction template. Its TotalBits field
	// is ignored (the budget comes from Config.TotalBits); its Seed is
	// perturbed per shard so shards hash independently. Non-HABF
	// backends use the fields that apply to them and ignore the rest.
	Params habf.Params
	// RebuildThreshold is the fraction of post-build Adds (relative to
	// the keys present at the last build) that triggers a background
	// rebuild of a shard. Zero means the 2% default; negative disables
	// background rebuilds.
	RebuildThreshold float64
	// Backend names the registered filtercore backend every shard is
	// built with. Empty means the default ("habf").
	Backend string
	// Tuning is the backend's knob string ("k=v,k=v"), parsed and
	// validated against the backend's tuning schema. Empty means every
	// knob at its default. Unset knobs with a non-zero Params equivalent
	// (HABF's K and CellBits) inherit from Params, so the legacy options
	// and the tuning plane describe one configuration.
	Tuning string
}

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 8

// DefaultRebuildThreshold matches the "rebuild once AddedKeys reaches a
// few percent of the original set" guidance of the Add documentation.
const DefaultRebuildThreshold = 0.02

// minShardBits is the smallest per-shard budget; habf.New rejects
// anything under 64 bits, and a tiny shard would be all false positives.
const minShardBits = 128

// Set is a sharded filter. All methods are safe for concurrent use.
type Set struct {
	shards      []*shard
	shift       uint // route = hash >> shift
	routeSeed   uint64
	threshold   float64
	baseParams  habf.Params // construction template with the base seed
	backend     *filtercore.Factory
	tuning      filtercore.Tuning // effective knob set, reused by every (re)build
	tuningStr   string            // canonical form of tuning, cached
	absorbEvery int               // "absorb" knob: restored-shard pending threshold
	bitsPerKey  float64
	rebuilds    atomic.Uint64
	rebuildErrs atomic.Uint64
	absorbs     atomic.Uint64
	rebuildWG   sync.WaitGroup
}

type shard struct {
	set *Set

	// epoch counts mutations to the shard's serving state (Add, rebuild
	// swap). Snapshot records it per frame, so a frame is a consistent
	// image of its shard "as of epoch E". Incremented under mu's write
	// side; atomic so Stats can read it lock-free.
	epoch atomic.Uint64

	// addMu serializes writers ahead of mu and is the only way the
	// positives list grows: Add takes addMu then mu's write side, so a
	// holder of addMu alone freezes the shard's key set while readers
	// (who take only mu's read side) keep serving. Snapshot-time pending
	// absorption uses exactly that — build outside every lock with
	// writers queued, then a brief write-locked swap — to capture acked
	// Adds without ever blocking readers. Lock order: addMu before mu.
	addMu sync.Mutex

	// mu guards every mutable field below. Readers (Contains) take the
	// read side; Add and the rebuild swap take the write side.
	mu        sync.RWMutex
	f         filtercore.Backend // nil while the shard has no positive keys
	positives [][]byte           // every key the shard answers true for
	negatives []habf.WeightedKey
	// pending holds keys the current filter does not represent — Adds a
	// static backend refused, or keys whose lazy build failed. Queries
	// consult it after the filter, preserving zero false negatives; a
	// rebuild absorbs it. Invariant under mu: every key in positives is
	// either represented by f or present in pending.
	pending  map[string]struct{}
	// sidecar is a mutable overlay a restored static shard absorbs its
	// pending keys into once they cross the absorb threshold: built over
	// the full in-memory positives (a superset of pending), so the
	// pending map can be cleared without breaking zero false negatives.
	// Queries consult it between the filter and the pending map.
	sidecar   filtercore.Backend
	absorbing bool
	baseline  int // keys represented by f at the last (re)build
	// builds counts filter swaps. A background rebuild records it at
	// start and discards its result if another swap (a snapshot-time
	// pending absorb, built from a longer key prefix) landed meanwhile —
	// installing the stale filter would re-pend keys a static backend
	// had already absorbed.
	builds     uint64
	rebuilding bool
	// restored marks a shard whose filter came from a snapshot: its
	// pre-snapshot key list is unknown, so a drift rebuild (which
	// reconstructs from positives) would lose keys and is disabled.
	restored   bool
	bitsPerKey float64
	params     habf.Params // template; TotalBits set per build
}

// New partitions positives and negatives across shards and builds every
// shard in parallel. At least one positive key is required overall;
// individual shards may come up empty and answer false until keys are
// added to them.
func New(positives [][]byte, negatives []habf.WeightedKey, cfg Config) (*Set, error) {
	if len(positives) == 0 {
		return nil, fmt.Errorf("shard: empty positive key set")
	}
	backend, err := filtercore.ByName(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	// Validate every negative up front, including those routed to shards
	// that come up empty (the backend would only see them on a later lazy
	// build, where there is no error channel back to the caller).
	for i, wk := range negatives {
		if wk.Cost < 0 {
			return nil, fmt.Errorf("shard: negative key %d has negative cost %v", i, wk.Cost)
		}
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n)) // round up to a power of two
	}
	threshold := cfg.RebuildThreshold
	if threshold == 0 {
		threshold = DefaultRebuildThreshold
	}
	params := cfg.Params
	if params.Seed == 0 {
		params.Seed = 1
	}
	tun, err := backend.ParseTuning(cfg.Tuning)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	tun, params, err = reconcileTuning(backend, tun, params)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}

	s := &Set{
		shards:      make([]*shard, n),
		shift:       uint(64 - bits.TrailingZeros(uint(n))),
		routeSeed:   uint64(params.Seed)*0x2545f4914f6cdd1d + 0x9e3779b97f4a7c15,
		threshold:   threshold,
		baseParams:  params,
		backend:     backend,
		tuning:      tun,
		tuningStr:   tun.String(),
		absorbEvery: tun.Int("absorb"),
		bitsPerKey:  float64(cfg.TotalBits) / float64(len(positives)),
	}

	// Partition by fingerprint prefix.
	posByShard := make([][][]byte, n)
	negByShard := make([][]habf.WeightedKey, n)
	for _, key := range positives {
		id := s.route(key)
		posByShard[id] = append(posByShard[id], key)
	}
	for _, wk := range negatives {
		id := s.route(wk.Key)
		negByShard[id] = append(negByShard[id], wk)
	}

	bitsPerKey := s.bitsPerKey
	for i := range s.shards {
		p := params
		p.Seed = perturbSeed(params.Seed, i)
		s.shards[i] = &shard{
			set:        s,
			positives:  posByShard[i],
			negatives:  negByShard[i],
			bitsPerKey: bitsPerKey,
			params:     p,
		}
	}

	// Build every non-empty shard in parallel.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, sh := range s.shards {
		if len(sh.positives) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			f, err := sh.build(sh.positives)
			if err != nil {
				errs[i] = err
				return
			}
			sh.f = f
			sh.baseline = len(sh.positives)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return s, nil
}

// reconcileTuning makes the legacy HABF Params toggles and the tuning
// knobs describe one configuration: a Params field set through WithK or
// WithCellBits is folded into an unset tuning knob (so snapshots, stats
// and rebuilds report and reuse it), and a set knob is written back into
// the Params template (so construction and validation see it). An
// explicitly set knob wins over the option. Non-HABF backends pass
// through untouched.
func reconcileTuning(backend *filtercore.Factory, tun filtercore.Tuning, p habf.Params) (filtercore.Tuning, habf.Params, error) {
	if backend.Name != filtercore.DefaultBackend {
		return tun, p, nil
	}
	var err error
	if k := tun.Int("k"); k != 0 {
		p.K = k
	} else if p.K != 0 {
		if tun, err = tun.With("k", fmt.Sprint(p.K)); err != nil {
			return tun, p, err
		}
	}
	if cb := tun.Int("cellbits"); cb != 0 {
		p.CellBits = uint(cb)
	} else if p.CellBits != 0 {
		if tun, err = tun.With("cellbits", fmt.Sprint(p.CellBits)); err != nil {
			return tun, p, err
		}
	}
	return tun, p, nil
}

// perturbSeed derives a per-shard seed that is deterministic in the base
// seed but decorrelated across shards (and never the zero value that
// Params would re-default).
func perturbSeed(base int64, i int) int64 {
	seed := int64(hashes.Mix64(uint64(base) ^ uint64(i+1)*0x9e3779b97f4a7c15))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// route returns the shard index for a key: the top log2(N) bits of an
// independent fingerprint.
func (s *Set) route(key []byte) int {
	return int(hashes.XXH64Seed(key, s.routeSeed) >> s.shift)
}

// build constructs the shard's filter over the given keys with a budget
// proportional to the key count.
func (sh *shard) build(keys [][]byte) (filtercore.Backend, error) {
	totalBits := uint64(sh.bitsPerKey * float64(len(keys)))
	if totalBits < minShardBits {
		totalBits = minShardBits
	}
	return sh.set.backend.Build(keys, sh.negatives, filtercore.BuildConfig{
		TotalBits: totalBits,
		Params:    sh.params,
		Tuning:    sh.set.tuning,
	})
}

// addPending records a key the filter does not represent, under mu's
// write side.
func (sh *shard) addPending(key []byte) {
	if sh.pending == nil {
		sh.pending = make(map[string]struct{})
	}
	sh.pending[string(key)] = struct{}{}
}

// hasPending reports (under either lock side) whether key is buffered.
func (sh *shard) hasPending(key []byte) bool {
	if sh.pending == nil {
		return false
	}
	_, ok := sh.pending[string(key)]
	return ok
}

// drift counts post-build Adds not yet folded into a rebuild: keys the
// mutable filter absorbed degraded plus keys a static filter left
// pending. On a restored shard every in-memory positive is a
// post-restore Add (the snapshot's key list never loads), so the
// positives length is the drift — it keeps counting after a sidecar
// absorb clears the pending map.
func (sh *shard) drift() uint64 {
	if sh.restored {
		return uint64(len(sh.positives))
	}
	var d uint64
	if sh.f != nil {
		d = sh.f.AddedKeys()
	}
	return d + uint64(len(sh.pending))
}

// Contains reports whether key may be a member. Safe for any number of
// concurrent callers, including concurrent Adds.
func (s *Set) Contains(key []byte) bool {
	sh := s.shards[s.route(key)]
	sh.mu.RLock()
	ok := sh.f != nil && sh.f.Contains(key)
	if !ok && sh.sidecar != nil {
		ok = sh.sidecar.Contains(key)
	}
	if !ok {
		ok = sh.hasPending(key)
	}
	sh.mu.RUnlock()
	return ok
}

// batchChunk bounds the stack scratch used to group a batch by shard.
// Larger batches are processed in chunks of this size.
const batchChunk = 512

// ContainsBatch answers one result per key, in order. Each shard's read
// lock is taken once per chunk of keys (not once per key) and the whole
// chunk shares one scratch buffer, so the per-key cost drops to routing
// plus the raw two-round query. The only heap allocation is the result
// slice.
func (s *Set) ContainsBatch(keys [][]byte) []bool {
	out := make([]bool, len(keys))
	for lo := 0; lo < len(keys); lo += batchChunk {
		hi := lo + batchChunk
		if hi > len(keys) {
			hi = len(keys)
		}
		s.containsChunk(out[lo:hi], keys[lo:hi])
	}
	return out
}

// maxChunkLocks bounds how many shard read locks one chunk holds at
// once; wider sets (implausible for a single process) fall back to
// per-key locking.
const maxChunkLocks = 64

// scratchQuerier is the allocation-free query form HABF backends expose;
// the chunk path uses it when available to reuse one scratch buffer
// across the whole chunk.
type scratchQuerier interface {
	ContainsScratch(key []byte, scratch []uint8) bool
}

// containsChunk evaluates up to batchChunk keys under one lock round:
// every shard's read lock is taken once, in ascending order, and the
// whole chunk is evaluated with cached filter pointers and one reused
// scratch buffer. Writers (Add, rebuild swaps) each hold exactly one
// shard lock, so readers acquiring the full ascending sequence cannot
// deadlock against them; they are delayed by at most one chunk.
func (s *Set) containsChunk(out []bool, keys [][]byte) {
	n := len(s.shards)
	if n > maxChunkLocks || len(keys) < n {
		// Degenerate batches (fewer keys than shards) would pay more for
		// the lock round than per-key locking costs; route individually.
		for i, key := range keys {
			out[i] = s.Contains(key)
		}
		return
	}

	var filters [maxChunkLocks]filtercore.Backend
	var scratchers [maxChunkLocks]scratchQuerier
	var sidecars [maxChunkLocks]filtercore.Backend
	var pendings [maxChunkLocks]map[string]struct{}
	for id := 0; id < n; id++ {
		s.shards[id].mu.RLock()
		filters[id] = s.shards[id].f
		if sq, ok := filters[id].(scratchQuerier); ok {
			scratchers[id] = sq
		}
		sidecars[id] = s.shards[id].sidecar
		pendings[id] = s.shards[id].pending
	}
	var buf [32]uint8
	for i, key := range keys {
		id := s.route(key)
		var ok bool
		switch {
		case scratchers[id] != nil:
			ok = scratchers[id].ContainsScratch(key, buf[:0])
		case filters[id] != nil:
			ok = filters[id].Contains(key)
		}
		if !ok && sidecars[id] != nil {
			ok = sidecars[id].Contains(key)
		}
		if !ok && pendings[id] != nil {
			_, ok = pendings[id][string(key)]
		}
		out[i] = ok
	}
	for id := 0; id < n; id++ {
		s.shards[id].mu.RUnlock()
	}
}

// Add inserts a key. It takes only the owning shard's lock; queries to
// other shards proceed untouched, and once the shard's post-build Adds
// exceed the rebuild threshold a background rebuild is kicked off. A
// static backend's filter cannot absorb the key directly; it is buffered
// as pending — queryable immediately, zero false negatives — until the
// rebuild swap folds it in.
func (s *Set) Add(key []byte) {
	sh := s.shards[s.route(key)]
	sh.addMu.Lock()
	defer sh.addMu.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.positives = append(sh.positives, key)
	sh.epoch.Add(1)
	if sh.f == nil {
		// First key(s) ever routed here: build inline over everything
		// accumulated so far (rare, tiny). If construction fails (it
		// cannot for HABF — params and costs were validated up front —
		// but a static backend can refuse, e.g. Xor on duplicates), the
		// key is buffered as pending so it still answers true, and the
		// next Add retries with the full list.
		if f, err := sh.build(sh.positives); err == nil {
			sh.f = f
			sh.baseline = len(sh.positives)
			sh.pending = nil
		} else {
			s.rebuildErrs.Add(1)
			sh.addPending(key)
		}
		return
	}
	if err := sh.f.Add(key); err != nil {
		// Static backend: serve the key from the pending buffer — unless
		// the filter already answers true for it (a re-Add of an existing
		// member, or a false-positive collision), where pending would add
		// only drift and rebuild churn. Either way the key is in
		// positives, so the next rebuild represents it directly and the
		// answer stays true forever. A restored shard that has already
		// absorbed into a sidecar sends the key straight there instead.
		if !sh.f.Contains(key) {
			if sh.restored && sh.sidecar != nil {
				sh.sidecar.Add(key)
			} else {
				sh.addPending(key)
			}
		}
	}
	if s.threshold > 0 && !sh.rebuilding && !sh.restored &&
		float64(sh.drift()) >= s.threshold*float64(sh.baseline) {
		sh.rebuilding = true
		s.rebuildWG.Add(1)
		go sh.rebuild()
	}
	// A restored static shard cannot drift-rebuild (no full key list in
	// memory), so its buffered Adds are bounded differently: once they
	// cross the absorb threshold, a background absorb folds everything
	// added since restore into a fresh mutable sidecar.
	if sh.restored && s.absorbEvery > 0 && !sh.absorbing &&
		(len(sh.pending) >= s.absorbEvery ||
			(sh.sidecar != nil && sh.sidecar.AddedKeys() >= uint64(s.absorbEvery))) {
		sh.absorbing = true
		s.rebuildWG.Add(1)
		go sh.absorbIntoSidecar()
	}
}

// absorbIntoSidecar bounds a restored static shard's buffered Adds:
// it builds a mutable sidecar over every key added since restore (the
// shard's in-memory positives, a superset of the pending map) and
// installs it in place of the pending map. The same discipline as the
// snapshot-time absorb applies — addMu freezes the key list while the
// sidecar builds outside every lock, then a brief write-locked swap —
// so readers are never blocked and zero false negatives hold
// throughout.
func (sh *shard) absorbIntoSidecar() {
	defer sh.set.rebuildWG.Done()
	sh.addMu.Lock()
	defer sh.addMu.Unlock()

	sh.mu.RLock()
	n0 := len(sh.positives)
	keys := sh.positives[:n0:n0]
	sh.mu.RUnlock()

	side, err := sh.set.buildSidecar(keys)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.absorbing = false
	if err != nil {
		sh.set.rebuildErrs.Add(1)
		return
	}
	sh.sidecar = side
	sh.pending = nil
	sh.epoch.Add(1)
	sh.set.absorbs.Add(1)
}

// buildSidecar builds the mutable overlay restored static shards absorb
// into: a standard Bloom filter at default tuning over keys, sized by
// the set's bits-per-key budget.
func (s *Set) buildSidecar(keys [][]byte) (filtercore.Backend, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("shard: empty sidecar key set")
	}
	side, err := filtercore.ByName("bloom")
	if err != nil {
		return nil, err
	}
	totalBits := uint64(s.bitsPerKey * float64(len(keys)))
	if totalBits < minShardBits {
		totalBits = minShardBits
	}
	return side.Build(keys, nil, filtercore.BuildConfig{TotalBits: totalBits})
}

// rebuild reconstructs the shard's filter over its full current key set —
// re-running the optimization that per-key Add cannot, and absorbing any
// pending keys a static backend buffered — and swaps it in. Construction
// happens outside the lock; only the final swap (plus a replay of keys
// added mid-rebuild) blocks the shard's readers.
func (sh *shard) rebuild() {
	defer sh.set.rebuildWG.Done()

	sh.mu.RLock()
	n0 := len(sh.positives)
	b0 := sh.builds
	// Three-index slice: appends by concurrent Adds reallocate instead of
	// writing into the snapshot's backing array.
	snap := sh.positives[:n0:n0]
	sh.mu.RUnlock()

	f, err := sh.build(snap)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.rebuilding = false
	if err != nil {
		sh.set.rebuildErrs.Add(1)
		return
	}
	if sh.builds != b0 {
		// A snapshot-time absorb swapped a filter built from a longer
		// prefix while we were building; ours is stale. Installing it
		// would demote already-absorbed keys back to pending (or, on a
		// mutable backend, to degraded per-key re-Adds) and could let a
		// concurrent Save frame miss acked keys.
		return
	}
	sh.swap(f, n0)
	sh.set.rebuilds.Add(1)
}

// swap installs a filter built over positives[:built], replaying the
// keys added since: a mutable backend absorbs them, a static one leaves
// them pending. Callers hold mu's write side.
func (sh *shard) swap(f filtercore.Backend, built int) {
	sh.pending = nil
	absorbed := built
	for _, key := range sh.positives[built:] { // added while we were building
		if f.Add(key) == nil {
			absorbed++
		} else {
			sh.addPending(key)
		}
	}
	sh.f = f
	sh.baseline = absorbed
	sh.builds++
	sh.epoch.Add(1)
}

// WaitRebuilds blocks until every background rebuild in flight at call
// time (and any they cascade into) has finished. Intended for tests and
// orderly shutdown.
func (s *Set) WaitRebuilds() { s.rebuildWG.Wait() }

// NumShards returns the shard count.
func (s *Set) NumShards() int { return len(s.shards) }

// Epoch returns the set's mutation epoch: the sum of every shard's
// per-shard epoch. Each Add, rebuild swap and sidecar absorb bumps its
// shard's counter, so the sum is monotone under serving traffic and two
// observations are equal only if no mutation landed between them —
// which is exactly the freshness signal replication needs. A restored
// set resumes at the epochs recorded in its snapshot frames (plus one
// bump per shard that re-buffered pending keys), so a follower compares
// epochs it fetched from the primary, never locally recomputed ones.
func (s *Set) Epoch() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.epoch.Load()
	}
	return total
}

// Backend returns the registry name of the backend every shard uses.
func (s *Set) Backend() string { return s.backend.Name }

// Tuning returns the effective knob set in canonical form — every knob
// of the backend's schema with its explicit or default value, sorted,
// "k=v,k=v". It is what snapshots persist and /v1/stats reports.
func (s *Set) Tuning() string { return s.tuningStr }

// Name identifies the filter in experiment output, e.g. "Sharded[8×HABF]".
func (s *Set) Name() string {
	return fmt.Sprintf("Sharded[%d×%s]", len(s.shards), s.backend.InnerName(s.baseParams))
}

// SizeBits returns the summed query-time footprint of every shard.
func (s *Set) SizeBits() uint64 {
	var total uint64
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sh.f != nil {
			total += sh.f.SizeBits()
		}
		if sh.sidecar != nil {
			total += sh.sidecar.SizeBits()
		}
		sh.mu.RUnlock()
	}
	return total
}

// Stats is a point-in-time summary across shards.
type Stats struct {
	Shards        int
	Keys          uint64 // total positive keys currently represented
	Added         uint64 // Adds not yet folded into a rebuild (incl. pending)
	Pending       uint64 // Adds a static backend buffered outside its filter
	Rebuilds      uint64 // background rebuilds completed
	RebuildErrors uint64
	// Absorbs counts sidecar absorbs on restored static shards: pending
	// maps folded into a mutable overlay once they crossed the backend's
	// "absorb" tuning knob.
	Absorbs  uint64
	SizeBits uint64
	// Restored counts shards serving a snapshot-restored filter. Those
	// shards do not auto-rebuild on drift (their pre-snapshot key list is
	// not in memory); rotate them with a full rebuild when Added grows.
	Restored int
}

// ShardInfo describes one shard at a point in time — the per-shard
// detail behind Stats, for operational surfaces (a serving daemon's
// stats endpoint) that want to see routing balance and drift per shard.
type ShardInfo struct {
	ID         int    `json:"id"`
	Keys       int    `json:"keys"`       // positive keys represented
	Added      uint64 `json:"added"`      // Adds not yet folded into a rebuild
	Pending    uint64 `json:"pending"`    // static-backend Adds served from the pending buffer
	Epoch      uint64 `json:"epoch"`      // mutation epoch (Adds + rebuild swaps)
	SizeBits   uint64 `json:"size_bits"`  // query-time footprint
	Restored   bool   `json:"restored"`   // serving a snapshot-restored filter
	Rebuilding bool   `json:"rebuilding"` // background rebuild in flight
	Sidecar    bool   `json:"sidecar"`    // restored shard absorbed pending into a sidecar
}

// ShardInfos samples every shard, one at a time (totals are approximate
// under concurrent writes, like Stats).
func (s *Set) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		info := ShardInfo{
			ID:         i,
			Keys:       len(sh.positives),
			Added:      sh.drift(),
			Pending:    uint64(len(sh.pending)),
			Epoch:      sh.epoch.Load(),
			Restored:   sh.restored,
			Rebuilding: sh.rebuilding,
			Sidecar:    sh.sidecar != nil,
		}
		if sh.f != nil {
			info.SizeBits = sh.f.SizeBits()
		}
		if sh.sidecar != nil {
			info.SizeBits += sh.sidecar.SizeBits()
		}
		sh.mu.RUnlock()
		out[i] = info
	}
	return out
}

// Stats snapshots the set. Shards are sampled one at a time, so totals
// are approximate under concurrent writes.
func (s *Set) Stats() Stats {
	st := Stats{
		Shards:        len(s.shards),
		Rebuilds:      s.rebuilds.Load(),
		RebuildErrors: s.rebuildErrs.Load(),
		Absorbs:       s.absorbs.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		st.Keys += uint64(len(sh.positives))
		st.Added += sh.drift()
		st.Pending += uint64(len(sh.pending))
		if sh.restored {
			st.Restored++
		}
		if sh.f != nil {
			st.SizeBits += sh.f.SizeBits()
		}
		if sh.sidecar != nil {
			st.SizeBits += sh.sidecar.SizeBits()
		}
		sh.mu.RUnlock()
	}
	return st
}
