package shard

import (
	"fmt"
	"testing"

	"repro/internal/filtercore"
)

// shardTunings is one representative non-default knob set per backend,
// exercised through the full build → snapshot → restore cycle.
var shardTunings = map[string]string{
	"habf":  "k=4,cellbits=5",
	"bloom": "strategy=seeded64,k=8",
	"xor":   "width=9",
	"wbf":   "cache=0.2,maxk=12",
	"phbf":  "groups=128,candidates=16",
	"lbf":   "epochs=3,seed=7",
	"slbf":  "split=0.25",
	"adabf": "groups=8",
}

// TestBackendTuningRoundTripsThroughSnapshot pins the durability
// contract of tuning knobs: a tuned set reports its canonical knob set,
// persists it in the snapshot's tuning frame, and a restore reports the
// identical string — while a default-tuned set writes no frame at all,
// keeping its containers byte-identical to pre-tuning ones.
func TestBackendTuningRoundTripsThroughSnapshot(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			input, ok := shardTunings[backend]
			if !ok {
				t.Fatalf("no shardTunings entry for backend %q — add one", backend)
			}
			f, err := filtercore.ByName(backend)
			if err != nil {
				t.Fatal(err)
			}
			canon, err := f.ParseTuning(input)
			if err != nil {
				t.Fatal(err)
			}
			want := canon.String()
			if want == f.DefaultTuning().String() {
				t.Fatalf("shardTunings[%q] = %q is the default — pick non-default knobs", backend, input)
			}

			s, pos, _ := newSet(t, 1200, Config{Shards: 2, Backend: backend, Tuning: input})
			if got := s.Tuning(); got != want {
				t.Fatalf("Tuning() = %q, want %q", got, want)
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Meta.Tuning != want {
				t.Fatalf("snapshot Meta.Tuning = %q, want %q", snap.Meta.Tuning, want)
			}
			g := snapshotRoundtrip(t, s)
			if got := g.Tuning(); got != want {
				t.Fatalf("restored Tuning() = %q, want %q", got, want)
			}
			for _, key := range pos {
				if !g.Contains(key) {
					t.Fatalf("tuned restored set lost %q", key)
				}
			}

			// Default tuning: reported in full, but never persisted.
			d, _, _ := newSet(t, 400, Config{Shards: 2, Backend: backend})
			if got := d.Tuning(); got != f.DefaultTuning().String() {
				t.Fatalf("default Tuning() = %q, want %q", got, f.DefaultTuning().String())
			}
			dsnap, err := d.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if dsnap.Meta.Tuning != "" {
				t.Fatalf("default-tuned set persisted tuning frame %q", dsnap.Meta.Tuning)
			}
		})
	}
}

// TestRestoreRejectsBadTuning: a snapshot whose tuning frame names an
// unknown knob, carries an out-of-bounds value, or is not in canonical
// form must fail Restore loudly — silently dropping knobs would make a
// restored filter differ from what its stats claim.
func TestRestoreRejectsBadTuning(t *testing.T) {
	requireBackend(t, "bloom")
	s, _, _ := newSet(t, 800, Config{Shards: 2, Backend: "bloom"})
	for _, tc := range []struct{ name, tuning string }{
		{"unknown knob", "bogus=1"},
		{"out of bounds", "k=999"},
		{"malformed", "k"},
		{"non-canonical subset", "strategy=split128"},
	} {
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snap.Meta.Tuning = tc.tuning
		if _, err := Restore(snap); err == nil {
			t.Errorf("%s: Restore accepted tuning %q", tc.name, tc.tuning)
		}
	}
}

// TestTuningRejectedAtBuild: New must reject bad knob sets before doing
// any work, with the backend named in the error.
func TestTuningRejectedAtBuild(t *testing.T) {
	requireBackend(t, "bloom")
	pos, neg, _ := fixture(100)
	for _, tuning := range []string{"bogus=1", "k=999", "strategy=md5", "k=8,k=8"} {
		if _, err := New(pos, neg, Config{TotalBits: 1200, Backend: "bloom", Tuning: tuning}); err == nil {
			t.Errorf("New accepted tuning %q", tuning)
		}
	}
}

// TestRestoredStaticBackendAbsorbsPendingIntoSidecar pins the absorb
// path that bounds a restored static shard's pending growth: once
// post-restore Adds pass the absorb knob's threshold, they are folded
// into a mutable bloom sidecar in the background (an absorb, not a
// rebuild), the pending buffer empties, and every acked key keeps
// answering — including across a further snapshot → restore cycle,
// which absorbs synchronously at load.
func TestRestoredStaticBackendAbsorbsPendingIntoSidecar(t *testing.T) {
	requireBackend(t, "xor")
	s, pos, _ := newSet(t, 800, Config{Shards: 2, Backend: "xor", Tuning: "absorb=64"})
	gen1 := snapshotRoundtrip(t, s)

	var fresh [][]byte
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("late-absorb-%06d", i))
		fresh = append(fresh, k)
		gen1.Add(k)
	}
	gen1.WaitRebuilds()
	st := gen1.Stats()
	if st.Absorbs == 0 {
		t.Fatalf("no absorbs after 300 adds at absorb=64: %+v", st)
	}
	if st.Rebuilds != 0 {
		t.Fatalf("restored static set ran %d drift rebuilds (absorbs must not count as rebuilds)", st.Rebuilds)
	}
	sidecars := 0
	for _, info := range gen1.ShardInfos() {
		if info.Sidecar {
			sidecars++
		}
	}
	if sidecars == 0 {
		t.Fatal("no shard reports a sidecar after absorbing")
	}
	for _, key := range append(append([][]byte{}, pos...), fresh...) {
		if !gen1.Contains(key) {
			t.Fatalf("false negative for %q after absorb", key)
		}
	}

	// The sidecar is never serialized; the snapshot re-buffers the full
	// positive set of sidecar shards, and the restore — seeing pending
	// past the threshold — absorbs synchronously before serving.
	gen2 := snapshotRoundtrip(t, gen1)
	st2 := gen2.Stats()
	if st2.Pending != 0 {
		t.Fatalf("restore left %d keys pending past the absorb threshold", st2.Pending)
	}
	if st2.Absorbs == 0 {
		t.Fatal("restore did not absorb the oversized pending buffer")
	}
	for _, key := range append(append([][]byte{}, pos...), fresh...) {
		if !gen2.Contains(key) {
			t.Fatalf("generation 2 lost %q", key)
		}
	}
}

// TestAbsorbDisabledKeepsPending: absorb=0 switches the sidecar off,
// restoring the pre-absorb behavior where pending grows unboundedly.
func TestAbsorbDisabledKeepsPending(t *testing.T) {
	requireBackend(t, "xor")
	s, _, _ := newSet(t, 600, Config{Shards: 2, Backend: "xor", Tuning: "absorb=0"})
	g := snapshotRoundtrip(t, s)
	// A fresh key that happens to be a false positive of the static
	// filter is served by the filter and never buffered, so the expected
	// pending count is the adds the filter did not already claim.
	want := 0
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("no-absorb-%06d", i))
		if !g.Contains(key) {
			want++
		}
		g.Add(key)
	}
	g.WaitRebuilds()
	st := g.Stats()
	if st.Absorbs != 0 {
		t.Fatalf("absorb=0 still absorbed %d times", st.Absorbs)
	}
	if want < 190 {
		t.Fatalf("only %d of 200 fresh keys missed the filter — FP rate implausibly high", want)
	}
	if st.Pending != uint64(want) {
		t.Fatalf("pending = %d, want %d with absorbs disabled", st.Pending, want)
	}
}
