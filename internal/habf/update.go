package habf

// Incremental insertion. HABF is optimized for a construction-time
// snapshot of S and O, but real deployments (memtable flushes, blacklist
// updates) need to absorb new members between rebuilds. Add inserts a key
// under the shared initial selection H0 — exactly how TPJO seeds every
// key before optimization — so the two-round query finds it in round one
// and the zero-false-negative contract is preserved.
//
// What Add cannot do is re-run the optimization: a new key's H0 bits may
// re-collide previously optimized negative keys, so the weighted FPR
// degrades gradually with the fraction of post-construction keys. Callers
// should rebuild once AddedKeys grows to a few percent of the original
// set, like any Bloom-filter deployment rotates filters.

// Add inserts a key into the filter under H0. It must not run
// concurrently with readers or other writers.
func (f *Filter) Add(key []byte) {
	ks := f.fam.prepare(key)
	m := f.bfBits.Len()
	for _, idx := range f.h0 {
		f.bfBits.Set(f.fam.pos(ks, idx, m))
	}
	f.added++
}

// AddedKeys reports how many keys were inserted after construction.
func (f *Filter) AddedKeys() uint64 { return f.added }
