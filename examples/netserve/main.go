// Network serving: HABF behind an HTTP API. The previous examples use
// the filter in-process; this one runs the full habfserved serving layer
// — endpoints, request coalescing, Prometheus metrics, crash-safe
// snapshots — against a live HTTP listener, the deployment shape a
// production filter service actually has.
//
// The example starts an in-process server on a loopback port, queries
// members and known negatives over HTTP (single-key JSON, raw
// octet-stream, and a batch request), streams new members in through
// /v1/add from several goroutines at once, checkpoints the filter
// through /v1/snapshot, and restores the snapshot with the public
// loader to prove the network round trip preserves the
// zero-false-negative contract.
//
// Counts printed are deterministic (fixed seeds, fixed workload);
// timings, ports and coalescer batch shapes depend on the machine and
// go to stderr.
//
//	go run ./examples/netserve
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	habf "repro"
	"repro/internal/dataset"
	"repro/internal/server"
)

const (
	nMembers = 20000 // initial positive set
	nOutside = 20000 // known negative keys, zipf-weighted
	nNewKeys = 1200  // members streamed in over /v1/add
	nWriters = 4     // concurrent add goroutines
	seed     = 17
)

func main() {
	data := dataset.YCSB(nMembers, nOutside, seed)
	costs := dataset.ZipfCosts(nOutside, 1.2, seed)
	negatives := make([]habf.WeightedKey, nOutside)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: costs[i]}
	}

	start := time.Now()
	filter, err := habf.NewSharded(data.Positives, negatives, uint64(10*nMembers), habf.WithShards(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "built %s in %v\n", filter.Name(), time.Since(start).Round(time.Millisecond))

	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("netserve-%d.snap", os.Getpid()))
	defer os.Remove(snapPath)
	srv, err := server.New(server.Config{Filter: filter, SnapshotPath: snapPath})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	defer hs.Close()
	base := "http://" + l.Addr().String()
	fmt.Fprintf(os.Stderr, "serving on %s\n", base)

	// Act 0: ask the server what it is serving. The reported backend and
	// filter name make every artifact produced against this server
	// self-describing (habfbench -net prints the same line).
	srvName, srvBackend := serverIdentity(base)
	fmt.Printf("server reports backend %q (%s)\n", srvBackend, srvName)

	// Act 1: single-key queries over HTTP, both body forms. Members must
	// always answer true; known negatives are counted as the observed
	// false-positive tally.
	falsePositives := 0
	for i := 0; i < 2000; i++ {
		if !containsJSON(base, data.Positives[i]) {
			log.Fatalf("false negative over HTTP: member %d", i)
		}
		if containsRaw(base, data.Negatives[i]) {
			falsePositives++
		}
	}
	fmt.Printf("queried 2000 members over HTTP: 0 false negatives\n")
	fmt.Printf("queried 2000 known negatives:   %d false positives\n", falsePositives)

	// Act 2: one batch request answers a whole mixed probe set at once.
	probes := make([][]byte, 0, 2000)
	probes = append(probes, data.Positives[2000:3000]...)
	probes = append(probes, data.Negatives[2000:3000]...)
	verdicts := containsBatch(base, probes)
	for i := 0; i < 1000; i++ {
		if !verdicts[i] {
			log.Fatalf("false negative in batch response: member %d", i)
		}
	}
	fmt.Printf("one /v1/contains_batch request, %d keys: 0 false negatives\n", len(probes))

	// Act 3: concurrent writers stream new members in over /v1/add; each
	// key must be queryable as soon as its request is acknowledged.
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nNewKeys; i += nWriters {
				key := fmt.Sprintf("netserve-new-%06d", i)
				add(base, []byte(key))
				if !containsRaw(base, []byte(key)) {
					log.Fatalf("acked add %q not queryable", key)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("added %d new members over HTTP from %d writers: all queryable on ack\n", nNewKeys, nWriters)

	// Act 4: checkpoint through the API, restore with the public loader,
	// and re-verify every member — original and streamed — offline.
	resp, err := http.Post(base+"/v1/snapshot", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("snapshot: HTTP %d", resp.StatusCode)
	}
	restored, err := habf.LoadFile(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	missed := 0
	for _, key := range data.Positives {
		if !restored.Contains(key) {
			missed++
		}
	}
	for i := 0; i < nNewKeys; i++ {
		if !restored.Contains([]byte(fmt.Sprintf("netserve-new-%06d", i))) {
			missed++
		}
	}
	fmt.Printf("snapshot → restore: %d members verified, %d false negatives\n", nMembers+nNewKeys, missed)

	st := srv.Coalescer().Stats()
	fmt.Fprintf(os.Stderr, "coalescer: %d keys in %d batches (mean %.1f)\n", st.Keys, st.Batches, st.MeanBatch())
}

func serverIdentity(base string) (name, backend string) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Name    string `json:"name"`
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st.Name, st.Backend
}

func containsJSON(base string, key []byte) bool {
	body, _ := json.Marshal(map[string]any{"key": key})
	resp, err := http.Post(base+"/v1/contains", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Present bool `json:"present"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out.Present
}

func containsRaw(base string, key []byte) bool {
	resp, err := http.Post(base+"/v1/contains", "application/octet-stream", bytes.NewReader(key))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b) == "1"
}

func containsBatch(base string, keys [][]byte) []bool {
	enc := make([]string, len(keys))
	for i, k := range keys {
		enc[i] = base64.StdEncoding.EncodeToString(k)
	}
	body, _ := json.Marshal(map[string]any{"keys": enc})
	resp, err := http.Post(base+"/v1/contains_batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Present []bool `json:"present"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out.Present
}

func add(base string, key []byte) {
	resp, err := http.Post(base+"/v1/add", "application/octet-stream", bytes.NewReader(key))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		log.Fatalf("add: HTTP %d", resp.StatusCode)
	}
}
