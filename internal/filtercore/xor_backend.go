package filtercore

import (
	"repro/internal/habf"
	"repro/internal/xorfilter"
)

// xorBackend adapts the Xor filter baseline to the Backend interface.
// It is static: the peeling construction cannot absorb inserts, so Add
// returns ErrStaticBackend and the shard layer buffers the key as
// pending until a rebuild absorbs it.
type xorBackend struct {
	f *xorfilter.Filter
}

var _ Backend = (*xorBackend)(nil)
var _ PreparedQuerier = (*xorBackend)(nil)

func (b *xorBackend) Contains(key []byte) bool       { return b.f.Contains(key) }
func (b *xorBackend) Add([]byte) error               { return ErrStaticBackend }
func (b *xorBackend) AddedKeys() uint64              { return 0 }
func (b *xorBackend) Name() string                   { return b.f.Name() }
func (b *xorBackend) SizeBits() uint64               { return b.f.SizeBits() }
func (b *xorBackend) Kind() Kind                     { return KindXor }
func (b *xorBackend) MarshalBinary() ([]byte, error) { return b.f.MarshalBinary() }
func (b *xorBackend) WireAlignOffset() int           { return xorfilter.WireAlignOffset }
func (b *xorBackend) Borrowed() bool                 { return b.f.Borrowed() }

func (b *xorBackend) ContainsBatch(keys [][]byte) []bool {
	return containsBatchSerial(b, keys)
}

// ContainsBatchInto implements PreparedQuerier: the per-attempt key hash
// derives from the shared base, so prepared batches skip the key bytes.
func (b *xorBackend) ContainsBatchInto(dst []bool, keys [][]byte, hashes []uint64) {
	if hashes == nil {
		containsBatchSerialInto(b, dst, keys)
		return
	}
	for i, h := range hashes[:len(keys)] {
		dst[i] = b.f.ContainsHash(h)
	}
}

// dedupe drops repeated keys, preserving first-seen order. Peeling fails
// permanently on duplicates, and the shard layer legitimately produces
// them (an Add of an existing member lands in the positives list again),
// so the backend dedupes rather than pushing the invariant upstream.
func dedupe(keys [][]byte) [][]byte {
	seen := make(map[string]struct{}, len(keys))
	out := keys[:0:0]
	for _, k := range keys {
		if _, dup := seen[string(k)]; dup {
			continue
		}
		seen[string(k)] = struct{}{}
		out = append(out, k)
	}
	return out
}

func init() {
	Register(Factory{
		Name:      "xor",
		Kind:      KindXor,
		Static:    true,
		InnerName: func(habf.Params) string { return "Xor" },
		TuningSchema: NewSchema(
			Knob{Name: "width", Type: KnobInt, Min: 0, Max: 32,
				Default: "0", Doc: "fingerprint width in bits; 0 derives ⌊b/(1.23+32/n)⌋ from the bits-per-key budget"},
			Knob{Name: "absorb", Type: KnobInt, Min: 0, Max: 1 << 20,
				Default: "4096", Doc: "pending keys on a restored shard that trigger a background absorb into a mutable sidecar; 0 disables"},
		),
		Build: func(positives [][]byte, _ []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			unique := dedupe(positives)
			var f *xorfilter.Filter
			var err error
			if width := cfg.Tuning.Int("width"); width > 0 {
				f, err = xorfilter.New(unique, uint(width))
			} else {
				bitsPerKey := float64(cfg.TotalBits) / float64(len(positives))
				f, err = xorfilter.NewWithBudget(unique, bitsPerKey)
			}
			if err != nil {
				return nil, err
			}
			return &xorBackend{f: f}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := xorfilter.UnmarshalFilter(data)
			if err != nil {
				return nil, err
			}
			return &xorBackend{f: f}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := xorfilter.UnmarshalFilterBorrow(data)
			if err != nil {
				return nil, err
			}
			return &xorBackend{f: f}, nil
		},
	})
}
