// Package lsm implements a miniature leveled log-structured merge tree —
// the motivating substrate of the paper's introduction, where Bloom-filter
// false positives translate into wasted disk reads whose cost differs per
// level (the LevelDB scenario cited in §I and §II "Cost-based").
//
// The tree is deliberately simple: an in-memory memtable, an L0 of
// recently flushed runs and exponentially larger single-run levels below,
// each run guarded by a pluggable membership filter. The "disk" is
// simulated: every run probe is counted against the level's read cost, so
// experiments can compare filter policies by total I/O cost rather than
// wall time.
package lsm

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/snapshot"
)

// Filter is the membership interface a run guard must satisfy.
type Filter interface {
	Contains(key []byte) bool
}

// FilterBuilder constructs a guard for a freshly written run at the given
// level. A nil builder (or nil return) leaves the run unguarded.
type FilterBuilder func(keys [][]byte, level int) Filter

// FilterCodec serializes run guards to and from filter blocks — the
// on-disk form real LSM engines store next to each SSTable. When a codec
// is configured, every guard built by NewFilter is round-tripped through
// its encoded block at build time, so the read path serves from exactly
// the bytes that would be persisted (a decoder with a zero-copy mode,
// like habf.UnmarshalHABFBorrow, serves straight from the block).
type FilterCodec struct {
	// Encode serializes a guard built by NewFilter. Returning an error
	// fails the flush/compaction loudly rather than silently dropping
	// filter protection.
	Encode func(f Filter) ([]byte, error)
	// Decode reconstructs a serving guard from an encoded block. The
	// block slice stays alive as long as the run does, so zero-copy
	// decoders may alias it.
	Decode func(block []byte) (Filter, error)
	// Align reports the offset within an encoded block that must land
	// 8-byte aligned for Decode to alias it instead of copying (e.g.
	// habf.WireAlignOffset of the block's k). Optional; when nil,
	// SaveFilterBlocks aligns block starts only, and zero-copy reloads
	// depend on the block's internal layout happening to line up.
	Align func(block []byte) int
}

// Config tunes the tree shape.
type Config struct {
	// MemtableSize is the number of entries buffered before a flush.
	// Default 1024.
	MemtableSize int
	// LevelRatio is the capacity growth factor per level. Default 4.
	LevelRatio int
	// MaxLevels bounds the tree depth. Default 6.
	MaxLevels int
	// MaxL0Runs triggers L0→L1 compaction. Default 4.
	MaxL0Runs int
	// ReadCost[i] is the simulated cost of one probe into a level-i run.
	// Defaults to 1, 2, 4, ... (doubling), mirroring deeper-is-dearer.
	ReadCost []float64
	// NewFilter guards freshly written runs. Optional.
	NewFilter FilterBuilder
	// Codec persists run guards as filter blocks (see FilterCodec).
	// Optional; requires NewFilter.
	Codec *FilterCodec
}

func (c Config) withDefaults() Config {
	if c.MemtableSize == 0 {
		c.MemtableSize = 1024
	}
	if c.LevelRatio == 0 {
		c.LevelRatio = 4
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 6
	}
	if c.MaxL0Runs == 0 {
		c.MaxL0Runs = 4
	}
	if len(c.ReadCost) == 0 {
		c.ReadCost = make([]float64, c.MaxLevels)
		cost := 1.0
		for i := range c.ReadCost {
			c.ReadCost[i] = cost
			cost *= 2
		}
	}
	return c
}

// Stats aggregates the simulated I/O activity.
type Stats struct {
	// Reads[i] counts run probes at level i.
	Reads []uint64
	// WastedReads[i] counts probes that found nothing (filter false
	// positives, or unguarded misses).
	WastedReads []uint64
	// FilterRejects[i] counts probes avoided by run guards.
	FilterRejects []uint64
	// CostIncurred is Σ reads × level cost.
	CostIncurred float64
	// WastedCost is the share of CostIncurred from wasted reads — the
	// quantity HABF minimizes when guards are cost-aware.
	WastedCost float64
	// FilterBlockBytes is the summed size of the encoded filter blocks
	// currently guarding runs (0 without a Codec) — the on-disk filter
	// footprint of the tree.
	FilterBlockBytes uint64
}

// run is one immutable sorted string table.
type run struct {
	keys   []string
	values [][]byte
	guard  Filter
	// filterBlock is the guard's encoded form when a Codec is configured;
	// guard is decoded from (and may alias) it.
	filterBlock []byte
	level       int
}

func (r *run) get(key string) ([]byte, bool) {
	i := sort.SearchStrings(r.keys, key)
	if i < len(r.keys) && r.keys[i] == key {
		return r.values[i], true
	}
	return nil, false
}

// Store is the tree. Not safe for concurrent use.
type Store struct {
	cfg    Config
	mem    map[string][]byte
	l0     []*run // newest first
	levels []*run // levels[i] is the single run of level i+1; may be nil
	stats  Stats
}

// New returns an empty store.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:    cfg,
		mem:    make(map[string][]byte, cfg.MemtableSize),
		levels: make([]*run, cfg.MaxLevels-1),
		stats: Stats{
			Reads:         make([]uint64, cfg.MaxLevels),
			WastedReads:   make([]uint64, cfg.MaxLevels),
			FilterRejects: make([]uint64, cfg.MaxLevels),
		},
	}
}

// Put inserts or overwrites a key.
func (s *Store) Put(key, value []byte) {
	s.mem[string(key)] = append([]byte(nil), value...)
	if len(s.mem) >= s.cfg.MemtableSize {
		s.Flush()
	}
}

// Flush writes the memtable to a new L0 run and compacts if needed.
func (s *Store) Flush() {
	if len(s.mem) == 0 {
		return
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r := &run{keys: keys, values: make([][]byte, len(keys))}
	for i, k := range keys {
		r.values[i] = s.mem[k]
	}
	r.guard = s.buildGuard(r, 0)
	s.mem = make(map[string][]byte, s.cfg.MemtableSize)
	s.l0 = append([]*run{r}, s.l0...)
	if len(s.l0) > s.cfg.MaxL0Runs {
		s.compact()
	}
}

func (s *Store) buildGuard(r *run, level int) Filter {
	r.level = level
	if s.cfg.NewFilter == nil {
		return nil
	}
	keys := make([][]byte, len(r.keys))
	for i, k := range r.keys {
		keys[i] = []byte(k)
	}
	g := s.cfg.NewFilter(keys, level)
	if g == nil || s.cfg.Codec == nil {
		return g
	}
	// Round-trip through the filter block so the serving guard is the
	// on-disk representation, not the freshly built in-memory one.
	block, err := s.cfg.Codec.Encode(g)
	if err != nil {
		panic(fmt.Sprintf("lsm: filter block encode at level %d: %v", level, err))
	}
	decoded, err := s.cfg.Codec.Decode(block)
	if err != nil {
		panic(fmt.Sprintf("lsm: filter block decode at level %d: %v", level, err))
	}
	r.filterBlock = block
	return decoded
}

// compact merges all of L0 into level 1, cascading down while a level
// exceeds its capacity memtableSize · ratio^level.
func (s *Store) compact() {
	merged := s.l0
	s.l0 = nil
	cur := mergeRuns(merged) // newest-first input keeps newest values
	for li := 0; li < len(s.levels); li++ {
		if s.levels[li] != nil {
			cur = mergeRuns([]*run{cur, s.levels[li]})
			s.levels[li] = nil
		}
		capacity := s.cfg.MemtableSize
		for i := 0; i <= li; i++ {
			capacity *= s.cfg.LevelRatio
		}
		if len(cur.keys) <= capacity || li == len(s.levels)-1 {
			cur.guard = s.buildGuard(cur, li+1)
			s.levels[li] = cur
			return
		}
	}
	// No levels configured below L0: keep as a single L0 run.
	cur.guard = s.buildGuard(cur, 0)
	s.l0 = []*run{cur}
}

// mergeRuns merges runs, earlier runs winning on duplicate keys.
func mergeRuns(runs []*run) *run {
	seen := map[string]int{} // key -> index of winning run
	var total int
	for _, r := range runs {
		total += len(r.keys)
	}
	keys := make([]string, 0, total)
	values := map[string][]byte{}
	for ri, r := range runs {
		for i, k := range r.keys {
			if w, ok := seen[k]; ok && w <= ri {
				continue
			}
			if _, ok := seen[k]; !ok {
				keys = append(keys, k)
			}
			seen[k] = ri
			values[k] = r.values[i]
		}
	}
	sort.Strings(keys)
	out := &run{keys: keys, values: make([][]byte, len(keys))}
	for i, k := range keys {
		out.values[i] = values[k]
	}
	return out
}

// probe consults one run, charging the simulated disk.
func (s *Store) probe(r *run, level int, key []byte) ([]byte, bool) {
	if r.guard != nil && !r.guard.Contains(key) {
		s.stats.FilterRejects[level]++
		return nil, false
	}
	s.stats.Reads[level]++
	cost := s.cfg.ReadCost[level]
	s.stats.CostIncurred += cost
	v, ok := r.get(string(key))
	if !ok {
		s.stats.WastedReads[level]++
		s.stats.WastedCost += cost
	}
	return v, ok
}

// Get looks a key up through memtable, L0 runs (newest first), then the
// deeper levels.
func (s *Store) Get(key []byte) ([]byte, bool) {
	if v, ok := s.mem[string(key)]; ok {
		return v, true
	}
	for _, r := range s.l0 {
		if v, ok := s.probe(r, 0, key); ok {
			return v, true
		}
	}
	for li, r := range s.levels {
		if r == nil {
			continue
		}
		if v, ok := s.probe(r, li+1, key); ok {
			return v, true
		}
	}
	return nil, false
}

// Stats returns a copy of the I/O counters.
func (s *Store) Stats() Stats {
	out := s.stats
	out.Reads = append([]uint64(nil), s.stats.Reads...)
	out.WastedReads = append([]uint64(nil), s.stats.WastedReads...)
	out.FilterRejects = append([]uint64(nil), s.stats.FilterRejects...)
	for _, r := range s.runs() {
		out.FilterBlockBytes += uint64(len(r.filterBlock))
	}
	return out
}

// ResetStats zeroes the I/O counters (e.g. after a warm-up phase).
func (s *Store) ResetStats() {
	for i := range s.stats.Reads {
		s.stats.Reads[i] = 0
		s.stats.WastedReads[i] = 0
		s.stats.FilterRejects[i] = 0
	}
	s.stats.CostIncurred = 0
	s.stats.WastedCost = 0
}

// Runs reports the number of runs per level (L0 first) for debugging and
// tests.
func (s *Store) Runs() []int {
	out := []int{len(s.l0)}
	for _, r := range s.levels {
		if r != nil {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// runs returns every live run in a stable scan order: L0 newest-first,
// then each deeper level.
func (s *Store) runs() []*run {
	out := append([]*run(nil), s.l0...)
	for _, r := range s.levels {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// SaveFilterBlocks persists every run's filter block into one snapshot
// container (see internal/snapshot): a checksummed frame per run in scan
// order, the frame epoch recording the run's level. Runs without a block
// (no Codec, or an unguarded run) get empty frames. This is the
// filter-block section of a checkpoint: on reopen with the same run
// topology, LoadFilterBlocks re-attaches every guard without rebuilding
// a single filter.
func (s *Store) SaveFilterBlocks(w io.Writer) error {
	runs := s.runs()
	if len(runs) == 0 {
		return fmt.Errorf("lsm: no runs to save filter blocks for")
	}
	snap := &snapshot.Snapshot{
		Meta:   snapshot.Meta{Kind: snapshot.KindFilterBlocks},
		Frames: make([]snapshot.Frame, len(runs)),
	}
	for i, r := range runs {
		fr := snapshot.Frame{
			Epoch:   uint64(r.level),
			Payload: r.filterBlock,
		}
		if len(fr.Payload) > 0 && s.cfg.Codec != nil && s.cfg.Codec.Align != nil {
			fr.Align = s.cfg.Codec.Align(fr.Payload)
		}
		snap.Frames[i] = fr
	}
	if _, err := snap.WriteTo(w); err != nil {
		return fmt.Errorf("lsm: save filter blocks: %w", err)
	}
	return nil
}

// LoadFilterBlocks re-attaches run guards from a container written by
// SaveFilterBlocks. The store's run topology must match the one saved
// (same run count and levels, e.g. a clean reopen of the same tree); the
// configured Codec decodes each block, and zero-copy decoders serve
// directly from data, which must then outlive the store.
func (s *Store) LoadFilterBlocks(data []byte) error {
	if s.cfg.Codec == nil {
		return fmt.Errorf("lsm: LoadFilterBlocks requires a Codec")
	}
	snap, err := snapshot.Unmarshal(data)
	if err != nil {
		return fmt.Errorf("lsm: load filter blocks: %w", err)
	}
	if snap.Meta.Kind != snapshot.KindFilterBlocks {
		return fmt.Errorf("lsm: container kind %d is not a filter-block checkpoint", snap.Meta.Kind)
	}
	runs := s.runs()
	if len(snap.Frames) != len(runs) {
		return fmt.Errorf("lsm: snapshot has %d filter blocks, store has %d runs", len(snap.Frames), len(runs))
	}
	// Decode and validate every frame before touching any run, so a
	// failure partway leaves the store exactly as it was — never a mix of
	// old guards and guards aliasing a buffer the caller will discard.
	guards := make([]Filter, len(runs))
	for i, fr := range snap.Frames {
		if uint64(runs[i].level) != fr.Epoch {
			return fmt.Errorf("lsm: filter block %d is for level %d, run is at level %d", i, fr.Epoch, runs[i].level)
		}
		if len(fr.Payload) == 0 {
			continue
		}
		g, err := s.cfg.Codec.Decode(fr.Payload)
		if err != nil {
			return fmt.Errorf("lsm: filter block %d: %w", i, err)
		}
		guards[i] = g
	}
	for i, fr := range snap.Frames {
		runs[i].guard = guards[i]
		if guards[i] != nil {
			runs[i].filterBlock = fr.Payload
		} else {
			runs[i].filterBlock = nil
		}
	}
	return nil
}

// LevelKeys returns the keys currently resident at the given level
// (0 = L0 across all runs). Filter policies use it to rebuild guards.
func (s *Store) LevelKeys(level int) [][]byte {
	var out [][]byte
	if level == 0 {
		for _, r := range s.l0 {
			for _, k := range r.keys {
				out = append(out, []byte(k))
			}
		}
		return out
	}
	if level-1 < len(s.levels) && s.levels[level-1] != nil {
		for _, k := range s.levels[level-1].keys {
			out = append(out, []byte(k))
		}
	}
	return out
}

// String summarizes the tree shape.
func (s *Store) String() string {
	return fmt.Sprintf("lsm{mem=%d, runs=%v}", len(s.mem), s.Runs())
}
