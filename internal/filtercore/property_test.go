package filtercore_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/filtercore"
	"repro/internal/habf"
)

// TestBackendProperties is the randomized cross-backend harness: where
// the conformance suite checks one deterministic fixture, this one
// draws random key sets, key lengths, cost distributions and bit
// budgets and asserts the properties that must hold for *every* input
// on *every* registered backend:
//
//   - zero false negatives over the full positive set
//   - Contains/ContainsBatch parity on a shuffled member/negative/novel
//     probe mix
//   - marshal → unmarshal(borrow) → re-marshal byte-identity (and the
//     same through the owning decoder), so wire formats are canonical
//     and snapshots of restored sets reproduce their source bytes
//   - the static-vs-mutable Add contract: Static factories refuse with
//     ErrStaticBackend and their wire bytes stay frozen; mutable ones
//     absorb, count and answer immediately
//
// The generator is seeded, so a failure reproduces; bump trials when
// hunting, keep it small for CI wall-clock.
func TestBackendProperties(t *testing.T) {
	const trials = 4
	rng := rand.New(rand.NewSource(0x5EEDC0DE))
	for trial := 0; trial < trials; trial++ {
		n := 400 + rng.Intn(2200)
		bitsPerKey := 8 + rng.Intn(9) // 8..16
		pos := make([][]byte, n)
		neg := make([]habf.WeightedKey, n)
		negKeys := make([][]byte, n)
		for i := 0; i < n; i++ {
			// Random lengths and random bytes; the index prefix keeps keys
			// unique without constraining the tail.
			pos[i] = randomKey(rng, fmt.Sprintf("p%05d-", i))
			negKeys[i] = randomKey(rng, fmt.Sprintf("n%05d-", i))
			neg[i] = habf.WeightedKey{Key: negKeys[i], Cost: 1 + rng.Float64()*float64(rng.Intn(50)+1)}
		}
		probes := make([][]byte, 0, 900)
		for i := 0; i < 300; i++ {
			probes = append(probes, pos[rng.Intn(n)], negKeys[rng.Intn(n)],
				randomKey(rng, fmt.Sprintf("x%05d-", i)))
		}
		rng.Shuffle(len(probes), func(a, b int) { probes[a], probes[b] = probes[b], probes[a] })

		for _, f := range backendsUnderTest(t) {
			f := f
			t.Run(fmt.Sprintf("trial%d/%s", trial, f.Name), func(t *testing.T) {
				b, err := f.Build(pos, neg, filtercore.BuildConfig{
					TotalBits: uint64(bitsPerKey * n),
					Params:    habf.Params{Seed: int64(trial + 1)},
				})
				if err != nil {
					t.Fatalf("build (n=%d, bpk=%d): %v", n, bitsPerKey, err)
				}

				for _, key := range pos {
					if !b.Contains(key) {
						t.Fatalf("false negative for %q (n=%d, bpk=%d)", key, n, bitsPerKey)
					}
				}

				batch := b.ContainsBatch(probes)
				for i, key := range probes {
					if want := b.Contains(key); batch[i] != want {
						t.Fatalf("probe %d (%q): batch=%v per-key=%v", i, key, batch[i], want)
					}
				}

				wire, err := b.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				for mode, unmarshal := range map[string]func([]byte) (filtercore.Backend, error){
					"owned":  f.Unmarshal,
					"borrow": f.UnmarshalBorrow,
				} {
					dec, err := unmarshal(wire)
					if err != nil {
						t.Fatalf("%s unmarshal: %v", mode, err)
					}
					again, err := dec.MarshalBinary()
					if err != nil {
						t.Fatalf("%s re-marshal: %v", mode, err)
					}
					if !bytes.Equal(again, wire) {
						t.Fatalf("%s: re-marshal is not byte-identical (%d vs %d bytes)",
							mode, len(again), len(wire))
					}
					for i, key := range probes {
						if dec.Contains(key) != batch[i] {
							t.Fatalf("%s: decoded filter disagrees on probe %d", mode, i)
						}
					}
				}

				fresh := randomKey(rng, "fresh-")
				err = b.Add(fresh)
				if f.Static {
					if err != filtercore.ErrStaticBackend {
						t.Fatalf("static Add returned %v", err)
					}
					// A refused Add must leave the structure untouched.
					after, err := b.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(after, wire) {
						t.Fatal("refused Add mutated a static backend's wire bytes")
					}
				} else {
					if err != nil {
						t.Fatalf("mutable Add: %v", err)
					}
					if !b.Contains(fresh) {
						t.Fatal("added key not queryable")
					}
					if b.AddedKeys() != 1 {
						t.Fatalf("AddedKeys = %d after one Add", b.AddedKeys())
					}
				}
			})
		}
	}
}

// randomKey draws a key of random length (prefix + 0..24 random bytes).
func randomKey(rng *rand.Rand, prefix string) []byte {
	tail := make([]byte, rng.Intn(25))
	rng.Read(tail)
	return append([]byte(prefix), tail...)
}
