package metrics_test

import (
	"fmt"
	"testing"

	"repro/internal/bloom"
	"repro/internal/metrics"
)

// TestSamplingContract pins the sampling contract of FPR/WeightedFPR
// against an exhaustive computation on a small, fully enumerable key
// universe. habfbench's -serve accuracy line feeds these estimators the
// known negative *sample* (the adversarial, cost-weighted keys the
// filter optimized against), so what exactly they compute — the rate
// over the supplied keys, nothing more — is a reporting contract worth
// freezing: any hidden extrapolation or reweighting would silently
// change every number in the README backend matrix.
func TestSamplingContract(t *testing.T) {
	// Universe: 2000 keys; members are the first 200. Every non-member
	// is enumerable, so "exhaustive FPR" is computable by brute force.
	const universe = 2000
	const members = 200
	keys := make([][]byte, universe)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("uni-%06d", i))
	}
	f, err := bloom.NewWithKeys(keys[:members], 8, bloom.StrategySplit128)
	if err != nil {
		t.Fatal(err)
	}

	nonMembers := keys[members:]
	falsePos := 0
	for _, key := range nonMembers {
		if f.Contains(key) {
			falsePos++
		}
	}
	exhaustive := float64(falsePos) / float64(len(nonMembers))
	if falsePos == 0 {
		t.Fatal("fixture produced no false positives; grow the universe or shrink bits/key")
	}

	// Reading 1: fed the whole non-member set, FPR is the exact rate.
	got, err := metrics.FPR(f, nonMembers)
	if err != nil {
		t.Fatal(err)
	}
	if got != exhaustive {
		t.Fatalf("FPR over the full universe = %v, exhaustive computation = %v", got, exhaustive)
	}

	// Reading 2: fed a sample, FPR is the exact rate *of that sample* —
	// no extrapolation toward the universe rate. A deterministic
	// every-third-key subsample keeps the test stable.
	var sample [][]byte
	for i := 0; i < len(nonMembers); i += 3 {
		sample = append(sample, nonMembers[i])
	}
	sampleFP := 0
	for _, key := range sample {
		if f.Contains(key) {
			sampleFP++
		}
	}
	got, err = metrics.FPR(f, sample)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(sampleFP) / float64(len(sample)); got != want {
		t.Fatalf("FPR over sample = %v, hand count = %v", got, want)
	}

	// Reading 3: WeightedFPR is Eq. 20 over exactly the supplied pairs —
	// cost mass of false positives over total cost mass.
	costs := make([]float64, len(sample))
	var fpCost, totalCost float64
	for i, key := range sample {
		costs[i] = float64(i%7 + 1)
		totalCost += costs[i]
		if f.Contains(key) {
			fpCost += costs[i]
		}
	}
	got, err = metrics.WeightedFPR(f, sample, costs)
	if err != nil {
		t.Fatal(err)
	}
	if want := fpCost / totalCost; got != want {
		t.Fatalf("WeightedFPR = %v, hand computation = %v", got, want)
	}

	// Uniform costs collapse the weighted rate to the plain one, exactly.
	uniform := make([]float64, len(sample))
	for i := range uniform {
		uniform[i] = 1
	}
	wgot, err := metrics.WeightedFPR(f, sample, uniform)
	if err != nil {
		t.Fatal(err)
	}
	pgot, err := metrics.FPR(f, sample)
	if err != nil {
		t.Fatal(err)
	}
	if wgot != pgot {
		t.Fatalf("uniform-cost WeightedFPR %v != FPR %v", wgot, pgot)
	}

	// A costs/negatives length mismatch is an error, never a silent
	// truncation that would misalign every cost with its key.
	if _, err := metrics.WeightedFPR(f, sample, costs[:len(costs)-1]); err == nil {
		t.Fatal("WeightedFPR accepted a costs/negatives length mismatch")
	}
}
