package habf

import (
	"fmt"
	"strings"
	"testing"
)

func TestFamilySlowMatchesCorpus(t *testing.T) {
	fam := testFamily(3, false)
	if fam.fast {
		t.Fatal("slow family marked fast")
	}
	if fam.size != 7 {
		t.Fatalf("slow family size %d, want 7 at cell size 4", fam.size)
	}
	key := []byte("family-key")
	ks := fam.prepare(key)
	for idx := 0; idx < fam.size; idx++ {
		want := fam.fns[idx](key) % 1000
		if got := fam.pos(ks, uint8(idx), 1000); got != want {
			t.Fatalf("slow pos(%d) = %d, want corpus value %d", idx, got, want)
		}
	}
}

func TestFamilyFastPositionsDiverse(t *testing.T) {
	fam := testFamily(3, true)
	if !fam.fast {
		t.Fatal("fast family not marked fast")
	}
	key := []byte("fast-family-key")
	ks := fam.prepare(key)
	const mod = 1 << 20
	seen := map[uint64]bool{}
	for idx := 0; idx < fam.size; idx++ {
		seen[fam.pos(ks, uint8(idx), mod)] = true
	}
	if len(seen) < fam.size-1 {
		t.Fatalf("fast positions collide heavily: %d distinct of %d", len(seen), fam.size)
	}
}

func TestFamilyEntryIndependentOfMembers(t *testing.T) {
	for _, fast := range []bool{false, true} {
		fam := testFamily(3, fast)
		key := []byte("entry-key")
		ks := fam.prepare(key)
		const mod = 1 << 16
		entry := fam.entry(ks, mod)
		if entry != fam.entry(ks, mod) {
			t.Fatal("entry not deterministic")
		}
		// The entry must not coincide with every member position (it is a
		// separate hash f; a single coincidence is fine).
		same := 0
		for idx := 0; idx < fam.size; idx++ {
			if fam.pos(ks, uint8(idx), mod) == entry {
				same++
			}
		}
		if same == fam.size {
			t.Fatalf("fast=%v: entry equals every member position", fast)
		}
	}
}

func TestFamilySeedChangesFastPositions(t *testing.T) {
	a := newFamily(Params{TotalBits: 1 << 16, K: 3, Fast: true, Seed: 1}.withDefaults())
	b := newFamily(Params{TotalBits: 1 << 16, K: 3, Fast: true, Seed: 2}.withDefaults())
	key := []byte("seeded")
	ka, kb := a.prepare(key), b.prepare(key)
	if a.pos(ka, 0, 1<<20) == b.pos(kb, 0, 1<<20) &&
		a.pos(ka, 1, 1<<20) == b.pos(kb, 1, 1<<20) &&
		a.pos(ka, 2, 1<<20) == b.pos(kb, 2, 1<<20) {
		t.Fatal("different seeds produced identical fast positions")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{
		CollisionKeys: 10, Optimized: 9, Failed: 1, Requeued: 2,
		AdjustedPositives: 8, HashExpressorInserts: 8,
		FPRBefore: 0.05, FPRAfter: 0.001,
		WeightedFPRBefore: 0.06, WeightedFPRAfter: 0.002,
	}
	out := s.String()
	for _, want := range []string{
		"collisions=10", "optimized=9", "failed=1", "requeued=2",
		"adjusted=8", "inserts=8", "5.0000%", "0.1000%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() = %q missing %q", out, want)
		}
	}
}

func TestPrepareIsCheapForSlowFamily(t *testing.T) {
	// Slow-mode prepare must not hash (it only wraps the key); verify by
	// checking the state carries the key through.
	fam := testFamily(3, false)
	key := []byte(fmt.Sprintf("wrap-%d", 42))
	ks := fam.prepare(key)
	if string(ks.key) != string(key) {
		t.Fatal("prepare lost the key")
	}
	if ks.h1 != 0 || ks.h2 != 0 {
		t.Fatal("slow prepare computed base hashes")
	}
}
