package phbf

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/bloom"
)

func genKeys(n int, tag string) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s/%d", tag, i))
	}
	return out
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, Config{TotalBits: 1024}); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := New(genKeys(10, "k"), Config{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	keys := genKeys(10000, "member")
	f, err := New(keys, Config{TotalBits: 10000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFewerOnesThanRandomSeeds(t *testing.T) {
	// The whole point of partitioned hashing: the greedy seed choice sets
	// fewer bits than a single fixed seed, which lowers FPR.
	keys := genKeys(20000, "member")
	greedy, err := New(keys, Config{TotalBits: 20000 * 8, Candidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := New(keys, Config{TotalBits: 20000 * 8, Candidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.FillRatio() >= blind.FillRatio() {
		t.Errorf("greedy fill %.4f not below single-candidate fill %.4f",
			greedy.FillRatio(), blind.FillRatio())
	}
}

func TestBeatsOrMatchesBloomFPR(t *testing.T) {
	keys := genKeys(20000, "member")
	f, err := New(keys, Config{TotalBits: 20000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := bloom.NewWithKeys(keys, 10, bloom.StrategySplit128)
	if err != nil {
		t.Fatal(err)
	}
	fp, fpBF := 0, 0
	const probes = 50000
	for i := 0; i < probes; i++ {
		q := []byte(fmt.Sprintf("out/%d", i))
		if f.Contains(q) {
			fp++
		}
		if bf.Contains(q) {
			fpBF++
		}
	}
	// PHBF should be at least competitive (allow 30% slack for noise).
	if float64(fp) > float64(fpBF)*1.3+5 {
		t.Errorf("PHBF FPs %d vs Bloom %d; partitioned hashing should not lose", fp, fpBF)
	}
	t.Logf("PHBF FPR %.5f vs BF %.5f", float64(fp)/probes, float64(fpBF)/probes)
}

func TestAccessors(t *testing.T) {
	f, err := New(genKeys(1000, "k"), Config{TotalBits: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "PHBF" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.SizeBits() <= 10000 {
		t.Error("SizeBits must include seed metadata")
	}
	if f.K() < 1 {
		t.Error("K < 1")
	}
}

func TestDeterministic(t *testing.T) {
	keys := genKeys(2000, "d")
	a, _ := New(keys, Config{TotalBits: 2000 * 10})
	b, _ := New(keys, Config{TotalBits: 2000 * 10})
	for i := 0; i < 3000; i++ {
		q := []byte(fmt.Sprintf("probe/%d", i))
		if a.Contains(q) != b.Contains(q) {
			t.Fatal("construction not deterministic")
		}
	}
}

func TestQuickZeroFNR(t *testing.T) {
	f := func(raw [][]byte) bool {
		if len(raw) == 0 {
			return true
		}
		fl, err := New(raw, Config{TotalBits: 1 << 14})
		if err != nil {
			return false
		}
		for _, k := range raw {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkContains(b *testing.B) {
	keys := genKeys(50000, "b")
	f, err := New(keys, Config{TotalBits: 50000 * 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains(keys[i%len(keys)])
	}
}
