// Package benchfmt defines the machine-readable benchmark result format
// shared by the habfbench load generator (which writes it) and the
// benchgate CI tool (which compares a fresh run against a committed
// baseline). The format is deliberately tiny: a flat list of named
// results with ns/op and latency percentiles, plus enough environment
// metadata to judge whether two files are comparable at all.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema is bumped when the file layout changes incompatibly.
const Schema = 1

// Result is one measured scenario.
type Result struct {
	// Name identifies the scenario, e.g. "net/contains/coalesced".
	// Names are the join key for baseline comparison, so they must stay
	// stable across runs and must not embed machine-dependent values.
	Name string `json:"name"`
	// Clients is the number of concurrent load-generator clients.
	Clients int `json:"clients,omitempty"`
	// Ops is the number of operations measured.
	Ops int64 `json:"ops"`
	// NsPerOp is wall time per operation across all clients — the
	// throughput-side number the regression gate compares.
	NsPerOp float64 `json:"ns_per_op"`
	// QPS is operations per wall-clock second (redundant with NsPerOp,
	// kept for human readers).
	QPS float64 `json:"qps"`
	// Latency percentiles over per-request round-trip times, in
	// nanoseconds. Zero when the scenario has no per-request latency
	// (e.g. in-process loops).
	P50Ns float64 `json:"p50_ns,omitempty"`
	P95Ns float64 `json:"p95_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// File is a benchmark result document.
type File struct {
	Schema    int      `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// Write marshals f to path, indented for reviewable diffs.
func Write(path string, f File) error {
	f.Schema = Schema
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Read unmarshals path.
func Read(path string) (File, error) {
	var f File
	b, err := os.ReadFile(path)
	if err != nil {
		return f, fmt.Errorf("benchfmt: %w", err)
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return f, fmt.Errorf("benchfmt: %s: schema %d, want %d", path, f.Schema, Schema)
	}
	return f, nil
}

// Regression is one gate finding.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	// Ratio is CurrentNs / BaselineNs; 0 when the scenario is missing
	// from the current run.
	Ratio   float64
	Missing bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: present in baseline but missing from current run", r.Name)
	}
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx)",
		r.Name, r.CurrentNs, r.BaselineNs, r.Ratio)
}

// Compare checks every baseline scenario against the current run and
// returns the ones that regressed beyond tolerance (current > tolerance
// × baseline) or disappeared. Scenarios only present in the current run
// are ignored — new benchmarks are not regressions. Tolerance is a
// ratio, e.g. 2.5 fails only on a >2.5× slowdown; generous on purpose,
// because CI runners are noisy and the gate exists to catch structural
// regressions, not scheduler jitter.
func Compare(baseline, current File, tolerance float64) []Regression {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	var out []Regression
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			out = append(out, Regression{Name: b.Name, BaselineNs: b.NsPerOp, Missing: true})
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > tolerance*b.NsPerOp {
			out = append(out, Regression{
				Name:       b.Name,
				BaselineNs: b.NsPerOp,
				CurrentNs:  c.NsPerOp,
				Ratio:      c.NsPerOp / b.NsPerOp,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Percentile returns the p-th percentile (0..100) of samples, which it
// sorts in place. Zero samples yield 0.
func Percentile(samples []int64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(p / 100 * float64(len(samples)-1))
	return float64(samples[idx])
}
