// Package snapshot defines the on-disk container that persists a sharded
// filter: a versioned, checksummed envelope around the per-filter wire
// format of internal/habf, so a serving layer can checkpoint its read
// path and restore it after a restart without paying reconstruction.
//
// Layout (all integers little-endian):
//
//	header (64 bytes):
//	  magic u32 "HSNP" | version u8 | flags u8 | k u8 | cellBits u8 |
//	  baseSeed u64 | routeSeed u64 | spaceRatio f64 | bitsPerKey f64 |
//	  threshold f64 | kind u8 | backend u8 | reserved u8×2 | shardCount u32 |
//	  reserved u32 | headerCRC u32 (CRC32C of the 60 bytes above)
//
// The backend byte names the filter family whose wire format fills the
// frames (a filtercore.Kind). It was a zeroed reserved byte before
// backends existed, and 0 is the HABF kind, so every pre-backend
// container keeps loading unchanged; a loader that does not recognize
// the byte must refuse to decode the frames rather than misparse them.
//
//	frames (shardCount, in shard order):
//	  epoch u64 | payloadLen u64 | frameCRC u32 (CRC32C) | padLen u32 |
//	  padLen zero bytes | payload
//
// In version 2 (current) frameCRC covers the whole frame except the CRC
// field itself: epoch, payloadLen, padLen, the pad bytes and the
// payload, in file order. Version 1 checksummed only the payload, which
// left the epoch and pad bytes as the container's one integrity blind
// spot — a bit flip there decoded cleanly. Version-1 containers are
// still accepted (with the payload-only coverage they were written
// under) so existing checkpoints keep loading.
//
//	tuning frame (optional, only when the flagTuning header bit is
//	set): one more frame in the same envelope whose payload is the
//	backend's canonical tuning string ("k=v,k=v", sorted knob names) in
//	UTF-8 — the knob set the filters were built with. It is written only
//	when the tuning differs from the backend's defaults, so default-tuned
//	containers stay byte-identical to pre-tuning files; a restore parses
//	it against the backend's schema and fails loudly on unknown knobs,
//	out-of-bounds values or a non-canonical rendering.
//	pending-keys frame (optional, only when the flagPendingKeys header
//	bit is set): one more frame — after the tuning frame if both are
//	present — whose payload is
//	  count u64 | count × (keyLen u32 | key bytes)
//	— keys no shard filter represents (Adds a restored static backend
//	buffered as pending), re-buffered at restore so acked Adds survive
//	save/restore cycles. Files without the flag are byte-identical to
//	pre-flag containers.
//	footer:
//	  offset table: frameCount × u64 (file offset of each frame header,
//	  pending frame included) | indexOff u64 | footerCRC u32 (CRC32C of
//	  table + indexOff) | tail magic u32 "PNSH"
//
// The per-frame pad exists for zero-copy loads: the writer shifts each
// payload so the word arrays inside it land 8-byte aligned in the file
// (Frame.Align names the payload offset that must align), letting the
// decoder alias the mapped buffer instead of copying it. The footer makes
// the container seekable from the tail — a reader can locate every frame
// with three fixed-size reads — and doubles as a truncation check: a file
// cut anywhere loses the tail magic.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Version is the current container format version. Version 2 widened
	// the frame CRC to cover the frame header and pad bytes (version 1
	// checksummed only the payload); version-1 containers still load.
	Version = 2

	// versionPayloadCRC is the last version whose frame CRC covered only
	// the payload bytes.
	versionPayloadCRC = 1

	magic     = uint32(0x504e5348) // "HSNP" little-endian
	tailMagic = uint32(0x48534e50) // "PNSH" little-endian

	headerSize   = 64
	frameHdrSize = 24
	footerSize   = 16 // indexOff + footerCRC + tail magic
)

// Kind discriminates what a container holds, so a file of one kind fed
// to another kind's loader fails loudly at decode instead of producing
// a structure that routes wrong (e.g. an LSM filter-block container
// restored as a sharded set would answer false negatives).
const (
	// KindShardedSet is a sharded filter checkpoint (one frame per shard).
	KindShardedSet uint8 = 1
	// KindFilterBlocks is an LSM filter-block checkpoint (one frame per run).
	KindFilterBlocks uint8 = 2
)

// Meta flags (header byte 5).
const (
	flagFast = 1 << iota
	flagDisableGamma
	flagDisableOverlapRanking
	flagDisableCostOrdering
	// flagPendingKeys marks a container carrying one extra frame after
	// the shard frames: a serialized key list the shard filters do not
	// represent (Adds a restored static backend buffered as pending).
	// Containers without the flag are byte-identical to pre-flag files.
	flagPendingKeys
	// flagTuning marks a container carrying a tuning frame between the
	// shard frames and the pending-keys frame: the backend's canonical
	// non-default knob string. Default-tuned containers never set it.
	flagTuning
)

// maxTuningLen bounds the tuning frame's payload; canonical knob
// strings are tens of bytes, so anything larger is hostile input.
const maxTuningLen = 4096

// castagnoli is the CRC32C polynomial table, the checksum of choice for
// storage formats (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta carries the set-level configuration a restore needs beyond the
// per-shard filter payloads: how keys route to shards and how shards that
// were empty at save time should build their first filter.
type Meta struct {
	Kind uint8 // container content type (Kind* constants)
	// Backend is the filtercore.Kind of the filter family framed inside
	// (0 = HABF, matching the zeroed reserved byte of pre-backend files).
	Backend               uint8
	BaseSeed              int64  // params seed the per-shard seeds derive from
	RouteSeed             uint64 // seed of the shard-routing fingerprint
	K                     int    // per-key hash budget of the shard template
	CellBits              uint   // HashExpressor cell width of the template
	Fast                  bool   // f-HABF shards
	DisableGamma          bool   // ablation switches of the template
	DisableOverlapRanking bool
	DisableCostOrdering   bool
	SpaceRatio            float64 // Δ split of the template
	BitsPerKey            float64 // budget for shards built after restore
	Threshold             float64 // rebuild threshold (negative = disabled)
	// HasPending declares that a pending-keys frame follows the shard
	// frames (the flagPendingKeys header bit). A streaming Writer must
	// know it before the header goes out; Snapshot.WriteTo derives it
	// from len(Pending) automatically.
	HasPending bool
	// Tuning is the backend's canonical knob string ("k=v,k=v", sorted
	// names). Empty means "all defaults" and writes no tuning frame, so
	// default-tuned containers are byte-identical to pre-tuning files;
	// non-empty sets the flagTuning header bit and rides its own
	// checksummed frame between the shard and pending frames.
	Tuning string
}

// Frame is one shard's checkpoint: the filter's MarshalBinary payload
// (empty for a shard that had no filter) and the shard's mutation epoch
// at marshal time.
type Frame struct {
	Epoch   uint64
	Payload []byte
	// Align is the offset within Payload that the writer places 8-byte
	// aligned in the container (habf.WireAlignOffset of the filter's k).
	// It is not stored; decoded frames leave it zero.
	Align int
}

// Snapshot is a decoded (or to-be-written) container.
type Snapshot struct {
	Meta   Meta
	Frames []Frame
	// Pending holds keys no shard frame represents — Adds a restored
	// static-backend set buffered after its filters were frozen. A
	// restore re-buffers them (still answered with zero false negatives)
	// so acked Adds survive arbitrarily many save/restore cycles and the
	// next full rebuild absorbs them. Empty for most containers; when
	// present it rides an extra frame flagged in the header.
	Pending [][]byte
}

// Writer streams a container one frame at a time, so a multi-GB
// snapshot never has to be materialized in memory: the caller marshals
// one shard, hands the frame over, and releases it before the next.
// Usage: NewWriter (writes the header), shardCount × WriteFrame, Close
// (writes the footer).
type Writer struct {
	w           io.Writer
	written     int64
	want        int
	offsets     []uint64
	closed      bool
	wantTuning  bool // header promised a tuning frame
	wroteTuning bool
	wantPending bool // header promised a pending-keys frame
	wrotePend   bool
}

// NewWriter writes the container header and returns a Writer expecting
// exactly shardCount frames.
func NewWriter(w io.Writer, meta Meta, shardCount int) (*Writer, error) {
	if shardCount == 0 {
		return nil, errors.New("snapshot: no frames")
	}
	if meta.Kind != KindShardedSet && meta.Kind != KindFilterBlocks {
		return nil, fmt.Errorf("snapshot: unknown container kind %d", meta.Kind)
	}
	if len(meta.Tuning) > maxTuningLen {
		return nil, fmt.Errorf("snapshot: tuning string %d bytes long (max %d)", len(meta.Tuning), maxTuningLen)
	}
	sw := &Writer{w: w, want: shardCount, wantPending: meta.HasPending,
		wantTuning: meta.Tuning != "",
		offsets:    make([]uint64, 0, shardCount)}

	var head [headerSize]byte
	binary.LittleEndian.PutUint32(head[0:4], magic)
	head[4] = Version
	var flags byte
	if meta.Fast {
		flags |= flagFast
	}
	if meta.DisableGamma {
		flags |= flagDisableGamma
	}
	if meta.DisableOverlapRanking {
		flags |= flagDisableOverlapRanking
	}
	if meta.DisableCostOrdering {
		flags |= flagDisableCostOrdering
	}
	if meta.HasPending {
		flags |= flagPendingKeys
	}
	if meta.Tuning != "" {
		flags |= flagTuning
	}
	head[5] = flags
	head[6] = uint8(meta.K)
	head[7] = uint8(meta.CellBits)
	binary.LittleEndian.PutUint64(head[8:16], uint64(meta.BaseSeed))
	binary.LittleEndian.PutUint64(head[16:24], meta.RouteSeed)
	putFloat(head[24:32], meta.SpaceRatio)
	putFloat(head[32:40], meta.BitsPerKey)
	putFloat(head[40:48], meta.Threshold)
	head[48] = meta.Kind
	head[49] = meta.Backend
	// head[50:52] and head[56:60] reserved, zero, CRC-covered.
	binary.LittleEndian.PutUint32(head[52:56], uint32(shardCount))
	binary.LittleEndian.PutUint32(head[60:64], crc32.Checksum(head[:60], castagnoli))
	if err := sw.emit(head[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *Writer) emit(b []byte) error {
	n, err := sw.w.Write(b)
	sw.written += int64(n)
	return err
}

// WriteFrame appends one shard's frame. The payload is not retained.
func (sw *Writer) WriteFrame(fr Frame) error {
	if len(sw.offsets) >= sw.want {
		return fmt.Errorf("snapshot: more than %d frames written", sw.want)
	}
	return sw.writeFrame(fr)
}

// WriteTuning appends the tuning frame after the shard frames. It must
// be called exactly once, and only when the header promised it
// (Meta.Tuning non-empty), so the flag bit and the footer table stay in
// agreement. The string must match what NewWriter saw.
func (sw *Writer) WriteTuning(tuning string) error {
	if !sw.wantTuning {
		return errors.New("snapshot: tuning frame not declared in header")
	}
	if sw.wroteTuning {
		return errors.New("snapshot: tuning frame already written")
	}
	if tuning == "" || len(tuning) > maxTuningLen {
		return fmt.Errorf("snapshot: tuning frame payload %d bytes (want 1..%d)", len(tuning), maxTuningLen)
	}
	if len(sw.offsets) != sw.want {
		return fmt.Errorf("snapshot: tuning frame before all %d shard frames", sw.want)
	}
	sw.wroteTuning = true
	return sw.writeFrame(Frame{Payload: []byte(tuning)})
}

// WritePending appends the pending-keys frame after the shard frames
// (and the tuning frame, when the header promised one). It must be
// called exactly once, and only when the header promised it
// (Meta.HasPending), so the flag bit and the footer table stay in
// agreement.
func (sw *Writer) WritePending(keys [][]byte) error {
	if !sw.wantPending {
		return errors.New("snapshot: pending frame not declared in header")
	}
	if sw.wrotePend {
		return errors.New("snapshot: pending frame already written")
	}
	want := sw.want
	if sw.wantTuning {
		if !sw.wroteTuning {
			return errors.New("snapshot: pending frame before the tuning frame")
		}
		want++
	}
	if len(sw.offsets) != want {
		return fmt.Errorf("snapshot: pending frame before all %d shard frames", sw.want)
	}
	sw.wrotePend = true
	return sw.writeFrame(Frame{Payload: encodePendingKeys(keys)})
}

func (sw *Writer) writeFrame(fr Frame) error {
	sw.offsets = append(sw.offsets, uint64(sw.written))
	// Place the frame so Payload[Align] lands on an 8-byte boundary.
	payloadOff := sw.written + frameHdrSize
	padLen := int((8 - (payloadOff+int64(fr.Align))%8) % 8)
	var hdr [frameHdrSize]byte
	var pad [8]byte
	binary.LittleEndian.PutUint64(hdr[0:8], fr.Epoch)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(fr.Payload)))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(padLen))
	// Version-2 frame CRC: everything in the frame except the CRC field
	// itself, in file order, so no frame byte is an integrity blind spot.
	crc := crc32.Update(0, castagnoli, hdr[0:16])
	crc = crc32.Update(crc, castagnoli, hdr[20:24])
	crc = crc32.Update(crc, castagnoli, pad[:padLen])
	crc = crc32.Update(crc, castagnoli, fr.Payload)
	binary.LittleEndian.PutUint32(hdr[16:20], crc)
	if err := sw.emit(hdr[:]); err != nil {
		return err
	}
	if err := sw.emit(pad[:padLen]); err != nil {
		return err
	}
	return sw.emit(fr.Payload)
}

// Close writes the footer (offset table, CRC, tail magic). It fails if
// fewer frames were written than NewWriter promised.
func (sw *Writer) Close() error {
	if sw.closed {
		return errors.New("snapshot: writer already closed")
	}
	wantFrames := sw.want
	if sw.wantTuning {
		wantFrames++
		if !sw.wroteTuning {
			return errors.New("snapshot: header promised a tuning frame that was never written")
		}
	}
	if sw.wantPending {
		wantFrames++
		if !sw.wrotePend {
			return errors.New("snapshot: header promised a pending frame that was never written")
		}
	}
	if len(sw.offsets) != wantFrames {
		return fmt.Errorf("snapshot: wrote %d of %d frames", len(sw.offsets), wantFrames)
	}
	sw.closed = true
	indexOff := uint64(sw.written)
	table := make([]byte, len(sw.offsets)*8+8)
	for i, off := range sw.offsets {
		binary.LittleEndian.PutUint64(table[i*8:], off)
	}
	binary.LittleEndian.PutUint64(table[len(sw.offsets)*8:], indexOff)
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:4], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(tail[4:8], tailMagic)
	if err := sw.emit(table); err != nil {
		return err
	}
	return sw.emit(tail[:])
}

// Written returns the bytes written so far.
func (sw *Writer) Written() int64 { return sw.written }

// WriteTo writes the container. It implements io.WriterTo. Prefer the
// streaming Writer when frames are produced one at a time; WriteTo is
// the convenience form for an already-materialized Snapshot and emits
// identical bytes.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	meta := s.Meta
	meta.HasPending = len(s.Pending) > 0
	sw, err := NewWriter(w, meta, len(s.Frames))
	if err != nil {
		return 0, err
	}
	for _, fr := range s.Frames {
		if err := sw.WriteFrame(fr); err != nil {
			return sw.Written(), err
		}
	}
	if meta.Tuning != "" {
		if err := sw.WriteTuning(meta.Tuning); err != nil {
			return sw.Written(), err
		}
	}
	if meta.HasPending {
		if err := sw.WritePending(s.Pending); err != nil {
			return sw.Written(), err
		}
	}
	if err := sw.Close(); err != nil {
		return sw.Written(), err
	}
	return sw.Written(), nil
}

// MarshalBinary encodes the container into one byte slice.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a container. Frame payloads alias data (zero-copy):
// the caller must keep data alive and unmodified while any structure
// decoded from the frames is in use. Every length is validated against
// len(data) before use and every checksum is verified, so hostile input
// is rejected with an error — never a panic or an unbounded allocation.
func Unmarshal(data []byte) (*Snapshot, error) {
	if len(data) < headerSize+footerSize {
		return nil, errors.New("snapshot: truncated container")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != magic {
		return nil, errors.New("snapshot: bad magic")
	}
	version := data[4]
	if version == 0 || version > Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d", version)
	}
	if got, want := crc32.Checksum(data[:60], castagnoli), binary.LittleEndian.Uint32(data[60:64]); got != want {
		return nil, fmt.Errorf("snapshot: header CRC mismatch (%08x != %08x)", got, want)
	}
	kind := data[48]
	if kind != KindShardedSet && kind != KindFilterBlocks {
		return nil, fmt.Errorf("snapshot: unknown container kind %d", kind)
	}
	flags := data[5]
	s := &Snapshot{Meta: Meta{
		Kind:                  kind,
		Backend:               data[49],
		K:                     int(data[6]),
		CellBits:              uint(data[7]),
		Fast:                  flags&flagFast != 0,
		DisableGamma:          flags&flagDisableGamma != 0,
		DisableOverlapRanking: flags&flagDisableOverlapRanking != 0,
		DisableCostOrdering:   flags&flagDisableCostOrdering != 0,
		BaseSeed:              int64(binary.LittleEndian.Uint64(data[8:16])),
		RouteSeed:             binary.LittleEndian.Uint64(data[16:24]),
		SpaceRatio:            getFloat(data[24:32]),
		BitsPerKey:            getFloat(data[32:40]),
		Threshold:             getFloat(data[40:48]),
		HasPending:            flags&flagPendingKeys != 0,
	}}

	shardCount := binary.LittleEndian.Uint32(data[52:56])
	// Each frame costs at least a header and each table entry 8 bytes, so
	// the byte length bounds the plausible shard count — reject before
	// allocating the frames slice.
	if shardCount == 0 || uint64(shardCount) > uint64(len(data))/frameHdrSize {
		return nil, fmt.Errorf("snapshot: implausible shard count %d for %d bytes", shardCount, len(data))
	}
	// The tuning and pending-keys flags each add one frame (and one
	// table entry) beyond the shard frames; everything below walks
	// frameCount, while shardCount keeps meaning what the restore layer
	// checks (power-of-two shard topology).
	hasTuning := flags&flagTuning != 0
	frameCount := uint64(shardCount)
	if hasTuning {
		frameCount++
	}
	if s.Meta.HasPending {
		frameCount++
	}
	if frameCount > uint64(len(data))/frameHdrSize {
		return nil, fmt.Errorf("snapshot: implausible frame count %d for %d bytes", frameCount, len(data))
	}

	if binary.LittleEndian.Uint32(data[len(data)-4:]) != tailMagic {
		return nil, errors.New("snapshot: missing tail magic (truncated?)")
	}
	indexOff64 := binary.LittleEndian.Uint64(data[len(data)-16 : len(data)-8])
	tableLen := frameCount*8 + 8
	if indexOff64 < headerSize || indexOff64 > uint64(len(data)-footerSize) ||
		uint64(len(data)-footerSize)-indexOff64+8 != tableLen {
		return nil, errors.New("snapshot: footer offset table out of bounds")
	}
	indexOff := int(indexOff64)
	table := data[indexOff : len(data)-8]
	if got, want := crc32.Checksum(table, castagnoli), binary.LittleEndian.Uint32(data[len(data)-8:len(data)-4]); got != want {
		return nil, fmt.Errorf("snapshot: footer CRC mismatch (%08x != %08x)", got, want)
	}

	s.Frames = make([]Frame, frameCount)
	prevEnd := uint64(headerSize)
	for i := range s.Frames {
		off := binary.LittleEndian.Uint64(table[i*8:])
		if off != prevEnd {
			return nil, fmt.Errorf("snapshot: frame %d offset %d does not follow previous frame (want %d)", i, off, prevEnd)
		}
		if off+frameHdrSize > indexOff64 {
			return nil, fmt.Errorf("snapshot: frame %d header out of bounds", i)
		}
		hdr := data[off : off+frameHdrSize]
		epoch := binary.LittleEndian.Uint64(hdr[0:8])
		payloadLen := binary.LittleEndian.Uint64(hdr[8:16])
		wantCRC := binary.LittleEndian.Uint32(hdr[16:20])
		padLen := binary.LittleEndian.Uint32(hdr[20:24])
		if padLen >= 8 {
			return nil, fmt.Errorf("snapshot: frame %d pad %d out of range", i, padLen)
		}
		start := off + frameHdrSize + uint64(padLen)
		if start > indexOff64 || payloadLen > indexOff64-start {
			return nil, fmt.Errorf("snapshot: frame %d payload out of bounds", i)
		}
		payload := data[start : start+payloadLen]
		var got uint32
		if version <= versionPayloadCRC {
			got = crc32.Checksum(payload, castagnoli)
		} else {
			got = crc32.Update(0, castagnoli, hdr[0:16])
			got = crc32.Update(got, castagnoli, hdr[20:24])
			got = crc32.Update(got, castagnoli, data[off+frameHdrSize:start])
			got = crc32.Update(got, castagnoli, payload)
		}
		if got != wantCRC {
			return nil, fmt.Errorf("snapshot: frame %d CRC mismatch (%08x != %08x)", i, got, wantCRC)
		}
		s.Frames[i] = Frame{Epoch: epoch, Payload: payload}
		prevEnd = start + payloadLen
	}
	if prevEnd != indexOff64 {
		return nil, errors.New("snapshot: trailing bytes between frames and footer")
	}
	extra := uint64(shardCount)
	if hasTuning {
		payload := s.Frames[extra].Payload
		// An empty payload with the flag set can never come from a Writer
		// (Meta.Tuning == "" writes no frame), so it is corruption.
		if len(payload) == 0 || len(payload) > maxTuningLen {
			return nil, fmt.Errorf("snapshot: tuning frame payload %d bytes (want 1..%d)", len(payload), maxTuningLen)
		}
		s.Meta.Tuning = string(payload)
		extra++
	}
	if s.Meta.HasPending {
		pending, err := decodePendingKeys(s.Frames[extra].Payload)
		if err != nil {
			return nil, err
		}
		s.Pending = pending
	}
	s.Frames = s.Frames[:shardCount]
	return s, nil
}

// encodePendingKeys renders the pending-keys frame payload:
//
//	count u64 | count × (keyLen u32 | key bytes)
func encodePendingKeys(keys [][]byte) []byte {
	size := 8
	for _, k := range keys {
		size += 4 + len(k)
	}
	out := make([]byte, 8, size)
	binary.LittleEndian.PutUint64(out, uint64(len(keys)))
	var hdr [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(k)))
		out = append(out, hdr[:]...)
		out = append(out, k...)
	}
	return out
}

// decodePendingKeys parses a pending-keys payload. Returned keys alias
// data, like frame payloads. Every length is validated against the
// payload before any allocation it sizes.
func decodePendingKeys(data []byte) ([][]byte, error) {
	if len(data) < 8 {
		return nil, errors.New("snapshot: truncated pending-keys frame")
	}
	count := binary.LittleEndian.Uint64(data[0:8])
	// Each key costs at least its 4-byte length prefix.
	if count > uint64(len(data)-8)/4 {
		return nil, fmt.Errorf("snapshot: implausible pending-key count %d for %d bytes", count, len(data))
	}
	keys := make([][]byte, 0, count)
	pos := 8
	for i := uint64(0); i < count; i++ {
		if len(data)-pos < 4 {
			return nil, fmt.Errorf("snapshot: truncated pending key %d", i)
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if n > len(data)-pos {
			return nil, fmt.Errorf("snapshot: pending key %d length %d out of bounds", i, n)
		}
		keys = append(keys, data[pos:pos+n])
		pos += n
	}
	if pos != len(data) {
		return nil, errors.New("snapshot: trailing bytes after pending keys")
	}
	return keys, nil
}

func putFloat(b []byte, f float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(f))
}

func getFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
