// Package costsketch provides the cost-monitoring substrate the paper
// assumes around HABF: §I notes that "some cost information can be or is
// already being monitored", citing distributed top-k monitoring (Babcock
// & Olston) and frequent-item tracking (Cormode & Muthukrishnan). This
// package implements the two standard tools those lines refer to —
//
//   - CountMin: a count-min sketch estimating per-key traffic volume
//     (never underestimates, overestimates by at most εN w.h.p.);
//   - SpaceSaving: the Metwally et al. top-k heavy-hitter summary, which
//     yields the bounded-size "costly negative keys" list HABF consumes.
//
// Together they turn a raw miss/query stream into the []WeightedKey input
// of habf.New without storing the stream.
package costsketch

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/hashes"
)

// CountMin is a count-min sketch over byte-string keys.
type CountMin struct {
	width uint64
	depth int
	rows  [][]uint64
	total uint64
}

// NewCountMin returns a sketch with the given width (counters per row)
// and depth (independent rows). Error bounds: estimates exceed true
// counts by at most (e/width)·N with probability 1 - e^-depth.
func NewCountMin(width uint64, depth int) (*CountMin, error) {
	if width == 0 || depth <= 0 {
		return nil, fmt.Errorf("costsketch: invalid dimensions %d×%d", width, depth)
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{width: width, depth: depth, rows: rows}, nil
}

func (c *CountMin) pos(key []byte, row int) uint64 {
	return hashes.XXH64Seed(key, uint64(row)*0x9e3779b97f4a7c15+1) % c.width
}

// Add records count occurrences of key.
func (c *CountMin) Add(key []byte, count uint64) {
	for r := 0; r < c.depth; r++ {
		c.rows[r][c.pos(key, r)] += count
	}
	c.total += count
}

// Estimate returns the (never underestimating) count estimate for key.
func (c *CountMin) Estimate(key []byte) uint64 {
	min := ^uint64(0)
	for r := 0; r < c.depth; r++ {
		if v := c.rows[r][c.pos(key, r)]; v < min {
			min = v
		}
	}
	return min
}

// Total returns the stream length seen so far.
func (c *CountMin) Total() uint64 { return c.total }

// SizeBytes returns the counter-array footprint.
func (c *CountMin) SizeBytes() uint64 { return c.width * uint64(c.depth) * 8 }

// SpaceSaving is the Metwally–Agrawal–El Abbadi heavy-hitter summary: at
// most capacity counters, every key with true frequency above N/capacity
// guaranteed present, estimates overshooting by at most the minimum
// counter.
type SpaceSaving struct {
	capacity int
	entries  map[string]*ssEntry
	h        ssHeap
	total    uint64
}

type ssEntry struct {
	key   string
	count uint64
	err   uint64 // overestimation bound inherited at replacement
	index int    // heap position
}

// NewSpaceSaving returns a summary tracking at most capacity keys.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("costsketch: capacity %d", capacity)
	}
	return &SpaceSaving{
		capacity: capacity,
		entries:  make(map[string]*ssEntry, capacity),
	}, nil
}

// Add records count occurrences of key.
func (s *SpaceSaving) Add(key []byte, count uint64) {
	s.total += count
	if e, ok := s.entries[string(key)]; ok {
		e.count += count
		heap.Fix(&s.h, e.index)
		return
	}
	if len(s.entries) < s.capacity {
		e := &ssEntry{key: string(key), count: count}
		s.entries[e.key] = e
		heap.Push(&s.h, e)
		return
	}
	// Replace the minimum counter: the classic space-saving step.
	min := s.h[0]
	delete(s.entries, min.key)
	e := &ssEntry{key: string(key), count: min.count + count, err: min.count}
	s.entries[e.key] = e
	s.h[0] = e
	e.index = 0
	heap.Fix(&s.h, 0)
}

// Item is one reported heavy hitter.
type Item struct {
	Key   []byte
	Count uint64 // estimate, Count-Err ≤ true ≤ Count
	Err   uint64
}

// Top returns up to n heavy hitters, highest estimate first.
func (s *SpaceSaving) Top(n int) []Item {
	items := make([]Item, 0, len(s.entries))
	for _, e := range s.entries {
		items = append(items, Item{Key: []byte(e.key), Count: e.count, Err: e.err})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return string(items[i].Key) < string(items[j].Key)
	})
	if n < len(items) {
		items = items[:n]
	}
	return items
}

// Total returns the stream length seen so far.
func (s *SpaceSaving) Total() uint64 { return s.total }

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// ssHeap is a min-heap over counts.
type ssHeap []*ssEntry

func (h ssHeap) Len() int            { return len(h) }
func (h ssHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *ssHeap) Push(x interface{}) { e := x.(*ssEntry); e.index = len(*h); *h = append(*h, e) }
func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
