package habf

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/fuzzcorpus"
)

// fuzzFilterSeeds builds the hostile wire-format inputs FuzzUnmarshalFilter
// starts from. The same set is committed as a seed corpus under
// testdata/fuzz/FuzzUnmarshalFilter (see TestFilterSeedCorpus), so the
// 10-second CI fuzz smoke starts from real decoder edge cases instead of
// an empty corpus.
func fuzzFilterSeeds(tb testing.TB) map[string][]byte {
	pos := genKeys(200, "fz")
	neg := genNegatives(200, "fn", uniformCost)
	built, err := New(pos, neg, Params{TotalBits: 1 << 13})
	if err != nil {
		tb.Fatal(err)
	}
	good, err := built.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	seeds := map[string][]byte{
		"valid-filter": good,
		"empty":        {},
		"magic-only":   []byte("HABF"),
		"half":         good[:len(good)/2],
		// Truncated just inside a block: length prefix intact, payload cut.
		"trunc-1":  good[:len(good)-1],
		"trunc-30": good[:30],
	}
	// Hostile block length: 2^64-1 in the first block's length prefix —
	// the int(uint64) narrowing regression (would wrap on 32-bit hosts).
	k := int(good[6])
	hugeBlock := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(hugeBlock[17+k:], ^uint64(0))
	seeds["huge-block-len"] = hugeBlock
	// Hostile bitset length: payload sized for 0 bits but header claiming
	// 2^64-1, which used to wrap (n+63)/64 and panic the first Test.
	hugeBits := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(hugeBits[17+k+8+4:], ^uint64(0))
	seeds["huge-bitset-len"] = hugeBits
	// Corrupted payload byte mid-bloom (no inner CRC: may decode to a
	// different but still well-formed filter; must not panic).
	bitrot := append([]byte(nil), good...)
	bitrot[len(bitrot)/2] ^= 0x10
	seeds["bitrot"] = bitrot
	return seeds
}

// FuzzUnmarshalFilter hardens the wire format: arbitrary bytes must never
// panic, and every accepted payload must re-marshal to an equivalent
// filter.
func FuzzUnmarshalFilter(f *testing.F) {
	seeds := fuzzFilterSeeds(f)
	for _, name := range fuzzcorpus.Names(seeds) {
		f.Add(seeds[name])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, decode := range []func([]byte) (*Filter, error){UnmarshalFilter, UnmarshalFilterBorrow} {
			if g, err := decode(data); err == nil {
				g.Contains([]byte("probe"))
				g.Contains(nil)
			}
		}
		g, err := UnmarshalFilter(data)
		if err != nil {
			return // rejected, fine
		}
		// Accepted payloads must be internally consistent: queries don't
		// panic and a re-marshal is accepted again.
		g.Contains([]byte("probe"))
		g.Contains(nil)
		out, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted filter failed to marshal: %v", err)
		}
		h, err := UnmarshalFilter(out)
		if err != nil {
			t.Fatalf("re-marshaled filter rejected: %v", err)
		}
		if h.Contains([]byte("probe")) != g.Contains([]byte("probe")) {
			t.Fatal("re-marshaled filter disagrees")
		}
	})
}

// FuzzContains hammers the two-round query with arbitrary keys: no panics,
// and determinism per key.
func FuzzContains(f *testing.F) {
	pos := genKeys(500, "fz")
	neg := genNegatives(500, "fn", func(i int) float64 { return float64(i + 1) })
	filter, err := New(pos, neg, Params{TotalBits: 1 << 14})
	if err != nil {
		f.Fatal(err)
	}
	fast, err := NewFast(pos, neg, Params{TotalBits: 1 << 14})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("fz/0"))
	f.Add([]byte(""))
	f.Add([]byte{0xff, 0x00, 0x41})

	f.Fuzz(func(t *testing.T, key []byte) {
		a, b := filter.Contains(key), filter.Contains(key)
		if a != b {
			t.Fatal("HABF Contains not deterministic")
		}
		if fast.Contains(key) != fast.Contains(key) {
			t.Fatal("f-HABF Contains not deterministic")
		}
		// Members must always pass, whatever the fuzzer feeds around them.
		if bytes.HasPrefix(key, []byte("fz/")) {
			for _, k := range pos[:3] {
				if !filter.Contains(k) {
					t.Fatal("member lost")
				}
			}
		}
	})
}
