// KV store: the LSM-tree scenario from the paper's introduction (LevelDB /
// RocksDB). Every run of the tree carries a membership filter; a false
// positive costs one wasted disk read, and reads get more expensive the
// deeper the level. "The frequently failed queries with heavy I/O
// overhead can be cached" (§I): miss traffic is Zipf-skewed toward hot
// keys, observable in production, and that is exactly the negative-key
// knowledge HABF consumes.
//
// The example loads a store, replays a Zipf-skewed miss workload under
// three guard policies — none, plain Bloom, and f-HABF built from the
// hottest observed misses weighted by (frequency × level cost) — and
// compares the wasted simulated I/O cost.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	habf "repro"
	"repro/internal/dataset"
	"repro/internal/lsm"
)

const (
	nResident = 20000 // keys stored in the tree
	nMisses   = 20000 // distinct keys of the miss workload
	nLookups  = 60000 // total miss lookups (Zipf-sampled)

	// streamSeed drives the miss-lookup sampler. Every random source in
	// this example is explicitly seeded so output is reproducible run to
	// run — never use the global math/rand source here.
	streamSeed = 3
)

func main() {
	data := dataset.YCSB(nResident, nMisses, 7)
	resident, misses := data.Positives, data.Negatives
	freq := dataset.ZipfCosts(nMisses, 1.1, 7) // hot misses repeat

	// Sample the lookup stream by frequency, deterministically.
	var total float64
	cum := make([]float64, nMisses)
	for i, f := range freq {
		total += f
		cum[i] = total
	}
	rng := rand.New(rand.NewSource(streamSeed))
	stream := make([]int, nLookups)
	for i := range stream {
		idx := sort.SearchFloat64s(cum, rng.Float64()*total)
		if idx >= nMisses {
			idx = nMisses - 1
		}
		stream[i] = idx
	}

	// Hottest-first order for guard construction (the §I "cache the
	// frequently failed queries" policy).
	order := make([]int, nMisses)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return freq[order[a]] > freq[order[b]] })

	bloomGuard := func(keys [][]byte, level int) lsm.Filter {
		f, err := habf.NewBloom(keys, 10, habf.BloomSplit128)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	habfGuard := func(keys [][]byte, level int) lsm.Filter {
		levelCost := float64(uint64(1) << level)
		limit := 2 * len(keys)
		if limit > nMisses {
			limit = nMisses
		}
		negatives := make([]habf.WeightedKey, 0, limit)
		for _, idx := range order[:limit] {
			negatives = append(negatives, habf.WeightedKey{
				Key:  misses[idx],
				Cost: freq[idx] * levelCost,
			})
		}
		f, err := habf.NewFast(keys, negatives, uint64(10*len(keys)))
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	fmt.Printf("kvstore: %d resident keys, %d distinct misses, %d zipf(1.1) miss lookups\n\n",
		nResident, nMisses, nLookups)

	type result struct {
		name  string
		stats lsm.Stats
	}
	var results []result
	for _, c := range []struct {
		name  string
		guard lsm.FilterBuilder
	}{
		{"no filter", nil},
		{"Bloom guards", bloomGuard},
		{"HABF guards (knows hot misses)", habfGuard},
	} {
		s := lsm.New(lsm.Config{MemtableSize: 2048, NewFilter: c.guard})
		for i, k := range resident {
			s.Put(k, []byte(fmt.Sprintf("value-%d", i)))
		}
		s.Flush()
		s.ResetStats()
		for i, idx := range stream {
			s.Get(misses[idx])
			if i%4 == 0 {
				s.Get(resident[i%len(resident)]) // interleave real hits
			}
		}
		results = append(results, result{c.name, s.Stats()})
	}

	fmt.Printf("%-32s %12s %12s %14s\n", "configuration", "disk reads", "wasted", "wasted cost")
	for _, r := range results {
		var reads, wasted uint64
		for i := range r.stats.Reads {
			reads += r.stats.Reads[i]
			wasted += r.stats.WastedReads[i]
		}
		fmt.Printf("%-32s %12d %12d %14.0f\n", r.name, reads, wasted, r.stats.WastedCost)
	}

	base := results[1].stats.WastedCost
	opt := results[2].stats.WastedCost
	if base > 0 && opt > 0 {
		fmt.Printf("\nHABF guards cut wasted I/O cost by %.1fx over plain Bloom guards.\n", base/opt)
	}
}
