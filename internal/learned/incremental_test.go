package learned

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
)

func incrWorkload() (build, extra, neg [][]byte) {
	p := dataset.Shalla(8000, 4000, 3)
	return p.Positives[:4000], p.Positives[4000:], p.Negatives
}

func TestIncrementalValidation(t *testing.T) {
	pos, _, neg := incrWorkload()
	if _, err := NewIncremental(IndexAdaptive, nil, neg, IncrementalConfig{BackupBits: 4096}); err == nil {
		t.Error("empty positives accepted")
	}
	if _, err := NewIncremental(IndexAdaptive, pos[:10], neg, IncrementalConfig{}); err == nil {
		t.Error("zero backup budget accepted")
	}
}

func TestIncrementalZeroFNRAcrossInserts(t *testing.T) {
	for _, mode := range []IncrementalMode{ClassifierAdaptive, IndexAdaptive} {
		t.Run(mode.String(), func(t *testing.T) {
			build, extra, neg := incrWorkload()
			l, err := NewIncremental(mode, build, neg, IncrementalConfig{
				BackupBits:   uint64(len(build)) * 4,
				RetrainEvery: 1500,
				Train:        TrainConfig{Epochs: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Initial members present.
			for _, k := range build {
				if !l.Contains(k) {
					t.Fatalf("initial member %q lost", k)
				}
			}
			// Insert incrementally and verify continuously (including
			// across CA-LBF retrains at 1500 and 3000 inserts).
			for i, k := range extra {
				l.Insert(k)
				if !l.Contains(k) {
					t.Fatalf("inserted key %q not visible immediately", k)
				}
				if i%500 == 0 {
					for _, old := range build[:100] {
						if !l.Contains(old) {
							t.Fatalf("old member %q lost after %d inserts", old, i+1)
						}
					}
				}
			}
			// Everything still present at the end.
			for _, k := range append(append([][]byte{}, build...), extra...) {
				if !l.Contains(k) {
					t.Fatalf("%s: member %q lost at end", mode, k)
				}
			}
		})
	}
}

func TestCALBFRetrains(t *testing.T) {
	build, extra, neg := incrWorkload()
	l, err := NewIncremental(ClassifierAdaptive, build, neg, IncrementalConfig{
		BackupBits:   uint64(len(build)) * 4,
		RetrainEvery: 100,
		Train:        TrainConfig{Epochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range extra[:250] {
		l.Insert(k)
	}
	// After 250 inserts at a 100-insert cadence, the counter must have
	// wrapped at least twice.
	if l.SinceLastRetrain() >= 100 {
		t.Errorf("retrain cadence not honored: %d since last", l.SinceLastRetrain())
	}
}

func TestIALBFMemoryGrows(t *testing.T) {
	build, extra, neg := incrWorkload()
	l, err := NewIncremental(IndexAdaptive, build, neg, IncrementalConfig{
		BackupBits: 4096, // deliberately tiny so growth must trigger
		Train:      TrainConfig{Epochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := l.SizeBits()
	for _, k := range extra {
		l.Insert(k)
	}
	if l.SizeBits() <= before {
		t.Errorf("IA-LBF did not grow: %d -> %d bits with %d backup keys",
			before, l.SizeBits(), l.BackupKeys())
	}
}

func TestIncrementalFPRStaysUseful(t *testing.T) {
	build, extra, neg := incrWorkload()
	for _, mode := range []IncrementalMode{ClassifierAdaptive, IndexAdaptive} {
		l, err := NewIncremental(mode, build, neg[:2000], IncrementalConfig{
			BackupBits:   uint64(len(build)) * 6,
			RetrainEvery: 2000,
			Train:        TrainConfig{Epochs: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range extra {
			l.Insert(k)
		}
		// Held-out negatives (not used in training).
		fp := 0
		hold := neg[2000:]
		for _, k := range hold {
			if l.Contains(k) {
				fp++
			}
		}
		rate := float64(fp) / float64(len(hold))
		if rate > 0.25 {
			t.Errorf("%s: FPR %.3f after inserts; filter degenerated", mode, rate)
		}
		t.Logf("%s: holdout FPR %.4f, size %d bits, backup %d keys",
			mode, rate, l.SizeBits(), l.BackupKeys())
	}
}

func TestIncrementalNamesAndModes(t *testing.T) {
	if ClassifierAdaptive.String() != "CA-LBF" || IndexAdaptive.String() != "IA-LBF" {
		t.Fatal("mode names wrong")
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	build, _, neg := incrWorkload()
	l, err := NewIncremental(IndexAdaptive, build, neg, IncrementalConfig{
		BackupBits: uint64(len(build)) * 8,
		Train:      TrainConfig{Epochs: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert([]byte(fmt.Sprintf("bench-insert/%d", i)))
	}
}
