// Package bloom implements the standard Bloom filter baseline of the paper
// in its three evaluated flavours (§V-H, Fig. 14):
//
//   - StrategyCorpus: k distinct hash functions drawn from the global
//     corpus of Table II — the paper's plain "BF";
//   - StrategySeeded64: one strong 64-bit hash re-seeded k times — the
//     paper's "BF(City64)";
//   - StrategySplit128: one 128-bit hash split into two lanes combined by
//     double hashing — the paper's "BF(XXH128)".
//
// The filter is insert-then-query: Add during construction, Contains at
// query time. It is not safe for concurrent mutation.
package bloom

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/hashes"
)

// Strategy selects how the k bit positions of a key are derived.
type Strategy int

const (
	// StrategyCorpus uses k distinct functions from the Table II corpus.
	StrategyCorpus Strategy = iota
	// StrategySeeded64 derives k values from one strong 64-bit hash and k
	// seeds — the paper's BF(City64) construction. The base hash is the
	// shared hashes.Base of the batch read path, so prepared batch callers
	// can hand the filter an already-computed value (ContainsHash).
	StrategySeeded64
	// StrategySplit128 derives k values from a 128-bit hash (two lanes)
	// via Kirsch–Mitzenmacher double hashing.
	StrategySplit128
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyCorpus:
		return "BF"
	case StrategySeeded64:
		return "BF(City64)"
	case StrategySplit128:
		return "BF(XXH128)"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Filter is a standard Bloom filter.
type Filter struct {
	bits     *bitset.Bits
	k        int
	strategy Strategy
	fns      []hashes.Func // StrategyCorpus only
	n        uint64        // inserted keys (statistics only)
}

// OptimalK returns the FPR-minimizing hash count k = ln2·b for a given
// bits-per-key budget, clamped to [1, 30].
func OptimalK(bitsPerKey float64) int {
	k := int(math.Round(math.Ln2 * bitsPerKey))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return k
}

// TheoreticalFPR returns (1 - e^{-k/b})^k, the standard false-positive
// estimate for bits-per-key b and k hash functions.
func TheoreticalFPR(bitsPerKey float64, k int) float64 {
	if bitsPerKey <= 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)/bitsPerKey), float64(k))
}

// New returns a Bloom filter with m bits and k hash positions per key,
// using the given strategy.
func New(m uint64, k int, strategy Strategy) (*Filter, error) {
	if m == 0 {
		return nil, fmt.Errorf("bloom: zero-length filter")
	}
	if k < 1 {
		return nil, fmt.Errorf("bloom: k = %d, need k >= 1", k)
	}
	f := &Filter{bits: bitset.New(m), k: k, strategy: strategy}
	if strategy == StrategyCorpus {
		corpus := hashes.CorpusFuncs()
		if k > len(corpus) {
			return nil, fmt.Errorf("bloom: k = %d exceeds corpus size %d", k, len(corpus))
		}
		f.fns = corpus[:k]
	}
	return f, nil
}

// NewWithKeys builds a filter sized at bitsPerKey·len(keys) bits with the
// FPR-optimal k and inserts every key.
func NewWithKeys(keys [][]byte, bitsPerKey float64, strategy Strategy) (*Filter, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("bloom: empty key set")
	}
	m := uint64(math.Ceil(bitsPerKey * float64(len(keys))))
	if m == 0 {
		m = 1
	}
	f, err := New(m, OptimalK(bitsPerKey), strategy)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		f.Add(k)
	}
	return f, nil
}

// positionsK appends the first k bit positions of key to dst and returns
// it. k is capped at the filter's configured hash count for the corpus
// strategy (which has a fixed function list).
func (f *Filter) positionsK(key []byte, k int, dst []uint64) []uint64 {
	m := f.bits.Len()
	switch f.strategy {
	case StrategyCorpus:
		if k > len(f.fns) {
			k = len(f.fns)
		}
		for _, fn := range f.fns[:k] {
			dst = append(dst, fn(key)%m)
		}
	case StrategySeeded64:
		base := hashes.Base(key)
		for i := 0; i < k; i++ {
			dst = append(dst, hashes.Mix64(base^hashes.Mix64(uint64(i)+0x9e3779b97f4a7c15))%m)
		}
	case StrategySplit128:
		hi, lo := hashes.Split128(key, 0)
		for i := 0; i < k; i++ {
			dst = append(dst, hashes.Double(hi, lo, i)%m)
		}
	}
	return dst
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	f.AddK(key, f.k)
}

// AddK inserts key using only the first k derived positions. Filters that
// vary the hash count per key (Ada-BF, WBF-style schemes) share one array
// and call this directly; k must not exceed the filter's configured k.
func (f *Filter) AddK(key []byte, k int) {
	if k > f.k {
		k = f.k
	}
	var buf [32]uint64
	for _, p := range f.positionsK(key, k, buf[:0]) {
		f.bits.Set(p)
	}
	f.n++
}

// Contains reports whether key may be in the set. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key []byte) bool {
	return f.ContainsK(key, f.k)
}

// ContainsK checks membership using only the first k derived positions.
// A key inserted with AddK(key, k) is always found by ContainsK(key, k).
func (f *Filter) ContainsK(key []byte, k int) bool {
	if k > f.k {
		k = f.k
	}
	var buf [32]uint64
	for _, p := range f.positionsK(key, k, buf[:0]) {
		if !f.bits.Test(p) {
			return false
		}
	}
	return true
}

// PreparedHash reports whether ContainsHash can answer for this filter:
// only the seeded64 strategy derives all probe positions from the shared
// base hash (hashes.Base); the corpus and split128 strategies read the
// key bytes directly.
func (f *Filter) PreparedHash() bool { return f.strategy == StrategySeeded64 }

// ContainsHash is Contains for a precomputed base = hashes.Base(key),
// valid only when PreparedHash reports true. Batch callers that already
// hashed the key for shard routing use it to skip re-reading key bytes.
func (f *Filter) ContainsHash(base uint64) bool {
	m := f.bits.Len()
	for i := 0; i < f.k; i++ {
		if !f.bits.Test(hashes.Mix64(base^hashes.Mix64(uint64(i)+0x9e3779b97f4a7c15)) % m) {
			return false
		}
	}
	return true
}

// Name identifies the filter in experiment output.
func (f *Filter) Name() string { return f.strategy.String() }

// K returns the number of hash positions per key.
func (f *Filter) K() int { return f.k }

// MBits returns the filter length in bits.
func (f *Filter) MBits() uint64 { return f.bits.Len() }

// SizeBits returns the memory consumed by the query-time structure in bits.
func (f *Filter) SizeBits() uint64 { return f.bits.SizeBytes() * 8 }

// Count returns the number of inserted keys.
func (f *Filter) Count() uint64 { return f.n }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 { return f.bits.FillRatio() }

// EstimatedFPR returns the fill-ratio-based false-positive estimate ρ^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.bits.FillRatio(), float64(f.k))
}
