package xorfilter

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func genKeys(n int, tag string) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s-%d", tag, i))
	}
	return keys
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Error("empty key set accepted")
	}
	if _, err := New(genKeys(10, "k"), 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(genKeys(10, "k"), 33); err == nil {
		t.Error("width 33 accepted")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000, 20000} {
		keys := genKeys(n, "member")
		f, err := New(keys, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				t.Fatalf("n=%d: false negative for %q", n, k)
			}
		}
	}
}

func TestFPRMatchesWidth(t *testing.T) {
	keys := genKeys(20000, "in")
	for _, w := range []uint{4, 8, 12} {
		f, err := New(keys, w)
		if err != nil {
			t.Fatal(err)
		}
		fp := 0
		const probes = 100000
		for i := 0; i < probes; i++ {
			if f.Contains([]byte(fmt.Sprintf("out-%d", i))) {
				fp++
			}
		}
		got := float64(fp) / probes
		want := f.TheoreticalFPR()
		if got > want*2.5+0.002 {
			t.Errorf("width %d: FPR %.5f, theory %.5f", w, got, want)
		}
	}
}

func TestFingerprintBits(t *testing.T) {
	cases := []struct {
		b    float64
		n    int
		want uint
	}{
		{10, 1000000, 8}, // 10/1.23 ≈ 8.13
		{10, 100, 6},     // 10/(1.23+0.32) ≈ 6.45
		{1, 1000, 1},     // floor < 1 clamps to 1
		{64, 1000000, 32},
		{10, 0, 1},
	}
	for _, c := range cases {
		if got := FingerprintBits(c.b, c.n); got != c.want {
			t.Errorf("FingerprintBits(%v, %d) = %d, want %d", c.b, c.n, got, c.want)
		}
	}
}

func TestNewWithBudgetSpace(t *testing.T) {
	keys := genKeys(10000, "b")
	bitsPerKey := 12.0
	f, err := NewWithBudget(keys, bitsPerKey)
	if err != nil {
		t.Fatal(err)
	}
	budget := bitsPerKey * float64(len(keys))
	// Logical size = 1.23n slots × width; must not exceed the budget by
	// more than the 64-bit word padding.
	logical := float64(3*((uint64(32+123*len(keys)/100)+2)/3)) * float64(f.Width())
	if logical > budget*1.05 {
		t.Errorf("logical size %.0f bits exceeds budget %.0f", logical, budget)
	}
	if f.SizeBits() == 0 || f.Count() != 10000 || f.Name() != "Xor" {
		t.Error("accessor values wrong")
	}
}

func TestDuplicateKeysFail(t *testing.T) {
	keys := [][]byte{[]byte("same"), []byte("same"), []byte("other")}
	if _, err := New(keys, 8); err == nil {
		t.Error("duplicate keys did not fail construction")
	}
}

func TestDeterministicGivenKeys(t *testing.T) {
	keys := genKeys(500, "det")
	a, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		q := []byte(fmt.Sprintf("q-%d", i))
		if a.Contains(q) != b.Contains(q) {
			t.Fatal("two builds over identical keys disagree")
		}
	}
}

// Property: for arbitrary unique key sets, membership always holds.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(raw [][]byte) bool {
		seen := map[string]bool{}
		var keys [][]byte
		for _, k := range raw {
			if !seen[string(k)] {
				seen[string(k)] = true
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			return true
		}
		fl, err := New(keys, 8)
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizeScalesWithWidth(t *testing.T) {
	keys := genKeys(5000, "s")
	s8, _ := New(keys, 8)
	s16, _ := New(keys, 16)
	ratio := float64(s16.SizeBits()) / float64(s8.SizeBits())
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("16-bit filter is %.2fx the 8-bit filter, want ~2x", ratio)
	}
}

func BenchmarkConstruct(b *testing.B) {
	keys := genKeys(100000, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(keys, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	keys := genKeys(100000, "bench")
	f, err := New(keys, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var hits int
	for i := 0; i < b.N; i++ {
		if f.Contains(keys[i%len(keys)]) {
			hits++
		}
	}
	_ = hits
}
