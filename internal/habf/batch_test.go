package habf

import (
	"fmt"
	"testing"
)

func batchFixture(t testing.TB, n int, fast bool) (*Filter, [][]byte, [][]byte) {
	t.Helper()
	pos := make([][]byte, n)
	neg := make([]WeightedKey, n)
	negKeys := make([][]byte, n)
	for i := 0; i < n; i++ {
		pos[i] = []byte(fmt.Sprintf("pos-%06d", i))
		negKeys[i] = []byte(fmt.Sprintf("neg-%06d", i))
		neg[i] = WeightedKey{Key: negKeys[i], Cost: float64(n - i)}
	}
	f, err := New(pos, neg, Params{TotalBits: uint64(12 * n), Fast: fast})
	if err != nil {
		t.Fatal(err)
	}
	return f, pos, negKeys
}

// TestContainsBatchMatchesContains pins the batch path to the per-key
// path bit for bit: same keys, same answers, in both hashing regimes.
func TestContainsBatchMatchesContains(t *testing.T) {
	for _, fast := range []bool{false, true} {
		t.Run(fmt.Sprintf("fast=%v", fast), func(t *testing.T) {
			f, pos, neg := batchFixture(t, 2000, fast)
			probe := append(append([][]byte{}, pos...), neg...)
			got := f.ContainsBatch(probe)
			if len(got) != len(probe) {
				t.Fatalf("ContainsBatch returned %d results for %d keys", len(got), len(probe))
			}
			for i, key := range probe {
				if want := f.Contains(key); got[i] != want {
					t.Fatalf("key %q: batch=%v per-key=%v", key, got[i], want)
				}
			}
			for i := range pos {
				if !got[i] {
					t.Fatalf("false negative for positive key %q in batch", pos[i])
				}
			}
		})
	}
}

func TestContainsBatchIntoLeavesTailUntouched(t *testing.T) {
	f, pos, _ := batchFixture(t, 200, true)
	dst := make([]bool, len(pos)+3)
	dst[len(pos)] = true // sentinel past the batch
	f.ContainsBatchInto(dst, pos)
	if !dst[len(pos)] {
		t.Fatal("ContainsBatchInto wrote past len(keys)")
	}
	for i := range pos {
		if !dst[i] {
			t.Fatalf("false negative for positive key %d", i)
		}
	}
}

func TestContainsBatchEmpty(t *testing.T) {
	f, _, _ := batchFixture(t, 50, false)
	if out := f.ContainsBatch(nil); len(out) != 0 {
		t.Fatalf("ContainsBatch(nil) = %v", out)
	}
}

func TestBuildParamsRoundTrip(t *testing.T) {
	f, _, _ := batchFixture(t, 100, false)
	p := f.BuildParams()
	if p.K != 3 || p.CellBits != 4 || p.TotalBits != 1200 {
		t.Fatalf("BuildParams() = %+v, want defaulted construction params", p)
	}
	// The returned params must be directly usable for a rebuild.
	if err := p.validate(); err != nil {
		t.Fatalf("BuildParams() not valid for rebuild: %v", err)
	}
}
