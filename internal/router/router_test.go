package router

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	habf "repro"
	"repro/internal/server"
)

// buildFilter constructs a small sharded filter over n keys.
func buildFilter(t *testing.T, n int) (*habf.Sharded, [][]byte) {
	t.Helper()
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%05d", i))
	}
	f, err := habf.NewSharded(keys, nil, 1<<16, habf.WithShards(4))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return f, keys
}

// startReplica serves f's binary protocol on ln (or a fresh ephemeral
// listener when ln is nil) and returns the address plus a stopper.
func startReplica(t *testing.T, f *habf.Sharded, ln net.Listener) (string, func()) {
	t.Helper()
	srv, err := server.New(server.Config{Filter: f})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if ln == nil {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
	}
	bs := server.NewBinaryServer(srv)
	go bs.Serve(ln)
	var once atomic.Bool
	stop := func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		bs.Shutdown(ctx)
		cancel()
		srv.Close()
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

// slowProxy forwards TCP to backend, delaying every response byte
// stream by delay — an artificially slow replica for hedge tests.
func slowProxy(t *testing.T, backend string, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				up, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer up.Close()
				go io.Copy(up, conn)
				time.Sleep(delay)
				io.Copy(conn, up)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted zero replicas")
	}
	if _, err := New(Config{Replicas: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("New accepted duplicate replicas")
	}
}

// TestRouterBatchAcrossReplicas fans one large batch over three
// replicas and checks the routed answers match the filter's own.
func TestRouterBatchAcrossReplicas(t *testing.T) {
	f, keys := buildFilter(t, 256)
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, _ := startReplica(t, f, nil)
		addrs = append(addrs, addr)
	}
	r, err := New(Config{Replicas: addrs, MinChunk: 32})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	// Half known keys, half probes the filter may or may not report.
	query := make([][]byte, 0, 300)
	query = append(query, keys[:150]...)
	for i := 0; i < 150; i++ {
		query = append(query, []byte(fmt.Sprintf("absent-%05d", i)))
	}
	want := f.ContainsBatch(query)
	got, err := r.ContainsBatch(query)
	if err != nil {
		t.Fatalf("ContainsBatch: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d: routed %v, local %v", i, got[i], want[i])
		}
	}
	st := r.Stats()
	if st.Batches != 1 || st.Keys != 300 || st.Healthy != 3 {
		t.Fatalf("stats: %+v", st)
	}

	ok, err := r.Contains(keys[0])
	if err != nil || !ok {
		t.Fatalf("Contains(known key) = %v, %v", ok, err)
	}
}

// TestRouterHedgesSlowReplica puts a high-latency replica first in the
// rotation: the hedge timer must fire, the fast replica must win, and
// the answers must stay correct.
func TestRouterHedgesSlowReplica(t *testing.T) {
	f, keys := buildFilter(t, 64)
	fastAddr, _ := startReplica(t, f, nil)
	backendAddr, _ := startReplica(t, f, nil)
	slowAddr := slowProxy(t, backendAddr, 300*time.Millisecond)

	r, err := New(Config{
		Replicas:   []string{slowAddr, fastAddr},
		HedgeAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	want := f.ContainsBatch(keys)
	start := time.Now()
	got, err := r.ContainsBatch(keys)
	if err != nil {
		t.Fatalf("ContainsBatch: %v", err)
	}
	took := time.Since(start)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d: routed %v, local %v", i, got[i], want[i])
		}
	}
	st := r.Stats()
	if st.Hedges < 1 {
		t.Fatalf("no hedge fired (stats %+v)", st)
	}
	if st.HedgeWins < 1 {
		t.Fatalf("hedge did not win against a 300ms replica (stats %+v, took %v)", st, took)
	}
	if took >= 300*time.Millisecond {
		t.Fatalf("first-arrival-wins failed: call took the slow path (%v)", took)
	}
}

// TestRouterLosingHedgeCannotTearResults pins the private-buffer
// guarantee of the pooled hedge path: after ContainsBatchInto returns,
// the caller owns dst outright — the losing attempt, still in flight
// against the slow replica, finishes into its own pooled buffer and
// must never write into dst, even across several batches recycling
// those buffers.
func TestRouterLosingHedgeCannotTearResults(t *testing.T) {
	f, keys := buildFilter(t, 64)
	fastAddr, _ := startReplica(t, f, nil)
	backendAddr, _ := startReplica(t, f, nil)
	slowAddr := slowProxy(t, backendAddr, 200*time.Millisecond)

	r, err := New(Config{
		Replicas:   []string{slowAddr, fastAddr},
		HedgeAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	want := f.ContainsBatch(keys)
	dst := make([]bool, len(keys))
	for round := 0; round < 3; round++ {
		// Poison dst so a stale non-write would be caught too.
		for i := range dst {
			dst[i] = !want[i]
		}
		if err := r.ContainsBatchInto(dst, keys); err != nil {
			t.Fatalf("round %d: ContainsBatchInto: %v", round, err)
		}
		snap := append([]bool(nil), dst...)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("round %d key %d: routed %v, local %v", round, i, dst[i], want[i])
			}
		}
		// Let any losing attempt finish against the 200ms replica, then
		// check it wrote nothing into the caller's slice.
		time.Sleep(250 * time.Millisecond)
		for i := range snap {
			if dst[i] != snap[i] {
				t.Fatalf("round %d: dst[%d] changed after return (losing hedge tore the result)", round, i)
			}
		}
	}
	if st := r.Stats(); st.Hedges < 1 {
		t.Fatalf("no hedge fired (stats %+v)", st)
	}
}

// TestRouterEjectsDeadReplicaAndReprobes kills one of two replicas,
// checks the router keeps answering after ejecting it, then restarts
// the replica on the same address and waits for the health loop to
// restore it.
func TestRouterEjectsDeadReplicaAndReprobes(t *testing.T) {
	f, keys := buildFilter(t, 64)
	aliveAddr, _ := startReplica(t, f, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr, stopDead := startReplica(t, f, ln)

	r, err := New(Config{
		Replicas:        []string{deadAddr, aliveAddr},
		HedgeAfter:      20 * time.Millisecond,
		RequestTimeout:  200 * time.Millisecond,
		ReprobeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	stopDead() // replica one is gone before the first request

	want := f.ContainsBatch(keys)
	for i := 0; i < 3; i++ {
		got, err := r.ContainsBatch(keys)
		if err != nil {
			t.Fatalf("ContainsBatch with one dead replica: %v", err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("call %d key %d: routed %v, local %v", i, j, got[j], want[j])
			}
		}
	}
	waitFor(t, 2*time.Second, func() bool { return r.Stats().Healthy == 1 },
		"dead replica to be ejected")
	if st := r.Stats(); st.Ejections < 1 {
		t.Fatalf("stats after death: %+v", st)
	}

	// Resurrect on the same address and let the health loop find it.
	ln2, err := net.Listen("tcp", deadAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", deadAddr, err)
	}
	startReplica(t, f, ln2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()
	waitFor(t, 5*time.Second, func() bool { return r.Stats().Healthy == 2 },
		"restarted replica to be reprobed back in")
	if st := r.Stats(); st.Reprobes < 1 {
		t.Fatalf("stats after reprobe: %+v", st)
	}
	cancel()
	<-done
}

// TestRouterAllDead returns ErrNoReplicas once the only replica fails.
func TestRouterAllDead(t *testing.T) {
	f, keys := buildFilter(t, 16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr, stop := startReplica(t, f, ln)
	stop()
	r, err := New(Config{Replicas: []string{addr}, RequestTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()
	if _, err := r.ContainsBatch(keys); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("error = %v, want ErrNoReplicas", err)
	}
	if _, err := r.ContainsBatch(keys); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("second call error = %v, want ErrNoReplicas", err)
	}
}

// TestRouterStaleEpochFence serves two filters whose epochs diverge:
// the health loop must eject the stale replica and restore it once its
// epoch catches back up.
func TestRouterStaleEpochFence(t *testing.T) {
	fFresh, _ := buildFilter(t, 64)
	fStale, _ := buildFilter(t, 64)
	for i := 0; i < 8; i++ {
		fFresh.Add([]byte(fmt.Sprintf("extra-%d", i))) // bump fresh epoch ahead
	}
	if fFresh.Epoch() <= fStale.Epoch() {
		t.Fatalf("epochs did not diverge: fresh %d stale %d", fFresh.Epoch(), fStale.Epoch())
	}
	freshAddr, _ := startReplica(t, fFresh, nil)
	staleAddr, _ := startReplica(t, fStale, nil)

	r, err := New(Config{
		Replicas:        []string{freshAddr, staleAddr},
		ReprobeInterval: 20 * time.Millisecond,
		StaleEpochSlack: 2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()

	waitFor(t, 5*time.Second, func() bool {
		st := r.Stats()
		return st.Healthy == 1 && st.StaleEject >= 1
	}, "stale replica to be fenced out")
	if got := r.Healthy(); len(got) != 1 || got[0] != freshAddr {
		t.Fatalf("Healthy() = %v, want only %s", got, freshAddr)
	}

	// Catch the stale filter up; the fence must let it back in.
	for fStale.Epoch()+2 < fFresh.Epoch() {
		fStale.Add([]byte(fmt.Sprintf("catchup-%d", fStale.Epoch())))
	}
	waitFor(t, 5*time.Second, func() bool { return r.Stats().Healthy == 2 },
		"caught-up replica to be restored")
	cancel()
	<-done
}
