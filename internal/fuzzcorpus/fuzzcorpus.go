// Package fuzzcorpus reads and writes Go fuzz seed-corpus files (the
// "go test fuzz v1" encoding used under testdata/fuzz/<FuzzName>/), so
// packages can commit deterministic seed corpora and verify in normal
// test runs that the committed files stay decodable and in sync with
// the hostile inputs the fuzz targets care about.
package fuzzcorpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// header is the version line of the Go fuzz corpus encoding.
const header = "go test fuzz v1"

// Encode renders one []byte fuzz argument as a corpus file body.
func Encode(data []byte) []byte {
	return []byte(header + "\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// Decode parses a corpus file body holding a single []byte argument.
func Decode(content []byte) ([]byte, error) {
	lines := strings.SplitN(strings.TrimRight(string(content), "\n"), "\n", 2)
	if len(lines) != 2 || lines[0] != header {
		return nil, fmt.Errorf("fuzzcorpus: missing %q header", header)
	}
	arg := lines[1]
	if !strings.HasPrefix(arg, "[]byte(") || !strings.HasSuffix(arg, ")") {
		return nil, fmt.Errorf("fuzzcorpus: argument %q is not a []byte literal", arg)
	}
	s, err := strconv.Unquote(arg[len("[]byte(") : len(arg)-1])
	if err != nil {
		return nil, fmt.Errorf("fuzzcorpus: %w", err)
	}
	return []byte(s), nil
}

// WriteDir writes one corpus file per named seed into dir (creating
// it), e.g. WriteDir("testdata/fuzz/FuzzX", map[string][]byte{...}).
func WriteDir(dir string, seeds map[string][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, data := range seeds {
		if err := os.WriteFile(filepath.Join(dir, name), Encode(data), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir decodes every corpus file in dir, keyed by file name.
func ReadDir(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		content, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		data, err := Decode(content)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		out[e.Name()] = data
	}
	return out, nil
}

// Names returns the sorted seed names, for deterministic test output.
func Names(seeds map[string][]byte) []string {
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
