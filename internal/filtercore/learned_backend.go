package filtercore

import (
	"repro/internal/habf"
	"repro/internal/learned"
)

// The learned filter family (LBF, SLBF, Ada-BF) served through the
// backend abstraction. These are the first backends whose build cost is
// dominated by training rather than hashing, so rebuilds are orders of
// magnitude slower than queries; they are registered as static (a
// trained model cannot absorb single-key inserts — the shard layer
// buffers pending keys until a rebuild retrains).
//
// Training is seed-deterministic and the seed is a tuning knob, so a
// snapshot-restored set rebuilt with the same keys and knobs reproduces
// the same filter bit-for-bit.

// KindLBF, KindSLBF and KindAdaBF extend the append-only wire kinds in
// filtercore.go.
const (
	KindLBF   Kind = 5
	KindSLBF  Kind = 6
	KindAdaBF Kind = 7
)

// learnedFilter is what the three learned families already implement.
type learnedFilter interface {
	Contains(key []byte) bool
	Name() string
	SizeBits() uint64
	MarshalBinary() ([]byte, error)
	WireAlignOffset() int
	Borrowed() bool
}

type learnedBackend struct {
	f    learnedFilter
	kind Kind
}

var _ Backend = (*learnedBackend)(nil)

func (b *learnedBackend) Contains(key []byte) bool        { return b.f.Contains(key) }
func (b *learnedBackend) ContainsBatch(k [][]byte) []bool { return containsBatchSerial(b, k) }
func (b *learnedBackend) Add([]byte) error                { return ErrStaticBackend }
func (b *learnedBackend) AddedKeys() uint64               { return 0 }
func (b *learnedBackend) Name() string                    { return b.f.Name() }
func (b *learnedBackend) SizeBits() uint64                { return b.f.SizeBits() }
func (b *learnedBackend) Kind() Kind                      { return b.kind }
func (b *learnedBackend) MarshalBinary() ([]byte, error)  { return b.f.MarshalBinary() }
func (b *learnedBackend) WireAlignOffset() int            { return b.f.WireAlignOffset() }
func (b *learnedBackend) Borrowed() bool                  { return b.f.Borrowed() }

// learnedServeOptions maps the validated knob set onto the learned
// package's serve options.
func learnedServeOptions(t Tuning) learned.ServeOptions {
	return learned.ServeOptions{
		Model:  t.Value("model"),
		Epochs: t.Int("epochs"),
		Seed:   int64(t.Int("seed")),
		Split:  t.Float("split"),
		Groups: t.Int("groups"),
	}
}

// learnedKnobs are the knobs shared by all three families. The families
// ignore a knob their schema omits (Tuning returns zero values), so the
// helper lists only the common set.
func learnedKnobs(extra ...Knob) []Knob {
	common := []Knob{
		{Name: "model", Type: KnobEnum, Enum: []string{"logistic", "gru"},
			Default: "logistic", Doc: "classifier family: hashed-trigram logistic regression or the paper's 16-dim character GRU (×100 build cost)"},
		{Name: "epochs", Type: KnobInt, Min: 0, Max: 64,
			Default: "0", Doc: "SGD epochs; 0 derives the family default (6 logistic, 2 gru)"},
		{Name: "seed", Type: KnobInt, Min: 1, Max: 1 << 31,
			Default: "1", Doc: "training RNG seed; pinned in tuning so restored sets rebuild bit-identically"},
		{Name: "absorb", Type: KnobInt, Min: 0, Max: 1 << 20,
			Default: "4096", Doc: "pending keys on a restored shard that trigger a background absorb into a mutable sidecar; 0 disables"},
	}
	return append(common, extra...)
}

// keysOf strips the misidentification costs off the negative sample: the
// learned models train on unweighted labels.
func keysOf(negatives []habf.WeightedKey) [][]byte {
	out := make([][]byte, len(negatives))
	for i, n := range negatives {
		out[i] = n.Key
	}
	return out
}

func init() {
	Register(Factory{
		Name:         "lbf",
		Kind:         KindLBF,
		Static:       true,
		InnerName:    func(habf.Params) string { return "LBF" },
		TuningSchema: NewSchema(learnedKnobs()...),
		Build: func(positives [][]byte, negatives []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			f, err := learned.BuildLBF(positives, keysOf(negatives), cfg.TotalBits, learnedServeOptions(cfg.Tuning))
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindLBF}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := learned.UnmarshalLBF(data)
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindLBF}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := learned.UnmarshalLBFBorrow(data)
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindLBF}, nil
		},
	})

	Register(Factory{
		Name:      "slbf",
		Kind:      KindSLBF,
		Static:    true,
		InnerName: func(habf.Params) string { return "SLBF" },
		TuningSchema: NewSchema(learnedKnobs(
			Knob{Name: "split", Type: KnobFloat, Min: 0.05, Max: 0.95,
				Default: "0.5", Doc: "fraction of the non-model budget spent on the initial (pre-model) bloom filter"},
		)...),
		Build: func(positives [][]byte, negatives []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			f, err := learned.BuildSLBF(positives, keysOf(negatives), cfg.TotalBits, learnedServeOptions(cfg.Tuning))
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindSLBF}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := learned.UnmarshalSLBF(data)
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindSLBF}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := learned.UnmarshalSLBFBorrow(data)
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindSLBF}, nil
		},
	})

	Register(Factory{
		Name:      "adabf",
		Kind:      KindAdaBF,
		Static:    true,
		InnerName: func(habf.Params) string { return "Ada-BF" },
		TuningSchema: NewSchema(learnedKnobs(
			Knob{Name: "groups", Type: KnobInt, Min: 2, Max: 16,
				Default: "4", Doc: "score groups g; lower-score groups probe more hash positions"},
		)...),
		Build: func(positives [][]byte, negatives []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			f, err := learned.BuildAdaBF(positives, keysOf(negatives), cfg.TotalBits, learnedServeOptions(cfg.Tuning))
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindAdaBF}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := learned.UnmarshalAdaBF(data)
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindAdaBF}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := learned.UnmarshalAdaBFBorrow(data)
			if err != nil {
				return nil, err
			}
			return &learnedBackend{f: f, kind: KindAdaBF}, nil
		},
	})
}
