// Sharded serving: the production shape of HABF for heavy traffic. A
// filter service holding millions of members cannot stop the world to
// absorb new keys or to rebuild: this example runs a sharded HABF as a
// live service — batched queries from several goroutines, a writer
// streaming new members in with no external locking, and background
// shard rebuilds folding those members into a re-optimized filter while
// the other shards keep serving.
//
// The second act is the restart story: the live filter is checkpointed
// with SaveFile, the process state is "killed" (the filter dropped), and
// a fresh filter is restored from the snapshot with LoadFile — a
// zero-copy load that is query-ready immediately — then re-verified
// against every member that was acknowledged before the save, including
// the ones streamed in while serving.
//
// Counts printed are deterministic (fixed seeds, fixed workload);
// throughput and timings depend on the machine and go to stderr.
//
//	go run ./examples/shardedserve
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	habf "repro"
	"repro/internal/dataset"
	"repro/internal/workload"
)

const (
	nMembers  = 30000 // initial positive set
	nOutside  = 30000 // known negative keys, zipf-weighted
	nNewKeys  = 3000  // members streamed in while serving
	nReaders  = 4     // concurrent query goroutines
	batchSize = 256
	seed      = 11
)

func main() {
	data := dataset.YCSB(nMembers, nOutside, seed)
	costs := dataset.ZipfCosts(nOutside, 1.2, seed)
	negatives := make([]habf.WeightedKey, nOutside)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: costs[i]}
	}

	start := time.Now()
	s, err := habf.NewSharded(data.Positives, negatives, uint64(10*nMembers),
		habf.WithShards(8), habf.WithRebuildThreshold(0.01))
	if err != nil {
		log.Fatal(err)
	}
	buildElapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "built %s in %v\n", s.Name(), buildElapsed.Round(time.Millisecond))

	fmt.Printf("shardedserve: %s over %d members, %d weighted negatives, %d new members streamed in\n\n",
		s.Name(), nMembers, nOutside, nNewKeys)

	// Serve: readers issue zipf-skewed batches (half members, half known
	// negatives) while one writer streams new members in. No locks
	// anywhere in this function — the sharded filter handles it.
	var (
		wg          sync.WaitGroup
		falseNegs   [nReaders]int
		hits        [nReaders]int
		queriesEach = 50 * 1024
	)
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Zipf-skewed stream, even positions negatives, odd positives.
			probes, err := workload.MixProbes(workload.Zipfian, seed+int64(r),
				queriesEach, data.Positives, data.Negatives)
			if err != nil {
				log.Fatal(err)
			}
			for lo := 0; lo < len(probes); lo += batchSize {
				batch := probes[lo : lo+batchSize]
				for i, ok := range s.ContainsBatch(batch) {
					if i%2 == 1 && !ok {
						falseNegs[r]++ // must never happen
					} else if i%2 == 0 && ok {
						hits[r]++ // false positives on known negatives
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nNewKeys; i++ {
			s.Add([]byte(fmt.Sprintf("member-late-%06d", i)))
		}
	}()
	serveStart := time.Now()
	wg.Wait()
	elapsed := time.Since(serveStart)
	s.WaitRebuilds()

	totalQueries := nReaders * queriesEach
	fmt.Fprintf(os.Stderr, "served %d queries in %v (%.2f Mqps) with %d concurrent adds\n",
		totalQueries, elapsed.Round(time.Millisecond),
		float64(totalQueries)/elapsed.Seconds()/1e6, nNewKeys)

	fn := 0
	for _, c := range falseNegs {
		fn += c
	}
	fmt.Printf("false negatives under concurrent serve+add: %d (guaranteed 0)\n", fn)
	if fn != 0 {
		log.Fatal("zero-false-negative contract violated")
	}

	// Every streamed-in member must be queryable afterwards.
	missing := 0
	for i := 0; i < nNewKeys; i++ {
		if !s.Contains([]byte(fmt.Sprintf("member-late-%06d", i))) {
			missing++
		}
	}
	fmt.Printf("streamed members lost: %d of %d\n", missing, nNewKeys)

	st := s.Stats()
	fmt.Printf("background rebuilds: completed without blocking serving (errors: %d)\n", st.RebuildErrors)
	fmt.Printf("final state: %d members across %d shards, %.1f KiB\n",
		st.Keys, st.Shards, float64(st.SizeBits)/8/1024)
	if missing != 0 || st.RebuildErrors != 0 {
		os.Exit(1)
	}

	// Act two: save → kill → restore. Checkpoint the live filter, drop it
	// (the "crash"), and bring a replacement up from the snapshot.
	dir, err := os.MkdirTemp("", "shardedserve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "filter.snap")

	saveStart := time.Now()
	if err := s.SaveFile(snapPath); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saved snapshot (%.1f KiB) in %v\n",
		float64(info.Size())/1024, time.Since(saveStart).Round(time.Microsecond))

	s = nil // "kill" the serving process's filter

	restoreStart := time.Now()
	restoredSet, err := habf.LoadFile(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	restoreElapsed := time.Since(restoreStart)
	fmt.Fprintf(os.Stderr, "restored in %v (zero-copy; build took %v)\n",
		restoreElapsed.Round(time.Microsecond), buildElapsed.Round(time.Millisecond))

	// Zero-false-negative self-check over everything acknowledged before
	// the save: the original members and the streamed-in ones.
	restoredMissing := 0
	for _, key := range data.Positives {
		if !restoredSet.Contains(key) {
			restoredMissing++
		}
	}
	for i := 0; i < nNewKeys; i++ {
		if !restoredSet.Contains([]byte(fmt.Sprintf("member-late-%06d", i))) {
			restoredMissing++
		}
	}
	fmt.Printf("\nsave -> kill -> restore: members lost across restart: %d of %d (guaranteed 0)\n",
		restoredMissing, nMembers+nNewKeys)
	if restoredMissing != 0 {
		log.Fatal("zero-false-negative contract violated after restore")
	}

	// The restored filter is live: it keeps absorbing new members.
	restoredSet.Add([]byte("member-post-restore"))
	postOK := restoredSet.Contains([]byte("member-post-restore"))
	fmt.Printf("restored filter accepts new members: %v\n", postOK)
	rst := restoredSet.Stats()
	fmt.Printf("restored state: %d of %d shards serving from the snapshot buffer\n",
		rst.Restored, rst.Shards)
	if !postOK {
		os.Exit(1)
	}
}
