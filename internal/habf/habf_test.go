package habf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func genKeys(n int, tag string) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s/%d", tag, i))
	}
	return keys
}

func genNegatives(n int, tag string, costs func(i int) float64) []WeightedKey {
	out := make([]WeightedKey, n)
	for i := range out {
		out[i] = WeightedKey{Key: []byte(fmt.Sprintf("%s/%d", tag, i)), Cost: costs(i)}
	}
	return out
}

func uniformCost(int) float64 { return 1 }

func TestNewValidation(t *testing.T) {
	pos := genKeys(10, "p")
	neg := genNegatives(10, "n", uniformCost)
	if _, err := New(nil, neg, Params{TotalBits: 1 << 16}); err == nil {
		t.Error("empty positives accepted")
	}
	if _, err := New(pos, neg, Params{TotalBits: 10}); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := New(pos, neg, Params{TotalBits: 1 << 16, K: 99}); err == nil {
		t.Error("k beyond family accepted")
	}
	if _, err := New(pos, neg, Params{TotalBits: 1 << 16, CellBits: 9}); err == nil {
		t.Error("cell size 9 accepted")
	}
	bad := []WeightedKey{{Key: []byte("x"), Cost: -1}}
	if _, err := New(pos, bad, Params{TotalBits: 1 << 16}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := New(pos, neg, Params{TotalBits: 1 << 16, SpaceRatio: 1.5}); err == nil {
		t.Error("SpaceRatio >= 1 accepted")
	}
}

// The fundamental invariant: zero false negatives, regardless of how
// aggressively TPJO rewired hash selections.
func TestZeroFalseNegatives(t *testing.T) {
	for _, fast := range []bool{false, true} {
		t.Run(fmt.Sprintf("fast=%v", fast), func(t *testing.T) {
			pos := genKeys(5000, "member")
			neg := genNegatives(5000, "outsider", uniformCost)
			f, err := New(pos, neg, Params{TotalBits: 5000 * 12, Fast: fast})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range pos {
				if !f.Contains(k) {
					t.Fatalf("false negative for %q (stats %+v)", k, f.Stats())
				}
			}
		})
	}
}

func TestOptimizationReducesFPR(t *testing.T) {
	pos := genKeys(8000, "member")
	neg := genNegatives(8000, "outsider", uniformCost)
	f, err := New(pos, neg, Params{TotalBits: 8000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.CollisionKeys == 0 {
		t.Skip("no collision keys at this size; nothing to optimize")
	}
	if st.FPRAfter > st.FPRBefore {
		t.Errorf("optimization increased FPR: before %.5f after %.5f", st.FPRBefore, st.FPRAfter)
	}
	if st.Optimized == 0 {
		t.Errorf("no collision keys optimized out of %d", st.CollisionKeys)
	}
	// Known negatives should now largely test negative.
	fp := 0
	for _, n := range neg {
		if f.Contains(n.Key) {
			fp++
		}
	}
	got := float64(fp) / float64(len(neg))
	if got > st.FPRBefore {
		t.Errorf("two-round FPR %.5f exceeds unoptimized Bloom FPR %.5f", got, st.FPRBefore)
	}
	t.Logf("stats: %+v, final two-round FPR on known negatives: %.5f", st, got)
}

func TestCostPrioritization(t *testing.T) {
	// With highly skewed costs, the weighted FPR must drop much more than
	// the unweighted FPR: expensive keys are optimized first.
	pos := genKeys(12000, "member")
	neg := genNegatives(12000, "outsider", func(i int) float64 {
		if i%100 == 0 {
			return 1000
		}
		return 1
	})
	f, err := New(pos, neg, Params{TotalBits: 12000 * 8})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted FPR over the final two-round filter.
	var fpCost, totalCost float64
	for _, n := range neg {
		totalCost += n.Cost
		if f.Contains(n.Key) {
			fpCost += n.Cost
		}
	}
	weighted := fpCost / totalCost
	st := f.Stats()
	if st.CollisionKeys == 0 {
		t.Skip("no collisions to optimize")
	}
	if weighted > st.WeightedFPRBefore {
		t.Errorf("weighted FPR did not improve: %.6f -> %.6f", st.WeightedFPRBefore, weighted)
	}
	t.Logf("weighted FPR %.6f -> %.6f, plain %.6f -> %.6f",
		st.WeightedFPRBefore, weighted, st.FPRBefore, st.FPRAfter)
}

func TestDeterministicConstruction(t *testing.T) {
	pos := genKeys(2000, "p")
	neg := genNegatives(2000, "n", uniformCost)
	build := func() *Filter {
		f, err := New(pos, neg, Params{TotalBits: 2000 * 10, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := build(), build()
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	for i := 0; i < 5000; i++ {
		q := []byte(fmt.Sprintf("probe-%d", i))
		if a.Contains(q) != b.Contains(q) {
			t.Fatal("same seed, different membership answers")
		}
	}
}

func TestSeedChangesH0(t *testing.T) {
	// With k=3 of 7 usable functions there are only 35 sorted subsets, so
	// two particular seeds may legitimately collide; require that a batch
	// of seeds produces at least two distinct selections.
	pos := genKeys(100, "p")
	seen := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		f, err := New(pos, nil, Params{TotalBits: 1 << 14, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		seen[fmt.Sprint(f.h0)] = true
	}
	if len(seen) < 2 {
		t.Errorf("8 different seeds all chose the same H0 %v", seen)
	}
}

func TestEmptyNegativesIsPlainBloom(t *testing.T) {
	pos := genKeys(3000, "p")
	f, err := New(pos, nil, Params{TotalBits: 3000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.CollisionKeys != 0 || st.AdjustedPositives != 0 || st.HashExpressorInserts != 0 {
		t.Errorf("no negatives but TPJO did work: %+v", st)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatal("false negative without negatives")
		}
	}
}

func TestSingleKeySets(t *testing.T) {
	f, err := New([][]byte{[]byte("only")},
		[]WeightedKey{{Key: []byte("nope"), Cost: 5}}, Params{TotalBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Contains([]byte("only")) {
		t.Fatal("singleton member lost")
	}
	if f.Contains([]byte("nope")) {
		t.Log("known negative still positive (allowed but unexpected at this size)")
	}
}

func TestOverlappingPositiveNegative(t *testing.T) {
	// S ∩ O ≠ ∅ violates the problem definition but must not break
	// zero-FNR or crash.
	pos := genKeys(1000, "both")
	neg := make([]WeightedKey, 0, 1000)
	for i := 0; i < 1000; i++ {
		neg = append(neg, WeightedKey{Key: []byte(fmt.Sprintf("both/%d", i)), Cost: 10})
	}
	f, err := New(pos, neg, Params{TotalBits: 1000 * 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatal("member lost when S ∩ O ≠ ∅")
		}
	}
}

func TestDuplicatePositives(t *testing.T) {
	pos := append(genKeys(500, "dup"), genKeys(500, "dup")...)
	neg := genNegatives(500, "n", uniformCost)
	f, err := New(pos, neg, Params{TotalBits: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatal("duplicate positive lost")
		}
	}
}

func TestSizeBitsWithinBudget(t *testing.T) {
	pos := genKeys(4000, "p")
	neg := genNegatives(4000, "n", uniformCost)
	total := uint64(4000 * 10)
	f, err := New(pos, neg, Params{TotalBits: total})
	if err != nil {
		t.Fatal(err)
	}
	// Allow word-alignment slack on both component arrays.
	if f.SizeBits() > total+256 {
		t.Errorf("SizeBits %d exceeds budget %d", f.SizeBits(), total)
	}
	if f.BloomBits() == 0 {
		t.Error("BloomBits = 0")
	}
}

func TestNames(t *testing.T) {
	pos := genKeys(100, "p")
	f, _ := New(pos, nil, Params{TotalBits: 1 << 14})
	if f.Name() != "HABF" {
		t.Errorf("Name = %q", f.Name())
	}
	ff, _ := NewFast(pos, nil, Params{TotalBits: 1 << 14})
	if ff.Name() != "f-HABF" {
		t.Errorf("fast Name = %q", ff.Name())
	}
	if f.K() != 3 {
		t.Errorf("default K = %d, want 3", f.K())
	}
}

func TestFastVsSlowBothWork(t *testing.T) {
	pos := genKeys(6000, "p")
	neg := genNegatives(6000, "n", uniformCost)
	slow, err := New(pos, neg, Params{TotalBits: 6000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewFast(pos, neg, Params{TotalBits: 6000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	fpr := func(f *Filter) float64 {
		fp := 0
		for _, n := range neg {
			if f.Contains(n.Key) {
				fp++
			}
		}
		return float64(fp) / float64(len(neg))
	}
	fs, fq := fpr(slow), fpr(fast)
	t.Logf("HABF FPR %.5f, f-HABF FPR %.5f", fs, fq)
	// The paper reports f-HABF ≈ 1.5× HABF; we only require both to be
	// sane and fast to be within an order of magnitude.
	if fq > fs*20+0.02 {
		t.Errorf("f-HABF FPR %.5f wildly worse than HABF %.5f", fq, fs)
	}
}

// Property test: for arbitrary disjoint key sets, membership of every
// positive key holds after construction (the paper's zero-FNR theorem).
func TestQuickZeroFNR(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}
	for _, fast := range []bool{false, true} {
		fast := fast
		f := func(rawPos, rawNeg [][]byte) bool {
			posSet := map[string]bool{}
			var pos [][]byte
			for _, k := range rawPos {
				if !posSet[string(k)] {
					posSet[string(k)] = true
					pos = append(pos, k)
				}
			}
			if len(pos) == 0 {
				return true
			}
			var neg []WeightedKey
			for i, k := range rawNeg {
				if !posSet[string(k)] {
					neg = append(neg, WeightedKey{Key: k, Cost: float64(i%7 + 1)})
				}
			}
			fl, err := New(pos, neg, Params{TotalBits: 1 << 14, Fast: fast})
			if err != nil {
				return false
			}
			for _, k := range pos {
				if !fl.Contains(k) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("fast=%v: %v", fast, err)
		}
	}
}

// Adversarial workload: all negative keys share a common prefix with the
// positives, so weak hashes cluster badly. Construction must still
// terminate and hold zero FNR.
func TestAdversarialSharedPrefix(t *testing.T) {
	pos := make([][]byte, 2000)
	neg := make([]WeightedKey, 2000)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("shared-prefix-000000000000/%06d", i))
	}
	for i := range neg {
		neg[i] = WeightedKey{
			Key:  []byte(fmt.Sprintf("shared-prefix-000000000000/%06d", i+2000)),
			Cost: 1,
		}
	}
	f, err := New(pos, neg, Params{TotalBits: 2000 * 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatal("false negative under adversarial prefixes")
		}
	}
}

func TestAblationFlagsRun(t *testing.T) {
	pos := genKeys(3000, "p")
	neg := genNegatives(3000, "n", func(i int) float64 { return float64(i%13 + 1) })
	for _, p := range []Params{
		{TotalBits: 3000 * 10, DisableGamma: true},
		{TotalBits: 3000 * 10, DisableOverlapRanking: true},
		{TotalBits: 3000 * 10, DisableCostOrdering: true},
	} {
		f, err := New(pos, neg, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range pos {
			if !f.Contains(k) {
				t.Fatalf("ablation %+v broke zero-FNR", p)
			}
		}
	}
}

func TestParamsSplit(t *testing.T) {
	p := Params{TotalBits: 1000}.withDefaults()
	he, bf := p.split()
	if he+bf != 1000 {
		t.Fatalf("split does not conserve budget: %d + %d", he, bf)
	}
	// Δ = 0.25 → HE share = 0.2.
	if he < 150 || he > 250 {
		t.Fatalf("HE share %d, want ≈200", he)
	}
}

func BenchmarkConstruct(b *testing.B) {
	pos := genKeys(20000, "p")
	neg := genNegatives(20000, "n", uniformCost)
	for _, fast := range []bool{false, true} {
		name := "HABF"
		if fast {
			name = "f-HABF"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := New(pos, neg, Params{TotalBits: 20000 * 10, Fast: fast}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkContains(b *testing.B) {
	pos := genKeys(20000, "p")
	neg := genNegatives(20000, "n", uniformCost)
	for _, fast := range []bool{false, true} {
		name := "HABF"
		if fast {
			name = "f-HABF"
		}
		f, err := New(pos, neg, Params{TotalBits: 20000 * 10, Fast: fast})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/positive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Contains(pos[i%len(pos)])
			}
		})
		b.Run(name+"/negative", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Contains(neg[i%len(neg)].Key)
			}
		})
	}
}
