package filtercore

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/habf"
)

// bloomBackend adapts the standard Bloom filter baseline to the Backend
// interface. It is mutable (Add sets bits) but cost-oblivious: the
// shard's weighted negatives are ignored. The hash strategy and hash
// count are tuning knobs; the default is XXH128 double hashing — the
// fastest of the paper's three Bloom flavours and the one with no
// corpus-size cap on k — with the FPR-optimal k for the bit budget.
type bloomBackend struct {
	f *bloom.Filter
	// added counts post-construction Adds; the underlying filter only
	// tracks the total insert count.
	added atomic.Uint64
}

var _ Backend = (*bloomBackend)(nil)
var _ PreparedQuerier = (*bloomBackend)(nil)

func (b *bloomBackend) Contains(key []byte) bool       { return b.f.Contains(key) }
func (b *bloomBackend) AddedKeys() uint64              { return b.added.Load() }
func (b *bloomBackend) Name() string                   { return b.f.Name() }
func (b *bloomBackend) SizeBits() uint64               { return b.f.SizeBits() }
func (b *bloomBackend) Kind() Kind                     { return KindBloom }
func (b *bloomBackend) MarshalBinary() ([]byte, error) { return b.f.MarshalBinary() }
func (b *bloomBackend) WireAlignOffset() int           { return bloom.WireAlignOffset }
func (b *bloomBackend) Borrowed() bool                 { return b.f.Borrowed() }

func (b *bloomBackend) ContainsBatch(keys [][]byte) []bool {
	return containsBatchSerial(b, keys)
}

// ContainsBatchInto implements PreparedQuerier. Only the seeded64
// strategy derives every probe position from the shared base hash; the
// corpus and split128 strategies fall back to per-key Contains.
func (b *bloomBackend) ContainsBatchInto(dst []bool, keys [][]byte, hashes []uint64) {
	if hashes == nil || !b.f.PreparedHash() {
		containsBatchSerialInto(b, dst, keys)
		return
	}
	for i, h := range hashes[:len(keys)] {
		dst[i] = b.f.ContainsHash(h)
	}
}

func (b *bloomBackend) Add(key []byte) error {
	b.f.Add(key)
	b.added.Add(1)
	return nil
}

// bloomStrategies maps the "strategy" knob's enum values to the hash
// derivations of the bloom package.
var bloomStrategies = map[string]bloom.Strategy{
	"corpus":   bloom.StrategyCorpus,
	"seeded64": bloom.StrategySeeded64,
	"split128": bloom.StrategySplit128,
}

func init() {
	Register(Factory{
		Name:      "bloom",
		Kind:      KindBloom,
		Static:    false,
		InnerName: func(habf.Params) string { return bloom.StrategySplit128.String() },
		TuningSchema: NewSchema(
			Knob{Name: "strategy", Type: KnobEnum, Enum: []string{"corpus", "seeded64", "split128"},
				Default: "split128", Doc: "hash derivation: corpus (Table II function pool), seeded64 (re-seeded City64), split128 (XXH128 double hashing)"},
			Knob{Name: "k", Type: KnobInt, Min: 0, Max: 30,
				Default: "0", Doc: "hash positions per key; 0 derives the FPR-optimal round(ln2 · bits-per-key)"},
		),
		Build: func(positives [][]byte, _ []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			if len(positives) == 0 {
				return nil, fmt.Errorf("bloom: empty key set")
			}
			bitsPerKey := float64(cfg.TotalBits) / float64(len(positives))
			// Keep NewWithKeys's exact sizing so a default tuning builds a
			// bit-identical filter to the pre-knob code path.
			m := uint64(math.Ceil(bitsPerKey * float64(len(positives))))
			if m == 0 {
				m = 1
			}
			k := cfg.Tuning.Int("k")
			if k == 0 {
				k = bloom.OptimalK(bitsPerKey)
			}
			strategy := bloom.StrategySplit128
			if name := cfg.Tuning.Value("strategy"); name != "" {
				strategy = bloomStrategies[name]
			}
			f, err := bloom.New(m, k, strategy)
			if err != nil {
				return nil, err
			}
			for _, key := range positives {
				f.Add(key)
			}
			return &bloomBackend{f: f}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := bloom.UnmarshalFilter(data)
			if err != nil {
				return nil, err
			}
			return &bloomBackend{f: f}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := bloom.UnmarshalFilterBorrow(data)
			if err != nil {
				return nil, err
			}
			return &bloomBackend{f: f}, nil
		},
	})
}
