package habf_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	habf "repro"
)

func tuningFixture(n int) ([][]byte, []habf.WeightedKey) {
	positives := make([][]byte, n)
	negatives := make([]habf.WeightedKey, n)
	for i := 0; i < n; i++ {
		positives[i] = []byte(fmt.Sprintf("tune-member-%06d", i))
		negatives[i] = habf.WeightedKey{Key: []byte(fmt.Sprintf("tune-absent-%06d", i)), Cost: float64(i%5 + 1)}
	}
	return positives, negatives
}

// TestPublicTuning exercises the knob surface of the public API:
// WithTuning threads validated knobs into the build, Tuning() reports
// the canonical full set, ParseTuning canonicalizes without building,
// and SaveFile/LoadFile round-trips the knobs.
func TestPublicTuning(t *testing.T) {
	positives, negatives := tuningFixture(1500)
	s, err := habf.NewSharded(positives, negatives, 18000,
		habf.WithShards(2), habf.WithBackend("bloom"), habf.WithTuning("strategy=seeded64", "k=8"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := habf.ParseTuning("bloom", "strategy=seeded64,k=8")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tuning(); got != want {
		t.Fatalf("Tuning() = %q, want %q", got, want)
	}
	for _, key := range positives {
		if !s.Contains(key) {
			t.Fatalf("false negative for %q", key)
		}
	}

	path := filepath.Join(t.TempDir(), "tuned.snap")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := habf.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Tuning(); got != want {
		t.Fatalf("restored Tuning() = %q, want %q", got, want)
	}

	if _, err := habf.NewSharded(positives, negatives, 18000,
		habf.WithBackend("bloom"), habf.WithTuning("bogus=1")); err == nil {
		t.Fatal("NewSharded accepted an unknown knob")
	}
	if _, err := habf.ParseTuning("bloom", "k=999"); err == nil {
		t.Fatal("ParseTuning accepted an out-of-bounds value")
	}
	if _, err := habf.ParseTuning("no-such", "k=1"); err == nil {
		t.Fatal("ParseTuning accepted an unknown backend")
	}
}

// TestPublicTuningMatchesLegacyOptions pins the single-config-path
// contract for the habf backend: WithK/WithCellBits and the equivalent
// tuning knobs configure the same fields, and either spelling is
// reported back through Tuning() in full.
func TestPublicTuningMatchesLegacyOptions(t *testing.T) {
	positives, negatives := tuningFixture(1000)

	legacy, err := habf.NewSharded(positives, negatives, 12000,
		habf.WithShards(2), habf.WithShardFilterOptions(habf.WithK(4), habf.WithCellBits(5)))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := habf.NewSharded(positives, negatives, 12000,
		habf.WithShards(2), habf.WithTuning("k=4,cellbits=5"))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Tuning() != tuned.Tuning() {
		t.Fatalf("legacy options report tuning %q, knobs report %q", legacy.Tuning(), tuned.Tuning())
	}
	for _, frag := range []string{"k=4", "cellbits=5"} {
		if !strings.Contains(legacy.Tuning(), frag) {
			t.Errorf("Tuning() = %q does not reflect legacy option %s", legacy.Tuning(), frag)
		}
	}
	// A set knob wins over the legacy option for the same field.
	both, err := habf.NewSharded(positives, negatives, 12000,
		habf.WithShards(2), habf.WithShardFilterOptions(habf.WithK(2)), habf.WithTuning("k=4"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(both.Tuning(), "k=4") {
		t.Fatalf("Tuning() = %q, want the explicit knob k=4 to win", both.Tuning())
	}
}
