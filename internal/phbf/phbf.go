// Package phbf implements the partitioned-hashing Bloom filter of Hao,
// Kodialam & Lakshman ("Building high accuracy bloom filters using
// partitioned hashing", SIGMETRICS 2007) — the closest prior work to
// HABF. §II of the HABF paper positions it as "a special case of
// customizing hash functions": keys are grouped into disjoint subsets by
// a partition hash, and each *group* (not each key) gets its own hash
// set, chosen greedily to minimize the number of set bits.
//
// The implementation follows the paper's one-pass greedy: groups are
// processed in order; for each group a small number of candidate seed
// sets are tried and the one that sets the fewest new bits wins. The
// per-group winning seed is the only metadata kept for query time, so
// the structure stays within a whisker of plain Bloom space.
package phbf

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/hashes"
)

// Filter is a partitioned-hashing Bloom filter.
type Filter struct {
	bits   *bitset.Bits
	k      int
	groups int
	seeds  []uint64 // winning seed per group
}

// Config tunes construction.
type Config struct {
	// TotalBits is the bit-array budget. Required.
	TotalBits uint64
	// K is the per-key hash count. Default ln2 · bits-per-key.
	K int
	// Groups is the number of key partitions. Default 64.
	Groups int
	// Candidates is how many seed sets are tried per group. Default 8.
	Candidates int
}

func (c Config) withDefaults(n int) Config {
	if c.K == 0 {
		bpk := float64(c.TotalBits) / float64(n)
		c.K = int(math.Round(math.Ln2 * bpk))
		if c.K < 1 {
			c.K = 1
		}
	}
	// Clamp to the wire format's hash-count ceiling so a filter built on
	// a tiny shard with a generous minimum budget still round-trips.
	if c.K > maxWireK {
		c.K = maxWireK
	}
	if c.Groups == 0 {
		c.Groups = 64
	}
	if c.Candidates == 0 {
		c.Candidates = 8
	}
	return c
}

// New builds the filter over keys.
func New(keys [][]byte, cfg Config) (*Filter, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("phbf: empty key set")
	}
	if cfg.TotalBits == 0 {
		return nil, fmt.Errorf("phbf: zero bit budget")
	}
	cfg = cfg.withDefaults(len(keys))

	f := &Filter{
		bits:   bitset.New(cfg.TotalBits),
		k:      cfg.K,
		groups: cfg.Groups,
		seeds:  make([]uint64, cfg.Groups),
	}

	// Partition keys by group. The base hashes (hashes.Base) are computed
	// once here and reused for both grouping and position derivation —
	// the same hash-once structure the query path uses.
	grouped := make([][]uint64, cfg.Groups)
	for _, key := range keys {
		base := hashes.Base(key)
		g := f.group(base)
		grouped[g] = append(grouped[g], base)
	}

	// Greedy per-group seed selection: fewest newly set bits wins.
	var posBuf []uint64
	for g, members := range grouped {
		if len(members) == 0 {
			continue
		}
		bestSeed := uint64(0)
		bestNew := -1
		for c := 0; c < cfg.Candidates; c++ {
			seed := hashes.Mix64(uint64(g)<<32 | uint64(c) + 0x1234)
			newBits := 0
			seen := map[uint64]bool{}
			for _, base := range members {
				posBuf = f.positions(base, seed, posBuf[:0])
				for _, p := range posBuf {
					if !f.bits.Test(p) && !seen[p] {
						seen[p] = true
						newBits++
					}
				}
			}
			if bestNew < 0 || newBits < bestNew {
				bestNew, bestSeed = newBits, seed
			}
		}
		f.seeds[g] = bestSeed
		for _, base := range members {
			posBuf = f.positions(base, bestSeed, posBuf[:0])
			for _, p := range posBuf {
				f.bits.Set(p)
			}
		}
	}
	return f, nil
}

// group maps a base hash (hashes.Base of the key) to its partition.
func (f *Filter) group(base uint64) int {
	return int(hashes.Mix64(base^0x9e3779b9) % uint64(f.groups))
}

// positions derives the k bit positions of a key's base hash under a
// group seed, via double hashing over two Mix64-derived lanes.
func (f *Filter) positions(base, seed uint64, dst []uint64) []uint64 {
	h1, h2 := hashes.BaseLanes(base, seed)
	m := f.bits.Len()
	for i := 0; i < f.k; i++ {
		dst = append(dst, hashes.Double(h1, h2, i)%m)
	}
	return dst
}

// Contains reports whether key may be a member.
func (f *Filter) Contains(key []byte) bool {
	return f.ContainsHash(hashes.Base(key))
}

// ContainsHash is Contains for a precomputed base = hashes.Base(key).
// Every probe position derives from the base, so prepared batch callers
// skip the key bytes entirely.
func (f *Filter) ContainsHash(base uint64) bool {
	seed := f.seeds[f.group(base)]
	h1, h2 := hashes.BaseLanes(base, seed)
	m := f.bits.Len()
	for i := 0; i < f.k; i++ {
		if !f.bits.Test(hashes.Double(h1, h2, i) % m) {
			return false
		}
	}
	return true
}

// Name identifies the filter in experiment output.
func (f *Filter) Name() string { return "PHBF" }

// SizeBits returns bit array plus per-group seed metadata.
func (f *Filter) SizeBits() uint64 {
	return f.bits.SizeBytes()*8 + uint64(len(f.seeds))*64
}

// FillRatio returns the fraction of set bits (the quantity the greedy
// minimizes).
func (f *Filter) FillRatio() float64 { return f.bits.FillRatio() }

// K returns the per-key hash count.
func (f *Filter) K() int { return f.k }
