package habf

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/hashes"
)

// Filter is a constructed Hash Adaptive Bloom Filter. It is safe for any
// number of concurrent readers; Add (the only mutator) must be externally
// synchronized against them.
type Filter struct {
	bf       *readonlyBits
	bfBits   *bitset.Bits // write path: serialization and Add
	bloomLen uint64       // cached bf.Len(), hot on the query path
	he       *hashExpressor
	fam      *family
	h0       []uint8
	k        int
	fast     bool
	seed     int64
	borrowed bool // decoded via UnmarshalFilterBorrow (zero-copy load)
	added    uint64
	stats    Stats
	params   Params // defaulted construction params, kept for rebuilds
}

// readonlyBits narrows *bitset.Bits to the read path so the query-time
// structure cannot be mutated after construction.
type readonlyBits struct {
	bits interface {
		Test(uint64) bool
		Len() uint64
		SizeBytes() uint64
		FillRatio() float64
	}
}

func (r *readonlyBits) Test(i uint64) bool { return r.bits.Test(i) }
func (r *readonlyBits) Len() uint64        { return r.bits.Len() }
func (r *readonlyBits) SizeBytes() uint64  { return r.bits.SizeBytes() }
func (r *readonlyBits) FillRatio() float64 { return r.bits.FillRatio() }

// New constructs an HABF over the positive set with knowledge of the
// negative keys and their costs, per the TPJO algorithm of §III-D.
//
// positives and negatives should be disjoint (the problem definition of
// §III-A assumes S ∩ O = ∅); overlapping keys are tolerated but waste
// optimization effort. Costs must be non-negative. The paper's defaults
// fill any zero Params field.
func New(positives [][]byte, negatives []WeightedKey, p Params) (*Filter, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(positives) == 0 {
		return nil, fmt.Errorf("habf: empty positive key set")
	}
	for i, n := range negatives {
		if n.Cost < 0 {
			return nil, fmt.Errorf("habf: negative key %d has negative cost %v", i, n.Cost)
		}
	}

	b := newBuilder(positives, negatives, p)
	b.prepareKeys()
	b.initBloomAndV()

	b.optimized = make([]bool, len(negatives))
	b.inGamma = make([]bool, len(negatives))
	b.attempts = make([]uint8, len(negatives))
	b.adjusted = make([]bool, len(positives))

	b.stats.FPRBefore, b.stats.WeightedFPRBefore = b.measureFPR()

	cq := b.buildCollisionQueue()
	b.stats.CollisionKeys = len(cq)

	for head := 0; head < len(cq); head++ {
		j := cq[head]
		if b.attempts[j] >= maxAdjustAttempts {
			b.stats.Failed++
			continue
		}
		b.attempts[j]++
		if !b.negTestsPositive(j) {
			// Broken by an earlier adjustment as a side effect; register it
			// in Γ so later adjustments cannot silently re-break it.
			b.addToGamma(j)
			continue
		}
		if b.optimize(j) {
			b.addToGamma(j)
		} else {
			b.stats.Failed++
		}
		if len(b.pendingVictims) > 0 {
			cq = append(cq, b.pendingVictims...)
			b.pendingVictims = b.pendingVictims[:0]
		}
	}

	// Repair rounds: an adjustment that sets a previously clear bit can
	// turn negatives that never collided before into collision keys. Γ
	// only watches the optimized ones, so §III-D's "if the adjustment
	// generates new collision keys, we insert them into the tail of CQ"
	// needs a re-scan to be honored for the rest — and with Γ disabled
	// (f-HABF) for all of them. Under skewed costs one re-broken hot key
	// dominates the weighted FPR, so this sweep matters.
	for round := 0; round < 2; round++ {
		var broken []int32
		for j := range b.negatives {
			if b.attempts[j] < maxAdjustAttempts && b.negTestsPositive(int32(j)) {
				broken = append(broken, int32(j))
			}
		}
		if len(broken) == 0 {
			break
		}
		if !p.DisableCostOrdering {
			sort.SliceStable(broken, func(x, y int) bool {
				return b.negatives[broken[x]].Cost > b.negatives[broken[y]].Cost
			})
		}
		progress := false
		for _, j := range broken {
			b.attempts[j]++
			if b.optimize(j) {
				b.addToGamma(j)
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	b.stats.Optimized = 0
	for j := range b.negatives {
		if b.optimized[j] && !b.negTestsPositive(int32(j)) {
			b.stats.Optimized++
		}
	}
	b.stats.HashExpressorInserts = b.he.Inserted()
	b.stats.FPRAfter, b.stats.WeightedFPRAfter = b.measureFPR()

	return &Filter{
		bf:       &readonlyBits{bits: b.bf},
		bfBits:   b.bf,
		bloomLen: b.bf.Len(),
		he:       b.he,
		fam:      b.fam,
		h0:       b.h0,
		k:        p.K,
		fast:     p.Fast,
		seed:     p.Seed,
		stats:    b.stats,
		params:   p,
	}, nil
}

// NewFast constructs an f-HABF (§III-G): double hashing for speed and Γ
// disabled. All other parameters keep the paper's defaults.
func NewFast(positives [][]byte, negatives []WeightedKey, p Params) (*Filter, error) {
	p.Fast = true
	return New(positives, negatives, p)
}

// measureFPR computes the (unweighted, weighted) false-positive rates of
// the current Bloom state over the given negatives under their effective
// selections — used for the before/after statistics of §IV-B.
func (b *builder) measureFPR() (plain, weighted float64) {
	if len(b.negatives) == 0 {
		return 0, 0
	}
	k := b.p.K
	var fp, totalCost, fpCost float64
	for j := range b.negatives {
		pass := true
		for s := 0; s < k; s++ {
			if !b.bf.Test(b.negH0[j*k+s]) {
				pass = false
				break
			}
		}
		c := b.negatives[j].Cost
		totalCost += c
		if pass {
			fp++
			fpCost += c
		}
	}
	plain = fp / float64(len(b.negatives))
	if totalCost > 0 {
		weighted = fpCost / totalCost
	}
	return plain, weighted
}

// Contains reports whether key may be a member. The two-round pattern of
// §III-E guarantees zero false negatives: positives that kept H0 pass
// round one; adjusted positives are recovered from HashExpressor and pass
// round two.
func (f *Filter) Contains(key []byte) bool {
	return f.contains(key)
}

// contains is the core of Contains: round one tests the default
// selection H0; round two walks the key's HashExpressor chain and tests
// the Bloom filter in the same pass, so each walked cell costs exactly
// one family-hash evaluation (the raw value is reduced by both the cell
// count and the Bloom length). Fusing the walk with the test answers
// identically to "query the full selection, then test it": both return
// true iff the chain is complete (k cells, endbit set) and every derived
// Bloom position is set.
func (f *Filter) contains(key []byte) bool {
	m := f.bloomLen
	fam := f.fam
	bits := f.bfBits
	if fam.fast {
		h1, h2 := hashes.Split128(key, fam.seed)
		pass := true
		for _, idx := range f.h0 {
			if !bits.Test(fam.rawFast(h1, h2, idx) % m) {
				pass = false
				break
			}
		}
		if pass {
			return true
		}
		return f.roundTwoFast(h1, h2, m)
	}
	pass := true
	for _, idx := range f.h0 {
		if !bits.Test(fam.rawSlow(key, idx) % m) {
			pass = false
			break
		}
	}
	if pass {
		return true
	}
	return f.roundTwoSlow(key, m)
}

// roundTwoSlow recovers an adjusted key's customized selection from the
// HashExpressor and tests it against the Bloom filter, one family-hash
// evaluation per walked cell. An incomplete chain (empty cell, bad index,
// missing endbit) means "no stored selection": φ(e) = H0, and round one
// already failed.
func (f *Filter) roundTwoSlow(key []byte, m uint64) bool {
	he, fam, bits := f.he, f.fam, f.bfBits
	cell := fam.entrySlow(key, he.omega)
	for i := 0; i < he.k; i++ {
		endbit, v := he.load(cell)
		if v == 0 {
			return false
		}
		idx := v - 1
		if int(idx) >= fam.size {
			return false
		}
		raw := fam.rawSlow(key, idx)
		if !bits.Test(raw % m) {
			return false
		}
		if i == he.k-1 {
			return endbit
		}
		cell = raw % he.omega
	}
	return false
}

// roundTwoFast is roundTwoSlow for the f-HABF simulated family.
func (f *Filter) roundTwoFast(h1, h2, m uint64) bool {
	he, fam, bits := f.he, f.fam, f.bfBits
	cell := fam.entryFast(h1, h2, he.omega)
	for i := 0; i < he.k; i++ {
		endbit, v := he.load(cell)
		if v == 0 {
			return false
		}
		idx := v - 1
		if int(idx) >= fam.size {
			return false
		}
		raw := fam.rawFast(h1, h2, idx)
		if !bits.Test(raw % m) {
			return false
		}
		if i == he.k-1 {
			return endbit
		}
		cell = raw % he.omega
	}
	return false
}

// ContainsBatch evaluates every key in one pass and returns a result per
// key, in order. It answers exactly like per-key Contains but hoists the
// per-call setup out of the loop, which is what serving layers batching
// queries want.
func (f *Filter) ContainsBatch(keys [][]byte) []bool {
	out := make([]bool, len(keys))
	f.ContainsBatchInto(out, keys)
	return out
}

// ContainsBatchInto writes Contains(keys[i]) into dst[i]. dst must have
// at least len(keys) elements; extra elements are left untouched.
func (f *Filter) ContainsBatchInto(dst []bool, keys [][]byte) {
	for i, key := range keys {
		dst[i] = f.contains(key)
	}
}

// ContainsScratch is Contains for batch callers that pre-size a scratch
// buffer. The fused round-two walk no longer needs one — the selection is
// tested cell by cell instead of being collected first — so scratch is
// ignored; the method survives for the shard layer's backend probing.
func (f *Filter) ContainsScratch(key []byte, scratch []uint8) bool {
	return f.contains(key)
}

// Name identifies the filter in experiment output.
func (f *Filter) Name() string {
	if f.fast {
		return "f-HABF"
	}
	return "HABF"
}

// K returns the per-key hash budget.
func (f *Filter) K() int { return f.k }

// SizeBits returns the query-time footprint: Bloom bits plus HashExpressor
// cells.
func (f *Filter) SizeBits() uint64 {
	return f.bf.SizeBytes()*8 + f.he.SizeBits()
}

// BloomBits returns Δ2, the Bloom filter share of the budget.
func (f *Filter) BloomBits() uint64 { return f.bf.Len() }

// FillRatio returns the Bloom filter's fraction of set bits.
func (f *Filter) FillRatio() float64 { return f.bf.FillRatio() }

// Stats returns construction statistics.
func (f *Filter) Stats() Stats { return f.stats }

// Borrowed reports whether any backing array still aliases the buffer the
// filter was decoded from (UnmarshalFilterBorrow, before any mutation).
func (f *Filter) Borrowed() bool {
	return f.borrowed && (f.bfBits.Borrowed() || f.he.cells.Borrowed())
}

// BuildParams returns the fully defaulted parameters this filter was
// constructed with — the rebuild hook for serving layers that rotate
// filters once post-construction Adds accumulate. Filters decoded by
// UnmarshalFilter report only the hashing-relevant fields (K, CellBits,
// Seed, Fast); the space split of the original build is not serialized.
func (f *Filter) BuildParams() Params { return f.params }
