package habf_test

import (
	"fmt"
	"testing"

	habf "repro"
	"repro/internal/dataset"
)

func TestPublicAddAfterBuild(t *testing.T) {
	pos, neg, _, _ := workload(2000)
	f, err := habf.New(pos, neg, 3000*12)
	if err != nil {
		t.Fatal(err)
	}
	late := [][]byte{[]byte("late/a"), []byte("late/b")}
	for _, k := range late {
		f.Add(k)
		if !f.Contains(k) {
			t.Fatalf("added key %q not found", k)
		}
	}
	if f.AddedKeys() != 2 {
		t.Fatalf("AddedKeys = %d", f.AddedKeys())
	}
	if fnr, _ := habf.FNR(f, pos); fnr != 0 {
		t.Fatal("Add broke zero-FNR for original members")
	}
}

func TestPublicSerializationRoundtrip(t *testing.T) {
	pos, neg, negKeys, costs := workload(2000)
	f, err := habf.New(pos, neg, 2000*12, habf.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := habf.UnmarshalHABF(data)
	if err != nil {
		t.Fatal(err)
	}
	if fnr, _ := habf.FNR(g, pos); fnr != 0 {
		t.Fatal("decoded filter broke zero-FNR")
	}
	wf, _ := habf.WeightedFPR(f, negKeys, costs)
	wg, _ := habf.WeightedFPR(g, negKeys, costs)
	if wf != wg {
		t.Fatalf("weighted FPR changed through serialization: %v vs %v", wf, wg)
	}
	if _, err := habf.UnmarshalHABF([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestPublicPHBF(t *testing.T) {
	pos, _, negKeys, _ := workload(3000)
	f, err := habf.NewPHBF(pos, 3000*10)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "PHBF" {
		t.Errorf("Name = %q", f.Name())
	}
	if fnr, _ := habf.FNR(f, pos); fnr != 0 {
		t.Fatal("PHBF broke zero-FNR")
	}
	if fpr, _ := habf.FPR(f, negKeys); fpr > 0.2 {
		t.Errorf("PHBF FPR %v not a useful filter", fpr)
	}
	if _, err := habf.NewPHBF(nil, 100); err == nil {
		t.Error("empty keys accepted")
	}
}

func TestPublicIncrementalLBF(t *testing.T) {
	p := dataset.Shalla(4000, 2000, 11)
	build, extra := p.Positives[:2000], p.Positives[2000:]
	for _, mode := range []habf.IncrementalMode{habf.ClassifierAdaptive, habf.IndexAdaptive} {
		f, err := habf.NewIncrementalLBF(mode, build, p.Negatives, uint64(len(build))*6)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range extra {
			f.Insert(k)
		}
		for _, k := range append(append([][]byte{}, build...), extra...) {
			if !f.Contains(k) {
				t.Fatalf("%s lost member %q", f.Name(), k)
			}
		}
		if f.SizeBits() == 0 {
			t.Errorf("%s SizeBits = 0", f.Name())
		}
	}
	if _, err := habf.NewIncrementalLBF(habf.IndexAdaptive, nil, nil, 100); err == nil {
		t.Error("empty positives accepted")
	}
}

func BenchmarkPublicAdd(b *testing.B) {
	pos, neg, _, _ := workload(10000)
	f, err := habf.New(pos, neg, 40000*12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add([]byte(fmt.Sprintf("bench-add/%d", i)))
	}
}

func TestPublicLBFGRU(t *testing.T) {
	if testing.Short() {
		t.Skip("GRU training is slow; skipped with -short")
	}
	p := dataset.Shalla(2000, 2000, 13)
	f, err := habf.NewLBFGRU(p.Positives, p.Negatives, uint64(2000*200))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "LBF(GRU)" {
		t.Errorf("Name = %q", f.Name())
	}
	if fnr, _ := habf.FNR(f, p.Positives); fnr != 0 {
		t.Fatal("GRU-backed LBF broke zero-FNR")
	}
	if fpr, _ := habf.FPR(f, p.Negatives); fpr > 0.2 {
		t.Errorf("GRU-backed LBF FPR %v; not useful", fpr)
	}
}

func ExampleHABF_Add() {
	f, err := habf.New([][]byte{[]byte("first")}, nil, 4096)
	if err != nil {
		panic(err)
	}
	f.Add([]byte("second"))
	fmt.Println(f.Contains([]byte("second")), f.AddedKeys())
	// Output: true 1
}

func ExampleWeightedFPR() {
	members := [][]byte{[]byte("a"), []byte("b")}
	negKeys := [][]byte{[]byte("x"), []byte("y")}
	costs := []float64{10, 1}
	f, err := habf.New(members,
		[]habf.WeightedKey{{Key: negKeys[0], Cost: costs[0]}, {Key: negKeys[1], Cost: costs[1]}},
		4096, habf.WithSeed(1))
	if err != nil {
		panic(err)
	}
	w, err := habf.WeightedFPR(f, negKeys, costs)
	if err != nil {
		panic(err)
	}
	fmt.Println(w)
	// Output: 0
}
