package bloom

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allStrategies() []Strategy {
	return []Strategy{StrategyCorpus, StrategySeeded64, StrategySplit128}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, StrategyCorpus); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(100, 0, StrategyCorpus); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(100, 23, StrategyCorpus); err == nil {
		t.Error("k beyond corpus size accepted for corpus strategy")
	}
	if _, err := New(100, 23, StrategySeeded64); err != nil {
		t.Error("seeded strategy should allow k beyond corpus size")
	}
}

func TestNewWithKeysEmpty(t *testing.T) {
	if _, err := NewWithKeys(nil, 10, StrategyCorpus); err == nil {
		t.Error("empty key set accepted")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	for _, s := range allStrategies() {
		t.Run(s.String(), func(t *testing.T) {
			keys := make([][]byte, 5000)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("positive-%d", i))
			}
			f, err := NewWithKeys(keys, 10, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if !f.Contains(k) {
					t.Fatalf("false negative for %q", k)
				}
			}
		})
	}
}

func TestFPRNearTheory(t *testing.T) {
	const (
		n          = 20000
		bitsPerKey = 10.0
	)
	for _, s := range allStrategies() {
		t.Run(s.String(), func(t *testing.T) {
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("member/%d", i))
			}
			f, err := NewWithKeys(keys, bitsPerKey, s)
			if err != nil {
				t.Fatal(err)
			}
			fp := 0
			const probes = 50000
			for i := 0; i < probes; i++ {
				if f.Contains([]byte(fmt.Sprintf("outsider/%d", i))) {
					fp++
				}
			}
			got := float64(fp) / probes
			want := TheoreticalFPR(bitsPerKey, f.K())
			// Allow a generous 3x band plus an absolute floor — we check
			// the filter is not broken, not that it is textbook-exact.
			if got > want*3+0.005 {
				t.Errorf("FPR = %.4f, theory %.4f (too high)", got, want)
			}
		})
	}
}

func TestOptimalK(t *testing.T) {
	cases := []struct {
		b    float64
		want int
	}{
		{10, 7}, {8, 6}, {1, 1}, {0.1, 1}, {100, 30},
	}
	for _, c := range cases {
		if got := OptimalK(c.b); got != c.want {
			t.Errorf("OptimalK(%v) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestTheoreticalFPRMonotone(t *testing.T) {
	// More bits per key (fixed k) must not increase FPR.
	prev := 1.0
	for b := 2.0; b <= 20; b++ {
		f := TheoreticalFPR(b, 4)
		if f > prev {
			t.Fatalf("TheoreticalFPR not monotone at b=%v", b)
		}
		prev = f
	}
	if TheoreticalFPR(0, 4) != 1 {
		t.Error("b<=0 should give FPR 1")
	}
	// k = ln2·b should be near the optimum 0.6185^b.
	b := 9.6
	got := TheoreticalFPR(b, OptimalK(b))
	want := math.Pow(0.6185, b)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("optimal FPR %.6f deviates from 0.6185^b = %.6f", got, want)
	}
}

func TestStrategiesDisagree(t *testing.T) {
	// The three strategies must place keys differently (otherwise Fig. 14
	// could not distinguish them).
	keys := make([][]byte, 200)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("strat-%d", i))
	}
	fills := map[string]float64{}
	for _, s := range allStrategies() {
		f, err := New(4096, 4, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			f.Add(k)
		}
		fills[s.String()] = f.FillRatio()
	}
	// All fill ratios should be close (same number of set operations) but
	// the bit patterns differ; verify via membership disagreement.
	fa, _ := New(4096, 4, StrategyCorpus)
	fb, _ := New(4096, 4, StrategySeeded64)
	for _, k := range keys {
		fa.Add(k)
		fb.Add(k)
	}
	disagree := 0
	for i := 0; i < 2000; i++ {
		q := []byte(fmt.Sprintf("probe-%d", i))
		if fa.Contains(q) != fb.Contains(q) {
			disagree++
		}
	}
	if disagree == 0 {
		t.Error("corpus and seeded strategies never disagree on probes; suspicious")
	}
}

func TestAccessors(t *testing.T) {
	f, err := New(1000, 5, StrategySeeded64)
	if err != nil {
		t.Fatal(err)
	}
	if f.K() != 5 || f.MBits() != 1000 {
		t.Error("K/MBits wrong")
	}
	if f.SizeBits() < 1000 {
		t.Error("SizeBits below logical size")
	}
	if f.Count() != 0 {
		t.Error("fresh Count != 0")
	}
	f.Add([]byte("x"))
	if f.Count() != 1 {
		t.Error("Count after Add != 1")
	}
	if f.Name() != "BF(City64)" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.EstimatedFPR() <= 0 || f.EstimatedFPR() > 1 {
		t.Error("EstimatedFPR out of range")
	}
}

// Property: Add(k) ⇒ Contains(k), for every strategy and arbitrary keys.
func TestQuickNoFalseNegatives(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		f := func(keys [][]byte) bool {
			if len(keys) == 0 {
				return true
			}
			fl, err := New(8192, 4, s)
			if err != nil {
				return false
			}
			for _, k := range keys {
				fl.Add(k)
			}
			for _, k := range keys {
				if !fl.Contains(k) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

func TestFillRatioGrowth(t *testing.T) {
	f, _ := New(1<<14, 4, StrategySplit128)
	prev := 0.0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("g-%d-%d", i, rng.Int63())))
		if r := f.FillRatio(); r < prev {
			t.Fatal("fill ratio decreased after Add")
		} else {
			prev = r
		}
	}
	if prev == 0 {
		t.Fatal("fill ratio stayed zero after 1000 inserts")
	}
}

func BenchmarkAdd(b *testing.B) {
	for _, s := range allStrategies() {
		b.Run(s.String(), func(b *testing.B) {
			f, _ := New(1<<24, 7, s)
			key := []byte("http://example.com/benchmark/key/0123456789")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Add(key)
			}
		})
	}
}

func BenchmarkContains(b *testing.B) {
	for _, s := range allStrategies() {
		b.Run(s.String(), func(b *testing.B) {
			keys := make([][]byte, 100000)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("bench/%d", i))
			}
			f, _ := NewWithKeys(keys, 10, s)
			b.ReportAllocs()
			var hits int
			for i := 0; i < b.N; i++ {
				if f.Contains(keys[i%len(keys)]) {
					hits++
				}
			}
			_ = hits
		})
	}
}

func TestAddKContainsK(t *testing.T) {
	f, err := New(1<<14, 10, StrategySplit128)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("variable-k")
	f.AddK(key, 4)
	if !f.ContainsK(key, 4) {
		t.Fatal("AddK(4) not found by ContainsK(4)")
	}
	// Fewer positions are a subset: still found.
	if !f.ContainsK(key, 2) {
		t.Fatal("ContainsK with smaller k must still pass")
	}
	// k above the filter's configured k is clamped, not a panic.
	f.AddK(key, 99)
	if !f.ContainsK(key, 99) {
		t.Fatal("clamped k mismatch")
	}
}

func TestAddKDisjointCounts(t *testing.T) {
	// Keys inserted with a large k must be rejected more often when the
	// query uses an even larger k over unset positions.
	f, _ := New(1<<12, 12, StrategySplit128)
	for i := 0; i < 200; i++ {
		f.AddK([]byte(fmt.Sprintf("k4/%d", i)), 4)
	}
	fp8, fp4 := 0, 0
	for i := 0; i < 2000; i++ {
		q := []byte(fmt.Sprintf("probe/%d", i))
		if f.ContainsK(q, 4) {
			fp4++
		}
		if f.ContainsK(q, 8) {
			fp8++
		}
	}
	if fp8 > fp4 {
		t.Errorf("more positions should not increase FPs: k8=%d k4=%d", fp8, fp4)
	}
}
