package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Lanes is a packed array of n unsigned integers, each width bits wide
// (1..64). It backs the Xor filter's fingerprint table and the
// HashExpressor cell array, where per-entry widths of 3..16 bits make
// []uint8/[]uint16 wasteful.
type Lanes struct {
	words []uint64
	n     uint64
	width uint
	mask  uint64
	// borrowed is true while words aliases caller-provided memory (see
	// UnmarshalBinaryBorrow); the first Set copies and clears it.
	borrowed bool
}

// NewLanes returns a lane array with n entries of the given bit width,
// all zero. It panics if width is 0 or greater than 64.
func NewLanes(n uint64, width uint) *Lanes {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("bitset: invalid lane width %d", width))
	}
	totalBits := n * uint64(width)
	l := &Lanes{
		words: make([]uint64, (totalBits+63)/64),
		n:     n,
		width: width,
	}
	if width == 64 {
		l.mask = ^uint64(0)
	} else {
		l.mask = (1 << width) - 1
	}
	return l
}

// Len returns the number of lanes.
func (l *Lanes) Len() uint64 { return l.n }

// Width returns the bit width of each lane.
func (l *Lanes) Width() uint { return l.width }

// SizeBytes returns the heap footprint of the payload in bytes.
func (l *Lanes) SizeBytes() uint64 { return uint64(len(l.words)) * 8 }

// Get returns lane i. It panics if i is out of range.
func (l *Lanes) Get(i uint64) uint64 {
	if i >= l.n {
		panic(fmt.Sprintf("bitset: lane Get(%d) out of range [0,%d)", i, l.n))
	}
	bitPos := i * uint64(l.width)
	w, off := bitPos>>6, bitPos&63
	v := l.words[w] >> off
	if off+uint64(l.width) > 64 {
		v |= l.words[w+1] << (64 - off)
	}
	return v & l.mask
}

// Set stores v into lane i, truncating v to the lane width.
// It panics if i is out of range.
func (l *Lanes) Set(i uint64, v uint64) {
	if i >= l.n {
		panic(fmt.Sprintf("bitset: lane Set(%d) out of range [0,%d)", i, l.n))
	}
	if l.borrowed {
		l.materialize()
	}
	v &= l.mask
	bitPos := i * uint64(l.width)
	w, off := bitPos>>6, bitPos&63
	l.words[w] = l.words[w]&^(l.mask<<off) | v<<off
	if off+uint64(l.width) > 64 {
		rem := off + uint64(l.width) - 64
		hiMask := (uint64(1) << rem) - 1
		l.words[w+1] = l.words[w+1]&^hiMask | v>>(64-off)
	}
}

// Reset zeroes every lane.
func (l *Lanes) Reset() {
	if l.borrowed {
		l.words = make([]uint64, len(l.words))
		l.borrowed = false
		return
	}
	for i := range l.words {
		l.words[i] = 0
	}
}

// Clone returns a deep copy of the lane array.
func (l *Lanes) Clone() *Lanes {
	c := &Lanes{
		words: make([]uint64, len(l.words)),
		n:     l.n,
		width: l.width,
		mask:  l.mask,
	}
	copy(c.words, l.words)
	return c
}

const lanesMagic = uint32(0xb1750002)

// MarshalBinary encodes the lane array as a self-describing byte stream.
func (l *Lanes) MarshalBinary() ([]byte, error) {
	out := make([]byte, 16+len(l.words)*8)
	binary.LittleEndian.PutUint32(out[0:4], lanesMagic)
	binary.LittleEndian.PutUint32(out[4:8], uint32(l.width))
	binary.LittleEndian.PutUint64(out[8:16], l.n)
	for i, w := range l.words {
		binary.LittleEndian.PutUint64(out[16+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a stream produced by MarshalBinary into owned
// memory; data is not retained.
func (l *Lanes) UnmarshalBinary(data []byte) error {
	return l.unmarshal(data, false)
}

// UnmarshalBinaryBorrow decodes a stream produced by MarshalBinary
// without copying when possible; see (*Bits).UnmarshalBinaryBorrow for
// the aliasing contract and the copy-on-first-write behavior of Set.
func (l *Lanes) UnmarshalBinaryBorrow(data []byte) error {
	return l.unmarshal(data, true)
}

func (l *Lanes) unmarshal(data []byte, borrow bool) error {
	if len(data) < 16 {
		return errors.New("bitset: truncated lanes header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != lanesMagic {
		return errors.New("bitset: bad lanes magic")
	}
	width := uint(binary.LittleEndian.Uint32(data[4:8]))
	if width == 0 || width > 64 {
		return fmt.Errorf("bitset: invalid lane width %d", width)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	// Bound n before computing n*width: the product wraps for hostile n,
	// which would under-size words while Len() reports the huge n. The
	// payload can hold at most 8·len bits, so that bounds n·width.
	maxBits := uint64(len(data)-16) * 8
	if n > maxBits/uint64(width) {
		return fmt.Errorf("bitset: declared %d lanes of %d bits exceeds %d payload bits", n, width, maxBits)
	}
	nw := int((n*uint64(width) + 63) / 64)
	if len(data) != 16+nw*8 {
		return fmt.Errorf("bitset: want %d payload bytes, have %d", nw*8, len(data)-16)
	}
	l.width = width
	l.n = n
	if width == 64 {
		l.mask = ^uint64(0)
	} else {
		l.mask = (1 << width) - 1
	}
	if words, ok := borrowWords(data[16:], nw, borrow); ok {
		l.words = words
		l.borrowed = true
		return nil
	}
	l.borrowed = false
	l.words = make([]uint64, nw)
	for i := range l.words {
		l.words[i] = binary.LittleEndian.Uint64(data[16+i*8:])
	}
	return nil
}

// Borrowed reports whether the lane array currently aliases
// caller-provided memory.
func (l *Lanes) Borrowed() bool { return l.borrowed }

func (l *Lanes) materialize() {
	owned := make([]uint64, len(l.words))
	copy(owned, l.words)
	l.words = owned
	l.borrowed = false
}
