package router

import (
	"testing"
)

// TestContainsBatchIntoAllocsBounded pins the pooled-buffer win in the
// chunk fan-out: per-attempt result buffers come from attemptBufPool,
// so a batch's allocation count is a small constant per chunk (the
// race channel and attempt closure, which cannot be pooled without
// letting a late loser write into a recycled buffer) — it must not
// scale with the number of keys. Before pooling, every attempt
// allocated an O(keys) result slice.
func TestContainsBatchIntoAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race for alloc counts")
	}
	f, keys := buildFilter(t, 512)
	addr, _ := startReplica(t, f, nil)
	r, err := New(Config{Replicas: []string{addr}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Close()

	dst := make([]bool, len(keys))
	// Warm the connection pool and attempt buffers at full batch size.
	for i := 0; i < 4; i++ {
		if err := r.ContainsBatchInto(dst, keys); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	small := testing.AllocsPerRun(20, func() {
		if err := r.ContainsBatchInto(dst[:64], keys[:64]); err != nil {
			t.Fatalf("small batch: %v", err)
		}
	})
	large := testing.AllocsPerRun(20, func() {
		if err := r.ContainsBatchInto(dst, keys); err != nil {
			t.Fatalf("large batch: %v", err)
		}
	})
	// 8x the keys must not mean 8x the allocations: the per-chunk
	// control overhead is constant and result buffers are pooled.
	if large > small+8 {
		t.Errorf("allocations scale with batch size: %.1f at 64 keys vs %.1f at 512", small, large)
	}
	if large > 24 {
		t.Errorf("large batch allocates %.1f objects, want a small constant (≤24)", large)
	}
}
