package costsketch

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 4); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewCountMin(16, 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm, err := NewCountMin(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(500))
		cm.Add([]byte(key), 1)
		truth[key]++
	}
	for key, want := range truth {
		if got := cm.Estimate([]byte(key)); got < want {
			t.Fatalf("underestimate for %q: %d < %d", key, got, want)
		}
	}
	if cm.Total() != 20000 {
		t.Fatalf("Total = %d", cm.Total())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	const width, n = 2048, 50000
	cm, _ := NewCountMin(width, 4)
	rng := rand.New(rand.NewSource(2))
	truth := map[string]uint64{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", rng.Intn(5000))
		cm.Add([]byte(key), 1)
		truth[key]++
	}
	// The classical bound: overshoot ≤ (e/width)·N w.h.p. Use 4× slack.
	bound := 4.0 * 2.72 * n / width
	for key, want := range truth {
		got := cm.Estimate([]byte(key))
		if float64(got-want) > bound {
			t.Fatalf("overshoot %d for %q exceeds bound %.0f", got-want, key, bound)
		}
	}
}

func TestCountMinUnseenKeysSmall(t *testing.T) {
	cm, _ := NewCountMin(4096, 4)
	for i := 0; i < 1000; i++ {
		cm.Add([]byte(fmt.Sprintf("seen-%d", i)), 1)
	}
	big := 0
	for i := 0; i < 1000; i++ {
		if cm.Estimate([]byte(fmt.Sprintf("unseen-%d", i))) > 3 {
			big++
		}
	}
	if big > 50 {
		t.Fatalf("%d/1000 unseen keys got large estimates", big)
	}
}

func TestSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	ss, err := NewSpaceSaving(64)
	if err != nil {
		t.Fatal(err)
	}
	// Zipf stream: the few hottest keys must be reported.
	costs := dataset.ZipfCosts(1000, 1.2, 3)
	type kv struct {
		idx  int
		freq float64
	}
	var order []kv
	for i, c := range costs {
		order = append(order, kv{i, c})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].freq > order[b].freq })

	rng := rand.New(rand.NewSource(4))
	var total float64
	cum := make([]float64, len(costs))
	for i, c := range costs {
		total += c
		cum[i] = total
	}
	for i := 0; i < 100000; i++ {
		idx := sort.SearchFloat64s(cum, rng.Float64()*total)
		if idx >= len(costs) {
			idx = len(costs) - 1
		}
		ss.Add([]byte(fmt.Sprintf("obj-%d", idx)), 1)
	}

	top := ss.Top(10)
	if len(top) != 10 {
		t.Fatalf("Top returned %d items", len(top))
	}
	reported := map[string]bool{}
	for _, it := range top {
		reported[string(it.Key)] = true
	}
	// The 3 hottest true keys must all be present.
	for _, h := range order[:3] {
		key := fmt.Sprintf("obj-%d", h.idx)
		if !reported[key] {
			t.Errorf("hot key %q (rank) missing from top-10", key)
		}
	}
	// Estimates bound the truth: Count-Err ≤ true ≤ Count.
	for _, it := range top {
		if it.Err > it.Count {
			t.Errorf("error bound %d exceeds count %d", it.Err, it.Count)
		}
	}
}

func TestSpaceSavingCapacity(t *testing.T) {
	ss, _ := NewSpaceSaving(8)
	for i := 0; i < 1000; i++ {
		ss.Add([]byte(fmt.Sprintf("k%d", i)), 1)
	}
	if ss.Len() != 8 {
		t.Fatalf("Len = %d, want 8", ss.Len())
	}
	if ss.Total() != 1000 {
		t.Fatalf("Total = %d", ss.Total())
	}
	if got := len(ss.Top(100)); got != 8 {
		t.Fatalf("Top(100) = %d items", got)
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	ss, _ := NewSpaceSaving(100)
	for i := 0; i < 50; i++ {
		ss.Add([]byte(fmt.Sprintf("k%d", i%10)), 1)
	}
	for _, it := range ss.Top(10) {
		if it.Count != 5 || it.Err != 0 {
			t.Fatalf("under-capacity counts must be exact: %+v", it)
		}
	}
}

// Property: count-min estimates dominate true counts for arbitrary
// streams.
func TestQuickCountMinDominance(t *testing.T) {
	f := func(stream [][]byte) bool {
		cm, err := NewCountMin(256, 3)
		if err != nil {
			return false
		}
		truth := map[string]uint64{}
		for _, k := range stream {
			cm.Add(k, 1)
			truth[string(k)]++
		}
		for k, want := range truth {
			if cm.Estimate([]byte(k)) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm, _ := NewCountMin(1<<16, 4)
	key := []byte("benchmark-key-with-realistic-length")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.Add(key, 1)
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	ss, _ := NewSpaceSaving(1024)
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("obj-%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ss.Add(keys[i%len(keys)], 1)
	}
}
