// Benchmarks regenerating every figure of the paper's evaluation (§V).
// Each BenchmarkFigNN target runs the corresponding experiment end to end
// at bench scale; run the cmd/habfbench binary for full-scale tables.
//
//	go test -bench=Fig -benchmem
package habf_test

import (
	"bytes"
	"io"
	"strconv"
	"sync/atomic"
	"testing"

	habf "repro"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
	wl "repro/internal/workload"
)

// benchCfg keeps figure benchmarks in the hundreds-of-milliseconds range.
var benchCfg = experiments.Config{Scale: 0.1, Seed: 1}

func runFig(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchCfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08TheoreticBound(b *testing.B) { runFig(b, "fig08") }
func BenchmarkFig09Parameters(b *testing.B)     { runFig(b, "fig09") }
func BenchmarkFig10UniformFPR(b *testing.B)     { runFig(b, "fig10") }
func BenchmarkFig11SkewedFPR(b *testing.B)      { runFig(b, "fig11") }
func BenchmarkFig12ConstructionAndQuery(b *testing.B) {
	runFig(b, "fig12")
}
func BenchmarkFig13Skewness(b *testing.B)  { runFig(b, "fig13") }
func BenchmarkFig14HashImpls(b *testing.B) { runFig(b, "fig14") }
func BenchmarkFig15Memory(b *testing.B)    { runFig(b, "fig15") }
func BenchmarkAblations(b *testing.B)      { runFig(b, "abl") }
func BenchmarkRelatedWork(b *testing.B)    { runFig(b, "rel") }
func BenchmarkLSMScenario(b *testing.B)    { runFig(b, "lsm") }
func BenchmarkIncremental(b *testing.B)    { runFig(b, "incr") }

// --- Micro-benchmarks: per-operation costs underlying Fig. 12 ---

type fixtures struct {
	pos   [][]byte
	neg   [][]byte
	wneg  []habf.WeightedKey
	costs []float64
}

func loadFixtures(n int) fixtures {
	p := dataset.Shalla(n, n, 1)
	costs := dataset.ZipfCosts(n, 1.0, 1)
	fx := fixtures{pos: p.Positives, neg: p.Negatives, costs: costs}
	fx.wneg = make([]habf.WeightedKey, n)
	for i := range fx.wneg {
		fx.wneg[i] = habf.WeightedKey{Key: p.Negatives[i], Cost: costs[i]}
	}
	return fx
}

func benchBuild(b *testing.B, build func(fx fixtures) (metrics.Filter, error)) {
	fx := loadFixtures(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := build(fx)
		if err != nil {
			b.Fatal(err)
		}
		_ = f
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/20000, "ns/key")
}

func BenchmarkConstructHABF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.New(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	})
}

func BenchmarkConstructFastHABF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewFast(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	})
}

func BenchmarkConstructBF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewBloom(fx.pos, 10, habf.BloomCorpus)
	})
}

func BenchmarkConstructXor(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewXor(fx.pos, 10)
	})
}

func BenchmarkConstructWBF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewWBF(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	})
}

func BenchmarkConstructLBF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewLBF(fx.pos, fx.neg, uint64(10*len(fx.pos)))
	})
}

func BenchmarkConstructPHBF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewPHBF(fx.pos, uint64(10*len(fx.pos)))
	})
}

func BenchmarkConstructSLBF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewSLBF(fx.pos, fx.neg, uint64(10*len(fx.pos)))
	})
}

func BenchmarkConstructAdaBF(b *testing.B) {
	benchBuild(b, func(fx fixtures) (metrics.Filter, error) {
		return habf.NewAdaBF(fx.pos, fx.neg, uint64(10*len(fx.pos)))
	})
}

func benchQuery(b *testing.B, f metrics.Filter, probes [][]byte) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		if f.Contains(probes[i%len(probes)]) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkQueryHABF(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.New(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("negative", func(b *testing.B) { benchQuery(b, f, fx.neg) })
	b.Run("positive", func(b *testing.B) { benchQuery(b, f, fx.pos) })
}

func BenchmarkQueryFastHABF(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.NewFast(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("negative", func(b *testing.B) { benchQuery(b, f, fx.neg) })
	b.Run("positive", func(b *testing.B) { benchQuery(b, f, fx.pos) })
}

func BenchmarkQueryBF(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.NewBloom(fx.pos, 10, habf.BloomCorpus)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("negative", func(b *testing.B) { benchQuery(b, f, fx.neg) })
	b.Run("positive", func(b *testing.B) { benchQuery(b, f, fx.pos) })
}

func BenchmarkQueryXor(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.NewXor(fx.pos, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("negative", func(b *testing.B) { benchQuery(b, f, fx.neg) })
	b.Run("positive", func(b *testing.B) { benchQuery(b, f, fx.pos) })
}

func BenchmarkQueryLBF(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.NewLBF(fx.pos, fx.neg, uint64(12*len(fx.pos)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("negative", func(b *testing.B) { benchQuery(b, f, fx.neg) })
	b.Run("positive", func(b *testing.B) { benchQuery(b, f, fx.pos) })
}

func BenchmarkQueryWBF(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.NewWBF(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("negative", func(b *testing.B) { benchQuery(b, f, fx.neg) })
	b.Run("positive", func(b *testing.B) { benchQuery(b, f, fx.pos) })
}

func BenchmarkQueryPHBF(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.NewPHBF(fx.pos, uint64(10*len(fx.pos)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("negative", func(b *testing.B) { benchQuery(b, f, fx.neg) })
	b.Run("positive", func(b *testing.B) { benchQuery(b, f, fx.pos) })
}

// --- Serving-layer benchmarks: sharding and batching ---

// zipfProbes builds a deterministic zipf-skewed probe stream mixing
// positives and known negatives, the shape of real serving traffic.
func zipfProbes(b *testing.B, fx fixtures, n int) [][]byte {
	b.Helper()
	probes, err := wl.MixProbes(wl.Zipfian, 42, n, fx.pos, fx.neg)
	if err != nil {
		b.Fatal(err)
	}
	return probes
}

// BenchmarkShardedContainsBatch compares single-process query throughput
// of per-key Contains against the sharded batch path on a zipfian
// workload. ns/op is per key in every sub-benchmark.
func BenchmarkShardedContainsBatch(b *testing.B) {
	fx := loadFixtures(20000)
	bits := uint64(10 * len(fx.pos))
	single, err := habf.New(fx.pos, fx.wneg, bits)
	if err != nil {
		b.Fatal(err)
	}
	sharded, err := habf.NewSharded(fx.pos, fx.wneg, bits, habf.WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	probes := zipfProbes(b, fx, 1<<16)
	mask := len(probes) - 1

	b.Run("single/perkey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = single.Contains(probes[i&mask])
		}
	})
	b.Run("single/batch256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += 256 {
			lo := i & mask
			_ = single.ContainsBatch(probes[lo : lo+256])
		}
	})
	b.Run("sharded/perkey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sharded.Contains(probes[i&mask])
		}
	})
	b.Run("sharded/batch256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += 256 {
			lo := i & mask
			_ = sharded.ContainsBatch(probes[lo : lo+256])
		}
	})
	b.Run("sharded/batch256/into", func(b *testing.B) {
		// The zero-alloc variant: a serving loop's reused result buffer.
		b.ReportAllocs()
		dst := make([]bool, 256)
		for i := 0; i < b.N; i += 256 {
			lo := i & mask
			sharded.ContainsBatchInto(dst, probes[lo:lo+256])
		}
	})
	b.Run("sharded/perkey/parallel", func(b *testing.B) {
		// The uncoalesced per-request serving path: ≥8 concurrent
		// clients each querying one key at a time (per-key shard lock,
		// per-call setup). Contrast with batch256/parallel below — same
		// concurrency, one lock round per 256 keys — which is the path
		// the habfserved coalescer puts independent single-key network
		// callers on.
		b.ReportAllocs()
		b.SetParallelism(8)
		var ctr atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(ctr.Add(1))
				_ = sharded.Contains(probes[i&mask])
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mkeys/s")
	})
	b.Run("sharded/batch256/parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				lo := (i * 256) & mask
				_ = sharded.ContainsBatch(probes[lo : lo+256])
				i++
			}
		})
		b.ReportMetric(float64(b.N)*256/b.Elapsed().Seconds()/1e6, "Mkeys/s")
	})
}

// BenchmarkShardedConstruct measures the parallel-build win at
// construction time.
func BenchmarkShardedConstruct(b *testing.B) {
	fx := loadFixtures(20000)
	bits := uint64(10 * len(fx.pos))
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := habf.New(fx.pos, fx.wneg, bits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := habf.NewSharded(fx.pos, fx.wneg, bits, habf.WithShards(8)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSerializeHABF measures MarshalBinary/UnmarshalHABF roundtrips.
func BenchmarkSerializeHABF(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.New(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	data, _ := f.MarshalBinary()
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := habf.UnmarshalHABF(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedRestore pins the point of the snapshot subsystem:
// restoring a 1M-key sharded filter from a snapshot vs constructing it.
// The acceptance bar is restore ≥ 10× faster than build; in practice the
// zero-copy load is orders of magnitude faster (checksum scan + header
// decode, no key hashing at all). The restored filter is contract-checked
// against a member sample every iteration so the speed is not bought with
// a lazy (non-serving) load.
func BenchmarkShardedRestore(b *testing.B) {
	const nKeys = 1 << 20
	pos := make([][]byte, nKeys)
	for i := range pos {
		pos[i] = []byte("restore-key-" + strconv.Itoa(i))
	}
	bits := uint64(10 * nKeys)
	build := func(b *testing.B) *habf.Sharded {
		s, err := habf.NewSharded(pos, nil, bits,
			habf.WithShards(8), habf.WithFastShards())
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := build(b)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Logf("snapshot: %.1f MiB for %d keys", float64(len(data))/(1<<20), nKeys)

	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = build(b)
		}
	})
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := habf.Load(data)
			if err != nil {
				b.Fatal(err)
			}
			// Zero-false-negative spot check on a stride of members: the
			// restored filter must be serving, not lazily decoded.
			for j := 0; j < nKeys; j += nKeys / 64 {
				if !g.Contains(pos[j]) {
					b.Fatalf("restored filter lost member %d", j)
				}
			}
		}
	})
	b.Run("save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var w countingDiscard
			if err := s.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// countingDiscard is an io.Writer sink that cannot be optimized away.
type countingDiscard struct{ n int64 }

func (w *countingDiscard) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// BenchmarkWeightedFPRScan measures the measurement itself (used inside
// every accuracy experiment).
func BenchmarkWeightedFPRScan(b *testing.B) {
	fx := loadFixtures(20000)
	f, err := habf.New(fx.pos, fx.wneg, uint64(10*len(fx.pos)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := habf.WeightedFPR(f, fx.neg, fx.costs); err != nil {
			b.Fatal(err)
		}
	}
}

// sink prevents dead-code elimination across benchmarks.
var sink = strconv.Itoa(0)
