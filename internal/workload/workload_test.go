package workload

import (
	"bytes"
	"testing"
)

func TestDeterminismPerSeed(t *testing.T) {
	for _, dist := range Distributions() {
		a, err := New(dist, 1000, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := New(dist, 1000, 42)
		c, _ := New(dist, 1000, 43)
		same, diff := true, true
		for i := 0; i < 4096; i++ {
			x, y, z := a.Next(), b.Next(), c.Next()
			if x != y {
				same = false
			}
			if x != z {
				diff = false
			}
		}
		if !same {
			t.Errorf("%s: same seed produced different streams", dist)
		}
		if dist != Sequential && diff {
			t.Errorf("%s: different seeds produced identical streams", dist)
		}
	}
}

func TestBounds(t *testing.T) {
	for _, dist := range Distributions() {
		for _, n := range []int{1, 7, 1000} {
			g, err := New(dist, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				if idx := g.Next(); idx < 0 || idx >= n {
					t.Fatalf("%s n=%d: index %d out of range", dist, n, idx)
				}
			}
		}
	}
}

func TestSequentialCycles(t *testing.T) {
	g, _ := New(Sequential, 5, 1)
	want := []int{0, 1, 2, 3, 4, 0, 1}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("draw %d: got %d want %d", i, got, w)
		}
	}
}

func TestZipfianIsSkewedTowardLowIndices(t *testing.T) {
	g, _ := New(Zipfian, 10000, 7)
	const draws = 50000
	top := 0
	for i := 0; i < draws; i++ {
		if g.Next() < 100 { // hottest 1% of the key space
			top++
		}
	}
	// Under uniform the expectation is 1%; zipf(1.1) concentrates far
	// more. Use a loose floor so the test pins skew, not exact mass.
	if frac := float64(top) / draws; frac < 0.25 {
		t.Fatalf("hottest 1%% of keys drew only %.1f%% of accesses, want skew", 100*frac)
	}
}

func TestLatestIsSkewedTowardHighIndices(t *testing.T) {
	g, _ := New(Latest, 10000, 7)
	const draws = 50000
	recent := 0
	for i := 0; i < draws; i++ {
		if g.Next() >= 9000 { // newest 10% of the key space
			recent++
		}
	}
	if frac := float64(recent) / draws; frac < 0.5 {
		t.Fatalf("newest 10%% of keys drew only %.1f%% of accesses, want recency skew", 100*frac)
	}
}

func TestFill(t *testing.T) {
	g, _ := New(Uniform, 100, 3)
	h, _ := New(Uniform, 100, 3)
	batch := make([]int, 256)
	g.Fill(batch)
	for i := range batch {
		if want := h.Next(); batch[i] != want {
			t.Fatalf("Fill[%d] = %d, want %d", i, batch[i], want)
		}
	}
}

func TestKeysDeterministicAndUnique(t *testing.T) {
	a := Keys(500, 1)
	b := Keys(500, 1)
	seen := map[string]bool{}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("Keys not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
		if seen[string(a[i])] {
			t.Fatalf("duplicate key %q", a[i])
		}
		seen[string(a[i])] = true
	}
}

func TestMixProbes(t *testing.T) {
	pos := [][]byte{[]byte("p0"), []byte("p1"), []byte("p2")}
	neg := [][]byte{[]byte("n0"), []byte("n1"), []byte("n2"), []byte("n3"), []byte("n4")}
	a, err := MixProbes(Zipfian, 7, 100, pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MixProbes(Zipfian, 7, 100, pos, neg)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("MixProbes not deterministic at %d", i)
		}
		want := byte('n')
		if i%2 == 1 {
			want = 'p'
		}
		if a[i][0] != want {
			t.Fatalf("position %d: got %q, want prefix %q", i, a[i], want)
		}
	}
	if _, err := MixProbes(Zipfian, 7, 10, nil, neg); err == nil {
		t.Fatal("MixProbes accepted empty positives")
	}
	if _, err := MixProbes("hotspot", 7, 10, pos, neg); err == nil {
		t.Fatal("MixProbes accepted unknown distribution")
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	if _, err := Parse("hotspot"); err == nil {
		t.Fatal("Parse accepted unknown distribution")
	}
	if _, err := New("hotspot", 10, 1); err == nil {
		t.Fatal("New accepted unknown distribution")
	}
	if _, err := New(Uniform, 0, 1); err == nil {
		t.Fatal("New accepted zero keys")
	}
}
