// Package habf implements the paper's primary contribution: the Hash
// Adaptive Bloom Filter (HABF) and its fast variant f-HABF.
//
// An HABF is a standard Bloom filter plus a compact probabilistic hash
// table (HashExpressor) that stores customized hash-function selections for
// the few positive keys whose initial selection collides with costly
// negative keys. Construction runs the Two-Phase Joint Optimization (TPJO)
// algorithm of §III-D; queries follow the two-round pattern of §III-E and
// never produce false negatives.
package habf

import (
	"fmt"
	"math"

	"repro/internal/hashes"
)

// WeightedKey is a negative key together with its misidentification cost
// Θ(e). Costs must be non-negative; uniform costs reduce the weighted FPR
// to the ordinary FPR (Eq. 1).
type WeightedKey struct {
	Key  []byte
	Cost float64
}

// Params configures HABF construction. The zero value is not usable; call
// (Params).withDefaults via New, which fills in every unset field with the
// paper's defaults (§V-D): k=3, cell size 4 bits, Δ=0.25.
type Params struct {
	// TotalBits is the overall space budget Δ1+Δ2 for HashExpressor plus
	// Bloom filter, in bits. Required.
	TotalBits uint64
	// K is the number of hash functions per key. Default 3.
	K int
	// CellBits is the HashExpressor cell size in bits (endbit + hashindex).
	// A cell of α bits can address 2^(α-1)-1 corpus functions. Default 4.
	CellBits uint
	// SpaceRatio is Δ = Δ1/Δ2, the HashExpressor:Bloom split. Default 0.25
	// (1:4), the optimum found in Fig. 9(a).
	SpaceRatio float64
	// Seed drives every random choice in construction (H0 selection, V
	// insertion order). Two builds with equal inputs and seeds are
	// identical. Default 1.
	Seed int64
	// Fast selects f-HABF (§III-G): hash values are simulated by double
	// hashing from two base hashes, and the Γ conflict index is disabled.
	Fast bool

	// Ablation switches (all default off; see DESIGN.md §6).

	// DisableGamma turns off Γ conflict detection without switching to
	// double hashing (isolates f-HABF's accuracy loss).
	DisableGamma bool
	// DisableOverlapRanking disables the maximize-cell-overlap tie-break
	// when several candidate adjustments are insertable.
	DisableOverlapRanking bool
	// DisableCostOrdering processes the collision queue FIFO instead of
	// highest-cost-first.
	DisableCostOrdering bool
}

// maxAdjustAttempts bounds how many times one negative key may re-enter
// the collision queue after being broken by later adjustments, preventing
// livelock between equal-cost keys.
const maxAdjustAttempts = 4

func (p Params) withDefaults() Params {
	if p.K == 0 {
		p.K = 3
	}
	if p.CellBits == 0 {
		p.CellBits = 4
	}
	if p.SpaceRatio == 0 {
		p.SpaceRatio = 0.25
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Fast {
		p.DisableGamma = true
	}
	return p
}

// Validate checks the hashing-relevant fields (K, CellBits, SpaceRatio,
// after defaulting) without requiring a space budget — the exported form
// for callers that build Params from untrusted input, like a snapshot
// restore, where TotalBits is derived later per shard.
func (p Params) Validate() error {
	p.TotalBits = 1024 // placeholder; budget is validated where it is set
	return p.withDefaults().validate()
}

func (p Params) validate() error {
	if p.TotalBits < 64 {
		return fmt.Errorf("habf: TotalBits = %d too small", p.TotalBits)
	}
	if p.CellBits < 3 || p.CellBits > 6 {
		return fmt.Errorf("habf: CellBits = %d out of range [3,6]", p.CellBits)
	}
	usable := usableFunctions(p.CellBits, p.Fast)
	if p.K < 2 || p.K > usable {
		return fmt.Errorf("habf: K = %d out of range [2,%d] for cell size %d", p.K, usable, p.CellBits)
	}
	if p.SpaceRatio <= 0 || p.SpaceRatio >= 1 {
		return fmt.Errorf("habf: SpaceRatio = %v out of range (0,1)", p.SpaceRatio)
	}
	return nil
}

// usableFunctions returns the size of the effective hash family: the cell's
// hashindex field has CellBits-1 bits and reserves 0 for "empty", so only
// 2^(CellBits-1)-1 functions are addressable (§V-D3). The slow variant is
// additionally limited by the 22-function corpus of Table II.
func usableFunctions(cellBits uint, fast bool) int {
	byCell := (1 << (cellBits - 1)) - 1
	if fast {
		return byCell
	}
	if c := hashes.CorpusSize(); c < byCell {
		return c
	}
	return byCell
}

// split derives the HashExpressor and Bloom filter sizes from the budget:
// Δ1 = Total·Δ/(1+Δ), Δ2 = Total/(1+Δ).
func (p Params) split() (heBits, bfBits uint64) {
	d1 := float64(p.TotalBits) * p.SpaceRatio / (1 + p.SpaceRatio)
	heBits = uint64(math.Round(d1))
	if heBits < uint64(p.CellBits) {
		heBits = uint64(p.CellBits)
	}
	if heBits >= p.TotalBits {
		heBits = p.TotalBits / 2
	}
	bfBits = p.TotalBits - heBits
	return heBits, bfBits
}
