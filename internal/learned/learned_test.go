package learned

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
)

func shallaSmall() ([][]byte, [][]byte) {
	p := dataset.Shalla(6000, 6000, 1)
	return p.Positives, p.Negatives
}

func ycsbSmall() ([][]byte, [][]byte) {
	p := dataset.YCSB(6000, 6000, 1)
	return p.Positives, p.Negatives
}

// auc estimates the ranking quality of a model: probability that a random
// positive outscores a random negative (sampled pairing).
func auc(m Model, pos, neg [][]byte) float64 {
	wins, ties, n := 0.0, 0.0, 0
	for i := 0; i < len(pos) && i < len(neg); i++ {
		sp, sn := m.Score(pos[i]), m.Score(neg[i])
		switch {
		case sp > sn:
			wins++
		case sp == sn:
			ties++
		}
		n++
	}
	return (wins + ties/2) / float64(n)
}

func TestLogisticLearnsStructuredKeys(t *testing.T) {
	pos, neg := shallaSmall()
	m := TrainLogistic(pos, neg, TrainConfig{})
	if got := auc(m, pos, neg); got < 0.80 {
		t.Errorf("AUC on Shalla = %.3f, want >= 0.80 (dataset has evident characteristics)", got)
	}
}

func TestLogisticCannotLearnRandomKeys(t *testing.T) {
	// On training keys the model can memorize trigram buckets even of
	// random keys, so generalization is what distinguishes the datasets:
	// train on half, measure AUC on the held-out half.
	pos, neg := ycsbSmall()
	m := TrainLogistic(pos[:3000], neg[:3000], TrainConfig{})
	got := auc(m, pos[3000:], neg[3000:])
	if got > 0.60 || got < 0.40 {
		t.Errorf("holdout AUC on YCSB = %.3f; random keys should be unlearnable (≈0.5)", got)
	}
	// Contrast: Shalla holdout AUC stays high.
	sp, sn := shallaSmall()
	ms := TrainLogistic(sp[:3000], sn[:3000], TrainConfig{})
	if g := auc(ms, sp[3000:], sn[3000:]); g < 0.75 {
		t.Errorf("holdout AUC on Shalla = %.3f, want >= 0.75", g)
	}
}

func TestMLPLearnsStructuredKeys(t *testing.T) {
	pos, neg := shallaSmall()
	m := TrainMLP(pos[:3000], neg[:3000], 16, TrainConfig{Epochs: 2})
	if got := auc(m, pos[3000:], neg[3000:]); got < 0.75 {
		t.Errorf("MLP holdout AUC on Shalla = %.3f, want >= 0.75", got)
	}
}

func TestModelSizes(t *testing.T) {
	pos, neg := shallaSmall()
	lg := TrainLogistic(pos[:500], neg[:500], TrainConfig{Epochs: 1})
	if lg.SizeBits() != (featureDim+1)*32 {
		t.Errorf("logistic SizeBits = %d", lg.SizeBits())
	}
	mlp := TrainMLP(pos[:500], neg[:500], 8, TrainConfig{Epochs: 1})
	want := uint64(featureDim*8+8+8+1) * 32
	if mlp.SizeBits() != want {
		t.Errorf("MLP SizeBits = %d, want %d", mlp.SizeBits(), want)
	}
}

func TestScoreRange(t *testing.T) {
	pos, neg := shallaSmall()
	m := TrainLogistic(pos[:2000], neg[:2000], TrainConfig{})
	for _, k := range append(pos[:100], neg[:100]...) {
		s := m.Score(k)
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of [0,1] for %q", s, k)
		}
	}
	if m.Score(nil) < 0 || m.Score(nil) > 1 {
		t.Fatal("empty key score out of range")
	}
}

func TestFeaturizeStability(t *testing.T) {
	key := []byte("http://casino-bet42.com/index/7")
	a := featurize(key, nil)
	b := featurize(key, nil)
	if len(a) != len(b) {
		t.Fatal("featurize not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("featurize not deterministic")
		}
	}
	for _, idx := range a {
		if int(idx) >= featureDim {
			t.Fatalf("feature index %d out of range", idx)
		}
	}
}

func testAllLearnedZeroFNR(t *testing.T, build func(pos, neg [][]byte, bits uint64) (interface {
	Contains([]byte) bool
	Name() string
	SizeBits() uint64
}, error)) {
	t.Helper()
	pos, neg := shallaSmall()
	budget := uint64(len(pos)) * 12
	f, err := build(pos, neg, budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatalf("%s: false negative for %q", f.Name(), k)
		}
	}
	// Budget adherence (allow ~2% slack for word alignment).
	if f.SizeBits() > budget+budget/50+512 {
		t.Errorf("%s: SizeBits %d exceeds budget %d", f.Name(), f.SizeBits(), budget)
	}
	// It must actually filter: a majority of known negatives rejected.
	fp := 0
	for _, k := range neg {
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(len(neg))
	if rate > 0.2 {
		t.Errorf("%s: FPR on known negatives %.3f, not a useful filter", f.Name(), rate)
	}
	t.Logf("%s: FPR %.4f, size %d bits (budget %d)", f.Name(), rate, f.SizeBits(), budget)
}

func TestLBFZeroFNR(t *testing.T) {
	testAllLearnedZeroFNR(t, func(p, n [][]byte, b uint64) (interface {
		Contains([]byte) bool
		Name() string
		SizeBits() uint64
	}, error) {
		return NewLBF(p, n, b, TrainConfig{})
	})
}

func TestSLBFZeroFNR(t *testing.T) {
	testAllLearnedZeroFNR(t, func(p, n [][]byte, b uint64) (interface {
		Contains([]byte) bool
		Name() string
		SizeBits() uint64
	}, error) {
		return NewSLBF(p, n, b, TrainConfig{})
	})
}

func TestAdaBFZeroFNR(t *testing.T) {
	testAllLearnedZeroFNR(t, func(p, n [][]byte, b uint64) (interface {
		Contains([]byte) bool
		Name() string
		SizeBits() uint64
	}, error) {
		return NewAdaBF(p, n, b, TrainConfig{})
	})
}

func TestBudgetTooSmallForModel(t *testing.T) {
	pos, neg := shallaSmall()
	if _, err := NewLBF(pos[:100], neg[:100], 1000, TrainConfig{}); err == nil {
		t.Error("budget below model size accepted (LBF)")
	}
	if _, err := NewSLBF(pos[:100], neg[:100], 1000, TrainConfig{}); err == nil {
		t.Error("budget below model size accepted (SLBF)")
	}
	if _, err := NewAdaBF(pos[:100], neg[:100], 1000, TrainConfig{}); err == nil {
		t.Error("budget below model size accepted (Ada-BF)")
	}
}

func TestLearnedBeatsBloomOnStructuredKeys(t *testing.T) {
	// The paper's Fig. 10(b): with evident characteristics and a modest
	// budget, learned filters reach lower FPR than the plain Bloom filter.
	pos, neg := shallaSmall()
	budget := uint64(len(pos)) * 8
	lbf, err := NewLBF(pos, neg, budget, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	for _, k := range neg {
		if lbf.Contains(k) {
			fp++
		}
	}
	lbfFPR := float64(fp) / float64(len(neg))
	bloomFPR := 0.0216 // (1-e^-k/b)^k at b=8,k=6 ≈ 2.16%
	t.Logf("LBF FPR %.4f vs theoretical BF %.4f at 8 bits/key", lbfFPR, bloomFPR)
	if lbfFPR > bloomFPR*2 {
		t.Errorf("LBF FPR %.4f not competitive with Bloom %.4f on structured keys", lbfFPR, bloomFPR)
	}
}

func TestAdaBFGroups(t *testing.T) {
	pos, neg := shallaSmall()
	a, err := NewAdaBF(pos, neg, uint64(len(pos))*12, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.boundaries) != adaGroups-1 || len(a.ks) != adaGroups {
		t.Fatalf("groups misconfigured: %d boundaries, %d ks", len(a.boundaries), len(a.ks))
	}
	for g := 1; g < adaGroups; g++ {
		if a.ks[g] > a.ks[g-1] {
			t.Errorf("hash count must not increase with score: ks=%v", a.ks)
		}
	}
	for i := 1; i < len(a.boundaries); i++ {
		if a.boundaries[i] < a.boundaries[i-1] {
			t.Errorf("boundaries not ascending: %v", a.boundaries)
		}
	}
}

func BenchmarkTrainLogistic(b *testing.B) {
	p := dataset.Shalla(5000, 5000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TrainLogistic(p.Positives, p.Negatives, TrainConfig{})
	}
}

func BenchmarkLBFContains(b *testing.B) {
	p := dataset.Shalla(5000, 5000, 1)
	f, err := NewLBF(p.Positives, p.Negatives, 5000*12, TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains(p.Negatives[i%len(p.Negatives)])
	}
}

func ExampleNewLBF() {
	p := dataset.Shalla(2000, 2000, 1)
	f, err := NewLBF(p.Positives, p.Negatives, 2000*16, TrainConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Println(f.Contains(p.Positives[0]))
	// Output: true
}
