package filtercore

import (
	"repro/internal/habf"
	"repro/internal/phbf"
)

// phbfBackend adapts the partitioned-hashing Bloom filter of Hao et al.
// (SIGMETRICS 2007) — the closest prior work to HABF — to the Backend
// interface. It is static: the greedy per-group seed selection is a
// whole-set optimization that cannot absorb inserts, so Add returns
// ErrStaticBackend and the shard layer buffers the key as pending until
// a rebuild re-runs the greedy over the full key set.
type phbfBackend struct {
	f *phbf.Filter
}

var _ Backend = (*phbfBackend)(nil)
var _ PreparedQuerier = (*phbfBackend)(nil)

func (b *phbfBackend) Contains(key []byte) bool       { return b.f.Contains(key) }
func (b *phbfBackend) Add([]byte) error               { return ErrStaticBackend }
func (b *phbfBackend) AddedKeys() uint64              { return 0 }
func (b *phbfBackend) Name() string                   { return b.f.Name() }
func (b *phbfBackend) SizeBits() uint64               { return b.f.SizeBits() }
func (b *phbfBackend) Kind() Kind                     { return KindPHBF }
func (b *phbfBackend) MarshalBinary() ([]byte, error) { return b.f.MarshalBinary() }
func (b *phbfBackend) WireAlignOffset() int           { return phbf.WireAlignOffset(b.f.Groups()) }
func (b *phbfBackend) Borrowed() bool                 { return b.f.Borrowed() }

func (b *phbfBackend) ContainsBatch(keys [][]byte) []bool {
	return containsBatchSerial(b, keys)
}

// ContainsBatchInto implements PreparedQuerier: group selection and all
// probe positions derive from the shared base hash.
func (b *phbfBackend) ContainsBatchInto(dst []bool, keys [][]byte, hashes []uint64) {
	if hashes == nil {
		containsBatchSerialInto(b, dst, keys)
		return
	}
	for i, h := range hashes[:len(keys)] {
		dst[i] = b.f.ContainsHash(h)
	}
}

func init() {
	Register(Factory{
		Name:      "phbf",
		Kind:      KindPHBF,
		Static:    true,
		InnerName: func(habf.Params) string { return "PHBF" },
		TuningSchema: NewSchema(
			Knob{Name: "groups", Type: KnobInt, Min: 0, Max: 65536,
				Default: "0", Doc: "key partitions, each with its own greedily chosen seed; 0 means 64"},
			Knob{Name: "candidates", Type: KnobInt, Min: 0, Max: 1024,
				Default: "0", Doc: "candidate seeds tried per group by the greedy selection; 0 means 8"},
			Knob{Name: "absorb", Type: KnobInt, Min: 0, Max: 1 << 20,
				Default: "4096", Doc: "pending keys on a restored shard that trigger a background absorb into a mutable sidecar; 0 disables"},
		),
		Build: func(positives [][]byte, _ []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			f, err := phbf.New(positives, phbf.Config{
				TotalBits:  cfg.TotalBits,
				Groups:     cfg.Tuning.Int("groups"),
				Candidates: cfg.Tuning.Int("candidates"),
			})
			if err != nil {
				return nil, err
			}
			return &phbfBackend{f: f}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := phbf.UnmarshalFilter(data)
			if err != nil {
				return nil, err
			}
			return &phbfBackend{f: f}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := phbf.UnmarshalFilterBorrow(data)
			if err != nil {
				return nil, err
			}
			return &phbfBackend{f: f}, nil
		},
	})
}
