package habf

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitset"
)

// builder carries the construction-time state of the TPJO algorithm
// (§III-D): the Bloom bit array, the HashExpressor, and the two runtime
// auxiliary indexes V (single-mapped bit index) and Γ (optimized-key
// buckets). It is discarded after Build; only the query-time Filter
// survives, which is what gives HABF its small resident footprint and its
// larger construction footprint (Fig. 15).
type builder struct {
	p   Params
	fam *family
	rng *rand.Rand

	m  uint64 // Bloom bits
	bf *bitset.Bits
	he *hashExpressor
	h0 []uint8 // the initial selection H0 (function indices)

	positives [][]byte
	negatives []WeightedKey

	posState []keyState // prepared hashing context per positive key
	negState []keyState
	posH0    []uint64 // k positions per positive key under H0 (flat)
	negH0    []uint64 // k positions per negative key under H0 (flat)

	// V: per Bloom bit, singleflag + the id of the first mapping key.
	vSingle *bitset.Bits
	vKey    []int32 // -1 = NULL

	// Γ: buckets of optimized negative keys, keyed by bit position.
	gamma     map[uint64][]int32
	optimized []bool // negative key currently tests negative after opt.
	inGamma   []bool
	attempts  []uint8

	// Adjusted positive keys and their customized selections.
	adjusted []bool
	phis     map[int32][]uint8

	// pendingVictims collects re-broken optimized keys for the main loop
	// to push onto the collision queue tail.
	pendingVictims []int32

	stats Stats
}

// Stats reports what TPJO did during construction.
type Stats struct {
	// CollisionKeys is T, the initial size of the collision queue.
	CollisionKeys int
	// Optimized is t, collision keys that end up testing negative. It can
	// exceed CollisionKeys: the end-of-construction repair rounds also
	// optimize negatives that only became collision keys through a later
	// adjustment and therefore never entered the initial queue.
	Optimized int
	// Failed counts collision keys that could not be optimized.
	Failed int
	// Requeued counts re-broken optimized keys pushed back to the queue.
	Requeued int
	// AdjustedPositives counts positive keys whose selection was changed.
	AdjustedPositives int
	// HashExpressorInserts is the number of stored selections.
	HashExpressorInserts uint64
	// FPRBefore and FPRAfter are the unweighted Bloom FPRs over the given
	// negative set before and after optimization (Fbf and F*bf of §IV-B).
	FPRBefore, FPRAfter float64
	// WeightedFPRBefore and WeightedFPRAfter weight the same measurements
	// by key cost (Eq. 1).
	WeightedFPRBefore, WeightedFPRAfter float64
}

func newBuilder(positives [][]byte, negatives []WeightedKey, p Params) *builder {
	b := &builder{
		p:         p,
		fam:       newFamily(p),
		rng:       rand.New(rand.NewSource(p.Seed)),
		positives: positives,
		negatives: negatives,
		gamma:     make(map[uint64][]int32),
		phis:      make(map[int32][]uint8),
	}
	heBits, bfBits := p.split()
	b.m = bfBits
	b.bf = bitset.New(b.m)
	b.he = newHashExpressor(heBits, p.CellBits, p.K)

	// H0: a random k-subset of the usable family, shared by all keys.
	perm := b.rng.Perm(b.fam.size)
	b.h0 = make([]uint8, p.K)
	for i := 0; i < p.K; i++ {
		b.h0[i] = uint8(perm[i])
	}
	sort.Slice(b.h0, func(i, j int) bool { return b.h0[i] < b.h0[j] })
	return b
}

// prepareKeys computes hashing contexts and H0 positions for every key.
func (b *builder) prepareKeys() {
	k := b.p.K
	b.posState = make([]keyState, len(b.positives))
	b.posH0 = make([]uint64, len(b.positives)*k)
	for i, key := range b.positives {
		b.posState[i] = b.fam.prepare(key)
		for s, idx := range b.h0 {
			b.posH0[i*k+s] = b.fam.pos(b.posState[i], idx, b.m)
		}
	}
	b.negState = make([]keyState, len(b.negatives))
	b.negH0 = make([]uint64, len(b.negatives)*k)
	for j := range b.negatives {
		b.negState[j] = b.fam.prepare(b.negatives[j].Key)
		for s, idx := range b.h0 {
			b.negH0[j*k+s] = b.fam.pos(b.negState[j], idx, b.m)
		}
	}
}

// initBloomAndV inserts all positives with H0 and builds the V index in a
// random order (§III-D, Fig. 4).
func (b *builder) initBloomAndV() {
	k := b.p.K
	for i := range b.positives {
		for s := 0; s < k; s++ {
			b.bf.Set(b.posH0[i*k+s])
		}
	}
	b.vSingle = bitset.New(b.m)
	for i := uint64(0); i < b.m; i++ {
		b.vSingle.Set(i) // singleflag initialized to 1
	}
	b.vKey = make([]int32, b.m)
	for i := range b.vKey {
		b.vKey[i] = -1
	}
	for _, i := range b.rng.Perm(len(b.positives)) {
		for s := 0; s < k; s++ {
			b.vInsert(int32(i), b.posH0[i*k+s])
		}
	}
}

// vInsert applies the three V-update cases of Fig. 4 for key id mapping to
// unit pos.
func (b *builder) vInsert(id int32, pos uint64) {
	switch {
	case b.vSingle.Test(pos) && b.vKey[pos] == -1:
		b.vKey[pos] = id // Case 1: first mapping
	case b.vSingle.Test(pos):
		b.vSingle.Clear(pos) // Case 2: second mapping
	default:
		// Case 3: already multi-mapped; nothing changes.
	}
}

// testNegativePositions reports whether negative key j currently passes the
// Bloom check under H0 (i.e. is a collision key).
func (b *builder) negTestsPositive(j int32) bool {
	k := b.p.K
	for s := 0; s < k; s++ {
		if !b.bf.Test(b.negH0[int(j)*k+s]) {
			return false
		}
	}
	return true
}

// buildCollisionQueue gathers all colliding negatives, highest cost first
// (the paper optimizes costly keys first because HashExpressor insertion
// gets harder as it fills).
func (b *builder) buildCollisionQueue() []int32 {
	cq := make([]int32, 0, len(b.negatives)/8+1)
	for j := range b.negatives {
		if b.negTestsPositive(int32(j)) {
			cq = append(cq, int32(j))
		}
	}
	if !b.p.DisableCostOrdering {
		sort.SliceStable(cq, func(x, y int) bool {
			return b.negatives[cq[x]].Cost > b.negatives[cq[y]].Cost
		})
	}
	return cq
}

// addToGamma registers an optimized key in the Γ buckets of its H0
// positions (once per distinct bucket).
func (b *builder) addToGamma(j int32) {
	if b.p.DisableGamma {
		b.optimized[j] = true
		return
	}
	b.optimized[j] = true
	if b.inGamma[j] {
		return
	}
	b.inGamma[j] = true
	k := b.p.K
	seen := make(map[uint64]bool, k)
	for s := 0; s < k; s++ {
		pos := b.negH0[int(j)*k+s]
		if !seen[pos] {
			seen[pos] = true
			b.gamma[pos] = append(b.gamma[pos], j)
		}
	}
}

// conflictVictims implements Algorithm 1: the optimized keys in bucket pos
// that would become collision keys again if the Bloom bit at pos flipped
// from 0 to 1.
func (b *builder) conflictVictims(pos uint64) []int32 {
	bucket := b.gamma[pos]
	if len(bucket) == 0 {
		return nil
	}
	k := b.p.K
	var victims []int32
	for _, j := range bucket {
		if !b.optimized[j] {
			continue // stale entry; key is back in the queue
		}
		wouldPass := true
		for s := 0; s < k; s++ {
			p := b.negH0[int(j)*k+s]
			if p == pos {
				continue
			}
			if !b.bf.Test(p) {
				wouldPass = false
				break
			}
		}
		if wouldPass {
			victims = append(victims, j)
		}
	}
	return victims
}

// candidate is one possible adjustment of a positive key: replace the hash
// slot mapping to the single-mapped unit with function hc.
type candidate struct {
	hc      uint8
	npos    uint64  // position of es under hc
	tier    int     // 0: bit already set; 1: new bit, no conflicts; 2: new bit, paid conflicts
	damage  float64 // Θ of re-broken optimized keys (tier 2)
	victims []int32
}

// optimize attempts to make collision key j test negative by adjusting one
// positive key found through V, per phase-I of Fig. 3 and the example in
// Fig. 7. It returns true on success.
func (b *builder) optimize(j int32) bool {
	k := b.p.K
	cost := b.negatives[j].Cost
	for s := 0; s < k; s++ {
		pos := b.negH0[int(j)*k+s]
		// ξck membership: singleflag = 1 ∧ keyid ≠ NULL.
		if !b.vSingle.Test(pos) || b.vKey[pos] < 0 {
			continue
		}
		es := b.vKey[pos]
		if b.adjusted[es] {
			// A stored selection cannot be re-stored (the HashExpressor
			// path is immutable); skip, preserving zero FNR.
			continue
		}
		// Find the H0 slot of es that maps to this unit.
		huSlot := -1
		for t := 0; t < k; t++ {
			if b.posH0[int(es)*k+t] == pos {
				huSlot = t
				break
			}
		}
		if huSlot < 0 {
			continue // unreachable if V is consistent
		}
		cands := b.gatherCandidates(es, pos, cost)
		if len(cands) == 0 {
			continue
		}
		if b.applyBestCandidate(j, es, huSlot, pos, cands) {
			return true
		}
	}
	return false
}

// gatherCandidates enumerates replacement functions hc ∈ H − φ(es) and
// classifies them into the three preference tiers.
func (b *builder) gatherCandidates(es int32, clearedPos uint64, cost float64) []candidate {
	inH0 := make(map[uint8]bool, len(b.h0))
	for _, idx := range b.h0 {
		inH0[idx] = true
	}
	var cands []candidate
	for hc := 0; hc < b.fam.size; hc++ {
		idx := uint8(hc)
		if inH0[idx] {
			continue
		}
		npos := b.fam.pos(b.posState[es], idx, b.m)
		if npos == clearedPos {
			// Re-setting the bit we are about to clear would leave the
			// collision key positive; never a valid adjustment.
			continue
		}
		if b.bf.Test(npos) {
			cands = append(cands, candidate{hc: idx, npos: npos, tier: 0})
			continue
		}
		if b.p.DisableGamma {
			cands = append(cands, candidate{hc: idx, npos: npos, tier: 1})
			continue
		}
		victims := b.conflictVictims(npos)
		if len(victims) == 0 {
			cands = append(cands, candidate{hc: idx, npos: npos, tier: 1})
			continue
		}
		var damage float64
		for _, v := range victims {
			damage += b.negatives[v].Cost
		}
		if cost-damage >= 0 {
			cands = append(cands, candidate{hc: idx, npos: npos, tier: 2, damage: damage, victims: victims})
		}
	}
	sort.SliceStable(cands, func(x, y int) bool {
		if cands[x].tier != cands[y].tier {
			return cands[x].tier < cands[y].tier
		}
		return cands[x].damage < cands[y].damage
	})
	return cands
}

// applyBestCandidate walks candidates tier by tier, simulating the
// HashExpressor insertion of each resulting selection and committing the
// best insertable one (maximum cell overlap within the first tier that has
// any insertable candidate, per the paper's Fig. 7 example).
func (b *builder) applyBestCandidate(j, es int32, huSlot int, clearedPos uint64, cands []candidate) bool {
	type planned struct {
		cand candidate
		phi  []uint8
		plan insertPlan
	}
	i := 0
	for i < len(cands) {
		tier := cands[i].tier
		var best *planned
		for ; i < len(cands) && cands[i].tier == tier; i++ {
			phi := make([]uint8, len(b.h0))
			copy(phi, b.h0)
			phi[huSlot] = cands[i].hc
			plan, ok := b.he.simulate(b.fam, b.posState[es], phi)
			if !ok {
				continue
			}
			pl := planned{cand: cands[i], phi: phi, plan: plan}
			if best == nil || (!b.p.DisableOverlapRanking && plan.overlap > best.plan.overlap) {
				best = &pl
			}
			if b.p.DisableOverlapRanking {
				break
			}
		}
		if best == nil {
			continue // no insertable candidate in this tier; try next tier
		}
		b.commitAdjustment(j, es, huSlot, clearedPos, best.cand, best.phi, best.plan)
		return true
	}
	return false
}

// commitAdjustment performs phase-II plus all index maintenance:
// store the new selection, clear the single-mapped bit, set the new bit,
// update V, requeue any re-broken optimized keys, and register the freshly
// optimized key in Γ.
func (b *builder) commitAdjustment(j, es int32, huSlot int, clearedPos uint64, c candidate, phi []uint8, plan insertPlan) {
	b.he.commit(plan)
	b.phis[es] = phi
	b.adjusted[es] = true
	b.stats.AdjustedPositives++

	// The cleared unit was mapped exactly once (by es); it returns to
	// ⟨1, NULL⟩ and its Bloom bit can be switched off.
	b.bf.Clear(clearedPos)
	b.vKey[clearedPos] = -1

	if !b.bf.Test(c.npos) {
		b.bf.Set(c.npos)
	}
	b.vInsert(es, c.npos)

	for _, v := range c.victims {
		b.optimized[v] = false
		b.stats.Requeued++
	}
	b.pendingVictims = append(b.pendingVictims, c.victims...)
}

// String renders the statistics in a compact human-readable form.
func (s Stats) String() string {
	return fmt.Sprintf(
		"collisions=%d optimized=%d failed=%d requeued=%d adjusted=%d inserts=%d FPR %.4f%%->%.4f%% wFPR %.4f%%->%.4f%%",
		s.CollisionKeys, s.Optimized, s.Failed, s.Requeued, s.AdjustedPositives,
		s.HashExpressorInserts,
		s.FPRBefore*100, s.FPRAfter*100,
		s.WeightedFPRBefore*100, s.WeightedFPRAfter*100)
}
