package snapshot_test

import (
	"testing"

	"repro/internal/fuzzcorpus"
	"repro/internal/shard"
	"repro/internal/snapshot"
)

// FuzzUnmarshalSnapshot hardens the container decoder and the full
// restore path behind it: arbitrary bytes must never panic and must
// never trigger an allocation not bounded by the input length (hostile
// shard counts, frame lengths and bitset lengths are all rejected
// against len(data) before any make). Accepted containers must restore
// into a set whose queries do not panic.
func FuzzUnmarshalSnapshot(f *testing.F) {
	seeds := fuzzSnapshotSeeds(f)
	for _, name := range fuzzcorpus.Names(seeds) {
		f.Add(seeds[name])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snapshot.Unmarshal(data)
		if err != nil {
			return // rejected, fine
		}
		restored, err := shard.Restore(s)
		if err != nil {
			return // container fine, payloads not a valid filter set
		}
		// Whatever survived both validators must serve without panicking.
		restored.Contains([]byte("probe"))
		restored.Contains(nil)
		restored.Add([]byte("post-restore-add"))
		if !restored.Contains([]byte("post-restore-add")) {
			t.Fatal("restored set lost an added key")
		}
		restored.WaitRebuilds()
	})
}
