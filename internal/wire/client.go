package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Client speaks the binary protocol over one TCP connection. Calls are
// synchronous (one request in flight); run one Client per goroutine for
// concurrency — connections are cheap and the protocol's whole point is
// that each round-trip is. Not safe for concurrent use.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	id   uint64

	out      []byte
	presents []bool
	errBuf   []byte
}

// Dial connects to a habfserved binary listener and queues the
// handshake; it is flushed with the first request, so Dial itself costs
// no extra round-trip.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 1<<15),
		br:   bufio.NewReaderSize(conn, 1<<15),
	}
	c.bw.Write(Handshake[:])
	return c, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetDeadline bounds the next request round-trips.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// nextID returns a fresh request id.
func (c *Client) nextID() uint64 {
	c.id++
	return c.id
}

// send flushes the frame accumulated in c.out.
func (c *Client) send() error {
	if _, err := c.bw.Write(c.out); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readHeader reads one response header and checks it answers (op, id).
// A StatusError response is surfaced as an error after draining the
// message; the server closes the connection after sending one.
func (c *Client) readHeader(op Op, id uint64) error {
	gotOp, err := c.br.ReadByte()
	if err != nil {
		return fmt.Errorf("wire: read response: %w", err)
	}
	gotID, err := binary.ReadUvarint(c.br)
	if err != nil {
		return fmt.Errorf("wire: read response id: %w", err)
	}
	status, err := c.br.ReadByte()
	if err != nil {
		return fmt.Errorf("wire: read response status: %w", err)
	}
	if status == StatusError {
		n, err := binary.ReadUvarint(c.br)
		if err != nil || n > 1<<16 {
			return fmt.Errorf("wire: server error (unreadable message)")
		}
		if cap(c.errBuf) < int(n) {
			c.errBuf = make([]byte, n)
		}
		msg := c.errBuf[:n]
		if _, err := io.ReadFull(c.br, msg); err != nil {
			return fmt.Errorf("wire: server error (truncated message): %w", err)
		}
		return fmt.Errorf("wire: server error: %s", msg)
	}
	if Op(gotOp) != op || gotID != id {
		return fmt.Errorf("wire: response mismatch: got %v id %d, want %v id %d", Op(gotOp), gotID, op, id)
	}
	return nil
}

// Contains asks whether key is in the served filter.
func (c *Client) Contains(key []byte) (bool, error) {
	id := c.nextID()
	c.out = AppendContains(c.out[:0], id, key)
	if err := c.send(); err != nil {
		return false, err
	}
	if err := c.readHeader(OpContains, id); err != nil {
		return false, err
	}
	b, err := c.br.ReadByte()
	if err != nil {
		return false, fmt.Errorf("wire: read contains result: %w", err)
	}
	switch b {
	case '1':
		return true, nil
	case '0':
		return false, nil
	}
	return false, fmt.Errorf("wire: bad contains result %#x", b)
}

// ContainsBatch answers all keys in one frame. The returned slice is
// reused across calls; copy it to retain.
func (c *Client) ContainsBatch(keys [][]byte) ([]bool, error) {
	if len(keys) == 0 {
		return nil, errors.New("wire: empty batch")
	}
	id := c.nextID()
	c.out = AppendContainsBatch(c.out[:0], id, keys)
	if err := c.send(); err != nil {
		return nil, err
	}
	if err := c.readHeader(OpContainsBatch, id); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(c.br)
	if err != nil {
		return nil, fmt.Errorf("wire: read batch count: %w", err)
	}
	if n != uint64(len(keys)) {
		return nil, fmt.Errorf("wire: %d results for %d keys", n, len(keys))
	}
	if cap(c.presents) < int(n) {
		c.presents = make([]bool, n)
	}
	c.presents = c.presents[:n]
	var b byte
	for i := range c.presents {
		if i%8 == 0 {
			if b, err = c.br.ReadByte(); err != nil {
				return nil, fmt.Errorf("wire: read batch results: %w", err)
			}
		}
		c.presents[i] = b&(1<<(i%8)) != 0
	}
	return c.presents, nil
}

// Add inserts key into the served filter; a nil error means the insert
// was acked durable-in-memory, same as HTTP /v1/add.
func (c *Client) Add(key []byte) error {
	id := c.nextID()
	c.out = AppendAdd(c.out[:0], id, key)
	if err := c.send(); err != nil {
		return err
	}
	return c.readHeader(OpAdd, id)
}

// Ping round-trips an empty frame — a liveness check that also forces
// the handshake through on a fresh connection.
func (c *Client) Ping() error {
	id := c.nextID()
	c.out = AppendPing(c.out[:0], id)
	if err := c.send(); err != nil {
		return err
	}
	return c.readHeader(OpPing, id)
}

// Epoch returns the server filter's mutation epoch — the freshness
// counter a router compares across replicas to spot a stale follower.
func (c *Client) Epoch() (uint64, error) {
	id := c.nextID()
	c.out = AppendEpoch(c.out[:0], id)
	if err := c.send(); err != nil {
		return 0, err
	}
	if err := c.readHeader(OpEpoch, id); err != nil {
		return 0, err
	}
	epoch, err := binary.ReadUvarint(c.br)
	if err != nil {
		return 0, fmt.Errorf("wire: read epoch: %w", err)
	}
	return epoch, nil
}
