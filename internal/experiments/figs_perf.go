package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// perfFilters are the contenders of Figs. 12 and 15. The ratio baseline
// is BF(XXH128) because the paper sets XXH128 as the default hash of its
// "BF" in the timing experiments (§V-A); the corpus-hash BF is reported
// too. GPU-assisted learned variants are out of scope (no GPU substrate);
// the CPU learned filters stand in for both, which only understates the
// paper's gap.
var perfFilters = []string{"HABF", "f-HABF", "BF(XXH128)", "BF", "Xor", "WBF", "LBF", "SLBF", "Ada-BF"}

// perfBaseline is the denominator of the "vs BF" ratio columns.
const perfBaseline = "BF(XXH128)"

// Fig12 reproduces Fig. 12: per-key construction time and query latency
// on Shalla (1.5 MB equivalent) and YCSB (15 MB equivalent).
func Fig12(cfg Config) []Table {
	cfg = cfg.withDefaults()
	panels := []struct {
		id, title string
		w         workload
		bpk       float64
	}{
		{"fig12a+c", "Shalla @ 1.5 MB equivalent", cfg.shallaWorkload(0), 8.4},
		{"fig12b+d", "YCSB @ 15 MB equivalent", cfg.ycsbWorkload(0), 9.6},
	}
	var out []Table
	for _, p := range panels {
		t := Table{
			ID:     p.id,
			Title:  "construction + query time per key, " + p.title,
			Header: []string{"filter", "construct(ns/key)", "query(ns/key)", "construct vs BF", "query vs BF"},
		}
		nKeys := len(p.w.pos)
		probes := make([][]byte, 0, 2*len(p.w.neg))
		probes = append(probes, p.w.neg...)
		probes = append(probes, p.w.pos...)

		var bfConstruct, bfQuery float64
		type res struct {
			name       string
			cons, quer float64
		}
		var results []res
		for _, name := range perfFilters {
			var f metrics.Filter
			var err error
			cons := metrics.TimePerKey(nKeys, func() {
				f, err = buildFilter(name, p.w, p.w.totalBits(p.bpk), cfg.Seed)
			})
			if err != nil {
				results = append(results, res{name: name, cons: -1})
				continue
			}
			quer := metrics.QueryLatency(f, probes)
			results = append(results, res{name, float64(cons.Nanoseconds()), float64(quer.Nanoseconds())})
			if name == perfBaseline {
				bfConstruct, bfQuery = float64(cons.Nanoseconds()), float64(quer.Nanoseconds())
			}
		}
		for _, r := range results {
			if r.cons < 0 {
				t.Rows = append(t.Rows, []string{r.name, "err", "", "", ""})
				continue
			}
			consRatio, querRatio := "-", "-"
			if bfConstruct > 0 {
				consRatio = fmt.Sprintf("%.1fx", r.cons/bfConstruct)
			}
			if bfQuery > 0 {
				querRatio = fmt.Sprintf("%.2fx", r.quer/bfQuery)
			}
			t.Rows = append(t.Rows, []string{
				r.name,
				fmt.Sprintf("%.0f", r.cons),
				fmt.Sprintf("%.0f", r.quer),
				consRatio,
				querRatio,
			})
		}
		out = append(out, t)
	}
	return out
}

// keysBytes approximates the resident size of a key set: payload plus the
// 24-byte slice header per key.
func keysBytes(keys [][]byte) uint64 {
	var total uint64
	for _, k := range keys {
		total += uint64(len(k)) + 24
	}
	return total
}

// workloadBytes is the input data each filter must keep resident during
// construction: every filter holds the positive keys; the cost-aware and
// learned filters additionally hold the negative keys (and costs). This
// mirrors the paper's observation that HABF's construction footprint is
// dominated by "negative keys and two runtime auxiliary data structures".
func workloadBytes(name string, w workload) uint64 {
	b := keysBytes(w.pos)
	switch name {
	case "BF", "BF(City64)", "BF(XXH128)", "Xor":
		return b
	default:
		return b + keysBytes(w.neg) + uint64(8*len(w.costs))
	}
}

// Fig15 reproduces Fig. 15: construction memory footprint — the resident
// workload each filter needs during its build plus the allocation volume
// of the build itself (live growth or churn, whichever dominates). That is
// what the paper's resident-set curves track at ratio level.
func Fig15(cfg Config) []Table {
	cfg = cfg.withDefaults()
	panels := []struct {
		id, title string
		w         workload
		bpk       float64
	}{
		{"fig15a", "Shalla @ 1.5 MB equivalent", cfg.shallaWorkload(0), 8.4},
		{"fig15b", "YCSB @ 15 MB equivalent", cfg.ycsbWorkload(0), 9.6},
	}
	var out []Table
	for _, p := range panels {
		t := Table{
			ID:     p.id,
			Title:  "construction memory footprint, " + p.title,
			Header: []string{"filter", "footprint(MB)", "vs " + perfBaseline},
		}
		var bf float64
		type res struct {
			name string
			mb   float64
			err  error
		}
		var results []res
		for _, name := range perfFilters {
			type built struct {
				f   metrics.Filter
				err error
			}
			b, bytes := metrics.ConstructionFootprint(func() built {
				f, err := buildFilter(name, p.w, p.w.totalBits(p.bpk), cfg.Seed)
				return built{f, err}
			})
			if b.err != nil {
				results = append(results, res{name: name, err: b.err})
				continue
			}
			mb := float64(bytes+workloadBytes(name, p.w)) / 1e6
			results = append(results, res{name: name, mb: mb})
			if name == perfBaseline {
				bf = mb
			}
		}
		for _, r := range results {
			if r.err != nil {
				t.Rows = append(t.Rows, []string{r.name, "err", ""})
				continue
			}
			ratio := "-"
			if bf > 0 {
				ratio = fmt.Sprintf("%.1fx", r.mb/bf)
			}
			t.Rows = append(t.Rows, []string{r.name, fmt.Sprintf("%.2f", r.mb), ratio})
		}
		out = append(out, t)
	}
	return out
}
