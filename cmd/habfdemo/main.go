// Command habfdemo builds an HABF over key files and answers membership
// queries from stdin, one key per line — a quick way to poke at the filter
// interactively or from shell pipelines.
//
// Usage:
//
//	habfgen -dataset shalla -n 50000 -skew 1.0 -out /tmp/d
//	habfdemo -pos /tmp/d/shalla.positive -neg /tmp/d/shalla.negative \
//	         -costs /tmp/d/shalla.costs -bits-per-key 12 < queries.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	habf "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		posPath = flag.String("pos", "", "file of positive keys, one per line")
		negPath = flag.String("neg", "", "file of negative keys (optional)")
		cstPath = flag.String("costs", "", "file of per-negative costs (optional)")
		bpk     = flag.Float64("bits-per-key", 12, "total space budget per positive key")
		fast    = flag.Bool("fast", false, "build f-HABF instead of HABF")
	)
	flag.Parse()
	if *posPath == "" {
		fmt.Fprintln(os.Stderr, "habfdemo: -pos is required")
		os.Exit(2)
	}

	pos, err := dataset.LoadKeys(*posPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "habfdemo:", err)
		os.Exit(1)
	}
	var negatives []habf.WeightedKey
	if *negPath != "" {
		negKeys, err := dataset.LoadKeys(*negPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "habfdemo:", err)
			os.Exit(1)
		}
		costs := make([]float64, len(negKeys))
		for i := range costs {
			costs[i] = 1
		}
		if *cstPath != "" {
			if costs, err = dataset.LoadCosts(*cstPath); err != nil || len(costs) != len(negKeys) {
				fmt.Fprintln(os.Stderr, "habfdemo: bad costs file")
				os.Exit(1)
			}
		}
		negatives = make([]habf.WeightedKey, len(negKeys))
		for i := range negKeys {
			negatives[i] = habf.WeightedKey{Key: negKeys[i], Cost: costs[i]}
		}
	}

	build := habf.New
	if *fast {
		build = habf.NewFast
	}
	f, err := build(pos, negatives, uint64(*bpk*float64(len(pos))))
	if err != nil {
		fmt.Fprintln(os.Stderr, "habfdemo:", err)
		os.Exit(1)
	}
	st := f.Stats()
	fmt.Fprintf(os.Stderr,
		"built %s: %d positives, %d known negatives, %d bits; collisions %d optimized %d (FPR %.4f%% -> %.4f%%)\n",
		f.Name(), len(pos), len(negatives), f.SizeBits(),
		st.CollisionKeys, st.Optimized, st.FPRBefore*100, st.FPRAfter*100)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		if f.Contains(sc.Bytes()) {
			fmt.Printf("maybe\t%s\n", sc.Text())
		} else {
			fmt.Printf("no\t%s\n", sc.Text())
		}
	}
}
