// Package wbf implements the Weighted Bloom filter of Bruck, Gao & Jiang
// (ISIT 2006), the cost-aware baseline of the paper's skewed-cost
// experiments (Fig. 11).
//
// WBF assigns each key an individual number of hash functions derived from
// its query cost: costly keys get more hash positions, which lowers their
// individual false-positive probability at the expense of cheap keys. The
// catch the paper highlights (§II "Cost-based") is that the *query* also
// needs the key's hash count, so WBF must carry a cost cache at query
// time: we cache the hash counts of the highest-cost keys in a map, fall
// back to the base k for unknown keys, and charge the cache against the
// construction memory the same way the paper does.
package wbf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/hashes"
)

// WeightedKey pairs a key with its cost (the same shape as habf's; kept
// local so the substrate has no dependency on the core package).
type WeightedKey struct {
	Key  []byte
	Cost float64
}

// Filter is a Weighted Bloom filter.
type Filter struct {
	bits    *bitset.Bits
	baseK   int
	minK    int
	maxK    int
	kCache  map[string]uint8 // per-key hash count for cached (costly) keys
	avgCost float64
}

// Config tunes WBF construction.
type Config struct {
	// TotalBits is the bit-array budget (the cost cache is accounted
	// separately, as in the paper's memory figures).
	TotalBits uint64
	// BaseK is the hash count for average-cost and unknown keys.
	// Default ln2 · bits-per-key.
	BaseK int
	// CacheFraction is the fraction of (cost-descending) universe keys
	// whose hash count is cached for query time. Default 0.05.
	CacheFraction float64
	// MaxK caps the per-key hash count the log-proportional rule may
	// assign. Default (0) is BaseK+4, the rule's natural span; explicit
	// values are clamped into [BaseK, 64] so the wire invariants hold.
	MaxK int
}

// New builds a WBF over the positive keys, using the costs of the known
// negative keys to allocate per-key hash counts over the whole universe.
//
// The allocation follows Bruck et al.'s log-proportional rule: a key with
// cost c gets k(c) = clamp(BaseK + round(log2(c / meanCost)), minK, maxK)
// hash positions. Positive keys are inserted with k(cost of matching
// universe key) — for the membership-testing workload of the paper,
// positives take BaseK and negatives modulate their own query-side count.
func New(positives [][]byte, negatives []WeightedKey, cfg Config) (*Filter, error) {
	if len(positives) == 0 {
		return nil, fmt.Errorf("wbf: empty positive key set")
	}
	if cfg.TotalBits == 0 {
		return nil, fmt.Errorf("wbf: zero bit budget")
	}
	bitsPerKey := float64(cfg.TotalBits) / float64(len(positives))
	if cfg.BaseK == 0 {
		cfg.BaseK = int(math.Round(math.Ln2 * bitsPerKey))
		if cfg.BaseK < 1 {
			cfg.BaseK = 1
		}
	}
	// Clamp so maxK stays within the wire format's hash-count ceiling
	// (tiny shards with generous minimum budgets would otherwise derive
	// an absurd k that could not round-trip).
	maxK := cfg.MaxK
	if maxK == 0 {
		if cfg.BaseK > maxWireK-4 {
			cfg.BaseK = maxWireK - 4
		}
		maxK = cfg.BaseK + 4
	} else {
		if cfg.BaseK > maxWireK {
			cfg.BaseK = maxWireK
		}
		if maxK < cfg.BaseK {
			maxK = cfg.BaseK
		}
		if maxK > maxWireK {
			maxK = maxWireK
		}
	}
	if cfg.CacheFraction == 0 {
		cfg.CacheFraction = 0.05
	}

	f := &Filter{
		bits:   bitset.New(cfg.TotalBits),
		baseK:  cfg.BaseK,
		minK:   max(1, cfg.BaseK-2),
		maxK:   maxK,
		kCache: make(map[string]uint8),
	}

	var total float64
	for _, n := range negatives {
		total += n.Cost
	}
	if len(negatives) > 0 {
		f.avgCost = total / float64(len(negatives))
	} else {
		f.avgCost = 1
	}

	// Cache hash counts for the costliest negatives: these are the keys
	// whose misidentification the filter most wants to avoid, so they get
	// elevated k at query time.
	if len(negatives) > 0 && cfg.CacheFraction > 0 {
		byCost := make([]int, len(negatives))
		for i := range byCost {
			byCost[i] = i
		}
		sort.SliceStable(byCost, func(a, b int) bool {
			return negatives[byCost[a]].Cost > negatives[byCost[b]].Cost
		})
		limit := int(cfg.CacheFraction * float64(len(negatives)))
		if limit < 1 {
			limit = 1
		}
		for _, idx := range byCost[:min(limit, len(byCost))] {
			n := negatives[idx]
			f.kCache[string(n.Key)] = uint8(f.kFor(n.Cost))
		}
	}

	// Insert with insertK, not plainly baseK: in the membership workload
	// positives and cached negatives are disjoint (so this is baseK), but
	// if a caller hands overlapping sets, a cached key must still be
	// probed successfully at its elevated count.
	for _, key := range positives {
		f.add(key, f.insertK(key))
	}
	return f, nil
}

// kFor maps a cost to a hash count with the log-proportional rule.
func (f *Filter) kFor(cost float64) int {
	if cost <= 0 || f.avgCost <= 0 {
		return f.baseK
	}
	k := f.baseK + int(math.Round(math.Log2(cost/f.avgCost)))
	if k < f.minK {
		k = f.minK
	}
	if k > f.maxK {
		k = f.maxK
	}
	return k
}

// positions computes the first k bit positions of key via seeded double
// hashing (WBF needs a k that varies per key, so per-function corpora do
// not apply). The two lanes derive from the shared base hash
// (hashes.Base), so prepared batch callers can skip re-reading key bytes.
func (f *Filter) positions(key []byte, k int, dst []uint64) []uint64 {
	h1, h2 := hashes.BaseLanes(hashes.Base(key), 0x5bd1e995)
	m := f.bits.Len()
	for i := 0; i < k; i++ {
		dst = append(dst, hashes.Double(h1, h2, i)%m)
	}
	return dst
}

func (f *Filter) add(key []byte, k int) {
	var buf [40]uint64
	for _, p := range f.positions(key, k, buf[:0]) {
		f.bits.Set(p)
	}
}

// Contains reports whether key may be a member, using the cached per-key
// hash count when available. Positive keys are never in the negative-cost
// cache, so they are always checked with exactly the BaseK positions they
// were inserted with — zero false negatives. Cached costly negatives are
// checked with an elevated count, which can only lower their individual
// false-positive probability.
func (f *Filter) Contains(key []byte) bool {
	return f.ContainsHash(key, hashes.Base(key))
}

// ContainsHash is Contains for a precomputed base = hashes.Base(key).
// The key bytes are still needed for the cost-cache lookup (the cache is
// keyed by exact key), but every probe position derives from the base.
func (f *Filter) ContainsHash(key []byte, base uint64) bool {
	k := f.baseK
	if ck, ok := f.kCache[string(key)]; ok {
		k = int(ck)
	}
	h1, h2 := hashes.BaseLanes(base, 0x5bd1e995)
	m := f.bits.Len()
	for i := 0; i < k; i++ {
		if !f.bits.Test(hashes.Double(h1, h2, i) % m) {
			return false
		}
	}
	return true
}

// Name identifies the filter in experiment output.
func (f *Filter) Name() string { return "WBF" }

// SizeBits returns the bit-array footprint (excluding the cost cache,
// reported separately by CacheBytes, matching the paper's accounting).
func (f *Filter) SizeBits() uint64 { return f.bits.SizeBytes() * 8 }

// CacheBytes estimates the query-time cost cache footprint.
func (f *Filter) CacheBytes() uint64 {
	var total uint64
	for k := range f.kCache {
		total += uint64(len(k)) + 1 + 16 // key bytes + count + map overhead
	}
	return total
}

// CacheSize returns the number of cached keys.
func (f *Filter) CacheSize() int { return len(f.kCache) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
