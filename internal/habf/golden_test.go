package habf

import (
	"fmt"
	"testing"
)

// TestGoldenConstruction pins the exact construction outcome for a fixed
// workload and seed. Any change to TPJO's decisions — candidate ordering,
// V/Γ maintenance, HashExpressor search, the hash corpus — shows up here
// before it silently shifts every experiment. Update the snapshot only
// for intentional algorithmic changes.
func TestGoldenConstruction(t *testing.T) {
	pos := make([][]byte, 4000)
	neg := make([]WeightedKey, 4000)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("golden/member/%05d", i))
	}
	for i := range neg {
		neg[i] = WeightedKey{
			Key:  []byte(fmt.Sprintf("golden/outsider/%05d", i)),
			Cost: float64(i%17 + 1),
		}
	}
	f, err := New(pos, neg, Params{TotalBits: 4000 * 10, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	got := f.Stats().String()
	const want = "collisions=120 optimized=120 failed=0 requeued=0 adjusted=119 inserts=119 FPR 3.0000%->0.0000% wFPR 3.2444%->0.0000%"
	if got != want {
		t.Errorf("golden stats drifted:\n got  %s\n want %s", got, want)
	}

	// Membership answers on a fixed probe set are part of the snapshot.
	probes := 0
	for i := 0; i < 10000; i++ {
		if f.Contains([]byte(fmt.Sprintf("golden/probe/%05d", i))) {
			probes++
		}
	}
	const wantProbes = 280
	if probes != wantProbes {
		t.Errorf("golden probe positives drifted: got %d, want %d", probes, wantProbes)
	}
}
