package filtercore_test

import (
	"fmt"
	"testing"

	"repro/internal/filtercore"
	"repro/internal/habf"
)

// TestTuningDefaultsRoundTrip is the schema conformance contract CI runs
// per backend: the default tuning renders canonically and re-parses to
// itself, the empty string means defaults, and the schema rejects every
// class of bad input (unknown knob, duplicate, out-of-domain value,
// malformed assignment) loudly — the restore path depends on that to
// refuse corrupted or forged tuning frames.
func TestTuningDefaultsRoundTrip(t *testing.T) {
	for _, f := range backendsUnderTest(t) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			def := f.DefaultTuning()
			if def.IsZero() || def.String() == "" {
				t.Fatalf("backend has no tuning schema (default %q)", def.String())
			}
			reparsed, err := f.ParseTuning(def.String())
			if err != nil {
				t.Fatalf("default tuning %q does not re-parse: %v", def.String(), err)
			}
			if reparsed.String() != def.String() {
				t.Errorf("round trip changed the default: %q -> %q", def.String(), reparsed.String())
			}
			empty, err := f.ParseTuning("")
			if err != nil {
				t.Fatalf("empty tuning rejected: %v", err)
			}
			if empty.String() != def.String() {
				t.Errorf("empty tuning %q != default %q", empty.String(), def.String())
			}

			if _, err := f.ParseTuning("no-such-knob=1"); err == nil {
				t.Error("unknown knob accepted")
			}
			knobs := f.TuningSchema.Knobs()
			if len(knobs) == 0 {
				t.Fatal("schema reports no knobs")
			}
			k := knobs[0]
			dup := fmt.Sprintf("%s=%s,%s=%s", k.Name, k.Default, k.Name, k.Default)
			if _, err := f.ParseTuning(dup); err == nil {
				t.Errorf("duplicate knob accepted: %q", dup)
			}
			if _, err := f.ParseTuning(k.Name); err == nil {
				t.Errorf("malformed assignment accepted: %q", k.Name)
			}
			for _, k := range knobs {
				var bad string
				switch k.Type {
				case filtercore.KnobInt:
					bad = fmt.Sprintf("%s=%d", k.Name, int64(k.Max)+1)
				case filtercore.KnobFloat:
					bad = fmt.Sprintf("%s=%v", k.Name, k.Max+1)
				case filtercore.KnobEnum:
					bad = k.Name + "=definitely-not-a-value"
				}
				if _, err := f.ParseTuning(bad); err == nil {
					t.Errorf("out-of-domain value accepted: %q", bad)
				}
			}
		})
	}
}

// tuningGrid lists valid non-default tunings per backend — the grid
// TestBackendTuningGrid re-runs the core backend contract over.
var tuningGrid = map[string][]string{
	"habf":  {"k=4", "cellbits=5", "k=4,cellbits=5"},
	"bloom": {"strategy=corpus", "strategy=seeded64,k=8", "k=12"},
	"xor":   {"width=9", "width=16"},
	"wbf":   {"cache=0.2", "k=6,maxk=10", "maxk=20"},
	"phbf":  {"groups=128", "candidates=16", "groups=32,candidates=4"},
	"lbf":   {"epochs=3", "seed=7", "model=gru,epochs=1"},
	"slbf":  {"split=0.25", "epochs=3,seed=5"},
	"adabf": {"groups=8", "groups=2,seed=9"},
}

// TestBackendTuningGrid re-runs the zero-false-negative, batch-parity
// and marshal-round-trip contracts at non-default knob settings, so a
// knob cannot work at its default and break at the values the README
// and CI advertise.
func TestBackendTuningGrid(t *testing.T) {
	pos, neg, negKeys := conformanceKeys(2000)
	for _, f := range backendsUnderTest(t) {
		f := f
		grid, ok := tuningGrid[f.Name]
		if !ok {
			t.Errorf("backend %q has no tuning grid entries — add some to tuningGrid", f.Name)
			continue
		}
		for _, tuneStr := range grid {
			tuneStr := tuneStr
			t.Run(f.Name+"/"+tuneStr, func(t *testing.T) {
				tun, err := f.ParseTuning(tuneStr)
				if err != nil {
					t.Fatalf("grid tuning rejected: %v", err)
				}
				if tun.String() == f.DefaultTuning().String() {
					t.Fatalf("grid tuning %q is the default — the grid must exercise non-default values", tuneStr)
				}
				b, err := f.Build(pos, neg, filtercore.BuildConfig{
					TotalBits: uint64(12 * len(pos)),
					Params:    habf.Params{Seed: 7},
					Tuning:    tun,
				})
				if err != nil {
					t.Fatalf("tuned build: %v", err)
				}
				for _, key := range pos {
					if !b.Contains(key) {
						t.Fatalf("false negative for %q at tuning %q", key, tuneStr)
					}
				}
				probes := append(append([][]byte{}, pos[:300]...), negKeys[:300]...)
				batch := b.ContainsBatch(probes)
				for i, key := range probes {
					if want := b.Contains(key); batch[i] != want {
						t.Fatalf("probe %d: batch=%v per-key=%v at tuning %q", i, batch[i], want, tuneStr)
					}
				}
				wire, err := b.MarshalBinary()
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				got, err := f.Unmarshal(wire)
				if err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				for i, key := range probes {
					if got.Contains(key) != batch[i] {
						t.Fatalf("decoded filter disagrees on probe %d at tuning %q", i, tuneStr)
					}
				}
			})
		}
	}
}
