package shard

import (
	"fmt"
	"testing"

	"repro/internal/habf"
)

// TestLearnedBackendsSurviveEmptyShards pins the empty-shard bugfix at
// the layer that triggered it: a sharded build with more shards than
// keys hands 0- and 1-key populations to the backend constructors,
// which used to panic (NewAdaBF) or divide by zero (NewSLBF). The
// degenerate set must build, serve, accept Adds into its empty shards
// (a lazy 1-key build), and survive a snapshot → restore cycle.
func TestLearnedBackendsSurviveEmptyShards(t *testing.T) {
	for _, backend := range []string{"lbf", "slbf", "adabf"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			requireBackend(t, backend)
			pos := [][]byte{[]byte("member-a"), []byte("member-b"), []byte("member-c")}
			neg := []habf.WeightedKey{{Key: []byte("absent-a"), Cost: 1}}
			s, err := New(pos, neg, Config{Shards: 16, TotalBits: 4096, Backend: backend})
			if err != nil {
				t.Fatalf("sharded build with empty shards failed: %v", err)
			}
			for _, key := range pos {
				if !s.Contains(key) {
					t.Fatalf("false negative for %q", key)
				}
			}

			// Spraying Adds across the key space lands some in shards that
			// were empty at build time, exercising the lazy single-key
			// build — the trivial-filter path.
			var fresh [][]byte
			for i := 0; i < 64; i++ {
				k := []byte(fmt.Sprintf("late-%06d", i))
				fresh = append(fresh, k)
				s.Add(k)
			}
			s.WaitRebuilds()
			for _, key := range append(append([][]byte{}, pos...), fresh...) {
				if !s.Contains(key) {
					t.Fatalf("false negative for %q after adds", key)
				}
			}

			g := snapshotRoundtrip(t, s)
			for _, key := range append(append([][]byte{}, pos...), fresh...) {
				if !g.Contains(key) {
					t.Fatalf("restored set lost %q", key)
				}
			}
		})
	}
}
