package habf_test

import (
	"fmt"
	"testing"

	habf "repro"
	"repro/internal/dataset"
)

func workload(n int) ([][]byte, []habf.WeightedKey, [][]byte, []float64) {
	p := dataset.Shalla(n, n, 1)
	costs := dataset.ZipfCosts(n, 1.0, 1)
	neg := make([]habf.WeightedKey, n)
	for i := range neg {
		neg[i] = habf.WeightedKey{Key: p.Negatives[i], Cost: costs[i]}
	}
	return p.Positives, neg, p.Negatives, costs
}

func TestPublicHABFEndToEnd(t *testing.T) {
	pos, neg, negKeys, costs := workload(5000)
	f, err := habf.New(pos, neg, 5000*12, habf.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if fnr, _ := habf.FNR(f, pos); fnr != 0 {
		t.Fatalf("FNR = %v, want 0", fnr)
	}
	w, err := habf.WeightedFPR(f, negKeys, costs)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.CollisionKeys > 0 && w > st.WeightedFPRBefore {
		t.Errorf("weighted FPR %v did not improve on unoptimized %v", w, st.WeightedFPRBefore)
	}
	if f.Name() != "HABF" || f.K() != 3 {
		t.Error("accessors wrong")
	}
}

func TestPublicOptions(t *testing.T) {
	pos, neg, _, _ := workload(1000)
	f, err := habf.New(pos, neg, 1000*16,
		habf.WithK(4),
		habf.WithCellBits(5),
		habf.WithSpaceRatio(0.3),
		habf.WithSeed(3),
		habf.WithoutOverlapRanking(),
		habf.WithoutCostOrdering(),
		habf.WithoutGamma(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.K() != 4 {
		t.Errorf("K = %d, want 4", f.K())
	}
	if fnr, _ := habf.FNR(f, pos); fnr != 0 {
		t.Error("options broke zero-FNR")
	}
}

func TestPublicFastHABF(t *testing.T) {
	pos, neg, _, _ := workload(3000)
	f, err := habf.NewFast(pos, neg, 3000*12)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "f-HABF" {
		t.Errorf("Name = %q", f.Name())
	}
	if fnr, _ := habf.FNR(f, pos); fnr != 0 {
		t.Error("f-HABF broke zero-FNR")
	}
}

func TestAllBaselinesSatisfyFilter(t *testing.T) {
	pos, neg, negKeys, costs := workload(4000)
	budget := uint64(4000 * 12)

	var filters []habf.Filter
	h, err := habf.New(pos, neg, budget)
	if err != nil {
		t.Fatal(err)
	}
	filters = append(filters, h)

	fh, err := habf.NewFast(pos, neg, budget)
	if err != nil {
		t.Fatal(err)
	}
	filters = append(filters, fh)

	for _, s := range []habf.BloomStrategy{habf.BloomCorpus, habf.BloomSeeded64, habf.BloomSplit128} {
		b, err := habf.NewBloom(pos, 12, s)
		if err != nil {
			t.Fatal(err)
		}
		filters = append(filters, b)
	}

	x, err := habf.NewXor(pos, 12)
	if err != nil {
		t.Fatal(err)
	}
	filters = append(filters, x)

	w, err := habf.NewWBF(pos, neg, budget)
	if err != nil {
		t.Fatal(err)
	}
	filters = append(filters, w)

	lbf, err := habf.NewLBF(pos, negKeys, budget)
	if err != nil {
		t.Fatal(err)
	}
	filters = append(filters, lbf)

	slbf, err := habf.NewSLBF(pos, negKeys, budget)
	if err != nil {
		t.Fatal(err)
	}
	filters = append(filters, slbf)

	ada, err := habf.NewAdaBF(pos, negKeys, budget)
	if err != nil {
		t.Fatal(err)
	}
	filters = append(filters, ada)

	names := map[string]bool{}
	for _, f := range filters {
		if names[f.Name()] {
			t.Errorf("duplicate filter name %q", f.Name())
		}
		names[f.Name()] = true
		if fnr, _ := habf.FNR(f, pos); fnr != 0 {
			t.Errorf("%s: FNR = %v, want 0 for every filter in the module", f.Name(), fnr)
		}
		if f.SizeBits() == 0 {
			t.Errorf("%s: SizeBits = 0", f.Name())
		}
		if w, err := habf.WeightedFPR(f, negKeys, costs); err != nil || w < 0 || w > 1 {
			t.Errorf("%s: WeightedFPR = %v, %v", f.Name(), w, err)
		}
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := habf.New(nil, nil, 4096); err == nil {
		t.Error("empty positives accepted")
	}
	if _, err := habf.NewBloom([][]byte{[]byte("k")}, 10, habf.BloomStrategy(9)); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := habf.NewXor(nil, 10); err == nil {
		t.Error("empty xor keys accepted")
	}
	if _, err := habf.NewWBF(nil, nil, 100); err == nil {
		t.Error("empty WBF positives accepted")
	}
	// Two keys force real training; a 0/1-key input instead returns a
	// trivially-correct filter regardless of budget (empty shards are
	// legitimate in sharded builds).
	if _, err := habf.NewLBF([][]byte{[]byte("a"), []byte("b")}, nil, 10); err == nil {
		t.Error("budget below model size accepted")
	}
}

func ExampleNew() {
	positives := [][]byte{[]byte("alice"), []byte("bob"), []byte("carol")}
	negatives := []habf.WeightedKey{
		{Key: []byte("mallory"), Cost: 100}, // costly to misidentify
		{Key: []byte("trent"), Cost: 1},
	}
	f, err := habf.New(positives, negatives, 4096, habf.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(f.Contains([]byte("alice")))
	fmt.Println(f.Contains([]byte("mallory")))
	// Output:
	// true
	// false
}

func BenchmarkPublicContains(b *testing.B) {
	pos, neg, negKeys, _ := workload(20000)
	f, err := habf.New(pos, neg, 20000*12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains(negKeys[i%len(negKeys)])
	}
}
