package filtercore

import (
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/habf"
)

// bloomBackend adapts the standard Bloom filter baseline to the Backend
// interface. It is mutable (Add sets bits) but cost-oblivious: the
// shard's weighted negatives are ignored. The backend always uses the
// XXH128 double-hashing strategy — the fastest of the paper's three
// Bloom flavours and the one with no corpus-size cap on k.
type bloomBackend struct {
	f *bloom.Filter
	// added counts post-construction Adds; the underlying filter only
	// tracks the total insert count.
	added atomic.Uint64
}

var _ Backend = (*bloomBackend)(nil)

func (b *bloomBackend) Contains(key []byte) bool       { return b.f.Contains(key) }
func (b *bloomBackend) AddedKeys() uint64              { return b.added.Load() }
func (b *bloomBackend) Name() string                   { return b.f.Name() }
func (b *bloomBackend) SizeBits() uint64               { return b.f.SizeBits() }
func (b *bloomBackend) Kind() Kind                     { return KindBloom }
func (b *bloomBackend) MarshalBinary() ([]byte, error) { return b.f.MarshalBinary() }
func (b *bloomBackend) WireAlignOffset() int           { return bloom.WireAlignOffset }
func (b *bloomBackend) Borrowed() bool                 { return b.f.Borrowed() }

func (b *bloomBackend) ContainsBatch(keys [][]byte) []bool {
	return containsBatchSerial(b, keys)
}

func (b *bloomBackend) Add(key []byte) error {
	b.f.Add(key)
	b.added.Add(1)
	return nil
}

func init() {
	Register(Factory{
		Name:      "bloom",
		Kind:      KindBloom,
		Static:    false,
		InnerName: func(habf.Params) string { return bloom.StrategySplit128.String() },
		Build: func(positives [][]byte, _ []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			bitsPerKey := float64(cfg.TotalBits) / float64(len(positives))
			f, err := bloom.NewWithKeys(positives, bitsPerKey, bloom.StrategySplit128)
			if err != nil {
				return nil, err
			}
			return &bloomBackend{f: f}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := bloom.UnmarshalFilter(data)
			if err != nil {
				return nil, err
			}
			return &bloomBackend{f: f}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := bloom.UnmarshalFilterBorrow(data)
			if err != nil {
				return nil, err
			}
			return &bloomBackend{f: f}, nil
		},
	})
}
