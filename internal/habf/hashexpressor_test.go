package habf

import (
	"fmt"
	"testing"
)

func testFamily(k int, fast bool) *family {
	p := Params{TotalBits: 1 << 16, K: k, Fast: fast}.withDefaults()
	return newFamily(p)
}

func TestHashExpressorEmptyQuery(t *testing.T) {
	fam := testFamily(3, false)
	he := newHashExpressor(4096, 4, 3)
	ks := fam.prepare([]byte("nobody"))
	if phi := he.query(fam, ks, nil); phi != nil {
		t.Fatalf("empty table returned selection %v", phi)
	}
}

func TestHashExpressorInsertThenQuery(t *testing.T) {
	for _, fast := range []bool{false, true} {
		t.Run(fmt.Sprintf("fast=%v", fast), func(t *testing.T) {
			fam := testFamily(3, fast)
			he := newHashExpressor(1<<14, 4, 3)
			type entry struct {
				key []byte
				phi []uint8
			}
			var inserted []entry
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("key-%d", i))
				phi := []uint8{uint8(i % 5), uint8((i + 1) % 5), uint8((i + 2) % 7)}
				if phi[0] == phi[1] || phi[1] == phi[2] || phi[0] == phi[2] {
					continue
				}
				ks := fam.prepare(key)
				plan, ok := he.simulate(fam, ks, phi)
				if !ok {
					continue // table pressure; fine
				}
				he.commit(plan)
				inserted = append(inserted, entry{key, phi})
			}
			if len(inserted) < 50 {
				t.Fatalf("only %d/200 selections insertable; table unexpectedly tight", len(inserted))
			}
			// Zero FNR of HashExpressor: every inserted key retrieves its
			// selection (as a set).
			for _, e := range inserted {
				ks := fam.prepare(e.key)
				got := he.query(fam, ks, nil)
				if got == nil {
					t.Fatalf("inserted key %q not retrievable", e.key)
				}
				want := map[uint8]bool{}
				for _, v := range e.phi {
					want[v] = true
				}
				for _, v := range got {
					if !want[v] {
						t.Fatalf("key %q: retrieved %v, inserted %v", e.key, got, e.phi)
					}
				}
				if len(got) != len(e.phi) {
					t.Fatalf("key %q: retrieved %d indices, want %d", e.key, len(got), len(e.phi))
				}
			}
		})
	}
}

func TestHashExpressorSimulateDoesNotMutate(t *testing.T) {
	fam := testFamily(3, false)
	he := newHashExpressor(1<<12, 4, 3)
	snapshot := func() []uint64 {
		out := make([]uint64, he.omega)
		for i := uint64(0); i < he.omega; i++ {
			out[i] = he.cells.Get(i)
		}
		return out
	}
	before := snapshot()
	for i := 0; i < 50; i++ {
		ks := fam.prepare([]byte(fmt.Sprintf("sim-%d", i)))
		he.simulate(fam, ks, []uint8{0, 1, 2})
	}
	after := snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("simulate mutated cell %d", i)
		}
	}
	if he.Inserted() != 0 {
		t.Fatal("simulate incremented insert count")
	}
}

func TestHashExpressorCellNeverOverwritten(t *testing.T) {
	fam := testFamily(3, false)
	he := newHashExpressor(1<<13, 4, 3)
	type cellVal struct{ v uint8 }
	claimed := map[uint64]cellVal{}
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("ow-%d", i))
		phi := []uint8{uint8(i) % 7, (uint8(i) + 1) % 7, (uint8(i) + 3) % 7}
		if phi[0] == phi[1] || phi[1] == phi[2] || phi[0] == phi[2] {
			continue
		}
		ks := fam.prepare(key)
		plan, ok := he.simulate(fam, ks, phi)
		if !ok {
			continue
		}
		he.commit(plan)
		for s := 0; s < plan.n; s++ {
			c := plan.cells[s]
			_, v := he.load(c)
			if prev, seen := claimed[c]; seen && prev.v != v {
				t.Fatalf("cell %d hashindex changed %d -> %d", c, prev.v, v)
			}
			claimed[c] = cellVal{v}
		}
	}
}

func TestHashExpressorSaturation(t *testing.T) {
	// A tiny table must start rejecting insertions rather than corrupting
	// earlier entries.
	fam := testFamily(3, false)
	he := newHashExpressor(16*4, 4, 3) // 16 cells
	var okCount int
	type entry struct {
		key []byte
		phi []uint8
	}
	var inserted []entry
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("sat-%d", i))
		phi := []uint8{0, 2, 4}
		ks := fam.prepare(key)
		plan, ok := he.simulate(fam, ks, phi)
		if ok {
			he.commit(plan)
			okCount++
			inserted = append(inserted, entry{key, phi})
		}
	}
	if okCount == 0 {
		t.Fatal("no insertions succeeded even on an empty table")
	}
	if okCount == 200 {
		t.Fatal("16-cell table accepted 200 selections; saturation logic broken")
	}
	for _, e := range inserted {
		ks := fam.prepare(e.key)
		if he.query(fam, ks, nil) == nil {
			t.Fatalf("saturated table lost key %q", e.key)
		}
	}
}

func TestHashExpressorLoadStore(t *testing.T) {
	he := newHashExpressor(1024, 4, 3)
	he.store(5, true, 7)
	end, v := he.load(5)
	if !end || v != 7 {
		t.Fatalf("load = (%v,%d), want (true,7)", end, v)
	}
	he.store(5, false, 3)
	end, v = he.load(5)
	if end || v != 3 {
		t.Fatalf("load = (%v,%d), want (false,3)", end, v)
	}
	if end, v := he.load(6); end || v != 0 {
		t.Fatal("untouched cell not empty")
	}
}

func TestHashExpressorOmegaMinimum(t *testing.T) {
	he := newHashExpressor(1, 4, 3) // under one cell of budget
	if he.omega != 1 {
		t.Fatalf("omega = %d, want 1", he.omega)
	}
}

func TestUsableFunctions(t *testing.T) {
	cases := []struct {
		cellBits uint
		fast     bool
		want     int
	}{
		{4, false, 7},
		{5, false, 15},
		{6, false, 22}, // corpus-limited
		{3, false, 3},
		{4, true, 7},
		{6, true, 31}, // fast mode is not corpus-limited
	}
	for _, c := range cases {
		if got := usableFunctions(c.cellBits, c.fast); got != c.want {
			t.Errorf("usableFunctions(%d, %v) = %d, want %d", c.cellBits, c.fast, got, c.want)
		}
	}
}
