package wbf

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func serializeFixture(t *testing.T) (*Filter, [][]byte, []WeightedKey) {
	t.Helper()
	pos := make([][]byte, 2000)
	neg := make([]WeightedKey, 2000)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("wbf-pos-%06d", i))
		neg[i] = WeightedKey{Key: []byte(fmt.Sprintf("wbf-neg-%06d", i)), Cost: float64(i%11 + 1)}
	}
	f, err := New(pos, neg, Config{TotalBits: 2000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	return f, pos, neg
}

func TestSerializeRoundtrip(t *testing.T) {
	f, pos, neg := serializeFixture(t)
	wire, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for mode, unmarshal := range map[string]func([]byte) (*Filter, error){
		"owned":  UnmarshalFilter,
		"borrow": UnmarshalFilterBorrow,
	} {
		g, err := unmarshal(wire)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if g.baseK != f.baseK || g.minK != f.minK || g.maxK != f.maxK ||
			g.avgCost != f.avgCost || g.CacheSize() != f.CacheSize() {
			t.Fatalf("%s: decoded shape differs", mode)
		}
		for _, key := range pos {
			if !g.Contains(key) {
				t.Fatalf("%s: false negative for %q", mode, key)
			}
		}
		// The per-key hash-count cache must survive: cached costly
		// negatives are probed with their elevated k, so any cache loss
		// would silently change their false-positive behavior.
		for _, n := range neg {
			if g.Contains(n.Key) != f.Contains(n.Key) {
				t.Fatalf("%s: decoded filter disagrees on cached negative %q", mode, n.Key)
			}
		}
		for i := 0; i < 2000; i++ {
			probe := []byte(fmt.Sprintf("wbf-probe-%06d", i))
			if g.Contains(probe) != f.Contains(probe) {
				t.Fatalf("%s: decoded filter disagrees on %q", mode, probe)
			}
		}
		// Re-marshal must be byte-identical: the cache is written in
		// sorted key order precisely so the map round-trips canonically.
		again, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", mode, err)
		}
		if string(again) != string(wire) {
			t.Fatalf("%s: re-marshal is not byte-identical", mode)
		}
	}
}

func TestSerializeBorrowCopyOnWrite(t *testing.T) {
	f, _, _ := serializeFixture(t)
	wire, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), wire...)
	g, err := UnmarshalFilterBorrow(wire)
	if err != nil {
		t.Fatal(err)
	}
	g.Add([]byte("post-load-add"))
	if !g.Contains([]byte("post-load-add")) {
		t.Fatal("borrowed filter lost an added key")
	}
	if g.Borrowed() {
		t.Fatal("filter still borrowed after a mutation")
	}
	if string(wire) != string(before) {
		t.Fatal("Add mutated the borrowed wire buffer")
	}
}

func TestSerializeRejectsHostileInput(t *testing.T) {
	f, _, _ := serializeFixture(t)
	good, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:10],
		"truncated":   good[:len(good)-4],
		"trailing":    append(append([]byte(nil), good...), 0),
		"bad magic":   mut(func(b []byte) { b[0] ^= 0xFF }),
		"bad version": mut(func(b []byte) { b[4] = 99 }),
		"zero baseK":  mut(func(b []byte) { b[5] = 0 }),
		"k inversion": mut(func(b []byte) { b[6], b[7] = 60, 2 }),
		"huge baseK":  mut(func(b []byte) { b[5], b[7] = 200, 210 }),
		"nan avgCost": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:16], 0x7FF8000000000001)
		}),
		"huge cache count": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
		}),
		"huge bits len": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:32], 1<<40)
		}),
	}
	// Corrupt the first cache entry's key length so it runs off the end.
	bitsLen := binary.LittleEndian.Uint64(good[24:32])
	if entryOff := 32 + int(bitsLen); entryOff+4 <= len(good) {
		cases["cache key overrun"] = mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[entryOff:entryOff+4], 1<<30)
		})
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
		if _, err := UnmarshalFilterBorrow(data); err == nil {
			t.Errorf("%s: hostile input accepted in borrow mode", name)
		}
	}
}
