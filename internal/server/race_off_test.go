//go:build !race

package server

// raceEnabled reports whether this test binary carries the race
// detector, whose instrumentation allocates on its own — alloc-count
// assertions are skipped under -race and enforced by the plain run.
const raceEnabled = false
