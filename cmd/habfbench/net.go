package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	habf "repro"
	"repro/internal/benchfmt"
	"repro/internal/dataset"
	"repro/internal/replica"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// netConfig drives the network load generator (-net): concurrent HTTP
// clients issuing single-key and batch membership queries against a
// habfserved instance, under a workload distribution, reporting
// throughput and latency percentiles.
type netConfig struct {
	addr      string // remote daemon base URL host:port; empty = in-process self-test
	addrBin   string // remote daemon's -listen-binary host:port (binary protocol runs)
	proto     string // wire formats to drive: http|binary|all ("" = http)
	backends  string // comma-separated backend names for the self-test ("" = habf)
	tune      string // tuning knobs: "k=v,k=v" or "backend:knobs;backend:knobs"
	keys      int
	clients   int
	ops       int
	batch     int
	writers   int
	shards    int
	dist      string
	seed      int64
	replicas  int    // self-test: primary + (replicas-1) followers, routed scenarios
	benchjson string // write machine-readable results here
}

// rawContentType selects the JSON-free request fast path.
const rawContentType = "application/octet-stream"

func runNet(cfg netConfig, w io.Writer) error {
	dist, err := workload.Parse(cfg.dist)
	if err != nil {
		return err
	}
	if cfg.keys < 1 || cfg.clients < 1 || cfg.batch < 1 || cfg.ops < 1 {
		return fmt.Errorf("net: -keys, -clients, -batch and -ops must all be ≥ 1")
	}
	if cfg.tune != "" && cfg.addr != "" {
		return fmt.Errorf("net: -tune configures the in-process self-test; a remote daemon's tuning is whatever it was started with (see habfserved -tune)")
	}
	switch cfg.proto {
	case "", "http", "binary", "all":
	default:
		return fmt.Errorf("net: -proto %q: want http, binary or all", cfg.proto)
	}
	if cfg.addr != "" && cfg.protoHas("binary") && cfg.addrBin == "" {
		return fmt.Errorf("net: remote binary runs need -addr-binary (the daemon's -listen-binary port)")
	}
	if cfg.replicas > 1 && !cfg.protoHas("binary") {
		return fmt.Errorf("net: -replicas routes over the binary protocol; add -proto binary or -proto all")
	}
	if cfg.replicas > 0 && cfg.addr != "" {
		return fmt.Errorf("net: -replicas spawns an in-process topology; to route across remote daemons, comma-separate their ports in -addr-binary")
	}
	plainTune, tunedRuns, err := parseTunePlan(cfg.tune)
	if err != nil {
		return err
	}

	data := dataset.YCSB(cfg.keys, cfg.keys, cfg.seed)
	costs := dataset.ZipfCosts(cfg.keys, 1.1, cfg.seed)
	negatives := make([]habf.WeightedKey, cfg.keys)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: costs[i]}
	}

	// Per-client probe streams: even positions are negatives, odd are
	// members (the MixProbes parity convention), so the generator can
	// verify zero false negatives while it measures.
	streams := make([][][]byte, cfg.clients)
	for i := range streams {
		streams[i], err = workload.MixProbes(dist, cfg.seed+int64(i), 1<<14, data.Positives, data.Negatives)
		if err != nil {
			return err
		}
	}

	g := &netGen{cfg: cfg, streams: streams, out: w}
	g.transport = &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}
	defer g.transport.CloseIdleConnections()

	fmt.Fprintf(w, "net: %d keys, %s access, %d clients, batch %d, %d writers, GOMAXPROCS %d\n",
		cfg.keys, dist, cfg.clients, cfg.batch, cfg.writers, runtime.GOMAXPROCS(0))

	if cfg.addr != "" {
		// Remote daemon: its coalescing configuration and backend are
		// whatever it was started with, so there is a single contains
		// scenario. The server-reported backend makes the artifact
		// self-describing.
		g.base = "http://" + cfg.addr
		name, backend, err := g.serverIdentity()
		if err != nil {
			return fmt.Errorf("net: query remote /v1/stats: %w", err)
		}
		g.noteBackends = backend
		fmt.Fprintf(w, "target: %s (remote, %s, backend %s)\n\n", g.base, name, backend)
		if cfg.protoHas("http") {
			if err := g.scenario("net/contains", g.containsLoop, false); err != nil {
				return err
			}
			if err := g.scenario("net/contains_batch", g.batchLoop, false); err != nil {
				return err
			}
			if cfg.writers > 0 {
				if err := g.scenario("net/contains+writers", g.containsLoop, true); err != nil {
					return err
				}
			}
		}
		if cfg.protoHas("binary") {
			// -addr-binary may name several daemons' binary ports; plain
			// binary scenarios drive the first, the routed scenario fans
			// batches across all of them through the replica router.
			binAddrs := splitAddrs(cfg.addrBin)
			g.binAddr = binAddrs[0]
			if err := g.scenario("net/contains/binary", g.binaryContainsLoop, false); err != nil {
				return err
			}
			if err := g.scenario("net/contains_batch/binary", g.binaryBatchLoop, false); err != nil {
				return err
			}
			if len(binAddrs) > 1 {
				if err := g.routedScenario("net/contains_batch/routed", binAddrs); err != nil {
					return err
				}
			}
		}
		return g.finish()
	}

	// Self-test: for each requested backend, build the filter once and
	// serve it in-process, first with coalescing disabled, then enabled,
	// so the uncoalesced and coalesced request paths — and the backends
	// themselves — are compared on identical traffic. The default habf
	// backend keeps the historical unsuffixed scenario names, so
	// committed baselines stay comparable; other backends are suffixed
	// "/<name>".
	g.noteBackends = cfg.backendList()
	for _, backendName := range strings.Split(cfg.backendList(), ",") {
		backendName = strings.TrimSpace(backendName)
		if backendName == "" {
			continue // stray comma in the -backend list
		}
		suffix := ""
		if backendName != "habf" {
			suffix = "/" + backendName
		}
		if plainTune != "" {
			// The plain -tune form tunes every self-test backend, so every
			// scenario this run produces is a tuned variant by name — never
			// comparable against the untuned baselines.
			suffix += "+tuned"
		}

		start := time.Now()
		filter, err := habf.NewSharded(data.Positives, negatives, uint64(10*cfg.keys),
			habf.WithShards(cfg.shards), habf.WithBackend(backendName), habf.WithTuning(plainTune))
		if err != nil {
			return fmt.Errorf("net: build %s: %w", backendName, err)
		}
		fmt.Fprintf(w, "target: in-process self-test (%d shards, backend %s, tuning %q, built in %v)\n\n",
			filter.NumShards(), filter.Backend(), filter.Tuning(), time.Since(start).Round(time.Millisecond))

		run := func(name string, coalesce server.CoalesceConfig, loop loopFunc, withWriters bool) error {
			stop, err := g.startServer(filter, coalesce)
			if err != nil {
				return err
			}
			defer stop()
			if reported := g.lastBackend; reported != "" && reported != backendName {
				return fmt.Errorf("net: server reports backend %q, built %q", reported, backendName)
			}
			return g.scenario(name+suffix, loop, withWriters)
		}
		// The direct scenario measures the hash-once, shard-grouped batch
		// read path with no server or wire format in front of it — the
		// floor every net/contains_batch number sits on top of.
		g.filter = filter
		if err := g.scenario("direct/contains_batch"+suffix, g.directBatchLoop, false); err != nil {
			g.filter = nil
			return err
		}
		g.filter = nil
		if cfg.protoHas("http") {
			if err := run("net/contains/uncoalesced", server.CoalesceConfig{Disabled: true}, g.containsLoop, false); err != nil {
				return err
			}
			if err := run("net/contains/coalesced", server.CoalesceConfig{}, g.containsLoop, false); err != nil {
				return err
			}
			if err := run("net/contains_batch", server.CoalesceConfig{Disabled: true}, g.batchLoop, false); err != nil {
				return err
			}
			if cfg.writers > 0 {
				if err := run("net/contains/coalesced+writers", server.CoalesceConfig{}, g.containsLoop, true); err != nil {
					return err
				}
			}
		}
		if cfg.protoHas("binary") {
			// Single-key through the coalescer (the serving default) and
			// batch frames direct, mirroring the HTTP scenario pair.
			if err := run("net/contains/binary", server.CoalesceConfig{}, g.binaryContainsLoop, false); err != nil {
				return err
			}
			if err := run("net/contains_batch/binary", server.CoalesceConfig{Disabled: true}, g.binaryBatchLoop, false); err != nil {
				return err
			}
		}
		if cfg.replicas > 1 && cfg.protoHas("binary") {
			// Replica fan-out: the same filter served by a primary plus
			// snapshot-shipped followers, batches routed across the set.
			addrs, stop, err := g.startReplicaSet(filter, cfg.replicas)
			if err != nil {
				return fmt.Errorf("net: replica set: %w", err)
			}
			fmt.Fprintf(w, "replica set: 1 primary + %d snapshot-shipped followers\n", cfg.replicas-1)
			err = g.routedScenario("net/contains_batch/routed"+suffix, addrs)
			stop()
			if err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}

	// The "backend:knobs" -tune entries each add one tuned-variant run of
	// the representative coalesced-contains scenario, next to — not
	// instead of — the untuned runs above. This is how CI keeps a tuned
	// entry per backend in the committed baseline without doubling the
	// whole matrix.
	for _, tr := range tunedRuns {
		suffix := "+tuned"
		if tr.backend != "habf" {
			suffix = "/" + tr.backend + "+tuned"
		}
		start := time.Now()
		filter, err := habf.NewSharded(data.Positives, negatives, uint64(10*cfg.keys),
			habf.WithShards(cfg.shards), habf.WithBackend(tr.backend), habf.WithTuning(tr.knobs))
		if err != nil {
			return fmt.Errorf("net: build tuned %s: %w", tr.backend, err)
		}
		fmt.Fprintf(w, "target: in-process self-test (%d shards, backend %s, tuning %q, built in %v)\n\n",
			filter.NumShards(), filter.Backend(), filter.Tuning(), time.Since(start).Round(time.Millisecond))
		stop, err := g.startServer(filter, server.CoalesceConfig{})
		if err != nil {
			return err
		}
		if cfg.protoHas("http") {
			err = g.scenario("net/contains/coalesced"+suffix, g.containsLoop, false)
		}
		if err == nil && cfg.protoHas("binary") {
			err = g.scenario("net/contains/binary"+suffix, g.binaryContainsLoop, false)
		}
		stop()
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return g.finish()
}

// tunedRun is one "backend:knobs" entry of the -tune flag: an extra
// coalesced-contains scenario for that backend at those knobs.
type tunedRun struct {
	backend string
	knobs   string
}

// parseTunePlan interprets -net's -tune flag. A plain "k=v,k=v" tunes
// every self-test backend in place; one or more ";"-separated
// "backend:k=v,..." entries instead request extra tuned runs beside
// the untuned ones.
func parseTunePlan(s string) (plain string, runs []tunedRun, err error) {
	if strings.TrimSpace(s) == "" {
		return "", nil, nil
	}
	if !strings.Contains(s, ":") {
		if strings.Contains(s, ";") {
			return "", nil, fmt.Errorf("net: -tune %q: ';'-separated entries need a backend: prefix", s)
		}
		return strings.TrimSpace(s), nil, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, knobs, ok := strings.Cut(part, ":")
		name, knobs = strings.TrimSpace(name), strings.TrimSpace(knobs)
		if !ok || name == "" || strings.Contains(name, "=") {
			return "", nil, fmt.Errorf("net: -tune entry %q: want backend:k=v,k=v", part)
		}
		if knobs == "" {
			return "", nil, fmt.Errorf("net: -tune entry %q: no knobs (defaults are already benchmarked untuned)", part)
		}
		// Validate eagerly so a typo fails before any untuned scenario
		// spends minutes of bench time.
		if _, err := habf.ParseTuning(name, knobs); err != nil {
			return "", nil, fmt.Errorf("net: -tune entry %q: %w", part, err)
		}
		runs = append(runs, tunedRun{backend: name, knobs: knobs})
	}
	return "", runs, nil
}

// splitAddrs splits a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// protoHas reports whether the -proto flag selects wire format p.
func (cfg netConfig) protoHas(p string) bool {
	switch cfg.proto {
	case "", "http":
		return p == "http"
	case "binary":
		return p == "binary"
	case "all":
		return true
	}
	return false
}

// backendList normalizes the -backend flag for the self-test loop.
func (cfg netConfig) backendList() string {
	if cfg.backends == "" {
		return "habf"
	}
	return cfg.backends
}

// netGen holds load-generator state shared across scenarios.
type netGen struct {
	cfg       netConfig
	streams   [][][]byte
	transport *http.Transport
	base      string
	binAddr   string         // binary-protocol listener address ("" when not serving it)
	router    *router.Router // set for the duration of routed scenarios
	out       io.Writer
	results   []benchfmt.Result
	writersWG sync.WaitGroup
	stopWrite chan struct{}
	// lastBackend is the backend the most recently started in-process
	// server reported via /v1/stats — a self-check that the bench drives
	// what it thinks it does. noteBackends names the backend(s) driven,
	// for the benchjson artifact.
	lastBackend  string
	noteBackends string
	// filter is the in-process self-test filter of the backend currently
	// being driven; the direct/* scenarios query it without a server in
	// between, so the shard-layer batch pipeline is measured by itself.
	filter *habf.Sharded
}

// serverIdentity asks the target's /v1/stats for its filter name and
// backend, so bench output and artifacts are self-describing. It rides
// the generator's own transport (keep-alive pool, deferred cleanup)
// with a timeout, so a hung target fails the probe instead of wedging
// the whole run.
func (g *netGen) serverIdentity() (name, backend string, err error) {
	hc := &http.Client{Transport: g.transport, Timeout: 10 * time.Second}
	resp, err := hc.Get(g.base + "/v1/stats")
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	var st struct {
		Name    string `json:"name"`
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", "", err
	}
	return st.Name, st.Backend, nil
}

// loopFunc runs one client's share of a scenario: n keys from probes,
// recording one latency sample per HTTP request into lat.
type loopFunc func(client int, probes [][]byte, n int, lat *[]int64) error

// startServer serves filter on loopback listeners (HTTP always, plus
// the binary protocol when -proto asks for it) with the given coalescing
// config; the returned func tears everything down.
func (g *netGen) startServer(filter *habf.Sharded, coalesce server.CoalesceConfig) (func(), error) {
	srv, err := server.New(server.Config{Filter: filter, Coalesce: coalesce})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	g.base = "http://" + l.Addr().String()

	var bs *server.BinaryServer
	g.binAddr = ""
	if g.cfg.protoHas("binary") {
		bl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			hs.Close()
			srv.Close()
			return nil, err
		}
		bs = server.NewBinaryServer(srv)
		go bs.Serve(bl)
		g.binAddr = bl.Addr().String()
	}

	g.lastBackend = "" // never let a previous server's identity leak
	if _, backend, err := g.serverIdentity(); err == nil {
		g.lastBackend = backend
	}
	return func() {
		hs.Close()
		if bs != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			bs.Shutdown(ctx)
			cancel()
		}
		srv.Close()
		g.transport.CloseIdleConnections()
	}, nil
}

// startReplicaSet serves filter as a replication topology: a primary
// with HTTP and binary listeners, plus n-1 read-only followers that
// each bootstrap through the real snapshot-shipping path (GET
// /v1/snapshot → habf.Load) and serve the binary protocol. Returned
// addresses are the binary listeners, primary first.
func (g *netGen) startReplicaSet(filter *habf.Sharded, n int) ([]string, func(), error) {
	var stops []func()
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	fail := func(err error) ([]string, func(), error) {
		stopAll()
		return nil, nil, err
	}

	serveBinary := func(srv *server.Server) (string, error) {
		bl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		bs := server.NewBinaryServer(srv)
		go bs.Serve(bl)
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			bs.Shutdown(ctx)
			cancel()
			srv.Close()
		})
		return bl.Addr().String(), nil
	}

	prim, err := server.New(server.Config{Filter: filter, Coalesce: server.CoalesceConfig{Disabled: true}})
	if err != nil {
		return nil, nil, err
	}
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		prim.Close()
		return nil, nil, err
	}
	hs := &http.Server{Handler: prim.Handler()}
	go hs.Serve(hl)
	stops = append(stops, func() { hs.Close() })
	primURL := "http://" + hl.Addr().String()
	addr, err := serveBinary(prim)
	if err != nil {
		return fail(err)
	}
	addrs := []string{addr}

	for i := 1; i < n; i++ {
		var restored *habf.Sharded
		fol, err := replica.New(replica.Config{
			Primary: primURL,
			OnSwap:  func(f *habf.Sharded, epoch uint64) error { restored = f; return nil },
		})
		if err != nil {
			return fail(err)
		}
		if err := fol.Sync(context.Background()); err != nil {
			return fail(fmt.Errorf("follower %d bootstrap: %w", i, err))
		}
		fsrv, err := server.New(server.Config{
			Filter:   restored,
			Coalesce: server.CoalesceConfig{Disabled: true},
			ReadOnly: true,
			Primary:  primURL,
		})
		if err != nil {
			return fail(err)
		}
		addr, err := serveBinary(fsrv)
		if err != nil {
			return fail(err)
		}
		addrs = append(addrs, addr)
	}
	return addrs, stopAll, nil
}

// routedScenario measures ContainsBatch fanned across addrs through
// the replica router (hedging on, defaults).
func (g *netGen) routedScenario(name string, addrs []string) error {
	r, err := router.New(router.Config{Replicas: addrs})
	if err != nil {
		return err
	}
	defer r.Close()
	g.router = r
	err = g.scenario(name, g.routedBatchLoop, false)
	g.router = nil
	if err != nil {
		return err
	}
	st := r.Stats()
	fmt.Fprintf(g.out, "  routed over %d replicas: %d batches, %d hedges (%d won), %d ejections\n",
		len(addrs), st.Batches, st.Hedges, st.HedgeWins, st.Ejections)
	if st.Ejections > 0 {
		return fmt.Errorf("%s: %d replicas ejected during a healthy-topology run", name, st.Ejections)
	}
	return nil
}

// routedBatchLoop is binaryBatchLoop through the router: batches split
// across replicas, hedged, first arrival wins. The router is shared by
// every client goroutine (it is concurrent-safe; connections pool per
// replica).
func (g *netGen) routedBatchLoop(client int, probes [][]byte, n int, lat *[]int64) error {
	mask := len(probes) - 1
	batch := make([][]byte, g.cfg.batch)
	for done := 0; done < n; {
		size := g.cfg.batch
		if n-done < size {
			size = n - done
		}
		lo := done & mask
		for j := 0; j < size; j++ {
			batch[j] = probes[(lo+j)&mask]
		}
		start := time.Now()
		present, err := g.router.ContainsBatch(batch[:size])
		if err != nil {
			return err
		}
		*lat = append(*lat, time.Since(start).Nanoseconds())
		for j, ok := range present {
			if ((lo+j)&mask)%2 == 1 && !ok {
				return fmt.Errorf("false negative through the router for member probe %d", (lo+j)&mask)
			}
		}
		done += size
	}
	return nil
}

// binaryContainsLoop issues single-key queries over the binary wire
// protocol, one synchronous connection per client.
func (g *netGen) binaryContainsLoop(client int, probes [][]byte, n int, lat *[]int64) error {
	c, err := wire.Dial(g.binAddr)
	if err != nil {
		return err
	}
	defer c.Close()
	mask := len(probes) - 1
	for i := 0; i < n; i++ {
		idx := i & mask
		start := time.Now()
		present, err := c.Contains(probes[idx])
		if err != nil {
			return err
		}
		*lat = append(*lat, time.Since(start).Nanoseconds())
		if idx%2 == 1 && !present {
			return fmt.Errorf("false negative over binary protocol for member probe %d", idx)
		}
	}
	return nil
}

// binaryBatchLoop issues OpContainsBatch frames of the configured batch
// size; like batchLoop, one latency sample covers a whole batch while
// ops stay per-key.
func (g *netGen) binaryBatchLoop(client int, probes [][]byte, n int, lat *[]int64) error {
	c, err := wire.Dial(g.binAddr)
	if err != nil {
		return err
	}
	defer c.Close()
	mask := len(probes) - 1
	batch := make([][]byte, g.cfg.batch)
	for done := 0; done < n; {
		size := g.cfg.batch
		if n-done < size {
			size = n - done
		}
		lo := done & mask
		for j := 0; j < size; j++ {
			batch[j] = probes[(lo+j)&mask]
		}
		start := time.Now()
		present, err := c.ContainsBatch(batch[:size])
		if err != nil {
			return err
		}
		*lat = append(*lat, time.Since(start).Nanoseconds())
		for j, ok := range present {
			if ((lo+j)&mask)%2 == 1 && !ok {
				return fmt.Errorf("false negative over binary protocol for member probe %d", (lo+j)&mask)
			}
		}
		done += size
	}
	return nil
}

// scenario fans n total keys across the configured clients through
// loop, measures wall time and per-request latency, verifies the
// zero-false-negative contract on member probes, and records the
// result. Background /v1/add writers run only when withWriters is set
// (the "+writers" scenarios), so the plain scenarios measure a filter
// that is not concurrently mutating.
func (g *netGen) scenario(name string, loop loopFunc, withWriters bool) error {
	cfg := g.cfg
	perClient := cfg.ops / cfg.clients
	if perClient == 0 {
		perClient = 1
	}

	// Warmup establishes connections and primes the coalescer.
	warm := perClient / 10
	if warm > 2000 {
		warm = 2000
	}
	if warm < 1 {
		warm = 1
	}
	var warmLat []int64
	if err := loop(0, g.streams[0], warm, &warmLat); err != nil {
		return fmt.Errorf("%s: warmup: %w", name, err)
	}

	if withWriters {
		g.startWriters()
	}
	lats := make([][]int64, cfg.clients)
	errs := make([]error, cfg.clients)
	var wg sync.WaitGroup
	begin := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = loop(c, g.streams[c], perClient, &lats[c])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	if withWriters {
		g.stopWriters()
	}
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	ops := int64(perClient) * int64(cfg.clients)
	res := benchfmt.Result{
		Name:    name,
		Clients: cfg.clients,
		Ops:     ops,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
		QPS:     float64(ops) / elapsed.Seconds(),
		P50Ns:   benchfmt.Percentile(all, 50),
		P95Ns:   benchfmt.Percentile(all, 95),
		P99Ns:   benchfmt.Percentile(all, 99),
	}
	g.results = append(g.results, res)
	fmt.Fprintf(g.out, "%-32s %9.0f qps  %8.0f ns/op   p50 %s  p95 %s  p99 %s   (%v)\n",
		name, res.QPS, res.NsPerOp,
		time.Duration(res.P50Ns).Round(time.Microsecond),
		time.Duration(res.P95Ns).Round(time.Microsecond),
		time.Duration(res.P99Ns).Round(time.Microsecond),
		elapsed.Round(time.Millisecond))
	return nil
}

// containsLoop issues raw single-key /v1/contains requests.
func (g *netGen) containsLoop(client int, probes [][]byte, n int, lat *[]int64) error {
	hc := &http.Client{Transport: g.transport}
	url := g.base + "/v1/contains"
	mask := len(probes) - 1
	var buf [8]byte
	for i := 0; i < n; i++ {
		idx := i & mask
		start := time.Now()
		resp, err := hc.Post(url, rawContentType, bytes.NewReader(probes[idx]))
		if err != nil {
			return err
		}
		nr, err := io.ReadFull(resp.Body, buf[:1])
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || nr != 1 {
			return fmt.Errorf("short contains response (%d bytes): %v", nr, err)
		}
		*lat = append(*lat, time.Since(start).Nanoseconds())
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("contains: HTTP %d", resp.StatusCode)
		}
		if idx%2 == 1 && buf[0] != '1' {
			return fmt.Errorf("false negative over HTTP for member probe %d", idx)
		}
	}
	return nil
}

// batchLoop issues /v1/contains_batch requests of the configured batch
// size; one latency sample covers one whole batch, but ops/NsPerOp stay
// per-key so batch numbers compare directly against single-key ones.
func (g *netGen) batchLoop(client int, probes [][]byte, n int, lat *[]int64) error {
	hc := &http.Client{Transport: g.transport}
	url := g.base + "/v1/contains_batch"
	mask := len(probes) - 1
	type batchResp struct {
		Present []bool `json:"present"`
	}
	enc := make([]string, g.cfg.batch)
	for done := 0; done < n; {
		size := g.cfg.batch
		if n-done < size {
			size = n - done
		}
		lo := done & mask
		for j := 0; j < size; j++ {
			enc[j] = base64.StdEncoding.EncodeToString(probes[(lo+j)&mask])
		}
		body, err := json.Marshal(map[string][]string{"keys": enc[:size]})
		if err != nil {
			return err
		}
		start := time.Now()
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		var br batchResp
		err = json.NewDecoder(resp.Body).Decode(&br)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("contains_batch decode: %w", err)
		}
		*lat = append(*lat, time.Since(start).Nanoseconds())
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("contains_batch: HTTP %d", resp.StatusCode)
		}
		if len(br.Present) != size {
			return fmt.Errorf("contains_batch: %d results for %d keys", len(br.Present), size)
		}
		for j, ok := range br.Present {
			if ((lo+j)&mask)%2 == 1 && !ok {
				return fmt.Errorf("false negative over HTTP for member probe %d", (lo+j)&mask)
			}
		}
		done += size
	}
	return nil
}

// directBatchLoop drives the sharded filter's ContainsBatchInto with no
// server in between: batches of the configured size from a reused,
// caller-owned destination buffer — exactly the steady state a serving
// loop reaches. One latency sample covers one batch; ops stay per-key,
// comparable with every other scenario.
func (g *netGen) directBatchLoop(client int, probes [][]byte, n int, lat *[]int64) error {
	mask := len(probes) - 1
	dst := make([]bool, g.cfg.batch)
	batch := make([][]byte, g.cfg.batch)
	for done := 0; done < n; {
		size := g.cfg.batch
		if n-done < size {
			size = n - done
		}
		lo := done & mask
		for j := 0; j < size; j++ {
			batch[j] = probes[(lo+j)&mask]
		}
		start := time.Now()
		g.filter.ContainsBatchInto(dst[:size], batch[:size])
		*lat = append(*lat, time.Since(start).Nanoseconds())
		for j := 0; j < size; j++ {
			if ((lo+j)&mask)%2 == 1 && !dst[j] {
				return fmt.Errorf("false negative in direct batch for member probe %d", (lo+j)&mask)
			}
		}
		done += size
	}
	return nil
}

// startWriters streams /v1/add traffic until stopWriters.
func (g *netGen) startWriters() {
	g.stopWrite = make(chan struct{})
	for wr := 0; wr < g.cfg.writers; wr++ {
		g.writersWG.Add(1)
		go func(wr int) {
			defer g.writersWG.Done()
			hc := &http.Client{Transport: g.transport}
			url := g.base + "/v1/add"
			for i := 0; ; i++ {
				select {
				case <-g.stopWrite:
					return
				default:
				}
				key := fmt.Sprintf("fresh-%d-%09d", wr, i)
				resp, err := hc.Post(url, rawContentType, bytes.NewReader([]byte(key)))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(wr)
	}
}

func (g *netGen) stopWriters() {
	close(g.stopWrite)
	g.writersWG.Wait()
}

// finish writes the optional JSON results file.
func (g *netGen) finish() error {
	if g.cfg.benchjson == "" {
		return nil
	}
	f := benchfmt.File{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Note:      fmt.Sprintf("habfbench -net: %d keys, %s access, %d clients, batch %d, backends %s%s", g.cfg.keys, g.cfg.dist, g.cfg.clients, g.cfg.batch, g.noteBackends, tuneNote(g.cfg.tune)),
		Results:   g.results,
	}
	if err := benchfmt.Write(g.cfg.benchjson, f); err != nil {
		return err
	}
	fmt.Fprintf(g.out, "\nwrote %s (%d results)\n", g.cfg.benchjson, len(g.results))
	return nil
}

// tuneNote renders the -tune flag for the benchjson note line.
func tuneNote(tune string) string {
	if tune == "" {
		return ""
	}
	return ", tune " + tune
}
