package habf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func buildForSerde(t testing.TB, fast bool) (*Filter, [][]byte, []WeightedKey) {
	t.Helper()
	pos := genKeys(3000, "ser-p")
	neg := genNegatives(3000, "ser-n", func(i int) float64 { return float64(i%9 + 1) })
	f, err := New(pos, neg, Params{TotalBits: 3000 * 12, Seed: 5, Fast: fast})
	if err != nil {
		t.Fatal(err)
	}
	return f, pos, neg
}

func TestSerializeRoundtrip(t *testing.T) {
	for _, fast := range []bool{false, true} {
		t.Run(fmt.Sprintf("fast=%v", fast), func(t *testing.T) {
			f, pos, neg := buildForSerde(t, fast)
			data, err := f.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			g, err := UnmarshalFilter(data)
			if err != nil {
				t.Fatal(err)
			}
			if g.Name() != f.Name() || g.K() != f.K() || g.SizeBits() != f.SizeBits() {
				t.Fatal("metadata mismatch after roundtrip")
			}
			for _, k := range pos {
				if !g.Contains(k) {
					t.Fatalf("decoded filter lost member %q", k)
				}
			}
			for i := 0; i < 5000; i++ {
				probe := []byte(fmt.Sprintf("probe-%d", i))
				if f.Contains(probe) != g.Contains(probe) {
					t.Fatalf("decoded filter disagrees on %q", probe)
				}
			}
			for _, n := range neg {
				if f.Contains(n.Key) != g.Contains(n.Key) {
					t.Fatalf("decoded filter disagrees on negative %q", n.Key)
				}
			}
		})
	}
}

func TestUnmarshalErrors(t *testing.T) {
	f, _, _ := buildForSerde(t, false)
	good, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"nil":        nil,
		"short":      good[:10],
		"bad magic":  append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated":  good[:len(good)-5],
		"trailing":   append(append([]byte(nil), good...), 0xFF),
		"no-blocks":  good[:20],
		"version":    func() []byte { b := append([]byte(nil), good...); b[4] = 9; return b }(),
		"zero-k":     func() []byte { b := append([]byte(nil), good...); b[6] = 0; return b }(),
		"cell-width": func() []byte { b := append([]byte(nil), good...); b[7] = 7; return b }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

// Property: serialization is a pure function of the filter, and decode ∘
// encode is the identity on query behavior for random probes.
func TestQuickSerializeStable(t *testing.T) {
	f, _, _ := buildForSerde(t, false)
	a, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("MarshalBinary not deterministic")
	}
	g, err := UnmarshalFilter(a)
	if err != nil {
		t.Fatal(err)
	}
	check := func(key []byte) bool { return f.Contains(key) == g.Contains(key) }
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSerializedSizeReasonable(t *testing.T) {
	f, _, _ := buildForSerde(t, false)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	logical := f.SizeBits() / 8
	if uint64(len(data)) > logical+logical/8+128 {
		t.Errorf("serialized %d bytes for %d logical bytes", len(data), logical)
	}
}
