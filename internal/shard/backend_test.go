package shard

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/filtercore"
	"repro/internal/snapshot"
)

// backendsUnderTest honors the CI matrix's FILTERCORE_BACKEND isolation
// (see internal/filtercore's conformance suite).
func backendsUnderTest() []string {
	if only := os.Getenv("FILTERCORE_BACKEND"); only != "" {
		return []string{only}
	}
	return filtercore.Names()
}

// staticBackendsUnderTest filters backendsUnderTest down to the static
// families (the ones whose Adds ride the pending buffer).
func staticBackendsUnderTest(t *testing.T) []string {
	var out []string
	for _, name := range backendsUnderTest() {
		f, err := filtercore.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.Static {
			out = append(out, name)
		}
	}
	return out
}

// requireBackend skips a backend-specific test when the CI matrix has
// isolated the run to a different backend.
func requireBackend(t *testing.T, backend string) {
	if only := os.Getenv("FILTERCORE_BACKEND"); only != "" && only != backend {
		t.Skipf("FILTERCORE_BACKEND=%s isolates this run", only)
	}
}

// TestBackendsServeAndSnapshot runs the full shard-layer contract over
// every registered backend: zero false negatives, batch parity, Adds
// (absorbed or pending), snapshot → restore answering identically, and
// restored-set Adds.
func TestBackendsServeAndSnapshot(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			s, pos, negKeys := newSet(t, 4000, Config{Shards: 8, Backend: backend})
			if got := s.Backend(); got != backend {
				t.Fatalf("Backend() = %q, want %q", got, backend)
			}
			if !strings.Contains(s.Name(), "Sharded[8×") {
				t.Fatalf("unexpected set name %q", s.Name())
			}
			for _, key := range pos {
				if !s.Contains(key) {
					t.Fatalf("false negative for %q", key)
				}
			}
			probe := append(append([][]byte{}, pos[:800]...), negKeys[:800]...)
			got := s.ContainsBatch(probe)
			for i, key := range probe {
				if want := s.Contains(key); got[i] != want {
					t.Fatalf("key %q: batch=%v per-key=%v", key, got[i], want)
				}
			}

			// Adds are queryable on return regardless of backend
			// mutability (static backends serve them from the pending
			// buffer until a rebuild absorbs them).
			fresh := make([][]byte, 300)
			for i := range fresh {
				fresh[i] = []byte(fmt.Sprintf("late-%s-%06d", backend, i))
				s.Add(fresh[i])
				if !s.Contains(fresh[i]) {
					t.Fatalf("key %q not visible immediately after Add", fresh[i])
				}
			}
			for i, ok := range s.ContainsBatch(fresh) {
				if !ok {
					t.Fatalf("batch lost added key %d", i)
				}
			}

			// Snapshot captures every acked Add — for a static backend
			// that means absorbing the pending buffer first.
			g := snapshotRoundtrip(t, s)
			if g.Backend() != backend {
				t.Fatalf("restored Backend() = %q, want %q", g.Backend(), backend)
			}
			if g.Name() != s.Name() {
				t.Fatalf("restored name %q != %q", g.Name(), s.Name())
			}
			for _, key := range append(append([][]byte{}, pos...), fresh...) {
				if !g.Contains(key) {
					t.Fatalf("restored set lost %q", key)
				}
			}
			if st := g.Stats(); st.Pending != 0 {
				t.Fatalf("restored set starts with %d pending keys", st.Pending)
			}
			// Restored sets keep accepting Adds with zero false negatives.
			for i := 0; i < 100; i++ {
				key := []byte(fmt.Sprintf("post-restore-%06d", i))
				g.Add(key)
				if !g.Contains(key) {
					t.Fatalf("restored set lost added key %q", key)
				}
			}
			g.WaitRebuilds()
			s.WaitRebuilds()
		})
	}
}

// TestStaticBackendPendingAbsorbedByRebuild pins the static-backend Add
// path: keys land in the pending buffer, the drift rebuild absorbs them
// into a fresh filter, and the buffer empties.
func TestStaticBackendPendingAbsorbedByRebuild(t *testing.T) {
	for _, backend := range staticBackendsUnderTest(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			s, pos, _ := newSet(t, 2000, Config{Shards: 4, Backend: backend, RebuildThreshold: 0.01})
			// The fresh keys reuse the exact fixture-negative key shape
			// ("absent-" + numeric tail outside the built range): learned
			// backends score keys of any other shape out-of-distribution,
			// often above τ, and a filter that already answers true never
			// buffers the key as pending.
			var fresh [][]byte
			for i := 0; i < 400; i++ {
				k := []byte(fmt.Sprintf("absent-%06d", 500000+i))
				fresh = append(fresh, k)
				s.Add(k)
			}
			s.WaitRebuilds()
			st := s.Stats()
			if st.Rebuilds == 0 {
				t.Fatalf("expected rebuilds to absorb pending keys: %+v", st)
			}
			if st.RebuildErrors != 0 {
				t.Fatalf("rebuild errors: %+v", st)
			}
			for _, key := range append(append([][]byte{}, pos...), fresh...) {
				if !s.Contains(key) {
					t.Fatalf("false negative for %q after rebuild", key)
				}
			}
			// Re-adding an existing member must not wedge the rebuild
			// (xor dedupes; phbf tolerates duplicates natively).
			s.Add(pos[0])
			s.WaitRebuilds()
			if got := s.Stats().RebuildErrors; got != 0 {
				t.Fatalf("duplicate Add caused %d rebuild errors", got)
			}
		})
	}
}

// TestStaticBackendSnapshotAbsorbsPending verifies the durability
// contract with rebuilds disabled: everything still pending at Save
// time is absorbed into the frames, and nothing stays pending after.
func TestStaticBackendSnapshotAbsorbsPending(t *testing.T) {
	for _, backend := range staticBackendsUnderTest(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			s, pos, _ := newSet(t, 1500, Config{Shards: 4, Backend: backend, RebuildThreshold: -1})
			var fresh [][]byte
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("absent-%06d", 600000+i))
				fresh = append(fresh, k)
				s.Add(k)
			}
			if st := s.Stats(); st.Pending == 0 {
				t.Fatal("expected pending keys with rebuilds disabled")
			}
			g := snapshotRoundtrip(t, s)
			for _, key := range append(append([][]byte{}, pos...), fresh...) {
				if !g.Contains(key) {
					t.Fatalf("snapshot dropped acked key %q", key)
				}
			}
			// The absorb is a real rebuild: the source set has no pending
			// left, and no pending-keys frame was needed.
			if st := s.Stats(); st.Pending != 0 {
				t.Fatalf("%d keys still pending after snapshot", st.Pending)
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if len(snap.Pending) != 0 {
				t.Fatalf("non-restored set wrote %d pending-frame keys", len(snap.Pending))
			}
		})
	}
}

// TestRestoredStaticBackendPendingDurable is the ROADMAP gap this PR
// closes: a restored static set has no key list to rebuild from, so its
// post-restore Adds stay pending — and must survive snapshot → restore
// cycles via the container's pending-keys frame instead of failing the
// Save. The chain runs three generations deep to prove pending keys
// accumulate and persist, not just survive one hop.
func TestRestoredStaticBackendPendingDurable(t *testing.T) {
	for _, backend := range staticBackendsUnderTest(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			s, pos, _ := newSet(t, 1000, Config{Shards: 2, Backend: backend})
			gen1 := snapshotRoundtrip(t, s)

			// The adds reuse the exact fixture-negative key shape (an
			// "absent-" prefix and a numeric tail outside the built
			// range): learned backends score keys of any other shape
			// out-of-distribution, often above τ, and a filter that
			// already answers true never buffers the key as pending.
			var acked [][]byte
			for i := 0; i < 60; i++ {
				k := []byte(fmt.Sprintf("absent-%06d", 800000+i))
				acked = append(acked, k)
				gen1.Add(k)
			}
			if st := gen1.Stats(); st.Pending == 0 {
				t.Fatal("expected pending keys on the restored static set")
			}

			gen2 := snapshotRoundtrip(t, gen1)
			for _, key := range append(append([][]byte{}, pos...), acked...) {
				if !gen2.Contains(key) {
					t.Fatalf("generation 2 lost acked key %q", key)
				}
			}
			if st := gen2.Stats(); st.Pending == 0 {
				t.Fatal("restored pending keys were not re-buffered")
			}

			// Second generation keeps accepting Adds; the third must carry
			// both generations' pending keys.
			for i := 0; i < 40; i++ {
				k := []byte(fmt.Sprintf("absent-%06d", 900000+i))
				acked = append(acked, k)
				gen2.Add(k)
			}
			gen3 := snapshotRoundtrip(t, gen2)
			for _, key := range append(append([][]byte{}, pos...), acked...) {
				if !gen3.Contains(key) {
					t.Fatalf("generation 3 lost acked key %q", key)
				}
			}
		})
	}
}

// TestPendingFrameRoundtripsDeterministically pins the container-level
// shape of the pending-keys section: sorted keys, byte-identical
// re-serialization, and the flag bit round-tripping through Unmarshal.
func TestPendingFrameRoundtripsDeterministically(t *testing.T) {
	static := staticBackendsUnderTest(t)
	if len(static) == 0 {
		t.Skip("no static backend in this FILTERCORE_BACKEND run")
	}
	s, _, _ := newSet(t, 800, Config{Shards: 2, Backend: static[0]})
	g := snapshotRoundtrip(t, s)
	for i := 0; i < 30; i++ {
		g.Add([]byte(fmt.Sprintf("absent-%06d", 700000+i)))
	}
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Pending) == 0 {
		t.Fatal("no pending keys captured")
	}
	for i := 1; i < len(snap.Pending); i++ {
		if string(snap.Pending[i-1]) >= string(snap.Pending[i]) {
			t.Fatal("pending keys not in strict sorted order")
		}
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Meta.HasPending || len(decoded.Pending) != len(snap.Pending) {
		t.Fatalf("pending section did not round-trip: HasPending=%v, %d keys (want %d)",
			decoded.Meta.HasPending, len(decoded.Pending), len(snap.Pending))
	}
	again, err := decoded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("pending-keys container re-serialization is not byte-identical")
	}
}

// TestBackendMismatchFailsLoudly: a container stamped with one backend
// kind must not decode through another backend's frame decoder.
func TestBackendMismatchFailsLoudly(t *testing.T) {
	requireBackend(t, "bloom")
	s, _, _ := newSet(t, 1000, Config{Shards: 4, Backend: "bloom"})
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Unknown kind: registry lookup must reject it.
	snap.Meta.Backend = 0xEE
	if _, err := Restore(snap); err == nil {
		t.Fatal("Restore accepted an unknown backend kind")
	}
	// Cross-backend: HABF kind over bloom frames must fail at frame
	// decode (wrong wire magic), not misparse.
	snap.Meta.Backend = 0
	if _, err := Restore(snap); err == nil {
		t.Fatal("Restore misdecoded bloom frames as HABF")
	}
}

// TestBackendsConcurrentAddAndQuery is the -race workout across
// backends: readers, writers and rebuilds on the same set, including
// the static pending path.
func TestBackendsConcurrentAddAndQuery(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			s, pos, negKeys := newSet(t, 3000, Config{Shards: 8, Backend: backend, RebuildThreshold: 0.01})
			const writers = 2
			const perWriter = 250
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						s.Add([]byte(fmt.Sprintf("hot-%s-%d-%06d", backend, w, i)))
					}
				}(w)
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					batch := make([][]byte, 0, 64)
					for i := 0; i < 1500; i++ {
						key := pos[(i*7+r)%len(pos)]
						if !s.Contains(key) {
							t.Errorf("false negative for %q under concurrency", key)
							return
						}
						batch = append(batch, key, negKeys[(i*3+r)%len(negKeys)])
						if len(batch) == cap(batch) {
							for j, ok := range s.ContainsBatch(batch) {
								if j%2 == 0 && !ok {
									t.Errorf("batch false negative under concurrency")
									return
								}
							}
							batch = batch[:0]
						}
					}
				}(r)
			}
			wg.Wait()
			s.WaitRebuilds()
			if st := s.Stats(); st.RebuildErrors != 0 {
				t.Fatalf("rebuild errors: %+v", st)
			}
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					key := []byte(fmt.Sprintf("hot-%s-%d-%06d", backend, w, i))
					if !s.Contains(key) {
						t.Fatalf("added key %q lost", key)
					}
				}
			}
			// Save under no traffic must capture everything, pending
			// included.
			g := snapshotRoundtrip(t, s)
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					key := []byte(fmt.Sprintf("hot-%s-%d-%06d", backend, w, i))
					if !g.Contains(key) {
						t.Fatalf("restored set lost %q", key)
					}
				}
			}
		})
	}
}

// TestSnapshotUnderConcurrentAddsAllBackends stresses Save racing
// writers for every backend: every Add acked before Save begins must be
// in the snapshot (the static path absorbs pending synchronously).
func TestSnapshotUnderConcurrentAddsAllBackends(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			s, _, _ := newSet(t, 2000, Config{Shards: 4, Backend: backend, RebuildThreshold: 0.01})
			// Acked before snapshot: must all be captured.
			var acked [][]byte
			for i := 0; i < 150; i++ {
				k := []byte(fmt.Sprintf("acked-%06d", i))
				acked = append(acked, k)
				s.Add(k)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
						s.Add([]byte(fmt.Sprintf("racing-%06d", i)))
					}
				}
			}()
			snap, err := s.Snapshot()
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			data, err := snap.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := snapshot.Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Restore(decoded)
			if err != nil {
				t.Fatal(err)
			}
			for _, key := range acked {
				if !g.Contains(key) {
					t.Fatalf("snapshot dropped acked key %q", key)
				}
			}
			s.WaitRebuilds()
		})
	}
}
