package hashes

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCorpusShape(t *testing.T) {
	c := Corpus()
	if len(c) != 22 {
		t.Fatalf("corpus has %d functions, Table II lists 22", len(c))
	}
	seen := map[string]bool{}
	for _, n := range c {
		if n.Name == "" || n.Fn == nil {
			t.Fatalf("corpus entry %+v incomplete", n)
		}
		if seen[n.Name] {
			t.Fatalf("duplicate corpus name %q", n.Name)
		}
		seen[n.Name] = true
	}
	if CorpusSize() != len(c) {
		t.Fatalf("CorpusSize = %d, want %d", CorpusSize(), len(c))
	}
	if len(CorpusFuncs()) != len(c) {
		t.Fatal("CorpusFuncs length mismatch")
	}
}

func TestCorpusCopyIsIndependent(t *testing.T) {
	a := Corpus()
	a[0].Name = "mutated"
	if Corpus()[0].Name == "mutated" {
		t.Fatal("Corpus returns shared backing array")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"XX64", "DJB", "ELF", "CRC32"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestDeterminism(t *testing.T) {
	keys := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("hello world, this is a longer key to cross chunk boundaries!!"),
	}
	for _, n := range Corpus() {
		for _, k := range keys {
			a, b := n.Fn(k), n.Fn(k)
			if a != b {
				t.Errorf("%s not deterministic on %q", n.Name, k)
			}
		}
	}
}

// Every length from 0 to 64 must be handled without panic and with results
// that change when the data changes (catches chunk-boundary bugs in the
// block-based functions).
func TestAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range Corpus() {
		prev := map[uint64]int{}
		for l := 0; l <= 64; l++ {
			buf := make([]byte, l)
			rng.Read(buf)
			h := n.Fn(buf)
			prev[h]++
		}
		// 65 random inputs: a strong hash yields 65 distinct values; even the
		// weak classics must not collapse to a handful.
		if len(prev) < 50 {
			t.Errorf("%s produced only %d distinct values over 65 random inputs", n.Name, len(prev))
		}
	}
}

func TestLastByteMatters(t *testing.T) {
	// Flipping the final byte must change the hash for every corpus
	// function (tail-handling correctness).
	for _, l := range []int{1, 3, 4, 7, 8, 9, 12, 15, 16, 17, 31, 32, 33} {
		a := make([]byte, l)
		b := make([]byte, l)
		for i := range a {
			a[i] = byte(i + 1)
			b[i] = byte(i + 1)
		}
		b[l-1] ^= 0x80
		for _, n := range Corpus() {
			if n.Fn(a) == n.Fn(b) {
				t.Errorf("%s: flipping last byte of %d-byte key did not change hash", n.Name, l)
			}
		}
	}
}

func TestFunctionsMutuallyDifferent(t *testing.T) {
	// On a batch of keys, no two corpus functions may agree everywhere.
	keys := make([][]byte, 32)
	rng := rand.New(rand.NewSource(9))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d-%d", i, rng.Int63()))
	}
	c := Corpus()
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			same := true
			for _, k := range keys {
				if c[i].Fn(k) != c[j].Fn(k) {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s and %s agree on all %d test keys", c[i].Name, c[j].Name, len(keys))
			}
		}
	}
}

// Uniformity sanity check for the strong functions: bucket 20k random keys
// into 64 buckets and verify the chi-squared statistic is not catastrophic.
func TestStrongUniformity(t *testing.T) {
	strong := []string{"XX64", "City64", "Murmur64", "BOB", "OAAT", "SuperFast", "Hsieh", "TWMX", "FNV"}
	const (
		nKeys    = 20000
		nBuckets = 64
	)
	rng := rand.New(rand.NewSource(123))
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("uniformity/%d/%d", i, rng.Int63()))
	}
	for _, name := range strong {
		fn, _ := ByName(name)
		counts := make([]float64, nBuckets)
		for _, k := range keys {
			counts[fn(k)%nBuckets]++
		}
		expected := float64(nKeys) / nBuckets
		var chi2 float64
		for _, c := range counts {
			d := c - expected
			chi2 += d * d / expected
		}
		// 63 degrees of freedom; mean 63, stddev ~11.2. 150 is far beyond
		// any plausible statistical fluctuation and only catches brokenness.
		if chi2 > 150 {
			t.Errorf("%s: chi-squared %.1f over %d buckets (broken distribution)", name, chi2, nBuckets)
		}
	}
}

func TestXXH64SeedChangesResult(t *testing.T) {
	key := []byte("seeded key")
	if XXH64Seed(key, 1) == XXH64Seed(key, 2) {
		t.Fatal("different seeds produced identical xx64 values")
	}
	if XXH64(key) != XXH64Seed(key, 0) {
		t.Fatal("XXH64 is not seed-0 XXH64Seed")
	}
}

func TestSeededAdapter(t *testing.T) {
	key := []byte("adapter")
	a := Seeded(City64, key, 1)
	b := Seeded(City64, key, 2)
	if a == b {
		t.Fatal("Seeded: different seeds gave identical values")
	}
	if a != Seeded(City64, key, 1) {
		t.Fatal("Seeded not deterministic")
	}
}

func TestSplit128LanesIndependent(t *testing.T) {
	// The two lanes must differ and must not be trivially related across keys.
	equal := 0
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("lane-%d", i))
		hi, lo := Split128(key, 7)
		if hi == lo {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("%d/1000 keys had identical 128-bit lanes", equal)
	}
}

func TestDouble(t *testing.T) {
	h1, h2 := uint64(100), uint64(6) // even h2 must still cycle (forced odd)
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		seen[Double(h1, h2, i)%8] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Double with odd-forced step visited %d/8 residues", len(seen))
	}
	if Double(h1, h2, 0) != h1 {
		t.Fatal("Double(·,·,0) must equal h1")
	}
}

func TestMix64(t *testing.T) {
	if Mix64(0) == 0 {
		// splitmix64 finalizer maps 0 to 0 — document the property.
		t.Log("Mix64(0) = 0 (fixed point), callers must not rely on non-zero")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Mix64(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Mix64 collided on sequential inputs: %d/1000 distinct", len(seen))
	}
}

// Property: every corpus function is a pure function of its input bytes.
func TestQuickPurity(t *testing.T) {
	for _, n := range Corpus() {
		fn := n.Fn
		f := func(data []byte) bool {
			cp := append([]byte(nil), data...)
			h1 := fn(data)
			h2 := fn(cp)
			return h1 == h2
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

// Property: corpus functions never mutate their input.
func TestQuickNoMutation(t *testing.T) {
	f := func(data []byte) bool {
		cp := append([]byte(nil), data...)
		for _, n := range Corpus() {
			n.Fn(data)
		}
		for i := range data {
			if data[i] != cp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAvalancheStrong(t *testing.T) {
	// Single-bit input flips should flip roughly half the output bits for
	// the strong functions. We only require a loose band (20–44 of 64).
	strong := []string{"XX64", "Murmur64", "City64", "TWMX"}
	rng := rand.New(rand.NewSource(77))
	for _, name := range strong {
		fn, _ := ByName(name)
		var total, trials float64
		for i := 0; i < 200; i++ {
			buf := make([]byte, 16)
			rng.Read(buf)
			h0 := fn(buf)
			bit := rng.Intn(128)
			buf[bit/8] ^= 1 << (bit % 8)
			h1 := fn(buf)
			total += float64(popcount64(h0 ^ h1))
			trials++
		}
		avg := total / trials
		if math.Abs(avg-32) > 12 {
			t.Errorf("%s: avalanche average %.1f bits, want ≈32", name, avg)
		}
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkCorpusAll(b *testing.B) {
	key := []byte("http://example.com/some/realistic/path?query=1234567890")
	for _, n := range Corpus() {
		b.Run(n.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(key)))
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += n.Fn(key)
			}
			_ = sink
		})
	}
}

func BenchmarkSplit128(b *testing.B) {
	key := []byte("http://example.com/some/realistic/path?query=1234567890")
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		hi, lo := Split128(key, 0)
		sink += hi ^ lo
	}
	_ = sink
}

func TestEnhancedDouble(t *testing.T) {
	// i=0 must reduce to h1 (triangular term vanishes).
	if EnhancedDouble(42, 7, 0) != 42 {
		t.Fatal("EnhancedDouble(·,·,0) != h1")
	}
	// The triangular term must separate it from plain double hashing for
	// i >= 2.
	if EnhancedDouble(42, 7, 2) == Double(42, 7, 2) {
		t.Fatal("enhanced variant identical to plain at i=2")
	}
	// Position diversity: for a table that defeats plain double hashing
	// (indices forming an arithmetic progression mod a small m), the
	// enhanced variant must produce more distinct residues on average.
	const m = 97
	plainHits, enhHits := map[uint64]bool{}, map[uint64]bool{}
	for i := 0; i < 16; i++ {
		plainHits[Double(5, 97*3, i)%m] = true // step ≡ small mod m
		enhHits[EnhancedDouble(5, 97*3, i)%m] = true
	}
	if len(enhHits) <= len(plainHits) {
		t.Errorf("enhanced double hashing no more diverse: %d vs %d residues",
			len(enhHits), len(plainHits))
	}
}
