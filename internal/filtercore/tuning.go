package filtercore

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// KnobType is the value domain of one tuning knob.
type KnobType int

const (
	// KnobInt is an integer knob with inclusive [Min, Max] bounds.
	KnobInt KnobType = iota
	// KnobFloat is a finite float knob with inclusive [Min, Max] bounds.
	KnobFloat
	// KnobEnum is a string knob restricted to the Enum list.
	KnobEnum
)

// Knob describes one tuning parameter of a backend family: its name (the
// key in a "k=v,k=v" tuning string), value domain, bounds and default.
// Knobs whose zero/default value means "derive from the bit budget" say
// so in Doc; the schema only enforces the domain, cross-field validity
// is the backend constructor's job.
type Knob struct {
	Name string
	Type KnobType
	// Min and Max bound KnobInt and KnobFloat values, inclusive.
	Min, Max float64
	// Enum lists the accepted values of a KnobEnum knob.
	Enum []string
	// Default is the knob's value when a tuning string omits it. It must
	// itself be a valid value; NewSchema panics otherwise.
	Default string
	// Doc is the one-line human description (README knob table, flag help).
	Doc string
}

// Schema is one backend family's complete knob set. Knobs are kept in
// sorted name order, which defines the canonical rendering of every
// Tuning parsed against the schema.
type Schema struct {
	knobs    []Knob
	byName   map[string]int
	defaults []string // canonical default per knob, index-aligned
}

// NewSchema builds a schema from knobs. It panics on a duplicate or
// empty name and on a default that its own knob rejects — schemas are
// package-level constants of backend adapters, where that is a
// programming error.
func NewSchema(knobs ...Knob) *Schema {
	s := &Schema{
		knobs:  append([]Knob(nil), knobs...),
		byName: make(map[string]int, len(knobs)),
	}
	sort.Slice(s.knobs, func(a, b int) bool { return s.knobs[a].Name < s.knobs[b].Name })
	s.defaults = make([]string, len(s.knobs))
	for i, k := range s.knobs {
		if k.Name == "" || strings.ContainsAny(k.Name, "=, ") {
			panic(fmt.Sprintf("filtercore: invalid knob name %q", k.Name))
		}
		if _, dup := s.byName[k.Name]; dup {
			panic(fmt.Sprintf("filtercore: duplicate knob %q", k.Name))
		}
		s.byName[k.Name] = i
		canon, err := canonicalKnobValue(k, k.Default)
		if err != nil {
			panic(fmt.Sprintf("filtercore: knob %q default: %v", k.Name, err))
		}
		s.defaults[i] = canon
	}
	return s
}

// Knobs returns the schema's knob descriptors in canonical (name) order.
func (s *Schema) Knobs() []Knob { return append([]Knob(nil), s.knobs...) }

// canonicalKnobValue validates raw against the knob's domain and returns
// its canonical rendering, so that "07", "7" and "7.0e0" cannot produce
// distinct tuning strings for the same configuration.
func canonicalKnobValue(k Knob, raw string) (string, error) {
	switch k.Type {
	case KnobInt:
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return "", fmt.Errorf("%q is not an integer", raw)
		}
		if float64(v) < k.Min || float64(v) > k.Max {
			return "", fmt.Errorf("%d out of range [%d,%d]", v, int64(k.Min), int64(k.Max))
		}
		return strconv.FormatInt(v, 10), nil
	case KnobFloat:
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("%q is not a finite number", raw)
		}
		if v < k.Min || v > k.Max {
			return "", fmt.Errorf("%v out of range [%v,%v]", v, k.Min, k.Max)
		}
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	case KnobEnum:
		for _, e := range k.Enum {
			if e == raw {
				return raw, nil
			}
		}
		return "", fmt.Errorf("%q not one of %v", raw, k.Enum)
	default:
		return "", fmt.Errorf("unknown knob type %d", k.Type)
	}
}

// Tuning is a validated, canonical knob assignment for one backend
// family: every knob of the schema has a value (explicit or default).
// The zero Tuning is valid and means "no schema, all behavior derived"
// — accessors return zero values, String returns "".
//
// Two Tunings of the same schema are equal exactly when their String
// forms are equal, which is what the snapshot layer persists and the
// restore path compares.
type Tuning struct {
	schema *Schema
	values []string // canonical value per schema knob, index-aligned
}

// Parse builds a Tuning from a "k=v,k=v" string. Unknown knobs,
// duplicate knobs, malformed assignments and out-of-domain values are
// rejected. The empty string yields the schema's defaults.
func (s *Schema) Parse(in string) (Tuning, error) {
	t := Tuning{schema: s, values: append([]string(nil), s.defaults...)}
	if strings.TrimSpace(in) == "" {
		return t, nil
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(in, ",") {
		part = strings.TrimSpace(part)
		name, val, ok := strings.Cut(part, "=")
		name, val = strings.TrimSpace(name), strings.TrimSpace(val)
		if !ok || name == "" {
			return Tuning{}, fmt.Errorf("tuning: malformed assignment %q (want knob=value)", part)
		}
		i, known := s.byName[name]
		if !known {
			return Tuning{}, fmt.Errorf("tuning: unknown knob %q (have %s)", name, strings.Join(s.names(), ", "))
		}
		if seen[name] {
			return Tuning{}, fmt.Errorf("tuning: knob %q set twice", name)
		}
		seen[name] = true
		canon, err := canonicalKnobValue(s.knobs[i], val)
		if err != nil {
			return Tuning{}, fmt.Errorf("tuning: knob %q: %w", name, err)
		}
		t.values[i] = canon
	}
	return t, nil
}

// Default returns the schema's all-defaults Tuning.
func (s *Schema) Default() Tuning {
	return Tuning{schema: s, values: append([]string(nil), s.defaults...)}
}

func (s *Schema) names() []string {
	out := make([]string, len(s.knobs))
	for i, k := range s.knobs {
		out[i] = k.Name
	}
	return out
}

// IsZero reports whether t is the zero Tuning (no schema attached).
func (t Tuning) IsZero() bool { return t.schema == nil }

// String renders the full knob set in canonical form: sorted knob
// names, canonical values, "k=v,k=v". Equal configurations always
// render identically, so the snapshot tuning frame is byte-stable.
func (t Tuning) String() string {
	if t.schema == nil {
		return ""
	}
	var b strings.Builder
	for i, k := range t.schema.knobs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k.Name)
		b.WriteByte('=')
		b.WriteString(t.values[i])
	}
	return b.String()
}

// Value returns the canonical value of a knob, or "" when t is zero or
// the knob does not exist.
func (t Tuning) Value(name string) string {
	if t.schema == nil {
		return ""
	}
	i, ok := t.schema.byName[name]
	if !ok {
		return ""
	}
	return t.values[i]
}

// Int returns a knob's value as an int (0 when absent or non-numeric),
// the form backend constructors consume for count-like knobs where 0
// means "derive from the budget".
func (t Tuning) Int(name string) int {
	v, _ := strconv.Atoi(t.Value(name))
	return v
}

// Float returns a knob's value as a float64 (0 when absent or
// non-numeric).
func (t Tuning) Float(name string) float64 {
	v, _ := strconv.ParseFloat(t.Value(name), 64)
	return v
}

// With returns a copy of t with one knob set to value (validated and
// canonicalized). It errors on a zero Tuning — there is no schema to
// validate against.
func (t Tuning) With(name, value string) (Tuning, error) {
	if t.schema == nil {
		return Tuning{}, fmt.Errorf("tuning: cannot set %q on an untuned backend", name)
	}
	i, ok := t.schema.byName[name]
	if !ok {
		return Tuning{}, fmt.Errorf("tuning: unknown knob %q (have %s)", name, strings.Join(t.schema.names(), ", "))
	}
	canon, err := canonicalKnobValue(t.schema.knobs[i], value)
	if err != nil {
		return Tuning{}, fmt.Errorf("tuning: knob %q: %w", name, err)
	}
	out := Tuning{schema: t.schema, values: append([]string(nil), t.values...)}
	out.values[i] = canon
	return out, nil
}

// ParseTuning parses a "k=v,k=v" tuning string against the factory's
// schema, filling unset knobs with their defaults. The empty string is
// always accepted and yields DefaultTuning.
func (f *Factory) ParseTuning(s string) (Tuning, error) {
	t, err := f.TuningSchema.Parse(s)
	if err != nil {
		return Tuning{}, fmt.Errorf("filtercore: backend %q: %w", f.Name, err)
	}
	return t, nil
}

// DefaultTuning returns the factory's all-defaults knob set.
func (f *Factory) DefaultTuning() Tuning { return f.TuningSchema.Default() }
