package server

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// TestBinaryBatchSteadyStateAllocs pins the allocation contract of the
// binary OpContainsBatch arm: with the connection's result buffer and
// response scratch warm, answering a batch frame — ContainsBatchInto
// plus AppendBatchResp into the reused output — allocates nothing. The
// test mirrors the arm in (*BinaryServer).handle statement for
// statement; if the handler grows an allocation, so does this.
func TestBinaryBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race for alloc counts")
	}
	filter, data := newTestFilter(t, 2048)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	b := serverBatcher{s: srv}

	keys := append(append([][]byte{}, data.Positives[:128]...), data.Negatives[:128]...)
	var results []bool
	out := make([]byte, 0, 64)
	arm := func() {
		if cap(results) < len(keys) {
			results = make([]bool, len(keys))
		}
		results = results[:len(keys)]
		b.ContainsBatchInto(results, keys)
		out = wire.AppendBatchResp(out[:0], 42, results)
	}
	arm() // warm the result buffer, response scratch and shard pool
	if avg := testing.AllocsPerRun(50, arm); avg != 0 {
		t.Errorf("binary batch arm allocates %.1f objects per frame, want 0", avg)
	}
}

// TestCoalescerDispatchSteadyStateAllocs pins the BatcherInto dispatch
// path: a coalescer over a filter that implements ContainsBatchInto
// reuses its per-dispatcher result buffer, so a steady stream of
// coalesced queries allocates only what the request/response machinery
// itself pins (pooled requests, reused channels) — the batch dispatch
// contributes nothing per key. Measured end to end: the per-query alloc
// count must stay far below one object per key batched.
func TestCoalescerDispatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race for alloc counts")
	}
	filter, data := newTestFilter(t, 2048)
	co := NewCoalescer(filter, CoalesceConfig{MaxWait: 100 * time.Microsecond})
	defer co.Close()
	if co.bi == nil {
		t.Fatal("habf.Sharded no longer implements BatcherInto")
	}
	key := data.Positives[0]
	co.Contains(key) // warm pools
	if avg := testing.AllocsPerRun(100, func() { co.Contains(key) }); avg > 1 {
		t.Errorf("coalesced Contains allocates %.1f objects per query, want ≤1", avg)
	}
}
