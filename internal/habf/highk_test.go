package habf

import (
	"testing"
)

// TestHighKQuery pins the query path at the family-size ceiling. The
// old query scratch was a fixed [32]uint8 sized to the largest family
// (CellBits 6 → 31 usable functions in fast mode, the full 22-function
// corpus in slow mode); the fused round-two walk removed the scratch
// entirely, and this test keeps anyone from reintroducing a buffer
// sized below the real ceiling. Every tuning here uses the largest K
// its mode permits.
func TestHighKQuery(t *testing.T) {
	cases := []struct {
		name string
		fast bool
		k    int
	}{
		{"slow-corpus-ceiling", false, 22}, // corpus size caps slow mode
		{"fast-cell-ceiling", true, 31},    // (1<<5)-1 caps fast mode
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pos := genKeys(2000, "hk-member")
			neg := genNegatives(2000, "hk-outsider", uniformCost)
			f, err := New(pos, neg, Params{
				TotalBits: 2000 * 40, // high K needs a generous budget
				K:         c.k,
				CellBits:  6,
				Fast:      c.fast,
			})
			if err != nil {
				t.Fatalf("New(K=%d, CellBits=6, fast=%v): %v", c.k, c.fast, err)
			}
			for _, key := range pos {
				if !f.Contains(key) {
					t.Fatalf("false negative at K=%d: %q", c.k, key)
				}
			}
			// Batch answers must match per-key answers probe for probe.
			batch := make([][]byte, 0, 256)
			for i := 0; i < 128; i++ {
				batch = append(batch, pos[i*13%len(pos)], neg[i*7%len(neg)].Key)
			}
			dst := make([]bool, len(batch))
			f.ContainsBatchInto(dst, batch)
			for i, key := range batch {
				if want := f.Contains(key); dst[i] != want {
					t.Fatalf("batch disagrees with per-key at %d (%q): %v != %v", i, key, dst[i], want)
				}
			}
			// One past the ceiling must be a construction error, not a
			// silently clamped or overflowing query.
			if _, err := New(pos, neg, Params{
				TotalBits: 2000 * 40, K: c.k + 1, CellBits: 6, Fast: c.fast,
			}); err == nil {
				t.Fatalf("K=%d beyond the %s family accepted", c.k+1, c.name)
			}
		})
	}
}
