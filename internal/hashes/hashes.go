// Package hashes implements the global hash-function family H of the paper
// (Table II): 22 deterministic 64-bit hash functions over byte strings,
// written from scratch on the standard library only.
//
// HABF draws each key's customized selection φ(e) from this corpus, so what
// matters is that the functions are deterministic, cheap, and mutually
// different — not that they are byte-identical to the reference C
// implementations. The strong functions (xx64-, city-, murmur-style,
// Jenkins) follow the published mixing structure of their namesakes; the
// classic string hashes (DJB, BKDR, SDBM, ...) are the canonical one-line
// recurrences widened to 64-bit accumulators. Several of the classics are
// deliberately weak hashes: the paper keeps them in H to show that hash
// customization also protects against skewed hash functions.
package hashes

import (
	"encoding/binary"
	"math/bits"
)

// Func is a deterministic 64-bit hash over a byte string.
type Func func(data []byte) uint64

// Named couples a corpus function with its Table II name.
type Named struct {
	Name string
	Fn   Func
}

// corpus is the fixed global family H. Order matters: HashExpressor cells
// can only index the first 2^(cellBits-1)-1 entries, so the strongest
// general-purpose functions come first (cell size 4 exposes the first 7,
// cell size 5 the first 15, exactly as in §V-D3 of the paper).
var corpus = []Named{
	{"XX64", XXH64},
	{"City64", City64},
	{"Murmur64", Murmur64},
	{"BOB", BOB},
	{"OAAT", OAAT},
	{"SuperFast", SuperFast},
	{"Hsieh", Hsieh},
	{"CRC32", CRC},
	{"FNV", FNV1a},
	{"DEK", DEK},
	{"PYHash", PYHash},
	{"BRP", BRP},
	{"TWMX", TWMX},
	{"APHash", AP},
	{"NDJB", NDJB},
	{"DJB", DJB},
	{"BKDR", BKDR},
	{"PJW", PJW},
	{"JSHash", JS},
	{"RSHash", RS},
	{"SDBM", SDBM},
	{"ELF", ELF},
}

// Corpus returns the global hash family H in its canonical order.
// The returned slice is a copy; callers may reorder it freely.
func Corpus() []Named {
	out := make([]Named, len(corpus))
	copy(out, corpus)
	return out
}

// CorpusFuncs returns just the functions of H, in canonical order.
func CorpusFuncs() []Func {
	out := make([]Func, len(corpus))
	for i, n := range corpus {
		out[i] = n.Fn
	}
	return out
}

// CorpusSize returns |H|.
func CorpusSize() int { return len(corpus) }

// ByName returns the corpus function with the given Table II name.
func ByName(name string) (Func, bool) {
	for _, n := range corpus {
		if n.Name == name {
			return n.Fn, true
		}
	}
	return nil, false
}

// BaseSeed seeds the shared per-key base hash of the batch read path.
// shard.Set routes keys with the top bits of Base(key) and hands the full
// 64-bit value to backends implementing filtercore.PreparedQuerier, which
// re-derive their probe positions from it via Mix64 dispersal instead of
// re-reading the key. The constant is part of the stored-bit derivation of
// the seeded64 Bloom strategy, the xor filter, PHBF, and WBF — changing it
// invalidates their serialized containers.
const BaseSeed uint64 = 0x51ce5eed0ba5e000

// Base multipliers: the published wyhash secret constants. Each is odd
// with balanced bit counts, which is what the folded-multiply mixer needs
// to avoid cancellation.
const (
	baseM1 uint64 = 0xa0761d6478bd642f
	baseM2 uint64 = 0xe7037ed1a0b428db
	baseM3 uint64 = 0x8ebc6af09c88c6e3
	baseM4 uint64 = 0x589965cc75374cc3
)

// baseMum folds one 64x64→128 multiply into 64 bits. A single widening
// multiply diffuses every input bit into both halves; xoring the halves
// keeps all of that entropy at a third of the latency of a
// multiply-rotate-multiply chain.
func baseMum(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// Base is the per-key base hash shared by routing and position derivation:
// one strong 64-bit hash, computed once per key per batch. shard routing
// consumes its top bits and PreparedQuerier backends re-derive probe
// positions from the full value, so Base sits on the critical path of
// every batched query; it uses a wyhash-style folded-multiply construction
// (three widening multiplies for keys up to 16 bytes, one more per further
// 16 bytes) rather than the corpus XX64, whose multiply-rotate finalizer
// is several times slower on short keys.
//
// The exact output is a format constant: seeded64 Bloom, Xor, PHBF and WBF
// containers store bits derived from it (see their filterVersion 2 docs),
// and sharded snapshots route by it. Changing Base — or BaseSeed — breaks
// every one of those containers; TestBaseGoldenVectors pins it.
func Base(data []byte) uint64 {
	n := len(data)
	seed := BaseSeed ^ baseM1
	var a, b uint64
	if n <= 16 {
		if n >= 8 {
			a = binary.LittleEndian.Uint64(data)
			b = binary.LittleEndian.Uint64(data[n-8:])
		} else if n >= 4 {
			a = uint64(binary.LittleEndian.Uint32(data))
			b = uint64(binary.LittleEndian.Uint32(data[n-4:]))
		} else if n > 0 {
			a = uint64(data[0])<<16 | uint64(data[n>>1])<<8 | uint64(data[n-1])
		}
	} else {
		p := data
		i := n
		if i > 48 {
			// Three independent lanes keep the multiplies pipelined on
			// long keys; they collapse into the seed before the tail.
			s1, s2 := seed, seed
			for ; i > 48; i -= 48 {
				seed = baseMum(binary.LittleEndian.Uint64(p)^baseM1, binary.LittleEndian.Uint64(p[8:])^seed)
				s1 = baseMum(binary.LittleEndian.Uint64(p[16:])^baseM2, binary.LittleEndian.Uint64(p[24:])^s1)
				s2 = baseMum(binary.LittleEndian.Uint64(p[32:])^baseM3, binary.LittleEndian.Uint64(p[40:])^s2)
				p = p[48:]
			}
			seed ^= s1 ^ s2
		}
		for ; i > 16; i -= 16 {
			seed = baseMum(binary.LittleEndian.Uint64(p)^baseM2, binary.LittleEndian.Uint64(p[8:])^seed)
			p = p[16:]
		}
		a = binary.LittleEndian.Uint64(data[n-16:])
		b = binary.LittleEndian.Uint64(data[n-8:])
	}
	return baseMum(baseM4^uint64(n), baseMum(a^baseM2, b^seed))
}

// Mix64 is the splitmix64 finalizer: a cheap full-avalanche 64-bit mixer
// used to derive seeded variants and to post-condition weak values.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BaseLanes derives two double-hashing lanes from a base hash and a seed
// via chained Mix64 dispersal. Mix64 is bijective with full avalanche, so
// conditioning on the base's top bits (which shard routing consumes) does
// not bias the derived lanes — the same argument split-block Bloom filters
// use when they route on high bits and probe with remixed low bits.
func BaseLanes(base, seed uint64) (h1, h2 uint64) {
	h1 = Mix64(base ^ seed)
	h2 = Mix64(h1 ^ 0xc3a5c85c97cb3127)
	return h1, h2
}

// Seeded returns h(data) perturbed by seed with full avalanche. It is the
// building block for the paper's BF(City64)/BF(XXH128) style filters that
// derive k values from one strong hash plus k seeds.
func Seeded(fn Func, data []byte, seed uint64) uint64 {
	return Mix64(fn(data) ^ Mix64(seed))
}

// Split128 produces two independent 64-bit lanes from one key, in the
// spirit of a 128-bit hash: the lanes come from structurally different
// mixers (xx64 and city-style) so they do not cancel under double hashing.
func Split128(data []byte, seed uint64) (hi, lo uint64) {
	hi = XXH64Seed(data, seed)
	lo = Mix64(City64(data) ^ Mix64(seed^0x9e3779b97f4a7c15))
	return hi, lo
}

// Double implements the Kirsch–Mitzenmacher simulated hash g_i(x) =
// h1(x) + i·h2(x) used by the split-128 Bloom variant (§III-G of the
// paper). h2 is forced odd so that g_i cycles through all residues of a
// power-of-two table.
func Double(h1, h2 uint64, i int) uint64 {
	return h1 + uint64(i)*(h2|1)
}

// EnhancedDouble is the Dillinger–Manolios triangular variant
// g_i(x) = h1 + i·h2 + (i³-i)/6, which breaks the arithmetic-progression
// correlation of plain double hashing. f-HABF derives its simulated
// family from it: the paper cites Dillinger [31] for plain double
// hashing's degradation, and per-key position diversity is exactly what
// TPJO's candidate search needs.
func EnhancedDouble(h1, h2 uint64, i int) uint64 {
	u := uint64(i)
	return h1 + u*(h2|1) + (u*u*u-u)/6
}
