package habf

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/filtercore"
)

// TestReadmeKnobTable pins the README's tuning-knob table to the
// backends' live TuningSchema: every registered backend and knob must
// appear, with the type, domain and default the schema declares, and
// the table may not list knobs that no longer exist. Documentation
// drift fails the build instead of misleading operators.
func TestReadmeKnobTable(t *testing.T) {
	rows := readmeKnobRows(t)

	type key struct{ backend, knob string }
	seen := make(map[key]bool)
	for _, row := range rows {
		k := key{row.backend, row.knob}
		if seen[k] {
			t.Errorf("README lists %s/%s twice", row.backend, row.knob)
		}
		seen[k] = true
	}

	for _, backend := range filtercore.Names() {
		fac, err := filtercore.ByName(backend)
		if err != nil {
			t.Fatalf("ByName(%q): %v", backend, err)
		}
		for _, knob := range fac.TuningSchema.Knobs() {
			k := key{backend, knob.Name}
			if !seen[k] {
				t.Errorf("README knob table is missing %s/%s", backend, knob.Name)
				continue
			}
			delete(seen, k)
			var row knobRow
			for _, r := range rows {
				if r.backend == backend && r.knob == knob.Name {
					row = r
					break
				}
			}
			checkKnobRow(t, row, knob)
		}
	}
	for k := range seen {
		t.Errorf("README lists %s/%s, which no backend schema declares", k.backend, k.knob)
	}
}

// knobRow is one parsed row of the README's tuning table.
type knobRow struct {
	backend, knob, typ, domain, def string
}

// readmeKnobRows extracts the tuning-knob table from README.md. The
// Backend cell is only filled on a backend's first row, so it carries
// forward.
func readmeKnobRows(t *testing.T) []knobRow {
	t.Helper()
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	const header = "| Backend | Knob | Type | Domain | Default |"
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, line := range lines {
		if strings.HasPrefix(line, header) {
			start = i + 2 // skip the |---| separator
			break
		}
	}
	if start < 0 {
		t.Fatalf("README has no knob table (header %q not found)", header)
	}
	var rows []knobRow
	backend := ""
	for _, line := range lines[start:] {
		if !strings.HasPrefix(line, "|") {
			break
		}
		cells := strings.Split(line, "|")
		if len(cells) < 7 {
			t.Fatalf("malformed knob-table row: %q", line)
		}
		for i := range cells {
			cells[i] = strings.Trim(strings.TrimSpace(cells[i]), "`")
		}
		if cells[1] != "" {
			backend = cells[1]
		}
		rows = append(rows, knobRow{
			backend: backend,
			knob:    cells[2],
			typ:     cells[3],
			domain:  cells[4],
			def:     cells[5],
		})
	}
	if len(rows) == 0 {
		t.Fatal("README knob table has no rows")
	}
	return rows
}

// checkKnobRow compares one README row against its schema knob.
func checkKnobRow(t *testing.T, row knobRow, knob filtercore.Knob) {
	t.Helper()
	id := row.backend + "/" + row.knob

	wantType := map[filtercore.KnobType]string{
		filtercore.KnobInt:   "int",
		filtercore.KnobFloat: "float",
		filtercore.KnobEnum:  "enum",
	}[knob.Type]
	if row.typ != wantType {
		t.Errorf("%s: README type %q, schema says %q", id, row.typ, wantType)
	}

	// The README annotates defaults ("0 (=3)", "0 (auto)"); the value
	// before the annotation must be the schema default.
	if def := strings.Fields(row.def); len(def) == 0 || def[0] != knob.Default {
		t.Errorf("%s: README default %q, schema default %q", id, row.def, knob.Default)
	}

	switch knob.Type {
	case filtercore.KnobEnum:
		got := expandDomainList(row.domain)
		want := strings.Join(knob.Enum, ",")
		if got != want {
			t.Errorf("%s: README domain %q (= %s), schema enum %s", id, row.domain, got, want)
		}
	default:
		bounds := strings.Split(expandPowers(row.domain), "–")
		if len(bounds) != 2 {
			t.Errorf("%s: README domain %q is not a min–max range", id, row.domain)
			return
		}
		min, err1 := strconv.ParseFloat(bounds[0], 64)
		max, err2 := strconv.ParseFloat(bounds[1], 64)
		if err1 != nil || err2 != nil {
			t.Errorf("%s: README domain %q does not parse: %v %v", id, row.domain, err1, err2)
			return
		}
		if min != knob.Min || max != knob.Max {
			t.Errorf("%s: README domain [%v, %v], schema bounds [%v, %v]",
				id, min, max, knob.Min, knob.Max)
		}
	}
}

// expandDomainList canonicalizes an enum domain cell: comma-separated
// values, with consecutive integers optionally compressed ("0, 3–6"
// reads as 0,3,4,5,6).
func expandDomainList(cell string) string {
	var out []string
	for _, tok := range strings.Split(cell, ",") {
		tok = strings.TrimSpace(tok)
		if lo, hi, ok := strings.Cut(tok, "–"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 == nil && err2 == nil && a <= b {
				for v := a; v <= b; v++ {
					out = append(out, strconv.Itoa(v))
				}
				continue
			}
		}
		out = append(out, tok)
	}
	return strings.Join(out, ",")
}

// expandPowers rewrites superscript powers of two ("2²⁰") into their
// decimal value, so bound cells can stay human-readable.
func expandPowers(s string) string {
	sup := map[rune]int{
		'⁰': 0, '¹': 1, '²': 2, '³': 3, '⁴': 4,
		'⁵': 5, '⁶': 6, '⁷': 7, '⁸': 8, '⁹': 9,
	}
	runes := []rune(s)
	var b strings.Builder
	for i := 0; i < len(runes); i++ {
		if runes[i] == '2' && i+1 < len(runes) {
			if _, ok := sup[runes[i+1]]; ok {
				exp := 0
				j := i + 1
				for j < len(runes) {
					d, ok := sup[runes[j]]
					if !ok {
						break
					}
					exp = exp*10 + d
					j++
				}
				fmt.Fprintf(&b, "%d", uint64(1)<<exp)
				i = j - 1
				continue
			}
		}
		b.WriteRune(runes[i])
	}
	return b.String()
}
