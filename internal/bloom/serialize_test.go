package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func serializeFixture(t *testing.T, strategy Strategy) (*Filter, [][]byte) {
	t.Helper()
	keys := make([][]byte, 2000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ser-key-%06d", i))
	}
	f, err := NewWithKeys(keys, 10, strategy)
	if err != nil {
		t.Fatal(err)
	}
	return f, keys
}

func TestSerializeRoundtrip(t *testing.T) {
	for _, strategy := range []Strategy{StrategyCorpus, StrategySeeded64, StrategySplit128} {
		t.Run(strategy.String(), func(t *testing.T) {
			f, keys := serializeFixture(t, strategy)
			wire, err := f.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			for mode, unmarshal := range map[string]func([]byte) (*Filter, error){
				"owned":  UnmarshalFilter,
				"borrow": UnmarshalFilterBorrow,
			} {
				g, err := unmarshal(wire)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if g.K() != f.K() || g.MBits() != f.MBits() || g.Count() != f.Count() || g.Name() != f.Name() {
					t.Fatalf("%s: decoded shape k=%d m=%d n=%d %q, want k=%d m=%d n=%d %q",
						mode, g.K(), g.MBits(), g.Count(), g.Name(), f.K(), f.MBits(), f.Count(), f.Name())
				}
				for _, key := range keys {
					if !g.Contains(key) {
						t.Fatalf("%s: false negative for %q", mode, key)
					}
				}
				for i := 0; i < 2000; i++ {
					probe := []byte(fmt.Sprintf("ser-probe-%06d", i))
					if g.Contains(probe) != f.Contains(probe) {
						t.Fatalf("%s: decoded filter disagrees on %q", mode, probe)
					}
				}
			}
		})
	}
}

func TestSerializeBorrowCopyOnWrite(t *testing.T) {
	f, _ := serializeFixture(t, StrategySplit128)
	wire, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), wire...)
	g, err := UnmarshalFilterBorrow(wire)
	if err != nil {
		t.Fatal(err)
	}
	g.Add([]byte("post-load-add"))
	if !g.Contains([]byte("post-load-add")) {
		t.Fatal("borrowed filter lost an added key")
	}
	if g.Borrowed() {
		t.Fatal("filter still borrowed after a mutation")
	}
	if string(wire) != string(before) {
		t.Fatal("Add mutated the borrowed wire buffer")
	}
}

func TestSerializeRejectsHostileInput(t *testing.T) {
	f, _ := serializeFixture(t, StrategySplit128)
	good, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":          {},
		"short":          good[:10],
		"truncated":      good[:len(good)-4],
		"trailing":       append(append([]byte(nil), good...), 0),
		"bad magic":      mut(func(b []byte) { b[0] ^= 0xFF }),
		"bad version":    mut(func(b []byte) { b[4] = 99 }),
		"bad strategy":   mut(func(b []byte) { b[5] = 77 }),
		"zero k":         mut(func(b []byte) { b[6] = 0 }),
		"corpus k > max": mut(func(b []byte) { b[5], b[6] = 0, 255 }),
		"huge bits len": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
		}),
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
	}
}
