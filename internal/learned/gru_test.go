package learned

import (
	"testing"

	"repro/internal/dataset"
)

func TestGRULearnsStructuredKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("GRU training is slow; skipped with -short")
	}
	p := dataset.Shalla(3000, 3000, 21)
	train := 2000
	g := TrainGRU(p.Positives[:train], p.Negatives[:train], GRUConfig{Epochs: 2, Seed: 3})
	got := auc(g, p.Positives[train:], p.Negatives[train:])
	if got < 0.80 {
		t.Errorf("GRU holdout AUC on Shalla = %.3f, want >= 0.80", got)
	}
	t.Logf("GRU holdout AUC: %.3f", got)
}

func TestGRUCannotLearnRandomKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("GRU training is slow; skipped with -short")
	}
	p := dataset.YCSB(1500, 1500, 21)
	train := 1000
	g := TrainGRU(p.Positives[:train], p.Negatives[:train], GRUConfig{Epochs: 2, Seed: 3})
	got := auc(g, p.Positives[train:], p.Negatives[train:])
	if got > 0.62 || got < 0.38 {
		t.Errorf("GRU holdout AUC on YCSB = %.3f, want ≈0.5", got)
	}
}

func TestGRUScoreRangeAndDeterminism(t *testing.T) {
	p := dataset.Shalla(300, 300, 5)
	g := TrainGRU(p.Positives, p.Negatives, GRUConfig{Epochs: 1, Seed: 7})
	for _, key := range [][]byte{nil, {}, []byte("x"), p.Positives[0], p.Negatives[0]} {
		s := g.Score(key)
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of range for %q", s, key)
		}
		if s != g.Score(key) {
			t.Fatalf("Score not deterministic for %q", key)
		}
	}
}

func TestGRUSizeBits(t *testing.T) {
	p := dataset.Shalla(100, 100, 5)
	g := TrainGRU(p.Positives, p.Negatives, GRUConfig{Epochs: 1})
	// 256×32 embeddings + 3×(16×32) + 3×(16×16) + 3×16 + 16 + 1 params.
	want := uint64(256*32+3*16*32+3*16*16+3*16+16+1) * 32
	if g.SizeBits() != want {
		t.Fatalf("SizeBits = %d, want %d", g.SizeBits(), want)
	}
}

func TestGRUTruncatesLongKeys(t *testing.T) {
	p := dataset.Shalla(100, 100, 5)
	g := TrainGRU(p.Positives, p.Negatives, GRUConfig{Epochs: 1, MaxLen: 8})
	long := make([]byte, 10000)
	for i := range long {
		long[i] = byte(i)
	}
	// Must not panic and must equal the truncated prefix's score.
	if g.Score(long) != g.Score(long[:8]) {
		t.Fatal("truncation semantics violated")
	}
}

func TestGRUBackedLBF(t *testing.T) {
	if testing.Short() {
		t.Skip("GRU training is slow; skipped with -short")
	}
	// The GRU plugs into the same LBF assembly as the logistic model.
	p := dataset.Shalla(2000, 2000, 9)
	g := TrainGRU(p.Positives, p.Negatives, GRUConfig{Epochs: 2, Seed: 4})
	lbf, err := assembleLBF(g, "LBF(GRU)", p.Positives, p.Negatives, uint64(2000*200))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range p.Positives {
		if !lbf.Contains(k) {
			t.Fatalf("GRU-backed LBF lost member %q", k)
		}
	}
	fp := 0
	for _, k := range p.Negatives {
		if lbf.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(len(p.Negatives))
	if rate > 0.2 {
		t.Errorf("GRU-backed LBF FPR %.3f; not a useful filter", rate)
	}
	t.Logf("GRU-backed LBF FPR %.4f", rate)
}

func BenchmarkGRUScore(b *testing.B) {
	p := dataset.Shalla(200, 200, 5)
	g := TrainGRU(p.Positives, p.Negatives, GRUConfig{Epochs: 1})
	key := p.Negatives[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Score(key)
	}
}
