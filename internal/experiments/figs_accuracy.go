package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/habf"
	"repro/internal/metrics"
	"repro/internal/theory"
)

// Fig08 reproduces Fig. 8: measured optimized FPR (F*bf) against the
// theoretical upper bound of Eq. 19, (a) varying k at b = 10 and
// (b) varying bits-per-key at k = 4, on Shalla with uniform costs.
func Fig08(cfg Config) []Table {
	cfg = cfg.withDefaults()
	w := cfg.shallaWorkload(0)

	bound := func(st habf.Stats, k int, bpk float64, total uint64) float64 {
		heBits := uint64(float64(total) * 0.25 / 1.25)
		omega := heBits / 4
		mBits := total - heBits
		// |Hc| = usable family − k; cell size 5 in (a) exposes 15.
		usable := 15
		pc := theory.PcEstimate(k, bpk, len(w.neg), mBits, usable-k)
		return theory.FStarUpper(st.FPRBefore, st.CollisionKeys, pc, k, omega, len(w.neg))
	}

	ta := Table{
		ID:     "fig08a",
		Title:  "real F*bf vs theoretic bound, b=10, k=2..10 (Shalla, uniform)",
		Header: []string{"k", "Fbf before(%)", "real F*bf(%)", "theoretic bound(%)", "holds"},
	}
	for k := 2; k <= 10; k++ {
		total := w.totalBits(10)
		f, err := habf.New(w.pos, w.weighted, habf.Params{
			TotalBits: total, K: k, CellBits: 5, Seed: cfg.Seed,
		})
		if err != nil {
			ta.Rows = append(ta.Rows, []string{fmt.Sprint(k), "err", err.Error(), "", ""})
			continue
		}
		st := f.Stats()
		b := bound(st, k, 10, total)
		ta.Rows = append(ta.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.4f", st.FPRBefore*100),
			fmt.Sprintf("%.4f", st.FPRAfter*100),
			fmt.Sprintf("%.4f", b*100),
			fmt.Sprint(st.FPRAfter <= b+1e-12),
		})
	}

	tb := Table{
		ID:     "fig08b",
		Title:  "real F*bf vs theoretic bound, k=4, b=4..13 (Shalla, uniform)",
		Header: []string{"bits-per-key", "Fbf before(%)", "real F*bf(%)", "theoretic bound(%)", "holds"},
	}
	for b := 4; b <= 13; b++ {
		total := w.totalBits(float64(b))
		f, err := habf.New(w.pos, w.weighted, habf.Params{
			TotalBits: total, K: 4, CellBits: 5, Seed: cfg.Seed,
		})
		if err != nil {
			tb.Rows = append(tb.Rows, []string{fmt.Sprint(b), "err", err.Error(), "", ""})
			continue
		}
		st := f.Stats()
		bd := bound(st, 4, float64(b), total)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(b),
			fmt.Sprintf("%.4f", st.FPRBefore*100),
			fmt.Sprintf("%.4f", st.FPRAfter*100),
			fmt.Sprintf("%.4f", bd*100),
			fmt.Sprint(st.FPRAfter <= bd+1e-12),
		})
	}
	return []Table{ta, tb}
}

// Fig09 reproduces Fig. 9: HABF parameter sensitivity on Shalla with
// uniform costs — (a) the space split Δ and hash count k at a fixed 2 MB
// equivalent budget, (b) HashExpressor cell size across space budgets.
func Fig09(cfg Config) []Table {
	cfg = cfg.withDefaults()
	w := cfg.shallaWorkload(0)
	const bpk2MB = 11.25 // 2 MB over 1.491 M keys ≈ 11.25 bits/key

	ta := Table{
		ID:     "fig09a-delta",
		Title:  "weighted FPR vs Δ (space ratio), 2 MB equivalent, k=3",
		Header: []string{"Δ", "weighted FPR"},
	}
	for _, delta := range []float64{0.05, 0.1, 0.25, 0.3, 0.5, 0.7, 0.9} {
		f, err := habf.New(w.pos, w.weighted, habf.Params{
			TotalBits: w.totalBits(bpk2MB), SpaceRatio: delta, Seed: cfg.Seed,
		})
		cell := "err"
		if err == nil {
			cell = weightedFPRCell(f, w)
		}
		ta.Rows = append(ta.Rows, []string{fmt.Sprintf("%.2f", delta), cell})
	}

	tk := Table{
		ID:     "fig09a-k",
		Title:  "weighted FPR vs k, 2 MB equivalent, Δ=0.25 (cell size 5)",
		Header: []string{"k", "weighted FPR"},
	}
	for k := 2; k <= 8; k++ {
		f, err := habf.New(w.pos, w.weighted, habf.Params{
			TotalBits: w.totalBits(bpk2MB), K: k, CellBits: 5, Seed: cfg.Seed,
		})
		cell := "err"
		if err == nil {
			cell = weightedFPRCell(f, w)
		}
		tk.Rows = append(tk.Rows, []string{fmt.Sprint(k), cell})
	}

	tc := Table{
		ID:     "fig09b",
		Title:  "weighted FPR vs cell size across space (Shalla, uniform)",
		Header: []string{"space(MB@paper)", "cell=3", "cell=4", "cell=5"},
	}
	for _, bpk := range shallaBitsPerKey {
		row := []string{fmt.Sprintf("%.2f", paperMB(bpk, true))}
		for _, cellBits := range []uint{3, 4, 5} {
			f, err := habf.New(w.pos, w.weighted, habf.Params{
				TotalBits: w.totalBits(bpk), CellBits: cellBits, Seed: cfg.Seed,
			})
			if err != nil {
				row = append(row, "err")
				continue
			}
			row = append(row, weightedFPRCell(f, w))
		}
		tc.Rows = append(tc.Rows, row)
	}
	return []Table{ta, tk, tc}
}

// costSensitive reports whether a filter's construction consumes the cost
// assignment (and therefore must be rebuilt per cost shuffle).
func costSensitive(name string) bool {
	switch name {
	case "HABF", "f-HABF", "WBF":
		return true
	}
	return false
}

// reshuffled returns the workload with a fresh Zipf rank permutation, per
// §V-C: "for each skewness factor, we randomly shuffle the generated Zipf
// distribution 10 times ... and then calculate the average weighted FPR".
func (w workload) reshuffled(skew float64, seed int64) workload {
	if skew == 0 {
		return w
	}
	costs := dataset.ZipfCosts(len(w.neg), skew, seed)
	return newWorkload(dataset.Pair{Positives: w.pos, Negatives: w.neg}, costs, w.shalla)
}

// fprVsSpace renders one Fig. 10/11 panel: weighted FPR for each filter
// across the space grid, averaged over reps cost shuffles (skewed panels
// only; uniform costs have nothing to shuffle). Cost-insensitive filters
// are built once and re-measured; cost-aware ones are rebuilt per shuffle.
func fprVsSpace(id, title string, w workload, skew float64, reps int, grid []float64, filters []string, seed int64) Table {
	t := Table{ID: id, Title: title}
	t.Header = append([]string{"space(MB@paper)", "bits/key"}, filters...)
	if skew == 0 {
		reps = 1
	}
	shuffles := make([]workload, reps)
	for r := range shuffles {
		shuffles[r] = w.reshuffled(skew, seed+int64(r)*101)
	}
	for _, bpk := range grid {
		row := []string{
			fmt.Sprintf("%.2f", paperMB(bpk, w.shalla)),
			fmt.Sprintf("%.1f", bpk),
		}
		for _, name := range filters {
			var sum float64
			var bad bool
			var static metrics.Filter
			for r := 0; r < reps; r++ {
				wr := shuffles[r]
				f := static
				if f == nil {
					var err error
					f, err = buildFilter(name, wr, wr.totalBits(bpk), seed)
					if err != nil {
						bad = true
						break
					}
					if !costSensitive(name) {
						static = f
					}
				}
				v, err := metrics.WeightedFPR(f, wr.neg, wr.costs)
				if err != nil {
					bad = true
					break
				}
				sum += v
			}
			if bad {
				row = append(row, "err")
				continue
			}
			row = append(row, fmt.Sprintf("%.3e", sum/float64(reps)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10 reproduces Fig. 10: weighted FPR vs space under uniform costs,
// Shalla and YCSB, against non-learned and learned baselines.
func Fig10(cfg Config) []Table {
	cfg = cfg.withDefaults()
	ws := cfg.shallaWorkload(0)
	wy := cfg.ycsbWorkload(0)
	return []Table{
		fprVsSpace("fig10a", "uniform, Shalla, vs non-learned", ws, 0, 1, shallaBitsPerKey,
			[]string{"HABF", "f-HABF", "BF", "Xor"}, cfg.Seed),
		fprVsSpace("fig10b", "uniform, Shalla, vs learned", ws, 0, 1, shallaBitsPerKey,
			[]string{"HABF", "f-HABF", "LBF", "Ada-BF", "SLBF"}, cfg.Seed),
		fprVsSpace("fig10c", "uniform, YCSB, vs non-learned", wy, 0, 1, ycsbBitsPerKey,
			[]string{"HABF", "f-HABF", "BF", "Xor"}, cfg.Seed),
		fprVsSpace("fig10d", "uniform, YCSB, vs learned", wy, 0, 1, ycsbBitsPerKey,
			[]string{"HABF", "f-HABF", "LBF", "Ada-BF", "SLBF"}, cfg.Seed),
	}
}

// Fig11 reproduces Fig. 11: weighted FPR vs space under Zipf(1.0) costs;
// WBF joins the non-learned panels.
func Fig11(cfg Config) []Table {
	cfg = cfg.withDefaults()
	ws := cfg.shallaWorkload(1.0)
	wy := cfg.ycsbWorkload(1.0)
	return []Table{
		fprVsSpace("fig11a", "zipf(1.0), Shalla, vs non-learned (avg of 3 shuffles)", ws, 1.0, 3, shallaBitsPerKey,
			[]string{"HABF", "f-HABF", "BF", "Xor", "WBF"}, cfg.Seed),
		fprVsSpace("fig11b", "zipf(1.0), Shalla, vs learned (avg of 3 shuffles)", ws, 1.0, 3, shallaBitsPerKey,
			[]string{"HABF", "f-HABF", "LBF", "Ada-BF", "SLBF"}, cfg.Seed),
		fprVsSpace("fig11c", "zipf(1.0), YCSB, vs non-learned (avg of 3 shuffles)", wy, 1.0, 3, ycsbBitsPerKey,
			[]string{"HABF", "f-HABF", "BF", "Xor", "WBF"}, cfg.Seed),
		fprVsSpace("fig11d", "zipf(1.0), YCSB, vs learned (avg of 3 shuffles)", wy, 1.0, 3, ycsbBitsPerKey,
			[]string{"HABF", "f-HABF", "LBF", "Ada-BF", "SLBF"}, cfg.Seed),
	}
}

// Fig13 reproduces Fig. 13: weighted FPR as cost skewness sweeps 0 → 3 at
// a fixed 1.5 MB-equivalent budget on Shalla, averaging each point over 5
// Zipf shuffles as §V-C prescribes (10 in the paper).
func Fig13(cfg Config) []Table {
	cfg = cfg.withDefaults()
	const (
		bpk  = 8.4 // 1.5 MB over 1.491 M keys
		reps = 5
	)
	filters := []string{"HABF", "f-HABF", "BF", "Xor"}
	t := Table{
		ID:     "fig13",
		Title:  "weighted FPR vs skewness, Shalla, 1.5 MB equivalent (avg of 5 shuffles)",
		Header: append([]string{"skew"}, filters...),
	}
	base := cfg.shallaWorkload(0)
	for _, skew := range []float64{0, 0.6, 1.2, 1.8, 2.4, 3.0} {
		n := reps
		if skew == 0 {
			n = 1
		}
		row := []string{fmt.Sprintf("%.1f", skew)}
		for _, name := range filters {
			var sum float64
			var bad bool
			var static metrics.Filter
			for r := 0; r < n; r++ {
				wr := base.reshuffled(skew, cfg.Seed+int64(r)*919)
				f := static
				if f == nil {
					var err error
					f, err = buildFilter(name, wr, wr.totalBits(bpk), cfg.Seed)
					if err != nil {
						bad = true
						break
					}
					if !costSensitive(name) {
						static = f
					}
				}
				v, err := metrics.WeightedFPR(f, wr.neg, wr.costs)
				if err != nil {
					bad = true
					break
				}
				sum += v
			}
			if bad {
				row = append(row, "err")
				continue
			}
			row = append(row, fmt.Sprintf("%.3e", sum/float64(n)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Fig14 reproduces Fig. 14: Bloom filter hash implementations (corpus,
// City64-seeded, XXH128-split) against HABF on YCSB under uniform and
// Zipf(1.0) costs.
func Fig14(cfg Config) []Table {
	cfg = cfg.withDefaults()
	filters := []string{"HABF", "BF", "BF(City64)", "BF(XXH128)"}
	return []Table{
		fprVsSpace("fig14a", "uniform, YCSB, hash implementations", cfg.ycsbWorkload(0),
			0, 1, ycsbBitsPerKey, filters, cfg.Seed),
		fprVsSpace("fig14b", "zipf(1.0), YCSB, hash implementations (avg of 3 shuffles)", cfg.ycsbWorkload(1.0),
			1.0, 3, ycsbBitsPerKey, filters, cfg.Seed),
	}
}

// Ablations quantifies the design choices DESIGN.md §6 calls out, on a
// Zipf(1.0) Shalla workload at 1.5 MB equivalent.
func Ablations(cfg Config) []Table {
	cfg = cfg.withDefaults()
	w := cfg.shallaWorkload(1.0)
	const bpk = 8.4
	total := w.totalBits(bpk)

	variants := []struct {
		name string
		p    habf.Params
	}{
		{"full HABF", habf.Params{TotalBits: total, Seed: cfg.Seed}},
		{"no Γ (conflict detection off)", habf.Params{TotalBits: total, Seed: cfg.Seed, DisableGamma: true}},
		{"no overlap ranking", habf.Params{TotalBits: total, Seed: cfg.Seed, DisableOverlapRanking: true}},
		{"FIFO collision queue", habf.Params{TotalBits: total, Seed: cfg.Seed, DisableCostOrdering: true}},
		{"f-HABF (double hashing + no Γ)", habf.Params{TotalBits: total, Seed: cfg.Seed, Fast: true}},
	}
	t := Table{
		ID:     "ablations",
		Title:  "TPJO design-choice ablations, Shalla zipf(1.0), 1.5 MB equivalent",
		Header: []string{"variant", "weighted FPR", "optimized", "failed", "adjusted"},
	}
	for _, v := range variants {
		f, err := habf.New(w.pos, w.weighted, v.p)
		if err != nil {
			t.Rows = append(t.Rows, []string{v.name, "err", "", "", ""})
			continue
		}
		wf, _ := metrics.WeightedFPR(f, w.neg, w.costs)
		st := f.Stats()
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.3e", wf),
			fmt.Sprint(st.Optimized),
			fmt.Sprint(st.Failed),
			fmt.Sprint(st.AdjustedPositives),
		})
	}
	return []Table{t}
}
