package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func sample(ns map[string]float64) File {
	f := File{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", CPUs: 4}
	for name, v := range ns {
		f.Results = append(f.Results, Result{Name: name, Ops: 1000, NsPerOp: v})
	}
	return f
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := sample(map[string]float64{"net/contains": 50000, "net/contains_batch": 2000})
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != Schema {
		t.Fatalf("schema %d, want %d", out.Schema, Schema)
	}
	if len(out.Results) != 2 {
		t.Fatalf("%d results, want 2", len(out.Results))
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := sample(nil)
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	// Corrupt the schema by writing a raw file claiming schema 999.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeRaw(bad, `{"schema": 999, "results": []}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestCompare(t *testing.T) {
	baseline := sample(map[string]float64{
		"a": 1000,
		"b": 1000,
		"c": 1000,
	})
	current := sample(map[string]float64{
		"a": 2400, // 2.4x: within 2.5x tolerance
		"b": 2600, // 2.6x: regression
		// "c" missing: regression
		"d": 99999, // new scenario: ignored
	})
	regs := Compare(baseline, current, 2.5)
	if len(regs) != 2 {
		t.Fatalf("%d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Name != "b" || regs[0].Missing || regs[0].Ratio < 2.59 || regs[0].Ratio > 2.61 {
		t.Fatalf("bad regression record: %+v", regs[0])
	}
	if regs[1].Name != "c" || !regs[1].Missing {
		t.Fatalf("missing scenario not flagged: %+v", regs[1])
	}
	if got := Compare(baseline, baseline, 2.5); len(got) != 0 {
		t.Fatalf("self-compare found %d regressions", len(got))
	}
}

func TestPercentile(t *testing.T) {
	samples := []int64{50, 10, 40, 30, 20}
	if p := Percentile(samples, 50); p != 30 {
		t.Fatalf("p50 = %v, want 30", p)
	}
	if p := Percentile(samples, 100); p != 50 {
		t.Fatalf("p100 = %v, want 50", p)
	}
	if p := Percentile(nil, 99); p != 0 {
		t.Fatalf("empty p99 = %v, want 0", p)
	}
}
