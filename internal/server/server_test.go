package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	habf "repro"
	"repro/internal/dataset"
)

// newTestFilter builds a small sharded filter over deterministic keys.
func newTestFilter(t testing.TB, keys int) (*habf.Sharded, dataset.Pair) {
	t.Helper()
	data := dataset.YCSB(keys, keys, 7)
	negatives := make([]habf.WeightedKey, keys)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: 1}
	}
	f, err := habf.NewSharded(data.Positives, negatives, uint64(10*keys), habf.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	return f, data
}

// newTestServer wires a Server around filter and serves it via httptest.
func newTestServer(t testing.TB, filter *habf.Sharded, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Filter = filter
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// containsJSON queries /v1/contains with the JSON body form.
func containsJSON(t testing.TB, base string, key []byte) bool {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/contains", map[string]any{"key": key})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contains: HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Present bool `json:"present"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("contains: %v in %q", err, body)
	}
	return out.Present
}

// containsRaw queries /v1/contains with the octet-stream fast path.
func containsRaw(t testing.TB, base string, key []byte) bool {
	t.Helper()
	resp, err := http.Post(base+"/v1/contains", "application/octet-stream", bytes.NewReader(key))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw contains: HTTP %d: %s", resp.StatusCode, body)
	}
	switch string(body) {
	case "1":
		return true
	case "0":
		return false
	}
	t.Fatalf("raw contains: unexpected body %q", body)
	return false
}

// TestEndpointsAgree pins the core contract: the JSON single-key path,
// the raw single-key path (both coalesced) and the batch path all answer
// exactly like the in-process filter, and members are never denied.
func TestEndpointsAgree(t *testing.T) {
	filter, data := newTestFilter(t, 2000)
	_, hs := newTestServer(t, filter, Config{})

	probes := make([][]byte, 0, 400)
	probes = append(probes, data.Positives[:200]...)
	probes = append(probes, data.Negatives[:200]...)

	want := filter.ContainsBatch(probes)
	enc := make([]string, len(probes))
	for i, k := range probes {
		enc[i] = base64.StdEncoding.EncodeToString(k)
	}
	resp, body := postJSON(t, hs.URL+"/v1/contains_batch", map[string]any{"keys": enc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contains_batch: HTTP %d: %s", resp.StatusCode, body)
	}
	var batch struct {
		Present []bool `json:"present"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Present) != len(probes) {
		t.Fatalf("contains_batch: %d results for %d keys", len(batch.Present), len(probes))
	}

	for i, key := range probes {
		if got := containsJSON(t, hs.URL, key); got != want[i] {
			t.Fatalf("probe %d: JSON contains %v, direct %v", i, got, want[i])
		}
		if got := containsRaw(t, hs.URL, key); got != want[i] {
			t.Fatalf("probe %d: raw contains %v, direct %v", i, got, want[i])
		}
		if batch.Present[i] != want[i] {
			t.Fatalf("probe %d: batch %v, direct %v", i, batch.Present[i], want[i])
		}
		if i < 200 && !want[i] {
			t.Fatalf("member %d denied by direct filter", i)
		}
	}
}

// TestAddThenContains checks a key added over HTTP is queryable at once,
// through both body forms.
func TestAddThenContains(t *testing.T) {
	filter, _ := newTestFilter(t, 500)
	_, hs := newTestServer(t, filter, Config{})

	jsonKey := []byte("fresh-json-key")
	resp, body := postJSON(t, hs.URL+"/v1/add", map[string]any{"key": jsonKey})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: HTTP %d: %s", resp.StatusCode, body)
	}
	rawKey := []byte("fresh-raw-key")
	rr, err := http.Post(hs.URL+"/v1/add", "application/octet-stream", bytes.NewReader(rawKey))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusNoContent {
		t.Fatalf("raw add: HTTP %d", rr.StatusCode)
	}
	for _, key := range [][]byte{jsonKey, rawKey} {
		if !containsJSON(t, hs.URL, key) {
			t.Fatalf("added key %q denied", key)
		}
	}
}

// TestSnapshotRoundTrip drives /v1/snapshot and restores the file with
// the public loader: the restored filter must serve every member.
func TestSnapshotRoundTrip(t *testing.T) {
	filter, data := newTestFilter(t, 2000)
	_, hs := newTestServer(t, filter, Config{})

	path := filepath.Join(t.TempDir(), "filter.snap")
	resp, body := postJSON(t, hs.URL+"/v1/snapshot", map[string]any{"path": path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Path string  `json:"path"`
		Ms   float64 `json:"ms"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Path != path {
		t.Fatalf("snapshot path %q, want %q", out.Path, path)
	}

	restored, err := habf.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range data.Positives {
		if !restored.Contains(key) {
			t.Fatalf("false negative after restore: member %d", i)
		}
	}
	if got, want := restored.Stats().Shards, filter.NumShards(); got != want {
		t.Fatalf("restored %d shards, want %d", got, want)
	}
}

// TestSnapshotDefaultPath uses the configured default target.
func TestSnapshotDefaultPath(t *testing.T) {
	filter, _ := newTestFilter(t, 300)
	path := filepath.Join(t.TempDir(), "default.snap")
	_, hs := newTestServer(t, filter, Config{SnapshotPath: path})
	resp, body := postJSON(t, hs.URL+"/v1/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d: %s", resp.StatusCode, body)
	}
	if _, err := habf.LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestStatsEndpoint spot-checks the operational document.
func TestStatsEndpoint(t *testing.T) {
	filter, data := newTestFilter(t, 1000)
	_, hs := newTestServer(t, filter, Config{})
	for i := 0; i < 64; i++ {
		containsRaw(t, hs.URL, data.Positives[i])
	}

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Keys != 1000 {
		t.Fatalf("stats keys %d, want 1000", st.Keys)
	}
	if len(st.Shards) != filter.NumShards() {
		t.Fatalf("stats %d shards, want %d", len(st.Shards), filter.NumShards())
	}
	var shardKeys int
	for _, sh := range st.Shards {
		shardKeys += sh.Keys
	}
	if shardKeys != 1000 {
		t.Fatalf("per-shard keys sum %d, want 1000", shardKeys)
	}
	if got := st.Coalesce.Keys + st.Coalesce.Direct; got != 64 {
		t.Fatalf("coalesce keys+direct %d, want 64", got)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition renders the
// serving counters with believable values.
func TestMetricsEndpoint(t *testing.T) {
	filter, data := newTestFilter(t, 500)
	_, hs := newTestServer(t, filter, Config{})
	for i := 0; i < 10; i++ {
		containsRaw(t, hs.URL, data.Positives[i])
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`habfserved_requests_total{endpoint="contains"} 10`,
		"# TYPE habfserved_requests_total counter",
		"# TYPE habfserved_contains_duration_seconds histogram",
		"habfserved_contains_duration_seconds_count 10",
		`habfserved_contains_duration_seconds_bucket{le="+Inf"} 10`,
		"habfserved_filter_keys 500",
		fmt.Sprintf("habfserved_filter_shards %d", filter.NumShards()),
		"habfserved_filter_pending_keys 0",
		"habfserved_filter_restored_shards 0",
		"habfserved_filter_absorbs 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestStatsReportsTuning pins that /v1/stats surfaces the effective
// backend tuning so operators can confirm what a server is actually
// running with (the flag-to-wire contract behind habfserved -tune).
func TestStatsReportsTuning(t *testing.T) {
	data := dataset.YCSB(500, 500, 7)
	negatives := make([]habf.WeightedKey, 500)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: 1}
	}
	filter, err := habf.NewSharded(data.Positives, negatives, 5000,
		habf.WithShards(2), habf.WithBackend("bloom"), habf.WithTuning("strategy=seeded64", "k=8"))
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, filter, Config{})

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Backend != "bloom" {
		t.Fatalf("stats backend %q, want bloom", st.Backend)
	}
	if want := filter.Tuning(); st.Tuning != want || st.Tuning == "" {
		t.Fatalf("stats tuning %q, want %q", st.Tuning, want)
	}
	for _, knob := range []string{"strategy=seeded64", "k=8"} {
		if !strings.Contains(st.Tuning, knob) {
			t.Fatalf("stats tuning %q missing requested knob %q", st.Tuning, knob)
		}
	}
	if st.Restored != 0 || st.Absorbs != 0 {
		t.Fatalf("fresh build reports restored=%d absorbs=%d, want 0/0", st.Restored, st.Absorbs)
	}
}

// TestRequestErrors pins the failure-mode statuses.
func TestRequestErrors(t *testing.T) {
	filter, _ := newTestFilter(t, 200)
	srv, hs := newTestServer(t, filter, Config{})

	if resp, err := http.Get(hs.URL + "/v1/contains"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET contains: HTTP %d, want 405", resp.StatusCode)
		}
	}
	if resp, err := http.Post(hs.URL+"/v1/contains", "application/json", strings.NewReader("{broken")); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("broken JSON: HTTP %d, want 400", resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, hs.URL+"/v1/contains_batch", map[string]any{"keys": [][]byte{}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, hs.URL+"/v1/snapshot", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pathless snapshot: HTTP %d, want 400", resp.StatusCode)
	}
	if srv.Coalescer().Stats().Direct != 0 {
		t.Fatal("error requests should not have touched the filter")
	}
}

// TestOversizedBodyRejected pins the truncation bugfix: a raw key (or
// batch/snapshot body) over the body cap must be rejected with 413 —
// never cut at the limit and then queried or Add-acked as the
// truncated prefix, which would be a confident answer for the wrong
// key.
func TestOversizedBodyRejected(t *testing.T) {
	filter, _ := newTestFilter(t, 300)
	srv, hs := newTestServer(t, filter, Config{})

	oversized := bytes.Repeat([]byte{'K'}, maxBodyBytes+1)

	for _, ep := range []string{"/v1/contains", "/v1/add"} {
		resp, err := http.Post(hs.URL+ep, "application/octet-stream", bytes.NewReader(oversized))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized raw key: HTTP %d, want 413", ep, resp.StatusCode)
		}
	}
	// The old truncating reader would have inserted the first
	// maxBodyBytes bytes as a key; a rejected Add must leave the filter
	// untouched.
	if st := filter.Stats(); st.Added != 0 || st.Keys != 300 {
		t.Fatalf("rejected oversized Add still changed the filter: %+v — the key was silently cut and inserted", st)
	}

	bigBatch, err := json.Marshal(map[string]any{"keys": []string{base64.StdEncoding.EncodeToString(oversized)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/contains_batch", "application/json", bytes.NewReader(bigBatch))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch body: HTTP %d, want 413", resp.StatusCode)
	}

	bigSnap := append([]byte(`{"path": "`), bytes.Repeat([]byte{'p'}, maxBodyBytes)...)
	bigSnap = append(bigSnap, `"}`...)
	resp, err = http.Post(hs.URL+"/v1/snapshot", "application/json", bytes.NewReader(bigSnap))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized snapshot body: HTTP %d, want 413", resp.StatusCode)
	}

	if srv.Coalescer().Stats().Keys+srv.Coalescer().Stats().Direct != 0 {
		t.Fatal("an oversized request reached the filter")
	}
}

// TestContentTypeMediaTypeParsing pins the octet-stream detection
// bugfix: media-type parameters must still select the raw path, and a
// present-but-malformed Content-Type is a 400, not a silent JSON
// fallback that misparses a raw key.
func TestContentTypeMediaTypeParsing(t *testing.T) {
	filter, data := newTestFilter(t, 500)
	_, hs := newTestServer(t, filter, Config{})
	member := data.Positives[0]

	for _, ct := range []string{
		"application/octet-stream",
		"application/octet-stream; charset=binary",
		"application/octet-stream;charset=binary",
		"APPLICATION/OCTET-STREAM",
	} {
		resp, err := http.Post(hs.URL+"/v1/contains", ct, bytes.NewReader(member))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || string(body) != "1" {
			t.Fatalf("Content-Type %q: HTTP %d body %q, want 200 %q", ct, resp.StatusCode, body, "1")
		}
	}

	for _, ct := range []string{
		"application/octet-stream; charset",
		"application/",
		"bogus; ;",
	} {
		resp, err := http.Post(hs.URL+"/v1/contains", ct, bytes.NewReader(member))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed Content-Type %q: HTTP %d, want 400", ct, resp.StatusCode)
		}
	}
}

// TestEmptyKeyRejected pins the contains/add consistency bugfix: an
// empty key gets 400 from both endpoints and both body forms — an
// empty-bodied contains must not get a membership answer for the empty
// key.
func TestEmptyKeyRejected(t *testing.T) {
	filter, _ := newTestFilter(t, 300)
	srv, hs := newTestServer(t, filter, Config{})

	for _, ep := range []string{"/v1/contains", "/v1/add"} {
		resp, err := http.Post(hs.URL+ep, "application/octet-stream", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s empty raw body: HTTP %d, want 400", ep, resp.StatusCode)
		}
		if resp, _ := postJSON(t, hs.URL+ep, map[string]any{"key": ""}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s empty JSON key: HTTP %d, want 400", ep, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, hs.URL+"/v1/contains_batch", map[string]any{"keys": []string{""}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with empty key: HTTP %d, want 400", resp.StatusCode)
	}
	if st := srv.Coalescer().Stats(); st.Keys+st.Direct != 0 {
		t.Fatal("an empty-key request reached the filter")
	}
}

// TestConcurrentContainsAndAdd hammers the single-key read and write
// endpoints from many goroutines at once — the -race test of the
// serving layer's no-external-locking claim, end to end through HTTP
// and the coalescer.
func TestConcurrentContainsAndAdd(t *testing.T) {
	filter, data := newTestFilter(t, 2000)
	_, hs := newTestServer(t, filter, Config{Coalesce: CoalesceConfig{MaxBatch: 32}})

	const (
		readers = 6
		writers = 3
		perG    = 150
	)
	client := hs.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: readers + writers + 1}

	var wg sync.WaitGroup
	errc := make(chan error, readers+writers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := data.Positives[(r*perG+i)%len(data.Positives)]
				resp, err := client.Post(hs.URL+"/v1/contains", "application/octet-stream", bytes.NewReader(key))
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if string(body) != "1" {
					errc <- fmt.Errorf("reader %d: member denied (%q)", r, body)
					return
				}
			}
		}(r)
	}
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("hammer-%d-%06d", wr, i)
				resp, err := client.Post(hs.URL+"/v1/add", "application/octet-stream", strings.NewReader(key))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errc <- fmt.Errorf("writer %d: HTTP %d", wr, resp.StatusCode)
					return
				}
			}
		}(wr)
	}
	// One goroutine scrapes the operational endpoints throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			for _, p := range []string{"/v1/stats", "/metrics"} {
				resp, err := client.Get(hs.URL + p)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every acked write must be visible afterwards.
	filter.WaitRebuilds()
	for wr := 0; wr < writers; wr++ {
		for i := 0; i < perG; i += 37 {
			key := fmt.Sprintf("hammer-%d-%06d", wr, i)
			if !filter.Contains([]byte(key)) {
				t.Fatalf("acked add %q lost", key)
			}
		}
	}
}
