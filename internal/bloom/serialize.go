package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/hashes"
)

// Serialization lets a Bloom filter built once be shipped to query nodes
// or framed into a serving snapshot (internal/snapshot), mirroring the
// HABF wire format conventions. The format is self-describing and
// versioned:
//
//	magic u32 "BLMF" | version u8 | strategy u8 | k u8 | reserved u8 |
//	count u64 | bitsLen u64 | bits (bitset.Bits wire format)
//
// Only query-time state is serialized; the insert count travels along so
// fill statistics survive a round trip.

// Version 2: probe positions derive from the shared base hash
// (hashes.Base) instead of per-family key hashing. Version-1 containers
// hold bits under the old derivation and must not be served by this
// code, so decoding rejects them.
const filterVersion = 2

// wireMagic is the on-wire magic: "BLMF" as a little-endian u32.
const wireMagic = uint32(0x464d4c42)

// headerSize is the fixed prefix before the length-prefixed bits block.
const headerSize = 16

// WireAlignOffset is the offset within a MarshalBinary payload of the
// first word of the bit array: header, block length, Bits header.
// Containers that want zero-copy loads pad their frames so this offset
// lands 8-byte aligned in the mapped buffer.
const WireAlignOffset = headerSize + 8 + 12

// MarshalBinary encodes the filter's query-time state.
func (f *Filter) MarshalBinary() ([]byte, error) {
	bits, err := f.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, headerSize+8, headerSize+8+len(bits))
	binary.LittleEndian.PutUint32(out[0:4], wireMagic)
	out[4] = filterVersion
	out[5] = uint8(f.strategy)
	out[6] = uint8(f.k)
	binary.LittleEndian.PutUint64(out[8:16], f.n)
	binary.LittleEndian.PutUint64(out[16:24], uint64(len(bits)))
	return append(out, bits...), nil
}

// UnmarshalFilter decodes a filter produced by MarshalBinary into owned
// memory; data is not retained.
func UnmarshalFilter(data []byte) (*Filter, error) {
	return unmarshalFilter(data, false)
}

// UnmarshalFilterBorrow decodes a filter produced by MarshalBinary
// without copying the bit array when it is 8-byte aligned inside data:
// the filter then serves queries directly from data, which the caller
// must keep alive and unmodified. A post-load Add copies the array
// before mutating it (copy-on-first-write), never writing data.
func UnmarshalFilterBorrow(data []byte) (*Filter, error) {
	return unmarshalFilter(data, true)
}

func unmarshalFilter(data []byte, borrow bool) (*Filter, error) {
	if len(data) < headerSize+8 {
		return nil, errors.New("bloom: truncated filter header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != wireMagic {
		return nil, errors.New("bloom: bad filter magic")
	}
	if data[4] != filterVersion {
		return nil, fmt.Errorf("bloom: unsupported filter version %d", data[4])
	}
	strategy := Strategy(data[5])
	k := int(data[6])
	n := binary.LittleEndian.Uint64(data[8:16])
	// Compare in uint64 space before narrowing (32-bit hosts).
	bitsLen64 := binary.LittleEndian.Uint64(data[16:24])
	if bitsLen64 != uint64(len(data)-headerSize-8) {
		return nil, errors.New("bloom: bits block length mismatch")
	}

	f := &Filter{k: k, strategy: strategy, n: n}
	switch strategy {
	case StrategyCorpus:
		corpus := hashes.CorpusFuncs()
		if k > len(corpus) {
			return nil, fmt.Errorf("bloom: k = %d exceeds corpus size %d", k, len(corpus))
		}
		f.fns = corpus[:k]
	case StrategySeeded64, StrategySplit128:
	default:
		return nil, fmt.Errorf("bloom: unknown strategy %d", data[5])
	}
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("bloom: k = %d out of range [1,64]", k)
	}

	unmarshalBits := (*bitset.Bits).UnmarshalBinary
	if borrow {
		unmarshalBits = (*bitset.Bits).UnmarshalBinaryBorrow
	}
	var bits bitset.Bits
	if err := unmarshalBits(&bits, data[headerSize+8:]); err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	if bits.Len() == 0 {
		return nil, errors.New("bloom: zero-length filter")
	}
	f.bits = &bits
	return f, nil
}

// Borrowed reports whether the filter still serves from the buffer it
// was decoded from (UnmarshalFilterBorrow before any mutation).
func (f *Filter) Borrowed() bool { return f.bits.Borrowed() }
