package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bloom"
	"repro/internal/dataset"
	"repro/internal/habf"
	"repro/internal/lsm"
)

// Related compares HABF against the partitioned-hashing Bloom filter of
// Hao et al. (SIGMETRICS 2007) — the closest prior work, which §II of the
// paper positions as "a special case of customizing hash functions":
// per-group selections instead of per-key, and no cost awareness.
func Related(cfg Config) []Table {
	cfg = cfg.withDefaults()
	uniform := cfg.shallaWorkload(0)
	skewed := cfg.shallaWorkload(1.0)
	filters := []string{"HABF", "PHBF", "BF"}
	return []Table{
		fprVsSpace("related-uniform", "HABF vs partitioned hashing (Hao et al.), Shalla uniform",
			uniform, 0, 1, shallaBitsPerKey, filters, cfg.Seed),
		fprVsSpace("related-skewed", "HABF vs partitioned hashing (Hao et al.), Shalla zipf(1.0), avg of 3",
			skewed, 1.0, 3, shallaBitsPerKey, filters, cfg.Seed),
	}
}

// LSM replays the paper's motivating LevelDB scenario (§I): "the
// frequently failed queries with heavy I/O overhead can be cached" — miss
// traffic is Zipf-skewed toward hot keys, each run guard is either a
// plain Bloom filter or an HABF built from the observed misses weighted
// by (frequency × level read cost), and the metric is wasted simulated
// I/O cost. This is the repository's integration experiment across the
// lsm, dataset, bloom and habf packages.
//
// To keep the HashExpressor within its budget on small runs, each guard
// optimizes only the hottest misses, capped at 2× the run's key count —
// exactly the "cache the frequently failed queries" policy of §I.
func LSM(cfg Config) []Table {
	cfg = cfg.withDefaults()
	n := cfg.ycsbN() / 4
	if n < 2000 {
		n = 2000
	}
	data := cfg.ycsbWorkload(0)
	resident := data.pos[:n]
	misses := data.neg[:n]
	freq := dataset.ZipfCosts(n, 1.1, cfg.Seed) // hot misses repeat

	// Deterministic query stream: 3n miss lookups sampled by frequency,
	// interleaved 1:4 with resident hits.
	var totalFreq float64
	cum := make([]float64, n)
	for i, f := range freq {
		totalFreq += f
		cum[i] = totalFreq
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	stream := make([]int, 3*n)
	for i := range stream {
		x := rng.Float64() * totalFreq
		stream[i] = sort.SearchFloat64s(cum, x)
		if stream[i] >= n {
			stream[i] = n - 1
		}
	}

	// Hot-miss subset by frequency, for guard construction.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return freq[order[a]] > freq[order[b]] })

	type policy struct {
		name  string
		guard lsm.FilterBuilder
	}
	policies := []policy{
		{"no filter", nil},
		{"BF guards", func(keys [][]byte, level int) lsm.Filter {
			f, err := bloom.NewWithKeys(keys, 10, bloom.StrategySplit128)
			if err != nil {
				return nil
			}
			return f
		}},
		{"f-HABF guards", func(keys [][]byte, level int) lsm.Filter {
			levelCost := float64(uint64(1) << level)
			limit := 2 * len(keys)
			if limit > n {
				limit = n
			}
			negs := make([]habf.WeightedKey, 0, limit)
			for _, idx := range order[:limit] {
				negs = append(negs, habf.WeightedKey{
					Key:  misses[idx],
					Cost: freq[idx] * levelCost,
				})
			}
			f, err := habf.New(keys, negs, habf.Params{
				TotalBits: uint64(10 * len(keys)), Fast: true, Seed: cfg.Seed,
			})
			if err != nil {
				return nil
			}
			return f
		}},
	}

	t := Table{
		ID:     "lsm",
		Title:  fmt.Sprintf("LSM-tree guards, %d resident keys, %d zipf(1.1) miss lookups", n, len(stream)),
		Header: []string{"guard policy", "disk reads", "wasted reads", "wasted cost", "filter rejects"},
	}
	for _, p := range policies {
		s := lsm.New(lsm.Config{MemtableSize: 2048, NewFilter: p.guard})
		for i, k := range resident {
			s.Put(k, []byte(fmt.Sprintf("v%d", i)))
		}
		s.Flush()
		s.ResetStats()
		for i, idx := range stream {
			s.Get(misses[idx])
			if i%4 == 0 {
				s.Get(resident[i%len(resident)])
			}
		}
		st := s.Stats()
		var reads, wasted, rejects uint64
		for i := range st.Reads {
			reads += st.Reads[i]
			wasted += st.WastedReads[i]
			rejects += st.FilterRejects[i]
		}
		t.Rows = append(t.Rows, []string{
			p.name,
			fmt.Sprint(reads),
			fmt.Sprint(wasted),
			fmt.Sprintf("%.0f", st.WastedCost),
			fmt.Sprint(rejects),
		})
	}
	return []Table{t}
}
