package snapshot_test

import (
	"bytes"
	"encoding/hex"
	"testing"
	"unsafe"

	"repro/internal/snapshot"
)

// offsetIn returns p's byte offset inside data, or -1 if p does not
// alias data. (bytes.Index would find the first equal byte sequence,
// which is wrong for short payloads.)
func offsetIn(data, p []byte) int {
	if len(p) == 0 || len(data) == 0 {
		return -1
	}
	d := uintptr(unsafe.Pointer(&p[0])) - uintptr(unsafe.Pointer(&data[0]))
	if int(d) < 0 || int(d)+len(p) > len(data) {
		return -1
	}
	return int(d)
}

func testSnapshot() *snapshot.Snapshot {
	return &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Kind:       snapshot.KindShardedSet,
			Backend:    2, // non-default backend byte must round-trip
			BaseSeed:   42,
			RouteSeed:  0x123456789abcdef0,
			K:          3,
			CellBits:   4,
			SpaceRatio: 0.25,
			BitsPerKey: 10,
			Threshold:  0.02,
		},
		Frames: []snapshot.Frame{
			{Epoch: 7, Payload: []byte("frame-zero-payload"), Align: 4},
			{Epoch: 0, Payload: nil}, // empty shard
			{Epoch: 9, Payload: bytes.Repeat([]byte{0xAB}, 40), Align: 0},
			{Epoch: 1, Payload: []byte{1}, Align: 1},
		},
	}
}

func TestContainerRoundtrip(t *testing.T) {
	s := testSnapshot()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Meta != s.Meta {
		t.Fatalf("meta mismatch:\n got  %+v\n want %+v", g.Meta, s.Meta)
	}
	if len(g.Frames) != len(s.Frames) {
		t.Fatalf("frame count %d != %d", len(g.Frames), len(s.Frames))
	}
	for i := range s.Frames {
		if g.Frames[i].Epoch != s.Frames[i].Epoch {
			t.Errorf("frame %d epoch %d != %d", i, g.Frames[i].Epoch, s.Frames[i].Epoch)
		}
		if !bytes.Equal(g.Frames[i].Payload, s.Frames[i].Payload) {
			t.Errorf("frame %d payload mismatch", i)
		}
	}
}

func TestContainerPayloadsAliasInput(t *testing.T) {
	data, err := testSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-copy contract: decoded payloads point into data, not copies.
	p := g.Frames[0].Payload
	if len(p) == 0 {
		t.Fatal("frame 0 empty")
	}
	if offsetIn(data, p) < 0 {
		t.Fatal("decoded payload does not alias the container buffer")
	}
}

func TestContainerAlignment(t *testing.T) {
	s := testSnapshot()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range s.Frames {
		if len(want.Payload) == 0 {
			continue
		}
		p := g.Frames[i].Payload
		fileOff := offsetIn(data, p)
		if fileOff < 0 {
			t.Fatalf("frame %d does not alias the container", i)
		}
		if (fileOff+want.Align)%8 != 0 {
			t.Errorf("frame %d: payload[%d] at file offset %d+%d not 8-aligned",
				i, want.Align, fileOff, want.Align)
		}
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	good, err := testSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":         {},
		"short":         good[:20],
		"no tail":       good[:len(good)-1],
		"half":          good[:len(good)/2],
		"bad magic":     mut(func(b []byte) { b[0] ^= 0xFF }),
		"bad version":   mut(func(b []byte) { b[4] = 99 }),
		"header bitrot": mut(func(b []byte) { b[17] ^= 0x01 }),
		"bad kind":      mut(func(b []byte) { b[48] = 99 }),
		"payload bitrot": mut(func(b []byte) {
			b[64+24+10] ^= 0x80 // inside frame 0's payload
		}),
		// The version-2 frame CRC covers the frame header and pad bytes
		// too — version 1's integrity blind spot.
		"epoch bitrot":  mut(func(b []byte) { b[64+3] ^= 0x01 }),
		"pad bitrot":    mut(func(b []byte) { b[64+24] ^= 0x01 }), // frame 0 pad (Align 4 → 4 pad bytes)
		"footer bitrot": mut(func(b []byte) { b[len(b)-20] ^= 0x01 }),
		"shard count 0": mut(func(b []byte) {
			b[52], b[53], b[54], b[55] = 0, 0, 0, 0
			// headerCRC now wrong too; rejected either way
		}),
		"huge shard count": mut(func(b []byte) {
			b[52], b[53], b[54], b[55] = 0xFF, 0xFF, 0xFF, 0xFF
		}),
		"trailing": append(append([]byte(nil), good...), 0x00),
	}
	for name, data := range cases {
		if _, err := snapshot.Unmarshal(data); err == nil {
			t.Errorf("%s: corrupt container accepted", name)
		}
	}
}

// TestGoldenContainer pins the container wire format byte for byte. If
// this test fails, the format changed: that requires a version bump and
// a deliberate update of this fixture, or old snapshots stop loading.
func TestGoldenContainer(t *testing.T) {
	s := &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Kind:       snapshot.KindShardedSet,
			BaseSeed:   1,
			RouteSeed:  0xdeadbeefcafe,
			K:          3,
			CellBits:   4,
			SpaceRatio: 0.25,
			BitsPerKey: 12,
			Threshold:  0.02,
		},
		Frames: []snapshot.Frame{
			{Epoch: 5, Payload: []byte("golden"), Align: 2},
			{Epoch: 0, Payload: nil},
		},
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(data)
	const want = "48534e50020003040100000000000000fecaefbeadde0000000000000000d03f0000000000002840" +
		"7b14ae47e17a943f0100000002000000000000009a4a8b4805000000000000000600000000000000" +
		"3d2d89e006000000000000000000676f6c64656e00000000000000000000000000000000836ee6a5" +
		"0400000000000000400000000000000064000000000000008000000000000000edd95e1f504e5348"
	if got != want {
		t.Errorf("golden container drifted:\n got  %s\n want %s", got, want)
	}
	if _, err := snapshot.Unmarshal(data); err != nil {
		t.Fatalf("golden container does not decode: %v", err)
	}
}

// TestGoldenContainerVersion1 pins backward compatibility: the version-1
// rendering of the same snapshot (payload-only frame CRCs) must keep
// decoding to identical contents, or existing checkpoints stop loading.
func TestGoldenContainerVersion1(t *testing.T) {
	const v1 = "48534e50010003040100000000000000fecaefbeadde0000000000000000d03f0000000000002840" +
		"7b14ae47e17a943f010000000200000000000000635ab8ef05000000000000000600000000000000" +
		"2b216b4206000000000000000000676f6c64656e0000000000000000000000000000000000000000" +
		"0400000000000000400000000000000064000000000000008000000000000000edd95e1f504e5348"
	data, err := hex.DecodeString(v1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatalf("version-1 container does not decode: %v", err)
	}
	if g.Meta.RouteSeed != 0xdeadbeefcafe || g.Frames[0].Epoch != 5 ||
		string(g.Frames[0].Payload) != "golden" {
		t.Fatalf("version-1 container decoded wrong contents: %+v", g.Meta)
	}
	// Version-1 payload corruption is still caught by the payload CRC.
	bad := append([]byte(nil), data...)
	bad[64+24+6+2] ^= 0x01 // a payload byte of frame 0 (after the 6-byte pad)
	if _, err := snapshot.Unmarshal(bad); err == nil {
		t.Fatal("version-1 payload corruption accepted")
	}
}
