package habf_test

import (
	"fmt"
	"path/filepath"
	"testing"

	habf "repro"
)

// TestPublicBackends exercises the backend surface of the public API:
// Backends() lists the registry, WithBackend selects a family for the
// whole serving stack, Backend() reports it, and Save/Load round-trips
// it — with zero false negatives everywhere.
func TestPublicBackends(t *testing.T) {
	names := habf.Backends()
	if len(names) < 3 {
		t.Fatalf("Backends() = %v, want at least habf, bloom, xor", names)
	}

	const n = 2000
	positives := make([][]byte, n)
	negatives := make([]habf.WeightedKey, n)
	for i := 0; i < n; i++ {
		positives[i] = []byte(fmt.Sprintf("pub-member-%06d", i))
		negatives[i] = habf.WeightedKey{Key: []byte(fmt.Sprintf("pub-absent-%06d", i)), Cost: float64(i%5 + 1)}
	}

	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := habf.NewSharded(positives, negatives, 12*n,
				habf.WithShards(4), habf.WithBackend(name))
			if err != nil {
				t.Fatal(err)
			}
			if s.Backend() != name {
				t.Fatalf("Backend() = %q, want %q", s.Backend(), name)
			}
			for _, key := range positives {
				if !s.Contains(key) {
					t.Fatalf("false negative for %q", key)
				}
			}
			s.Add([]byte("pub-added"))
			if !s.Contains([]byte("pub-added")) {
				t.Fatal("added key not queryable")
			}

			path := filepath.Join(t.TempDir(), "pub.snap")
			if err := s.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			g, err := habf.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if g.Backend() != name {
				t.Fatalf("restored Backend() = %q, want %q", g.Backend(), name)
			}
			for _, key := range positives {
				if !g.Contains(key) {
					t.Fatalf("restored set lost %q", key)
				}
			}
			if !g.Contains([]byte("pub-added")) {
				t.Fatal("restored set lost the added key")
			}
			s.WaitRebuilds()
		})
	}

	if _, err := habf.NewSharded(positives, negatives, 12*n, habf.WithBackend("no-such")); err == nil {
		t.Fatal("NewSharded accepted an unknown backend")
	}
}
