package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	habf "repro"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// serveConfig drives the serving-layer throughput benchmark (-serve):
// single-filter per-key queries vs sharded per-key vs sharded batches,
// under a configurable key-access distribution, with optional concurrent
// writers exercising the Add path (per-shard locks, no external locking).
type serveConfig struct {
	keys     int
	backend  string // filter backend of the sharded set ("" = habf)
	tune     string // backend tuning knobs, "k=v,k=v" ("" = defaults)
	shards   int
	batch    int
	workers  int
	ops      int
	dist     string
	writers  int
	seed     int64
	snapshot string // save the sharded filter here after building
	restore  string // load the sharded filter from here instead of building
}

func runServe(cfg serveConfig, w io.Writer) error {
	dist, err := workload.Parse(cfg.dist)
	if err != nil {
		return err
	}
	if cfg.keys < 1 || cfg.workers < 1 || cfg.batch < 1 || cfg.ops < 1 {
		return fmt.Errorf("serve: -keys, -workers, -batch and -ops must all be ≥ 1")
	}
	if cfg.writers < 0 {
		return fmt.Errorf("serve: -writers must be ≥ 0")
	}
	data := dataset.YCSB(cfg.keys, cfg.keys, cfg.seed)
	costs := dataset.ZipfCosts(cfg.keys, 1.1, cfg.seed)
	negatives := make([]habf.WeightedKey, cfg.keys)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: costs[i]}
	}
	bits := uint64(10 * cfg.keys)

	start := time.Now()
	single, err := habf.New(data.Positives, negatives, bits)
	if err != nil {
		return err
	}
	singleBuild := time.Since(start)

	var (
		sharded      *habf.Sharded
		shardedBuild time.Duration
		restored     bool
	)
	if cfg.restore != "" {
		start = time.Now()
		sharded, err = habf.LoadFile(cfg.restore)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		if cfg.backend != "" && sharded.Backend() != cfg.backend {
			return fmt.Errorf("restore: snapshot holds a %q filter, but -backend %q was requested",
				sharded.Backend(), cfg.backend)
		}
		// Tuning knobs are durable in the snapshot; like -backend, a -tune
		// that contradicts them is an operator error, not a request the
		// restore can honor.
		if cfg.tune != "" {
			want, err := habf.ParseTuning(sharded.Backend(), cfg.tune)
			if err != nil {
				return fmt.Errorf("restore: -tune: %w", err)
			}
			if got := sharded.Tuning(); got != want {
				return fmt.Errorf("restore: snapshot tuning %q does not match -tune (%q)", got, want)
			}
		}
		shardedBuild = time.Since(start)
		restored = true
	} else {
		start = time.Now()
		sharded, err = habf.NewSharded(data.Positives, negatives, bits,
			habf.WithShards(cfg.shards), habf.WithBackend(cfg.backend), habf.WithTuning(cfg.tune))
		if err != nil {
			return err
		}
		shardedBuild = time.Since(start)
	}

	fmt.Fprintf(w, "serve: %d keys, %s access, %d shards, backend %s, batch %d, %d query workers, %d writers, GOMAXPROCS %d\n",
		cfg.keys, dist, sharded.NumShards(), sharded.Backend(), cfg.batch, cfg.workers, cfg.writers, runtime.GOMAXPROCS(0))
	if restored {
		fmt.Fprintf(w, "build: single %v, sharded restored from %s in %v (%.0f× vs single build)\n\n",
			singleBuild.Round(time.Millisecond), cfg.restore, shardedBuild.Round(time.Microsecond),
			float64(singleBuild)/float64(shardedBuild))
	} else {
		fmt.Fprintf(w, "build: single %v, sharded %v (parallel shard construction)\n\n",
			singleBuild.Round(time.Millisecond), shardedBuild.Round(time.Millisecond))
	}

	if !restored {
		// Accuracy line for the backend selection matrix: plain and
		// cost-weighted FPR over the known (zipf-weighted, adversarial)
		// negatives. Sampling contract (pinned by TestSamplingContract in
		// internal/metrics): both numbers are computed over exactly this
		// negative sample — the distribution cost-aware backends optimize
		// against — and estimate nothing beyond it; the uniform-universe
		// FPR of a backend can differ. Restored sets skip the line only
		// to keep -restore runs byte-input-only.
		fpr, err := habf.FPR(sharded, data.Negatives)
		if err != nil {
			return err
		}
		wfpr, err := habf.WeightedFPR(sharded, data.Negatives, costs)
		if err != nil {
			return err
		}
		// Build time rides the accuracy line because for the learned
		// backends it is the cost being traded for the FPR: model training
		// dominates their builds by orders of magnitude over the hash-based
		// families, and the matrix is meaningless without that column.
		fmt.Fprintf(w, "accuracy: %.2f bits/key, FPR %.4f%%, weighted FPR %.4f%% over the %d-key known-negative sample, built in %v\n\n",
			float64(sharded.SizeBits())/float64(cfg.keys), 100*fpr, 100*wfpr, cfg.keys,
			shardedBuild.Round(time.Millisecond))
	}

	if cfg.snapshot != "" {
		start = time.Now()
		if err := sharded.SaveFile(cfg.snapshot); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		// shardedBuild holds the restore time when -restore was also set,
		// so only label it a build time when it is one.
		if restored {
			fmt.Fprintf(w, "snapshot: wrote %s in %v (restore with -restore %s)\n\n",
				cfg.snapshot, time.Since(start).Round(time.Millisecond), cfg.snapshot)
		} else {
			fmt.Fprintf(w, "snapshot: wrote %s in %v (build was %v; restore with -restore %s)\n\n",
				cfg.snapshot, time.Since(start).Round(time.Millisecond),
				shardedBuild.Round(time.Millisecond), cfg.snapshot)
		}
	}

	// probeStream mixes positives and negatives under the distribution.
	probeStream := func(seed int64) ([][]byte, error) {
		return workload.MixProbes(dist, seed, 1<<16, data.Positives, data.Negatives)
	}

	// measure runs fn on cfg.workers goroutines (each with its own probe
	// stream) until cfg.ops keys have been processed in total, optionally
	// with background writers streaming Adds into the sharded set.
	measure := func(name string, withWriters bool, fn func(probes [][]byte, n int)) error {
		perWorker := cfg.ops / cfg.workers
		var wg sync.WaitGroup
		stop := make(chan struct{})
		if withWriters {
			for wr := 0; wr < cfg.writers; wr++ {
				wg.Add(1)
				go func(wr int) {
					defer wg.Done()
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
							sharded.Add([]byte(fmt.Sprintf("fresh-%d-%09d", wr, i)))
							i++
						}
					}
				}(wr)
			}
		}
		streams := make([][][]byte, cfg.workers)
		for i := range streams {
			var err error
			if streams[i], err = probeStream(cfg.seed + int64(i)); err != nil {
				return err
			}
		}
		begin := time.Now()
		var qwg sync.WaitGroup
		for i := 0; i < cfg.workers; i++ {
			qwg.Add(1)
			go func(i int) {
				defer qwg.Done()
				fn(streams[i], perWorker)
			}(i)
		}
		qwg.Wait()
		elapsed := time.Since(begin)
		close(stop)
		wg.Wait()
		mqps := float64(perWorker*cfg.workers) / elapsed.Seconds() / 1e6
		fmt.Fprintf(w, "%-28s %10.2f Mqps   (%v)\n", name, mqps, elapsed.Round(time.Millisecond))
		return nil
	}

	if err := measure("single/perkey", false, func(probes [][]byte, n int) {
		mask := len(probes) - 1
		for i := 0; i < n; i++ {
			_ = single.Contains(probes[i&mask])
		}
	}); err != nil {
		return err
	}
	if err := measure("sharded/perkey", false, func(probes [][]byte, n int) {
		mask := len(probes) - 1
		for i := 0; i < n; i++ {
			_ = sharded.Contains(probes[i&mask])
		}
	}); err != nil {
		return err
	}
	batchFn := func(probes [][]byte, n int) {
		mask := len(probes) - 1
		for i := 0; i < n; i += cfg.batch {
			lo := i & mask
			hi := lo + cfg.batch
			if hi > len(probes) {
				hi = len(probes)
			}
			_ = sharded.ContainsBatch(probes[lo:hi])
		}
	}
	if err := measure("sharded/batch", false, batchFn); err != nil {
		return err
	}
	if cfg.writers > 0 {
		if err := measure("sharded/batch+writers", true, batchFn); err != nil {
			return err
		}
	}
	sharded.WaitRebuilds()
	st := sharded.Stats()
	if restored {
		// A restored set carries no key list, so Keys counts only
		// post-restore Adds — report it as such rather than as the
		// (much larger) member count the filter actually serves.
		fmt.Fprintf(w, "\nsharded stats: %d keys added post-restore, %d of %d shards from snapshot (no drift rebuilds), %.1f KiB\n",
			st.Keys, st.Restored, st.Shards, float64(st.SizeBits)/8/1024)
		return nil
	}
	fmt.Fprintf(w, "\nsharded stats: %d keys, %d adds pending rebuild, %d background rebuilds, %.1f KiB\n",
		st.Keys, st.Added, st.Rebuilds, float64(st.SizeBits)/8/1024)
	return nil
}
