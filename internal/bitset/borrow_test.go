package bitset

import (
	"testing"
)

func buildBits(n uint64) *Bits {
	b := New(n)
	for i := uint64(0); i < n; i += 3 {
		b.Set(i)
	}
	return b
}

func TestBitsBorrowAliasesPayload(t *testing.T) {
	b := buildBits(1000)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Bits
	if err := g.UnmarshalBinaryBorrow(data); err != nil {
		t.Fatal(err)
	}
	if !hostLittleEndian {
		t.Skip("big-endian host: borrow degrades to copy by design")
	}
	// MarshalBinary's 12-byte header leaves the payload 8-misaligned half
	// the time depending on the allocator; only assert aliasing when the
	// decoder reported it.
	if g.Borrowed() {
		// Mutating the source buffer must show through the alias...
		if g.Test(1) {
			t.Fatal("bit 1 unexpectedly set")
		}
		data[12] |= 0x02
		if !g.Test(1) {
			t.Fatal("borrowed vector does not alias the buffer")
		}
		data[12] &^= 0x02
	}
	if !g.Equal(b) {
		t.Fatal("borrowed decode disagrees with source")
	}
}

func TestBitsCopyOnFirstWrite(t *testing.T) {
	b := buildBits(1000)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Bits
	if err := g.UnmarshalBinaryBorrow(data); err != nil {
		t.Fatal(err)
	}
	wasBorrowed := g.Borrowed()
	g.Set(1)
	if g.Borrowed() {
		t.Fatal("vector still borrowed after a mutation")
	}
	if !g.Test(1) || !g.Test(0) || g.Test(2) {
		t.Fatal("materialized vector lost state")
	}
	if wasBorrowed {
		// The snapshot buffer must be untouched by the write.
		var h Bits
		if err := h.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !h.Equal(b) {
			t.Fatal("copy-on-write mutated the source buffer")
		}
	}
}

func TestBitsBorrowMisalignedFallsBackToCopy(t *testing.T) {
	b := buildBits(256)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Force both parities: one of buf[0:] / buf[1:] is misaligned.
	buf := make([]byte, len(data)+1)
	sawCopy := false
	for shift := 0; shift <= 1; shift++ {
		d := buf[shift : shift+len(data)]
		copy(d, data)
		var g Bits
		if err := g.UnmarshalBinaryBorrow(d); err != nil {
			t.Fatal(err)
		}
		if !g.Equal(b) {
			t.Fatalf("shift %d: decode disagrees", shift)
		}
		if !g.Borrowed() {
			sawCopy = true
		}
	}
	if hostLittleEndian && !sawCopy {
		t.Fatal("expected at least one of the two parities to be misaligned")
	}
}

func TestLanesBorrowAndCopyOnWrite(t *testing.T) {
	l := NewLanes(500, 5)
	for i := uint64(0); i < 500; i++ {
		l.Set(i, i%31)
	}
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Lanes
	if err := g.UnmarshalBinaryBorrow(data); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if g.Get(i) != i%31 {
			t.Fatalf("lane %d: got %d want %d", i, g.Get(i), i%31)
		}
	}
	g.Set(7, 30)
	if g.Borrowed() {
		t.Fatal("lanes still borrowed after Set")
	}
	if g.Get(7) != 30 || g.Get(8) != 8%31 {
		t.Fatal("materialized lanes lost state")
	}
	var h Lanes
	if err := h.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if h.Get(7) != 7%31 {
		t.Fatal("copy-on-write mutated the source buffer")
	}
}

func TestBitsResetAndUnionMaterialize(t *testing.T) {
	b := buildBits(128)
	data, _ := b.MarshalBinary()
	var g Bits
	if err := g.UnmarshalBinaryBorrow(data); err != nil {
		t.Fatal(err)
	}
	if err := g.Union(New(128)); err != nil { // no-op union still materializes
		t.Fatal(err)
	}
	if g.Borrowed() {
		t.Fatal("still borrowed after Union")
	}
	var h Bits
	if err := h.UnmarshalBinaryBorrow(data); err != nil {
		t.Fatal(err)
	}
	h.Reset()
	if h.Borrowed() || h.OnesCount() != 0 {
		t.Fatal("Reset did not produce an owned zero vector")
	}
	var probe Bits
	if err := probe.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !probe.Equal(b) {
		t.Fatal("Reset mutated the source buffer")
	}
}

// Regression: a declared bit length near 2^64 made (n+63)/64 wrap, so a
// 12-byte payload decoded as a vector claiming 2^64-1 bits whose first
// Test panicked with an index out of range.
func TestBitsUnmarshalLengthOverflow(t *testing.T) {
	data, _ := New(0).MarshalBinary()
	for _, n := range []uint64{^uint64(0), ^uint64(0) - 62, 1 << 63, 1 << 32} {
		bad := append([]byte(nil), data...)
		putU64(bad[4:12], n)
		var b Bits
		if err := b.UnmarshalBinary(bad); err == nil {
			t.Errorf("n=%d: hostile bit length accepted", n)
		}
		if err := b.UnmarshalBinaryBorrow(bad); err == nil {
			t.Errorf("n=%d: hostile bit length accepted (borrow)", n)
		}
	}
}

// Regression: n·width wrapped the same way for Lanes.
func TestLanesUnmarshalLengthOverflow(t *testing.T) {
	data, _ := NewLanes(1, 64).MarshalBinary()
	for _, n := range []uint64{^uint64(0), (^uint64(0))/64 + 1, 1 << 60} {
		bad := append([]byte(nil), data...)
		putU64(bad[8:16], n)
		var l Lanes
		if err := l.UnmarshalBinary(bad); err == nil {
			t.Errorf("n=%d: hostile lane count accepted", n)
		}
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
