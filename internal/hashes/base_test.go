package hashes

import (
	"strings"
	"testing"
)

// TestBaseGoldenVectors pins the exact output of the shared base hash.
// Base is a format constant, not just a function: shard routing, the
// seeded64 Bloom strategy, the xor filter, PHBF and WBF all store bits
// derived from it, so any change to its output silently corrupts every
// serialized container of those families. If this test fails, you have
// redefined the on-disk format — bump the affected filter versions and
// regenerate every golden fixture, or revert.
func TestBaseGoldenVectors(t *testing.T) {
	vectors := []struct {
		in   string
		want uint64
	}{
		{"", 0x85e0b17362acf074},
		{"a", 0x54580a24a10ae040},
		{"ab", 0x6746548e227b93aa},
		{"abc", 0xbfdb05d686cbf160},
		{"abcd", 0xad1c3ea5d7b2e7ad},
		{"key-0000042", 0xb56f7d75bb1945fc},
		{"www.example.com", 0x0a71cd215b6c26c7},
		{"habf.sharded.batch/route", 0x738f5cb6d511d9ce},
		{"xxxxxxxxxxxxxxxx", 0x4dc4be362c015b57},
		{"domain.example/domain.example/domain.example/", 0x586d2c16ccc58b61},
		{"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", 0xdb37757192e9f1e6},
		{"long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/long-key-material/", 0x9de32d95812dcf70},
	}
	for _, v := range vectors {
		if got := Base([]byte(v.in)); got != v.want {
			t.Errorf("Base(%q) = %#016x, want %#016x — the base-hash format changed", v.in, got, v.want)
		}
	}
}

// TestBaseEveryLength walks every key length through the size-class
// branches (empty, <4, <8, ≤16, 16-byte blocks, the 48-byte lane loop)
// and checks the basics a routing hash cannot do without: determinism,
// and sensitivity to the first byte, the last byte, and the length.
func TestBaseEveryLength(t *testing.T) {
	for n := 0; n <= 200; n++ {
		key := make([]byte, n)
		for i := range key {
			key[i] = byte(i*31 + 7)
		}
		h := Base(key)
		if Base(key) != h {
			t.Fatalf("len %d: not deterministic", n)
		}
		if n > 0 {
			first := append([]byte{}, key...)
			first[0] ^= 0x01
			if Base(first) == h {
				t.Errorf("len %d: first byte does not affect Base", n)
			}
			last := append([]byte{}, key...)
			last[n-1] ^= 0x01
			if Base(last) == h {
				t.Errorf("len %d: last byte does not affect Base", n)
			}
			if Base(key[:n-1]) == h {
				t.Errorf("len %d: truncation does not affect Base", n)
			}
		}
	}
}

// TestBaseTopBitsUniform checks the bits shard routing actually consumes:
// over sequentially-named keys, the top three bits must spread keys
// across all eight buckets close to evenly, or one shard would absorb a
// disproportionate share of every batch.
func TestBaseTopBitsUniform(t *testing.T) {
	const n = 1 << 14
	var buckets [8]int
	for i := 0; i < n; i++ {
		key := []byte("host-" + strings.Repeat("0", i%3) + itoa(i) + ".example.com")
		buckets[Base(key)>>61]++
	}
	want := n / 8
	for b, got := range buckets {
		if got < want*8/10 || got > want*12/10 {
			t.Errorf("top-bit bucket %d holds %d of %d keys (want %d ±20%%)", b, got, n, want)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
