package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// BinaryServer serves the internal/wire binary protocol on a raw TCP
// listener, dispatching into the same Server (and therefore the same
// coalescer, filter and metrics registry) that answers HTTP. One
// goroutine per connection; each connection's decoder reuses scratch
// buffers, so the steady-state request path allocates nothing.
type BinaryServer struct {
	s *Server

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewBinaryServer wraps s. Call Serve with a listener to start
// answering, and Shutdown to drain.
func NewBinaryServer(s *Server) *BinaryServer {
	return &BinaryServer{s: s, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Shutdown closes it. Like
// http.Server.Serve it blocks; a nil return means a clean shutdown.
func (b *BinaryServer) Serve(ln net.Listener) error {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		ln.Close()
		return errors.New("server: binary listener is shut down")
	}
	b.ln = ln
	b.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			b.mu.Lock()
			draining := b.draining
			b.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		b.mu.Lock()
		if b.draining {
			b.mu.Unlock()
			conn.Close()
			return nil
		}
		b.conns[conn] = struct{}{}
		b.wg.Add(1)
		b.mu.Unlock()
		go b.handle(conn)
	}
}

// Shutdown stops accepting, lets every in-flight request finish and its
// response flush, then closes the connections. Connections idle between
// frames are closed immediately; ones mid-request get until ctx expires
// before they are cut off.
func (b *BinaryServer) Shutdown(ctx context.Context) error {
	b.mu.Lock()
	b.draining = true
	if b.ln != nil {
		b.ln.Close()
	}
	// Waking every blocked read with an immediate deadline would also
	// kill requests whose bytes are still arriving; give them a short
	// grace (within the drain budget) instead. Handlers that finish a
	// request re-check draining and exit without waiting for it.
	grace := time.Now().Add(1 * time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(grace) {
		grace = d
	}
	for conn := range b.conns {
		conn.SetReadDeadline(grace)
	}
	b.mu.Unlock()

	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		b.mu.Lock()
		for conn := range b.conns {
			conn.Close()
		}
		b.mu.Unlock()
		b.wg.Wait()
		return ctx.Err()
	}
}

// release drops conn from the tracked set.
func (b *BinaryServer) release(conn net.Conn) {
	b.mu.Lock()
	delete(b.conns, conn)
	b.mu.Unlock()
	conn.Close()
	b.wg.Done()
}

// drainingNow reports whether Shutdown has begun.
func (b *BinaryServer) drainingNow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// handle runs one connection's request loop.
func (b *BinaryServer) handle(conn net.Conn) {
	defer b.release(conn)
	b.s.binConns.Add(1)
	defer b.s.binConns.Add(-1)

	dec := wire.NewDecoder(conn)
	bw := bufio.NewWriterSize(conn, 1<<15)
	if err := dec.ReadHandshake(); err != nil {
		if !errors.Is(err, io.EOF) {
			b.s.mErrors.Inc()
		}
		return
	}

	out := make([]byte, 0, 64)
	// results is this connection's batch result buffer, regrown to the
	// largest batch seen and reused across requests so a steady stream
	// of OpContainsBatch frames allocates nothing.
	var results []bool
	var req wire.Request
	for {
		if err := dec.Next(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return // clean close between frames
			}
			if b.drainingNow() {
				return // drain deadline fired, not a client fault
			}
			// Every decode failure is a protocol violation: answer with an
			// error frame (best effort) and drop the connection — frame
			// boundaries can no longer be trusted.
			b.s.mErrors.Inc()
			out = wire.AppendErrorResp(out[:0], req.Op, req.ID, err.Error())
			conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			bw.Write(out)
			bw.Flush()
			return
		}

		start := time.Now()
		switch req.Op {
		case wire.OpContains:
			// Through the coalescer: concurrent binary connections share
			// ContainsBatch lock rounds exactly like HTTP callers do.
			present := b.s.co.Contains(req.Key)
			out = wire.AppendContainsResp(out[:0], req.ID, present)
			b.s.mBinContains.Inc()
			b.s.hBinContains.ObserveDuration(time.Since(start))
		case wire.OpContainsBatch:
			if cap(results) < len(req.Keys) {
				results = make([]bool, len(req.Keys))
			}
			results = results[:len(req.Keys)]
			b.s.Filter().ContainsBatchInto(results, req.Keys)
			out = wire.AppendBatchResp(out[:0], req.ID, results)
			b.s.mBinBatch.Inc()
			b.s.mBatchKeys.Add(uint64(len(req.Keys)))
			b.s.hBatchSize.Observe(float64(len(req.Keys)))
			b.s.hBinBatch.ObserveDuration(time.Since(start))
		case wire.OpAdd:
			if b.s.readOnly {
				// A follower rejects writes on the binary path too. Error
				// frames close the connection by protocol; pointing at the
				// primary in the message is the best redirect this wire has.
				b.s.mErrors.Inc()
				out = wire.AppendErrorResp(out[:0], wire.OpAdd, req.ID,
					"read-only follower: add at the primary "+b.s.primary)
				conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				bw.Write(out)
				bw.Flush()
				return
			}
			// The filter retains Add keys; the decoder's scratch must not
			// escape into it, so Add gets its own copy.
			b.s.Filter().Add(append([]byte(nil), req.Key...))
			out = wire.AppendOKResp(out[:0], wire.OpAdd, req.ID)
			b.s.mBinAdd.Inc()
		case wire.OpPing:
			out = wire.AppendOKResp(out[:0], wire.OpPing, req.ID)
			b.s.mBinPing.Inc()
		case wire.OpEpoch:
			out = wire.AppendEpochResp(out[:0], req.ID, b.s.Filter().Epoch())
			b.s.mBinEpoch.Inc()
		}
		if _, err := bw.Write(out); err != nil {
			return
		}
		// Flush only when no further request is already buffered, so a
		// pipelining client gets its responses in one segment. Draining is
		// checked at the same boundary: requests already received are
		// answered before the connection closes.
		if dec.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
			if b.drainingNow() {
				return
			}
		}
	}
}
