// Package habf is a from-scratch Go implementation of the Hash Adaptive
// Bloom Filter (Xie et al., "Hash Adaptive Bloom Filter", ICDE 2021) and
// of every baseline its evaluation compares against.
//
// # The problem
//
// A standard Bloom filter treats all keys identically: k fixed hash
// functions, shared by every key. When the application knows (some of)
// the negative keys it will be queried with — blacklist probes, repeated
// failed lookups in an LSM-tree, cached miss traffic — and when
// misidentifying different negatives costs differently, that knowledge is
// wasted. HABF exploits it: each positive key can be assigned its own
// hash-function subset φ(e) drawn from a global family H, chosen at
// construction time so that costly negative keys stop colliding. The
// customized selections live in a compact probabilistic table (the
// HashExpressor), and a two-round query protocol preserves the Bloom
// filter's one-sided error: no false negatives, ever.
//
// # Quick start
//
//	positives := [][]byte{[]byte("alice"), []byte("bob")}
//	negatives := []habf.WeightedKey{{Key: []byte("mallory"), Cost: 10}}
//	f, err := habf.New(positives, negatives, 1024) // 1024-bit budget
//	if err != nil { ... }
//	f.Contains([]byte("alice"))   // true, always
//	f.Contains([]byte("mallory")) // false with high probability
//
// Use NewFast for the f-HABF variant (double hashing, ~7× faster
// construction, slightly higher FPR), and the NewBloom/NewXor/NewWBF/
// NewLBF/NewSLBF/NewAdaBF constructors for the paper's baselines. All
// filters implement the Filter interface, so the measurement helpers
// (WeightedFPR, FPR, FNR) apply uniformly.
//
// # Serving at scale
//
// A single *HABF is immutable for readers but requires external
// synchronization between Add and queries, which caps a filter service
// long before the hardware does. NewSharded builds the serving-layer
// form: the key space is partitioned across N independent shards by
// fingerprint-prefix routing, shards build in parallel, Add locks only
// the owning shard, and a drifted shard is re-optimized in the background
// and atomically swapped while the rest keep serving — no external
// locking anywhere.
//
//	s, err := habf.NewSharded(positives, negatives, 1<<20,
//		habf.WithShards(16))
//	s.Add([]byte("new-member"))        // concurrent with queries
//	hits := s.ContainsBatch(requests)  // one result per request
//
// The serving stack is generic over a pluggable filter backend
// (internal/filtercore): WithBackend selects the family every shard is
// built with — "habf" (default), "bloom" (standard Bloom, mutable),
// "wbf" (Weighted Bloom, mutable and cost-aware), or the static "xor"
// (Xor filter) and "phbf" (partitioned hashing), whose Adds are
// buffered as pending and absorbed by the next rebuild — and sharding,
// batching, snapshots and the habfserved daemon all work identically
// across them. Backends lists the registry; Sharded.Backend reports the
// active one, and snapshots record it so Load restores through the
// right decoder. Pending keys on a restored static set are themselves
// snapshot-durable: Save writes them into a dedicated container frame
// and Load re-buffers them, so acked Adds survive restart cycles even
// when no rebuild is possible.
//
// ContainsBatch — available on both *HABF and *Sharded — groups a batch
// of keys by shard, takes each shard's lock once, and reuses one scratch
// buffer per group; under skewed (zipfian) request streams it is the
// fastest query path. Rebuild-on-drift guidance: per-key Add inserts
// under the shared initial hash selection without re-running the TPJO
// optimization, so the weighted FPR degrades gradually; a Sharded set
// rebuilds affected shards automatically once their post-construction
// Adds exceed WithRebuildThreshold (default 2% of the keys present at the
// last build).
package habf

import (
	"fmt"

	ihabf "repro/internal/habf"
	"repro/internal/metrics"
)

// Filter is the common query-side interface of every filter in this
// module. Implementations are immutable after construction and safe for
// concurrent readers.
type Filter interface {
	// Contains reports whether key may be a member of the positive set.
	// False positives are possible; false negatives are not.
	Contains(key []byte) bool
	// Name identifies the filter variant ("HABF", "BF", "Xor", ...).
	Name() string
	// SizeBits is the memory footprint of the query-time structure.
	SizeBits() uint64
}

// WeightedKey is a known negative key with its misidentification cost
// Θ(e). Uniform costs (all 1) reduce the weighted false-positive rate to
// the ordinary one.
type WeightedKey struct {
	Key  []byte
	Cost float64
}

// Stats reports what the TPJO construction algorithm did; see the fields
// of the internal type for details.
type Stats = ihabf.Stats

// Option customizes HABF construction beyond the paper's defaults
// (k = 3, 4-bit HashExpressor cells, Δ = 0.25 space split).
type Option func(*ihabf.Params)

// WithK sets the per-key hash-function count (2..usable family size).
func WithK(k int) Option { return func(p *ihabf.Params) { p.K = k } }

// WithCellBits sets the HashExpressor cell size in bits (3..6). Cell size
// α exposes 2^(α-1)-1 hash functions of the global family.
func WithCellBits(bits uint) Option { return func(p *ihabf.Params) { p.CellBits = bits } }

// WithSpaceRatio sets Δ = Δ1/Δ2, the HashExpressor:Bloom budget split.
func WithSpaceRatio(r float64) Option { return func(p *ihabf.Params) { p.SpaceRatio = r } }

// WithSeed makes all construction-time randomness reproducible.
func WithSeed(seed int64) Option { return func(p *ihabf.Params) { p.Seed = seed } }

// WithoutGamma disables the Γ conflict-detection index (ablation; f-HABF
// implies this).
func WithoutGamma() Option { return func(p *ihabf.Params) { p.DisableGamma = true } }

// WithoutOverlapRanking disables the maximize-cell-overlap tie-break
// among insertable adjustments (ablation).
func WithoutOverlapRanking() Option {
	return func(p *ihabf.Params) { p.DisableOverlapRanking = true }
}

// WithoutCostOrdering processes collision keys FIFO instead of
// highest-cost-first (ablation).
func WithoutCostOrdering() Option {
	return func(p *ihabf.Params) { p.DisableCostOrdering = true }
}

// HABF is the constructed Hash Adaptive Bloom Filter.
type HABF struct {
	inner *ihabf.Filter
}

var _ Filter = (*HABF)(nil)

func convertNegatives(negatives []WeightedKey) []ihabf.WeightedKey {
	out := make([]ihabf.WeightedKey, len(negatives))
	for i, n := range negatives {
		out[i] = ihabf.WeightedKey{Key: n.Key, Cost: n.Cost}
	}
	return out
}

// New builds an HABF over positives within totalBits of memory, using the
// negative keys and their costs to customize hash selections (TPJO).
func New(positives [][]byte, negatives []WeightedKey, totalBits uint64, opts ...Option) (*HABF, error) {
	p := ihabf.Params{TotalBits: totalBits}
	for _, o := range opts {
		o(&p)
	}
	inner, err := ihabf.New(positives, convertNegatives(negatives), p)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &HABF{inner: inner}, nil
}

// NewFast builds an f-HABF: double hashing replaces the 22-function
// corpus and conflict detection is disabled, trading a little accuracy
// for construction speed near a plain Bloom filter's.
func NewFast(positives [][]byte, negatives []WeightedKey, totalBits uint64, opts ...Option) (*HABF, error) {
	p := ihabf.Params{TotalBits: totalBits, Fast: true}
	for _, o := range opts {
		o(&p)
	}
	p.Fast = true
	inner, err := ihabf.New(positives, convertNegatives(negatives), p)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &HABF{inner: inner}, nil
}

// Contains reports whether key may be a member (two-round query, zero
// false negatives).
func (f *HABF) Contains(key []byte) bool { return f.inner.Contains(key) }

// ContainsBatch evaluates every key in one pass and returns one result
// per key, in order. Answers are identical to per-key Contains; the batch
// form hoists per-call setup (Bloom length, HashExpressor scratch buffer)
// out of the loop.
func (f *HABF) ContainsBatch(keys [][]byte) []bool { return f.inner.ContainsBatch(keys) }

// Name returns "HABF" or "f-HABF".
func (f *HABF) Name() string { return f.inner.Name() }

// SizeBits returns the query-time footprint: Bloom bits + HashExpressor.
func (f *HABF) SizeBits() uint64 { return f.inner.SizeBits() }

// Stats returns construction statistics (collision keys found, optimized,
// FPR before/after, ...).
func (f *HABF) Stats() Stats { return f.inner.Stats() }

// Add inserts a key after construction, under the shared initial hash
// selection — the key is queryable immediately and the zero-false-
// negative guarantee is preserved. Optimization does not re-run, so the
// weighted FPR degrades gradually; rebuild once AddedKeys reaches a few
// percent of the original set. Add must not run concurrently with reads.
func (f *HABF) Add(key []byte) { f.inner.Add(key) }

// AddedKeys reports how many keys were inserted after construction.
func (f *HABF) AddedKeys() uint64 { return f.inner.AddedKeys() }

// K returns the per-key hash budget.
func (f *HABF) K() int { return f.inner.K() }

// MarshalBinary encodes the query-time state of the filter (Bloom array,
// HashExpressor, hashing configuration) in a versioned format, so a filter
// built once can be shipped to query nodes. Construction statistics are
// not serialized.
func (f *HABF) MarshalBinary() ([]byte, error) { return f.inner.MarshalBinary() }

// UnmarshalHABF decodes a filter produced by (*HABF).MarshalBinary. The
// decoded filter answers queries identically to the original; its Stats
// are zero.
func UnmarshalHABF(data []byte) (*HABF, error) {
	inner, err := ihabf.UnmarshalFilter(data)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &HABF{inner: inner}, nil
}

// Borrowed reports whether the filter still serves from the buffer it
// was decoded from (UnmarshalHABFBorrow before any mutation). Useful for
// verifying that a zero-copy load actually engaged — misalignment or a
// big-endian host silently degrades to a copy.
func (f *HABF) Borrowed() bool { return f.inner.Borrowed() }

// UnmarshalHABFBorrow decodes a filter produced by MarshalBinary without
// copying its two large arrays when they are 8-byte aligned inside data:
// the filter then serves queries directly from data, which the caller
// must keep alive and unmodified. A post-load Add copies the touched
// array before mutating it, never writing data. This is the single-filter
// form of the zero-copy load that Load performs per shard.
func UnmarshalHABFBorrow(data []byte) (*HABF, error) {
	inner, err := ihabf.UnmarshalFilterBorrow(data)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &HABF{inner: inner}, nil
}

// WeightedFPR measures Eq. 1/20 of the paper over known negatives: the
// cost mass of false positives divided by total cost mass.
func WeightedFPR(f Filter, negatives [][]byte, costs []float64) (float64, error) {
	return metrics.WeightedFPR(f, negatives, costs)
}

// FPR measures the plain false-positive rate over known negatives.
func FPR(f Filter, negatives [][]byte) (float64, error) {
	return metrics.FPR(f, negatives)
}

// FNR measures the false-negative rate over known positives. Every filter
// constructed by this module returns 0.
func FNR(f Filter, positives [][]byte) (float64, error) {
	return metrics.FNR(f, positives)
}
