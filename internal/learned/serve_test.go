package learned

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// filter is the query surface shared by the three families.
type filter interface {
	Contains(key []byte) bool
	SizeBits() uint64
	MarshalBinary() ([]byte, error)
	WireAlignOffset() int
	Borrowed() bool
}

// degenerateInputs are the shard populations sharded builds legitimately
// produce: empty, a single key, and the smallest trainable set.
func degenerateInputs() map[string][][]byte {
	return map[string][][]byte{
		"0-key": nil,
		"1-key": {[]byte("only-member")},
		"2-key": {[]byte("member-a"), []byte("member-b")},
	}
}

// TestConstructorsHandleDegenerateShards pins the empty-shard bugfix:
// every learned constructor must accept 0- and 1-key inputs and return a
// trivially-correct filter instead of dividing by zero (NewSLBF),
// indexing an empty score slice (NewAdaBF), or producing bpk = Inf.
func TestConstructorsHandleDegenerateShards(t *testing.T) {
	negatives := [][]byte{[]byte("absent-a"), []byte("absent-b")}
	constructors := map[string]func(pos [][]byte) (filter, error){
		"NewLBF":        func(p [][]byte) (filter, error) { return NewLBF(p, negatives, 4096, TrainConfig{}) },
		"NewLBFWithGRU": func(p [][]byte) (filter, error) { return NewLBFWithGRU(p, negatives, 1<<20) },
		"NewSLBF":       func(p [][]byte) (filter, error) { return NewSLBF(p, negatives, 4096, TrainConfig{}) },
		"NewAdaBF":      func(p [][]byte) (filter, error) { return NewAdaBF(p, negatives, 4096, TrainConfig{}) },
		"BuildLBF":      func(p [][]byte) (filter, error) { return BuildLBF(p, negatives, 64, ServeOptions{}) },
		"BuildSLBF":     func(p [][]byte) (filter, error) { return BuildSLBF(p, negatives, 64, ServeOptions{}) },
		"BuildAdaBF":    func(p [][]byte) (filter, error) { return BuildAdaBF(p, negatives, 64, ServeOptions{}) },
	}
	for cname, build := range constructors {
		// The paper-budget constructors keep erroring when 2+ keys cannot
		// fit the model; only the trivial 0/1-key path must not.
		skipTwoKey := strings.HasPrefix(cname, "New") && cname != "NewLBFWithGRU"
		for iname, pos := range degenerateInputs() {
			if iname == "2-key" && skipTwoKey {
				continue
			}
			t.Run(cname+"/"+iname, func(t *testing.T) {
				f, err := build(pos)
				if err != nil {
					t.Fatalf("constructor failed on %s input: %v", iname, err)
				}
				for _, key := range pos {
					if !f.Contains(key) {
						t.Fatalf("false negative for %q", key)
					}
				}
				if len(pos) == 0 && f.Contains([]byte("anything")) {
					t.Error("empty filter answers true")
				}
				// The wire format must carry the degenerate shapes too.
				wire, err := f.MarshalBinary()
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				if off := f.WireAlignOffset(); off < 0 || off >= len(wire) {
					t.Fatalf("WireAlignOffset %d outside %d-byte payload", off, len(wire))
				}
			})
		}
	}
}

// unstableModel violates the Model contract: it scores the first 64
// calls (the positives during the τ sweep) above every candidate
// threshold, so the sweep records no false negatives and builds no
// backup filter — then scores everything at zero, so the real query
// path would silently drop every member. Assembly must catch this and
// fail loudly instead of shipping the filter.
type unstableModel struct{ calls int }

func (m *unstableModel) Score([]byte) float64 {
	m.calls++
	if m.calls <= 64 {
		return 2.0
	}
	return 0.0
}
func (m *unstableModel) SizeBits() uint64 { return 64 }

func TestAssembleLBFRejectsFalseNegatives(t *testing.T) {
	pos := make([][]byte, 64)
	neg := make([][]byte, 64)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("member-%04d", i))
		neg[i] = []byte(fmt.Sprintf("absent-%04d", i))
	}
	_, err := assembleLBF(&unstableModel{}, "LBF", pos, neg, 4096)
	if err == nil {
		t.Fatal("assembleLBF shipped a filter with false negatives")
	}
	if !strings.Contains(err.Error(), "false negative") {
		t.Fatalf("error does not name the false negative: %v", err)
	}
}

// TestSubsampleCoversWholeRange pins the sampling bugfix: the subsample
// used to be a prefix slice, so a sorted key set trained the model on
// its lexicographically-smallest region only.
func TestSubsampleCoversWholeRange(t *testing.T) {
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%05d", i))
	}
	got := subsample(keys, 500, 1)
	if len(got) != 500 {
		t.Fatalf("subsample returned %d keys, want 500", len(got))
	}
	firstHalf, secondHalf := 0, 0
	for _, k := range got {
		if string(k) < "05000" {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf == 0 || secondHalf == 0 {
		t.Fatalf("subsample is not range-covering: %d first half, %d second half", firstHalf, secondHalf)
	}
	// Deterministic for a fixed seed (rebuilds must reproduce training).
	again := subsample(keys, 500, 1)
	for i := range got {
		if !bytes.Equal(got[i], again[i]) {
			t.Fatal("subsample is not deterministic for a fixed seed")
		}
	}
	// Small inputs pass through untouched.
	if got := subsample(keys[:100], 500, 1); len(got) != 100 {
		t.Fatalf("subsample shrank an under-cap input to %d keys", len(got))
	}
}

// regionKeys generates keys for one sorted region: a fixed prefix, an
// 8–10 char body drawn from a region-private alphabet [lo, hi], and a
// membership signal of three marker characters present only in
// positives. Disjoint alphabets mean nothing a model learns about one
// region transfers to the other — region Z is effectively
// out-of-distribution for a model trained only on region A.
func regionKeys(prefix string, lo, hi, marker byte, n int, seed int64, positive bool) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		body := make([]byte, 10)
		for j := range body {
			for {
				c := lo + byte(rng.Intn(int(hi-lo)+1))
				if c != marker {
					body[j] = c
					break
				}
			}
		}
		if positive {
			for _, j := range rng.Perm(len(body))[:3] {
				body[j] = marker
			}
		}
		out[i] = []byte(fmt.Sprintf("%s-%s-%04d", prefix, body, i))
	}
	return out
}

// TestGRUSamplingUnbiasedOnSortedInput shows the holdout consequence of
// the prefix-slice bug: on a sorted key set whose discriminative signal
// differs by region, a prefix-trained GRU never sees region Z's
// alphabet and scores it with untrained embeddings, while the stride
// sample covers both regions. Every seed is pinned, so the AUCs are
// exactly reproducible.
func TestGRUSamplingUnbiasedOnSortedInput(t *testing.T) {
	const perRegion = 500
	pos := append(regionKeys("aaa", 'a', 'm', 'f', perRegion, 10, true),
		regionKeys("zzz", 'n', 'z', 'q', perRegion, 11, true)...)
	neg := append(regionKeys("aaa", 'a', 'm', 'f', perRegion, 12, false),
		regionKeys("zzz", 'n', 'z', 'q', perRegion, 13, false)...)
	cfg := GRUConfig{Epochs: 4, Seed: 1}
	const trainCap = 300
	biased := TrainGRU(pos[:trainCap], neg[:trainCap], cfg) // the old prefix slice
	fair := TrainGRU(subsample(pos, trainCap, 1), subsample(neg, trainCap, 2), cfg)

	posZ, negZ := pos[perRegion:], neg[perRegion:]
	biasedAUC := auc(biased, posZ, negZ)
	fairAUC := auc(fair, posZ, negZ)
	t.Logf("holdout-region AUC: prefix-sampled %.3f, stride-sampled %.3f", biasedAUC, fairAUC)
	if fairAUC < 0.95 {
		t.Errorf("stride-sampled holdout AUC = %.3f, want >= 0.95", fairAUC)
	}
	if fairAUC < biasedAUC+0.10 {
		t.Errorf("stride sampling does not beat prefix sampling on the unseen region: %.3f vs %.3f", fairAUC, biasedAUC)
	}
}
