package learned

import (
	"fmt"

	"repro/internal/bloom"
)

// This file implements the two adaptive LBF variants of Bhattacharya,
// Bedathur & Bagchi ("Adaptive Learned Bloom Filters under Incremental
// Workloads", CoDS-COMAD 2020), cited in §II of the HABF paper as the
// state of the art for learned filters under inserts:
//
//   - CA-LBF (Classifier-Adaptive): newly inserted keys are buffered and
//     the classifier is periodically retrained over the full key set, so
//     accuracy recovers at the price of recurring training cost;
//   - IA-LBF (Index-Adaptive): the classifier is frozen; inserted keys
//     the model would miss go to a growing backup filter — memory is
//     sacrificed instead of compute.
//
// Both preserve the zero-false-negative contract at all times, including
// mid-retrain.

// IncrementalMode selects the adaptation strategy.
type IncrementalMode int

const (
	// ClassifierAdaptive retrains the model every RetrainEvery inserts.
	ClassifierAdaptive IncrementalMode = iota
	// IndexAdaptive never retrains; the backup filter absorbs new keys.
	IndexAdaptive
)

// String names the mode as in the original paper.
func (m IncrementalMode) String() string {
	if m == ClassifierAdaptive {
		return "CA-LBF"
	}
	return "IA-LBF"
}

// IncrementalLBF is a learned Bloom filter that accepts inserts after
// construction.
type IncrementalLBF struct {
	mode IncrementalMode
	cfg  IncrementalConfig

	model Model
	tau   float64

	positives [][]byte // full positive history (needed for retrains)
	negatives [][]byte // training negatives (fixed)

	backup       *bloom.Filter // holds model false negatives
	backupKeys   [][]byte      // keys resident in backup (for rebuilds)
	sinceRetrain int
}

// IncrementalConfig tunes the incremental variants.
type IncrementalConfig struct {
	// BackupBits is the backup-filter budget at build time; the backup is
	// rebuilt at 2× whenever its load factor exceeds one key per
	// BitsPerBackupKey bits (IA-LBF "sacrifices memory").
	BackupBits uint64
	// BitsPerBackupKey is the rebuild trigger density. Default 8.
	BitsPerBackupKey float64
	// RetrainEvery is the CA-LBF retrain period in inserts. Default 1024.
	RetrainEvery int
	// Train seeds the classifier training.
	Train TrainConfig
}

func (c IncrementalConfig) withDefaults() IncrementalConfig {
	if c.BitsPerBackupKey == 0 {
		c.BitsPerBackupKey = 8
	}
	if c.RetrainEvery == 0 {
		c.RetrainEvery = 1024
	}
	return c
}

// NewIncremental trains the initial model over the given sets and builds
// the starting backup filter.
func NewIncremental(mode IncrementalMode, positives, negatives [][]byte, cfg IncrementalConfig) (*IncrementalLBF, error) {
	cfg = cfg.withDefaults()
	if len(positives) == 0 {
		return nil, fmt.Errorf("learned: empty positive key set")
	}
	if cfg.BackupBits == 0 {
		return nil, fmt.Errorf("learned: zero backup budget")
	}
	l := &IncrementalLBF{
		mode:      mode,
		cfg:       cfg,
		positives: append([][]byte(nil), positives...),
		negatives: append([][]byte(nil), negatives...),
	}
	l.retrain()
	return l, nil
}

// retrain fits the model on the current history, re-derives τ, and
// rebuilds the backup filter with exactly the current false negatives.
func (l *IncrementalLBF) retrain() {
	l.model = TrainLogistic(l.positives, l.negatives, l.cfg.Train)
	tau, fns, _ := chooseTau(l.model, l.positives, l.negatives, l.cfg.BackupBits)
	l.tau = tau
	l.backupKeys = fns
	l.rebuildBackup()
	l.sinceRetrain = 0
}

// rebuildBackup sizes the backup for its resident keys at the configured
// density (never below the initial budget) and reinserts them.
func (l *IncrementalLBF) rebuildBackup() {
	bits := l.cfg.BackupBits
	need := uint64(l.cfg.BitsPerBackupKey * float64(len(l.backupKeys)+1))
	for bits < need {
		bits *= 2
	}
	k := bloom.OptimalK(l.cfg.BitsPerBackupKey)
	f, err := bloom.New(bits, k, bloom.StrategySplit128)
	if err != nil {
		// bits >= cfg.BackupBits > 0 and k >= 1: cannot happen.
		panic(err)
	}
	for _, key := range l.backupKeys {
		f.Add(key)
	}
	l.backup = f
}

// Insert adds a key to the member set. The key is queryable immediately.
func (l *IncrementalLBF) Insert(key []byte) {
	key = append([]byte(nil), key...)
	l.positives = append(l.positives, key)
	if l.model.Score(key) < l.tau {
		l.backupKeys = append(l.backupKeys, key)
		if float64(l.backup.MBits()) < l.cfg.BitsPerBackupKey*float64(len(l.backupKeys)) {
			l.rebuildBackup() // IA-LBF memory growth
		} else {
			l.backup.Add(key)
		}
	}
	if l.mode == ClassifierAdaptive {
		l.sinceRetrain++
		if l.sinceRetrain >= l.cfg.RetrainEvery {
			l.retrain()
		}
	}
}

// Contains reports whether key may be a member.
func (l *IncrementalLBF) Contains(key []byte) bool {
	if l.model.Score(key) >= l.tau {
		return true
	}
	return l.backup.Contains(key)
}

// Name returns "CA-LBF" or "IA-LBF".
func (l *IncrementalLBF) Name() string { return l.mode.String() }

// SizeBits returns model plus current backup footprint (IA-LBF's grows).
func (l *IncrementalLBF) SizeBits() uint64 {
	return l.model.SizeBits() + l.backup.SizeBits()
}

// BackupKeys reports how many keys the backup currently holds.
func (l *IncrementalLBF) BackupKeys() int { return len(l.backupKeys) }

// SinceLastRetrain reports the number of inserts since the last retrain —
// a test hook for the CA-LBF cadence.
func (l *IncrementalLBF) SinceLastRetrain() int { return l.sinceRetrain }
