package wbf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func genPos(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("member/%d", i))
	}
	return out
}

func genNeg(n int, cost func(int) float64) []WeightedKey {
	out := make([]WeightedKey, n)
	for i := range out {
		out[i] = WeightedKey{Key: []byte(fmt.Sprintf("outsider/%d", i)), Cost: cost(i)}
	}
	return out
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, nil, Config{TotalBits: 1000}); err == nil {
		t.Error("empty positives accepted")
	}
	if _, err := New(genPos(10), nil, Config{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	pos := genPos(5000)
	neg := genNeg(5000, func(i int) float64 { return float64(i%50 + 1) })
	f, err := New(pos, neg, Config{TotalBits: 5000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestCostlyKeysFavored(t *testing.T) {
	// The cached high-cost negatives must have a false-positive rate no
	// worse than the uncached cheap ones.
	pos := genPos(20000)
	neg := genNeg(20000, func(i int) float64 {
		if i < 1000 {
			return 1000 // costly head
		}
		return 1
	})
	f, err := New(pos, neg, Config{TotalBits: 20000 * 8, CacheFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	fpCostly, fpCheap := 0, 0
	for i, n := range neg {
		if f.Contains(n.Key) {
			if i < 1000 {
				fpCostly++
			} else {
				fpCheap++
			}
		}
	}
	rCostly := float64(fpCostly) / 1000
	rCheap := float64(fpCheap) / 19000
	if rCostly > rCheap+0.002 {
		t.Errorf("costly keys FP %.5f worse than cheap keys %.5f", rCostly, rCheap)
	}
	t.Logf("costly FP %.5f, cheap FP %.5f, cache %d keys (%d bytes)",
		rCostly, rCheap, f.CacheSize(), f.CacheBytes())
}

func TestKForClamping(t *testing.T) {
	pos := genPos(1000)
	neg := genNeg(1000, func(i int) float64 { return 1 })
	f, err := New(pos, neg, Config{TotalBits: 1000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	if k := f.kFor(1e12); k != f.maxK {
		t.Errorf("huge cost k = %d, want clamp at %d", k, f.maxK)
	}
	if k := f.kFor(1e-12); k != f.minK {
		t.Errorf("tiny cost k = %d, want clamp at %d", k, f.minK)
	}
	if k := f.kFor(0); k != f.baseK {
		t.Errorf("zero cost k = %d, want base %d", k, f.baseK)
	}
	if k := f.kFor(f.avgCost); k != f.baseK {
		t.Errorf("average cost k = %d, want base %d", k, f.baseK)
	}
}

func TestEmptyNegatives(t *testing.T) {
	pos := genPos(100)
	f, err := New(pos, nil, Config{TotalBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if f.CacheSize() != 0 {
		t.Error("cache populated without negatives")
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatal("false negative")
		}
	}
}

func TestAccessors(t *testing.T) {
	f, err := New(genPos(100), genNeg(100, func(int) float64 { return 2 }), Config{TotalBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "WBF" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.SizeBits() < 4096 {
		t.Error("SizeBits below budget")
	}
	if f.CacheBytes() == 0 || f.CacheSize() == 0 {
		t.Error("cache empty despite negatives")
	}
}

// Property: membership of inserted keys always holds, for arbitrary
// disjoint sets and costs.
func TestQuickZeroFNR(t *testing.T) {
	f := func(rawPos [][]byte, costs []float64) bool {
		seen := map[string]bool{}
		var pos [][]byte
		for _, k := range rawPos {
			if !seen[string(k)] {
				seen[string(k)] = true
				pos = append(pos, k)
			}
		}
		if len(pos) == 0 {
			return true
		}
		var neg []WeightedKey
		for i, c := range costs {
			if c < 0 {
				c = -c
			}
			key := []byte(fmt.Sprintf("qneg/%d", i))
			if !seen[string(key)] {
				neg = append(neg, WeightedKey{Key: key, Cost: c})
			}
		}
		fl, err := New(pos, neg, Config{TotalBits: 1 << 14})
		if err != nil {
			return false
		}
		for _, k := range pos {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkContains(b *testing.B) {
	pos := genPos(50000)
	neg := genNeg(50000, func(i int) float64 { return float64(i%100 + 1) })
	f, err := New(pos, neg, Config{TotalBits: 50000 * 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains(neg[i%len(neg)].Key)
	}
}
