package habf

import (
	"fmt"

	"repro/internal/shard"
)

// Sharded is an HABF partitioned across N independent shards by
// fingerprint-prefix routing — the serving-layer form of the filter.
//
// Where a plain *HABF requires external synchronization between Add and
// readers, a *Sharded is safe for fully concurrent use: any number of
// goroutines may call Contains, ContainsBatch and Add with no locking.
// Shards build in parallel at construction; Add takes only the owning
// shard's lock; and once a shard accumulates post-construction Adds past
// the rebuild threshold it is re-optimized in the background and swapped
// in atomically while every other shard keeps serving.
type Sharded struct {
	set *shard.Set
}

var _ Filter = (*Sharded)(nil)

// ShardedOption customizes NewSharded beyond its defaults (8 shards, 2%
// rebuild threshold, the paper's filter parameters per shard).
type ShardedOption func(*shard.Config)

// WithShards sets the shard count (rounded up to a power of two).
func WithShards(n int) ShardedOption {
	return func(c *shard.Config) { c.Shards = n }
}

// WithRebuildThreshold sets the fraction of post-build Adds (relative to
// the keys present at the last build) that triggers a background rebuild
// of a shard. Pass a negative value to disable background rebuilds.
func WithRebuildThreshold(t float64) ShardedOption {
	return func(c *shard.Config) { c.RebuildThreshold = t }
}

// WithShardFilterOptions applies per-filter Options (WithK, WithSeed,
// WithCellBits, ...) to every shard's construction parameters.
func WithShardFilterOptions(opts ...Option) ShardedOption {
	return func(c *shard.Config) {
		for _, o := range opts {
			o(&c.Params)
		}
	}
}

// WithFastShards builds every shard as an f-HABF (double hashing), for
// workloads where construction and rebuild speed dominate.
func WithFastShards() ShardedOption {
	return func(c *shard.Config) { c.Params.Fast = true }
}

// NewSharded builds a sharded HABF over positives within totalBits of
// memory, splitting the budget across shards in proportion to their key
// share. Negatives are routed to the shard their colliding positives
// live in, so per-shard TPJO sees exactly the conflicts it can fix.
func NewSharded(positives [][]byte, negatives []WeightedKey, totalBits uint64, opts ...ShardedOption) (*Sharded, error) {
	cfg := shard.Config{TotalBits: totalBits}
	for _, o := range opts {
		o(&cfg)
	}
	set, err := shard.New(positives, convertNegatives(negatives), cfg)
	if err != nil {
		return nil, fmt.Errorf("habf: %w", err)
	}
	return &Sharded{set: set}, nil
}

// Contains reports whether key may be a member (no false negatives).
// Safe for any number of concurrent callers, including concurrent Adds.
func (s *Sharded) Contains(key []byte) bool { return s.set.Contains(key) }

// ContainsBatch answers one result per key, in order. Keys are grouped by
// shard so each shard's lock is taken once per batch and per-call setup
// is amortized across the group — the preferred query path for serving
// loops that already hold a batch of requests.
func (s *Sharded) ContainsBatch(keys [][]byte) []bool { return s.set.ContainsBatch(keys) }

// Add inserts a key, locking only the owning shard. The key is queryable
// as soon as Add returns, and the zero-false-negative guarantee holds
// across any background rebuilds it may trigger.
func (s *Sharded) Add(key []byte) { s.set.Add(key) }

// Name identifies the filter variant, e.g. "Sharded[8×HABF]".
func (s *Sharded) Name() string { return s.set.Name() }

// SizeBits returns the summed query-time footprint of every shard.
func (s *Sharded) SizeBits() uint64 { return s.set.SizeBits() }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.set.NumShards() }

// WaitRebuilds blocks until in-flight background rebuilds finish.
// Intended for tests and orderly shutdown; serving paths never need it.
func (s *Sharded) WaitRebuilds() { s.set.WaitRebuilds() }

// ShardStats is a point-in-time summary across shards.
type ShardStats = shard.Stats

// Stats snapshots per-shard totals (keys, pending Adds, rebuilds, size).
func (s *Sharded) Stats() ShardStats { return s.set.Stats() }
