package snapshot_test

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

func testTunedSnapshot() *snapshot.Snapshot {
	s := testSnapshot()
	s.Meta.Tuning = "absorb=4096,width=9"
	return s
}

// TestTuningFrameRoundtrip pins the container-level tuning contract:
// a non-empty Meta.Tuning rides its own checksummed frame, survives
// marshal → unmarshal byte-for-byte, coexists with the pending-keys
// frame, and never leaks into the shard frame list.
func TestTuningFrameRoundtrip(t *testing.T) {
	s := testTunedSnapshot()
	s.Meta.HasPending = true
	s.Pending = [][]byte{[]byte("pend-a"), []byte("pend-b")}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Meta.Tuning != s.Meta.Tuning {
		t.Fatalf("tuning round-trip: got %q, want %q", g.Meta.Tuning, s.Meta.Tuning)
	}
	if len(g.Frames) != len(s.Frames) {
		t.Fatalf("tuning frame leaked into the shard list: %d frames, want %d", len(g.Frames), len(s.Frames))
	}
	if len(g.Pending) != 2 {
		t.Fatalf("pending keys did not survive next to the tuning frame: %d", len(g.Pending))
	}
	// Re-serialization must be byte-identical (canonical encoding).
	// Unmarshal does not recover synthetic Align hints, so the identity
	// check uses align-0 frames — the tuning and pending frames
	// themselves always encode with Align 0.
	flat := &snapshot.Snapshot{Meta: s.Meta, Pending: s.Pending, Frames: []snapshot.Frame{
		{Epoch: 3, Payload: []byte("flat-frame")},
		{Epoch: 4, Payload: []byte("other-frame")},
	}}
	flatData, err := flat.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := snapshot.Unmarshal(flatData)
	if err != nil {
		t.Fatal(err)
	}
	again, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, flatData) {
		t.Fatal("tuned container re-serialization is not byte-identical")
	}

	// Without a tuning string, the container must stay byte-identical to
	// the pre-tuning format — no flag, no frame.
	plain, err := testSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := testTunedSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, tuned) {
		t.Fatal("tuning frame did not change the container")
	}
	p, err := snapshot.Unmarshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta.Tuning != "" {
		t.Fatalf("untuned container decoded tuning %q", p.Meta.Tuning)
	}
}

// TestTuningFrameRejectsCorruption: bitrot inside the tuning frame,
// truncation through it, and an oversized tuning string must all fail
// loudly instead of silently restoring different knobs.
func TestTuningFrameRejectsCorruption(t *testing.T) {
	good, err := testTunedSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	payloadOff := bytes.Index(good, []byte("absorb="))
	if payloadOff < 0 {
		t.Fatal("tuning payload not found in container")
	}
	cases := map[string][]byte{
		"tuning payload bitrot": append([]byte(nil), good...),
		"truncated at tuning":   good[:payloadOff+4],
	}
	cases["tuning payload bitrot"][payloadOff] ^= 0x80
	// Flipping the flagTuning header bit (header byte 5) desyncs header
	// CRC and frame accounting; both must reject it.
	flagFlip := append([]byte(nil), good...)
	flagFlip[5] ^= 0x20
	cases["tuning flag bitrot"] = flagFlip
	for name, data := range cases {
		if _, err := snapshot.Unmarshal(data); err == nil {
			t.Errorf("%s: corrupt container accepted", name)
		}
	}

	huge := testSnapshot()
	huge.Meta.Tuning = strings.Repeat("x", 4097)
	if _, err := huge.MarshalBinary(); err == nil {
		t.Error("oversized tuning string accepted")
	}
}

// TestGoldenContainerWithTuning pins the tuned container format byte
// for byte, the tuning-frame sibling of TestGoldenContainer. A failure
// means the format changed and old tuned snapshots would stop loading.
func TestGoldenContainerWithTuning(t *testing.T) {
	s := &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Kind:       snapshot.KindShardedSet,
			BaseSeed:   1,
			RouteSeed:  0xdeadbeefcafe,
			K:          3,
			CellBits:   4,
			SpaceRatio: 0.25,
			BitsPerKey: 12,
			Threshold:  0.02,
			Tuning:     "width=9",
		},
		Frames: []snapshot.Frame{
			{Epoch: 5, Payload: []byte("golden"), Align: 2},
			{Epoch: 0, Payload: nil},
		},
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(data)
	const want = "48534e50022003040100000000000000fecaefbeadde0000000000000000d03f0000000000002840" +
		"7b14ae47e17a943f01000000020000000000000091726b6905000000000000000600000000000000" +
		"3d2d89e006000000000000000000676f6c64656e00000000000000000000000000000000836ee6a5" +
		"04000000000000000000000000000000070000000000000057068ef10000000077696474683d3940" +
		"00000000000000640000000000000080000000000000009f00000000000000104dce9d504e5348"
	if got != want {
		t.Errorf("golden tuned container drifted:\n got  %s\n want %s", got, want)
	}
	g, err := snapshot.Unmarshal(data)
	if err != nil {
		t.Fatalf("golden tuned container does not decode: %v", err)
	}
	if g.Meta.Tuning != "width=9" {
		t.Fatalf("golden tuned container decodes tuning %q", g.Meta.Tuning)
	}
}
