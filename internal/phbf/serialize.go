package phbf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Serialization lets a partitioned-hashing Bloom filter built once be
// shipped to query nodes or framed into a serving snapshot
// (internal/snapshot). The query-time state is the bit array plus the
// per-group winning seeds — the greedy construction's only output — so
// both travel. The format is self-describing and versioned:
//
//	magic u32 "PHBF" | version u8 | k u8 | reserved u8×2 | groups u32 |
//	seeds: groups × u64 | bitsLen u64 | bits (bitset.Bits wire format)
//
// The seed table is fixed-width and precedes the bits block, so the bit
// array's payload offset is a pure function of the group count
// (WireAlignOffset) and zero-copy container loads can align it.

// Version 2: probe positions derive from the shared base hash
// (hashes.Base) instead of per-family key hashing. Version-1 containers
// hold bits under the old derivation and must not be served by this
// code, so decoding rejects them.
const filterVersion = 2

// wireMagic is the on-wire magic: "PHBF" as a little-endian u32.
const wireMagic = uint32(0x46424850)

// headerSize is the fixed prefix before the seed table.
const headerSize = 12

// maxWireK bounds the per-key hash count of a decoded filter, matching
// the other wire formats' ceiling.
const maxWireK = 64

// maxWireGroups bounds the group count a decoded filter may declare;
// construction defaults to 64, and a million groups of seed metadata is
// already far past any sane space accounting.
const maxWireGroups = 1 << 20

// WireAlignOffset returns the offset within a MarshalBinary payload of
// the first word of the bit array for a filter with the given group
// count: header, seed table, block length, Bits header. Containers that
// want zero-copy loads pad their frames so this offset lands 8-byte
// aligned in the mapped buffer.
func WireAlignOffset(groups int) int { return headerSize + groups*8 + 8 + 12 }

// Groups returns the number of key partitions.
func (f *Filter) Groups() int { return f.groups }

// MarshalBinary encodes the filter's query-time state.
func (f *Filter) MarshalBinary() ([]byte, error) {
	bits, err := f.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, headerSize+len(f.seeds)*8+8, headerSize+len(f.seeds)*8+8+len(bits))
	binary.LittleEndian.PutUint32(out[0:4], wireMagic)
	out[4] = filterVersion
	out[5] = uint8(f.k)
	binary.LittleEndian.PutUint32(out[8:12], uint32(f.groups))
	for i, seed := range f.seeds {
		binary.LittleEndian.PutUint64(out[headerSize+i*8:], seed)
	}
	binary.LittleEndian.PutUint64(out[headerSize+len(f.seeds)*8:], uint64(len(bits)))
	return append(out, bits...), nil
}

// UnmarshalFilter decodes a filter produced by MarshalBinary into owned
// memory; data is not retained.
func UnmarshalFilter(data []byte) (*Filter, error) {
	return unmarshalFilter(data, false)
}

// UnmarshalFilterBorrow decodes a filter produced by MarshalBinary
// without copying the bit array when it is 8-byte aligned inside data:
// the filter then serves queries directly from data, which the caller
// must keep alive and unmodified. A PHBF is static — the partition
// greedy cannot absorb inserts — so the borrow is never released by a
// mutation. The seed table is always copied (it is small).
func UnmarshalFilterBorrow(data []byte) (*Filter, error) {
	return unmarshalFilter(data, true)
}

func unmarshalFilter(data []byte, borrow bool) (*Filter, error) {
	if len(data) < headerSize {
		return nil, errors.New("phbf: truncated filter header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != wireMagic {
		return nil, errors.New("phbf: bad filter magic")
	}
	if data[4] != filterVersion {
		return nil, fmt.Errorf("phbf: unsupported filter version %d", data[4])
	}
	k := int(data[5])
	if k < 1 || k > maxWireK {
		return nil, fmt.Errorf("phbf: k = %d out of range [1,%d]", k, maxWireK)
	}
	// groups divides every query's partition hash, so zero would panic
	// Contains; bound it against both a sanity ceiling and the actual
	// byte length before allocating the seed table.
	groups64 := uint64(binary.LittleEndian.Uint32(data[8:12]))
	if groups64 == 0 || groups64 > maxWireGroups || groups64*8 > uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("phbf: group count %d out of range for %d bytes", groups64, len(data))
	}
	groups := int(groups64)
	seedEnd := headerSize + groups*8
	if len(data) < seedEnd+8 {
		return nil, errors.New("phbf: truncated seed table")
	}
	seeds := make([]uint64, groups)
	for i := range seeds {
		seeds[i] = binary.LittleEndian.Uint64(data[headerSize+i*8:])
	}
	bitsLen64 := binary.LittleEndian.Uint64(data[seedEnd : seedEnd+8])
	// Compare in uint64 space before narrowing (32-bit hosts).
	if bitsLen64 != uint64(len(data)-seedEnd-8) {
		return nil, errors.New("phbf: bits block length mismatch")
	}

	unmarshalBits := (*bitset.Bits).UnmarshalBinary
	if borrow {
		unmarshalBits = (*bitset.Bits).UnmarshalBinaryBorrow
	}
	var bits bitset.Bits
	if err := unmarshalBits(&bits, data[seedEnd+8:]); err != nil {
		return nil, fmt.Errorf("phbf: %w", err)
	}
	if bits.Len() == 0 {
		return nil, errors.New("phbf: zero-length filter")
	}
	return &Filter{
		bits:   &bits,
		k:      k,
		groups: groups,
		seeds:  seeds,
	}, nil
}

// Borrowed reports whether the filter still serves from the buffer it
// was decoded from (UnmarshalFilterBorrow on an aligned payload).
func (f *Filter) Borrowed() bool { return f.bits.Borrowed() }
