// Wire formats for the learned filter family. Each format serializes
// the trained model verbatim (raw IEEE-754 little-endian float bits, so
// a decode → re-marshal round trip is byte-identical), the family's
// scalar state (τ, group boundaries, per-group hash counts), and the
// bloom blocks through the existing BLMF layout. Decoders bounds-check
// every length and count before allocating: these payloads arrive from
// snapshot containers and the network, so a hostile frame must fail
// cleanly instead of panicking or allocating unbounded memory.
package learned

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bloom"
)

// Wire magics, little-endian ASCII.
const (
	lbfMagic   = 0x3146424C // "LBF1"
	slbfMagic  = 0x31424C53 // "SLB1"
	adabfMagic = 0x31424441 // "ADB1"
)

const wireVersion = 1

// Model-block kind bytes.
const (
	modelNone     = 0
	modelLogistic = 1
	modelGRU      = 2
)

// Decode-time sanity bounds. The builders produce featureDim (512)
// logistic weights and 16×32 GRU dims; the caps leave generous headroom
// while keeping a hostile count from driving a giant allocation.
const (
	maxLogisticDim = 1 << 16
	maxGRUDim      = 1 << 12
	maxAdaGroups   = 256
)

// appendModel serializes m as a self-describing trailing block.
func appendModel(dst []byte, m Model) ([]byte, error) {
	switch m := m.(type) {
	case nil:
		return append(dst, modelNone), nil
	case *Logistic:
		dst = append(dst, modelLogistic)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.w)))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(m.bias))
		for _, w := range m.w {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(w))
		}
		return dst, nil
	case *GRU:
		dst = append(dst, modelGRU)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(m.hidden))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(m.embDim))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(m.maxLen))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(m.bOut))
		for _, s := range [][]float32{m.emb, m.wz, m.wr, m.wh, m.uz, m.ur, m.uh, m.bz, m.br, m.bh, m.wOut} {
			for _, w := range s {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(w))
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("learned: cannot serialize model type %T", m)
	}
}

// decodeModel parses a model block and returns the bytes consumed. The
// model is always copied into owned memory — it is a few KiB and the
// scoring loops index it heavily, so borrowing buys nothing.
func decodeModel(data []byte) (Model, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("learned: truncated model block")
	}
	switch data[0] {
	case modelNone:
		return nil, 1, nil
	case modelLogistic:
		if len(data) < 9 {
			return nil, 0, fmt.Errorf("learned: truncated logistic header")
		}
		dim := binary.LittleEndian.Uint32(data[1:5])
		if dim == 0 || dim > maxLogisticDim {
			return nil, 0, fmt.Errorf("learned: hostile logistic weight count %d", dim)
		}
		need := 9 + int(dim)*4
		if len(data) < need {
			return nil, 0, fmt.Errorf("learned: logistic model needs %d bytes, have %d", need, len(data))
		}
		m := &Logistic{
			w:    make([]float32, dim),
			bias: math.Float32frombits(binary.LittleEndian.Uint32(data[5:9])),
		}
		for i := range m.w {
			m.w[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[9+4*i:]))
		}
		return m, need, nil
	case modelGRU:
		const header = 1 + 2 + 2 + 2 + 4
		if len(data) < header {
			return nil, 0, fmt.Errorf("learned: truncated GRU header")
		}
		h := int(binary.LittleEndian.Uint16(data[1:3]))
		d := int(binary.LittleEndian.Uint16(data[3:5]))
		maxLen := int(binary.LittleEndian.Uint16(data[5:7]))
		if h == 0 || h > maxGRUDim || d == 0 || d > maxGRUDim || maxLen == 0 {
			return nil, 0, fmt.Errorf("learned: hostile GRU dims hidden=%d emb=%d maxlen=%d", h, d, maxLen)
		}
		total := 256*d + 3*h*d + 3*h*h + 3*h + h
		need := header + total*4
		if len(data) < need {
			return nil, 0, fmt.Errorf("learned: GRU model needs %d bytes, have %d", need, len(data))
		}
		g := &GRU{
			hidden: h,
			embDim: d,
			maxLen: maxLen,
			bOut:   math.Float32frombits(binary.LittleEndian.Uint32(data[7:11])),
		}
		off := header
		read := func(n int) []float32 {
			s := make([]float32, n)
			for i := range s {
				s[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off+4*i:]))
			}
			off += 4 * n
			return s
		}
		g.emb = read(256 * d)
		g.wz, g.wr, g.wh = read(h*d), read(h*d), read(h*d)
		g.uz, g.ur, g.uh = read(h*h), read(h*h), read(h*h)
		g.bz, g.br, g.bh = read(h), read(h), read(h)
		g.wOut = read(h)
		return g, need, nil
	default:
		return nil, 0, fmt.Errorf("learned: unknown model kind %d", data[0])
	}
}

// unmarshalBloom decodes one inner BLMF block, owned or borrowed.
func unmarshalBloom(data []byte, borrow bool) (*bloom.Filter, error) {
	if borrow {
		return bloom.UnmarshalFilterBorrow(data)
	}
	return bloom.UnmarshalFilter(data)
}

// --- LBF ----------------------------------------------------------------
//
// Layout (all integers little-endian):
//
//	0:4   magic "LBF1"
//	4     version (1)
//	5     flags (bit0: backup filter present)
//	6:12  reserved (0) — sized so the backup's bit array (at header +
//	      bloom.WireAlignOffset = 64) starts on an 8-byte boundary,
//	      keeping snapshot-container re-serialization byte-identical
//	12:20 τ as float64 bits
//	20:28 backup block length
//	28:   backup BLMF block
//	...   model block

const lbfHeaderSize = 28

// MarshalBinary encodes the filter in the LBF1 wire format.
func (l *LBF) MarshalBinary() ([]byte, error) {
	var backupBytes []byte
	if l.backup != nil {
		b, err := l.backup.MarshalBinary()
		if err != nil {
			return nil, err
		}
		backupBytes = b
	}
	buf := make([]byte, 0, lbfHeaderSize+len(backupBytes)+9+4*featureDim)
	buf = binary.LittleEndian.AppendUint32(buf, lbfMagic)
	var flags byte
	if l.backup != nil {
		flags |= 1
	}
	buf = append(buf, wireVersion, flags, 0, 0, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l.tau))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(backupBytes)))
	buf = append(buf, backupBytes...)
	return appendModel(buf, l.model)
}

// WireAlignOffset places the backup filter's bit array for zero-copy
// container loads.
func (l *LBF) WireAlignOffset() int {
	if l.backup != nil {
		return lbfHeaderSize + bloom.WireAlignOffset
	}
	return 8
}

// Borrowed reports whether the filter still serves from the decode
// buffer.
func (l *LBF) Borrowed() bool { return l.backup != nil && l.backup.Borrowed() }

// UnmarshalLBF decodes an LBF1 payload into owned memory.
func UnmarshalLBF(data []byte) (*LBF, error) { return unmarshalLBF(data, false) }

// UnmarshalLBFBorrow decodes an LBF1 payload, borrowing the backup
// filter's bit array from data where alignment allows.
func UnmarshalLBFBorrow(data []byte) (*LBF, error) { return unmarshalLBF(data, true) }

func unmarshalLBF(data []byte, borrow bool) (*LBF, error) {
	if len(data) < lbfHeaderSize {
		return nil, fmt.Errorf("learned: LBF payload too short (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != lbfMagic {
		return nil, fmt.Errorf("learned: bad LBF magic %#x", m)
	}
	if v := data[4]; v != wireVersion {
		return nil, fmt.Errorf("learned: unsupported LBF version %d", v)
	}
	flags := data[5]
	if flags&^1 != 0 {
		return nil, fmt.Errorf("learned: unknown LBF flags %#x", flags)
	}
	for _, b := range data[6:12] {
		if b != 0 {
			return nil, fmt.Errorf("learned: nonzero LBF reserved bytes")
		}
	}
	tau := math.Float64frombits(binary.LittleEndian.Uint64(data[12:20]))
	backupLen := binary.LittleEndian.Uint64(data[20:28])
	if backupLen > uint64(len(data)-lbfHeaderSize) {
		return nil, fmt.Errorf("learned: LBF backup length %d exceeds payload", backupLen)
	}
	hasBackup := flags&1 != 0
	if !hasBackup && backupLen != 0 {
		return nil, fmt.Errorf("learned: LBF backup bytes present without flag")
	}
	l := &LBF{tau: tau, name: "LBF"}
	rest := data[lbfHeaderSize+backupLen:]
	if hasBackup {
		b, err := unmarshalBloom(data[lbfHeaderSize:lbfHeaderSize+backupLen], borrow)
		if err != nil {
			return nil, fmt.Errorf("learned: LBF backup: %w", err)
		}
		l.backup = b
	}
	model, n, err := decodeModel(rest)
	if err != nil {
		return nil, err
	}
	if n != len(rest) {
		return nil, fmt.Errorf("learned: %d trailing bytes after LBF model", len(rest)-n)
	}
	l.model = model
	if _, ok := model.(*GRU); ok {
		l.name = "LBF(GRU)"
	}
	return l, nil
}

// --- SLBF ---------------------------------------------------------------
//
// Layout:
//
//	0:4   magic "SLB1"
//	4     version (1)
//	5     flags (bit0: initial filter, bit1: backup filter)
//	6:12  reserved (0) — sized so the initial filter's bit array (at
//	      header + bloom.WireAlignOffset = 64) starts on an 8-byte
//	      boundary
//	12:20 τ as float64 bits
//	20:28 initial block length
//	28:   initial BLMF block
//	...   backup block length (u64)
//	...   backup BLMF block
//	...   model block

const slbfHeaderSize = 28

// MarshalBinary encodes the sandwich in the SLB1 wire format.
func (s *SLBF) MarshalBinary() ([]byte, error) {
	var initialBytes, backupBytes []byte
	var err error
	if s.initial != nil {
		if initialBytes, err = s.initial.MarshalBinary(); err != nil {
			return nil, err
		}
	}
	if s.lbf.backup != nil {
		if backupBytes, err = s.lbf.backup.MarshalBinary(); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 0, slbfHeaderSize+len(initialBytes)+8+len(backupBytes)+9+4*featureDim)
	buf = binary.LittleEndian.AppendUint32(buf, slbfMagic)
	var flags byte
	if s.initial != nil {
		flags |= 1
	}
	if s.lbf.backup != nil {
		flags |= 2
	}
	buf = append(buf, wireVersion, flags, 0, 0, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.lbf.tau))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(initialBytes)))
	buf = append(buf, initialBytes...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(backupBytes)))
	buf = append(buf, backupBytes...)
	return appendModel(buf, s.lbf.model)
}

// WireAlignOffset places the initial filter's bit array (every query
// touches it first; the backup only sees survivors).
func (s *SLBF) WireAlignOffset() int {
	if s.initial != nil {
		return slbfHeaderSize + bloom.WireAlignOffset
	}
	if s.lbf.backup != nil {
		return slbfHeaderSize + 8 + bloom.WireAlignOffset
	}
	return 8
}

// Borrowed reports whether any block still serves from the decode buffer.
func (s *SLBF) Borrowed() bool {
	return (s.initial != nil && s.initial.Borrowed()) || s.lbf.Borrowed()
}

// UnmarshalSLBF decodes an SLB1 payload into owned memory.
func UnmarshalSLBF(data []byte) (*SLBF, error) { return unmarshalSLBF(data, false) }

// UnmarshalSLBFBorrow decodes an SLB1 payload zero-copy where alignment
// allows.
func UnmarshalSLBFBorrow(data []byte) (*SLBF, error) { return unmarshalSLBF(data, true) }

func unmarshalSLBF(data []byte, borrow bool) (*SLBF, error) {
	if len(data) < slbfHeaderSize {
		return nil, fmt.Errorf("learned: SLBF payload too short (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != slbfMagic {
		return nil, fmt.Errorf("learned: bad SLBF magic %#x", m)
	}
	if v := data[4]; v != wireVersion {
		return nil, fmt.Errorf("learned: unsupported SLBF version %d", v)
	}
	flags := data[5]
	if flags&^3 != 0 {
		return nil, fmt.Errorf("learned: unknown SLBF flags %#x", flags)
	}
	for _, b := range data[6:12] {
		if b != 0 {
			return nil, fmt.Errorf("learned: nonzero SLBF reserved bytes")
		}
	}
	tau := math.Float64frombits(binary.LittleEndian.Uint64(data[12:20]))
	initialLen := binary.LittleEndian.Uint64(data[20:28])
	if initialLen > uint64(len(data)-slbfHeaderSize) {
		return nil, fmt.Errorf("learned: SLBF initial length %d exceeds payload", initialLen)
	}
	if flags&1 == 0 && initialLen != 0 {
		return nil, fmt.Errorf("learned: SLBF initial bytes present without flag")
	}
	out := &SLBF{lbf: &LBF{tau: tau, name: "SLBF"}}
	if flags&1 != 0 {
		b, err := unmarshalBloom(data[slbfHeaderSize:slbfHeaderSize+initialLen], borrow)
		if err != nil {
			return nil, fmt.Errorf("learned: SLBF initial: %w", err)
		}
		out.initial = b
	}
	rest := data[slbfHeaderSize+initialLen:]
	if len(rest) < 8 {
		return nil, fmt.Errorf("learned: truncated SLBF backup length")
	}
	backupLen := binary.LittleEndian.Uint64(rest[0:8])
	if backupLen > uint64(len(rest)-8) {
		return nil, fmt.Errorf("learned: SLBF backup length %d exceeds payload", backupLen)
	}
	if flags&2 == 0 && backupLen != 0 {
		return nil, fmt.Errorf("learned: SLBF backup bytes present without flag")
	}
	if flags&2 != 0 {
		b, err := unmarshalBloom(rest[8:8+backupLen], borrow)
		if err != nil {
			return nil, fmt.Errorf("learned: SLBF backup: %w", err)
		}
		out.lbf.backup = b
	}
	rest = rest[8+backupLen:]
	model, n, err := decodeModel(rest)
	if err != nil {
		return nil, err
	}
	if n != len(rest) {
		return nil, fmt.Errorf("learned: %d trailing bytes after SLBF model", len(rest)-n)
	}
	out.lbf.model = model
	return out, nil
}

// --- Ada-BF -------------------------------------------------------------
//
// Layout:
//
//	0:4   magic "ADB1"
//	4     version (1)
//	5     flags (bit0: bit array present)
//	6:8   group count g (u16, = len(ks))
//	8:12  reserved (0) — sized so the shared bit array (at header +
//	      bloom.WireAlignOffset = 56) starts on an 8-byte boundary
//	12:20 bit-array block length
//	20:   bit-array BLMF block
//	...   boundaries: (g-1) × float64 bits
//	...   ks: g × u8
//	...   model block

const adabfHeaderSize = 20

// MarshalBinary encodes the filter in the ADB1 wire format.
func (a *AdaBF) MarshalBinary() ([]byte, error) {
	if len(a.ks) == 0 || len(a.ks) > maxAdaGroups || len(a.boundaries) != len(a.ks)-1 {
		return nil, fmt.Errorf("learned: Ada-BF has inconsistent groups (%d ks, %d boundaries)", len(a.ks), len(a.boundaries))
	}
	var bitsBytes []byte
	if a.bits != nil {
		b, err := a.bits.MarshalBinary()
		if err != nil {
			return nil, err
		}
		bitsBytes = b
	}
	buf := make([]byte, 0, adabfHeaderSize+len(bitsBytes)+9*len(a.ks)+9+4*featureDim)
	buf = binary.LittleEndian.AppendUint32(buf, adabfMagic)
	var flags byte
	if a.bits != nil {
		flags |= 1
	}
	buf = append(buf, wireVersion, flags)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a.ks)))
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(bitsBytes)))
	buf = append(buf, bitsBytes...)
	for _, b := range a.boundaries {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
	}
	for _, k := range a.ks {
		buf = append(buf, byte(k))
	}
	return appendModel(buf, a.model)
}

// WireAlignOffset places the shared bit array.
func (a *AdaBF) WireAlignOffset() int {
	if a.bits != nil {
		return adabfHeaderSize + bloom.WireAlignOffset
	}
	return 8
}

// Borrowed reports whether the bit array still serves from the decode
// buffer.
func (a *AdaBF) Borrowed() bool { return a.bits != nil && a.bits.Borrowed() }

// UnmarshalAdaBF decodes an ADB1 payload into owned memory.
func UnmarshalAdaBF(data []byte) (*AdaBF, error) { return unmarshalAdaBF(data, false) }

// UnmarshalAdaBFBorrow decodes an ADB1 payload zero-copy where alignment
// allows.
func UnmarshalAdaBFBorrow(data []byte) (*AdaBF, error) { return unmarshalAdaBF(data, true) }

func unmarshalAdaBF(data []byte, borrow bool) (*AdaBF, error) {
	if len(data) < adabfHeaderSize {
		return nil, fmt.Errorf("learned: Ada-BF payload too short (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != adabfMagic {
		return nil, fmt.Errorf("learned: bad Ada-BF magic %#x", m)
	}
	if v := data[4]; v != wireVersion {
		return nil, fmt.Errorf("learned: unsupported Ada-BF version %d", v)
	}
	flags := data[5]
	if flags&^1 != 0 {
		return nil, fmt.Errorf("learned: unknown Ada-BF flags %#x", flags)
	}
	groups := int(binary.LittleEndian.Uint16(data[6:8]))
	if groups < 1 || groups > maxAdaGroups {
		return nil, fmt.Errorf("learned: hostile Ada-BF group count %d", groups)
	}
	for _, b := range data[8:12] {
		if b != 0 {
			return nil, fmt.Errorf("learned: nonzero Ada-BF reserved bytes")
		}
	}
	bitsLen := binary.LittleEndian.Uint64(data[12:20])
	if bitsLen > uint64(len(data)-adabfHeaderSize) {
		return nil, fmt.Errorf("learned: Ada-BF bit-array length %d exceeds payload", bitsLen)
	}
	if flags&1 == 0 && bitsLen != 0 {
		return nil, fmt.Errorf("learned: Ada-BF bit-array bytes present without flag")
	}
	a := &AdaBF{}
	if flags&1 != 0 {
		b, err := unmarshalBloom(data[adabfHeaderSize:adabfHeaderSize+bitsLen], borrow)
		if err != nil {
			return nil, fmt.Errorf("learned: Ada-BF bit array: %w", err)
		}
		a.bits = b
	}
	rest := data[adabfHeaderSize+bitsLen:]
	tail := 8*(groups-1) + groups
	if len(rest) < tail {
		return nil, fmt.Errorf("learned: Ada-BF groups need %d bytes, have %d", tail, len(rest))
	}
	a.boundaries = make([]float64, groups-1)
	for i := range a.boundaries {
		a.boundaries[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	a.ks = make([]int, groups)
	for i := range a.ks {
		k := int(rest[8*(groups-1)+i])
		if k < 1 || k > 64 {
			return nil, fmt.Errorf("learned: Ada-BF hash count %d outside [1,64]", k)
		}
		a.ks[i] = k
	}
	rest = rest[tail:]
	model, n, err := decodeModel(rest)
	if err != nil {
		return nil, err
	}
	if n != len(rest) {
		return nil, fmt.Errorf("learned: %d trailing bytes after Ada-BF model", len(rest)-n)
	}
	a.model = model
	return a, nil
}
