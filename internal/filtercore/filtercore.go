// Package filtercore defines the pluggable filter-backend abstraction
// behind the serving stack. Every layer above it — internal/shard,
// internal/snapshot restore, internal/server, cmd/habfserved,
// cmd/habfbench — is generic over a Backend, so any registered filter
// family (HABF, standard Bloom, Xor, ...) is servable, benchmarkable and
// snapshot-able through the same code paths.
//
// A Backend is one shard's filter: built once from the shard's positive
// (and, for cost-aware families, negative) keys within a bit budget,
// queried lock-free by readers, and either mutable (Add inserts
// post-construction) or static (Add returns ErrStaticBackend and the
// shard layer buffers the key as pending until the next rebuild absorbs
// it). Backends marshal to a self-describing wire format and unmarshal
// in borrow mode for zero-copy snapshot loads.
//
// Backends self-register in an init-time Registry keyed both by a
// human-facing name (command-line flags, /v1/stats) and a stable wire
// Kind byte (stamped into the snapshot container header, so a restore
// dispatches to the right decoder or fails loudly — never misdecodes
// frames built by another backend).
package filtercore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/habf"
)

// ErrStaticBackend is returned by Add on backends whose structure cannot
// absorb post-construction inserts (e.g. the peeling-built Xor filter).
// The shard layer reacts by buffering the key as pending — still served
// with zero false negatives — until a rebuild absorbs it.
var ErrStaticBackend = errors.New("filtercore: static backend does not support Add")

// Kind is the stable wire discriminator of a backend family, stamped
// into the snapshot container header (one byte). Values are append-only:
// KindHABF must stay 0, because pre-backend snapshots carry a zeroed
// reserved byte there and must keep loading as HABF.
type Kind uint8

const (
	// KindHABF is the Hash Adaptive Bloom Filter (the default backend).
	KindHABF Kind = 0
	// KindBloom is the standard Bloom filter (mutable baseline).
	KindBloom Kind = 1
	// KindXor is the Xor filter (static baseline).
	KindXor Kind = 2
	// KindWBF is the Weighted Bloom filter (mutable, cost-aware baseline).
	KindWBF Kind = 3
	// KindPHBF is the partitioned-hashing Bloom filter (static baseline).
	KindPHBF Kind = 4
)

// Backend is one shard's filter, the unit the serving stack is generic
// over. Implementations are safe for concurrent readers; Add requires
// external synchronization against readers (the shard layer provides
// it).
type Backend interface {
	// Contains reports whether key may be a member. False positives are
	// possible; false negatives are not.
	Contains(key []byte) bool
	// ContainsBatch answers one result per key, in order, identical to
	// per-key Contains.
	ContainsBatch(keys [][]byte) []bool
	// Add inserts a key post-construction. Static backends return
	// ErrStaticBackend and remain unchanged; the caller owns buffering.
	Add(key []byte) error
	// AddedKeys reports how many keys Add absorbed since construction
	// (always 0 for static backends).
	AddedKeys() uint64
	// Name identifies the filter variant ("HABF", "BF(XXH128)", "Xor").
	Name() string
	// SizeBits is the memory footprint of the query-time structure.
	SizeBits() uint64
	// Kind returns the backend family's wire discriminator.
	Kind() Kind
	// MarshalBinary encodes the query-time state in the family's
	// self-describing wire format.
	MarshalBinary() ([]byte, error)
	// WireAlignOffset returns the offset within a MarshalBinary payload
	// that a zero-copy container must place 8-byte aligned.
	WireAlignOffset() int
	// Borrowed reports whether the backend still serves from the buffer
	// it was decoded from (borrow-mode unmarshal, no mutation yet).
	Borrowed() bool
}

// PreparedQuerier is the optional batch fast path of the hash-once read
// pipeline. The shard layer computes one base hash per key per batch
// (hashes.Base), routes with its top bits, and hands the full values to
// backends that implement this interface; backends whose probe positions
// derive from the base hash (seeded64 Bloom, Xor, PHBF, WBF) then skip
// re-reading the key bytes entirely.
//
// Contract: dst and keys (and hashes, when non-nil) share indices and
// length ≥ len(keys); the backend writes Contains(keys[i]) into dst[i]
// for every i and touches nothing past len(keys). hashes[i], when
// provided, must equal hashes.Base(keys[i]) — the caller owns that
// invariant (the shard layer only forwards base hashes computed under
// the global BaseSeed; restored sets routed under a legacy seed pass
// nil). A nil hashes slice means "no precomputed bases": the backend
// hashes the keys itself and must return identical answers. None of the
// three slices is retained after the call.
type PreparedQuerier interface {
	ContainsBatchInto(dst []bool, keys [][]byte, hashes []uint64)
}

// BuildConfig carries what a shard build hands a backend constructor.
type BuildConfig struct {
	// TotalBits is the shard's space budget.
	TotalBits uint64
	// Params is the HABF construction template (seed, k, cell size,
	// ablation switches). Non-HABF backends use the fields that apply to
	// them — typically none or just the seed — and ignore the rest.
	Params habf.Params
	// Tuning is the validated knob set for the backend family (parsed
	// against the factory's TuningSchema). The zero Tuning means "all
	// defaults"; builders must treat it like DefaultTuning.
	Tuning Tuning
}

// Factory describes one registered backend family.
type Factory struct {
	// Name is the registry key used by flags and APIs ("habf", "bloom",
	// "xor").
	Name string
	// Kind is the family's wire discriminator.
	Kind Kind
	// Static marks families whose Add returns ErrStaticBackend.
	Static bool
	// InnerName renders the per-shard display name for a construction
	// template, without building anything ("HABF" vs "f-HABF").
	InnerName func(p habf.Params) string
	// TuningSchema declares the family's tuning knobs (names, types,
	// bounds, defaults). Every factory must declare one, even if empty,
	// so ParseTuning/DefaultTuning work uniformly across backends.
	TuningSchema *Schema
	// Build constructs a backend over the shard's keys. Negatives carry
	// misidentification costs; families that cannot exploit them ignore
	// them.
	Build func(positives [][]byte, negatives []habf.WeightedKey, cfg BuildConfig) (Backend, error)
	// Unmarshal decodes a MarshalBinary payload into owned memory.
	Unmarshal func(data []byte) (Backend, error)
	// UnmarshalBorrow decodes a payload zero-copy where alignment
	// allows; the caller keeps data alive and unmodified.
	UnmarshalBorrow func(data []byte) (Backend, error)
}

var (
	regMu     sync.RWMutex
	byName    = map[string]*Factory{}
	byKind    = map[Kind]*Factory{}
	nameOrder []string
)

// Register adds a backend family to the registry. It panics on a
// duplicate name or kind — registration happens in package init, where
// a collision is a programming error.
func Register(f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if f.Name == "" || f.Build == nil || f.Unmarshal == nil || f.UnmarshalBorrow == nil || f.InnerName == nil || f.TuningSchema == nil {
		panic(fmt.Sprintf("filtercore: incomplete factory %+v", f))
	}
	if _, dup := byName[f.Name]; dup {
		panic(fmt.Sprintf("filtercore: backend %q already registered", f.Name))
	}
	if _, dup := byKind[f.Kind]; dup {
		panic(fmt.Sprintf("filtercore: backend kind %d already registered", f.Kind))
	}
	fc := f
	byName[f.Name] = &fc
	byKind[f.Kind] = &fc
	nameOrder = append(nameOrder, f.Name)
	sort.Strings(nameOrder)
}

// DefaultBackend is the name resolved when no backend is requested.
const DefaultBackend = "habf"

// ByName resolves a backend by registry name; the empty string resolves
// the default. Unknown names return an error listing what is available.
func ByName(name string) (*Factory, error) {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("filtercore: unknown backend %q (registered: %v)", name, nameOrder)
	}
	return f, nil
}

// ByKind resolves a backend by wire discriminator, for snapshot restore
// dispatch. Unknown kinds fail loudly so a container written by a newer
// backend is rejected instead of misdecoded.
func ByKind(k Kind) (*Factory, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := byKind[k]
	if !ok {
		return nil, fmt.Errorf("filtercore: unknown backend kind %d (registered: %v)", k, nameOrder)
	}
	return f, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), nameOrder...)
}

// containsBatchSerial is the shared ContainsBatch fallback for backends
// whose filter has no batch-specific fast path: one Contains per key,
// in order — the exact per-key parity the conformance suite checks.
func containsBatchSerial(b Backend, keys [][]byte) []bool {
	out := make([]bool, len(keys))
	for i, key := range keys {
		out[i] = b.Contains(key)
	}
	return out
}

// containsBatchSerialInto is the in-place flavor of containsBatchSerial,
// for PreparedQuerier implementations falling back to per-key Contains.
func containsBatchSerialInto(b Backend, dst []bool, keys [][]byte) {
	for i, key := range keys {
		dst[i] = b.Contains(key)
	}
}
