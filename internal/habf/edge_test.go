package habf

import (
	"fmt"
	"testing"
)

// Edge configurations: every legal (CellBits, K, Fast) combination must
// construct, preserve zero FNR, and filter.
func TestAllLegalConfigurations(t *testing.T) {
	pos := genKeys(1500, "cfg-p")
	neg := genNegatives(1500, "cfg-n", func(i int) float64 { return float64(i%5 + 1) })
	for _, fast := range []bool{false, true} {
		for cellBits := uint(3); cellBits <= 6; cellBits++ {
			usable := usableFunctions(cellBits, fast)
			for _, k := range []int{2, 3, usable} {
				if k > usable || k < 2 {
					continue
				}
				name := fmt.Sprintf("fast=%v/cell=%d/k=%d", fast, cellBits, k)
				t.Run(name, func(t *testing.T) {
					f, err := New(pos, neg, Params{
						TotalBits: 1500 * 14,
						CellBits:  cellBits,
						K:         k,
						Fast:      fast,
						Seed:      3,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, key := range pos {
						if !f.Contains(key) {
							t.Fatalf("false negative at %s", name)
						}
					}
					fp := 0
					for _, n := range neg {
						if f.Contains(n.Key) {
							fp++
						}
					}
					if rate := float64(fp) / float64(len(neg)); rate > 0.5 {
						t.Errorf("%s: FPR %.2f; not filtering", name, rate)
					}
				})
			}
		}
	}
}

// A budget so small that the Bloom array saturates must still construct
// and keep zero FNR (FPR approaches 1, which is the honest answer).
func TestSaturatedBudget(t *testing.T) {
	pos := genKeys(2000, "tight")
	neg := genNegatives(100, "tneg", uniformCost)
	f, err := New(pos, neg, Params{TotalBits: 2048}) // ~1 bit/key
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatal("zero-FNR violated under saturation")
		}
	}
}

// Very long and binary keys flow through every hash path.
func TestExoticKeys(t *testing.T) {
	long := make([]byte, 1<<16)
	for i := range long {
		long[i] = byte(i * 31)
	}
	pos := [][]byte{
		long,
		{0x00},
		{0xff, 0x00, 0xff},
		[]byte("ordinary"),
	}
	neg := []WeightedKey{{Key: []byte{0x01, 0x02}, Cost: 3}}
	for _, fast := range []bool{false, true} {
		f, err := New(pos, neg, Params{TotalBits: 4096, Fast: fast})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range pos {
			if !f.Contains(k) {
				t.Fatalf("fast=%v: lost exotic key of length %d", fast, len(k))
			}
		}
	}
}

// Zero-cost negatives are legal (the paper's uniform case scales costs
// arbitrarily); all-zero costs must not panic or divide by zero.
func TestZeroCosts(t *testing.T) {
	pos := genKeys(500, "z")
	neg := genNegatives(500, "zn", func(int) float64 { return 0 })
	f, err := New(pos, neg, Params{TotalBits: 500 * 12})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.WeightedFPRBefore != 0 || st.WeightedFPRAfter != 0 {
		t.Errorf("zero cost mass should yield zero weighted FPR, got %+v", st)
	}
	for _, k := range pos {
		if !f.Contains(k) {
			t.Fatal("zero costs broke membership")
		}
	}
}
