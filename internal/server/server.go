// Package server turns a sharded HABF into a network service: an HTTP
// API over *habf.Sharded with transparent request coalescing, so the
// per-chunk lock amortization of ContainsBatch — an in-process win for
// callers that already hold a batch — is also realized for independent
// single-key network callers.
//
// Endpoints (all request/response bodies are JSON unless noted):
//
//	POST /v1/contains        {"key": <base64>}            → {"present": bool}
//	POST /v1/contains_batch  {"keys": [<base64>, ...]}    → {"present": [bool, ...]}
//	POST /v1/add             {"key": <base64>}            → {"ok": true}
//	POST /v1/snapshot        {"path": "..."} (optional)   → {"path": ..., "ms": ...}
//	GET  /v1/stats                                        → filter + shard + coalescer stats
//	GET  /metrics                                         → Prometheus text format
//
// /v1/contains and /v1/add also accept Content-Type:
// application/octet-stream with the raw key bytes as the body; raw
// contains requests are answered with a one-byte body, "1" or "0". The
// raw form exists for load generators and latency-sensitive callers that
// want to skip JSON entirely.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	habf "repro"
	"repro/internal/metrics"
)

// maxBodyBytes bounds request bodies; a membership key or a batch of
// them is small, so anything larger is a client error, not traffic.
const maxBodyBytes = 8 << 20

// Config assembles a Server.
type Config struct {
	// Filter is the sharded filter to serve. Required.
	Filter *habf.Sharded
	// Coalesce tunes (or disables) single-key request coalescing.
	Coalesce CoalesceConfig
	// SnapshotPath is the default target for POST /v1/snapshot and for
	// snapshot-on-exit. Empty means snapshot requests must name a path.
	SnapshotPath string
}

// Server is the HTTP serving layer. Create with New, expose with
// Handler, and Close when done (it drains the coalescer).
type Server struct {
	filter   *habf.Sharded
	co       *Coalescer
	mux      *http.ServeMux
	snapPath string

	// snapMu serializes snapshot writes to the default path so two
	// concurrent /v1/snapshot calls don't interleave their progress
	// reporting (SaveFile itself is already crash-safe under races).
	snapMu sync.Mutex

	reg *metrics.Registry

	mContains      *metrics.Counter
	mContainsBatch *metrics.Counter
	mBatchKeys     *metrics.Counter
	mAdd           *metrics.Counter
	mSnapshots     *metrics.Counter
	mErrors        *metrics.Counter
	hContains      *metrics.Histogram
	hBatchSize     *metrics.Histogram
	hCoalesceSize  *metrics.Histogram
}

// New builds a Server over cfg.Filter and starts its coalescer.
func New(cfg Config) (*Server, error) {
	if cfg.Filter == nil {
		return nil, fmt.Errorf("server: nil Filter")
	}
	s := &Server{
		filter:   cfg.Filter,
		snapPath: cfg.SnapshotPath,
		reg:      metrics.NewRegistry(),
	}
	s.co = NewCoalescer(cfg.Filter, cfg.Coalesce)

	s.mContains = s.reg.Counter(`habfserved_requests_total{endpoint="contains"}`, "Requests by endpoint.")
	s.mContainsBatch = s.reg.Counter(`habfserved_requests_total{endpoint="contains_batch"}`, "Requests by endpoint.")
	s.mAdd = s.reg.Counter(`habfserved_requests_total{endpoint="add"}`, "Requests by endpoint.")
	s.mSnapshots = s.reg.Counter(`habfserved_requests_total{endpoint="snapshot"}`, "Requests by endpoint.")
	s.mBatchKeys = s.reg.Counter("habfserved_batch_keys_total", "Keys queried through /v1/contains_batch.")
	s.mErrors = s.reg.Counter("habfserved_request_errors_total", "Requests rejected with a 4xx/5xx status.")
	s.hContains = s.reg.Histogram("habfserved_contains_duration_seconds",
		"End-to-end handler latency of /v1/contains.", metrics.DurationBuckets())
	s.hBatchSize = s.reg.Histogram("habfserved_batch_size_keys",
		"Batch sizes seen by /v1/contains_batch.", metrics.SizeBuckets(1<<16))
	s.hCoalesceSize = s.reg.Histogram("habfserved_coalesce_batch_size_keys",
		"Micro-batch sizes formed by the request coalescer.", metrics.SizeBuckets(1<<12))
	s.co.onBatch = func(n int) { s.hCoalesceSize.Observe(float64(n)) }

	s.reg.Gauge(fmt.Sprintf(`habfserved_backend_info{backend=%q,filter=%q}`, s.filter.Backend(), s.filter.Name()),
		"Constant 1; labels identify the serving filter backend.",
		func() float64 { return 1 })
	s.reg.Gauge("habfserved_filter_keys", "Positive keys currently represented.",
		func() float64 { return float64(s.filter.Stats().Keys) })
	s.reg.Gauge("habfserved_filter_size_bits", "Query-time footprint in bits.",
		func() float64 { return float64(s.filter.SizeBits()) })
	s.reg.Gauge("habfserved_filter_shards", "Shard count.",
		func() float64 { return float64(s.filter.NumShards()) })
	s.reg.Gauge("habfserved_filter_rebuilds", "Completed background rebuilds.",
		func() float64 { return float64(s.filter.Stats().Rebuilds) })
	s.reg.Gauge("habfserved_filter_pending_keys", "Static-backend Adds buffered outside the shard filters (bounded by the backend's absorb knob on restored sets).",
		func() float64 { return float64(s.filter.Stats().Pending) })
	s.reg.Gauge("habfserved_filter_restored_shards", "Shards serving a snapshot-restored filter (no drift rebuilds).",
		func() float64 { return float64(s.filter.Stats().Restored) })
	s.reg.Gauge("habfserved_filter_absorbs", "Pending maps absorbed into mutable sidecars on restored shards.",
		func() float64 { return float64(s.filter.Stats().Absorbs) })
	s.reg.Gauge("habfserved_coalesce_batches", "Micro-batches dispatched.",
		func() float64 { return float64(s.co.Stats().Batches) })
	s.reg.Gauge("habfserved_coalesce_keys", "Keys answered through micro-batches.",
		func() float64 { return float64(s.co.Stats().Keys) })

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/contains", s.handleContains)
	mux.HandleFunc("/v1/contains_batch", s.handleContainsBatch)
	mux.HandleFunc("/v1/add", s.handleAdd)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the root handler for use with an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Coalescer exposes the coalescing layer (stats, direct benchmarking).
func (s *Server) Coalescer() *Coalescer { return s.co }

// Close drains the coalescing layer. Call after the http.Server has
// stopped accepting requests (e.g. via Shutdown); handlers still running
// during the drain keep getting correct answers on the direct path.
func (s *Server) Close() { s.co.Close() }

// Snapshot writes the filter's current state to path (or the configured
// default when path is empty) via the crash-safe SaveFile.
func (s *Server) Snapshot(path string) (string, time.Duration, error) {
	if path == "" {
		path = s.snapPath
	}
	if path == "" {
		return "", 0, fmt.Errorf("server: no snapshot path configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	if err := s.filter.SaveFile(path); err != nil {
		return "", 0, err
	}
	return path, time.Since(start), nil
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.mErrors.Inc()
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// readKey extracts the key from a contains/add request: raw bytes for
// application/octet-stream, else JSON {"key": base64}.
func readKey(r *http.Request) ([]byte, bool, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, false, err
	}
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		return body, true, nil
	}
	var req struct {
		Key []byte `json:"key"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, false, fmt.Errorf("bad JSON body: %w", err)
	}
	if req.Key == nil {
		return nil, false, fmt.Errorf(`missing "key"`)
	}
	return req.Key, false, nil
}

func (s *Server) handleContains(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	start := time.Now()
	key, raw, err := readKey(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "contains: %v", err)
		return
	}
	present := s.co.Contains(key)
	s.mContains.Inc()
	if raw {
		if present {
			io.WriteString(w, "1")
		} else {
			io.WriteString(w, "0")
		}
	} else {
		writeJSON(w, map[string]bool{"present": present})
	}
	s.hContains.ObserveDuration(time.Since(start))
}

func (s *Server) handleContainsBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Keys [][]byte `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "contains_batch: bad JSON body: %v", err)
		return
	}
	if len(req.Keys) == 0 {
		s.fail(w, http.StatusBadRequest, `contains_batch: missing "keys"`)
		return
	}
	present := s.filter.ContainsBatch(req.Keys)
	s.mContainsBatch.Inc()
	s.mBatchKeys.Add(uint64(len(req.Keys)))
	s.hBatchSize.Observe(float64(len(req.Keys)))
	writeJSON(w, map[string][]bool{"present": present})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	key, raw, err := readKey(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "add: %v", err)
		return
	}
	if len(key) == 0 {
		s.fail(w, http.StatusBadRequest, "add: empty key")
		return
	}
	s.filter.Add(key)
	s.mAdd.Inc()
	if raw {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// statsResponse is the /v1/stats document.
type statsResponse struct {
	Name     string           `json:"name"`
	Backend  string           `json:"backend"`
	Tuning   string           `json:"tuning"`
	Keys     uint64           `json:"keys"`
	Added    uint64           `json:"added"`
	Pending  uint64           `json:"pending"`
	Rebuilds uint64           `json:"rebuilds"`
	Absorbs  uint64           `json:"absorbs"`
	Restored int              `json:"restored_shards"`
	SizeBits uint64           `json:"size_bits"`
	Shards   []habf.ShardInfo `json:"shards"`
	Coalesce CoalesceStats    `json:"coalesce"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.filter.Stats()
	writeJSON(w, statsResponse{
		Name:     s.filter.Name(),
		Backend:  s.filter.Backend(),
		Tuning:   s.filter.Tuning(),
		Keys:     st.Keys,
		Added:    st.Added,
		Pending:  st.Pending,
		Rebuilds: st.Rebuilds,
		Absorbs:  st.Absorbs,
		Restored: st.Restored,
		SizeBits: st.SizeBits,
		Shards:   s.filter.ShardInfos(),
		Coalesce: s.co.Stats(),
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Path string `json:"path"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
			s.fail(w, http.StatusBadRequest, "snapshot: bad JSON body: %v", err)
			return
		}
	}
	if req.Path == "" && s.snapPath == "" {
		s.fail(w, http.StatusBadRequest, "snapshot: no path given and no default configured")
		return
	}
	path, took, err := s.Snapshot(req.Path)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	s.mSnapshots.Inc()
	writeJSON(w, map[string]any{
		"path": path,
		"ms":   float64(took.Microseconds()) / 1e3,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}
