// Package workload generates deterministic key-access patterns for
// serving benchmarks. Filter accuracy experiments sample key *sets*
// (internal/dataset); a serving benchmark additionally needs an *access
// stream* over those sets, and real streams are skewed: most traffic
// concentrates on a few hot keys (web caches, LSM miss traffic), or
// chases the most recently written keys (time-series ingest).
//
// A Generator yields indices into a caller-owned key slice under one of
// four standard distributions (the YCSB vocabulary): uniform, zipfian,
// sequential, and latest. Generators are deterministic per seed and NOT
// safe for concurrent use — give each worker goroutine its own Generator
// with a distinct seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution names a key-access pattern.
type Distribution string

const (
	// Uniform picks every key with equal probability.
	Uniform Distribution = "uniform"
	// Zipfian skews accesses toward low indices (index 0 is hottest),
	// the classic 80/20 shape of cache and blacklist traffic.
	Zipfian Distribution = "zipfian"
	// Sequential cycles through the keys in order, wrapping at the end.
	Sequential Distribution = "sequential"
	// Latest skews accesses toward the highest indices — "most recently
	// inserted" under an append-ordered key slice.
	Latest Distribution = "latest"
)

// Distributions lists every supported pattern, for CLI -help text.
func Distributions() []Distribution {
	return []Distribution{Uniform, Zipfian, Sequential, Latest}
}

// Parse maps a CLI string to a Distribution.
func Parse(s string) (Distribution, error) {
	switch Distribution(s) {
	case Uniform, Zipfian, Sequential, Latest:
		return Distribution(s), nil
	}
	return "", fmt.Errorf("workload: unknown distribution %q (want uniform|zipfian|sequential|latest)", s)
}

// zipfS is the skew exponent: 1.1 matches the storage-benchmark
// convention of "zipfian" (YCSB uses 0.99; >1 is required by math/rand).
const zipfS = 1.1

// Generator yields key indices in [0, NumKeys) under a Distribution.
type Generator struct {
	n    int
	dist Distribution
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int
}

// New returns a deterministic Generator over numKeys keys.
func New(dist Distribution, numKeys int, seed int64) (*Generator, error) {
	if numKeys <= 0 {
		return nil, fmt.Errorf("workload: numKeys = %d must be positive", numKeys)
	}
	if _, err := Parse(string(dist)); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{n: numKeys, dist: dist, rng: rng}
	if dist == Zipfian {
		g.zipf = rand.NewZipf(rng, zipfS, 1, uint64(numKeys-1))
	}
	return g, nil
}

// NumKeys returns the size of the index space.
func (g *Generator) NumKeys() int { return g.n }

// Next returns the next key index.
func (g *Generator) Next() int {
	switch g.dist {
	case Zipfian:
		return int(g.zipf.Uint64())
	case Sequential:
		i := g.seq
		g.seq++
		if g.seq == g.n {
			g.seq = 0
		}
		return i
	case Latest:
		// Exponential-ish decay away from the newest key: |N(0,1)| scaled
		// to a tenth of the key space, clamped to the oldest key.
		span := g.n / 10
		if span < 1 {
			span = 1
		}
		off := int(math.Abs(g.rng.NormFloat64()) * float64(span))
		i := g.n - 1 - off
		if i < 0 {
			i = 0
		}
		return i
	default: // Uniform
		return g.rng.Intn(g.n)
	}
}

// Fill writes len(dst) successive indices into dst — the batch shape the
// serving layer consumes.
func (g *Generator) Fill(dst []int) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// MixProbes builds a deterministic probe stream of n keys mixing members
// and known negatives — the shape of real serving traffic, where honest
// hits interleave with (skewed) miss lookups. Even positions hold
// negatives, odd positions positives, with indices drawn from one
// Generator over len(negatives) (positive indices wrap modulo
// len(positives)). The parity convention lets callers check the
// zero-false-negative contract on a stream: result[i] for even i may be
// either way, for odd i it must be true.
func MixProbes(dist Distribution, seed int64, n int, positives, negatives [][]byte) ([][]byte, error) {
	if len(positives) == 0 || len(negatives) == 0 {
		return nil, fmt.Errorf("workload: MixProbes needs non-empty positives and negatives")
	}
	gen, err := New(dist, len(negatives), seed)
	if err != nil {
		return nil, err
	}
	probes := make([][]byte, n)
	for i := range probes {
		idx := gen.Next()
		if i%2 == 0 {
			probes[i] = negatives[idx]
		} else {
			probes[i] = positives[idx%len(positives)]
		}
	}
	return probes, nil
}

// Keys materializes a deterministic key universe of numKeys fixed-width
// keys ("key%012d"), the companion to Generator for benchmarks that do
// not load a dataset.
func Keys(numKeys int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, numKeys)
	for i := range keys {
		// A random low-entropy suffix keeps keys from being purely
		// sequential while staying reproducible.
		keys[i] = []byte(fmt.Sprintf("key%012d-%04x", i, rng.Intn(1<<16)))
	}
	return keys
}
