package learned

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

func serializeFixture(n int) (pos, neg [][]byte) {
	for i := 0; i < n; i++ {
		pos = append(pos, []byte(fmt.Sprintf("member-%06d", i)))
		neg = append(neg, []byte(fmt.Sprintf("absent-%06d", i)))
	}
	return pos, neg
}

// wireFixtures builds one filter per (family, model) combination worth a
// wire-format test, including the trivial 0/1-key shapes.
func wireFixtures(t *testing.T) map[string]filter {
	t.Helper()
	pos, neg := serializeFixture(400)
	build := func(name string, f filter, err error) filter {
		t.Helper()
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		return f
	}
	out := map[string]filter{}
	lbf, err := BuildLBF(pos, neg, 400*12, ServeOptions{})
	out["lbf-logistic"] = build("lbf-logistic", lbf, err)
	gru, err := BuildLBF(pos[:200], neg[:200], 1<<20, ServeOptions{Model: "gru", Epochs: 1})
	out["lbf-gru"] = build("lbf-gru", gru, err)
	slbf, err := BuildSLBF(pos, neg, 400*12, ServeOptions{Split: 0.25})
	out["slbf-logistic"] = build("slbf-logistic", slbf, err)
	ada, err := BuildAdaBF(pos, neg, 400*12, ServeOptions{Groups: 6})
	out["adabf-logistic"] = build("adabf-logistic", ada, err)
	for _, nkeys := range []int{0, 1} {
		l, err := BuildLBF(pos[:nkeys], nil, 64, ServeOptions{})
		out[fmt.Sprintf("lbf-trivial-%d", nkeys)] = build("lbf-trivial", l, err)
		s, err := BuildSLBF(pos[:nkeys], nil, 64, ServeOptions{})
		out[fmt.Sprintf("slbf-trivial-%d", nkeys)] = build("slbf-trivial", s, err)
		a, err := BuildAdaBF(pos[:nkeys], nil, 64, ServeOptions{})
		out[fmt.Sprintf("adabf-trivial-%d", nkeys)] = build("adabf-trivial", a, err)
	}
	return out
}

func decodeAs(f filter, data []byte, borrow bool) (filter, error) {
	switch f.(type) {
	case *LBF:
		if borrow {
			return UnmarshalLBFBorrow(data)
		}
		return UnmarshalLBF(data)
	case *SLBF:
		if borrow {
			return UnmarshalSLBFBorrow(data)
		}
		return UnmarshalSLBF(data)
	case *AdaBF:
		if borrow {
			return UnmarshalAdaBFBorrow(data)
		}
		return UnmarshalAdaBF(data)
	}
	panic("unknown filter type")
}

// TestWireRoundTrip: decode (owned and borrowed) must reproduce the
// exact query behavior and re-marshal byte-identically — the contract
// snapshot container dedup and replica shipping rely on.
func TestWireRoundTrip(t *testing.T) {
	pos, neg := serializeFixture(400)
	probes := append(append([][]byte{}, pos...), neg...)
	for name, f := range wireFixtures(t) {
		for _, borrow := range []bool{false, true} {
			mode := "owned"
			if borrow {
				mode = "borrow"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				wire, err := f.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				g, err := decodeAs(f, wire, borrow)
				if err != nil {
					t.Fatal(err)
				}
				for _, key := range probes {
					if f.Contains(key) != g.Contains(key) {
						t.Fatalf("decoded filter disagrees on %q", key)
					}
				}
				if f.SizeBits() != g.SizeBits() {
					t.Fatalf("SizeBits %d != %d after decode", g.SizeBits(), f.SizeBits())
				}
				again, err := g.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wire, again) {
					t.Fatal("re-marshal is not byte-identical")
				}
				if !borrow && g.Borrowed() {
					t.Fatal("owned decode reports Borrowed")
				}
			})
		}
	}
}

// TestDecodedGRUNameReconstructed: the wire format does not carry the
// display name; the decoder derives it from the model kind.
func TestDecodedGRUNameReconstructed(t *testing.T) {
	fx := wireFixtures(t)
	wire, err := fx["lbf-gru"].(*LBF).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalLBF(wire)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "LBF(GRU)" {
		t.Fatalf("decoded Name = %q, want LBF(GRU)", g.Name())
	}
}

// hostileMutations corrupts a valid payload in every way the decoders
// must reject. Each mutation returns the corrupted copy.
func hostileMutations(valid []byte, headerSize int, blockLenOff int) map[string][]byte {
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	return map[string][]byte{
		"empty":           {},
		"short header":    mut(func(b []byte) []byte { return b[:headerSize-1] }),
		"bad magic":       mut(func(b []byte) []byte { b[0] ^= 0xFF; return b }),
		"bad version":     mut(func(b []byte) []byte { b[4] = 9; return b }),
		"unknown flags":   mut(func(b []byte) []byte { b[5] |= 0x80; return b }),
		"truncated model": mut(func(b []byte) []byte { return b[:len(b)-1] }),
		"trailing bytes":  mut(func(b []byte) []byte { return append(b, 0xAA) }),
		"oversized inner block": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[blockLenOff:], uint64(len(b))+1e6)
			return b
		}),
	}
}

func TestHostilePayloadsRejected(t *testing.T) {
	fx := wireFixtures(t)
	for _, tc := range []struct {
		name        string
		f           filter
		headerSize  int
		blockLenOff int
	}{
		{"lbf", fx["lbf-logistic"], lbfHeaderSize, 20},
		{"slbf", fx["slbf-logistic"], slbfHeaderSize, 20},
		{"adabf", fx["adabf-logistic"], adabfHeaderSize, 12},
	} {
		valid, err := tc.f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		muts := hostileMutations(valid, tc.headerSize, tc.blockLenOff)
		if tc.name != "adabf" {
			withReserved := append([]byte(nil), valid...)
			withReserved[6] = 1
			muts["nonzero reserved"] = withReserved
		} else {
			withReserved := append([]byte(nil), valid...)
			withReserved[8] = 1
			muts["nonzero reserved"] = withReserved
			zeroGroups := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(zeroGroups[6:], 0)
			muts["zero groups"] = zeroGroups
			hugeGroups := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(hugeGroups[6:], maxAdaGroups+1)
			muts["hostile group count"] = hugeGroups
		}
		for mname, data := range muts {
			for _, borrow := range []bool{false, true} {
				if _, err := decodeAs(tc.f, data, borrow); err == nil {
					t.Errorf("%s/%s (borrow=%v): hostile payload accepted", tc.name, mname, borrow)
				}
			}
		}
	}
}

// TestHostileModelBlocksRejected attacks the model block directly: a
// weight count chosen to drive a giant allocation, an unknown model
// kind, and GRU dims past the sanity bound must all fail before any
// allocation happens.
func TestHostileModelBlocksRejected(t *testing.T) {
	if _, _, err := decodeModel(nil); err == nil {
		t.Error("empty model block accepted")
	}
	if _, _, err := decodeModel([]byte{77}); err == nil {
		t.Error("unknown model kind accepted")
	}
	hostileCount := []byte{modelLogistic, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	if _, _, err := decodeModel(hostileCount); err == nil {
		t.Error("hostile logistic weight count accepted")
	}
	zeroDim := []byte{modelLogistic, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, _, err := decodeModel(zeroDim); err == nil {
		t.Error("zero logistic weight count accepted")
	}
	truncated := []byte{modelLogistic, 8, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}
	if _, _, err := decodeModel(truncated); err == nil {
		t.Error("truncated logistic weights accepted")
	}
	hostileGRU := make([]byte, 11)
	hostileGRU[0] = modelGRU
	binary.LittleEndian.PutUint16(hostileGRU[1:], 0xFFFF) // hidden
	binary.LittleEndian.PutUint16(hostileGRU[3:], 32)
	binary.LittleEndian.PutUint16(hostileGRU[5:], 48)
	if _, _, err := decodeModel(hostileGRU); err == nil {
		t.Error("hostile GRU hidden dim accepted")
	}
}

// TestHostileInnerBloomRejected: an inner block that is not a BLMF
// container (wrong magic) must fail with the family named in the error.
func TestHostileInnerBloomRejected(t *testing.T) {
	fx := wireFixtures(t)
	valid, err := fx["lbf-logistic"].(*LBF).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), valid...)
	// The backup BLMF block starts right after the LBF header; smash its
	// magic.
	corrupt[lbfHeaderSize] ^= 0xFF
	for _, borrow := range []bool{false, true} {
		if _, err := decodeAs(fx["lbf-logistic"], corrupt, borrow); err == nil {
			t.Errorf("borrow=%v: wrong inner-bloom magic accepted", borrow)
		}
	}
}
