package wire

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/fuzzcorpus"
)

// fuzzWireSeeds builds the seed inputs FuzzWireDecode starts from: a
// valid pipelined stream plus the hostile shapes the decoder must
// reject (bad ops, hostile lengths, truncations, varint overflows). The
// same set is committed under testdata/fuzz/FuzzWireDecode (see
// TestWireSeedCorpus) so the CI fuzz smoke starts from real edge cases.
func fuzzWireSeeds() map[string][]byte {
	valid := encodeRequests(
		AppendContains(nil, 1, []byte("probe-key")),
		AppendContainsBatch(nil, 2, [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}),
		AppendAdd(nil, 3, []byte("fresh-key")),
		AppendPing(nil, 4),
		AppendEpoch(nil, 5),
	)
	seeds := map[string][]byte{
		"valid-pipeline": valid,
		"empty":          {},
		"handshake-only": Handshake[:],
		"http-not-wire":  []byte("POST /v1/contains HTTP/1.1\r\nHost: x\r\n\r\n"),
		"bad-version":    {'H', 'B', 'F', 99},
		"bad-op":         append(append([]byte{}, Handshake[:]...), 0x7f, 0x01),
		"empty-key":      append(append([]byte{}, Handshake[:]...), byte(OpContains), 1, 0),
		"truncated-key":  valid[:len(Handshake)+4],
		"half":           valid[:len(valid)/2],
	}
	// Key length claiming 2^64-1: must be rejected before any allocation.
	huge := append([]byte{}, Handshake[:]...)
	huge = append(huge, byte(OpContains), 1)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	seeds["huge-key-len"] = huge
	// Batch count at the cap with no key bytes behind it.
	count := append([]byte{}, Handshake[:]...)
	count = append(count, byte(OpContainsBatch), 1)
	count = appendUvarint(count, MaxBatchKeys)
	seeds["batch-count-no-payload"] = count
	// Varint with a continuation bit on every byte: overlong, must error.
	overlong := append([]byte{}, Handshake[:]...)
	overlong = append(overlong, byte(OpPing))
	overlong = append(overlong, bytes.Repeat([]byte{0xff}, 11)...)
	seeds["overlong-varint"] = overlong
	return seeds
}

// FuzzWireDecode hardens the request decoder against arbitrary network
// input: no panic, no runaway allocation, and every accepted frame must
// satisfy the documented bounds and re-encode to the bytes just read.
func FuzzWireDecode(f *testing.F) {
	seeds := fuzzWireSeeds()
	for _, name := range fuzzcorpus.Names(seeds) {
		f.Add(seeds[name])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		if err := d.ReadHandshake(); err != nil {
			return
		}
		var req Request
		var reenc []byte
		for frames := 0; frames < 1024; frames++ {
			if err := d.Next(&req); err != nil {
				return
			}
			switch req.Op {
			case OpContains, OpAdd:
				if len(req.Key) == 0 || len(req.Key) > MaxKeyLen {
					t.Fatalf("accepted key of length %d", len(req.Key))
				}
				if req.Op == OpContains {
					reenc = AppendContains(reenc[:0], req.ID, req.Key)
				} else {
					reenc = AppendAdd(reenc[:0], req.ID, req.Key)
				}
			case OpContainsBatch:
				if len(req.Keys) == 0 || len(req.Keys) > MaxBatchKeys {
					t.Fatalf("accepted batch of %d keys", len(req.Keys))
				}
				total := 0
				for _, k := range req.Keys {
					if len(k) == 0 || len(k) > MaxKeyLen {
						t.Fatalf("accepted batch key of length %d", len(k))
					}
					total += len(k)
				}
				if total > MaxBatchBytes {
					t.Fatalf("accepted batch of %d bytes", total)
				}
				reenc = AppendContainsBatch(reenc[:0], req.ID, req.Keys)
			case OpPing:
				reenc = AppendPing(reenc[:0], req.ID)
			case OpEpoch:
				reenc = AppendEpoch(reenc[:0], req.ID)
			default:
				t.Fatalf("decoder returned unknown op %v", req.Op)
			}
			// An accepted frame re-encodes byte-identically — the decoder
			// and encoders agree on one canonical framing.
			rd := NewDecoder(bytes.NewReader(reenc))
			var again Request
			if err := rd.Next(&again); err != nil {
				t.Fatalf("re-encoded frame rejected: %v", err)
			}
		}
	})
}

// TestWireSeedCorpus keeps the committed seed corpus under
// testdata/fuzz/FuzzWireDecode in sync with fuzzWireSeeds. Run with
// UPDATE_FUZZ_CORPUS=1 to regenerate after changing the seed set.
func TestWireSeedCorpus(t *testing.T) {
	const dir = "testdata/fuzz/FuzzWireDecode"
	seeds := fuzzWireSeeds()
	if os.Getenv("UPDATE_FUZZ_CORPUS") != "" {
		if err := fuzzcorpus.WriteDir(dir, seeds); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d seeds)", dir, len(seeds))
	}
	committed, err := fuzzcorpus.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_FUZZ_CORPUS=1 to generate)", err)
	}
	for _, name := range fuzzcorpus.Names(seeds) {
		got, ok := committed[name]
		if !ok {
			t.Errorf("seed %q not committed (run with UPDATE_FUZZ_CORPUS=1)", name)
			continue
		}
		if !bytes.Equal(got, seeds[name]) {
			t.Errorf("committed seed %q differs from generator", name)
		}
	}
	for _, name := range fuzzcorpus.Names(committed) {
		if _, ok := seeds[name]; !ok {
			t.Errorf("stale committed seed %q (run with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
	// Every seed must decode without panicking, whatever it decodes to.
	for _, name := range fuzzcorpus.Names(committed) {
		d := NewDecoder(bytes.NewReader(committed[name]))
		if err := d.ReadHandshake(); err != nil {
			continue
		}
		var req Request
		for d.Next(&req) == nil {
		}
	}
}
