package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalescerAgreesWithDirect drives many concurrent single-key
// queries through the coalescer and checks every answer against the
// filter's own verdict.
func TestCoalescerAgreesWithDirect(t *testing.T) {
	filter, data := newTestFilter(t, 3000)
	// A positive MaxWait makes batch formation deterministic even on a
	// single-core host, where the default drain-only policy may see the
	// queue one request at a time.
	co := NewCoalescer(filter, CoalesceConfig{MaxWait: 200 * time.Microsecond})
	defer co.Close()

	probes := append(append([][]byte{}, data.Positives...), data.Negatives...)
	want := filter.ContainsBatch(probes)

	const workers = 8
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(probes); i += workers {
				if co.Contains(probes[i]) != want[i] {
					mismatches.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d coalesced answers disagree with direct queries", n)
	}
	st := co.Stats()
	if st.Keys != uint64(len(probes)) {
		t.Fatalf("coalescer served %d keys, want %d", st.Keys, len(probes))
	}
	if st.Batches == 0 || st.Batches >= st.Keys {
		t.Fatalf("no coalescing happened: %d batches for %d keys", st.Batches, st.Keys)
	}
	t.Logf("batches=%d keys=%d mean=%.1f lingers=%d", st.Batches, st.Keys, st.MeanBatch(), st.Lingers)
}

// TestCoalescerMaxBatch pins the batch-size bound.
func TestCoalescerMaxBatch(t *testing.T) {
	filter, data := newTestFilter(t, 500)
	co := NewCoalescer(filter, CoalesceConfig{MaxBatch: 4, Dispatchers: 1})
	defer co.Close()
	var tooBig atomic.Int64
	co.onBatch = func(n int) {
		if n > 4 {
			tooBig.Add(1)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				co.Contains(data.Positives[(w*200+i)%len(data.Positives)])
			}
		}(w)
	}
	wg.Wait()
	if n := tooBig.Load(); n != 0 {
		t.Fatalf("%d batches exceeded MaxBatch", n)
	}
}

// TestCoalescerDisabled checks the bypass path still answers correctly
// and is accounted as direct.
func TestCoalescerDisabled(t *testing.T) {
	filter, data := newTestFilter(t, 500)
	co := NewCoalescer(filter, CoalesceConfig{Disabled: true})
	defer co.Close()
	for i, key := range data.Positives[:100] {
		if !co.Contains(key) {
			t.Fatalf("member %d denied", i)
		}
	}
	st := co.Stats()
	if st.Direct != 100 || st.Batches != 0 {
		t.Fatalf("disabled coalescer: direct=%d batches=%d, want 100/0", st.Direct, st.Batches)
	}
}

// TestCoalescerCloseDuringTraffic closes the coalescer while queries are
// in flight: every caller must still get a correct answer, before and
// after the dispatchers drain.
func TestCoalescerCloseDuringTraffic(t *testing.T) {
	filter, data := newTestFilter(t, 2000)
	co := NewCoalescer(filter, CoalesceConfig{MaxBatch: 16})

	const workers = 8
	var wg sync.WaitGroup
	var wrong atomic.Int64
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				key := data.Positives[(w*500+i)%len(data.Positives)]
				if !co.Contains(key) {
					wrong.Add(1) // members can never be denied
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	co.Close()
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d queries lost their answer across Close", n)
	}
	st := co.Stats()
	if st.Keys+st.Direct != workers*500 {
		t.Fatalf("answers unaccounted: coalesced %d + direct %d != %d", st.Keys, st.Direct, workers*500)
	}
	co.Close() // idempotent
}

// TestCoalescerReleasesKeyReferences pins the scratch-release fix: a
// dispatched batch's key references must become collectible as soon as
// the batch is answered. The dispatcher's keys/batch scratch is reused
// via [:0], so before the fix the slots of the most recent batch kept
// pointing at callers' key bytes indefinitely — this test fails there
// with exactly one key (the last one) never freed.
func TestCoalescerReleasesKeyReferences(t *testing.T) {
	filter, _ := newTestFilter(t, 300)
	co := NewCoalescer(filter, CoalesceConfig{Dispatchers: 1})
	defer co.Close()

	const n = 32
	var freed atomic.Int64
	for i := 0; i < n; i++ {
		key := make([]byte, 64)
		key[0] = byte(i)
		runtime.SetFinalizer(&key[0], func(*byte) { freed.Add(1) })
		co.Contains(key)
	}

	deadline := time.Now().Add(10 * time.Second)
	for freed.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d dispatched keys were released; the coalescer scratch still pins the rest", freed.Load(), n)
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkCoalesce compares the uncoalesced per-request path against
// the coalesced one at ≥8 concurrent clients, in-process. On a
// single-core host the channel handoff dominates and direct wins; the
// coalescer's value there is the shared-batch execution visible in
// MeanBatch. On multi-core hosts the batch path's one-lock-round-per-
// chunk amortization is what scales — see BenchmarkShardedContainsBatch
// at the repo root and the end-to-end `habfbench -net` comparison,
// where both paths carry identical per-request HTTP cost.
func BenchmarkCoalesce(b *testing.B) {
	filter, data := newTestFilter(b, 100000)
	probes := make([][]byte, 1<<14)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = data.Negatives[(i*40503)%len(data.Negatives)]
		} else {
			// uint64 arithmetic: the Knuth constant overflows int on
			// 32-bit hosts (GOARCH=386 vet).
			probes[i] = data.Positives[uint64(i)*2654435761%uint64(len(data.Positives))]
		}
	}
	mask := len(probes) - 1

	b.Run("direct/c8", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		var ctr atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(ctr.Add(1))
				_ = filter.Contains(probes[i&mask])
			}
		})
	})
	b.Run("coalesced/c8", func(b *testing.B) {
		b.ReportAllocs()
		co := NewCoalescer(filter, CoalesceConfig{})
		defer co.Close()
		b.SetParallelism(8)
		var ctr atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(ctr.Add(1))
				_ = co.Contains(probes[i&mask])
			}
		})
		b.StopTimer()
		st := co.Stats()
		b.ReportMetric(st.MeanBatch(), "keys/batch")
	})
	for _, batch := range []int{64, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for lo := 0; lo < b.N; lo += batch {
				n := batch
				if lo+n > b.N {
					n = b.N - lo
				}
				start := lo & mask
				end := start + n
				if end > len(probes) {
					end = len(probes)
				}
				_ = filter.ContainsBatch(probes[start:end])
			}
		})
	}
}
