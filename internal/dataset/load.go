package dataset

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
)

// File I/O for the key/cost files written by cmd/habfgen (one key or one
// float per line), so external workloads can be replayed through the
// same experiment paths as the synthetic ones.

// LoadKeys reads a key file: one key per line, byte-exact (no trailing
// newline in the key). Lines may be up to 1 MiB.
func LoadKeys(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		out = append(out, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: %s: no keys", path)
	}
	return out, nil
}

// LoadCosts reads a cost file: one non-negative float per line.
func LoadCosts(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s:%d: %w", path, line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("dataset: %s:%d: negative cost %v", path, line, v)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return out, nil
}

// SaveKeys writes keys one per line (the habfgen format).
func SaveKeys(path string, keys [][]byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, k := range keys {
		if _, err := w.Write(k); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveCosts writes costs one per line (the habfgen format).
func SaveCosts(path string, costs []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, c := range costs {
		if _, err := fmt.Fprintf(w, "%g\n", c); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
