// Command habfbench regenerates the paper's evaluation figures (§V,
// Figs. 8–15) plus the ablation study as text tables.
//
// Usage:
//
//	habfbench -list
//	habfbench -fig fig10 [-scale 1.0] [-seed 1]
//	habfbench -all [-scale 0.25]
//	habfbench -serve [-shards 8] [-dist zipfian] [-batch 256] [-workers 4] [-writers 1]
//	habfbench -serve -backend xor                 # serve a baseline filter family
//	habfbench -serve -snapshot filter.snap        # build, then checkpoint
//	habfbench -serve -restore filter.snap         # restore instead of building
//	habfbench -serve -tune k=4,cellbits=5         # serve with non-default tuning knobs
//	habfbench -net [-clients 8] [-dist zipfian] [-benchjson BENCH_serve.json]
//	habfbench -net -backend habf,bloom,xor        # compare backends on identical traffic
//	habfbench -net -tune "bloom:strategy=seeded64,k=8;xor:width=9"  # add tuned-variant runs
//	habfbench -net -addr host:8080                # drive a running habfserved
//	habfbench -net -proto all                     # HTTP and the binary wire protocol
//
// Scale 1.0 runs 40 k Shalla keys and 100 k YCSB keys per side with the
// paper's bits-per-key grid; larger scales approach the published sizes.
// -serve runs the serving-layer throughput comparison instead: per-key
// queries against one filter vs the sharded filter vs sharded batches,
// under a uniform/zipfian/sequential/latest key-access distribution,
// optionally with concurrent writers on the no-external-locking Add path.
// -snapshot saves the sharded filter after construction; -restore loads
// it (zero-copy) instead of rebuilding and reports restore-vs-build
// timing, so the cold-start win is measurable on real hardware.
// -net is the network load generator: concurrent HTTP clients issue
// single-key and batch queries against habfserved (a remote -addr, or an
// in-process self-test instance) under a workload distribution, report
// throughput and latency percentiles, and optionally write the
// machine-readable BENCH_serve.json that CI's regression gate compares
// against the committed baseline. -proto selects the wire format(s):
// http (default), binary (the internal/wire length-prefixed protocol,
// scenarios suffixed "/binary"), or all; remote binary runs need
// -addr-binary pointing at habfserved's -listen-binary port.
// Both serving modes take -backend: -serve benchmarks one filter family
// per run, and -net accepts a comma-separated list so HABF, Bloom and
// Xor are compared as serving backends under identical workloads
// (non-default backends get a /name suffix on their scenarios).
// Both also take -tune. For -serve it is the backend's knob set,
// "k=v,k=v" (a -restore must carry matching knobs). For -net a plain
// "k=v,k=v" tunes every self-test backend and suffixes every scenario
// "+tuned", while the "backend:k=v,...;backend:k=v,..." form keeps the
// untuned runs and adds one extra coalesced-contains run per entry —
// how CI tracks tuned variants next to the defaults.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 1, "workload and construction seed")

		serve    = flag.Bool("serve", false, "run the serving-layer throughput benchmark")
		backend  = flag.String("backend", "", "serve/net: filter backend (net: comma-separated list; default habf)")
		tune     = flag.String("tune", "", "serve/net: backend tuning knobs, k=v,k=v (net also takes backend:knobs;backend:knobs for extra tuned runs)")
		shards   = flag.Int("shards", 8, "serve: shard count (rounded up to a power of two)")
		dist     = flag.String("dist", "zipfian", "serve: key distribution (uniform|zipfian|sequential|latest)")
		keys     = flag.Int("keys", 100000, "serve: positive/negative keys per side")
		batch    = flag.Int("batch", 256, "serve: ContainsBatch size")
		workers  = flag.Int("workers", 4, "serve: concurrent query goroutines")
		writers  = flag.Int("writers", 1, "serve: concurrent Add goroutines in the mixed phase")
		ops      = flag.Int("ops", 4_000_000, "serve: total keys queried per measurement (net: defaults to 48000)")
		snapPath = flag.String("snapshot", "", "serve: save the sharded filter's snapshot to this path after building")
		restore  = flag.String("restore", "", "serve: restore the sharded filter from this snapshot instead of building it")

		netMode   = flag.Bool("net", false, "run the network load generator against habfserved")
		addr      = flag.String("addr", "", "net: host:port of a running habfserved (empty: in-process self-test)")
		addrBin   = flag.String("addr-binary", "", "net: host:port of a remote habfserved binary listener (-listen-binary); comma-separate several to route across them")
		proto     = flag.String("proto", "http", "net: protocols to drive: http|binary|all")
		clients   = flag.Int("clients", 8, "net: concurrent HTTP clients")
		replicas  = flag.Int("replicas", 0, "net self-test: spawn a primary plus this-many-minus-one snapshot-shipped followers and add routed batch scenarios (needs binary proto)")
		benchjson = flag.String("benchjson", "", "net: write machine-readable results to this JSON file")
	)
	flag.Parse()

	switch {
	case *netMode:
		netOps := *ops
		if !flagWasSet("ops") {
			// HTTP requests cost three orders of magnitude more than
			// in-process queries; the -serve default would run for ages.
			netOps = 48_000
		}
		netKeys := *keys
		if !flagWasSet("keys") {
			netKeys = 20_000
		}
		cfg := netConfig{
			addr:      *addr,
			addrBin:   *addrBin,
			proto:     *proto,
			backends:  *backend,
			tune:      *tune,
			keys:      netKeys,
			clients:   *clients,
			ops:       netOps,
			batch:     *batch,
			writers:   0,
			shards:    *shards,
			dist:      *dist,
			seed:      *seed,
			replicas:  *replicas,
			benchjson: *benchjson,
		}
		if flagWasSet("writers") {
			cfg.writers = *writers
		}
		if err := runNet(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "habfbench:", err)
			os.Exit(1)
		}
	case *serve:
		cfg := serveConfig{
			keys:     *keys,
			backend:  *backend,
			tune:     *tune,
			shards:   *shards,
			batch:    *batch,
			workers:  *workers,
			ops:      *ops,
			dist:     *dist,
			writers:  *writers,
			seed:     *seed,
			snapshot: *snapPath,
			restore:  *restore,
		}
		if err := runServe(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "habfbench:", err)
			os.Exit(1)
		}
	case *list:
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
	case *all:
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		for _, id := range experiments.All() {
			start := time.Now()
			if err := experiments.Run(id, cfg, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "habfbench:", err)
				os.Exit(1)
			}
			fmt.Printf("-- %s done in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	case *fig != "":
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		if err := experiments.Run(*fig, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "habfbench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// flagWasSet reports whether the named flag was given on the command
// line, so modes can default shared flags differently.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
