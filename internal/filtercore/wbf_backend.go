package filtercore

import (
	"sync/atomic"

	"repro/internal/habf"
	"repro/internal/wbf"
)

// wbfBackend adapts the Weighted Bloom filter baseline (Bruck et al.
// 2006) to the Backend interface. Like HABF it is cost-aware — the
// shard's weighted negatives drive a per-key hash-count allocation, and
// the costliest negatives' counts are cached for query time — and like
// the standard Bloom it is mutable: Add inserts with the base hash
// count, exactly as construction inserts positives.
type wbfBackend struct {
	f     *wbf.Filter
	added atomic.Uint64
}

var _ Backend = (*wbfBackend)(nil)
var _ PreparedQuerier = (*wbfBackend)(nil)

func (b *wbfBackend) Contains(key []byte) bool       { return b.f.Contains(key) }
func (b *wbfBackend) AddedKeys() uint64              { return b.added.Load() }
func (b *wbfBackend) Name() string                   { return b.f.Name() }
func (b *wbfBackend) SizeBits() uint64               { return b.f.SizeBits() }
func (b *wbfBackend) Kind() Kind                     { return KindWBF }
func (b *wbfBackend) MarshalBinary() ([]byte, error) { return b.f.MarshalBinary() }
func (b *wbfBackend) WireAlignOffset() int           { return wbf.WireAlignOffset }
func (b *wbfBackend) Borrowed() bool                 { return b.f.Borrowed() }

func (b *wbfBackend) ContainsBatch(keys [][]byte) []bool {
	return containsBatchSerial(b, keys)
}

// ContainsBatchInto implements PreparedQuerier. Probe positions derive
// from the shared base hash; the key bytes are still consulted for the
// per-key hash-count cache lookup.
func (b *wbfBackend) ContainsBatchInto(dst []bool, keys [][]byte, hashes []uint64) {
	if hashes == nil {
		containsBatchSerialInto(b, dst, keys)
		return
	}
	for i, h := range hashes[:len(keys)] {
		dst[i] = b.f.ContainsHash(keys[i], h)
	}
}

func (b *wbfBackend) Add(key []byte) error {
	b.f.Add(key)
	b.added.Add(1)
	return nil
}

func init() {
	Register(Factory{
		Name:      "wbf",
		Kind:      KindWBF,
		Static:    false,
		InnerName: func(habf.Params) string { return "WBF" },
		TuningSchema: NewSchema(
			Knob{Name: "cache", Type: KnobFloat, Min: 0, Max: 1,
				Default: "0.05", Doc: "fraction of cost-descending negatives whose hash count is cached for query time; 0 means the 0.05 default"},
			Knob{Name: "k", Type: KnobInt, Min: 0, Max: 60,
				Default: "0", Doc: "base hash count for average-cost keys; 0 derives round(ln2 · bits-per-key)"},
			Knob{Name: "maxk", Type: KnobInt, Min: 0, Max: 64,
				Default: "0", Doc: "ceiling on per-key hash counts; 0 means base k + 4"},
		),
		Build: func(positives [][]byte, negatives []habf.WeightedKey, cfg BuildConfig) (Backend, error) {
			conv := make([]wbf.WeightedKey, len(negatives))
			for i, n := range negatives {
				conv[i] = wbf.WeightedKey{Key: n.Key, Cost: n.Cost}
			}
			f, err := wbf.New(positives, conv, wbf.Config{
				TotalBits:     cfg.TotalBits,
				BaseK:         cfg.Tuning.Int("k"),
				CacheFraction: cfg.Tuning.Float("cache"),
				MaxK:          cfg.Tuning.Int("maxk"),
			})
			if err != nil {
				return nil, err
			}
			return &wbfBackend{f: f}, nil
		},
		Unmarshal: func(data []byte) (Backend, error) {
			f, err := wbf.UnmarshalFilter(data)
			if err != nil {
				return nil, err
			}
			return &wbfBackend{f: f}, nil
		},
		UnmarshalBorrow: func(data []byte) (Backend, error) {
			f, err := wbf.UnmarshalFilterBorrow(data)
			if err != nil {
				return nil, err
			}
			return &wbfBackend{f: f}, nil
		},
	})
}
