package bitset

import "unsafe"

// Zero-copy loading. The wire format stores word payloads little-endian,
// which matches the in-memory layout of []uint64 on little-endian hosts —
// so a decoded vector can serve reads straight out of the encoded buffer
// instead of copying a multi-GB payload word by word. borrowWords is the
// one place that reinterpretation happens; Bits and Lanes both go through
// it and both fall back to copying whenever aliasing would be unsound.

// hostLittleEndian reports whether the native byte order matches the wire
// format. On big-endian hosts every borrow request degrades to a copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// borrowWords reinterprets payload as nw uint64 words without copying,
// when that is sound: borrowing was requested, the host is little-endian,
// the payload is exactly nw words long, and its base address is 8-byte
// aligned (an unaligned []uint64 is undefined on strict-alignment
// architectures). Returns ok=false to tell the caller to copy instead.
func borrowWords(payload []byte, nw int, borrow bool) ([]uint64, bool) {
	if !borrow || !hostLittleEndian || nw == 0 || len(payload) != nw*8 {
		return nil, false
	}
	p := unsafe.Pointer(unsafe.SliceData(payload))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(p), nw), true
}
