// Snapshot/restore contracts of the public API, including the -race
// test of Save racing concurrent Adds and a drift rebuild (CI runs the
// whole suite under -race).
package habf_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	habf "repro"
)

func snapshotFixture(t testing.TB, n int) (*habf.Sharded, [][]byte, [][]byte) {
	t.Helper()
	pos := make([][]byte, n)
	negKeys := make([][]byte, n)
	neg := make([]habf.WeightedKey, n)
	for i := 0; i < n; i++ {
		pos[i] = []byte(fmt.Sprintf("snap-member-%06d", i))
		negKeys[i] = []byte(fmt.Sprintf("snap-absent-%06d", i))
		neg[i] = habf.WeightedKey{Key: negKeys[i], Cost: float64(i%13 + 1)}
	}
	s, err := habf.NewSharded(pos, neg, uint64(12*n), habf.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	return s, pos, negKeys
}

func TestShardedSaveLoadRoundtrip(t *testing.T) {
	s, pos, negKeys := snapshotFixture(t, 5000)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := habf.Load(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Zero false negatives: the restored filter's core contract.
	for _, key := range pos {
		if !g.Contains(key) {
			t.Fatalf("restored filter lost member %q", key)
		}
	}
	// Exact parity on every probe, not just members: a snapshot restores
	// the same filter, not merely an equivalent one.
	for _, key := range negKeys {
		if s.Contains(key) != g.Contains(key) {
			t.Fatalf("restored filter disagrees on %q", key)
		}
	}
	if s.SizeBits() != g.SizeBits() || s.NumShards() != g.NumShards() {
		t.Fatal("restored filter shape differs")
	}
	batch := append(append([][]byte{}, pos[:512]...), negKeys[:512]...)
	want := s.ContainsBatch(batch)
	got := g.ContainsBatch(batch)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("ContainsBatch disagrees at %d", i)
		}
	}
}

func TestShardedSaveFileLoadFile(t *testing.T) {
	s, pos, _ := snapshotFixture(t, 3000)
	path := filepath.Join(t.TempDir(), "filter.habfsnap")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := habf.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range pos {
		if !g.Contains(key) {
			t.Fatalf("restored filter lost member %q", key)
		}
	}
	// The restored filter keeps absorbing writes.
	g.Add([]byte("added-after-restore"))
	if !g.Contains([]byte("added-after-restore")) {
		t.Fatal("Add after LoadFile lost the key")
	}
	if st := g.Stats(); st.Restored == 0 {
		t.Fatal("Stats().Restored is zero after restore")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	s, _, _ := snapshotFixture(t, 1000)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, data := range map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)*2/3],
		"bitrot": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)/2] ^= 0x01
			return b
		}(),
	} {
		if _, err := habf.Load(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
	if _, err := habf.LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadFile of a missing path succeeded")
	}
}

// TestSaveUnderConcurrentAddAndRebuild is the -race snapshot test: Save
// runs while writers stream Adds and a low rebuild threshold forces
// background rebuilds to swap shards mid-save. The restored copy must
// answer true for every key whose Add returned before Save was called —
// the durability contract Save documents.
func TestSaveUnderConcurrentAddAndRebuild(t *testing.T) {
	pos := make([][]byte, 4000)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("base-%06d", i))
	}
	// Aggressive threshold so the writer's Adds trigger rebuilds while
	// the snapshot is being taken.
	s, err := habf.NewSharded(pos, nil, uint64(12*len(pos)),
		habf.WithShards(8), habf.WithRebuildThreshold(0.001))
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		maxPerWriter = 1 << 16
	)
	var (
		stop    atomic.Bool
		ackedN  [writers]atomic.Int64 // published after the key lands in acked
		wg      sync.WaitGroup
		readers sync.WaitGroup
	)
	acked := make([][][]byte, writers) // pre-sized: writers never resize
	for w := range acked {
		acked[w] = make([][]byte, maxPerWriter)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < maxPerWriter && !stop.Load(); i++ {
				key := []byte(fmt.Sprintf("live-%d-%06d", w, i))
				s.Add(key)
				acked[w][i] = key
				ackedN[w].Add(1) // release: Add returned, key is durable-eligible
			}
		}(w)
	}
	// Concurrent readers keep the no-blocked-readers property honest
	// under -race.
	readers.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer readers.Done()
			for !stop.Load() {
				s.Contains(pos[0])
				s.ContainsBatch(pos[:64])
			}
		}()
	}

	// Let writes and rebuilds get going, then snapshot mid-flight. Keys
	// acknowledged before this point MUST be durable; later ones may be.
	for s.Stats().Keys < uint64(len(pos))+800 {
	}
	ackedBefore := make([][]byte, 0, 4096)
	for w := 0; w < writers; w++ {
		n := ackedN[w].Load() // acquire: pairs with the writer's Add(1)
		ackedBefore = append(ackedBefore, acked[w][:n]...)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	readers.Wait()
	s.WaitRebuilds()

	g, err := habf.Load(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range pos {
		if !g.Contains(key) {
			t.Fatalf("restored copy lost base member %q", key)
		}
	}
	for _, key := range ackedBefore {
		if !g.Contains(key) {
			t.Fatalf("restored copy lost %q, acknowledged before Save", key)
		}
	}
	if st := s.Stats(); st.Rebuilds == 0 {
		t.Log("note: no background rebuild completed during the test window")
	}
}
