// Command habfgen writes the synthetic evaluation datasets to disk, one
// key per line, so external tools can consume the same workloads the
// benchmarks use.
//
// Usage:
//
//	habfgen -dataset shalla -n 100000 -out ./data
//	habfgen -dataset ycsb -n 500000 -skew 1.0 -out ./data
//
// Three files are produced in the output directory: <name>.positive,
// <name>.negative and <name>.costs (one float per negative key, aligned
// by line).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
)

func main() {
	var (
		name = flag.String("dataset", "shalla", "dataset: shalla or ycsb")
		n    = flag.Int("n", 100000, "keys per side")
		skew = flag.Float64("skew", 0, "Zipf cost skewness (0 = uniform)")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var pair dataset.Pair
	switch *name {
	case "shalla":
		pair = dataset.Shalla(*n, *n, *seed)
	case "ycsb":
		pair = dataset.YCSB(*n, *n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "habfgen: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	costs := dataset.ZipfCosts(*n, *skew, *seed)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "habfgen:", err)
		os.Exit(1)
	}
	writeLines := func(path string, lines func(w *bufio.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if err := lines(w); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	base := filepath.Join(*out, *name)
	err := writeLines(base+".positive", func(w *bufio.Writer) error {
		for _, k := range pair.Positives {
			if _, err := fmt.Fprintf(w, "%s\n", k); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		err = writeLines(base+".negative", func(w *bufio.Writer) error {
			for _, k := range pair.Negatives {
				if _, err := fmt.Fprintf(w, "%s\n", k); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err == nil {
		err = writeLines(base+".costs", func(w *bufio.Writer) error {
			for _, c := range costs {
				if _, err := fmt.Fprintf(w, "%g\n", c); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "habfgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s.{positive,negative,costs} (%d keys per side, skew %.1f)\n", base, *n, *skew)
}
