// Package experiments regenerates every figure of the paper's evaluation
// (§V, Figs. 8–15) as printable tables. Each FigNN function reproduces the
// series of the corresponding figure; Run dispatches by identifier and the
// cmd/habfbench binary exposes them on the command line.
//
// Scaling: the paper runs Shalla at 1.49 M positive keys and YCSB at
// 12.5 M; this harness defaults to 40 k / 100 k and keeps all space
// budgets proportional, so every point preserves the paper's bits-per-key.
// The Config.Scale multiplier restores larger runs when wanted.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/bloom"
	"repro/internal/dataset"
	"repro/internal/habf"
	"repro/internal/learned"
	"repro/internal/metrics"
	"repro/internal/phbf"
	"repro/internal/wbf"
	"repro/internal/xorfilter"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies the default dataset sizes (40k Shalla / 100k YCSB
	// per side). Default 1.0.
	Scale float64
	// Seed drives dataset generation and filter construction. Default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) shallaN() int { return int(40000 * c.Scale) }
func (c Config) ycsbN() int   { return int(100000 * c.Scale) }

// Paper space grids expressed as bits per positive key, derived from the
// published MB budgets over the published key counts (§V-E, §V-F):
// Shalla 1.25–3.25 MB over 1.491 M keys, YCSB 12.5–32.5 MB over 12.5 M.
var (
	shallaBitsPerKey = []float64{7.0, 9.8, 12.7, 15.5, 18.3}
	ycsbBitsPerKey   = []float64{8.4, 11.7, 15.1, 18.5, 21.8}
)

// paperMB converts a bits-per-key point back to the paper's MB label for
// the given dataset so tables read like the figures.
func paperMB(bpk float64, shalla bool) float64 {
	if shalla {
		return bpk * 1491178 / 8 / 1e6
	}
	return bpk * 12500611 / 8 / 1e6
}

// Table is one printable result series.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// workload bundles a dataset with its cost assignment.
type workload struct {
	pos      [][]byte
	neg      [][]byte
	costs    []float64
	weighted []habf.WeightedKey
	shalla   bool
}

func newWorkload(p dataset.Pair, costs []float64, shalla bool) workload {
	w := workload{pos: p.Positives, neg: p.Negatives, costs: costs, shalla: shalla}
	w.weighted = make([]habf.WeightedKey, len(p.Negatives))
	for i := range p.Negatives {
		w.weighted[i] = habf.WeightedKey{Key: p.Negatives[i], Cost: costs[i]}
	}
	return w
}

func (c Config) shallaWorkload(skew float64) workload {
	n := c.shallaN()
	return newWorkload(dataset.Shalla(n, n, c.Seed), dataset.ZipfCosts(n, skew, c.Seed), true)
}

func (c Config) ycsbWorkload(skew float64) workload {
	n := c.ycsbN()
	return newWorkload(dataset.YCSB(n, n, c.Seed), dataset.ZipfCosts(n, skew, c.Seed), false)
}

// totalBits converts a bits-per-key point into an absolute budget.
func (w workload) totalBits(bpk float64) uint64 {
	return uint64(bpk * float64(len(w.pos)))
}

// buildFilter constructs the named filter at the given budget. The name
// set matches the paper's legends.
func buildFilter(name string, w workload, totalBits uint64, seed int64) (metrics.Filter, error) {
	bpk := float64(totalBits) / float64(len(w.pos))
	switch name {
	case "HABF":
		return habf.New(w.pos, w.weighted, habf.Params{TotalBits: totalBits, Seed: seed})
	case "f-HABF":
		return habf.New(w.pos, w.weighted, habf.Params{TotalBits: totalBits, Seed: seed, Fast: true})
	case "BF":
		return bloom.NewWithKeys(w.pos, bpk, bloom.StrategyCorpus)
	case "BF(City64)":
		return bloom.NewWithKeys(w.pos, bpk, bloom.StrategySeeded64)
	case "BF(XXH128)":
		return bloom.NewWithKeys(w.pos, bpk, bloom.StrategySplit128)
	case "Xor":
		return xorfilter.NewWithBudget(w.pos, bpk)
	case "WBF":
		conv := make([]wbf.WeightedKey, len(w.weighted))
		for i, n := range w.weighted {
			conv[i] = wbf.WeightedKey{Key: n.Key, Cost: n.Cost}
		}
		return wbf.New(w.pos, conv, wbf.Config{TotalBits: totalBits})
	case "LBF":
		return learned.NewLBF(w.pos, w.neg, totalBits, learned.TrainConfig{Seed: seed})
	case "SLBF":
		return learned.NewSLBF(w.pos, w.neg, totalBits, learned.TrainConfig{Seed: seed})
	case "Ada-BF":
		return learned.NewAdaBF(w.pos, w.neg, totalBits, learned.TrainConfig{Seed: seed})
	case "PHBF":
		return phbf.New(w.pos, phbf.Config{TotalBits: totalBits})
	default:
		return nil, fmt.Errorf("experiments: unknown filter %q", name)
	}
}

// weightedFPRCell formats a weighted FPR measurement for a table cell.
func weightedFPRCell(f metrics.Filter, w workload) string {
	v, err := metrics.WeightedFPR(f, w.neg, w.costs)
	if err != nil {
		return "err"
	}
	return fmt.Sprintf("%.3e", v)
}

// registry maps figure identifiers to their generators.
var registry = map[string]func(Config) []Table{
	"fig08": Fig08,
	"fig09": Fig09,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig15": Fig15,
	"abl":   Ablations,
	"rel":   Related,
	"lsm":   LSM,
	"incr":  Incremental,
}

// All returns the known experiment identifiers, sorted.
func All() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by identifier and prints its tables.
func Run(id string, cfg Config, w io.Writer) error {
	fn, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, All())
	}
	for _, t := range fn(cfg) {
		t.Fprint(w)
	}
	return nil
}
