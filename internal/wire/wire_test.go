package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// encodeRequests renders a handshake plus the given frames, as a client
// would put them on the wire.
func encodeRequests(frames ...[]byte) []byte {
	out := append([]byte{}, Handshake[:]...)
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

// TestRequestRoundTrip pins that every op's encoder is decoded back
// verbatim, including pipelined frames on one stream.
func TestRequestRoundTrip(t *testing.T) {
	key := []byte("some-key")
	batch := [][]byte{[]byte("a"), []byte("bb"), bytes.Repeat([]byte{0xee}, 300)}

	stream := encodeRequests(
		AppendContains(nil, 1, key),
		AppendContainsBatch(nil, 2, batch),
		AppendAdd(nil, 3, key),
		AppendPing(nil, 4),
		AppendEpoch(nil, 5),
	)
	d := NewDecoder(bytes.NewReader(stream))
	if err := d.ReadHandshake(); err != nil {
		t.Fatal(err)
	}

	var req Request
	if err := d.Next(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpContains || req.ID != 1 || !bytes.Equal(req.Key, key) {
		t.Fatalf("contains decoded as %+v", req)
	}
	if err := d.Next(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpContainsBatch || req.ID != 2 || len(req.Keys) != len(batch) {
		t.Fatalf("batch decoded as %+v", req)
	}
	for i, k := range batch {
		if !bytes.Equal(req.Keys[i], k) {
			t.Fatalf("batch key %d: got %q want %q", i, req.Keys[i], k)
		}
	}
	if err := d.Next(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpAdd || req.ID != 3 || !bytes.Equal(req.Key, key) {
		t.Fatalf("add decoded as %+v", req)
	}
	if err := d.Next(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpPing || req.ID != 4 {
		t.Fatalf("ping decoded as %+v", req)
	}
	if err := d.Next(&req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpEpoch || req.ID != 5 {
		t.Fatalf("epoch decoded as %+v", req)
	}
	if err := d.Next(&req); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestDecoderRejectsHostileFrames pins the protocol violations that must
// fail decode rather than allocate or mis-frame.
func TestDecoderRejectsHostileFrames(t *testing.T) {
	hugeLen := appendUvarint([]byte{byte(OpContains), 1}, uint64(MaxKeyLen)+1)
	overCountBatch := appendUvarint([]byte{byte(OpContainsBatch), 1}, uint64(MaxBatchKeys)+1)
	// A batch whose per-key lengths are each legal but whose total busts
	// the byte cap: 3 keys of MaxKeyLen.
	overBytes := appendUvarint([]byte{byte(OpContainsBatch), 1}, 3)
	chunk := bytes.Repeat([]byte{'x'}, MaxKeyLen)
	for i := 0; i < 3; i++ {
		overBytes = appendUvarint(overBytes, uint64(MaxKeyLen))
		overBytes = append(overBytes, chunk...)
	}
	cases := []struct {
		name   string
		stream []byte
		want   error
	}{
		{"bad-handshake", []byte("GET / HTTP/1.1\r\n"), ErrBadHandshake},
		{"truncated-handshake", Handshake[:2], io.ErrUnexpectedEOF},
		{"bad-op", encodeRequests([]byte{0x7f, 0x01}), ErrBadOp},
		{"empty-key", encodeRequests(append([]byte{byte(OpContains), 1}, 0)), ErrEmptyKey},
		{"empty-add-key", encodeRequests(append([]byte{byte(OpAdd), 1}, 0)), ErrEmptyKey},
		{"huge-key-len", encodeRequests(hugeLen), ErrKeyTooLong},
		{"empty-batch", encodeRequests(append([]byte{byte(OpContainsBatch), 1}, 0)), ErrEmptyBatch},
		{"huge-batch-count", encodeRequests(overCountBatch), ErrBatchTooBig},
		{"batch-bytes-overflow", encodeRequests(overBytes), ErrBatchTooBig},
		{"empty-batch-key", encodeRequests(append(appendUvarint([]byte{byte(OpContainsBatch), 1}, 2), 1, 'x', 0)), ErrEmptyKey},
		{"truncated-key", encodeRequests(append(appendUvarint([]byte{byte(OpContains), 1}, 8), 'x', 'y')), io.ErrUnexpectedEOF},
		{"truncated-id", encodeRequests([]byte{byte(OpContains)}), io.ErrUnexpectedEOF},
		{"overlong-varint", encodeRequests(append([]byte{byte(OpContains), 1}, bytes.Repeat([]byte{0xff}, 10)...)), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(bytes.NewReader(tc.stream))
			err := d.ReadHandshake()
			if err == nil {
				var req Request
				err = d.Next(&req)
			}
			if err == nil {
				t.Fatal("hostile stream decoded cleanly")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecoderScratchReuse pins the zero-alloc contract: after the first
// frames size the scratch, decoding allocates nothing.
func TestDecoderScratchReuse(t *testing.T) {
	key := bytes.Repeat([]byte{'k'}, 128)
	batch := make([][]byte, 64)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("batch-key-%03d", i))
	}
	frame := encodeRequests(AppendContains(nil, 1, key), AppendContainsBatch(nil, 2, batch))

	r := bytes.NewReader(frame)
	d := NewDecoder(r)
	var req Request
	warm := func() {
		r.Reset(frame)
		if err := d.ReadHandshake(); err != nil {
			t.Fatal(err)
		}
		for {
			if err := d.Next(&req); err != nil {
				if err == io.EOF {
					return
				}
				t.Fatal(err)
			}
		}
	}
	warm() // size the scratch
	allocs := testing.AllocsPerRun(50, warm)
	if allocs > 0 {
		t.Fatalf("decode allocates %.1f times per stream, want 0", allocs)
	}
}

// TestResponseEncoders spot-checks the response frames a client parses,
// including the bit-packing of batch results.
func TestResponseEncoders(t *testing.T) {
	got := AppendContainsResp(nil, 7, true)
	want := append(appendUvarint([]byte{byte(OpContains)}, 7), StatusOK, '1')
	if !bytes.Equal(got, want) {
		t.Fatalf("contains resp % x, want % x", got, want)
	}

	presents := []bool{true, false, false, true, true, false, true, true, true} // 9 results
	got = AppendBatchResp(nil, 9, presents)
	want = append(appendUvarint([]byte{byte(OpContainsBatch)}, 9), StatusOK)
	want = appendUvarint(want, 9)
	want = append(want, 0b11011001, 0b00000001)
	if !bytes.Equal(got, want) {
		t.Fatalf("batch resp % x, want % x", got, want)
	}

	got = AppendEpochResp(nil, 11, 300)
	want = append(appendUvarint([]byte{byte(OpEpoch)}, 11), StatusOK)
	want = appendUvarint(want, 300)
	if !bytes.Equal(got, want) {
		t.Fatalf("epoch resp % x, want % x", got, want)
	}

	got = AppendErrorResp(nil, OpAdd, 3, "boom")
	want = append(appendUvarint([]byte{byte(OpAdd)}, 3), StatusError)
	want = appendUvarint(want, 4)
	want = append(want, "boom"...)
	if !bytes.Equal(got, want) {
		t.Fatalf("error resp % x, want % x", got, want)
	}
}

// TestBatchScratchDoesNotLeakAcrossFrames pins that a later, smaller
// batch never exposes keys from an earlier one: the decoder clears its
// header slots between frames.
func TestBatchScratchDoesNotLeakAcrossFrames(t *testing.T) {
	big := make([][]byte, 16)
	for i := range big {
		big[i] = []byte(fmt.Sprintf("big-%02d", i))
	}
	stream := encodeRequests(
		AppendContainsBatch(nil, 1, big),
		AppendContainsBatch(nil, 2, [][]byte{[]byte("small")}),
	)
	d := NewDecoder(bytes.NewReader(stream))
	if err := d.ReadHandshake(); err != nil {
		t.Fatal(err)
	}
	var req Request
	if err := d.Next(&req); err != nil {
		t.Fatal(err)
	}
	if err := d.Next(&req); err != nil {
		t.Fatal(err)
	}
	if len(req.Keys) != 1 || string(req.Keys[0]) != "small" {
		t.Fatalf("second batch decoded as %q", req.Keys)
	}
	// The retained scratch beyond the live batch must hold no references.
	tail := d.keys[len(req.Keys):cap(d.keys)]
	for i, k := range tail {
		if k != nil {
			t.Fatalf("scratch slot %d still references %q from the previous batch", i, k)
		}
	}
}
