package learned

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bloom"
)

// LBF is Kraska et al.'s Learned Bloom filter: a classifier with threshold
// τ in front of a backup Bloom filter holding the classifier's false
// negatives. Keys scoring ≥ τ are declared members immediately.
type LBF struct {
	model  Model
	tau    float64
	backup *bloom.Filter // nil when the model captures every positive
	name   string
}

// NewLBF trains a logistic model on the labelled keys and builds an LBF
// within totalBits (model parameters + backup filter). The threshold is
// chosen by sweeping score quantiles of the negative sample and minimizing
// the estimated overall FPR, as in the original paper.
func NewLBF(positives, negatives [][]byte, totalBits uint64, cfg TrainConfig) (*LBF, error) {
	model := TrainLogistic(positives, negatives, cfg)
	return assembleLBF(model, "LBF", positives, negatives, totalBits)
}

// NewLBFWithGRU builds an LBF around the paper's 16-dim character GRU
// instead of the hashed-trigram logistic model. Training subsamples very
// large key sets (BPTT over millions of keys is impractical in pure Go);
// the threshold sweep and backup assembly are identical to NewLBF.
func NewLBFWithGRU(positives, negatives [][]byte, totalBits uint64) (*LBF, error) {
	const trainCap = 8000 // per side
	pt, nt := positives, negatives
	if len(pt) > trainCap {
		pt = pt[:trainCap]
	}
	if len(nt) > trainCap {
		nt = nt[:trainCap]
	}
	model := TrainGRU(pt, nt, GRUConfig{})
	return assembleLBF(model, "LBF(GRU)", positives, negatives, totalBits)
}

func assembleLBF(model Model, name string, positives, negatives [][]byte, totalBits uint64) (*LBF, error) {
	if model.SizeBits() >= totalBits {
		return nil, fmt.Errorf("learned: model (%d bits) exceeds budget (%d bits)", model.SizeBits(), totalBits)
	}
	backupBits := totalBits - model.SizeBits()

	tau, fns := chooseTau(model, positives, negatives, backupBits)
	l := &LBF{model: model, tau: tau, name: name}
	if len(fns) > 0 {
		bpk := float64(backupBits) / float64(len(fns))
		backup, err := bloom.NewWithKeys(fns, bpk, bloom.StrategySplit128)
		if err != nil {
			return nil, err
		}
		l.backup = backup
	}
	return l, nil
}

// chooseTau sweeps candidate thresholds and returns the minimizer of the
// estimated end-to-end FPR together with the model's false negatives (the
// positives the backup filter must hold).
func chooseTau(model Model, positives, negatives [][]byte, backupBits uint64) (float64, [][]byte) {
	posScores := make([]float64, len(positives))
	for i, k := range positives {
		posScores[i] = model.Score(k)
	}
	negScores := make([]float64, len(negatives))
	for i, k := range negatives {
		negScores[i] = model.Score(k)
	}
	sortedNeg := append([]float64(nil), negScores...)
	sort.Float64s(sortedNeg)

	// Candidate τ values: high quantiles of the negative score
	// distribution (targeting model FPRs of 10%, 5%, 2%, 1%, 0.5%, 0.1%)
	// plus 1.0 (model disabled).
	var candidates []float64
	if len(sortedNeg) > 0 {
		for _, q := range []float64{0.90, 0.95, 0.98, 0.99, 0.995, 0.999} {
			candidates = append(candidates, sortedNeg[int(q*float64(len(sortedNeg)-1))])
		}
	}
	candidates = append(candidates, 1.01) // sentinel: classify nothing positive

	bestTau, bestEst := 1.01, math.Inf(1)
	for _, tau := range candidates {
		modelFP := 0
		for _, s := range negScores {
			if s >= tau {
				modelFP++
			}
		}
		fpModel := 0.0
		if len(negScores) > 0 {
			fpModel = float64(modelFP) / float64(len(negScores))
		}
		fn := 0
		for _, s := range posScores {
			if s < tau {
				fn++
			}
		}
		var fpBackup float64
		if fn > 0 {
			bpk := float64(backupBits) / float64(fn)
			fpBackup = bloom.TheoreticalFPR(bpk, bloom.OptimalK(bpk))
		}
		est := fpModel + (1-fpModel)*fpBackup
		if est < bestEst {
			bestEst, bestTau = est, tau
		}
	}

	var fns [][]byte
	for i, k := range positives {
		if posScores[i] < bestTau {
			fns = append(fns, k)
		}
	}
	return bestTau, fns
}

// Contains reports whether key may be a member. Positives below τ are in
// the backup filter, so no false negatives.
func (l *LBF) Contains(key []byte) bool {
	if l.model.Score(key) >= l.tau {
		return true
	}
	if l.backup == nil {
		return false
	}
	return l.backup.Contains(key)
}

// Name identifies the filter in experiment output.
func (l *LBF) Name() string { return l.name }

// SizeBits returns model plus backup footprint.
func (l *LBF) SizeBits() uint64 {
	s := l.model.SizeBits()
	if l.backup != nil {
		s += l.backup.SizeBits()
	}
	return s
}

// SLBF is Mitzenmacher's Sandwiched LBF: an initial Bloom filter screens
// all queries, then the LBF stage handles survivors. The initial filter
// takes half of the non-model budget (the optimal split derived in the
// SLBF paper is workload-dependent; one half is its recommended default
// when the model FPR/FNR trade is balanced).
type SLBF struct {
	initial *bloom.Filter
	lbf     *LBF
}

// NewSLBF trains a model and assembles the sandwich within totalBits.
func NewSLBF(positives, negatives [][]byte, totalBits uint64, cfg TrainConfig) (*SLBF, error) {
	model := TrainLogistic(positives, negatives, cfg)
	if model.SizeBits() >= totalBits {
		return nil, fmt.Errorf("learned: model (%d bits) exceeds budget (%d bits)", model.SizeBits(), totalBits)
	}
	rest := totalBits - model.SizeBits()
	initialBits := rest / 2
	bpk := float64(initialBits) / float64(len(positives))
	initial, err := bloom.NewWithKeys(positives, bpk, bloom.StrategySplit128)
	if err != nil {
		return nil, err
	}
	lbf, err := assembleLBF(model, "SLBF", positives, negatives, totalBits-initial.SizeBits())
	if err != nil {
		return nil, err
	}
	return &SLBF{initial: initial, lbf: lbf}, nil
}

// Contains reports whether key may be a member.
func (s *SLBF) Contains(key []byte) bool {
	if !s.initial.Contains(key) {
		return false
	}
	return s.lbf.Contains(key)
}

// Name identifies the filter in experiment output.
func (s *SLBF) Name() string { return "SLBF" }

// SizeBits returns the full sandwich footprint.
func (s *SLBF) SizeBits() uint64 { return s.initial.SizeBits() + s.lbf.SizeBits() }

// AdaBF is Dai & Shrivastava's Adaptive Learned Bloom filter: one shared
// bit array, with the per-key hash count decreasing as the model score
// increases (high-score keys are probably members, so fewer bits suffice).
type AdaBF struct {
	model      Model
	bits       *bloom.Filter // shared array, queried with per-group k
	boundaries []float64     // score quantile boundaries, ascending
	ks         []int         // hash count per group, len = len(boundaries)+1
}

// adaGroups is the number of score groups g (the Ada-BF paper uses a
// handful; 4 keeps tuning stable at our scales).
const adaGroups = 4

// NewAdaBF trains a model and builds the group-adaptive filter.
func NewAdaBF(positives, negatives [][]byte, totalBits uint64, cfg TrainConfig) (*AdaBF, error) {
	model := TrainLogistic(positives, negatives, cfg)
	if model.SizeBits() >= totalBits {
		return nil, fmt.Errorf("learned: model (%d bits) exceeds budget (%d bits)", model.SizeBits(), totalBits)
	}
	arrayBits := totalBits - model.SizeBits()

	scores := make([]float64, len(positives))
	for i, k := range positives {
		scores[i] = model.Score(k)
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	boundaries := make([]float64, adaGroups-1)
	for g := 1; g < adaGroups; g++ {
		boundaries[g-1] = sorted[g*len(sorted)/adaGroups]
	}

	bpk := float64(arrayBits) / float64(len(positives))
	baseK := bloom.OptimalK(bpk)
	ks := make([]int, adaGroups)
	for g := 0; g < adaGroups; g++ {
		// Lowest-score group gets baseK+1, highest gets max(1, baseK-2).
		k := baseK + 1 - g
		if k < 1 {
			k = 1
		}
		ks[g] = k
	}

	arr, err := bloom.New(arrayBits, 30, bloom.StrategySplit128)
	if err != nil {
		return nil, err
	}
	a := &AdaBF{model: model, bits: arr, boundaries: boundaries, ks: ks}
	for i, k := range positives {
		a.insert(k, a.group(scores[i]))
	}
	return a, nil
}

func (a *AdaBF) group(score float64) int {
	for g, b := range a.boundaries {
		if score < b {
			return g
		}
	}
	return adaGroups - 1
}

func (a *AdaBF) insert(key []byte, g int) {
	a.bits.AddK(key, a.ks[g])
}

// Contains reports whether key may be a member, checking the hash count of
// the key's score group. Group assignment is deterministic in the key, so
// inserted keys are always re-checked with the same k — zero false
// negatives.
func (a *AdaBF) Contains(key []byte) bool {
	g := a.group(a.model.Score(key))
	return a.bits.ContainsK(key, a.ks[g])
}

// Name identifies the filter in experiment output.
func (a *AdaBF) Name() string { return "Ada-BF" }

// SizeBits returns model plus bit-array footprint.
func (a *AdaBF) SizeBits() uint64 { return a.model.SizeBits() + a.bits.SizeBits() }
