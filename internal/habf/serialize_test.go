package habf

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"testing"
	"testing/quick"
)

func buildForSerde(t testing.TB, fast bool) (*Filter, [][]byte, []WeightedKey) {
	t.Helper()
	pos := genKeys(3000, "ser-p")
	neg := genNegatives(3000, "ser-n", func(i int) float64 { return float64(i%9 + 1) })
	f, err := New(pos, neg, Params{TotalBits: 3000 * 12, Seed: 5, Fast: fast})
	if err != nil {
		t.Fatal(err)
	}
	return f, pos, neg
}

func TestSerializeRoundtrip(t *testing.T) {
	for _, fast := range []bool{false, true} {
		t.Run(fmt.Sprintf("fast=%v", fast), func(t *testing.T) {
			f, pos, neg := buildForSerde(t, fast)
			data, err := f.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			g, err := UnmarshalFilter(data)
			if err != nil {
				t.Fatal(err)
			}
			if g.Name() != f.Name() || g.K() != f.K() || g.SizeBits() != f.SizeBits() {
				t.Fatal("metadata mismatch after roundtrip")
			}
			for _, k := range pos {
				if !g.Contains(k) {
					t.Fatalf("decoded filter lost member %q", k)
				}
			}
			for i := 0; i < 5000; i++ {
				probe := []byte(fmt.Sprintf("probe-%d", i))
				if f.Contains(probe) != g.Contains(probe) {
					t.Fatalf("decoded filter disagrees on %q", probe)
				}
			}
			for _, n := range neg {
				if f.Contains(n.Key) != g.Contains(n.Key) {
					t.Fatalf("decoded filter disagrees on negative %q", n.Key)
				}
			}
		})
	}
}

func TestUnmarshalErrors(t *testing.T) {
	f, _, _ := buildForSerde(t, false)
	good, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"nil":        nil,
		"short":      good[:10],
		"bad magic":  append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated":  good[:len(good)-5],
		"trailing":   append(append([]byte(nil), good...), 0xFF),
		"no-blocks":  good[:20],
		"version":    func() []byte { b := append([]byte(nil), good...); b[4] = 9; return b }(),
		"zero-k":     func() []byte { b := append([]byte(nil), good...); b[6] = 0; return b }(),
		"cell-width": func() []byte { b := append([]byte(nil), good...); b[7] = 7; return b }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

// Property: serialization is a pure function of the filter, and decode ∘
// encode is the identity on query behavior for random probes.
func TestQuickSerializeStable(t *testing.T) {
	f, _, _ := buildForSerde(t, false)
	a, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("MarshalBinary not deterministic")
	}
	g, err := UnmarshalFilter(a)
	if err != nil {
		t.Fatal(err)
	}
	check := func(key []byte) bool { return f.Contains(key) == g.Contains(key) }
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGoldenWireFormat pins MarshalBinary output byte for byte for a
// tiny fixed workload. If this fails the wire format drifted: shipped
// snapshots would stop decoding, so either revert the change or bump
// filterVersion and update this fixture deliberately.
func TestGoldenWireFormat(t *testing.T) {
	pos := make([][]byte, 8)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("gold/%d", i))
	}
	neg := []WeightedKey{
		{Key: []byte("lead/0"), Cost: 5},
		{Key: []byte("lead/1"), Cost: 1},
	}
	f, err := New(pos, neg, Params{TotalBits: 512, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const want = "48414246010003040700000000000000030002054400000000000000010075b19a01000000000000" +
		"11000080018002000000002084000000480000018c00000801000000000100000020000000000400" +
		"000000000000001000000200000000002000000000000000020075b1040000001900000000000000" +
		"00000000000000000000000000000000"
	if got := hex.EncodeToString(data); got != want {
		t.Errorf("wire format drifted:\n got  %s\n want %s", got, want)
	}

	// The checked-in fixture must decode and answer correctly, so format
	// drift in the decoder breaks here too.
	fixture, err := hex.DecodeString(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, decode := range []func([]byte) (*Filter, error){UnmarshalFilter, UnmarshalFilterBorrow} {
		g, err := decode(fixture)
		if err != nil {
			t.Fatalf("golden fixture does not decode: %v", err)
		}
		for _, k := range pos {
			if !g.Contains(k) {
				t.Fatalf("golden fixture lost member %q", k)
			}
		}
	}
}

func TestBorrowRoundtripMatchesCopy(t *testing.T) {
	f, pos, _ := buildForSerde(t, false)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFilterBorrow(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range pos {
		if !g.Contains(k) {
			t.Fatalf("borrowed filter lost member %q", k)
		}
	}
	for i := 0; i < 3000; i++ {
		probe := []byte(fmt.Sprintf("probe-%d", i))
		if f.Contains(probe) != g.Contains(probe) {
			t.Fatalf("borrowed filter disagrees on %q", probe)
		}
	}
	// A borrowed filter must survive Add via copy-on-write, leaving the
	// source bytes untouched.
	before := append([]byte(nil), data...)
	g.Add([]byte("post-load"))
	if !g.Contains([]byte("post-load")) {
		t.Fatal("borrowed filter lost added key")
	}
	if string(before) != string(data) {
		t.Fatal("Add on a borrowed filter mutated the source buffer")
	}
	for _, k := range pos {
		if !g.Contains(k) {
			t.Fatalf("member %q lost after copy-on-write", k)
		}
	}
}

// Regression for the int(uint64) narrowing on block lengths: a length
// field near 2^64 (or, on 32-bit hosts, just above 2^31) must be
// rejected by a 64-bit compare before any slicing or allocation.
func TestUnmarshalBlockLengthOverflow(t *testing.T) {
	f, _, _ := buildForSerde(t, false)
	good, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	k := int(good[6])
	blockLenOff := 17 + k // first block's u64 length prefix
	for _, n := range []uint64{^uint64(0), 1 << 63, 1<<32 + 1, uint64(len(good))} {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(bad[blockLenOff:], n)
		if _, err := UnmarshalFilter(bad); err == nil {
			t.Errorf("block length %d accepted", n)
		}
	}
	// Hostile length inside the bitset payload header as well: declared
	// bit count far beyond the payload.
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(bad[blockLenOff+8+4:], ^uint64(0)) // Bits.n field
	if _, err := UnmarshalFilter(bad); err == nil {
		t.Error("hostile bitset bit count accepted")
	}
}

func TestSerializedSizeReasonable(t *testing.T) {
	f, _, _ := buildForSerde(t, false)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	logical := f.SizeBits() / 8
	if uint64(len(data)) > logical+logical/8+128 {
		t.Errorf("serialized %d bytes for %d logical bytes", len(data), logical)
	}
}
