// CDN cache: the web-caching scenario of §I — "Internet traffic is highly
// skewed and concentrates on some popular files". An edge node keeps a
// filter over its cached object IDs; a false positive sends the request
// into the cache lookup path and then to the origin anyway, and the waste
// scales with how hot the object is.
//
// §I also notes that "some cost information can be or is already being
// monitored": this example runs the full pipeline. A warm-up window of
// origin traffic feeds a space-saving heavy-hitter summary (the Cormode–
// Muthukrishnan-style monitoring the paper cites); its top-k becomes the
// weighted negative-key list for HABF. The measurement window then
// compares BF, WBF, f-HABF and HABF at equal space on wasted cache-path
// entries.
//
//	go run ./examples/cdncache
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	habf "repro"
	"repro/internal/costsketch"
	"repro/internal/dataset"
)

const (
	nCached   = 25000
	nUncached = 25000
	skew      = 1.5   // hot objects dominate
	nWarmup   = 80000 // requests observed by the monitor
	nMeasure  = 200000

	// requestSeed drives the request sampler. Every random source in this
	// example is explicitly seeded so output is reproducible run to run —
	// never use the global math/rand source here.
	requestSeed = 5
)

func main() {
	data := dataset.YCSB(nCached, nUncached, 99)
	cached, uncached := data.Positives, data.Negatives
	rates := dataset.ZipfCosts(nUncached, skew, 99) // ground-truth popularity

	// Request sampler over the uncached objects.
	var totalRate float64
	cum := make([]float64, nUncached)
	for i, r := range rates {
		totalRate += r
		cum[i] = totalRate
	}
	rng := rand.New(rand.NewSource(requestSeed))
	sample := func() int {
		idx := sort.SearchFloat64s(cum, rng.Float64()*totalRate)
		if idx >= nUncached {
			idx = nUncached - 1
		}
		return idx
	}

	// Phase 1 — monitoring: the edge observes origin-bound misses and
	// keeps a bounded top-k summary (no per-object table).
	monitor, err := costsketch.NewSpaceSaving(4096)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nWarmup; i++ {
		monitor.Add(uncached[sample()], 1)
	}
	hot := monitor.Top(4096)
	negatives := make([]habf.WeightedKey, len(hot))
	for i, item := range hot {
		negatives[i] = habf.WeightedKey{Key: item.Key, Cost: float64(item.Count)}
	}
	fmt.Printf("monitor: %d requests observed, %d heavy hitters kept (top estimate %d)\n\n",
		nWarmup, len(hot), hot[0].Count)

	// Phase 2 — build filters at equal space.
	const bitsPerKey = 9.0
	budget := uint64(bitsPerKey * nCached)
	filters := map[string]habf.Filter{}
	if filters["BF"], err = habf.NewBloom(cached, bitsPerKey, habf.BloomSplit128); err != nil {
		log.Fatal(err)
	}
	if filters["WBF"], err = habf.NewWBF(cached, negatives, budget); err != nil {
		log.Fatal(err)
	}
	if filters["f-HABF"], err = habf.NewFast(cached, negatives, budget); err != nil {
		log.Fatal(err)
	}
	if filters["HABF"], err = habf.New(cached, negatives, budget); err != nil {
		log.Fatal(err)
	}

	// Phase 3 — measurement window.
	wasted := map[string]int{}
	for i := 0; i < nMeasure; i++ {
		key := uncached[sample()]
		for name, f := range filters {
			if f.Contains(key) {
				wasted[name]++
			}
		}
	}

	fmt.Printf("cdn cache: %d cached objects, %d uncached, %d requests at skew %.1f, %.0f bits/key\n\n",
		nCached, nUncached, nMeasure, skew, bitsPerKey)
	fmt.Printf("%-8s %18s %18s\n", "filter", "wasted cache hits", "waste rate")
	for _, name := range []string{"BF", "WBF", "f-HABF", "HABF"} {
		fmt.Printf("%-8s %18d %17.4f%%\n", name, wasted[name], 100*float64(wasted[name])/nMeasure)
	}

	fmt.Println("\nHABF learns the hot uncached objects from the monitoring summary and")
	fmt.Println("keeps them out of the cache path entirely; cost-blind filters cannot.")
}
