package habf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Serialization lets a filter built once (e.g. in a compaction worker) be
// shipped to query nodes. The format is self-describing and versioned:
//
//	magic u32 | version u8 | flags u8 (bit0 fast) | k u8 | cellBits u8 |
//	seed i64 | len(h0) u8 | h0 bytes | bloom Bits | expressor Lanes
//
// Only the query-time state is serialized; construction statistics travel
// alongside (they are small) so operators can audit a shipped filter.

const filterVersion = 1

// realMagic is the on-wire magic: "HABF" as a little-endian u32.
const realMagic = uint32(0x46424148)

// MarshalBinary encodes the filter.
func (f *Filter) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var head [17]byte
	binary.LittleEndian.PutUint32(head[0:4], realMagic)
	head[4] = filterVersion
	if f.fast {
		head[5] = 1
	}
	head[6] = uint8(f.k)
	head[7] = uint8(f.he.cells.Width())
	binary.LittleEndian.PutUint64(head[8:16], uint64(f.seed))
	head[16] = uint8(len(f.h0))
	buf.Write(head[:])
	buf.Write(f.h0)

	bloomBytes, err := f.bfBits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(bloomBytes)))
	buf.Write(lenBuf[:])
	buf.Write(bloomBytes)

	cellBytes, err := f.he.cells.MarshalBinary()
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(cellBytes)))
	buf.Write(lenBuf[:])
	buf.Write(cellBytes)
	return buf.Bytes(), nil
}

// UnmarshalFilter decodes a filter produced by MarshalBinary.
func UnmarshalFilter(data []byte) (*Filter, error) {
	if len(data) < 17 {
		return nil, errors.New("habf: truncated filter header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != realMagic {
		return nil, errors.New("habf: bad filter magic")
	}
	if data[4] != filterVersion {
		return nil, fmt.Errorf("habf: unsupported filter version %d", data[4])
	}
	fast := data[5]&1 == 1
	k := int(data[6])
	cellBits := uint(data[7])
	seed := int64(binary.LittleEndian.Uint64(data[8:16]))
	h0Len := int(data[16])
	off := 17
	if len(data) < off+h0Len+8 {
		return nil, errors.New("habf: truncated H0")
	}
	h0 := append([]uint8(nil), data[off:off+h0Len]...)
	off += h0Len

	readBlock := func() ([]byte, error) {
		if len(data) < off+8 {
			return nil, errors.New("habf: truncated block length")
		}
		n := int(binary.LittleEndian.Uint64(data[off : off+8]))
		off += 8
		if n < 0 || len(data) < off+n {
			return nil, errors.New("habf: truncated block")
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}

	bloomBytes, err := readBlock()
	if err != nil {
		return nil, err
	}
	var bfBits bitset.Bits
	if err := bfBits.UnmarshalBinary(bloomBytes); err != nil {
		return nil, fmt.Errorf("habf: bloom: %w", err)
	}
	cellBytes, err := readBlock()
	if err != nil {
		return nil, err
	}
	var cells bitset.Lanes
	if err := cells.UnmarshalBinary(cellBytes); err != nil {
		return nil, fmt.Errorf("habf: expressor: %w", err)
	}
	if off != len(data) {
		return nil, errors.New("habf: trailing bytes")
	}
	if cells.Width() != cellBits {
		return nil, errors.New("habf: cell width mismatch")
	}
	if k < 2 || k > 32 || h0Len != k {
		return nil, fmt.Errorf("habf: inconsistent k=%d, |H0|=%d", k, h0Len)
	}

	p := Params{
		TotalBits: bfBits.Len() + cells.Len()*uint64(cellBits),
		K:         k,
		CellBits:  cellBits,
		Seed:      seed,
		Fast:      fast,
	}.withDefaults()
	fam := newFamily(p)
	for _, idx := range h0 {
		if int(idx) >= fam.size {
			return nil, fmt.Errorf("habf: H0 index %d outside family of %d", idx, fam.size)
		}
	}
	he := &hashExpressor{
		cells: &cells,
		omega: cells.Len(),
		k:     k,
	}
	return &Filter{
		bf:       &readonlyBits{bits: &bfBits},
		bfBits:   &bfBits,
		bloomLen: bfBits.Len(),
		he:       he,
		fam:      fam,
		h0:       h0,
		k:        k,
		fast:     fast,
		seed:     seed,
		params:   p,
	}, nil
}
