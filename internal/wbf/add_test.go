package wbf

import (
	"fmt"
	"testing"
)

// TestAddCachedNegativeStaysQueryable is the regression for the
// elevated-k insert bug: a key in the cost cache is probed with its
// cached (elevated) hash count, so an Add that set only the baseK
// positions left the extra probes unset and the acked key answered
// false — breaking the zero-false-negative contract exactly for the
// churn case the serving stack exists for (a formerly costly negative
// becoming a member). Add must insert with the cached count.
func TestAddCachedNegativeStaysQueryable(t *testing.T) {
	pos := make([][]byte, 3000)
	neg := make([]WeightedKey, 3000)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("add-pos-%06d", i))
		// Skewed costs so the cache holds genuinely elevated counts.
		cost := 1.0
		if i%20 == 0 {
			cost = 1000
		}
		neg[i] = WeightedKey{Key: []byte(fmt.Sprintf("add-neg-%06d", i)), Cost: cost}
	}
	f, err := New(pos, neg, Config{TotalBits: 3000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	if f.CacheSize() == 0 {
		t.Fatal("fixture produced no cached keys")
	}
	elevated := 0
	for key, k := range f.kCache {
		if int(k) > f.baseK {
			elevated++
		}
		f.Add([]byte(key))
		if !f.Contains([]byte(key)) {
			t.Fatalf("acked Add of cached key %q (k=%d, baseK=%d) answers false", key, k, f.baseK)
		}
	}
	if elevated == 0 {
		t.Fatal("no cached key carries an elevated hash count; the fixture does not exercise the bug")
	}
	// The wire round trip must preserve the now-member cached keys too.
	wire, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFilter(wire)
	if err != nil {
		t.Fatal(err)
	}
	for key := range f.kCache {
		if !g.Contains([]byte(key)) {
			t.Fatalf("decoded filter lost added cached key %q", key)
		}
	}
}
