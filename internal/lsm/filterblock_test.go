package lsm

import (
	"bytes"
	"fmt"
	"testing"

	habf "repro"
	ihabf "repro/internal/habf"
)

// habfCodec persists run guards as HABF wire-format blocks and decodes
// them zero-copy, the way a table reader maps an SSTable's filter block.
func habfCodec() *FilterCodec {
	return &FilterCodec{
		Encode: func(f Filter) ([]byte, error) {
			return f.(*habf.HABF).MarshalBinary()
		},
		Decode: func(block []byte) (Filter, error) {
			return habf.UnmarshalHABFBorrow(block)
		},
		// block[6] is k in the filter wire header; aligning the bloom
		// word array keeps reloads zero-copy for any k.
		Align: func(block []byte) int {
			return ihabf.WireAlignOffset(int(block[6]))
		},
	}
}

func habfBuilder(t testing.TB, opts ...habf.Option) FilterBuilder {
	return func(keys [][]byte, level int) Filter {
		f, err := habf.New(keys, nil, uint64(12*len(keys)), opts...)
		if err != nil {
			t.Fatalf("guard build at level %d: %v", level, err)
		}
		return f
	}
}

func TestFilterBlocksServeReads(t *testing.T) {
	s := New(Config{MemtableSize: 128, NewFilter: habfBuilder(t), Codec: habfCodec()})
	put(s, 2000, "fb")
	s.Flush()
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("fb/%06d", i))
		if _, ok := s.Get(key); !ok {
			t.Fatalf("lost key %q behind codec-decoded guards", key)
		}
	}
	st := s.Stats()
	if st.FilterBlockBytes == 0 {
		t.Fatal("no filter block bytes reported with a codec configured")
	}
	// Misses must still be screened by the block-decoded guards.
	s.ResetStats()
	for i := 0; i < 2000; i++ {
		s.Get([]byte(fmt.Sprintf("absent/%06d", i)))
	}
	st = s.Stats()
	var rejects uint64
	for _, r := range st.FilterRejects {
		rejects += r
	}
	if rejects == 0 {
		t.Fatal("block-decoded guards rejected nothing")
	}
}

func TestSaveLoadFilterBlocks(t *testing.T) {
	s := New(Config{MemtableSize: 128, NewFilter: habfBuilder(t), Codec: habfCodec()})
	put(s, 3000, "blk")
	s.Flush()

	var buf bytes.Buffer
	if err := s.SaveFilterBlocks(&buf); err != nil {
		t.Fatal(err)
	}

	// Simulate reopening: drop every guard, then re-attach from the
	// container. No filter is rebuilt.
	for _, r := range s.runs() {
		r.guard = nil
		r.filterBlock = nil
	}
	if err := s.LoadFilterBlocks(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		key := []byte(fmt.Sprintf("blk/%06d", i))
		if _, ok := s.Get(key); !ok {
			t.Fatalf("lost key %q after filter-block reload", key)
		}
	}
	s.ResetStats()
	for i := 0; i < 1000; i++ {
		s.Get([]byte(fmt.Sprintf("missing/%06d", i)))
	}
	var rejects uint64
	for _, r := range s.Stats().FilterRejects {
		rejects += r
	}
	if rejects == 0 {
		t.Fatal("reloaded guards rejected nothing")
	}
}

// Regression: without the codec's Align hook, the container aligned
// block starts only, so any k with 37+k ≢ 0 (mod 8) — every non-default
// K — silently lost the zero-copy reload and decoded by copying.
func TestReloadedFilterBlocksAreZeroCopy(t *testing.T) {
	for _, k := range []int{3, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			s := New(Config{
				MemtableSize: 128,
				NewFilter:    habfBuilder(t, habf.WithK(k)),
				Codec:        habfCodec(),
			})
			put(s, 1000, "zc")
			s.Flush()
			var buf bytes.Buffer
			if err := s.SaveFilterBlocks(&buf); err != nil {
				t.Fatal(err)
			}
			if err := s.LoadFilterBlocks(buf.Bytes()); err != nil {
				t.Fatal(err)
			}
			for _, r := range s.runs() {
				if r.guard == nil {
					continue
				}
				if !r.guard.(*habf.HABF).Borrowed() {
					t.Fatalf("k=%d: reloaded guard copied instead of aliasing the container", k)
				}
			}
		})
	}
}

func TestLoadFilterBlocksRejectsMismatch(t *testing.T) {
	s := New(Config{MemtableSize: 128, NewFilter: habfBuilder(t), Codec: habfCodec()})
	put(s, 500, "a")
	s.Flush()
	var buf bytes.Buffer
	if err := s.SaveFilterBlocks(&buf); err != nil {
		t.Fatal(err)
	}

	// A store with a different topology must refuse the container.
	other := New(Config{MemtableSize: 64, NewFilter: habfBuilder(t), Codec: habfCodec()})
	put(other, 500, "a")
	other.Flush()
	if len(other.runs()) == len(s.runs()) {
		t.Skip("topologies coincide; mismatch case not exercised")
	}
	if err := other.LoadFilterBlocks(buf.Bytes()); err == nil {
		t.Fatal("mismatched topology accepted")
	}

	// Corruption must be caught by the container checksums.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/2] ^= 0x01
	if err := s.LoadFilterBlocks(bad); err == nil {
		t.Fatal("corrupt filter-block container accepted")
	}
}

// A filter-block container fed to the sharded-set loader (or vice
// versa) must fail on the kind discriminator, not silently restore a
// wrongly-routed filter.
func TestContainerKindsDoNotCrossLoad(t *testing.T) {
	s := New(Config{MemtableSize: 128, NewFilter: habfBuilder(t), Codec: habfCodec()})
	put(s, 600, "kind")
	s.Flush()
	var buf bytes.Buffer
	if err := s.SaveFilterBlocks(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := habf.Load(buf.Bytes()); err == nil {
		t.Fatal("habf.Load accepted an LSM filter-block container")
	}

	pos := make([][]byte, 600)
	for i := range pos {
		pos[i] = []byte(fmt.Sprintf("set-%04d", i))
	}
	set, err := habf.NewSharded(pos, nil, 600*12)
	if err != nil {
		t.Fatal(err)
	}
	var setBuf bytes.Buffer
	if err := set.Save(&setBuf); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadFilterBlocks(setBuf.Bytes()); err == nil {
		t.Fatal("LoadFilterBlocks accepted a sharded-set snapshot")
	}
}
