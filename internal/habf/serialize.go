package habf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Serialization lets a filter built once (e.g. in a compaction worker) be
// shipped to query nodes. The format is self-describing and versioned:
//
//	magic u32 | version u8 | flags u8 (bit0 fast) | k u8 | cellBits u8 |
//	seed i64 | len(h0) u8 | h0 bytes | bloom Bits | expressor Lanes
//
// Only the query-time state is serialized; construction statistics travel
// alongside (they are small) so operators can audit a shipped filter.

const filterVersion = 1

// realMagic is the on-wire magic: "HABF" as a little-endian u32.
const realMagic = uint32(0x46424148)

// MarshalBinary encodes the filter.
func (f *Filter) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var head [17]byte
	binary.LittleEndian.PutUint32(head[0:4], realMagic)
	head[4] = filterVersion
	if f.fast {
		head[5] = 1
	}
	head[6] = uint8(f.k)
	head[7] = uint8(f.he.cells.Width())
	binary.LittleEndian.PutUint64(head[8:16], uint64(f.seed))
	head[16] = uint8(len(f.h0))
	buf.Write(head[:])
	buf.Write(f.h0)

	bloomBytes, err := f.bfBits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(bloomBytes)))
	buf.Write(lenBuf[:])
	buf.Write(bloomBytes)

	cellBytes, err := f.he.cells.MarshalBinary()
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(cellBytes)))
	buf.Write(lenBuf[:])
	buf.Write(cellBytes)
	return buf.Bytes(), nil
}

// WireAlignOffset returns the offset within a MarshalBinary payload of
// the first word of the Bloom bit array, for a filter with the given k.
// Containers that want zero-copy loads (internal/snapshot) pad their
// frames so this offset lands 8-byte aligned in the mapped buffer; the
// HashExpressor word array then aligns too, because the fixed framing
// between the two arrays (bloom trailer + length prefix + lanes header)
// is a multiple of 8 bytes.
func WireAlignOffset(k int) int {
	return 17 + k + 8 + 12 // header | H0 | block length | Bits header
}

// UnmarshalFilter decodes a filter produced by MarshalBinary into owned
// memory; data is not retained.
func UnmarshalFilter(data []byte) (*Filter, error) {
	return unmarshalFilter(data, false)
}

// UnmarshalFilterBorrow decodes a filter produced by MarshalBinary
// without copying the two large payloads (Bloom bits, HashExpressor
// cells) when they are 8-byte aligned inside data: the decoded filter
// then serves queries directly from data, which the caller must keep
// alive and unmodified. A post-load Add copies the touched array before
// mutating it (copy-on-first-write), so the buffer is never written.
// Misaligned or big-endian loads silently degrade to copies.
func UnmarshalFilterBorrow(data []byte) (*Filter, error) {
	return unmarshalFilter(data, true)
}

func unmarshalFilter(data []byte, borrow bool) (*Filter, error) {
	if len(data) < 17 {
		return nil, errors.New("habf: truncated filter header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != realMagic {
		return nil, errors.New("habf: bad filter magic")
	}
	if data[4] != filterVersion {
		return nil, fmt.Errorf("habf: unsupported filter version %d", data[4])
	}
	fast := data[5]&1 == 1
	k := int(data[6])
	cellBits := uint(data[7])
	seed := int64(binary.LittleEndian.Uint64(data[8:16]))
	h0Len := int(data[16])
	off := 17
	if len(data) < off+h0Len+8 {
		return nil, errors.New("habf: truncated H0")
	}
	h0 := append([]uint8(nil), data[off:off+h0Len]...)
	off += h0Len

	readBlock := func() ([]byte, error) {
		if len(data) < off+8 {
			return nil, errors.New("habf: truncated block length")
		}
		// Compare in uint64 space before narrowing: int(uint64) wraps on
		// 32-bit hosts, where a 2^32+ε length would pass a naive len check
		// and over-slice (or under-allocate downstream).
		n64 := binary.LittleEndian.Uint64(data[off : off+8])
		off += 8
		if n64 > uint64(len(data)-off) {
			return nil, errors.New("habf: truncated block")
		}
		n := int(n64)
		b := data[off : off+n]
		off += n
		return b, nil
	}

	unmarshalBits := (*bitset.Bits).UnmarshalBinary
	unmarshalLanes := (*bitset.Lanes).UnmarshalBinary
	if borrow {
		unmarshalBits = (*bitset.Bits).UnmarshalBinaryBorrow
		unmarshalLanes = (*bitset.Lanes).UnmarshalBinaryBorrow
	}

	bloomBytes, err := readBlock()
	if err != nil {
		return nil, err
	}
	var bfBits bitset.Bits
	if err := unmarshalBits(&bfBits, bloomBytes); err != nil {
		return nil, fmt.Errorf("habf: bloom: %w", err)
	}
	cellBytes, err := readBlock()
	if err != nil {
		return nil, err
	}
	var cells bitset.Lanes
	if err := unmarshalLanes(&cells, cellBytes); err != nil {
		return nil, fmt.Errorf("habf: expressor: %w", err)
	}
	if off != len(data) {
		return nil, errors.New("habf: trailing bytes")
	}
	if cells.Width() != cellBits {
		return nil, errors.New("habf: cell width mismatch")
	}
	if k < 2 || k > 32 || h0Len != k {
		return nil, fmt.Errorf("habf: inconsistent k=%d, |H0|=%d", k, h0Len)
	}

	p := Params{
		TotalBits: bfBits.Len() + cells.Len()*uint64(cellBits),
		K:         k,
		CellBits:  cellBits,
		Seed:      seed,
		Fast:      fast,
	}.withDefaults()
	fam := newFamily(p)
	for _, idx := range h0 {
		if int(idx) >= fam.size {
			return nil, fmt.Errorf("habf: H0 index %d outside family of %d", idx, fam.size)
		}
	}
	he := &hashExpressor{
		cells: &cells,
		omega: cells.Len(),
		k:     k,
	}
	return &Filter{
		bf:       &readonlyBits{bits: &bfBits},
		borrowed: borrow,
		bfBits:   &bfBits,
		bloomLen: bfBits.Len(),
		he:       he,
		fam:      fam,
		h0:       h0,
		k:        k,
		fast:     fast,
		seed:     seed,
		params:   p,
	}, nil
}
