// Package shard partitions one logical filter across N independent
// shards so a filter service can use every core: shards build in
// parallel at construction, Add takes a per-shard lock instead of a
// global one, and a shard whose accuracy has drifted (too many
// post-construction Adds) is rebuilt in the background and atomically
// swapped in while the other shards keep serving.
//
// The per-shard filter is a pluggable filtercore.Backend — HABF by
// default, but any registered backend (standard Bloom, Xor, WBF, PHBF,
// ...) serves through the same routing, locking, rebuild and snapshot
// machinery. Mutable backends absorb Adds directly; static backends
// (Xor, PHBF) cannot, so the shard buffers added keys as pending —
// still answered with zero false negatives — until the existing
// rebuild-with-atomic-swap path absorbs them into a fresh filter (or,
// on a restored set with no key list to rebuild from, until a snapshot
// persists them through the container's pending-keys frame).
//
// Keys are routed by fingerprint prefix: the top bits of the shared base
// hash (hashes.Base) select the shard, so the per-shard positive and
// negative sets are disjoint and every query touches exactly one shard.
// The same base hash is handed to backends implementing
// filtercore.PreparedQuerier, which re-derive their probe positions from
// it through Mix64 dispersal — full-avalanche and bijective, so in-shard
// bit positions stay uncorrelated with the top bits routing consumed.
// Sets restored from snapshots keep whatever route seed their snapshot
// recorded; when it is not the global BaseSeed, batches still group and
// dispatch per shard but backends re-hash keys themselves.
//
// Unlike a bare filter — whose Add must be externally synchronized
// against readers — a Set is safe for fully concurrent use: any number of
// goroutines may call Contains/ContainsBatch/Add with no external
// locking.
package shard

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/filtercore"
	"repro/internal/habf"
	"repro/internal/hashes"
)

// Config sizes a sharded filter.
type Config struct {
	// Shards is the shard count; it is rounded up to a power of two.
	// Default 8.
	Shards int
	// TotalBits is the overall space budget, divided among shards in
	// proportion to their share of the positive keys. Required.
	TotalBits uint64
	// Params is the per-shard construction template. Its TotalBits field
	// is ignored (the budget comes from Config.TotalBits); its Seed is
	// perturbed per shard so shards hash independently. Non-HABF
	// backends use the fields that apply to them and ignore the rest.
	Params habf.Params
	// RebuildThreshold is the fraction of post-build Adds (relative to
	// the keys present at the last build) that triggers a background
	// rebuild of a shard. Zero means the 2% default; negative disables
	// background rebuilds.
	RebuildThreshold float64
	// Backend names the registered filtercore backend every shard is
	// built with. Empty means the default ("habf").
	Backend string
	// Tuning is the backend's knob string ("k=v,k=v"), parsed and
	// validated against the backend's tuning schema. Empty means every
	// knob at its default. Unset knobs with a non-zero Params equivalent
	// (HABF's K and CellBits) inherit from Params, so the legacy options
	// and the tuning plane describe one configuration.
	Tuning string
}

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 8

// DefaultRebuildThreshold matches the "rebuild once AddedKeys reaches a
// few percent of the original set" guidance of the Add documentation.
const DefaultRebuildThreshold = 0.02

// minShardBits is the smallest per-shard budget; habf.New rejects
// anything under 64 bits, and a tiny shard would be all false positives.
const minShardBits = 128

// Set is a sharded filter. All methods are safe for concurrent use.
type Set struct {
	shards      []*shard
	shift       uint // route = hash >> shift
	routeSeed   uint64
	threshold   float64
	baseParams  habf.Params // construction template with the base seed
	backend     *filtercore.Factory
	tuning      filtercore.Tuning // effective knob set, reused by every (re)build
	tuningStr   string            // canonical form of tuning, cached
	absorbEvery int               // "absorb" knob: restored-shard pending threshold
	bitsPerKey  float64
	scratchPool sync.Pool // *batchScratch, reused across ContainsBatchInto calls
	rebuilds    atomic.Uint64
	rebuildErrs atomic.Uint64
	absorbs     atomic.Uint64
	rebuildWG   sync.WaitGroup
}

type shard struct {
	set *Set

	// epoch counts mutations to the shard's serving state (Add, rebuild
	// swap). Snapshot records it per frame, so a frame is a consistent
	// image of its shard "as of epoch E". Incremented under mu's write
	// side; atomic so Stats can read it lock-free.
	epoch atomic.Uint64

	// addMu serializes writers ahead of mu and is the only way the
	// positives list grows: Add takes addMu then mu's write side, so a
	// holder of addMu alone freezes the shard's key set while readers
	// (who take only mu's read side) keep serving. Snapshot-time pending
	// absorption uses exactly that — build outside every lock with
	// writers queued, then a brief write-locked swap — to capture acked
	// Adds without ever blocking readers. Lock order: addMu before mu.
	addMu sync.Mutex

	// mu guards every mutable field below. Readers (Contains) take the
	// read side; Add and the rebuild swap take the write side.
	mu        sync.RWMutex
	f         filtercore.Backend // nil while the shard has no positive keys
	positives [][]byte           // every key the shard answers true for
	negatives []habf.WeightedKey
	// pending holds keys the current filter does not represent — Adds a
	// static backend refused, or keys whose lazy build failed. Queries
	// consult it after the filter, preserving zero false negatives; a
	// rebuild absorbs it. Invariant under mu: every key in positives is
	// either represented by f or present in pending.
	pending map[string]struct{}
	// sidecar is a mutable overlay a restored static shard absorbs its
	// pending keys into once they cross the absorb threshold: built over
	// the full in-memory positives (a superset of pending), so the
	// pending map can be cleared without breaking zero false negatives.
	// Queries consult it between the filter and the pending map.
	sidecar   filtercore.Backend
	absorbing bool
	baseline  int // keys represented by f at the last (re)build
	// builds counts filter swaps. A background rebuild records it at
	// start and discards its result if another swap (a snapshot-time
	// pending absorb, built from a longer key prefix) landed meanwhile —
	// installing the stale filter would re-pend keys a static backend
	// had already absorbed.
	builds     uint64
	rebuilding bool
	// restored marks a shard whose filter came from a snapshot: its
	// pre-snapshot key list is unknown, so a drift rebuild (which
	// reconstructs from positives) would lose keys and is disabled.
	restored   bool
	bitsPerKey float64
	params     habf.Params // template; TotalBits set per build
}

// New partitions positives and negatives across shards and builds every
// shard in parallel. At least one positive key is required overall;
// individual shards may come up empty and answer false until keys are
// added to them.
func New(positives [][]byte, negatives []habf.WeightedKey, cfg Config) (*Set, error) {
	if len(positives) == 0 {
		return nil, fmt.Errorf("shard: empty positive key set")
	}
	backend, err := filtercore.ByName(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	// Validate every negative up front, including those routed to shards
	// that come up empty (the backend would only see them on a later lazy
	// build, where there is no error channel back to the caller).
	for i, wk := range negatives {
		if wk.Cost < 0 {
			return nil, fmt.Errorf("shard: negative key %d has negative cost %v", i, wk.Cost)
		}
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n)) // round up to a power of two
	}
	threshold := cfg.RebuildThreshold
	if threshold == 0 {
		threshold = DefaultRebuildThreshold
	}
	params := cfg.Params
	if params.Seed == 0 {
		params.Seed = 1
	}
	tun, err := backend.ParseTuning(cfg.Tuning)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	tun, params, err = reconcileTuning(backend, tun, params)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}

	s := &Set{
		shards:      make([]*shard, n),
		shift:       uint(64 - bits.TrailingZeros(uint(n))),
		routeSeed:   hashes.BaseSeed,
		threshold:   threshold,
		baseParams:  params,
		backend:     backend,
		tuning:      tun,
		tuningStr:   tun.String(),
		absorbEvery: tun.Int("absorb"),
		bitsPerKey:  float64(cfg.TotalBits) / float64(len(positives)),
	}

	// Partition by fingerprint prefix.
	posByShard := make([][][]byte, n)
	negByShard := make([][]habf.WeightedKey, n)
	for _, key := range positives {
		id := s.route(key)
		posByShard[id] = append(posByShard[id], key)
	}
	for _, wk := range negatives {
		id := s.route(wk.Key)
		negByShard[id] = append(negByShard[id], wk)
	}

	bitsPerKey := s.bitsPerKey
	for i := range s.shards {
		p := params
		p.Seed = perturbSeed(params.Seed, i)
		s.shards[i] = &shard{
			set:        s,
			positives:  posByShard[i],
			negatives:  negByShard[i],
			bitsPerKey: bitsPerKey,
			params:     p,
		}
	}

	// Build every non-empty shard in parallel.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, sh := range s.shards {
		if len(sh.positives) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			f, err := sh.build(sh.positives)
			if err != nil {
				errs[i] = err
				return
			}
			sh.f = f
			sh.baseline = len(sh.positives)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return s, nil
}

// reconcileTuning makes the legacy HABF Params toggles and the tuning
// knobs describe one configuration: a Params field set through WithK or
// WithCellBits is folded into an unset tuning knob (so snapshots, stats
// and rebuilds report and reuse it), and a set knob is written back into
// the Params template (so construction and validation see it). An
// explicitly set knob wins over the option. Non-HABF backends pass
// through untouched.
func reconcileTuning(backend *filtercore.Factory, tun filtercore.Tuning, p habf.Params) (filtercore.Tuning, habf.Params, error) {
	if backend.Name != filtercore.DefaultBackend {
		return tun, p, nil
	}
	var err error
	if k := tun.Int("k"); k != 0 {
		p.K = k
	} else if p.K != 0 {
		if tun, err = tun.With("k", fmt.Sprint(p.K)); err != nil {
			return tun, p, err
		}
	}
	if cb := tun.Int("cellbits"); cb != 0 {
		p.CellBits = uint(cb)
	} else if p.CellBits != 0 {
		if tun, err = tun.With("cellbits", fmt.Sprint(p.CellBits)); err != nil {
			return tun, p, err
		}
	}
	return tun, p, nil
}

// perturbSeed derives a per-shard seed that is deterministic in the base
// seed but decorrelated across shards (and never the zero value that
// Params would re-default).
func perturbSeed(base int64, i int) int64 {
	seed := int64(hashes.Mix64(uint64(base) ^ uint64(i+1)*0x9e3779b97f4a7c15))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// route returns the shard index for a key: the top log2(N) bits of an
// independent fingerprint.
func (s *Set) route(key []byte) int {
	return int(s.routeHash(key) >> s.shift)
}

// routeHash is the full 64-bit routing fingerprint of a key: the shared
// base hash (hashes.Base) on sets routed under the global BaseSeed — every
// set built by New — and the legacy xx64 construction on sets restored
// from snapshots that recorded an older route seed, whose shard
// assignments were fixed when those snapshots were written.
func (s *Set) routeHash(key []byte) uint64 {
	if s.routeSeed == hashes.BaseSeed {
		return hashes.Base(key)
	}
	return hashes.XXH64Seed(key, s.routeSeed)
}

// build constructs the shard's filter over the given keys with a budget
// proportional to the key count.
func (sh *shard) build(keys [][]byte) (filtercore.Backend, error) {
	totalBits := uint64(sh.bitsPerKey * float64(len(keys)))
	if totalBits < minShardBits {
		totalBits = minShardBits
	}
	return sh.set.backend.Build(keys, sh.negatives, filtercore.BuildConfig{
		TotalBits: totalBits,
		Params:    sh.params,
		Tuning:    sh.set.tuning,
	})
}

// addPending records a key the filter does not represent, under mu's
// write side.
func (sh *shard) addPending(key []byte) {
	if sh.pending == nil {
		sh.pending = make(map[string]struct{})
	}
	sh.pending[string(key)] = struct{}{}
}

// hasPending reports (under either lock side) whether key is buffered.
func (sh *shard) hasPending(key []byte) bool {
	if sh.pending == nil {
		return false
	}
	_, ok := sh.pending[string(key)]
	return ok
}

// drift counts post-build Adds not yet folded into a rebuild: keys the
// mutable filter absorbed degraded plus keys a static filter left
// pending. On a restored shard every in-memory positive is a
// post-restore Add (the snapshot's key list never loads), so the
// positives length is the drift — it keeps counting after a sidecar
// absorb clears the pending map.
func (sh *shard) drift() uint64 {
	if sh.restored {
		return uint64(len(sh.positives))
	}
	var d uint64
	if sh.f != nil {
		d = sh.f.AddedKeys()
	}
	return d + uint64(len(sh.pending))
}

// Contains reports whether key may be a member. Safe for any number of
// concurrent callers, including concurrent Adds.
func (s *Set) Contains(key []byte) bool {
	sh := s.shards[s.route(key)]
	sh.mu.RLock()
	ok := sh.f != nil && sh.f.Contains(key)
	if !ok && sh.sidecar != nil {
		ok = sh.sidecar.Contains(key)
	}
	if !ok {
		ok = sh.hasPending(key)
	}
	sh.mu.RUnlock()
	return ok
}

// ContainsBatch answers one result per key, in order. It is
// ContainsBatchInto with a freshly allocated result slice; batch callers
// that care about steady-state allocations should pool the destination
// and call ContainsBatchInto directly.
func (s *Set) ContainsBatch(keys [][]byte) []bool {
	out := make([]bool, len(keys))
	s.ContainsBatchInto(out, keys)
	return out
}

// minKeysPerWorker is the smallest sub-batch workload that justifies an
// extra worker goroutine: below it, spawn cost eats the parallel win.
const minKeysPerWorker = 64

// batchCPUs caps batch workers at the hardware parallelism actually
// available. GOMAXPROCS above NumCPU (common in container benchmarks and
// -cpu sweeps) cannot make sub-batches run concurrently — extra workers
// would only add spawn and context-switch cost — so the dispatch sizes
// itself by min(GOMAXPROCS, batchCPUs). A variable so dispatch tests on
// single-core hosts can force the multi-worker path.
var batchCPUs = runtime.NumCPU()

// batchScratch is the pooled per-batch working set of ContainsBatchInto.
// Ownership rule: a scratch belongs to exactly one batch call from Get to
// Put; worker goroutines borrow disjoint slices of it and must not touch
// it after their final wg.Done. Key references are cleared before Put so
// the pool never pins caller memory.
type batchScratch struct {
	hashes  []uint64 // base hash per key index
	starts  []int32  // per-shard slot ranges: shard id covers [starts[id], starts[id+1])
	fill    []int32  // gather cursors, starts[:nshards] copied then advanced
	order   []int32  // ids of shards with at least one key, ascending
	perm    []int32  // slot -> original key index
	gkeys   [][]byte // keys grouped by shard, slot-indexed
	ghashes []uint64 // base hashes grouped by shard, slot-indexed
	results []bool   // per-slot answers, scattered to dst via perm
	job     batchJob // embedded so a batch spawns workers without allocating
}

// batchJob is the shared state worker goroutines pull shard sub-batches
// from: an atomic cursor over sc.order. It lives inside batchScratch so
// steady-state batches allocate nothing.
type batchJob struct {
	s      *Set
	out    []bool
	sc     *batchScratch
	hv     []uint64 // sc.ghashes when base hashes are valid for backends, else nil
	cursor atomic.Int32
	wg     sync.WaitGroup
}

// getScratch returns a pooled scratch sized for n keys.
func (s *Set) getScratch(n int) *batchScratch {
	sc, _ := s.scratchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	if cap(sc.hashes) < n {
		sc.hashes = make([]uint64, n)
		sc.ghashes = make([]uint64, n)
		sc.gkeys = make([][]byte, n)
		sc.perm = make([]int32, n)
		sc.results = make([]bool, n)
	}
	sc.hashes = sc.hashes[:n]
	sc.ghashes = sc.ghashes[:n]
	sc.gkeys = sc.gkeys[:n]
	sc.perm = sc.perm[:n]
	sc.results = sc.results[:n]
	nsh := len(s.shards)
	if len(sc.starts) != nsh+1 {
		sc.starts = make([]int32, nsh+1)
		sc.fill = make([]int32, nsh)
		sc.order = make([]int32, 0, nsh)
	}
	clear(sc.starts)
	return sc
}

// putScratch returns a scratch to the pool, dropping every reference to
// caller memory (keys, destination) so pooling never extends lifetimes.
func (s *Set) putScratch(sc *batchScratch) {
	clear(sc.gkeys)
	sc.job.s, sc.job.out, sc.job.sc, sc.job.hv = nil, nil, nil, nil
	s.scratchPool.Put(sc)
}

// ContainsBatchInto writes Contains(keys[i]) into dst[i] for every key.
// dst must have at least len(keys) elements; extra elements are left
// untouched. Steady state allocates nothing: the grouping scratch is
// pooled per Set and worker goroutines are spawned arg-only.
//
// The pipeline hashes each key exactly once (hashes.Base doubles as the
// routing fingerprint and, for PreparedQuerier backends, the probe-
// position source), groups keys by destination shard with a counting
// sort, and runs per-shard sub-batches on up to GOMAXPROCS workers. A
// worker holds exactly one shard read lock at a time — same as Add and
// the rebuild swap on the write side — so the lock graph stays trivially
// acyclic and writers are delayed by at most one sub-batch. Each
// sub-batch walks one shard's memory start to finish, which is also the
// cache-friendly order single-core.
func (s *Set) ContainsBatchInto(dst []bool, keys [][]byte) {
	n := len(keys)
	if n == 0 {
		return
	}
	if n < len(s.shards) || n > 1<<30 {
		// Degenerate batches (fewer keys than shards) would pay more for
		// grouping than per-key routing costs; absurdly large ones would
		// overflow the int32 slot indices. Route individually.
		for i, key := range keys {
			dst[i] = s.Contains(key)
		}
		return
	}
	sc := s.getScratch(n)

	// Pass 1: hash every key once; count keys per shard in starts[id+1].
	shift := s.shift
	for i, key := range keys {
		h := s.routeHash(key)
		sc.hashes[i] = h
		sc.starts[(h>>shift)+1]++
	}

	// Prefix-sum the counts into slot ranges; list the non-empty shards.
	order := sc.order[:0]
	for id := range s.shards {
		c := sc.starts[id+1]
		sc.starts[id+1] = sc.starts[id] + c
		sc.fill[id] = sc.starts[id]
		if c > 0 {
			order = append(order, int32(id))
		}
	}
	sc.order = order

	// Pass 2: gather keys and hashes into shard-contiguous slots.
	for i, key := range keys {
		id := sc.hashes[i] >> shift
		slot := sc.fill[id]
		sc.fill[id] = slot + 1
		sc.gkeys[slot] = key
		sc.ghashes[slot] = sc.hashes[i]
		sc.perm[slot] = int32(i)
	}

	// Execute shard sub-batches, stealing from the shared cursor. The
	// caller is worker zero; extra workers are spawned only when both the
	// host (GOMAXPROCS) and the workload (≥ minKeysPerWorker keys each)
	// justify them. Base hashes are handed to backends only when routing
	// runs under the global BaseSeed — a Set restored from a snapshot
	// with a legacy route seed still groups and batches, but its hash
	// values are not hashes.Base and backends must re-hash.
	job := &sc.job
	job.s, job.out, job.sc = s, dst, sc
	job.hv = nil
	if s.routeSeed == hashes.BaseSeed {
		job.hv = sc.ghashes
	}
	job.cursor.Store(0)
	w := runtime.GOMAXPROCS(0)
	if w > batchCPUs {
		w = batchCPUs
	}
	if w > len(order) {
		w = len(order)
	}
	if byWork := 1 + n/minKeysPerWorker; w > byWork {
		w = byWork
	}
	if w > 1 {
		job.wg.Add(w - 1)
		for i := 1; i < w; i++ {
			go batchWorker(job)
		}
	}
	job.run()
	if w > 1 {
		job.wg.Wait()
	}
	s.putScratch(sc)
}

// batchWorker is the spawn target of extra batch workers. A package-level
// function taking the job pointer keeps the go statement closure-free
// (and therefore allocation-free); its last action is wg.Done, after
// which it never touches the job again, so the caller's Wait-then-Put is
// safe.
func batchWorker(j *batchJob) {
	j.run()
	j.wg.Done()
}

// run claims shard sub-batches off the cursor until none remain.
func (j *batchJob) run() {
	sc := j.sc
	for {
		t := j.cursor.Add(1) - 1
		if int(t) >= len(sc.order) {
			return
		}
		id := sc.order[t]
		j.s.shards[id].containsSub(j, int(sc.starts[id]), int(sc.starts[id+1]))
	}
}

// containsSub answers one shard's slice of the batch under a single read
// lock: backend sub-batch first (the PreparedQuerier form when available,
// with base hashes when valid), then the sidecar/pending overlay for the
// misses — the same filter → sidecar → pending order as Contains — and
// finally the scatter back to the caller's dst through the slot
// permutation. Slots of distinct shards are disjoint, so workers write
// disjoint dst elements.
func (sh *shard) containsSub(j *batchJob, lo, hi int) {
	sc := j.sc
	keys := sc.gkeys[lo:hi]
	res := sc.results[lo:hi]
	sh.mu.RLock()
	switch f := sh.f.(type) {
	case filtercore.PreparedQuerier:
		var hv []uint64
		if j.hv != nil {
			hv = j.hv[lo:hi]
		}
		f.ContainsBatchInto(res, keys, hv)
	case nil:
		for i := range res {
			res[i] = false // scratch may hold a previous batch's answers
		}
	default:
		for i, key := range keys {
			res[i] = f.Contains(key)
		}
	}
	if sh.sidecar != nil || len(sh.pending) > 0 {
		for i, ok := range res {
			if ok {
				continue
			}
			if sh.sidecar != nil {
				ok = sh.sidecar.Contains(keys[i])
			}
			if !ok && sh.pending != nil {
				_, ok = sh.pending[string(keys[i])]
			}
			res[i] = ok
		}
	}
	sh.mu.RUnlock()
	for i := lo; i < hi; i++ {
		j.out[sc.perm[i]] = sc.results[i]
	}
}

// Add inserts a key. It takes only the owning shard's lock; queries to
// other shards proceed untouched, and once the shard's post-build Adds
// exceed the rebuild threshold a background rebuild is kicked off. A
// static backend's filter cannot absorb the key directly; it is buffered
// as pending — queryable immediately, zero false negatives — until the
// rebuild swap folds it in.
func (s *Set) Add(key []byte) {
	sh := s.shards[s.route(key)]
	sh.addMu.Lock()
	defer sh.addMu.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.positives = append(sh.positives, key)
	sh.epoch.Add(1)
	if sh.f == nil {
		// First key(s) ever routed here: build inline over everything
		// accumulated so far (rare, tiny). If construction fails (it
		// cannot for HABF — params and costs were validated up front —
		// but a static backend can refuse, e.g. Xor on duplicates), the
		// key is buffered as pending so it still answers true, and the
		// next Add retries with the full list.
		if f, err := sh.build(sh.positives); err == nil {
			sh.f = f
			sh.baseline = len(sh.positives)
			sh.pending = nil
		} else {
			s.rebuildErrs.Add(1)
			sh.addPending(key)
		}
		return
	}
	if err := sh.f.Add(key); err != nil {
		// Static backend: serve the key from the pending buffer — unless
		// the filter already answers true for it (a re-Add of an existing
		// member, or a false-positive collision), where pending would add
		// only drift and rebuild churn. Either way the key is in
		// positives, so the next rebuild represents it directly and the
		// answer stays true forever. A restored shard that has already
		// absorbed into a sidecar sends the key straight there instead.
		if !sh.f.Contains(key) {
			if sh.restored && sh.sidecar != nil {
				sh.sidecar.Add(key)
			} else {
				sh.addPending(key)
			}
		}
	}
	if s.threshold > 0 && !sh.rebuilding && !sh.restored &&
		float64(sh.drift()) >= s.threshold*float64(sh.baseline) {
		sh.rebuilding = true
		s.rebuildWG.Add(1)
		go sh.rebuild()
	}
	// A restored static shard cannot drift-rebuild (no full key list in
	// memory), so its buffered Adds are bounded differently: once they
	// cross the absorb threshold, a background absorb folds everything
	// added since restore into a fresh mutable sidecar.
	if sh.restored && s.absorbEvery > 0 && !sh.absorbing &&
		(len(sh.pending) >= s.absorbEvery ||
			(sh.sidecar != nil && sh.sidecar.AddedKeys() >= uint64(s.absorbEvery))) {
		sh.absorbing = true
		s.rebuildWG.Add(1)
		go sh.absorbIntoSidecar()
	}
}

// absorbIntoSidecar bounds a restored static shard's buffered Adds:
// it builds a mutable sidecar over every key added since restore (the
// shard's in-memory positives, a superset of the pending map) and
// installs it in place of the pending map. The same discipline as the
// snapshot-time absorb applies — addMu freezes the key list while the
// sidecar builds outside every lock, then a brief write-locked swap —
// so readers are never blocked and zero false negatives hold
// throughout.
func (sh *shard) absorbIntoSidecar() {
	defer sh.set.rebuildWG.Done()
	sh.addMu.Lock()
	defer sh.addMu.Unlock()

	sh.mu.RLock()
	n0 := len(sh.positives)
	keys := sh.positives[:n0:n0]
	sh.mu.RUnlock()

	side, err := sh.set.buildSidecar(keys)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.absorbing = false
	if err != nil {
		sh.set.rebuildErrs.Add(1)
		return
	}
	sh.sidecar = side
	sh.pending = nil
	sh.epoch.Add(1)
	sh.set.absorbs.Add(1)
}

// buildSidecar builds the mutable overlay restored static shards absorb
// into: a standard Bloom filter at default tuning over keys, sized by
// the set's bits-per-key budget.
func (s *Set) buildSidecar(keys [][]byte) (filtercore.Backend, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("shard: empty sidecar key set")
	}
	side, err := filtercore.ByName("bloom")
	if err != nil {
		return nil, err
	}
	totalBits := uint64(s.bitsPerKey * float64(len(keys)))
	if totalBits < minShardBits {
		totalBits = minShardBits
	}
	return side.Build(keys, nil, filtercore.BuildConfig{TotalBits: totalBits})
}

// rebuild reconstructs the shard's filter over its full current key set —
// re-running the optimization that per-key Add cannot, and absorbing any
// pending keys a static backend buffered — and swaps it in. Construction
// happens outside the lock; only the final swap (plus a replay of keys
// added mid-rebuild) blocks the shard's readers.
func (sh *shard) rebuild() {
	defer sh.set.rebuildWG.Done()

	sh.mu.RLock()
	n0 := len(sh.positives)
	b0 := sh.builds
	// Three-index slice: appends by concurrent Adds reallocate instead of
	// writing into the snapshot's backing array.
	snap := sh.positives[:n0:n0]
	sh.mu.RUnlock()

	f, err := sh.build(snap)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.rebuilding = false
	if err != nil {
		sh.set.rebuildErrs.Add(1)
		return
	}
	if sh.builds != b0 {
		// A snapshot-time absorb swapped a filter built from a longer
		// prefix while we were building; ours is stale. Installing it
		// would demote already-absorbed keys back to pending (or, on a
		// mutable backend, to degraded per-key re-Adds) and could let a
		// concurrent Save frame miss acked keys.
		return
	}
	sh.swap(f, n0)
	sh.set.rebuilds.Add(1)
}

// swap installs a filter built over positives[:built], replaying the
// keys added since: a mutable backend absorbs them, a static one leaves
// them pending. Callers hold mu's write side.
func (sh *shard) swap(f filtercore.Backend, built int) {
	sh.pending = nil
	absorbed := built
	for _, key := range sh.positives[built:] { // added while we were building
		if f.Add(key) == nil {
			absorbed++
		} else {
			sh.addPending(key)
		}
	}
	sh.f = f
	sh.baseline = absorbed
	sh.builds++
	sh.epoch.Add(1)
}

// WaitRebuilds blocks until every background rebuild in flight at call
// time (and any they cascade into) has finished. Intended for tests and
// orderly shutdown.
func (s *Set) WaitRebuilds() { s.rebuildWG.Wait() }

// NumShards returns the shard count.
func (s *Set) NumShards() int { return len(s.shards) }

// Epoch returns the set's mutation epoch: the sum of every shard's
// per-shard epoch. Each Add, rebuild swap and sidecar absorb bumps its
// shard's counter, so the sum is monotone under serving traffic and two
// observations are equal only if no mutation landed between them —
// which is exactly the freshness signal replication needs. A restored
// set resumes at the epochs recorded in its snapshot frames (plus one
// bump per shard that re-buffered pending keys), so a follower compares
// epochs it fetched from the primary, never locally recomputed ones.
func (s *Set) Epoch() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.epoch.Load()
	}
	return total
}

// Backend returns the registry name of the backend every shard uses.
func (s *Set) Backend() string { return s.backend.Name }

// Tuning returns the effective knob set in canonical form — every knob
// of the backend's schema with its explicit or default value, sorted,
// "k=v,k=v". It is what snapshots persist and /v1/stats reports.
func (s *Set) Tuning() string { return s.tuningStr }

// Name identifies the filter in experiment output, e.g. "Sharded[8×HABF]".
func (s *Set) Name() string {
	return fmt.Sprintf("Sharded[%d×%s]", len(s.shards), s.backend.InnerName(s.baseParams))
}

// SizeBits returns the summed query-time footprint of every shard.
func (s *Set) SizeBits() uint64 {
	var total uint64
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sh.f != nil {
			total += sh.f.SizeBits()
		}
		if sh.sidecar != nil {
			total += sh.sidecar.SizeBits()
		}
		sh.mu.RUnlock()
	}
	return total
}

// Stats is a point-in-time summary across shards.
type Stats struct {
	Shards        int
	Keys          uint64 // total positive keys currently represented
	Added         uint64 // Adds not yet folded into a rebuild (incl. pending)
	Pending       uint64 // Adds a static backend buffered outside its filter
	Rebuilds      uint64 // background rebuilds completed
	RebuildErrors uint64
	// Absorbs counts sidecar absorbs on restored static shards: pending
	// maps folded into a mutable overlay once they crossed the backend's
	// "absorb" tuning knob.
	Absorbs  uint64
	SizeBits uint64
	// Restored counts shards serving a snapshot-restored filter. Those
	// shards do not auto-rebuild on drift (their pre-snapshot key list is
	// not in memory); rotate them with a full rebuild when Added grows.
	Restored int
}

// ShardInfo describes one shard at a point in time — the per-shard
// detail behind Stats, for operational surfaces (a serving daemon's
// stats endpoint) that want to see routing balance and drift per shard.
type ShardInfo struct {
	ID         int    `json:"id"`
	Keys       int    `json:"keys"`       // positive keys represented
	Added      uint64 `json:"added"`      // Adds not yet folded into a rebuild
	Pending    uint64 `json:"pending"`    // static-backend Adds served from the pending buffer
	Epoch      uint64 `json:"epoch"`      // mutation epoch (Adds + rebuild swaps)
	SizeBits   uint64 `json:"size_bits"`  // query-time footprint
	Restored   bool   `json:"restored"`   // serving a snapshot-restored filter
	Rebuilding bool   `json:"rebuilding"` // background rebuild in flight
	Sidecar    bool   `json:"sidecar"`    // restored shard absorbed pending into a sidecar
}

// ShardInfos samples every shard, one at a time (totals are approximate
// under concurrent writes, like Stats).
func (s *Set) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		info := ShardInfo{
			ID:         i,
			Keys:       len(sh.positives),
			Added:      sh.drift(),
			Pending:    uint64(len(sh.pending)),
			Epoch:      sh.epoch.Load(),
			Restored:   sh.restored,
			Rebuilding: sh.rebuilding,
			Sidecar:    sh.sidecar != nil,
		}
		if sh.f != nil {
			info.SizeBits = sh.f.SizeBits()
		}
		if sh.sidecar != nil {
			info.SizeBits += sh.sidecar.SizeBits()
		}
		sh.mu.RUnlock()
		out[i] = info
	}
	return out
}

// Stats snapshots the set. Shards are sampled one at a time, so totals
// are approximate under concurrent writes.
func (s *Set) Stats() Stats {
	st := Stats{
		Shards:        len(s.shards),
		Rebuilds:      s.rebuilds.Load(),
		RebuildErrors: s.rebuildErrs.Load(),
		Absorbs:       s.absorbs.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		st.Keys += uint64(len(sh.positives))
		st.Added += sh.drift()
		st.Pending += uint64(len(sh.pending))
		if sh.restored {
			st.Restored++
		}
		if sh.f != nil {
			st.SizeBits += sh.f.SizeBits()
		}
		if sh.sidecar != nil {
			st.SizeBits += sh.sidecar.SizeBits()
		}
		sh.mu.RUnlock()
	}
	return st
}
