package learned

import (
	"math"
	"math/rand"
)

// GRU is the paper's actual learned model (§V-A): "a 16-dimensional
// character-level RNN (GRU, in particular) ... with a 32-dimensional
// embedding layer", implemented from scratch with full BPTT training.
//
// It is an order of magnitude slower than the hashed-trigram logistic
// model this repository uses in the figure harness (which is why the
// harness defaults to the cheap model — the paper's point about learned-
// filter construction cost only gets stronger), but it is available for
// fidelity: TrainGRU produces a Model usable anywhere Logistic is.
type GRU struct {
	hidden int
	embDim int
	maxLen int

	emb []float32 // 256 × embDim

	wz, wr, wh []float32 // hidden × embDim
	uz, ur, uh []float32 // hidden × hidden
	bz, br, bh []float32 // hidden

	wOut []float32 // hidden
	bOut float32
}

// GRUConfig tunes architecture and training.
type GRUConfig struct {
	Hidden int     // default 16 (the paper's dimension)
	EmbDim int     // default 32 (the paper's embedding width)
	MaxLen int     // truncate keys beyond this many bytes; default 48
	Epochs int     // default 2
	LR     float64 // default 0.05
	Seed   int64   // default 1
}

func (c GRUConfig) withDefaults() GRUConfig {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.EmbDim == 0 {
		c.EmbDim = 32
	}
	if c.MaxLen == 0 {
		c.MaxLen = 48
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TrainGRU fits the recurrent classifier on the labelled key sets.
func TrainGRU(positives, negatives [][]byte, cfg GRUConfig) *GRU {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	H, D := cfg.Hidden, cfg.EmbDim
	g := &GRU{
		hidden: H,
		embDim: D,
		maxLen: cfg.MaxLen,
		emb:    randSlice(rng, 256*D, 0.3),
		wz:     randSlice(rng, H*D, 0.25),
		wr:     randSlice(rng, H*D, 0.25),
		wh:     randSlice(rng, H*D, 0.25),
		uz:     randSlice(rng, H*H, 0.25),
		ur:     randSlice(rng, H*H, 0.25),
		uh:     randSlice(rng, H*H, 0.25),
		bz:     make([]float32, H),
		br:     make([]float32, H),
		bh:     make([]float32, H),
		wOut:   randSlice(rng, H, 0.25),
	}

	type example struct {
		key   []byte
		label float32
	}
	examples := make([]example, 0, len(positives)+len(negatives))
	for _, k := range positives {
		examples = append(examples, example{k, 1})
	}
	for _, k := range negatives {
		examples = append(examples, example{k, 0})
	}

	ws := newGRUWorkspace(H, D, cfg.MaxLen)
	lr := float32(cfg.LR)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(examples), func(i, j int) {
			examples[i], examples[j] = examples[j], examples[i]
		})
		for _, ex := range examples {
			g.step(ex.key, ex.label, lr, ws)
		}
		lr *= 0.6
	}
	return g
}

func randSlice(rng *rand.Rand, n int, scale float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = (rng.Float32()*2 - 1) * scale
	}
	return out
}

// gruWorkspace holds per-example activations so training allocates once.
type gruWorkspace struct {
	// Per step t: pre-activations and gates.
	z, r, hc, h [][]float32 // each maxLen+1 × hidden (h[0] = zero state)
	havg        []float32   // running sum of hidden states (mean pooling)
	xs          []int       // embedded byte per step
	dh, dz, dr, dhc,
	tmp, dx []float32
}

func newGRUWorkspace(h, d, maxLen int) *gruWorkspace {
	mk := func() [][]float32 {
		out := make([][]float32, maxLen+1)
		for i := range out {
			out[i] = make([]float32, h)
		}
		return out
	}
	return &gruWorkspace{
		z: mk(), r: mk(), hc: mk(), h: mk(),
		havg: make([]float32, h),
		xs:   make([]int, maxLen),
		dh:   make([]float32, h),
		dz:   make([]float32, h),
		dr:   make([]float32, h),
		dhc:  make([]float32, h),
		tmp:  make([]float32, h),
		dx:   make([]float32, d),
	}
}

func sigmoid32(x float32) float32 {
	switch {
	case x > 20:
		return 1
	case x < -20:
		return 0
	}
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func tanh32(x float32) float32 { return float32(math.Tanh(float64(x))) }

// forward runs the recurrence, returns the prediction and fills ws when
// train is true. n is the number of steps taken.
func (g *GRU) forward(key []byte, ws *gruWorkspace, train bool) (p float32, n int) {
	H, D := g.hidden, g.embDim
	n = len(key)
	if n > g.maxLen {
		n = g.maxLen
	}
	hPrev := ws.h[0]
	for i := range hPrev {
		hPrev[i] = 0
	}
	for i := range ws.havg {
		ws.havg[i] = 0
	}
	for t := 0; t < n; t++ {
		b := int(key[t])
		if train {
			ws.xs[t] = b
		}
		x := g.emb[b*D : (b+1)*D]
		z, r, hc, h := ws.z[t+1], ws.r[t+1], ws.hc[t+1], ws.h[t+1]
		for i := 0; i < H; i++ {
			var az, ar float32
			wzRow := g.wz[i*D : (i+1)*D]
			wrRow := g.wr[i*D : (i+1)*D]
			for j, xv := range x {
				az += wzRow[j] * xv
				ar += wrRow[j] * xv
			}
			uzRow := g.uz[i*H : (i+1)*H]
			urRow := g.ur[i*H : (i+1)*H]
			for j, hv := range hPrev {
				az += uzRow[j] * hv
				ar += urRow[j] * hv
			}
			z[i] = sigmoid32(az + g.bz[i])
			r[i] = sigmoid32(ar + g.br[i])
		}
		for i := 0; i < H; i++ {
			var ah float32
			whRow := g.wh[i*D : (i+1)*D]
			for j, xv := range x {
				ah += whRow[j] * xv
			}
			uhRow := g.uh[i*H : (i+1)*H]
			for j, hv := range hPrev {
				ah += uhRow[j] * (r[j] * hv)
			}
			hc[i] = tanh32(ah + g.bh[i])
			h[i] = (1-z[i])*hPrev[i] + z[i]*hc[i]
			ws.havg[i] += h[i]
		}
		hPrev = h
	}
	// Mean-pooled readout: averaging the hidden states gives every time
	// step a direct gradient path, which a 16-dim GRU needs on 40+-char
	// keys (a last-state readout trains ~not at all at this scale).
	if n == 0 {
		return sigmoid32(g.bOut), 0
	}
	inv := float32(1) / float32(n)
	var logit float32 = g.bOut
	for i := 0; i < H; i++ {
		logit += g.wOut[i] * ws.havg[i] * inv
	}
	return sigmoid32(logit), n
}

// step runs one SGD update with full backpropagation through time.
func (g *GRU) step(key []byte, label, lr float32, ws *gruWorkspace) {
	H, D := g.hidden, g.embDim
	p, n := g.forward(key, ws, true)
	if n == 0 {
		return
	}
	gOut := p - label // dL/dlogit for logistic loss
	inv := float32(1) / float32(n)

	dh := ws.dh
	dpool := make([]float32, H)
	for i := 0; i < H; i++ {
		dpool[i] = gOut * g.wOut[i] * inv // flows into every h_t
		g.wOut[i] -= lr * gOut * ws.havg[i] * inv
		dh[i] = 0
	}
	g.bOut -= lr * gOut

	for t := n; t >= 1; t-- {
		for i := 0; i < H; i++ {
			dh[i] += dpool[i]
		}
		z, r, hc := ws.z[t], ws.r[t], ws.hc[t]
		hPrev := ws.h[t-1]
		x := g.emb[ws.xs[t-1]*D : (ws.xs[t-1]+1)*D]

		dz, dr, dhc, tmp, dx := ws.dz, ws.dr, ws.dhc, ws.tmp, ws.dx
		for i := 0; i < H; i++ {
			dzi := dh[i] * (hc[i] - hPrev[i]) * z[i] * (1 - z[i])
			dhci := dh[i] * z[i] * (1 - hc[i]*hc[i])
			dz[i] = dzi
			dhc[i] = dhci
			tmp[i] = dh[i] * (1 - z[i]) // direct path into h_{t-1}
		}
		// Through the candidate's Uh (r ⊙ hPrev) term.
		for i := 0; i < H; i++ {
			dr[i] = 0
		}
		for i := 0; i < H; i++ {
			uhRow := g.uh[i*H : (i+1)*H]
			for j := 0; j < H; j++ {
				grad := dhc[i] * uhRow[j]
				dr[j] += grad * hPrev[j]
				tmp[j] += grad * r[j]
			}
		}
		for i := 0; i < H; i++ {
			dr[i] *= r[i] * (1 - r[i])
		}
		// Recurrent contributions of the gate pre-activations.
		for i := 0; i < H; i++ {
			uzRow := g.uz[i*H : (i+1)*H]
			urRow := g.ur[i*H : (i+1)*H]
			for j := 0; j < H; j++ {
				tmp[j] += dz[i]*uzRow[j] + dr[i]*urRow[j]
			}
		}
		// Parameter updates and input gradient.
		for j := 0; j < D; j++ {
			dx[j] = 0
		}
		for i := 0; i < H; i++ {
			wzRow := g.wz[i*D : (i+1)*D]
			wrRow := g.wr[i*D : (i+1)*D]
			whRow := g.wh[i*D : (i+1)*D]
			for j := 0; j < D; j++ {
				dx[j] += dz[i]*wzRow[j] + dr[i]*wrRow[j] + dhc[i]*whRow[j]
				wzRow[j] -= lr * dz[i] * x[j]
				wrRow[j] -= lr * dr[i] * x[j]
				whRow[j] -= lr * dhc[i] * x[j]
			}
			uzRow := g.uz[i*H : (i+1)*H]
			urRow := g.ur[i*H : (i+1)*H]
			uhRow := g.uh[i*H : (i+1)*H]
			for j := 0; j < H; j++ {
				uzRow[j] -= lr * dz[i] * hPrev[j]
				urRow[j] -= lr * dr[i] * hPrev[j]
				uhRow[j] -= lr * dhc[i] * (r[j] * hPrev[j])
			}
			g.bz[i] -= lr * dz[i]
			g.br[i] -= lr * dr[i]
			g.bh[i] -= lr * dhc[i]
		}
		embRow := g.emb[ws.xs[t-1]*D : (ws.xs[t-1]+1)*D]
		for j := 0; j < D; j++ {
			embRow[j] -= lr * dx[j]
		}
		copy(dh, tmp)
	}
}

// Score returns the membership probability estimate for key.
func (g *GRU) Score(key []byte) float64 {
	ws := newGRUWorkspace(g.hidden, g.embDim, g.maxLen)
	p, _ := g.forward(key, ws, false)
	return float64(p)
}

// SizeBits charges 32 bits per parameter, embeddings included.
func (g *GRU) SizeBits() uint64 {
	n := len(g.emb) + len(g.wz) + len(g.wr) + len(g.wh) +
		len(g.uz) + len(g.ur) + len(g.uh) +
		len(g.bz) + len(g.br) + len(g.bh) + len(g.wOut) + 1
	return uint64(n) * 32
}

var _ Model = (*GRU)(nil)
