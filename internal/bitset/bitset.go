// Package bitset provides the low-level bit storage shared by every filter
// in this repository: a plain bit vector (Bits) and a packed array of
// fixed-width unsigned lanes (Lanes).
//
// Both types are deliberately simple: no concurrency control (filters are
// built single-threaded and queried read-only), explicit sizes, and binary
// serialization so filters can report and persist their exact footprint.
package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Bits is a fixed-length bit vector. The zero value is an empty vector;
// use New to allocate one with a given length.
type Bits struct {
	words []uint64
	n     uint64
}

// New returns a bit vector with n bits, all zero.
func New(n uint64) *Bits {
	return &Bits{
		words: make([]uint64, (n+63)/64),
		n:     n,
	}
}

// Len returns the number of bits in the vector.
func (b *Bits) Len() uint64 { return b.n }

// SizeBytes returns the heap footprint of the payload in bytes.
func (b *Bits) SizeBytes() uint64 { return uint64(len(b.words)) * 8 }

// Set sets bit i to 1. It panics if i is out of range.
func (b *Bits) Set(i uint64) {
	if i >= b.n {
		panic(fmt.Sprintf("bitset: Set(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] |= 1 << (i & 63)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (b *Bits) Clear(i uint64) {
	if i >= b.n {
		panic(fmt.Sprintf("bitset: Clear(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] &^= 1 << (i & 63)
}

// Test reports whether bit i is 1. It panics if i is out of range.
func (b *Bits) Test(i uint64) bool {
	if i >= b.n {
		panic(fmt.Sprintf("bitset: Test(%d) out of range [0,%d)", i, b.n))
	}
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// OnesCount returns the number of set bits.
func (b *Bits) OnesCount() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// FillRatio returns the fraction of set bits, in [0,1].
// It returns 0 for an empty vector.
func (b *Bits) FillRatio() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.OnesCount()) / float64(b.n)
}

// Reset clears every bit.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a deep copy of the vector.
func (b *Bits) Clone() *Bits {
	c := &Bits{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Equal reports whether two vectors have identical length and contents.
func (b *Bits) Equal(o *Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Union ORs o into b. Both vectors must have the same length.
func (b *Bits) Union(o *Bits) error {
	if b.n != o.n {
		return fmt.Errorf("bitset: union length mismatch %d != %d", b.n, o.n)
	}
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return nil
}

// Intersect ANDs o into b. Both vectors must have the same length.
func (b *Bits) Intersect(o *Bits) error {
	if b.n != o.n {
		return fmt.Errorf("bitset: intersect length mismatch %d != %d", b.n, o.n)
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return nil
}

const bitsMagic = uint32(0xb1750001)

// MarshalBinary encodes the vector as a self-describing byte stream.
func (b *Bits) MarshalBinary() ([]byte, error) {
	out := make([]byte, 12+len(b.words)*8)
	binary.LittleEndian.PutUint32(out[0:4], bitsMagic)
	binary.LittleEndian.PutUint64(out[4:12], b.n)
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[12+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a stream produced by MarshalBinary.
func (b *Bits) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return errors.New("bitset: truncated header")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != bitsMagic {
		return errors.New("bitset: bad magic")
	}
	n := binary.LittleEndian.Uint64(data[4:12])
	nw := int((n + 63) / 64)
	if len(data) != 12+nw*8 {
		return fmt.Errorf("bitset: want %d payload bytes, have %d", nw*8, len(data)-12)
	}
	b.n = n
	b.words = make([]uint64, nw)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[12+i*8:])
	}
	return nil
}
