// Package router fans membership queries out across a replica set — a
// primary habfserved and its snapshot-shipping followers — over the
// binary wire protocol, with tail-latency hedging and health-based
// replica ejection.
//
// A ContainsBatch is split into contiguous chunks, one per healthy
// replica, so a large batch rides every replica's cores at once. Each
// chunk is hedged: if its first request has not answered within
// HedgeAfter, the identical chunk is sent to a second replica and the
// first arrival wins — the standard tail-at-scale defense, spending a
// bounded amount of duplicate work to cut p99 on a stalled replica.
//
// Replicas are ejected from the rotation when a request to them fails
// (connect error, handshake failure, timeout) and, optionally, when
// their mutation epoch falls more than StaleEpochSlack behind the
// freshest replica — a follower mid-resync stops serving stale answers
// through the router. Run's health loop reprobes ejected replicas with
// Ping+Epoch and restores them once they answer and have caught up.
// Because every backend answers membership with zero false negatives
// from any epoch's snapshot, routing to a slightly stale replica is
// safe; the epoch fence bounds *how* stale "slightly" may get.
//
// The router pools one wire.Client per in-flight request per replica
// (the client is synchronous and single-goroutine by design), and
// copies results out of each client's reused buffers while it still
// owns the connection.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// ErrNoReplicas is returned when every replica is ejected.
var ErrNoReplicas = errors.New("router: no healthy replicas")

// Config assembles a Router.
type Config struct {
	// Replicas are binary-listener addresses ("host:port"). Required,
	// at least one. Order fixes the hedge ring: chunk i's hedge goes to
	// the next healthy replica after its primary target.
	Replicas []string

	// HedgeAfter is how long a chunk may be outstanding before the same
	// chunk is sent to a second replica. 0 disables hedging. Default
	// 2ms — a few times the expected batch round-trip on a LAN.
	HedgeAfter time.Duration

	// RequestTimeout bounds one request round-trip; a replica that
	// exceeds it is ejected. Default 2s.
	RequestTimeout time.Duration

	// ReprobeInterval is the health loop's cadence: how often ejected
	// replicas are reprobed and healthy ones epoch-polled. Default 250ms.
	ReprobeInterval time.Duration

	// StaleEpochSlack is how many epochs a replica may trail the
	// freshest one before the health loop ejects it as stale.
	// Meaningful only while Run is active.
	StaleEpochSlack uint64

	// DisableStaleEject turns the epoch fence off: replicas are ejected
	// only on request failure.
	DisableStaleEject bool

	// MinChunk is the smallest batch slice worth fanning out; batches
	// are split into at most len(keys)/MinChunk chunks so a 10-key
	// batch doesn't pay 3 round-trips. Default 32.
	MinChunk int

	// PoolSize caps idle pooled connections per replica. Default 4.
	PoolSize int

	// Logf, when set, receives one line per ejection and restore.
	Logf func(format string, args ...any)
}

// Stats counts router activity since construction.
type Stats struct {
	Batches    uint64 // ContainsBatch calls
	Keys       uint64 // keys routed
	Hedges     uint64 // hedge requests sent
	HedgeWins  uint64 // chunks whose hedge answered first
	Ejections  uint64 // replicas removed (failures and staleness)
	StaleEject uint64 // the subset ejected by the epoch fence
	Reprobes   uint64 // successful reprobes that restored a replica
	Healthy    int    // replicas currently in rotation
}

// replica is one backend address plus its health state and conn pool.
type replica struct {
	addr    string
	healthy atomic.Bool
	epoch   atomic.Uint64

	mu   sync.Mutex
	pool []*wire.Client
}

// get returns a pooled connection or dials a fresh one.
func (rep *replica) get() (*wire.Client, error) {
	rep.mu.Lock()
	if n := len(rep.pool); n > 0 {
		c := rep.pool[n-1]
		rep.pool = rep.pool[:n-1]
		rep.mu.Unlock()
		return c, nil
	}
	rep.mu.Unlock()
	return wire.Dial(rep.addr)
}

// put returns a connection to the pool, closing it if the replica has
// been ejected meanwhile or the pool is full.
func (rep *replica) put(c *wire.Client, cap int) {
	rep.mu.Lock()
	if rep.healthy.Load() && len(rep.pool) < cap {
		rep.pool = append(rep.pool, c)
		rep.mu.Unlock()
		return
	}
	rep.mu.Unlock()
	c.Close()
}

// drain closes every pooled connection.
func (rep *replica) drain() {
	rep.mu.Lock()
	pool := rep.pool
	rep.pool = nil
	rep.mu.Unlock()
	for _, c := range pool {
		c.Close()
	}
}

// Router routes ContainsBatch calls across replicas. Safe for
// concurrent use.
type Router struct {
	cfg      Config
	replicas []*replica
	rr       atomic.Uint64 // round-robin cursor
	maxEpoch atomic.Uint64 // freshest epoch seen anywhere, for the fence

	batches    atomic.Uint64
	keys       atomic.Uint64
	hedges     atomic.Uint64
	hedgeWins  atomic.Uint64
	ejections  atomic.Uint64
	staleEject atomic.Uint64
	reprobes   atomic.Uint64
}

// New builds a Router over cfg.Replicas. Replicas start healthy and
// are dialed lazily on first use; a dead address ejects itself on the
// first request against it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: at least one replica required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.ReprobeInterval <= 0 {
		cfg.ReprobeInterval = 250 * time.Millisecond
	}
	if cfg.MinChunk <= 0 {
		cfg.MinChunk = 32
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 2 * time.Millisecond
	}
	r := &Router{cfg: cfg}
	seen := map[string]bool{}
	for _, addr := range cfg.Replicas {
		if addr == "" || seen[addr] {
			return nil, fmt.Errorf("router: empty or duplicate replica address %q", addr)
		}
		seen[addr] = true
		rep := &replica{addr: addr}
		rep.healthy.Store(true)
		r.replicas = append(r.replicas, rep)
	}
	return r, nil
}

// Close drains every replica's connection pool.
func (r *Router) Close() {
	for _, rep := range r.replicas {
		rep.drain()
	}
}

// Stats returns current counters.
func (r *Router) Stats() Stats {
	healthy := 0
	for _, rep := range r.replicas {
		if rep.healthy.Load() {
			healthy++
		}
	}
	return Stats{
		Batches:    r.batches.Load(),
		Keys:       r.keys.Load(),
		Hedges:     r.hedges.Load(),
		HedgeWins:  r.hedgeWins.Load(),
		Ejections:  r.ejections.Load(),
		StaleEject: r.staleEject.Load(),
		Reprobes:   r.reprobes.Load(),
		Healthy:    healthy,
	}
}

// Healthy returns the addresses currently in rotation.
func (r *Router) Healthy() []string {
	var out []string
	for _, rep := range r.replicas {
		if rep.healthy.Load() {
			out = append(out, rep.addr)
		}
	}
	return out
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// eject removes rep from rotation and closes its pooled connections.
func (r *Router) eject(rep *replica, stale bool, cause error) {
	if !rep.healthy.CompareAndSwap(true, false) {
		return // already out; don't double-count
	}
	r.ejections.Add(1)
	if stale {
		r.staleEject.Add(1)
	}
	rep.drain()
	r.logf("router: ejected %s: %v", rep.addr, cause)
}

// healthyReplicas snapshots the rotation.
func (r *Router) healthyReplicas() []*replica {
	out := make([]*replica, 0, len(r.replicas))
	for _, rep := range r.replicas {
		if rep.healthy.Load() {
			out = append(out, rep)
		}
	}
	return out
}

// do runs one chunk against one replica, copying results into out
// while the connection (and its reused result buffer) is still owned.
func (r *Router) do(rep *replica, keys [][]byte, out []bool) error {
	c, err := rep.get()
	if err != nil {
		return err
	}
	c.SetDeadline(time.Now().Add(r.cfg.RequestTimeout))
	vals, err := c.ContainsBatch(keys)
	if err != nil {
		c.Close()
		return err
	}
	copy(out, vals)
	c.SetDeadline(time.Time{})
	rep.put(c, r.cfg.PoolSize)
	return nil
}

// Contains answers a single key — a one-key batch through the same
// routing, hedging and ejection machinery.
func (r *Router) Contains(key []byte) (bool, error) {
	out, err := r.ContainsBatch([][]byte{key})
	if err != nil {
		return false, err
	}
	return out[0], nil
}

// ContainsBatch answers one result per key, in order, by splitting the
// batch across healthy replicas and hedging slow chunks. An error
// means no healthy replica could answer some chunk; partial results
// are never returned.
func (r *Router) ContainsBatch(keys [][]byte) ([]bool, error) {
	if len(keys) == 0 {
		return nil, errors.New("router: empty batch")
	}
	reps := r.healthyReplicas()
	if len(reps) == 0 {
		return nil, ErrNoReplicas
	}
	r.batches.Add(1)
	r.keys.Add(uint64(len(keys)))

	chunks := len(keys) / r.cfg.MinChunk
	if chunks > len(reps) {
		chunks = len(reps)
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([]bool, len(keys))
	if err := r.containsBatchInto(out, keys, reps); err != nil {
		return nil, err
	}
	return out, nil
}

// ContainsBatchInto is ContainsBatch writing into a caller-owned slice:
// dst[i] answers keys[i], and len(dst) must be at least len(keys). On
// error dst's contents are unspecified but the slice is never retained,
// and no attempt keeps writing into it after return — losing hedges
// fill pooled private buffers, never dst.
func (r *Router) ContainsBatchInto(dst []bool, keys [][]byte) error {
	if len(keys) == 0 {
		return errors.New("router: empty batch")
	}
	reps := r.healthyReplicas()
	if len(reps) == 0 {
		return ErrNoReplicas
	}
	r.batches.Add(1)
	r.keys.Add(uint64(len(keys)))
	return r.containsBatchInto(dst[:len(keys)], keys, reps)
}

func (r *Router) containsBatchInto(out []bool, keys [][]byte, reps []*replica) error {
	chunks := len(keys) / r.cfg.MinChunk
	if chunks > len(reps) {
		chunks = len(reps)
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks == 1 {
		return r.runChunk(keys, out, reps)
	}

	var wg sync.WaitGroup
	errs := make([]error, chunks)
	per := (len(keys) + chunks - 1) / chunks
	for i := 0; i < chunks; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			errs[i] = r.runChunk(keys[lo:hi], out[lo:hi], reps)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkResult carries one attempt's outcome back to the race. out is a
// pooled buffer the receiver owns once the result is read.
type chunkResult struct {
	rep *replica
	out *[]bool
	err error
}

// attemptBufPool recycles per-attempt result buffers. An attempt owns
// its buffer from Get until it sends the chunkResult; after that the
// receiving runChunk owns it and puts it back. A buffer whose result is
// never received (an attempt still in flight when runChunk returns)
// falls to the GC with the buffered channel — correctness never depends
// on reclaiming it.
var attemptBufPool = sync.Pool{New: func() any { return new([]bool) }}

// runChunk answers one chunk: primary attempt, hedge on the timer,
// first arrival wins, failure ejects and retries elsewhere.
func (r *Router) runChunk(keys [][]byte, out []bool, reps []*replica) error {
	primary := reps[int(r.rr.Add(1)-1)%len(reps)]
	// Each attempt fills a private pooled buffer; only the winner is
	// copied to out, so a losing hedge can never tear the caller's
	// results.
	ch := make(chan chunkResult, 2)
	attempt := func(rep *replica) {
		pb := attemptBufPool.Get().(*[]bool)
		if cap(*pb) < len(keys) {
			*pb = make([]bool, len(keys))
		}
		err := r.do(rep, keys, (*pb)[:len(keys)])
		ch <- chunkResult{rep, pb, err}
	}
	go attempt(primary)
	// Reclaim buffers of results that arrived but lost the race.
	defer func() {
		for {
			select {
			case res := <-ch:
				attemptBufPool.Put(res.out)
			default:
				return
			}
		}
	}()

	var hedgeC <-chan time.Time
	if r.cfg.HedgeAfter > 0 && len(reps) > 1 {
		t := time.NewTimer(r.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	hedged := false
	outstanding := 1
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if sec := other(reps, primary); sec != nil {
				hedged = true
				outstanding++
				r.hedges.Add(1)
				go attempt(sec)
			}
		case res := <-ch:
			outstanding--
			if res.err != nil {
				attemptBufPool.Put(res.out)
				r.eject(res.rep, false, res.err)
				if outstanding > 0 {
					continue // the race partner may still answer
				}
				// Both attempts (or the only one) failed: one synchronous
				// retry against whatever is still healthy.
				rest := r.healthyReplicas()
				if len(rest) == 0 {
					return fmt.Errorf("%w (last error: %v)", ErrNoReplicas, res.err)
				}
				rep := rest[int(r.rr.Add(1)-1)%len(rest)]
				if err := r.do(rep, keys, out); err != nil {
					r.eject(rep, false, err)
					return fmt.Errorf("router: chunk failed on every replica tried: %w", err)
				}
				return nil
			}
			copy(out, (*res.out)[:len(keys)])
			attemptBufPool.Put(res.out)
			if hedged && res.rep != primary {
				r.hedgeWins.Add(1)
			}
			return nil
		}
	}
}

// other returns the next healthy replica after primary in ring order,
// or nil if primary is the only one.
func other(reps []*replica, primary *replica) *replica {
	idx := 0
	for i, rep := range reps {
		if rep == primary {
			idx = i
			break
		}
	}
	for i := 1; i < len(reps); i++ {
		rep := reps[(idx+i)%len(reps)]
		if rep != primary && rep.healthy.Load() {
			return rep
		}
	}
	return nil
}

// Run drives the health loop until ctx is done: ejected replicas are
// reprobed with Ping+Epoch and restored once they answer (and, with
// the epoch fence on, have caught up to within StaleEpochSlack of the
// freshest replica); healthy replicas are epoch-polled and ejected
// when they fall behind the fence.
func (r *Router) Run(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.ReprobeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.healthTick()
		}
	}
}

// healthTick is one pass of Run's loop: poll, fence, reprobe.
func (r *Router) healthTick() {
	// Pass 1: poll healthy replicas' epochs and advance the high-water
	// mark. maxEpoch never goes down — a fleet-wide restart from an old
	// snapshot is an operator action, not something the fence handles.
	for _, rep := range r.replicas {
		if !rep.healthy.Load() {
			continue
		}
		epoch, err := r.probe(rep)
		if err != nil {
			r.eject(rep, false, err)
			continue
		}
		rep.epoch.Store(epoch)
		for {
			max := r.maxEpoch.Load()
			if epoch <= max || r.maxEpoch.CompareAndSwap(max, epoch) {
				break
			}
		}
	}
	max := r.maxEpoch.Load()

	// Pass 2: fence stale replicas out.
	if !r.cfg.DisableStaleEject {
		for _, rep := range r.replicas {
			if !rep.healthy.Load() {
				continue
			}
			if e := rep.epoch.Load(); max > e && max-e > r.cfg.StaleEpochSlack {
				r.eject(rep, true, fmt.Errorf("epoch %d is %d behind freshest %d", e, max-e, max))
			}
		}
	}

	// Pass 3: reprobe ejected replicas and restore the recovered ones.
	for _, rep := range r.replicas {
		if rep.healthy.Load() {
			continue
		}
		epoch, err := r.probe(rep)
		if err != nil {
			continue
		}
		if !r.cfg.DisableStaleEject && max > epoch && max-epoch > r.cfg.StaleEpochSlack {
			continue // answering, but still behind the fence
		}
		rep.epoch.Store(epoch)
		rep.healthy.Store(true)
		r.reprobes.Add(1)
		r.logf("router: restored %s at epoch %d", rep.addr, epoch)
	}
}

// probe round-trips Ping+Epoch on one (possibly fresh) connection.
func (r *Router) probe(rep *replica) (uint64, error) {
	c, err := rep.get()
	if err != nil {
		return 0, err
	}
	c.SetDeadline(time.Now().Add(r.cfg.RequestTimeout))
	if err := c.Ping(); err != nil {
		c.Close()
		return 0, err
	}
	epoch, err := c.Epoch()
	if err != nil {
		c.Close()
		return 0, err
	}
	c.SetDeadline(time.Time{})
	rep.put(c, r.cfg.PoolSize)
	return epoch, nil
}
