// Command benchgate compares a fresh benchmark run against a committed
// baseline and fails (exit 1) on regressions — the CI benchmark gate.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_serve.json [-tolerance 2.5]
//
// Both files are habfbench -benchjson output (internal/benchfmt). The
// gate fails when any scenario present in the baseline is missing from
// the current run, or its ns/op exceeds tolerance × the baseline value.
// The tolerance is deliberately generous: shared CI runners are noisy,
// and the gate exists to catch structural regressions (a hot path
// growing a lock, a batch path quietly degrading to per-key), not
// scheduler jitter.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
		currentPath  = flag.String("current", "BENCH_serve.json", "fresh benchmark results")
		tolerance    = flag.Float64("tolerance", 2.5, "fail when current ns/op exceeds tolerance × baseline")
	)
	flag.Parse()
	if err := run(*baselinePath, *currentPath, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath string, tolerance float64) error {
	if tolerance <= 1 {
		return fmt.Errorf("tolerance %v must be > 1", tolerance)
	}
	baseline, err := benchfmt.Read(baselinePath)
	if err != nil {
		return err
	}
	current, err := benchfmt.Read(currentPath)
	if err != nil {
		return err
	}
	if len(baseline.Results) == 0 {
		return fmt.Errorf("%s holds no results", baselinePath)
	}

	cur := map[string]benchfmt.Result{}
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	fmt.Printf("benchgate: %s (%s/%s, %d CPUs) vs baseline %s (%s/%s, %d CPUs), tolerance %.2fx\n",
		currentPath, current.GOOS, current.GOARCH, current.CPUs,
		baselinePath, baseline.GOOS, baseline.GOARCH, baseline.CPUs, tolerance)
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			fmt.Printf("  %-34s baseline %9.0f ns/op   MISSING from current run\n", b.Name, b.NsPerOp)
			continue
		}
		fmt.Printf("  %-34s baseline %9.0f ns/op   current %9.0f ns/op   %.2fx\n",
			b.Name, b.NsPerOp, c.NsPerOp, c.NsPerOp/b.NsPerOp)
	}

	regressions := benchfmt.Compare(baseline, current, tolerance)
	if len(regressions) == 0 {
		fmt.Println("benchgate: OK")
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", r)
	}
	return fmt.Errorf("%d regression(s) beyond %.2fx tolerance", len(regressions), tolerance)
}
