package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file adds the serving-side half of the package: a tiny,
// dependency-free metric registry that renders the Prometheus text
// exposition format. The paper-evaluation helpers above measure a filter
// once, offline; a filter *service* needs counters and latency
// histograms that are cheap enough to touch on every request and
// scrapeable by a stock Prometheus. Only the primitives habfserved needs
// are implemented: monotonic counters, gauges sampled at scrape time,
// and fixed-bucket histograms.

// Counter is a monotonically increasing metric. The zero value is ready
// to use once registered.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// GaugeFunc is a metric sampled at scrape time, for values the serving
// layer already tracks elsewhere (shard stats, filter size).
type GaugeFunc func() float64

// CounterFunc is a counter-typed metric sampled at scrape time, for
// monotone counts owned by another component (a replication follower's
// resync total, a router's hedge total). It renders as TYPE counter —
// rate() works on it — without requiring that component to hold a
// *Counter of this registry.
type CounterFunc func() uint64

// Histogram counts observations into fixed, cumulative-at-scrape-time
// buckets. Observe is two atomic adds and a linear scan of ~16 bounds,
// cheap enough for per-request latency tracking.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []atomic.Uint64
	sum    atomic.Uint64 // accumulated in micro-units to stay integral
	count  atomic.Uint64
}

// histSumScale keeps Histogram.sum integral: values are accumulated in
// millionths, so latencies in seconds keep microsecond resolution.
const histSumScale = 1e6

// NewHistogram returns a histogram over the given ascending upper
// bounds. An implicit +Inf bucket catches the tail.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	sort.Float64s(h.bounds)
	return h
}

// DurationBuckets is a latency bucket ladder from 10µs to ~10s, suitable
// for both in-process query latencies and end-to-end HTTP request times.
func DurationBuckets() []float64 {
	return []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
		250e-3, 500e-3, 1, 2.5, 10,
	}
}

// SizeBuckets is a power-of-two ladder for batch-size distributions.
func SizeBuckets(max int) []float64 {
	var b []float64
	for s := 1; s <= max; s <<= 1 {
		b = append(b, float64(s))
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	if v > 0 && !math.IsInf(v, 1) {
		h.sum.Add(uint64(v * histSumScale))
	}
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// metricKind tags how a registered metric renders.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name   string // full name including any label set, e.g. `x_total{op="add"}`
	family string // name without labels, for TYPE/HELP grouping
	help   string
	kind   metricKind
	c      *Counter
	cf     CounterFunc
	g      GaugeFunc
	h      *Histogram
}

// Registry holds registered metrics and renders them in the Prometheus
// text exposition format. Registration is expected at setup time;
// WritePrometheus may be called concurrently with metric updates.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// splitLabels separates `name{labels}` into family and the braced part.
func splitLabels(name string) (family string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// Counter registers and returns a counter. name may carry a literal
// label set (`requests_total{endpoint="contains"}`); metrics sharing a
// family render under one TYPE/HELP header in registration order.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, &metric{
		name: name, family: splitLabels(name), help: help, kind: kindCounter, c: c,
	})
	return c
}

// CounterFunc registers a scrape-time sampled counter. The function
// must be monotone non-decreasing; the registry renders whatever it
// returns.
func (r *Registry) CounterFunc(name, help string, fn CounterFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, &metric{
		name: name, family: splitLabels(name), help: help, kind: kindCounter, cf: fn,
	})
}

// Gauge registers a scrape-time sampled gauge.
func (r *Registry) Gauge(name, help string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, &metric{
		name: name, family: splitLabels(name), help: help, kind: kindGauge, g: fn,
	})
}

// Histogram registers and returns a histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, &metric{
		name: name, family: splitLabels(name), help: help, kind: kindHistogram, h: h,
	})
	return h
}

// WritePrometheus renders every registered metric in the text exposition
// format, grouping TYPE/HELP headers by metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	seen := map[string]bool{}
	for _, m := range ms {
		if !seen[m.family] {
			seen[m.family] = true
			typ := "counter"
			switch m.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.family, m.help, m.family, typ); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			v := uint64(0)
			if m.c != nil {
				v = m.c.Value()
			} else if m.cf != nil {
				v = m.cf()
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, v); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %v\n", m.name, m.g()); err != nil {
				return err
			}
		case kindHistogram:
			if err := writeHistogram(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders the cumulative bucket series plus _sum/_count.
func writeHistogram(w io.Writer, m *metric) error {
	h := m.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.family, formatBound(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.family, cum); err != nil {
		return err
	}
	sum := float64(h.sum.Load()) / histSumScale
	if _, err := fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n", m.family, sum, m.family, h.count.Load()); err != nil {
		return err
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus expects
// (shortest representation, no exponent for small values).
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
