// Command habfbench regenerates the paper's evaluation figures (§V,
// Figs. 8–15) plus the ablation study as text tables.
//
// Usage:
//
//	habfbench -list
//	habfbench -fig fig10 [-scale 1.0] [-seed 1]
//	habfbench -all [-scale 0.25]
//	habfbench -serve [-shards 8] [-dist zipfian] [-batch 256] [-workers 4] [-writers 1]
//	habfbench -serve -snapshot filter.snap        # build, then checkpoint
//	habfbench -serve -restore filter.snap         # restore instead of building
//
// Scale 1.0 runs 40 k Shalla keys and 100 k YCSB keys per side with the
// paper's bits-per-key grid; larger scales approach the published sizes.
// -serve runs the serving-layer throughput comparison instead: per-key
// queries against one filter vs the sharded filter vs sharded batches,
// under a uniform/zipfian/sequential/latest key-access distribution,
// optionally with concurrent writers on the no-external-locking Add path.
// -snapshot saves the sharded filter after construction; -restore loads
// it (zero-copy) instead of rebuilding and reports restore-vs-build
// timing, so the cold-start win is measurable on real hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 1, "workload and construction seed")

		serve    = flag.Bool("serve", false, "run the serving-layer throughput benchmark")
		shards   = flag.Int("shards", 8, "serve: shard count (rounded up to a power of two)")
		dist     = flag.String("dist", "zipfian", "serve: key distribution (uniform|zipfian|sequential|latest)")
		keys     = flag.Int("keys", 100000, "serve: positive/negative keys per side")
		batch    = flag.Int("batch", 256, "serve: ContainsBatch size")
		workers  = flag.Int("workers", 4, "serve: concurrent query goroutines")
		writers  = flag.Int("writers", 1, "serve: concurrent Add goroutines in the mixed phase")
		ops      = flag.Int("ops", 4_000_000, "serve: total keys queried per measurement")
		snapPath = flag.String("snapshot", "", "serve: save the sharded filter's snapshot to this path after building")
		restore  = flag.String("restore", "", "serve: restore the sharded filter from this snapshot instead of building it")
	)
	flag.Parse()

	switch {
	case *serve:
		cfg := serveConfig{
			keys:     *keys,
			shards:   *shards,
			batch:    *batch,
			workers:  *workers,
			ops:      *ops,
			dist:     *dist,
			writers:  *writers,
			seed:     *seed,
			snapshot: *snapPath,
			restore:  *restore,
		}
		if err := runServe(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "habfbench:", err)
			os.Exit(1)
		}
	case *list:
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
	case *all:
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		for _, id := range experiments.All() {
			start := time.Now()
			if err := experiments.Run(id, cfg, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "habfbench:", err)
				os.Exit(1)
			}
			fmt.Printf("-- %s done in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	case *fig != "":
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		if err := experiments.Run(*fig, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "habfbench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
