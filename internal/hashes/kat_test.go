package hashes

import (
	"hash/crc32"
	"testing"
)

// Known-answer tests for the corpus functions whose reference values are
// definitional or famous. These pin the implementations against silent
// drift (a refactor that changes outputs would invalidate every
// serialized filter).

func TestKATXXH64Empty(t *testing.T) {
	// The xxHash64 specification's value for the empty input, seed 0.
	const want = uint64(0xEF46DB3751D8E999)
	if got := XXH64(nil); got != want {
		t.Fatalf("XXH64(empty) = %#x, want %#x", got, want)
	}
	if got := XXH64([]byte{}); got != want {
		t.Fatalf("XXH64([]byte{}) = %#x, want %#x", got, want)
	}
}

func TestKATMurmur64Empty(t *testing.T) {
	// MurmurHash64A of the empty input with seed 0: h = 0^(0*m) = 0, and
	// the finalizer maps 0 to 0.
	if got := Murmur64(nil); got != 0 {
		t.Fatalf("Murmur64(empty) = %#x, want 0", got)
	}
}

func TestKATCRC32CheckValue(t *testing.T) {
	// The canonical CRC-32/IEEE check value: crc32("123456789") =
	// 0xCBF43926. Our CRC packs the IEEE value in the high 32 bits.
	got := CRC([]byte("123456789"))
	if uint32(got>>32) != 0xCBF43926 {
		t.Fatalf("CRC high word = %#x, want 0xCBF43926", uint32(got>>32))
	}
	// And the low word must match hash/crc32's Castagnoli update.
	want := crc32.Update(0xdeadbeef, crc32.MakeTable(crc32.Castagnoli), []byte("123456789"))
	if uint32(got) != want {
		t.Fatalf("CRC low word = %#x, want %#x", uint32(got), want)
	}
}

func TestKATFNV1aBasis(t *testing.T) {
	// FNV-1a of the empty input is the 64-bit offset basis.
	if got := FNV1a(nil); got != 14695981039346656037 {
		t.Fatalf("FNV1a(empty) = %d, want offset basis", got)
	}
	// One step: basis ^ 'a' then × prime (computed in variables so the
	// compiler applies wrapping uint64 arithmetic, not constant folding).
	basis, prime := uint64(14695981039346656037), uint64(1099511628211)
	want := (basis ^ 'a') * prime
	if got := FNV1a([]byte("a")); got != want {
		t.Fatalf("FNV1a(a) = %d, want %d", got, want)
	}
}

func TestKATClassicEmptyValues(t *testing.T) {
	// The classic recurrences have definitional empty-input values.
	cases := []struct {
		name string
		fn   Func
		want uint64
	}{
		{"DJB", DJB, 5381},
		{"NDJB", NDJB, 5381},
		{"BKDR", BKDR, 0},
		{"SDBM", SDBM, 0},
		{"BRP", BRP, 0},
		{"ELF", ELF, 0},
		{"PJW", PJW, 0},
		{"JSHash", JS, 1315423911},
		{"RSHash", RS, 0},
		{"PYHash", PYHash, 0},
		{"DEK", DEK, 0},
	}
	for _, c := range cases {
		if got := c.fn(nil); got != c.want {
			t.Errorf("%s(empty) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestKATDJBFirstSteps(t *testing.T) {
	// djb2: h = h*33 + c.
	if got := DJB([]byte("a")); got != 5381*33+'a' {
		t.Fatalf("DJB(a) = %d", got)
	}
	if got := DJB([]byte("ab")); got != (5381*33+'a')*33+'b' {
		t.Fatalf("DJB(ab) = %d", got)
	}
}

func TestKATXXH64SeedIsNotNoop(t *testing.T) {
	// Seeded empty input differs from the unseeded spec value.
	if XXH64Seed(nil, 1) == XXH64(nil) {
		t.Fatal("seed 1 produced the seed-0 value on empty input")
	}
}
