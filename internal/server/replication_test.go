package server

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	habf "repro"
	"repro/internal/wire"
)

// TestSnapshotDownload pins the replication pull path: GET /v1/snapshot
// streams a loadable container stamped with backend and epoch, and the
// restored filter answers every key the primary's does.
func TestSnapshotDownload(t *testing.T) {
	filter, data := newTestFilter(t, 500)
	_, hs := newTestServer(t, filter, Config{})

	resp, err := http.Get(hs.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/snapshot: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Habf-Backend"); got != filter.Backend() {
		t.Fatalf("X-Habf-Backend = %q, want %q", got, filter.Backend())
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Habf-Epoch"), 10, 64)
	if err != nil {
		t.Fatalf("X-Habf-Epoch %q: %v", resp.Header.Get("X-Habf-Epoch"), err)
	}
	if want := filter.Epoch(); epoch != want {
		t.Fatalf("X-Habf-Epoch = %d, filter epoch %d", epoch, want)
	}

	restored, err := habf.Load(body)
	if err != nil {
		t.Fatalf("Load(downloaded snapshot): %v", err)
	}
	for _, key := range data.Positives {
		if !restored.Contains(key) {
			t.Fatalf("restored snapshot lost key %q", key)
		}
	}

	// A truncated download must fail the container checksum, never
	// install: the guarantee a follower's mid-pull primary death relies on.
	if _, err := habf.Load(body[:len(body)/2]); err == nil {
		t.Fatal("Load accepted a truncated snapshot body")
	}
}

// TestEpochEndpoint pins the follower's freshness probe: decimal text,
// equal to the filter's epoch, advancing with writes, GET-only.
func TestEpochEndpoint(t *testing.T) {
	filter, _ := newTestFilter(t, 200)
	_, hs := newTestServer(t, filter, Config{})

	fetch := func() uint64 {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/epoch")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/epoch: HTTP %d, %v", resp.StatusCode, err)
		}
		epoch, err := strconv.ParseUint(strings.TrimSpace(string(body)), 10, 64)
		if err != nil {
			t.Fatalf("epoch body %q: %v", body, err)
		}
		return epoch
	}

	before := fetch()
	if want := filter.Epoch(); before != want {
		t.Fatalf("epoch endpoint = %d, filter epoch %d", before, want)
	}
	filter.Add([]byte("epoch-bump"))
	if after := fetch(); after <= before {
		t.Fatalf("epoch did not advance after Add: %d -> %d", before, after)
	}

	resp, err := http.Post(hs.URL+"/v1/epoch", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/epoch: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestReadOnlyRejectsWrites pins the follower write contract: /v1/add
// answers 307 with a Location at the primary (or 403 with no primary),
// binary OpAdd gets an error frame, and reads keep working throughout.
func TestReadOnlyRejectsWrites(t *testing.T) {
	filter, data := newTestFilter(t, 200)
	srv, hs := newTestServer(t, filter, Config{ReadOnly: true, Primary: "http://primary:8080"})

	noRedirect := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	resp, err := noRedirect.Post(hs.URL+"/v1/add", "application/octet-stream",
		strings.NewReader("new-key"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower add: HTTP %d, want 307", resp.StatusCode)
	}
	if got, want := resp.Header.Get("Location"), "http://primary:8080/v1/add"; got != want {
		t.Fatalf("Location = %q, want %q", got, want)
	}
	if filter.Contains([]byte("new-key")) {
		t.Fatal("rejected add mutated the follower's filter")
	}
	if !containsJSON(t, hs.URL, data.Positives[0]) {
		t.Fatal("read-only server stopped answering reads")
	}

	// Binary writes are rejected with an error frame on the same server.
	addr := startBinary(t, srv)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if ok, err := c.Contains(data.Positives[0]); err != nil || !ok {
		t.Fatalf("binary contains on follower = %v, %v", ok, err)
	}
	if err := c.Add([]byte("new-key")); err == nil {
		t.Fatal("binary Add succeeded on a read-only server")
	}

	// No primary configured: the redirect degrades to a plain 403.
	_, hs2 := newTestServer(t, filter, Config{ReadOnly: true})
	resp, err = noRedirect.Post(hs2.URL+"/v1/add", "application/octet-stream",
		strings.NewReader("new-key"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower add without primary: HTTP %d, want 403", resp.StatusCode)
	}
}

// TestSwapFilter pins the resync cutover: a same-backend swap serves
// the new filter immediately, nil and backend-mismatched swaps are
// rejected without touching the served filter.
func TestSwapFilter(t *testing.T) {
	filter, data := newTestFilter(t, 200)
	srv, hs := newTestServer(t, filter, Config{})

	if _, err := srv.SwapFilter(nil); err == nil {
		t.Fatal("SwapFilter accepted nil")
	}

	other, err := habf.NewSharded(data.Positives, nil, 2000,
		habf.WithShards(4), habf.WithBackend("bloom"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SwapFilter(other); err == nil {
		t.Fatal("SwapFilter accepted a backend mismatch")
	}
	if srv.Filter() != filter {
		t.Fatal("rejected swap replaced the served filter")
	}

	next, _ := newTestFilter(t, 200)
	next.Add([]byte("only-in-next"))
	prev, err := srv.SwapFilter(next)
	if err != nil {
		t.Fatalf("SwapFilter: %v", err)
	}
	if prev != filter {
		t.Fatal("SwapFilter did not return the previous filter")
	}
	if !containsJSON(t, hs.URL, []byte("only-in-next")) {
		t.Fatal("server did not serve the swapped-in filter")
	}
}

// TestBinaryEpoch pins the router's freshness probe on the wire
// protocol: OpEpoch answers the filter's epoch and tracks writes.
func TestBinaryEpoch(t *testing.T) {
	filter, _ := newTestFilter(t, 200)
	srv, err := New(Config{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	addr := startBinary(t, srv)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	epoch, err := c.Epoch()
	if err != nil {
		t.Fatalf("Epoch: %v", err)
	}
	if want := filter.Epoch(); epoch != want {
		t.Fatalf("binary epoch = %d, filter epoch %d", epoch, want)
	}
	filter.Add([]byte("epoch-bump"))
	after, err := c.Epoch()
	if err != nil {
		t.Fatalf("Epoch after Add: %v", err)
	}
	if after <= epoch {
		t.Fatalf("binary epoch did not advance: %d -> %d", epoch, after)
	}
}
