// Quickstart: build a Hash Adaptive Bloom Filter over a small member set,
// tell it which non-members are expensive to misidentify, and query it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	habf "repro"
)

func main() {
	// The member set S: keys the filter must always accept.
	members := [][]byte{
		[]byte("user:alice"),
		[]byte("user:bob"),
		[]byte("user:carol"),
		[]byte("user:dave"),
	}

	// Known negative keys O with misidentification costs Θ(e): perhaps
	// these hammer the backend when they slip through.
	negatives := []habf.WeightedKey{
		{Key: []byte("user:mallory"), Cost: 100},
		{Key: []byte("user:trudy"), Cost: 50},
		{Key: []byte("user:eve"), Cost: 10},
		{Key: []byte("user:oscar"), Cost: 1},
	}

	// 4096 bits total for Bloom array + HashExpressor.
	f, err := habf.New(members, negatives, 4096, habf.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	st := f.Stats()
	fmt.Printf("built %s: %d bits, k=%d\n", f.Name(), f.SizeBits(), f.K())
	fmt.Printf("construction: %d collision keys found, %d optimized, %d positive keys re-hashed\n",
		st.CollisionKeys, st.Optimized, st.AdjustedPositives)

	fmt.Println("\nmembership answers:")
	for _, key := range members {
		fmt.Printf("  %-14s -> %v (member: always true)\n", key, f.Contains(key))
	}
	for _, n := range negatives {
		fmt.Printf("  %-14s -> %v (known negative, cost %g)\n", n.Key, f.Contains(n.Key), n.Cost)
	}

	// Unknown keys still get the standard Bloom guarantee.
	fmt.Printf("\nunknown key    -> %v\n", f.Contains([]byte("user:unknown")))
}
