package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLanesBasic(t *testing.T) {
	for _, width := range []uint{1, 3, 4, 5, 8, 13, 16, 31, 32, 33, 63, 64} {
		l := NewLanes(100, width)
		if l.Len() != 100 || l.Width() != width {
			t.Fatalf("width %d: Len/Width wrong", width)
		}
		for i := uint64(0); i < 100; i++ {
			if l.Get(i) != 0 {
				t.Fatalf("width %d: fresh lane %d nonzero", width, i)
			}
		}
	}
}

func TestLanesSetGetAcrossWordBoundaries(t *testing.T) {
	// Width 13 guarantees many lanes straddle 64-bit word boundaries.
	l := NewLanes(200, 13)
	rng := rand.New(rand.NewSource(7))
	want := make([]uint64, 200)
	for i := range want {
		want[i] = rng.Uint64() & (1<<13 - 1)
		l.Set(uint64(i), want[i])
	}
	for i, w := range want {
		if got := l.Get(uint64(i)); got != w {
			t.Fatalf("lane %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestLanesTruncation(t *testing.T) {
	l := NewLanes(4, 4)
	l.Set(1, 0xFF) // only low 4 bits should persist
	if got := l.Get(1); got != 0xF {
		t.Fatalf("Get = %#x, want 0xF", got)
	}
	if l.Get(0) != 0 || l.Get(2) != 0 {
		t.Fatal("neighbouring lanes disturbed")
	}
}

func TestLanesOverwriteDoesNotLeak(t *testing.T) {
	l := NewLanes(50, 7)
	for i := uint64(0); i < 50; i++ {
		l.Set(i, 0x7F)
	}
	l.Set(25, 0)
	if l.Get(25) != 0 {
		t.Fatal("overwrite with zero failed")
	}
	if l.Get(24) != 0x7F || l.Get(26) != 0x7F {
		t.Fatal("overwrite disturbed neighbours")
	}
}

func TestLanesWidth64(t *testing.T) {
	l := NewLanes(10, 64)
	l.Set(3, ^uint64(0))
	if l.Get(3) != ^uint64(0) {
		t.Fatal("64-bit lane roundtrip failed")
	}
	if l.Get(2) != 0 || l.Get(4) != 0 {
		t.Fatal("64-bit lane disturbed neighbours")
	}
}

func TestLanesInvalidWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d did not panic", w)
				}
			}()
			NewLanes(1, w)
		}()
	}
}

func TestLanesOutOfRangePanics(t *testing.T) {
	l := NewLanes(5, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get out of range did not panic")
			}
		}()
		l.Get(5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set out of range did not panic")
			}
		}()
		l.Set(5, 1)
	}()
}

func TestLanesResetClone(t *testing.T) {
	l := NewLanes(20, 5)
	for i := uint64(0); i < 20; i++ {
		l.Set(i, i%32)
	}
	c := l.Clone()
	l.Reset()
	for i := uint64(0); i < 20; i++ {
		if l.Get(i) != 0 {
			t.Fatal("Reset left residue")
		}
		if c.Get(i) != i%32 {
			t.Fatal("clone affected by Reset of original")
		}
	}
}

func TestLanesMarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		n     uint64
		width uint
	}{{0, 4}, {1, 1}, {17, 13}, {100, 4}, {64, 64}} {
		l := NewLanes(tc.n, tc.width)
		for i := uint64(0); i < tc.n; i++ {
			l.Set(i, rng.Uint64())
		}
		data, err := l.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var m Lanes
		if err := m.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d w=%d: %v", tc.n, tc.width, err)
		}
		if m.Len() != tc.n || m.Width() != tc.width {
			t.Fatalf("n=%d w=%d: header mismatch", tc.n, tc.width)
		}
		for i := uint64(0); i < tc.n; i++ {
			if m.Get(i) != l.Get(i) {
				t.Fatalf("n=%d w=%d: lane %d mismatch", tc.n, tc.width, i)
			}
		}
	}
}

func TestLanesUnmarshalErrors(t *testing.T) {
	var l Lanes
	if err := l.UnmarshalBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if err := l.UnmarshalBinary(make([]byte, 16)); err == nil {
		t.Error("bad magic accepted")
	}
	good, _ := NewLanes(10, 8).MarshalBinary()
	bad := append([]byte(nil), good...)
	bad[4] = 0 // width 0
	if err := l.UnmarshalBinary(bad); err == nil {
		t.Error("zero width accepted")
	}
	if err := l.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

// Property: Lanes behaves like a []uint64 with masking, for random widths.
func TestLanesQuickAgainstSlice(t *testing.T) {
	f := func(vals []uint64, widthSeed uint8) bool {
		width := uint(widthSeed)%64 + 1
		if len(vals) == 0 {
			return true
		}
		l := NewLanes(uint64(len(vals)), width)
		mask := ^uint64(0)
		if width < 64 {
			mask = 1<<width - 1
		}
		for i, v := range vals {
			l.Set(uint64(i), v)
		}
		for i, v := range vals {
			if l.Get(uint64(i)) != v&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLanesSet(b *testing.B) {
	l := NewLanes(1<<18, 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Set(uint64(i)&(1<<18-1), uint64(i))
	}
}

func BenchmarkLanesGet(b *testing.B) {
	l := NewLanes(1<<18, 13)
	for i := uint64(0); i < 1<<18; i++ {
		l.Set(i, i*2654435761)
	}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += l.Get(uint64(i) & (1<<18 - 1))
	}
	_ = sink
}
