package habf

import (
	"fmt"
	"testing"
)

func TestAddAfterConstruction(t *testing.T) {
	for _, fast := range []bool{false, true} {
		t.Run(fmt.Sprintf("fast=%v", fast), func(t *testing.T) {
			pos := genKeys(3000, "orig")
			neg := genNegatives(3000, "neg", uniformCost)
			f, err := New(pos, neg, Params{TotalBits: 4000 * 12, Fast: fast})
			if err != nil {
				t.Fatal(err)
			}
			late := genKeys(500, "late")
			for _, k := range late {
				f.Add(k)
				if !f.Contains(k) {
					t.Fatalf("added key %q not visible", k)
				}
			}
			if f.AddedKeys() != 500 {
				t.Fatalf("AddedKeys = %d, want 500", f.AddedKeys())
			}
			// Original members (including TPJO-adjusted ones) unaffected.
			for _, k := range pos {
				if !f.Contains(k) {
					t.Fatalf("original member %q lost after Add", k)
				}
			}
		})
	}
}

func TestAddDegradesGracefully(t *testing.T) {
	pos := genKeys(4000, "orig")
	neg := genNegatives(4000, "neg", uniformCost)
	f, err := New(pos, neg, Params{TotalBits: 6000 * 12})
	if err != nil {
		t.Fatal(err)
	}
	fprOn := func() float64 {
		fp := 0
		for _, n := range neg {
			if f.Contains(n.Key) {
				fp++
			}
		}
		return float64(fp) / float64(len(neg))
	}
	before := fprOn()
	for _, k := range genKeys(1000, "late") {
		f.Add(k)
	}
	after := fprOn()
	if after < before {
		t.Fatalf("FPR fell after adding keys: %v -> %v", before, after)
	}
	// 25% extra keys on a filter sized for 150%: degradation must stay
	// bounded (no catastrophic blowup).
	if after > before+0.05 {
		t.Errorf("FPR degraded too much after Add: %v -> %v", before, after)
	}
	t.Logf("FPR %v -> %v after 25%% extra keys", before, after)
}

func TestAddThenSerialize(t *testing.T) {
	pos := genKeys(1000, "orig")
	f, err := New(pos, nil, Params{TotalBits: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	f.Add([]byte("late-1"))
	f.Add([]byte("late-2"))
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFilter(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range [][]byte{[]byte("late-1"), []byte("late-2")} {
		if !g.Contains(k) {
			t.Fatalf("added key %q lost through serialization", k)
		}
	}
}

func TestConcurrentReaders(t *testing.T) {
	pos := genKeys(5000, "c")
	neg := genNegatives(5000, "n", uniformCost)
	f, err := New(pos, neg, Params{TotalBits: 5000 * 10})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(w int) {
			ok := true
			for i := 0; i < 2000; i++ {
				if !f.Contains(pos[(i*7+w)%len(pos)]) {
					ok = false
				}
				f.Contains(neg[(i*3+w)%len(neg)].Key)
			}
			done <- ok
		}(w)
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent reader observed a false negative")
		}
	}
}
