// Package wire defines the length-prefixed binary protocol habfserved
// speaks on its raw TCP listener, beside HTTP. The HTTP+JSON single-key
// path costs tens of microseconds per op in request framing alone; this
// protocol exists to strip that tax so the filter — not the transport —
// is what a single-key caller pays for.
//
// A connection opens with a 4-byte client handshake ("HBF" + version).
// After that, both directions carry self-describing frames:
//
//	request:  op(1) id(uvarint) payload
//	response: op(1) id(uvarint) status(1) payload
//
// Request payloads:
//
//	OpContains, OpAdd:  keyLen(uvarint) key
//	OpContainsBatch:    count(uvarint) then count × (keyLen(uvarint) key)
//	OpPing, OpEpoch:    empty
//
// Response payloads (status StatusOK):
//
//	OpContains:         present(1): '0' or '1'
//	OpContainsBatch:    count(uvarint) then ceil(count/8) bit-packed
//	                    presence bytes (LSB-first within each byte)
//	OpAdd, OpPing:      empty
//	OpEpoch:            epoch(uvarint) — the filter's mutation epoch
//
// A StatusError response instead carries msgLen(uvarint) + message, and
// the server closes the connection after sending it: every error is a
// protocol violation (bad op, hostile length, empty key), not a
// recoverable per-request condition.
//
// Request ids are chosen by the client and echoed verbatim, so a client
// may pipeline many requests on one connection and match responses by
// id; the server answers in request order.
//
// The decoder is written for the server's hot loop: it reads into
// reused scratch buffers and allocates nothing in steady state. Every
// length is bounds-checked before any allocation, so hostile frames are
// rejected for free.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Handshake is the 4 bytes a client sends when a connection opens:
// 3 magic bytes and a protocol version. A server rejects anything else
// before reading a single frame, so a stray HTTP client (or line noise)
// can't be misparsed as requests.
var Handshake = [4]byte{'H', 'B', 'F', Version}

// Version is the protocol revision carried in the handshake.
const Version = 1

// Op identifies a request kind.
type Op byte

const (
	// OpContains asks whether one key is in the filter.
	OpContains Op = 1
	// OpContainsBatch asks about a batch of keys in one frame.
	OpContainsBatch Op = 2
	// OpAdd inserts one key.
	OpAdd Op = 3
	// OpPing is a liveness round-trip carrying no payload.
	OpPing Op = 4
	// OpEpoch asks for the server's filter mutation epoch — the
	// monotone counter a replica router compares across replicas to
	// detect a stale follower, and the cheapest possible freshness
	// probe (empty request, one-uvarint response).
	OpEpoch Op = 5
)

// String names the op for error messages and metrics labels.
func (o Op) String() string {
	switch o {
	case OpContains:
		return "contains"
	case OpContainsBatch:
		return "contains_batch"
	case OpAdd:
		return "add"
	case OpPing:
		return "ping"
	case OpEpoch:
		return "epoch"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Response status bytes.
const (
	StatusOK    = 0
	StatusError = 1
)

// Frame size ceilings. These are protocol constants, not tunables: both
// sides reject violations before allocating, and the HTTP layer shares
// MaxKeyLen as its body cap so the two request paths agree on what an
// oversized key is.
const (
	// MaxKeyLen bounds a single key.
	MaxKeyLen = 8 << 20
	// MaxBatchKeys bounds the key count of one OpContainsBatch frame.
	MaxBatchKeys = 1 << 16
	// MaxBatchBytes bounds the total key bytes of one OpContainsBatch
	// frame, matching the HTTP batch endpoint's body cap.
	MaxBatchBytes = 8 << 20
)

// Protocol violations. Each closes the connection that produced it.
var (
	ErrBadHandshake = errors.New("wire: bad handshake")
	ErrBadOp        = errors.New("wire: unknown op")
	ErrEmptyKey     = errors.New("wire: empty key")
	ErrKeyTooLong   = errors.New("wire: key exceeds MaxKeyLen")
	ErrBatchTooBig  = errors.New("wire: batch exceeds MaxBatchKeys keys or MaxBatchBytes bytes")
	ErrEmptyBatch   = errors.New("wire: empty batch")
)

// Request is one decoded request frame. Key and Keys alias the
// decoder's scratch buffers and are valid only until the next Next
// call; Add handlers that retain the key must copy it.
type Request struct {
	Op Op
	ID uint64
	// Key holds the OpContains/OpAdd key.
	Key []byte
	// Keys holds the OpContainsBatch keys.
	Keys [][]byte
}

// Decoder reads request frames from a connection with zero allocations
// in steady state: key bytes land in a reused backing buffer and batch
// headers in a reused slice. Not safe for concurrent use.
type Decoder struct {
	br   *bufio.Reader
	buf  []byte
	keys [][]byte
	hs   [4]byte // handshake scratch; a local would escape through io.ReadFull
}

// NewDecoder wraps r; if r is not already buffered it gains a
// connection-sized buffer.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &Decoder{br: br}
}

// ReadHandshake consumes and validates the 4-byte client handshake.
func (d *Decoder) ReadHandshake() error {
	if _, err := io.ReadFull(d.br, d.hs[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: handshake: %w", err)
	}
	if d.hs != Handshake {
		return fmt.Errorf("%w: % x", ErrBadHandshake, d.hs[:])
	}
	return nil
}

// Buffered reports how many request bytes are already buffered — a
// server flushes its write side only when this hits zero, so pipelined
// requests share flushes.
func (d *Decoder) Buffered() int { return d.br.Buffered() }

// uvarint reads one varint, mapping a mid-frame EOF to ErrUnexpectedEOF
// so a truncated frame is distinguishable from a clean close.
func (d *Decoder) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if errors.Is(err, io.EOF) {
		return 0, io.ErrUnexpectedEOF
	}
	return v, err
}

// readKey reads one length-prefixed key into the scratch backing at
// offset used, returning the aliased slice and the new offset. When the
// backing must grow it is replaced rather than copied: keys already
// decoded keep aliasing the old array, which stays alive exactly as
// long as they do.
func (d *Decoder) readKey(used int) ([]byte, int, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, used, err
	}
	if n == 0 {
		return nil, used, ErrEmptyKey
	}
	if n > MaxKeyLen {
		return nil, used, fmt.Errorf("%w (%d bytes)", ErrKeyTooLong, n)
	}
	kl := int(n)
	if used+kl > len(d.buf) {
		grown := 2 * len(d.buf)
		if grown < kl {
			grown = kl
		}
		d.buf = make([]byte, grown)
		used = 0
	}
	key := d.buf[used : used+kl]
	if _, err := io.ReadFull(d.br, key); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, used, err
	}
	return key, used + kl, nil
}

// Next decodes the next request frame into req. It returns io.EOF on a
// clean close between frames, io.ErrUnexpectedEOF on a truncated frame,
// and a protocol error (ErrBadOp, ErrEmptyKey, ...) on a hostile one.
// req.Op and req.ID are populated as soon as they are read, so a caller
// answering with an error frame can echo what it got.
func (d *Decoder) Next(req *Request) error {
	req.Key, req.Keys = nil, nil
	// Drop the previous batch's key references before reuse; the scratch
	// backing is retained either way, but headers into replaced backings
	// must not pin them past their frame.
	for i := range d.keys {
		d.keys[i] = nil
	}

	op, err := d.br.ReadByte()
	if err != nil {
		return err // io.EOF between frames is the clean-close path
	}
	req.Op = Op(op)
	id, err := d.uvarint()
	if err != nil {
		return err
	}
	req.ID = id

	switch req.Op {
	case OpContains, OpAdd:
		key, _, err := d.readKey(0)
		if err != nil {
			return err
		}
		req.Key = key
	case OpContainsBatch:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n == 0 {
			return ErrEmptyBatch
		}
		if n > MaxBatchKeys {
			return fmt.Errorf("%w (%d keys)", ErrBatchTooBig, n)
		}
		count := int(n)
		d.keys = d.keys[:0]
		used, total := 0, 0
		for i := 0; i < count; i++ {
			key, nextUsed, err := d.readKey(used)
			if err != nil {
				return err
			}
			if total += len(key); total > MaxBatchBytes {
				return fmt.Errorf("%w (%d+ bytes)", ErrBatchTooBig, total)
			}
			d.keys = append(d.keys, key)
			used = nextUsed
		}
		req.Keys = d.keys
	case OpPing, OpEpoch:
	default:
		return fmt.Errorf("%w %d", ErrBadOp, op)
	}
	return nil
}

// appendUvarint appends v in varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

// AppendContains appends an OpContains request frame.
func AppendContains(dst []byte, id uint64, key []byte) []byte {
	dst = append(dst, byte(OpContains))
	dst = appendUvarint(dst, id)
	dst = appendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

// AppendAdd appends an OpAdd request frame.
func AppendAdd(dst []byte, id uint64, key []byte) []byte {
	dst = append(dst, byte(OpAdd))
	dst = appendUvarint(dst, id)
	dst = appendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

// AppendContainsBatch appends an OpContainsBatch request frame.
func AppendContainsBatch(dst []byte, id uint64, keys [][]byte) []byte {
	dst = append(dst, byte(OpContainsBatch))
	dst = appendUvarint(dst, id)
	dst = appendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// AppendPing appends an OpPing request frame.
func AppendPing(dst []byte, id uint64) []byte {
	dst = append(dst, byte(OpPing))
	return appendUvarint(dst, id)
}

// AppendEpoch appends an OpEpoch request frame.
func AppendEpoch(dst []byte, id uint64) []byte {
	dst = append(dst, byte(OpEpoch))
	return appendUvarint(dst, id)
}

// appendRespHeader appends the shared response prefix.
func appendRespHeader(dst []byte, op Op, id uint64, status byte) []byte {
	dst = append(dst, byte(op))
	dst = appendUvarint(dst, id)
	return append(dst, status)
}

// AppendContainsResp appends an OpContains success response.
func AppendContainsResp(dst []byte, id uint64, present bool) []byte {
	dst = appendRespHeader(dst, OpContains, id, StatusOK)
	if present {
		return append(dst, '1')
	}
	return append(dst, '0')
}

// AppendBatchResp appends an OpContainsBatch success response with the
// presence bits packed LSB-first.
func AppendBatchResp(dst []byte, id uint64, presents []bool) []byte {
	dst = appendRespHeader(dst, OpContainsBatch, id, StatusOK)
	dst = appendUvarint(dst, uint64(len(presents)))
	var b byte
	for i, p := range presents {
		if p {
			b |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, b)
			b = 0
		}
	}
	if len(presents)%8 != 0 {
		dst = append(dst, b)
	}
	return dst
}

// AppendOKResp appends a payload-free success response (OpAdd, OpPing).
func AppendOKResp(dst []byte, op Op, id uint64) []byte {
	return appendRespHeader(dst, op, id, StatusOK)
}

// AppendEpochResp appends an OpEpoch success response carrying the
// filter's mutation epoch.
func AppendEpochResp(dst []byte, id uint64, epoch uint64) []byte {
	dst = appendRespHeader(dst, OpEpoch, id, StatusOK)
	return appendUvarint(dst, epoch)
}

// AppendErrorResp appends an error response carrying msg.
func AppendErrorResp(dst []byte, op Op, id uint64, msg string) []byte {
	dst = appendRespHeader(dst, op, id, StatusError)
	dst = appendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}
