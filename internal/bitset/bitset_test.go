package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllZero(t *testing.T) {
	b := New(1000)
	if b.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", b.Len())
	}
	if b.OnesCount() != 0 {
		t.Fatalf("fresh vector has %d ones", b.OnesCount())
	}
	for i := uint64(0); i < 1000; i++ {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
}

func TestSetTestClear(t *testing.T) {
	b := New(130)
	idx := []uint64{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		b.Set(i)
	}
	for _, i := range idx {
		if !b.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := b.OnesCount(); got != uint64(len(idx)) {
		t.Errorf("OnesCount = %d, want %d", got, len(idx))
	}
	for _, i := range idx {
		b.Clear(i)
		if b.Test(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
	if b.OnesCount() != 0 {
		t.Errorf("OnesCount = %d after clearing all", b.OnesCount())
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(64)
	b.Set(10)
	b.Set(10)
	if b.OnesCount() != 1 {
		t.Fatalf("double Set produced %d ones", b.OnesCount())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, fn := range map[string]func(){
		"Set":   func() { b.Set(10) },
		"Clear": func() { b.Clear(10) },
		"Test":  func() { _ = b.Test(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(10) on len-10 vector did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFillRatio(t *testing.T) {
	b := New(100)
	if b.FillRatio() != 0 {
		t.Fatalf("fresh FillRatio = %v", b.FillRatio())
	}
	for i := uint64(0); i < 50; i++ {
		b.Set(i)
	}
	if got := b.FillRatio(); got != 0.5 {
		t.Fatalf("FillRatio = %v, want 0.5", got)
	}
	var empty Bits
	if empty.FillRatio() != 0 {
		t.Fatalf("zero-value FillRatio = %v", empty.FillRatio())
	}
}

func TestReset(t *testing.T) {
	b := New(200)
	for i := uint64(0); i < 200; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.OnesCount() != 0 {
		t.Fatalf("Reset left %d ones", b.OnesCount())
	}
}

func TestCloneIndependence(t *testing.T) {
	b := New(128)
	b.Set(5)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(6)
	if b.Test(6) {
		t.Fatal("mutating clone changed original")
	}
	b.Set(7)
	if c.Test(7) {
		t.Fatal("mutating original changed clone")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(3)
	if a.Equal(b) {
		t.Fatal("different contents reported equal")
	}
	b.Set(3)
	if !a.Equal(b) {
		t.Fatal("identical contents reported unequal")
	}
	if a.Equal(New(65)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	u := a.Clone()
	if err := u.Union(b); err != nil {
		t.Fatal(err)
	}
	for _, i := range []uint64{1, 2, 3} {
		if !u.Test(i) {
			t.Errorf("union missing bit %d", i)
		}
	}
	if u.OnesCount() != 3 {
		t.Errorf("union OnesCount = %d, want 3", u.OnesCount())
	}

	x := a.Clone()
	if err := x.Intersect(b); err != nil {
		t.Fatal(err)
	}
	if !x.Test(2) || x.OnesCount() != 1 {
		t.Errorf("intersect wrong: count=%d", x.OnesCount())
	}

	if err := a.Union(New(5)); err == nil {
		t.Error("union with mismatched length did not error")
	}
	if err := a.Intersect(New(5)); err == nil {
		t.Error("intersect with mismatched length did not error")
	}
}

func TestBitsMarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []uint64{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		for i := uint64(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var c Bits
		if err := c.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !b.Equal(&c) {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
	}
}

func TestBitsUnmarshalErrors(t *testing.T) {
	var b Bits
	if err := b.UnmarshalBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if err := b.UnmarshalBinary(make([]byte, 12)); err == nil {
		t.Error("bad magic accepted")
	}
	good, _ := New(64).MarshalBinary()
	if err := b.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

// Property: a random sequence of sets and clears behaves like a map[uint64]bool.
func TestBitsQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		b := New(512)
		ref := make(map[uint64]bool)
		for _, op := range ops {
			i := uint64(op) % 512
			if op%3 == 0 {
				b.Clear(i)
				delete(ref, i)
			} else {
				b.Set(i)
				ref[i] = true
			}
		}
		for i := uint64(0); i < 512; i++ {
			if b.Test(i) != ref[i] {
				return false
			}
		}
		return b.OnesCount() == uint64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBitsSet(b *testing.B) {
	v := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Set(uint64(i) & (1<<20 - 1))
	}
}

func BenchmarkBitsTest(b *testing.B) {
	v := New(1 << 20)
	for i := uint64(0); i < 1<<20; i += 7 {
		v.Set(i)
	}
	b.ReportAllocs()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = v.Test(uint64(i) & (1<<20 - 1))
	}
	_ = sink
}
