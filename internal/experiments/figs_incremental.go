package experiments

import (
	"fmt"
	"time"

	"repro/internal/learned"
)

// Incremental evaluates the CA-LBF / IA-LBF variants of Bhattacharya et
// al. (§II "Learning-based", incremental workloads): half of the Shalla
// positives build the initial filter, the other half arrive as inserts,
// and the table tracks FPR on held-out negatives, structure size and
// cumulative insert cost after each batch. The shape to observe: CA-LBF
// pays periodic retraining time to keep its size flat; IA-LBF inserts
// cheaply and pays with backup-filter growth.
func Incremental(cfg Config) []Table {
	cfg = cfg.withDefaults()
	w := cfg.shallaWorkload(0)
	half := len(w.pos) / 2
	build, extra := w.pos[:half], w.pos[half:]
	trainNeg := w.neg[:len(w.neg)/2]
	holdNeg := w.neg[len(w.neg)/2:]

	const batches = 4
	t := Table{
		ID: "incr",
		Title: fmt.Sprintf("incremental workload: %d initial keys + %d inserts in %d batches (Shalla)",
			half, len(extra), batches),
		Header: []string{"mode", "batch", "inserted", "holdout FPR", "size(KB)", "cum insert ms"},
	}
	for _, mode := range []learned.IncrementalMode{learned.ClassifierAdaptive, learned.IndexAdaptive} {
		l, err := learned.NewIncremental(mode, build, trainNeg, learned.IncrementalConfig{
			BackupBits:   uint64(half) * 6,
			RetrainEvery: len(extra)/batches + 1,
			Train:        learned.TrainConfig{Seed: cfg.Seed},
		})
		if err != nil {
			t.Rows = append(t.Rows, []string{mode.String(), "err", err.Error(), "", "", ""})
			continue
		}
		var cum time.Duration
		report := func(batch, inserted int) {
			fp := 0
			for _, k := range holdNeg {
				if l.Contains(k) {
					fp++
				}
			}
			t.Rows = append(t.Rows, []string{
				mode.String(),
				fmt.Sprint(batch),
				fmt.Sprint(inserted),
				fmt.Sprintf("%.3e", float64(fp)/float64(len(holdNeg))),
				fmt.Sprintf("%.1f", float64(l.SizeBits())/8/1024),
				fmt.Sprintf("%.0f", float64(cum.Milliseconds())),
			})
		}
		report(0, 0)
		per := len(extra) / batches
		for b := 0; b < batches; b++ {
			lo, hi := b*per, (b+1)*per
			if b == batches-1 {
				hi = len(extra)
			}
			start := time.Now()
			for _, k := range extra[lo:hi] {
				l.Insert(k)
			}
			cum += time.Since(start)
			report(b+1, hi)
		}
	}
	return []Table{t}
}
