// Package learned implements the learning-based baselines of the paper's
// evaluation: Learned Bloom filter (LBF, Kraska et al.), Sandwiched LBF
// (SLBF, Mitzenmacher) and Adaptive LBF (Ada-BF, Dai & Shrivastava).
//
// The paper's Keras GRU/DNN classifiers are replaced with a from-scratch
// stdlib-only classifier: logistic regression (optionally a one-hidden-
// layer MLP) over hashed byte-trigram features, trained with SGD. The
// substitution preserves everything the experiments measure: a per-key
// score in [0,1], good separation on structured keys (Shalla) and chance
// separation on random keys (YCSB), a construction cost dominated by
// training, and a query cost dominated by model evaluation. The
// serialized model size is charged against the space budget exactly as
// the paper does.
package learned

import (
	"math"
	"math/rand"
)

// featureDim is the hashed feature-space dimensionality. 512 trigram
// buckets keep the model at ~2 KiB — the same order as the paper's
// 16-dimensional character GRU — so it fits comfortably inside even the
// smallest space budgets of the evaluation.
const featureDim = 512

// featurize hashes byte trigrams plus whole alphabetic tokens (maximal
// letter runs of length >= 3) of key into sparse feature indices. Token
// features carry most of the signal on URL-like keys; trigrams keep the
// representation usable on arbitrary binary keys.
func featurize(key []byte, dst []uint16) []uint16 {
	if len(key) == 0 {
		return append(dst, 0)
	}
	dst = append(dst, uint16(len(key)%64)) // crude length bucket
	var h uint32
	for i := 0; i+2 < len(key); i++ {
		h = 2166136261
		h = (h ^ uint32(key[i])) * 16777619
		h = (h ^ uint32(key[i+1])) * 16777619
		h = (h ^ uint32(key[i+2])) * 16777619
		dst = append(dst, uint16(h%featureDim))
	}
	// Alphabetic token features, weighted ×4 by repetition so they
	// dominate the trigram noise from serial numbers.
	start := -1
	emit := func(from, to int) {
		if to-from < 3 {
			return
		}
		t := uint32(2166136261)
		for _, b := range key[from:to] {
			t = (t ^ uint32(b|0x20)) * 16777619 // case-folded
		}
		idx := uint16(t % featureDim)
		dst = append(dst, idx, idx, idx, idx)
	}
	for i, b := range key {
		isAlpha := (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
		if isAlpha && start < 0 {
			start = i
		}
		if !isAlpha && start >= 0 {
			emit(start, i)
			start = -1
		}
	}
	if start >= 0 {
		emit(start, len(key))
	}
	return dst
}

// Model scores keys: higher means "more likely a member of S".
type Model interface {
	// Score returns a value in [0,1].
	Score(key []byte) float64
	// SizeBits is the serialized parameter footprint charged against the
	// filter's space budget.
	SizeBits() uint64
}

// Logistic is an L2-regularized logistic-regression model over hashed
// trigram features.
type Logistic struct {
	w    []float32
	bias float32
}

// TrainConfig tunes SGD.
type TrainConfig struct {
	Epochs int     // default 3
	LR     float64 // default 0.15
	Seed   int64   // default 1
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 6
	}
	if c.LR == 0 {
		c.LR = 0.6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func sigmoid(z float64) float64 {
	switch {
	case z > 30:
		return 1
	case z < -30:
		return 0
	default:
		return 1 / (1 + math.Exp(-z))
	}
}

// TrainLogistic fits a logistic model labelling positives 1 and negatives
// 0 with plain SGD over shuffled examples.
func TrainLogistic(positives, negatives [][]byte, cfg TrainConfig) *Logistic {
	cfg = cfg.withDefaults()
	m := &Logistic{w: make([]float32, featureDim)}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type example struct {
		key   []byte
		label float64
	}
	examples := make([]example, 0, len(positives)+len(negatives))
	for _, k := range positives {
		examples = append(examples, example{k, 1})
	}
	for _, k := range negatives {
		examples = append(examples, example{k, 0})
	}

	var feat []uint16
	lr := cfg.LR
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(examples), func(i, j int) {
			examples[i], examples[j] = examples[j], examples[i]
		})
		for _, ex := range examples {
			feat = featurize(ex.key, feat[:0])
			p := m.score(feat)
			g := float32((p - ex.label) * lr)
			inv := float32(1.0 / float64(len(feat)))
			for _, idx := range feat {
				m.w[idx] -= g * inv
			}
			m.bias -= g
		}
		lr *= 0.7 // simple decay
	}
	return m
}

func (m *Logistic) score(feat []uint16) float64 {
	var z float32
	inv := float32(1.0 / float64(len(feat)))
	for _, idx := range feat {
		z += m.w[idx] * inv
	}
	z += m.bias
	return sigmoid(float64(z))
}

// Score returns the membership probability estimate for key.
func (m *Logistic) Score(key []byte) float64 {
	var buf [128]uint16
	return m.score(featurize(key, buf[:0]))
}

// SizeBits charges 32 bits per parameter (float32 weights + bias).
func (m *Logistic) SizeBits() uint64 {
	return uint64(len(m.w)+1) * 32
}

// MLP is a one-hidden-layer network (featureDim → hidden → 1, ReLU),
// standing in for the paper's six-layer DNN. It shares the feature
// extraction with Logistic.
type MLP struct {
	hidden int
	w1     []float32 // featureDim × hidden
	b1     []float32
	w2     []float32 // hidden
	b2     float32
}

// TrainMLP fits the network with SGD. hidden defaults to 16 (the paper's
// GRU dimension).
func TrainMLP(positives, negatives [][]byte, hidden int, cfg TrainConfig) *MLP {
	cfg = cfg.withDefaults()
	if hidden == 0 {
		hidden = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &MLP{
		hidden: hidden,
		w1:     make([]float32, featureDim*hidden),
		b1:     make([]float32, hidden),
		w2:     make([]float32, hidden),
	}
	scale := float32(math.Sqrt(2.0 / float64(hidden)))
	for i := range m.w1 {
		m.w1[i] = (rng.Float32() - 0.5) * scale
	}
	for i := range m.w2 {
		m.w2[i] = (rng.Float32() - 0.5) * scale
	}

	type example struct {
		key   []byte
		label float64
	}
	examples := make([]example, 0, len(positives)+len(negatives))
	for _, k := range positives {
		examples = append(examples, example{k, 1})
	}
	for _, k := range negatives {
		examples = append(examples, example{k, 0})
	}

	var feat []uint16
	act := make([]float32, hidden)
	pre := make([]float32, hidden)
	lr := float32(cfg.LR)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(examples), func(i, j int) {
			examples[i], examples[j] = examples[j], examples[i]
		})
		for _, ex := range examples {
			feat = featurize(ex.key, feat[:0])
			p := m.forward(feat, pre, act)
			g := float32(p - ex.label)
			// Output layer gradients.
			for h := 0; h < hidden; h++ {
				gw2 := g * act[h]
				// Backprop into hidden (ReLU gate).
				if pre[h] > 0 {
					gh := g * m.w2[h]
					inv := float32(1.0 / float64(len(feat)))
					for _, idx := range feat {
						m.w1[int(idx)*hidden+h] -= lr * gh * inv
					}
					m.b1[h] -= lr * gh
				}
				m.w2[h] -= lr * gw2
			}
			m.b2 -= lr * g
		}
		lr *= 0.7
	}
	return m
}

func (m *MLP) forward(feat []uint16, pre, act []float32) float64 {
	inv := float32(1.0 / float64(len(feat)))
	for h := 0; h < m.hidden; h++ {
		pre[h] = m.b1[h]
	}
	for _, idx := range feat {
		row := m.w1[int(idx)*m.hidden : int(idx+1)*m.hidden]
		for h, w := range row {
			pre[h] += w * inv
		}
	}
	var z float32 = m.b2
	for h := 0; h < m.hidden; h++ {
		a := pre[h]
		if a < 0 {
			a = 0
		}
		act[h] = a
		z += m.w2[h] * a
	}
	return sigmoid(float64(z))
}

// Score returns the membership probability estimate for key.
func (m *MLP) Score(key []byte) float64 {
	var buf [128]uint16
	feat := featurize(key, buf[:0])
	pre := make([]float32, m.hidden)
	act := make([]float32, m.hidden)
	return m.forward(feat, pre, act)
}

// SizeBits charges 32 bits per parameter.
func (m *MLP) SizeBits() uint64 {
	return uint64(len(m.w1)+len(m.b1)+len(m.w2)+1) * 32
}
