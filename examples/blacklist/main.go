// Blacklist: the intrusion-detection scenario from the paper's
// introduction. A URL blacklist is held as a filter in front of a slow
// reputation database; benign URLs that are misidentified trigger costly
// lookups, and lookup traffic is heavily skewed toward popular URLs.
//
// The example compares the standard Bloom filter, the Xor filter and both
// HABF variants at the same space budget, reporting the weighted false-
// positive rate (= wasted lookup cost fraction) of each.
//
// Stdout is deterministic (fixed seeds everywhere); wall-clock build
// times go to stderr so runs can be diffed.
//
//	go run ./examples/blacklist
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	habf "repro"
	"repro/internal/dataset"
)

func main() {
	const n = 30000
	data := dataset.Shalla(n, n, 42)       // n blacklisted + n benign URLs
	costs := dataset.ZipfCosts(n, 1.2, 42) // lookup traffic per benign URL

	negatives := make([]habf.WeightedKey, n)
	for i := range negatives {
		negatives[i] = habf.WeightedKey{Key: data.Negatives[i], Cost: costs[i]}
	}

	const bitsPerKey = 10.0
	budget := uint64(bitsPerKey * n)

	build := []struct {
		name string
		fn   func() (habf.Filter, error)
	}{
		{"BF", func() (habf.Filter, error) { return habf.NewBloom(data.Positives, bitsPerKey, habf.BloomCorpus) }},
		{"Xor", func() (habf.Filter, error) { return habf.NewXor(data.Positives, bitsPerKey) }},
		{"WBF", func() (habf.Filter, error) { return habf.NewWBF(data.Positives, negatives, budget) }},
		{"f-HABF", func() (habf.Filter, error) { return habf.NewFast(data.Positives, negatives, budget) }},
		{"HABF", func() (habf.Filter, error) { return habf.New(data.Positives, negatives, budget) }},
	}

	fmt.Printf("blacklist: %d URLs, %d known benign probes, %.0f bits/key, traffic skew 1.2\n\n",
		n, n, bitsPerKey)
	fmt.Printf("%-8s %16s %14s\n", "filter", "weighted FPR", "vs BF")

	var bfFPR float64
	for _, b := range build {
		start := time.Now()
		f, err := b.fn()
		if err != nil {
			log.Fatalf("%s: %v", b.name, err)
		}
		// Wall-clock timing is inherently nondeterministic: stderr only.
		fmt.Fprintf(os.Stderr, "built %s in %v\n", b.name, time.Since(start).Round(time.Millisecond))

		// Safety: a blacklist must never miss a listed URL.
		if fnr, _ := habf.FNR(f, data.Positives); fnr != 0 {
			log.Fatalf("%s produced false negatives", b.name)
		}
		w, err := habf.WeightedFPR(f, data.Negatives, costs)
		if err != nil {
			log.Fatal(err)
		}
		if b.name == "BF" {
			bfFPR = w
		}
		improvement := "-"
		if bfFPR > 0 && w > 0 {
			improvement = fmt.Sprintf("%.1fx lower", bfFPR/w)
		}
		fmt.Printf("%-8s %15.5f%% %14s\n", b.name, w*100, improvement)
	}

	fmt.Println("\nHABF routes the costly (popular) benign URLs away from collisions,")
	fmt.Println("so the wasted-lookup cost drops far more than the plain FPR does.")
}
