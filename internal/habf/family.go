package habf

import "repro/internal/hashes"

// family adapts the two hashing regimes of the paper behind one interface:
// the full Table II corpus for HABF, and Kirsch–Mitzenmacher simulated
// hashing g_i(x) = h1(x) + (i+1)·h2(x) for f-HABF (§III-G).
//
// A keyState caches the per-key work (the two base hashes in fast mode) so
// that walking several function indices for one key costs one strong hash
// evaluation, mirroring f-HABF's speed advantage.
type family struct {
	fns  []hashes.Func // slow mode: the first `size` corpus functions
	size int
	fast bool
	seed uint64
}

// keyState is the prepared per-key hashing context.
type keyState struct {
	key    []byte
	h1, h2 uint64 // fast mode only
}

func newFamily(p Params) *family {
	f := &family{
		size: usableFunctions(p.CellBits, p.Fast),
		fast: p.Fast,
		seed: uint64(p.Seed)*0x9e3779b97f4a7c15 + 0xabcdef,
	}
	if !p.Fast {
		f.fns = hashes.CorpusFuncs()[:f.size]
	}
	return f
}

// prepare computes the per-key context once.
func (f *family) prepare(key []byte) keyState {
	if !f.fast {
		return keyState{key: key}
	}
	h1, h2 := hashes.Split128(key, f.seed)
	return keyState{key: key, h1: h1, h2: h2}
}

// pos returns the position of the key under function idx, modulo mod.
func (f *family) pos(ks keyState, idx uint8, mod uint64) uint64 {
	if f.fast {
		return f.rawFast(ks.h1, ks.h2, idx) % mod
	}
	return f.rawSlow(ks.key, idx) % mod
}

// rawSlow returns the un-reduced hash of key under corpus function idx.
// The fused query path computes it once per walked HashExpressor cell and
// reduces it by both moduli (cell count and Bloom length) itself.
func (f *family) rawSlow(key []byte, idx uint8) uint64 {
	return f.fns[idx](key)
}

// rawFast is rawSlow for the f-HABF simulated family: the key is fully
// described by its two prepared lanes.
func (f *family) rawFast(h1, h2 uint64, idx uint8) uint64 {
	return hashes.EnhancedDouble(h1, h2, int(idx)+1)
}

// entry returns the HashExpressor entry position f(e) (the "unified hash
// function" of Table I), which must be independent of every family member.
func (f *family) entry(ks keyState, mod uint64) uint64 {
	if f.fast {
		return f.entryFast(ks.h1, ks.h2, mod)
	}
	return f.entrySlow(ks.key, mod)
}

func (f *family) entrySlow(key []byte, mod uint64) uint64 {
	return hashes.XXH64Seed(key, f.seed^0x517cc1b727220a95) % mod
}

func (f *family) entryFast(h1, h2, mod uint64) uint64 {
	return hashes.Mix64(h1^(h2<<1)^f.seed) % mod
}
