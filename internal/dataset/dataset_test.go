package dataset

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestShallaShape(t *testing.T) {
	p := Shalla(1000, 800, 1)
	if len(p.Positives) != 1000 || len(p.Negatives) != 800 {
		t.Fatalf("sizes %d/%d, want 1000/800", len(p.Positives), len(p.Negatives))
	}
	for _, k := range append(append([][]byte{}, p.Positives...), p.Negatives...) {
		if !bytes.HasPrefix(k, []byte("http://")) {
			t.Fatalf("key %q is not a URL", k)
		}
	}
}

func TestShallaDisjoint(t *testing.T) {
	p := Shalla(5000, 5000, 2)
	seen := map[string]bool{}
	for _, k := range p.Positives {
		if seen[string(k)] {
			t.Fatalf("duplicate positive %q", k)
		}
		seen[string(k)] = true
	}
	for _, k := range p.Negatives {
		if seen[string(k)] {
			t.Fatalf("negative %q collides with positive set", k)
		}
		seen[string(k)] = true
	}
}

func TestShallaDeterministic(t *testing.T) {
	a := Shalla(100, 100, 7)
	b := Shalla(100, 100, 7)
	for i := range a.Positives {
		if !bytes.Equal(a.Positives[i], b.Positives[i]) {
			t.Fatal("same seed, different positives")
		}
	}
	c := Shalla(100, 100, 8)
	diff := false
	for i := range a.Positives {
		if !bytes.Equal(a.Positives[i], c.Positives[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds, identical output")
	}
}

// The "evident characteristics": bad tokens must dominate positive URLs
// and be rare in negative URLs, or the learned-filter experiments lose
// their discriminative signal.
func TestShallaSignal(t *testing.T) {
	p := Shalla(4000, 4000, 3)
	badRate := func(keys [][]byte) float64 {
		hits := 0
		for _, k := range keys {
			s := string(k)
			for _, tok := range shallaBadTokens {
				if strings.Contains(s, tok) {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(keys))
	}
	pos, neg := badRate(p.Positives), badRate(p.Negatives)
	if pos < 0.8 {
		t.Errorf("bad-token rate in positives %.2f, want >= 0.8", pos)
	}
	if neg > 0.55 {
		t.Errorf("bad-token rate in negatives %.2f, want <= 0.55", neg)
	}
	if pos-neg < 0.3 {
		t.Errorf("signal gap %.2f too small for a learnable dataset", pos-neg)
	}
}

func TestYCSBShape(t *testing.T) {
	p := YCSB(1000, 1000, 1)
	for _, k := range append(append([][]byte{}, p.Positives...), p.Negatives...) {
		if len(k) != 4+16 {
			t.Fatalf("key %q length %d, want 20 (4-byte prefix + 16 hex)", k, len(k))
		}
		if !bytes.HasPrefix(k, []byte("usr:")) {
			t.Fatalf("key %q lacks 4-byte prefix", k)
		}
	}
}

func TestYCSBDisjointAndDeterministic(t *testing.T) {
	a := YCSB(3000, 3000, 5)
	seen := map[string]bool{}
	for _, k := range append(append([][]byte{}, a.Positives...), a.Negatives...) {
		if seen[string(k)] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[string(k)] = true
	}
	b := YCSB(3000, 3000, 5)
	for i := range a.Positives {
		if !bytes.Equal(a.Positives[i], b.Positives[i]) {
			t.Fatal("same seed, different output")
		}
	}
}

func TestZipfUniform(t *testing.T) {
	costs := ZipfCosts(100, 0, 1)
	for _, c := range costs {
		if c != 1 {
			t.Fatalf("skew 0 cost %v, want 1", c)
		}
	}
}

func TestZipfSkewShape(t *testing.T) {
	for _, s := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		costs := ZipfCosts(10000, s, 42)
		sorted := append([]float64(nil), costs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		// Ratio between rank-1 and rank-10 mass must be 10^s.
		got := sorted[0] / sorted[9]
		want := math.Pow(10, s)
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("skew %v: head ratio %.2f, want %.2f", s, got, want)
		}
		// Top 1% share grows with skew.
		var top, total float64
		for i, c := range sorted {
			total += c
			if i < 100 {
				top += c
			}
		}
		share := top / total
		if s >= 1.5 && share < 0.5 {
			t.Errorf("skew %v: top-1%% share %.2f, want dominant", s, share)
		}
	}
}

func TestZipfPermutationDiffersBySeed(t *testing.T) {
	a := ZipfCosts(1000, 1.0, 1)
	b := ZipfCosts(1000, 1.0, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical rank assignment")
	}
}

func TestZipfEmpty(t *testing.T) {
	if got := ZipfCosts(0, 1.0, 1); len(got) != 0 {
		t.Fatal("n=0 should yield empty slice")
	}
}

// Property: Zipf costs are always positive and the multiset of costs is
// seed-independent (only the permutation varies).
func TestQuickZipfMass(t *testing.T) {
	f := func(seed int64) bool {
		a := ZipfCosts(500, 1.0, seed)
		b := ZipfCosts(500, 1.0, seed+1)
		sa := append([]float64(nil), a...)
		sb := append([]float64(nil), b...)
		sort.Float64s(sa)
		sort.Float64s(sb)
		for i := range sa {
			if sa[i] <= 0 || sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShalla(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Shalla(10000, 10000, int64(i))
	}
}

func BenchmarkYCSB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		YCSB(10000, 10000, int64(i))
	}
}
